// Combinational-slice extraction (src/netlist/slice.hpp): label transfer
// across register cuts, public-state inference, feedback diagnostics, SNL
// round-tripping of state annotations, and the stitched-simulation property
// — cycle-accurate simulation of the extracted MaskedAes128 slice must be
// bit-identical to the full sequential design for every mapped signal.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/masked_aes.hpp"
#include "src/netlist/ir.hpp"
#include "src/netlist/slice.hpp"
#include "src/netlist/textio.hpp"
#include "src/sim/simulator.hpp"
#include "src/verif/unroll.hpp"

namespace sca {
namespace {

using netlist::GateKind;
using netlist::InputRole;
using netlist::Netlist;
using netlist::ShareLabel;
using netlist::SignalId;
using netlist::Slice;
using netlist::SliceCut;
using netlist::SliceOptions;
using netlist::StateRole;

// A miniature AES-shaped core: a 2-share secret state register pair with
// XOR feedback through fresh randomness, plus an unannotated 1-bit counter
// that must be *inferred* public. Layout:
//   st_s0, st_s1   annotated share regs (group 0), feedback st ^= r
//   cnt            unannotated toggle reg (cnt ^= 1 via NOT)
Netlist build_mini_state_machine(SignalId* st0 = nullptr,
                                 SignalId* st1 = nullptr,
                                 SignalId* cnt_out = nullptr) {
  Netlist nl;
  const SignalId x0 = nl.add_input(InputRole::kShare, "x_s0",
                                   ShareLabel{0, 0, 0});
  const SignalId x1 = nl.add_input(InputRole::kShare, "x_s1",
                                   ShareLabel{0, 1, 0});
  const SignalId r = nl.add_input(InputRole::kRandom, "r");
  const SignalId load = nl.add_input(InputRole::kControl, "load");

  const SignalId st_s0 = nl.make_reg_placeholder();
  nl.name_signal(st_s0, "st_s0");
  nl.annotate_register(st_s0, StateRole::kShare, ShareLabel{0, 0, 0});
  const SignalId st_s1 = nl.make_reg_placeholder();
  nl.name_signal(st_s1, "st_s1");
  nl.annotate_register(st_s1, StateRole::kShare, ShareLabel{0, 1, 0});
  nl.set_state_group_name(0, "st");

  const SignalId cnt = nl.make_reg_placeholder();
  nl.name_signal(cnt, "cnt");

  // Next state: reload from the re-masked input while load is high,
  // otherwise refresh the sharing with r.
  const SignalId st0_next = nl.mux(load, nl.xor_(st_s0, r), x0);
  const SignalId st1_next = nl.mux(load, nl.xor_(st_s1, r), x1);
  nl.connect_reg(st_s0, st0_next);
  nl.connect_reg(st_s1, st1_next);
  nl.connect_reg(cnt, nl.not_(cnt));

  const SignalId q = nl.xor_(st_s0, nl.and_(cnt, st_s1));
  nl.name_signal(q, "q");
  nl.add_output("q", q);
  nl.validate();
  if (st0) *st0 = st_s0;
  if (st1) *st1 = st_s1;
  if (cnt_out) *cnt_out = cnt;
  return nl;
}

const SliceCut* cut_of(const Slice& slice, SignalId reg) {
  for (const SliceCut& c : slice.cuts)
    if (c.reg == reg) return &c;
  return nullptr;
}

// --- label transfer -------------------------------------------------------------

TEST(Slice, TransfersShareLabelsAndInfersPublicState) {
  SignalId st0 = netlist::kNoSignal, st1 = netlist::kNoSignal,
           cnt = netlist::kNoSignal;
  const Netlist nl = build_mini_state_machine(&st0, &st1, &cnt);
  const Slice slice = netlist::extract_slice(nl);

  ASSERT_EQ(slice.cuts.size(), 3u);
  EXPECT_EQ(slice.first_transfer_group, nl.secret_group_count());

  const SliceCut* c0 = cut_of(slice, st0);
  const SliceCut* c1 = cut_of(slice, st1);
  const SliceCut* cc = cut_of(slice, cnt);
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(cc, nullptr);

  // Annotated share registers become share inputs of a fresh secret group.
  EXPECT_EQ(c0->role, InputRole::kShare);
  EXPECT_EQ(c0->label.secret, slice.first_transfer_group);
  EXPECT_EQ(c0->label.share, 0u);
  EXPECT_EQ(c1->role, InputRole::kShare);
  EXPECT_EQ(c1->label.secret, slice.first_transfer_group);
  EXPECT_EQ(c1->label.share, 1u);
  // The annotation-group display name rides onto the fresh secret group.
  EXPECT_EQ(slice.nl.secret_group_name(slice.first_transfer_group), "st");

  // The unannotated, untainted counter is inferred public -> control input.
  EXPECT_EQ(cc->role, InputRole::kControl);

  // Cut registers keep their names and export their D function.
  EXPECT_EQ(slice.nl.signal_name(c0->input), "st_s0");
  bool found_next = false;
  for (const auto& out : slice.nl.outputs())
    if (out.name == "next.st_s0" && out.signal == c0->next) found_next = true;
  EXPECT_TRUE(found_next);
  EXPECT_EQ(slice.next_of(st0), c0->next);
  EXPECT_EQ(slice.next_of(/*not a register*/ 0), netlist::kNoSignal);

  // The slice is a pipeline: unrolling must now be possible.
  EXPECT_NO_THROW(verif::sequential_depth(slice.nl));
  for (const SignalId held : slice.held_inputs)
    EXPECT_EQ(slice.nl.kind(held), GateKind::kInput);
  EXPECT_EQ(slice.held_inputs.size(), 3u);
}

TEST(Slice, PinningAStateRegisterSpecializesItToAConstant) {
  SignalId cnt = netlist::kNoSignal;
  const Netlist nl = build_mini_state_machine(nullptr, nullptr, &cnt);
  SliceOptions options;
  options.pin[cnt] = true;
  const Slice slice = netlist::extract_slice(nl, options);

  const SliceCut* cc = cut_of(slice, cnt);
  ASSERT_NE(cc, nullptr);
  EXPECT_TRUE(cc->pinned);
  EXPECT_EQ(cc->input, netlist::kNoSignal);
  EXPECT_EQ(slice.nl.kind(slice.map[cnt]), GateKind::kConst1);
  EXPECT_EQ(slice.held_inputs.size(), 2u);  // the two share cuts remain
}

TEST(Slice, TaintedUnannotatedFeedbackRegisterIsAnErrorWithACyclePath) {
  // A mask-holding register loop (r ^ itself) with no annotation: cutting
  // it would re-label accumulated randomness as an independent input.
  Netlist nl;
  const SignalId r = nl.add_input(InputRole::kRandom, "r");
  const SignalId acc = nl.make_reg_placeholder();
  nl.name_signal(acc, "acc");
  nl.connect_reg(acc, nl.xor_(acc, r));
  nl.add_output("q", acc);
  nl.validate();
  try {
    netlist::extract_slice(nl);
    FAIL() << "expected common::Error";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("acc"), std::string::npos) << msg;
    EXPECT_NE(msg.find("annotate_register"), std::string::npos) << msg;
  }
}

TEST(Slice, FeedForwardRegistersAreNotCut) {
  // A pure pipeline has no cycles: nothing to cut, slice == original shape.
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kShare, "a", ShareLabel{0, 0, 0});
  const SignalId p = nl.reg(nl.not_(a));
  nl.add_output("q", p);
  nl.validate();
  const Slice slice = netlist::extract_slice(nl);
  EXPECT_TRUE(slice.cuts.empty());
  EXPECT_TRUE(slice.held_inputs.empty());
  EXPECT_EQ(slice.nl.kind(slice.map[p]), GateKind::kReg);
}

// --- sequential_depth diagnostics ----------------------------------------------

TEST(Slice, SequentialDepthReportsTheFullRegisterCyclePath) {
  // Two registers in a loop: ra -> (comb) -> rb -> (comb) -> ra. The
  // feedback diagnostic must spell out the whole register path, not just
  // one register name.
  Netlist nl;
  const SignalId ra = nl.make_reg_placeholder();
  nl.name_signal(ra, "ra");
  const SignalId rb = nl.make_reg_placeholder();
  nl.name_signal(rb, "rb");
  nl.connect_reg(rb, nl.not_(ra));
  nl.connect_reg(ra, nl.not_(rb));
  nl.add_output("q", ra);
  nl.validate();
  try {
    verif::sequential_depth(nl);
    FAIL() << "expected common::Error";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("ra"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rb"), std::string::npos) << msg;
    EXPECT_NE(msg.find(" -> "), std::string::npos) << msg;
    EXPECT_NE(msg.find("extract_slice"), std::string::npos) << msg;
  }
}

// --- SNL round-trip --------------------------------------------------------------

TEST(Slice, StateAnnotationsRoundTripThroughSnl) {
  const Netlist nl = build_mini_state_machine();
  const Netlist back = netlist::parse_snl(netlist::write_snl(nl));

  ASSERT_EQ(back.size(), nl.size());
  EXPECT_EQ(back.annotated_registers(), nl.annotated_registers());
  for (const SignalId reg : nl.annotated_registers()) {
    const netlist::StateAnnotation* a = nl.register_annotation(reg);
    const netlist::StateAnnotation* b = back.register_annotation(reg);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->role, a->role);
    EXPECT_EQ(b->label.secret, a->label.secret);
    EXPECT_EQ(b->label.share, a->label.share);
    EXPECT_EQ(b->label.bit, a->label.bit);
  }
  EXPECT_EQ(back.named_state_groups(), nl.named_state_groups());
  EXPECT_EQ(back.state_group_name(0), "st");

  Netlist named = build_mini_state_machine();
  named.set_secret_group_name(0, "plaintext x");
  const Netlist back2 = netlist::parse_snl(netlist::write_snl(named));
  EXPECT_EQ(back2.secret_group_name(0), "plaintext x");
}

// --- stitched-simulation property ----------------------------------------------

// Simulates the full MaskedAes128 and its extracted slice side by side for
// several complete rounds: per cycle the slice's cut inputs are driven from
// tracked register state, and every signal the cut map relates must agree
// bit-for-bit across all 64 lanes.
TEST(Slice, StitchedAesSliceSimulationIsBitIdenticalToTheFullDesign) {
  Netlist nl;
  const gadgets::MaskedAes core = gadgets::build_masked_aes128(nl, {});
  const Slice slice = netlist::extract_slice(nl);
  ASSERT_FALSE(slice.cuts.empty());

  sim::Simulator full(nl);
  sim::Simulator cut(slice.nl);
  common::Xoshiro256 rng(7);

  // Plaintext/key shares: arbitrary per-lane words, held like the real
  // test-bench holds them.
  for (const auto& in : nl.inputs())
    if (in.role == InputRole::kShare) {
      const std::uint64_t v = rng.next();
      full.set_input(in.signal, v);
      cut.set_input(slice.map[in.signal], v);
    }

  // Tracked state of every cut register, all lanes; registers reset to 0.
  std::unordered_map<SignalId, std::uint64_t> state;
  for (const SliceCut& c : slice.cuts) state[c.reg] = 0;

  const std::size_t cycles = 3 * 6 + 2;  // three full round periods and a bit
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    for (const auto& in : nl.inputs())
      if (in.role == InputRole::kRandom) {
        const std::uint64_t v = rng.next();
        full.set_input(in.signal, v);
        cut.set_input(slice.map[in.signal], v);
      }
    for (const SliceCut& c : slice.cuts) cut.set_input(c.input, state[c.reg]);

    full.settle();
    cut.settle();

    std::size_t mismatches = 0;
    for (SignalId id = 0; id < nl.size() && mismatches < 5; ++id) {
      if (slice.map[id] == netlist::kNoSignal) continue;
      if (full.value(id) != cut.value(slice.map[id])) {
        ++mismatches;
        ADD_FAILURE() << "cycle " << cycle << ": " << nl.signal_name(id)
                      << " diverges between full design and slice";
      }
    }
    ASSERT_EQ(mismatches, 0u) << "slice diverged at cycle " << cycle;

    // Latch: tracked cut registers take their exported next values, the
    // slice-internal pipeline registers clock inside the simulator.
    for (const SliceCut& c : slice.cuts) state[c.reg] = cut.value(c.next);
    full.clock();
    cut.clock();
  }

  // Sanity: the design actually advanced (the round counter moved).
  bool any_nonzero = false;
  for (const SliceCut& c : slice.cuts) any_nonzero |= state[c.reg] != 0;
  EXPECT_TRUE(any_nonzero);
  (void)core;
}

}  // namespace
}  // namespace sca
