#include <gtest/gtest.h>

#include "src/aes/aes128.hpp"
#include "src/common/rng.hpp"
#include "src/gadgets/masked_aes.hpp"
#include "src/gadgets/sharing.hpp"
#include "src/netlist/celllib.hpp"
#include "src/netlist/ir.hpp"
#include "src/sim/simulator.hpp"
#include "tests/test_util.hpp"

namespace sca::gadgets {
namespace {

using netlist::Netlist;

// Runs one masked encryption on lane 0 and returns the recombined ciphertext.
aes::Block run_masked_encrypt(const Netlist& nl, const MaskedAes& core,
                              const aes::Block& pt, const aes::Key128& key,
                              common::Xoshiro256& rng) {
  sim::Simulator simulator(nl);
  for (std::size_t byte = 0; byte < 16; ++byte) {
    const auto pt_sh = boolean_share(pt[byte], 2, rng);
    const auto key_sh = boolean_share(key[byte], 2, rng);
    for (std::size_t share = 0; share < 2; ++share) {
      set_bus_all_lanes(simulator, core.pt[share][byte], pt_sh[share]);
      set_bus_all_lanes(simulator, core.key[share][byte], key_sh[share]);
    }
  }
  for (std::size_t cycle = 0; cycle < core.total_cycles; ++cycle) {
    testutil::feed_randomness(simulator, nl, core.nonzero_random_buses, rng);
    simulator.step();
  }
  simulator.settle();
  EXPECT_TRUE(simulator.value_in_lane(core.done, 0));
  aes::Block ct{};
  for (std::size_t byte = 0; byte < 16; ++byte)
    ct[byte] = static_cast<std::uint8_t>(
        read_bus_lane(simulator, core.ct[0][byte], 0) ^
        read_bus_lane(simulator, core.ct[1][byte], 0));
  return ct;
}

class MaskedAesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    nl_ = new Netlist();
    core_ = new MaskedAes(build_masked_aes128(*nl_, MaskedAesOptions{}));
    nl_->validate();
  }
  static void TearDownTestSuite() {
    delete core_;
    delete nl_;
    core_ = nullptr;
    nl_ = nullptr;
  }
  static Netlist* nl_;
  static MaskedAes* core_;
};

Netlist* MaskedAesTest::nl_ = nullptr;
MaskedAes* MaskedAesTest::core_ = nullptr;

TEST_F(MaskedAesTest, Fips197AppendixB) {
  const aes::Block pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                         0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const aes::Key128 key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const aes::Block expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                               0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  common::Xoshiro256 rng(1);
  EXPECT_EQ(run_masked_encrypt(*nl_, *core_, pt, key, rng), expected);
}

TEST_F(MaskedAesTest, Fips197AppendixC) {
  const aes::Block pt = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                         0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const aes::Key128 key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                           0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  common::Xoshiro256 rng(2);
  EXPECT_EQ(run_masked_encrypt(*nl_, *core_, pt, key, rng),
            aes::encrypt(pt, key));
}

TEST_F(MaskedAesTest, RandomVectorsAgainstReference) {
  common::Xoshiro256 rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    aes::Block pt;
    aes::Key128 key;
    for (auto& b : pt) b = rng.byte();
    for (auto& b : key) b = rng.byte();
    EXPECT_EQ(run_masked_encrypt(*nl_, *core_, pt, key, rng),
              aes::encrypt(pt, key));
  }
}

TEST_F(MaskedAesTest, FreshMasksChangeSharesNotResult) {
  // Same pt/key, different RNG seeds: ciphertext identical, ciphertext
  // *shares* different (the masking actually randomizes).
  const aes::Block pt{};
  const aes::Key128 key{};
  common::Xoshiro256 rng_a(10), rng_b(11);

  sim::Simulator sim_a(*nl_);
  // Instead of a full helper re-run, compare through the public helper and
  // then check shares with two explicit runs.
  auto run_and_grab_share0 = [&](common::Xoshiro256& rng) {
    sim::Simulator simulator(*nl_);
    for (std::size_t byte = 0; byte < 16; ++byte) {
      const auto pt_sh = boolean_share(pt[byte], 2, rng);
      const auto key_sh = boolean_share(key[byte], 2, rng);
      for (std::size_t share = 0; share < 2; ++share) {
        set_bus_all_lanes(simulator, core_->pt[share][byte], pt_sh[share]);
        set_bus_all_lanes(simulator, core_->key[share][byte], key_sh[share]);
      }
    }
    for (std::size_t cycle = 0; cycle < core_->total_cycles; ++cycle) {
      testutil::feed_randomness(simulator, *nl_, core_->nonzero_random_buses,
                                rng);
      simulator.step();
    }
    simulator.settle();
    aes::Block share0{}, full{};
    for (std::size_t byte = 0; byte < 16; ++byte) {
      share0[byte] = static_cast<std::uint8_t>(
          read_bus_lane(simulator, core_->ct[0][byte], 0));
      full[byte] = static_cast<std::uint8_t>(
          share0[byte] ^ read_bus_lane(simulator, core_->ct[1][byte], 0));
    }
    return std::pair{share0, full};
  };

  const auto [share_a, ct_a] = run_and_grab_share0(rng_a);
  const auto [share_b, ct_b] = run_and_grab_share0(rng_b);
  EXPECT_EQ(ct_a, ct_b);
  EXPECT_EQ(ct_a, aes::encrypt(pt, key));
  EXPECT_NE(share_a, share_b);
}

TEST_F(MaskedAesTest, StructureSanity) {
  // 20 Sbox instances, each with a non-zero-constrained B2M mask bus.
  EXPECT_EQ(core_->nonzero_random_buses.size(), 20u);
  // Plaintext/key/ct banks have 2 shares x 16 bytes.
  EXPECT_EQ(core_->pt.size(), 2u);
  EXPECT_EQ(core_->pt[0].size(), 16u);
  EXPECT_EQ(core_->ct[1].size(), 16u);
  // The core is big but bounded: sanity-band the gate count.
  EXPECT_GT(nl_->size(), 10000u);
  EXPECT_LT(nl_->size(), 100000u);
  // Secret groups: 16 pt + 16 key bytes.
  EXPECT_EQ(nl_->secret_group_count(), 32u);
}

TEST_F(MaskedAesTest, AreaReportIsPlausible) {
  const auto report =
      netlist::map_and_report(*nl_, netlist::CellLibrary::nangate45());
  // First-order masked AES cores are tens of kGE.
  EXPECT_GT(report.gate_equivalents, 10000.0);
  EXPECT_GT(report.sequential_cells, 1000u);
}

}  // namespace
}  // namespace sca::gadgets
