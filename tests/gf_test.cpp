#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/gf/gf2.hpp"
#include "src/gf/gf256.hpp"
#include "src/gf/tower.hpp"

namespace sca::gf {
namespace {

// --- GF(2^8), AES representation ---------------------------------------------

TEST(Gf256, KnownProducts) {
  // FIPS-197 examples.
  EXPECT_EQ(gf256_mul(0x57, 0x13), 0xFE);
  EXPECT_EQ(gf256_mul(0x57, 0x83), 0xC1);
  EXPECT_EQ(gf256_mul(0x02, 0x80), 0x1B);  // xtime overflow case
}

TEST(Gf256, MultiplicationIsCommutative) {
  common::Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint8_t a = rng.byte(), b = rng.byte();
    EXPECT_EQ(gf256_mul(a, b), gf256_mul(b, a));
  }
}

TEST(Gf256, MultiplicationIsAssociative) {
  common::Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    const std::uint8_t a = rng.byte(), b = rng.byte(), c = rng.byte();
    EXPECT_EQ(gf256_mul(gf256_mul(a, b), c), gf256_mul(a, gf256_mul(b, c)));
  }
}

TEST(Gf256, DistributesOverXor) {
  common::Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::uint8_t a = rng.byte(), b = rng.byte(), c = rng.byte();
    EXPECT_EQ(gf256_mul(a, b ^ c),
              static_cast<std::uint8_t>(gf256_mul(a, b) ^ gf256_mul(a, c)));
  }
}

TEST(Gf256, OneIsIdentityZeroAnnihilates) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256_mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf256_mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, InverseIsExhaustivelyCorrect) {
  EXPECT_EQ(gf256_inv(0), 0);  // AES convention
  for (unsigned a = 1; a < 256; ++a) {
    const std::uint8_t inv = gf256_inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256_mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256, ZeroAndOneAreTheirOwnInverses) {
  // The property the Kronecker-delta zero-mapping trick relies on:
  // (z XOR x)^-1 XOR z == x^-1 for z = [x == 0].
  EXPECT_EQ(gf256_inv(0x00), 0x00);
  EXPECT_EQ(gf256_inv(0x01), 0x01);
  for (unsigned x = 0; x < 256; ++x) {
    const std::uint8_t z = (x == 0) ? 1 : 0;
    const std::uint8_t mapped = static_cast<std::uint8_t>(x ^ z);
    EXPECT_EQ(static_cast<std::uint8_t>(gf256_inv(mapped) ^ z),
              gf256_inv(static_cast<std::uint8_t>(x)))
        << "x=" << x;
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  common::Xoshiro256 rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::uint8_t a = rng.byte();
    std::uint8_t expect = 1;
    for (unsigned n = 0; n < 16; ++n) {
      EXPECT_EQ(gf256_pow(a, n), expect) << "a=" << int(a) << " n=" << n;
      expect = gf256_mul(expect, a);
    }
  }
}

TEST(Gf256, GeneratorDetection) {
  // 0x03 is the classic AES generator; 0x01 has order 1; 0x00 is not in the
  // multiplicative group at all.
  EXPECT_TRUE(gf256_is_generator(0x03));
  EXPECT_FALSE(gf256_is_generator(0x01));
  EXPECT_FALSE(gf256_is_generator(0x00));
  // Count: GF(256)* has phi(255) = 128 generators.
  int generators = 0;
  for (unsigned g = 0; g < 256; ++g)
    if (gf256_is_generator(static_cast<std::uint8_t>(g))) ++generators;
  EXPECT_EQ(generators, 128);
}

// --- GF(2) linear algebra -----------------------------------------------------

TEST(BitMatrix, IdentityActsTrivially) {
  const BitMatrix id = BitMatrix::identity(8);
  for (unsigned x = 0; x < 256; ++x) EXPECT_EQ(id.apply(x), x);
}

TEST(BitMatrix, ApplyMatchesManualDotProduct) {
  BitMatrix m(3, 3);
  m.set(0, 1, true);          // y0 = x1
  m.set(1, 0, true);          // y1 = x0 ^ x2
  m.set(1, 2, true);
  m.set(2, 2, true);          // y2 = x2
  EXPECT_EQ(m.apply(0b001), 0b010u);
  EXPECT_EQ(m.apply(0b100), 0b110u);
  EXPECT_EQ(m.apply(0b101), 0b100u);
}

TEST(BitMatrix, MultiplyComposesWithApply) {
  common::Xoshiro256 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    BitMatrix a(8, 8), b(8, 8);
    for (std::size_t r = 0; r < 8; ++r) {
      a.set_row(r, rng.byte());
      b.set_row(r, rng.byte());
    }
    const BitMatrix ab = a * b;
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t x = rng.byte();
      EXPECT_EQ(ab.apply(x), a.apply(b.apply(x)));
    }
  }
}

TEST(BitMatrix, InverseRoundTrips) {
  common::Xoshiro256 rng(6);
  int tested = 0;
  while (tested < 20) {
    BitMatrix m(8, 8);
    for (std::size_t r = 0; r < 8; ++r) m.set_row(r, rng.byte());
    if (!m.invertible()) continue;
    ++tested;
    const BitMatrix inv = m.inverse();
    EXPECT_EQ(m * inv, BitMatrix::identity(8));
    EXPECT_EQ(inv * m, BitMatrix::identity(8));
  }
}

TEST(BitMatrix, SingularMatrixThrows) {
  BitMatrix m(4, 4);  // zero matrix
  EXPECT_FALSE(m.invertible());
  EXPECT_THROW(m.inverse(), common::Error);
}

TEST(BitMatrix, RankExamples) {
  EXPECT_EQ(BitMatrix::identity(7).rank(), 7u);
  BitMatrix m(3, 3);
  m.set_row(0, 0b011);
  m.set_row(1, 0b110);
  m.set_row(2, 0b101);  // row2 = row0 ^ row1
  EXPECT_EQ(m.rank(), 2u);
}

TEST(BitMatrix, TransposeInvolution) {
  common::Xoshiro256 rng(7);
  BitMatrix m(5, 9);
  for (std::size_t r = 0; r < 5; ++r) m.set_row(r, rng.next() & 0x1FF);
  const BitMatrix t = m.transpose();
  EXPECT_EQ(t.rows(), 9u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(t.transpose(), m);
}

TEST(BitMatrix, MatrixFromColumns) {
  const BitMatrix m = matrix_from_columns(3, {0b001, 0b010, 0b100});
  EXPECT_EQ(m, BitMatrix::identity(3));
}

// --- Tower field ----------------------------------------------------------------

TEST(TowerGf4, MulTableIsAField) {
  // Check the 4-element field axioms exhaustively.
  for (std::uint8_t a = 0; a < 4; ++a) {
    EXPECT_EQ(gf4_mul(a, 1), a);
    EXPECT_EQ(gf4_mul(a, 0), 0);
    for (std::uint8_t b = 0; b < 4; ++b) {
      EXPECT_EQ(gf4_mul(a, b), gf4_mul(b, a));
      for (std::uint8_t c = 0; c < 4; ++c)
        EXPECT_EQ(gf4_mul(gf4_mul(a, b), c), gf4_mul(a, gf4_mul(b, c)));
    }
  }
}

TEST(TowerGf4, SquareAndInverse) {
  for (std::uint8_t a = 0; a < 4; ++a) {
    EXPECT_EQ(gf4_sq(a), gf4_mul(a, a));
    if (a != 0) EXPECT_EQ(gf4_mul(a, gf4_inv(a)), 1);
  }
  EXPECT_EQ(gf4_inv(0), 0);
}

TEST(TowerGf4, MulByWMatchesGeneralMul) {
  for (std::uint8_t a = 0; a < 4; ++a) EXPECT_EQ(gf4_mul_w(a), gf4_mul(a, 0b10));
}

TEST(TowerGf16, FieldAxiomsExhaustive) {
  for (std::uint8_t a = 0; a < 16; ++a) {
    EXPECT_EQ(gf16_mul(a, 1), a);
    EXPECT_EQ(gf16_mul(a, 0), 0);
    EXPECT_EQ(gf16_sq(a), gf16_mul(a, a));
    if (a != 0) EXPECT_EQ(gf16_mul(a, gf16_inv(a)), 1);
    for (std::uint8_t b = 0; b < 16; ++b)
      EXPECT_EQ(gf16_mul(a, b), gf16_mul(b, a));
  }
  EXPECT_EQ(gf16_inv(0), 0);
}

TEST(TowerGf16, LambdaMultiplier) {
  for (std::uint8_t a = 0; a < 16; ++a)
    EXPECT_EQ(gf16_mul_lambda(a), gf16_mul(a, kLambda));
}

TEST(TowerGf256, InverseExhaustive) {
  EXPECT_EQ(tower_inv(0), 0);
  for (unsigned a = 1; a < 256; ++a)
    EXPECT_EQ(tower_mul(static_cast<std::uint8_t>(a),
                        tower_inv(static_cast<std::uint8_t>(a))),
              1)
        << "a=" << a;
}

TEST(TowerGf256, IsomorphismIsMultiplicativeExhaustively) {
  const TowerContext& ctx = TowerContext::instance();
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; b += 7) {  // stride keeps runtime sane
      const std::uint8_t lhs = ctx.aes_to_tower(
          gf256_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)));
      const std::uint8_t rhs =
          tower_mul(ctx.aes_to_tower(static_cast<std::uint8_t>(a)),
                    ctx.aes_to_tower(static_cast<std::uint8_t>(b)));
      EXPECT_EQ(lhs, rhs) << "a=" << a << " b=" << b;
    }
}

TEST(TowerGf256, IsomorphismRoundTrips) {
  const TowerContext& ctx = TowerContext::instance();
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(ctx.tower_to_aes(ctx.aes_to_tower(static_cast<std::uint8_t>(a))),
              a);
  }
}

TEST(TowerGf256, InversionCommutesWithIsomorphism) {
  // This is the exact property the masked Sbox's local inverter depends on:
  // invert in the tower, map back, and you get AES-representation inversion.
  const TowerContext& ctx = TowerContext::instance();
  for (unsigned a = 0; a < 256; ++a) {
    const std::uint8_t via_tower = ctx.tower_to_aes(
        tower_inv(ctx.aes_to_tower(static_cast<std::uint8_t>(a))));
    EXPECT_EQ(via_tower, gf256_inv(static_cast<std::uint8_t>(a))) << "a=" << a;
  }
}

}  // namespace
}  // namespace sca::gf
