#include <gtest/gtest.h>

#include <cstdlib>

#include "src/common/check.hpp"
#include "src/core/campaign.hpp"
#include "src/core/probes.hpp"
#include "src/core/report.hpp"
#include "src/core/search.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/dom.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/netlist/cone.hpp"
#include "src/netlist/ir.hpp"

namespace sca::eval {
namespace {

using gadgets::Bus;
using gadgets::RandomnessPlan;
using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

Netlist kronecker_netlist(const RandomnessPlan& plan, std::size_t shares = 2) {
  Netlist nl;
  std::vector<Bus> share_buses;
  for (std::size_t i = 0; i < shares; ++i)
    share_buses.push_back(gadgets::make_input_bus(
        nl, 8, InputRole::kShare, "b" + std::to_string(i) + "_", 0,
        static_cast<std::uint32_t>(i)));
  gadgets::build_kronecker(nl, share_buses, plan);
  return nl;
}

CampaignOptions kron_options(ProbeModel model, std::size_t sims) {
  CampaignOptions opts;
  opts.model = model;
  opts.simulations = sims;
  opts.fixed_values[0] = 0x00;  // the zero-value corner
  return opts;
}

// --- probe universe ---------------------------------------------------------------

TEST(Probes, DeduplicatesEquivalentPositions) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId b = nl.add_input(InputRole::kControl, "b");
  const SignalId x1 = nl.xor_(a, b);
  const SignalId x2 = nl.xnor_(a, b);  // same glitch-extended observation
  nl.not_(x1);
  (void)x2;
  const netlist::StableSupport supports(nl);
  const auto universe = build_probe_universe(nl, supports);
  // Unique observations: {a}, {b}, {a, b} — the three XOR-ish gates collapse.
  EXPECT_EQ(universe.size(), 3u);
}

TEST(Probes, ScopeFilterRestricts) {
  Netlist nl;
  nl.push_scope("inner");
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  nl.name_signal(nl.not_(a), "na");
  nl.pop_scope();
  const SignalId b = nl.add_input(InputRole::kControl, "b");
  nl.not_(b);
  // An input and its inverter share one glitch-extended observation set, so
  // the unfiltered universe dedups to {a} and {b}.
  const netlist::StableSupport supports(nl);
  EXPECT_EQ(build_probe_universe(nl, supports).size(), 2u);
  const auto filtered = build_probe_universe(nl, supports, "inner.");
  EXPECT_EQ(filtered.size(), 1u);
  for (const auto& p : filtered)
    EXPECT_EQ(p.name.rfind("inner.", 0), 0u) << p.name;
}

TEST(Probes, EnumerateSets) {
  EXPECT_EQ(enumerate_probe_sets(5, 1).size(), 5u);
  EXPECT_EQ(enumerate_probe_sets(5, 2).size(), 10u);
  EXPECT_EQ(enumerate_probe_sets(5, 3).size(), 10u);
  EXPECT_THROW(enumerate_probe_sets(5, 4), common::Error);
}

TEST(Probes, EnumerateSetsEdgeCases) {
  // A universe smaller than the order has no sets of that size: empty, not
  // an error (the order-2 sweep over a one-probe scope is vacuously clean).
  EXPECT_TRUE(enumerate_probe_sets(1, 2).empty());
  EXPECT_TRUE(enumerate_probe_sets(0, 1).empty());
  EXPECT_TRUE(enumerate_probe_sets(2, 3).empty());
  // Order 0 would be the empty observation — meaningless, rejected.
  EXPECT_THROW(enumerate_probe_sets(5, 0), common::Error);
  EXPECT_THROW(enumerate_probe_sets(0, 0), common::Error);
}

TEST(Probes, UnionObservationMergesAndValidates) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId b = nl.add_input(InputRole::kControl, "b");
  const SignalId c = nl.add_input(InputRole::kControl, "c");
  nl.and_(a, b);
  nl.and_(b, c);
  const netlist::StableSupport supports(nl);
  const auto universe = build_probe_universe(nl, supports);
  // {a}, {b}, {c}, {a,b}, {b,c} — five distinct observation sets.
  ASSERT_EQ(universe.size(), 5u);
  std::size_t ab = universe.size(), bc = universe.size();
  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (universe[i].observed == std::vector<SignalId>{a, b}) ab = i;
    if (universe[i].observed == std::vector<SignalId>{b, c}) bc = i;
  }
  ASSERT_LT(ab, universe.size());
  ASSERT_LT(bc, universe.size());
  const auto& lo = std::min(ab, bc);
  const auto& hi = std::max(ab, bc);
  // The joint observation dedups the shared b and stays ascending.
  EXPECT_EQ(union_observation(universe, {lo, hi}),
            (std::vector<SignalId>{a, b, c}));
  // A single-probe "union" is the probe's own observation set.
  EXPECT_EQ(union_observation(universe, {ab}), universe[ab].observed);
  // Empty sets, duplicate indices (an order-2 set silently collapsing to
  // order 1), ill-ordered and out-of-range sets are all rejected.
  EXPECT_THROW(union_observation(universe, {}), common::Error);
  EXPECT_THROW(union_observation(universe, {ab, ab}), common::Error);
  EXPECT_THROW(union_observation(universe, {hi, lo}), common::Error);
  EXPECT_THROW(union_observation(universe, {universe.size()}), common::Error);
}

// --- campaign basics ---------------------------------------------------------------

TEST(Campaign, RequiresShares) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  nl.not_(a);
  EXPECT_THROW(run_fixed_vs_random(nl, CampaignOptions{}), common::Error);
}

TEST(Campaign, UnmaskedRecombinationFailsImmediately) {
  Netlist nl;
  const SignalId s0 = nl.add_input(InputRole::kShare, "s0", {0, 0, 0});
  const SignalId s1 = nl.add_input(InputRole::kShare, "s1", {0, 1, 0});
  nl.name_signal(nl.xor_(s0, s1), "secret");
  CampaignOptions opts;
  opts.simulations = 20000;
  opts.fixed_values[0] = 1;
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  EXPECT_FALSE(result.pass);
  EXPECT_GT(result.max_minus_log10_p, 100.0);
  EXPECT_EQ(result.results.front().name, "secret");
}

TEST(Campaign, DomAndPasses) {
  Netlist nl;
  std::vector<SignalId> x = {nl.add_input(InputRole::kShare, "x0", {0, 0, 0}),
                             nl.add_input(InputRole::kShare, "x1", {0, 1, 0})};
  std::vector<SignalId> y = {nl.add_input(InputRole::kShare, "y0", {1, 0, 0}),
                             nl.add_input(InputRole::kShare, "y1", {1, 1, 0})};
  std::vector<SignalId> r = {nl.add_input(InputRole::kRandom, "r")};
  gadgets::build_dom_and(nl, x, y, r, "dom");
  CampaignOptions opts;
  opts.simulations = 50000;
  opts.fixed_values[0] = 1;
  opts.fixed_values[1] = 1;
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  EXPECT_TRUE(result.pass) << to_string(result);
}

TEST(Campaign, ResultBookkeeping) {
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_full_fresh());
  const CampaignResult result =
      run_fixed_vs_random(nl, kron_options(ProbeModel::kGlitch, 20000));
  EXPECT_GT(result.total_sets, 50u);
  EXPECT_EQ(result.results.size(), result.total_sets);
  EXPECT_GE(result.simulations_per_group, 20000u);
  // Sorted descending.
  for (std::size_t i = 1; i < result.results.size(); ++i)
    EXPECT_GE(result.results[i - 1].minus_log10_p,
              result.results[i].minus_log10_p);
  // Report renders.
  const std::string text = to_string(result);
  EXPECT_NE(text.find("fixed-vs-random"), std::string::npos);
  EXPECT_NE(text.find(result.pass ? "PASS" : "FAIL"), std::string::npos);
}

TEST(Campaign, MaxProbeSetCapIsReported) {
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_full_fresh());
  CampaignOptions opts = kron_options(ProbeModel::kGlitch, 5000);
  opts.max_probe_sets = 10;
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  EXPECT_EQ(result.total_sets, 10u);
  EXPECT_GT(result.dropped_sets, 0u);
  EXPECT_NE(to_string(result).find("WARNING"), std::string::npos);
}

// --- the paper's claims, sampled (glitch model) -------------------------------------

struct PlanVerdict {
  const char* plan;
  ProbeModel model;
  bool expect_pass;
};

class CampaignPaperClaims : public ::testing::TestWithParam<PlanVerdict> {
 protected:
  static RandomnessPlan plan_by_name(const std::string& name) {
    if (name == "full") return RandomnessPlan::kron1_full_fresh();
    if (name == "eq6") return RandomnessPlan::kron1_demeyer_eq6();
    if (name == "eq9") return RandomnessPlan::kron1_proposed_eq9();
    if (name == "r5r6") return RandomnessPlan::kron1_r5_equals_r6();
    if (name == "trans1") return RandomnessPlan::kron1_transition_secure(1);
    if (name == "trans2") return RandomnessPlan::kron1_transition_secure(2);
    if (name == "trans3") return RandomnessPlan::kron1_transition_secure(3);
    if (name == "trans4") return RandomnessPlan::kron1_transition_secure(4);
    throw common::Error("unknown plan in test");
  }
};

TEST_P(CampaignPaperClaims, Verdict) {
  const PlanVerdict param = GetParam();
  Netlist nl = kronecker_netlist(plan_by_name(param.plan));
  const CampaignResult result =
      run_fixed_vs_random(nl, kron_options(param.model, 100000));
  EXPECT_EQ(result.pass, param.expect_pass)
      << param.plan << "\n"
      << to_string(result);
  if (!param.expect_pass) {
    // Real leaks are gross: far beyond the 10^-7 threshold.
    EXPECT_GT(result.max_minus_log10_p, 30.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperClaims, CampaignPaperClaims,
    ::testing::Values(
        // Section III, glitch model.
        PlanVerdict{"full", ProbeModel::kGlitch, true},
        PlanVerdict{"eq6", ProbeModel::kGlitch, false},
        PlanVerdict{"eq9", ProbeModel::kGlitch, true},
        PlanVerdict{"r5r6", ProbeModel::kGlitch, false},
        // Section IV, transitions: Eq.(9) breaks, the r7-family holds.
        PlanVerdict{"eq9", ProbeModel::kGlitchTransition, false},
        PlanVerdict{"eq6", ProbeModel::kGlitchTransition, false},
        PlanVerdict{"full", ProbeModel::kGlitchTransition, true},
        PlanVerdict{"trans1", ProbeModel::kGlitchTransition, true},
        PlanVerdict{"trans2", ProbeModel::kGlitchTransition, true},
        PlanVerdict{"trans3", ProbeModel::kGlitchTransition, true},
        PlanVerdict{"trans4", ProbeModel::kGlitchTransition, true}),
    [](const auto& info) {
      return std::string(info.param.plan) +
             (info.param.model == ProbeModel::kGlitch ? "_glitch" : "_trans");
    });

TEST(Campaign, Eq6LeakNamesG7) {
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6());
  const CampaignResult result =
      run_fixed_vs_random(nl, kron_options(ProbeModel::kGlitch, 100000));
  ASSERT_FALSE(result.pass);
  EXPECT_NE(result.results.front().name.find("G7"), std::string::npos)
      << result.results.front().name;
}

TEST(Campaign, SeedsReproduce) {
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_full_fresh());
  CampaignOptions opts = kron_options(ProbeModel::kGlitch, 20000);
  opts.seed = 42;
  const CampaignResult a = run_fixed_vs_random(nl, opts);
  const CampaignResult b = run_fixed_vs_random(nl, opts);
  EXPECT_EQ(a.max_minus_log10_p, b.max_minus_log10_p);
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  // The contract of the sharded engine: the chunk grid and per-chunk RNG
  // streams depend only on the workload and seed, never on the thread count,
  // so every statistic is bit-identical for threads in {1, 2, 8}.
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6());
  CampaignOptions opts = kron_options(ProbeModel::kGlitch, 20000);
  opts.seed = 7;

  opts.threads = 1;
  const CampaignResult base = run_fixed_vs_random(nl, opts);
  for (unsigned threads : {2u, 8u}) {
    opts.threads = threads;
    const CampaignResult result = run_fixed_vs_random(nl, opts);
    EXPECT_EQ(result.threads_used, threads);
    EXPECT_EQ(result.pass, base.pass);
    EXPECT_EQ(result.max_minus_log10_p, base.max_minus_log10_p)
        << threads << " threads";
    ASSERT_EQ(result.results.size(), base.results.size());
    for (std::size_t i = 0; i < base.results.size(); ++i) {
      EXPECT_EQ(result.results[i].name, base.results[i].name);
      EXPECT_EQ(result.results[i].g.g, base.results[i].g.g);
      EXPECT_EQ(result.results[i].minus_log10_p,
                base.results[i].minus_log10_p);
    }
  }
}

TEST(Campaign, DeterministicUnderTableBatching) {
  // Probe-set batching (small table_memory_budget) must compose with
  // sharding without changing any statistic.
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6());
  CampaignOptions opts = kron_options(ProbeModel::kGlitch, 20000);
  opts.threads = 2;
  const CampaignResult unbatched = run_fixed_vs_random(nl, opts);
  opts.table_memory_budget = 4 * 1024;  // forces many batches
  const CampaignResult batched = run_fixed_vs_random(nl, opts);
  EXPECT_GT(batched.table_batches, unbatched.table_batches);
  EXPECT_EQ(batched.max_minus_log10_p, unbatched.max_minus_log10_p);
  ASSERT_EQ(batched.results.size(), unbatched.results.size());
  for (std::size_t i = 0; i < unbatched.results.size(); ++i)
    EXPECT_EQ(batched.results[i].minus_log10_p,
              unbatched.results[i].minus_log10_p);
}

TEST(Campaign, BitSlicedMatchesScalarBinForBin) {
  // The bit-sliced accumulation path (CSA popcounts, packed transposes,
  // flat direct-indexed tables) must be a pure speedup: every statistic is
  // bit-identical to the scalar reference path on the same seed, across the
  // glitch model, the transition model, and both thread counts.
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6());
  for (ProbeModel model : {ProbeModel::kGlitch, ProbeModel::kGlitchTransition}) {
    CampaignOptions opts = kron_options(model, 2000);
    opts.seed = 11;
    for (unsigned threads : {1u, 2u}) {
      opts.threads = threads;
      opts.accumulation = Accumulation::kScalar;
      const CampaignResult scalar = run_fixed_vs_random(nl, opts);
      opts.accumulation = Accumulation::kBitSliced;
      const CampaignResult sliced = run_fixed_vs_random(nl, opts);
      ASSERT_EQ(sliced.results.size(), scalar.results.size());
      EXPECT_EQ(sliced.pass, scalar.pass);
      EXPECT_EQ(sliced.max_minus_log10_p, scalar.max_minus_log10_p);
      for (std::size_t i = 0; i < scalar.results.size(); ++i) {
        EXPECT_EQ(sliced.results[i].name, scalar.results[i].name);
        EXPECT_EQ(sliced.results[i].g.g, scalar.results[i].g.g)
            << sliced.results[i].name;
        EXPECT_EQ(sliced.results[i].g.bins, scalar.results[i].g.bins);
        EXPECT_EQ(sliced.results[i].g.n_fixed, scalar.results[i].g.n_fixed);
        EXPECT_EQ(sliced.results[i].minus_log10_p,
                  scalar.results[i].minus_log10_p);
      }
    }
  }
}

TEST(Campaign, BitSlicedMatchesScalarTTest) {
  // Same contract for the t-test: the weighted Hamming-weight moment feed
  // (add_weighted of popcount histograms) must reproduce the per-lane
  // scalar moment stream exactly, including FP summation order.
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_full_fresh());
  CampaignOptions opts = kron_options(ProbeModel::kGlitch, 2000);
  opts.statistic = Statistic::kWelchTTest;
  opts.threads = 2;
  opts.accumulation = Accumulation::kScalar;
  const CampaignResult scalar = run_fixed_vs_random(nl, opts);
  opts.accumulation = Accumulation::kBitSliced;
  const CampaignResult sliced = run_fixed_vs_random(nl, opts);
  ASSERT_EQ(sliced.results.size(), scalar.results.size());
  for (std::size_t i = 0; i < scalar.results.size(); ++i) {
    EXPECT_EQ(sliced.results[i].t.t, scalar.results[i].t.t)
        << sliced.results[i].name;
    EXPECT_EQ(sliced.results[i].severity, scalar.results[i].severity);
  }
}

TEST(Campaign, TTestDeterministicAcrossThreadCounts) {
  // Welford moment merging is FP-order-sensitive; the ordered chunk merge
  // must make the t statistic bit-identical too.
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_full_fresh());
  CampaignOptions opts = kron_options(ProbeModel::kGlitch, 20000);
  opts.statistic = Statistic::kWelchTTest;
  opts.threads = 1;
  const CampaignResult base = run_fixed_vs_random(nl, opts);
  opts.threads = 8;
  const CampaignResult wide = run_fixed_vs_random(nl, opts);
  ASSERT_EQ(wide.results.size(), base.results.size());
  for (std::size_t i = 0; i < base.results.size(); ++i)
    EXPECT_EQ(wide.results[i].severity, base.results[i].severity);
}

TEST(Campaign, ThreadsEnvVariableIsHonored) {
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_full_fresh());
  CampaignOptions opts = kron_options(ProbeModel::kGlitch, 5000);
  ::setenv("SCA_THREADS", "3", 1);
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  ::unsetenv("SCA_THREADS");
  EXPECT_EQ(result.threads_used, 3u);
}

TEST(Campaign, SecondOrderFindsPairLeakInvisibleAtFirstOrder) {
  // A circuit that is first-order secure but leaks jointly: two registers
  // holding the two shares of a secret. Any single extended probe sees one
  // share; the pair sees both.
  Netlist nl;
  const SignalId s0 = nl.add_input(InputRole::kShare, "s0", {0, 0, 0});
  const SignalId s1 = nl.add_input(InputRole::kShare, "s1", {0, 1, 0});
  nl.name_signal(nl.reg(s0), "r0");
  nl.name_signal(nl.reg(s1), "r1");
  CampaignOptions opts;
  opts.simulations = 50000;
  opts.fixed_values[0] = 1;

  opts.order = 1;
  EXPECT_TRUE(run_fixed_vs_random(nl, opts).pass);
  opts.order = 2;
  const CampaignResult second = run_fixed_vs_random(nl, opts);
  EXPECT_FALSE(second.pass);
  EXPECT_NE(second.results.front().name.find("&"), std::string::npos);
}


TEST(Campaign, TTestStatisticFlagsUnmaskedRegisteredValue) {
  // The t-test works on the Hamming weight of the *stable* observation. A
  // combinational XOR of the shares is invisible to it (the extended probe
  // sees the two shares, whose joint HW mean is 1 for any secret) — the
  // unmasked value must be registered to shift an observable mean, which is
  // exactly what happens when a real design stores an unmasked intermediate.
  Netlist nl;
  const SignalId s0 = nl.add_input(InputRole::kShare, "s0", {0, 0, 0});
  const SignalId s1 = nl.add_input(InputRole::kShare, "s1", {0, 1, 0});
  const SignalId stored = nl.reg(nl.xor_(s0, s1));
  nl.name_signal(stored, "secret_reg");
  nl.not_(stored);  // a consumer probing the register
  CampaignOptions opts;
  opts.statistic = Statistic::kWelchTTest;
  opts.simulations = 50000;
  opts.fixed_values[0] = 1;
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  EXPECT_FALSE(result.pass);
  EXPECT_GT(result.results.front().severity, stats::kTvlaThreshold);
  EXPECT_EQ(result.results.front().name, "secret_reg");
}

TEST(Campaign, TTestMissesTheEq6LeakTheGTestCatches) {
  // A methodological finding this reproduction surfaced: the Eq.(6) flaw
  // changes the *joint distribution* of the probe observation but not its
  // Hamming-weight mean, so the univariate TVLA t-test stays silent where
  // the PROLEAD-style distribution test triggers — one more motivation for
  // the paper's choice of tool.
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6());
  CampaignOptions opts = kron_options(ProbeModel::kGlitch, 100000);
  opts.statistic = Statistic::kWelchTTest;
  EXPECT_TRUE(run_fixed_vs_random(nl, opts).pass);
  opts.statistic = Statistic::kGTest;
  EXPECT_FALSE(run_fixed_vs_random(nl, opts).pass);
}

TEST(Campaign, TTestRejectsOrderTwo) {
  Netlist nl = kronecker_netlist(RandomnessPlan::kron1_full_fresh());
  CampaignOptions opts = kron_options(ProbeModel::kGlitch, 5000);
  opts.statistic = Statistic::kWelchTTest;
  opts.order = 2;
  EXPECT_THROW(run_fixed_vs_random(nl, opts), common::Error);
}

// --- search -------------------------------------------------------------------------

TEST(Search, GlitchModelMinimumIsFourBits) {
  // Under the glitch-only model the exact verifier drives the search; the
  // paper's Eq. (9) shows 4 fresh bits suffice. Restrict the exhaustive
  // partition search to <= 4 fresh bits and confirm a secure 4-bit plan
  // exists but no cheaper one.
  SearchOptions opts;
  opts.model = ProbeModel::kGlitch;
  const SearchResult result = search_all_partitions(opts, /*max_fresh=*/4);
  EXPECT_EQ(result.min_secure_fresh(), 4u);
  // Eq. (9) itself must be among the secure plans (up to renaming, the
  // partition 0123312 == r1..r4 fresh, r5=r4, r6=r2, r7=r3).
  bool found_eq9_shape = false;
  for (const auto* plan : result.secure_plans()) {
    const auto& slots = plan->plan.slots();
    if (slots[4] == slots[3] && slots[5] == slots[1] && slots[6] == slots[2])
      found_eq9_shape = true;
  }
  EXPECT_TRUE(found_eq9_shape);
}

TEST(Search, TransitionModelR7Family) {
  // Section IV: with r1..r6 fresh, exactly r7 in {r1, r2, r3, r4} (and the
  // fully fresh baseline) survive the glitch+transition model.
  SearchOptions opts;
  opts.model = ProbeModel::kGlitchTransition;
  opts.simulations = 60000;
  const SearchResult result = search_r7_reuse(opts);
  ASSERT_EQ(result.evaluations.size(), 7u);
  EXPECT_TRUE(result.evaluations[0].secure);  // full fresh
  for (int i = 1; i <= 4; ++i)
    EXPECT_TRUE(result.evaluations[i].secure)
        << result.evaluations[i].plan.name();
  EXPECT_FALSE(result.evaluations[5].secure);  // r7 = r5
  EXPECT_FALSE(result.evaluations[6].secure);  // r7 = r6
  EXPECT_EQ(result.min_secure_fresh(), 6u);
}

TEST(Search, EvaluateSinglePlanUsesExactForGlitch) {
  SearchOptions opts;
  opts.model = ProbeModel::kGlitch;
  const PlanEvaluation eval =
      evaluate_kron1_plan(RandomnessPlan::kron1_demeyer_eq6(), opts);
  EXPECT_TRUE(eval.exact);
  EXPECT_FALSE(eval.secure);
  EXPECT_GT(eval.severity, 0.0);
  EXPECT_FALSE(eval.worst_probe.empty());
}

}  // namespace
}  // namespace sca::eval
