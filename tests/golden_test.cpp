// Golden-verdict regression suite: the paper's E1–E8 verdicts from
// EXPERIMENTS.md, asserted at small seeded budgets so CI catches any
// statistic, gadget, or probe-model regression. Every campaign here is
// deterministic (fixed seed, fixed budget, thread-count independent), so
// these are exact golden values, not statistical expectations:
//
//   E1  Sbox w/o Kronecker, fixed 0x01, glitch model      -> PASS
//   E2  Sbox w/ Kronecker + Eq.(6), fixed 0x00            -> FAIL, all
//       leaking probe sets localized in sbox.kron.G7.* (Fig. 3)
//   E3  7 fresh masks                                     -> PASS; exact
//       verifier secure over all 107 unique probes
//   E4  single reuse r1 = r3                              -> leaks,
//       worst probe kron.G7.inner0, TV distance exactly 0.125
//   E5  pair reuse r1 = r3, r2 = r4                       -> TV 0.375
//   E6  Eq.(9) (4 fresh bits)                             -> secure (exact
//       and sampled)
//   E7  r5 = r6                                           -> leaks, TV 0.5
//   E8  glitch+transition: Eq.(9) fails; r7 = r1..r4 secure, r7 = r5/r6
//       leak; minimum fresh bits = 6
//
// Plus the null-calibration guard: a random-vs-random campaign must stay
// under the 7.0 threshold on every probe set.

#include <gtest/gtest.h>

#include <string>

#include "bench/bench_util.hpp"
#include "src/core/campaign.hpp"
#include "src/core/search.hpp"
#include "src/verif/exact.hpp"

namespace sca::eval {
namespace {

using gadgets::MaskedSboxOptions;
using gadgets::RandomnessPlan;

// Small-budget goldens: E2's leak scales linearly with the budget (~72 at
// 20 k sims vs 723 at 200 k), while null maxima are budget-independent, so
// 20 k separates PASS from FAIL by an order of magnitude.
constexpr std::size_t kSims = 20'000;

TEST(GoldenVerdicts, E1SboxWithoutKroneckerPasses) {
  MaskedSboxOptions options;
  options.include_kronecker = false;
  const CampaignResult result =
      benchutil::run_sbox(options, 0x01, ProbeModel::kGlitch, kSims);
  EXPECT_TRUE(result.pass);
  EXPECT_EQ(result.leaking_sets, 0u);
  EXPECT_LT(result.max_minus_log10_p, 7.0);
}

TEST(GoldenVerdicts, E2KroneckerEq6FailsLocalizedInG7) {
  MaskedSboxOptions options;
  options.kron_plan = RandomnessPlan::kron1_demeyer_eq6();
  const CampaignResult result =
      benchutil::run_sbox(options, 0x00, ProbeModel::kGlitch, kSims);
  EXPECT_FALSE(result.pass);
  EXPECT_GT(result.max_minus_log10_p, 30.0);  // ~72 at this budget
  // Fig. 3's localization: every leaking probe set sits inside the
  // Kronecker gate G7, and the worst one is among them.
  ASSERT_GT(result.leaking_sets, 0u);
  for (const auto& r : result.results) {
    if (!r.leaking) continue;
    EXPECT_NE(r.name.find("sbox.kron.G7."), std::string::npos) << r.name;
  }
  EXPECT_NE(result.results.front().name.find("sbox.kron.G7."),
            std::string::npos);
}

TEST(GoldenVerdicts, E3FreshMasksPassSampledAndExact) {
  MaskedSboxOptions options;
  options.kron_plan = RandomnessPlan::kron1_full_fresh();
  const CampaignResult sampled =
      benchutil::run_sbox(options, 0x00, ProbeModel::kGlitch, kSims);
  EXPECT_TRUE(sampled.pass);

  const verif::ExactReport exact = verif::verify_first_order_glitch(
      benchutil::kronecker_netlist(RandomnessPlan::kron1_full_fresh()));
  EXPECT_FALSE(exact.any_leak);
  EXPECT_FALSE(exact.any_skipped);
  EXPECT_EQ(exact.probes_total, 107u);
}

TEST(GoldenVerdicts, E4SingleReuseLeaksWithTvOneEighth) {
  const verif::ExactReport report = verif::verify_first_order_glitch(
      benchutil::kronecker_netlist(RandomnessPlan::kron1_single_reuse_r1r3()));
  ASSERT_TRUE(report.any_leak);
  double worst_tv = 0.0;
  std::string worst_name;
  for (const auto* leak : report.leaking()) {
    if (leak->max_tv_distance > worst_tv) {
      worst_tv = leak->max_tv_distance;
      worst_name = leak->name;
    }
  }
  EXPECT_DOUBLE_EQ(worst_tv, 0.125);  // exact rational from enumeration
  EXPECT_EQ(worst_name, "kron.G7.inner0");
}

TEST(GoldenVerdicts, E5PairReuseIsStrictlyMoreSevere) {
  const verif::ExactReport report = verif::verify_first_order_glitch(
      benchutil::kronecker_netlist(RandomnessPlan::kron1_pair_reuse()));
  ASSERT_TRUE(report.any_leak);
  double worst_tv = 0.0;
  for (const auto* leak : report.leaking())
    worst_tv = std::max(worst_tv, leak->max_tv_distance);
  EXPECT_DOUBLE_EQ(worst_tv, 0.375);
}

TEST(GoldenVerdicts, E6ProposedEq9IsSecure) {
  const verif::ExactReport exact = verif::verify_first_order_glitch(
      benchutil::kronecker_netlist(RandomnessPlan::kron1_proposed_eq9()));
  EXPECT_FALSE(exact.any_leak);
  EXPECT_FALSE(exact.any_skipped);

  MaskedSboxOptions options;
  options.kron_plan = RandomnessPlan::kron1_proposed_eq9();
  const CampaignResult sampled =
      benchutil::run_sbox(options, 0x00, ProbeModel::kGlitch, kSims);
  EXPECT_TRUE(sampled.pass);
}

TEST(GoldenVerdicts, E7R5EqualsR6LeaksWithTvOneHalf) {
  const verif::ExactReport report = verif::verify_first_order_glitch(
      benchutil::kronecker_netlist(RandomnessPlan::kron1_r5_equals_r6()));
  ASSERT_TRUE(report.any_leak);
  double worst_tv = 0.0;
  for (const auto* leak : report.leaking())
    worst_tv = std::max(worst_tv, leak->max_tv_distance);
  EXPECT_DOUBLE_EQ(worst_tv, 0.5);

  const CampaignResult sampled = benchutil::run_kronecker(
      RandomnessPlan::kron1_r5_equals_r6(), ProbeModel::kGlitch, kSims);
  EXPECT_FALSE(sampled.pass);
}

TEST(GoldenVerdicts, E8TransitionSearchFindsTheFourSolutions) {
  const CampaignResult eq9 = benchutil::run_kronecker(
      RandomnessPlan::kron1_proposed_eq9(), ProbeModel::kGlitchTransition,
      kSims);
  EXPECT_FALSE(eq9.pass);  // Eq.(9) breaks once transitions are modeled

  SearchOptions options;
  options.model = ProbeModel::kGlitchTransition;
  options.simulations = kSims;
  const SearchResult search = search_r7_reuse(options);
  ASSERT_EQ(search.evaluations.size(), 7u);
  EXPECT_TRUE(search.evaluations[0].secure);  // 7 fresh baseline
  for (int i = 1; i <= 4; ++i)
    EXPECT_TRUE(search.evaluations[i].secure) << "r7 = r" << i;
  EXPECT_FALSE(search.evaluations[5].secure);  // r7 = r5
  EXPECT_FALSE(search.evaluations[6].secure);  // r7 = r6
  EXPECT_EQ(search.min_secure_fresh(), 6u);
}

// E9 (second order): the unoptimized and repaired-reduced second-order
// Kroneckers pass at orders 1 and 2; the naive 13-bit slot sharing passes
// order 1 but FAILS order 2 decisively (severity ~30+ at 4 k sims against
// the 7.0 threshold, budget-linear like E2, so these are stable goldens).
// The order-2 budget is small because the order-2 set universe (~32 k
// pairs) multiplies the per-simulation cost ~100x over order 1.
constexpr std::size_t kSims2 = 4'000;

TEST(GoldenVerdicts, E9NaiveThirteenPassesOrderOneFailsOrderTwo) {
  const auto naive = RandomnessPlan::kron2_naive13();
  const CampaignResult o1 = benchutil::run_kronecker(
      naive, ProbeModel::kGlitch, kSims, 1, 3);
  EXPECT_TRUE(o1.pass);
  const CampaignResult o2 = benchutil::run_kronecker(
      naive, ProbeModel::kGlitch, kSims2, 2, 3);
  EXPECT_FALSE(o2.pass);
  EXPECT_GT(o2.max_minus_log10_p, 15.0);  // ~30 at this budget
  // The leak is a probe *pair* inside the Kronecker.
  ASSERT_GT(o2.leaking_sets, 0u);
  EXPECT_NE(o2.results.front().name.find(" & "), std::string::npos);
  EXPECT_NE(o2.results.front().name.find("kron."), std::string::npos);
}

TEST(GoldenVerdicts, E9RepairedReducedPassesOrdersOneAndTwo) {
  const auto reduced = RandomnessPlan::kron2_reduced();
  EXPECT_EQ(reduced.fresh_count(), 18u);
  const CampaignResult o1 = benchutil::run_kronecker(
      reduced, ProbeModel::kGlitchTransition, kSims, 1, 3);
  EXPECT_TRUE(o1.pass);
  EXPECT_EQ(o1.leaking_sets, 0u);
  const CampaignResult o2 = benchutil::run_kronecker(
      reduced, ProbeModel::kGlitchTransition, kSims2, 2, 3);
  EXPECT_TRUE(o2.pass);
  EXPECT_EQ(o2.leaking_sets, 0u);
  EXPECT_LT(o2.max_minus_log10_p, 7.0);
}

// Null calibration: with the fixed group drawing random secrets too, the
// null hypothesis is true by construction — a verdict above 7.0 would be a
// false positive of the G-test/Williams-correction path itself. The max
// over N probe sets should behave like the max of N null p-values
// (~log10(N) ~ 3), far below the threshold.
TEST(GoldenVerdicts, NullCalibrationProducesNoVerdicts) {
  netlist::Netlist nl;
  gadgets::MaskedSboxOptions sbox_opts;
  sbox_opts.kron_plan = RandomnessPlan::kron1_proposed_eq9();
  const gadgets::MaskedSbox sbox = gadgets::build_masked_sbox(nl, sbox_opts);
  CampaignOptions opts;
  opts.model = ProbeModel::kGlitch;
  opts.simulations = kSims;
  opts.fixed_values[0] = 0x00;
  opts.nonzero_random_buses = {sbox.rand_b2m};
  opts.null_calibration = true;
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  EXPECT_TRUE(result.pass);
  EXPECT_EQ(result.leaking_sets, 0u);
  EXPECT_LT(result.max_minus_log10_p, 7.0);
  // Sanity: the campaign really evaluated the full probe universe and the
  // statistics are alive (a max of exactly 0 would mean empty tables).
  EXPECT_GT(result.total_sets, 500u);
  EXPECT_GT(result.max_minus_log10_p, 0.1);
}

}  // namespace
}  // namespace sca::eval
