#include <gtest/gtest.h>

#include "src/aes/aes128.hpp"
#include "src/aes/sbox.hpp"
#include "src/gf/gf256.hpp"

namespace sca::aes {
namespace {

TEST(Sbox, KnownEntries) {
  // FIPS-197 table 4 spot checks.
  EXPECT_EQ(sbox(0x00), 0x63);
  EXPECT_EQ(sbox(0x01), 0x7C);
  EXPECT_EQ(sbox(0x53), 0xED);
  EXPECT_EQ(sbox(0xFF), 0x16);
  EXPECT_EQ(sbox(0x10), 0xCA);
}

TEST(Sbox, IsAPermutation) {
  std::array<bool, 256> seen{};
  for (unsigned x = 0; x < 256; ++x) seen[sbox(static_cast<std::uint8_t>(x))] = true;
  for (unsigned x = 0; x < 256; ++x) EXPECT_TRUE(seen[x]) << x;
}

TEST(Sbox, InverseSboxInverts) {
  for (unsigned x = 0; x < 256; ++x)
    EXPECT_EQ(inv_sbox(sbox(static_cast<std::uint8_t>(x))), x);
}

TEST(Sbox, HasNoFixedPoints) {
  for (unsigned x = 0; x < 256; ++x) {
    EXPECT_NE(sbox(static_cast<std::uint8_t>(x)), x);
    EXPECT_NE(sbox(static_cast<std::uint8_t>(x)), x ^ 0xFF);
  }
}

TEST(Sbox, DecomposesAsAffineAfterInversion) {
  for (unsigned x = 0; x < 256; ++x)
    EXPECT_EQ(sbox(static_cast<std::uint8_t>(x)),
              sbox_affine(gf::gf256_inv(static_cast<std::uint8_t>(x))));
}

TEST(Sbox, AffineMatrixIsInvertible) {
  EXPECT_TRUE(sbox_affine_matrix().invertible());
}

TEST(Sbox, AffineConstant) { EXPECT_EQ(sbox_affine(0x00), 0x63); }

TEST(KeySchedule, Fips197AppendixA) {
  // FIPS-197 appendix A.1 key expansion.
  const Key128 key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const KeySchedule ks = expand_key(key);
  // w4..w7 (round key 1).
  const Block rk1 = {0xa0, 0xfa, 0xfe, 0x17, 0x88, 0x54, 0x2c, 0xb1,
                     0x23, 0xa3, 0x39, 0x39, 0x2a, 0x6c, 0x76, 0x05};
  EXPECT_EQ(ks[1], rk1);
  // Final round key (w40..w43).
  const Block rk10 = {0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89,
                      0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63, 0x0c, 0xa6};
  EXPECT_EQ(ks[10], rk10);
}

TEST(Aes128, Fips197AppendixB) {
  const Block pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                    0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const Key128 key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const Block expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                          0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  EXPECT_EQ(encrypt(pt, key), expected);
}

TEST(Aes128, Fips197AppendixCVector) {
  const Block pt = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                    0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const Key128 key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                      0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const Block expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                          0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(encrypt(pt, key), expected);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  Block pt{};
  Key128 key{};
  for (int trial = 0; trial < 32; ++trial) {
    for (std::size_t i = 0; i < 16; ++i) {
      pt[i] = static_cast<std::uint8_t>(trial * 16 + i);
      key[i] = static_cast<std::uint8_t>(255 - trial - i);
    }
    EXPECT_EQ(decrypt(encrypt(pt, key), key), pt);
  }
}

TEST(Aes128, RoundFunctionsInvert) {
  Block s;
  for (std::size_t i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(17 * i + 3);
  EXPECT_EQ(inv_shift_rows(shift_rows(s)), s);
  EXPECT_EQ(inv_mix_columns(mix_columns(s)), s);
}

TEST(Aes128, ShiftRowsMovesRow1) {
  Block s{};
  // Put marker at row 1, column 0 (index 1); after ShiftRows row 1 rotates
  // left by 1, so the marker moves to column 3 (index 13).
  s[1] = 0xAB;
  const Block out = shift_rows(s);
  EXPECT_EQ(out[13], 0xAB);
  EXPECT_EQ(out[1], 0x00);
}

TEST(Aes128, MixColumnsFips197Example) {
  // FIPS-197 section 5.1.3 example column.
  Block s{};
  s[0] = 0xd4; s[1] = 0xbf; s[2] = 0x5d; s[3] = 0x30;
  const Block out = mix_columns(s);
  EXPECT_EQ(out[0], 0x04);
  EXPECT_EQ(out[1], 0x66);
  EXPECT_EQ(out[2], 0x81);
  EXPECT_EQ(out[3], 0xe5);
}

TEST(Aes128, AddRoundKeyIsInvolution) {
  Block s, rk;
  for (std::size_t i = 0; i < 16; ++i) {
    s[i] = static_cast<std::uint8_t>(3 * i);
    rk[i] = static_cast<std::uint8_t>(100 + i);
  }
  EXPECT_EQ(add_round_key(add_round_key(s, rk), rk), s);
}

}  // namespace
}  // namespace sca::aes
