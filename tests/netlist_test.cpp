#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/check.hpp"
#include "src/netlist/celllib.hpp"
#include "src/netlist/cone.hpp"
#include "src/netlist/export.hpp"
#include "src/netlist/ir.hpp"
#include "src/netlist/textio.hpp"

namespace sca::netlist {
namespace {

Netlist make_half_adder() {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId b = nl.add_input(InputRole::kControl, "b");
  nl.add_output("sum", nl.xor_(a, b));
  nl.add_output("carry", nl.and_(a, b));
  return nl;
}

TEST(Ir, GateArity) {
  EXPECT_EQ(gate_arity(GateKind::kInput), 0u);
  EXPECT_EQ(gate_arity(GateKind::kNot), 1u);
  EXPECT_EQ(gate_arity(GateKind::kXor), 2u);
  EXPECT_EQ(gate_arity(GateKind::kMux), 3u);
  EXPECT_EQ(gate_arity(GateKind::kReg), 1u);
}

TEST(Ir, BuildAndInspect) {
  Netlist nl = make_half_adder();
  EXPECT_EQ(nl.size(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.count(GateKind::kXor), 1u);
  EXPECT_EQ(nl.count(GateKind::kAnd), 1u);
  EXPECT_EQ(nl.combinational_count(), 2u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Ir, RejectsMissingFanin) {
  Netlist nl;
  EXPECT_THROW(nl.add_gate(GateKind::kAnd, kNoSignal, kNoSignal),
               common::Error);
}

TEST(Ir, RejectsExtraFanin) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  EXPECT_THROW(nl.add_gate(GateKind::kNot, a, a), common::Error);
}

TEST(Ir, RejectsOutOfRangeFanin) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  EXPECT_THROW(nl.add_gate(GateKind::kNot, a + 100), common::Error);
}

TEST(Ir, RegisterPlaceholderMustBeConnected) {
  Netlist nl;
  const SignalId r = nl.make_reg_placeholder();
  EXPECT_THROW(nl.validate(), common::Error);
  const SignalId inv = nl.not_(r);
  nl.connect_reg(r, inv);  // feedback loop through a register is legal
  EXPECT_NO_THROW(nl.validate());
}

TEST(Ir, ConnectRegTwiceThrows) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId r = nl.make_reg_placeholder();
  nl.connect_reg(r, a);
  EXPECT_THROW(nl.connect_reg(r, a), common::Error);
}

TEST(Ir, ScopedNames) {
  Netlist nl;
  nl.push_scope("sbox");
  nl.push_scope("kron");
  const SignalId a = nl.add_input(InputRole::kControl, "x0");
  nl.pop_scope();
  nl.pop_scope();
  EXPECT_EQ(nl.signal_name(a), "sbox.kron.x0");
  EXPECT_THROW(nl.pop_scope(), common::Error);
}

TEST(Ir, ShareLabelsDriveGroupCounts) {
  Netlist nl;
  for (std::uint32_t s = 0; s < 2; ++s)
    for (std::uint32_t bit = 0; bit < 4; ++bit)
      nl.add_input(InputRole::kShare, "x", ShareLabel{0, s, bit});
  nl.add_input(InputRole::kShare, "y", ShareLabel{1, 0, 0});
  nl.add_input(InputRole::kRandom, "r0");
  nl.add_input(InputRole::kRandom, "r1");
  EXPECT_EQ(nl.secret_group_count(), 2u);
  EXPECT_EQ(nl.share_count(0), 2u);
  EXPECT_EQ(nl.share_count(1), 1u);
  EXPECT_EQ(nl.random_input_count(), 2u);
}

TEST(Ir, TopologicalOrderSourcesFirst) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId x = nl.not_(a);
  const SignalId r = nl.reg(x);
  const SignalId y = nl.xor_(r, a);
  nl.add_output("y", y);
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), 4u);
  // a and r are sources; x and y combinational afterwards in id order.
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], r);
  EXPECT_EQ(order[2], x);
  EXPECT_EQ(order[3], y);
}

// --- cone analysis -------------------------------------------------------------

TEST(Cone, SupportOfCombinationalGate) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId b = nl.add_input(InputRole::kControl, "b");
  const SignalId c = nl.add_input(InputRole::kControl, "c");
  const SignalId ab = nl.and_(a, b);
  const SignalId abc = nl.xor_(ab, c);
  const StableSupport ss(nl);
  EXPECT_EQ(ss.support(ab).count(), 2u);
  EXPECT_EQ(ss.support(abc).count(), 3u);
  EXPECT_TRUE(ss.support(ab).is_subset_of(ss.support(abc)));
}

TEST(Cone, RegistersCutCones) {
  // a -> NOT -> REG -> XOR(b): probe on XOR sees {REG, b}, not a.
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId b = nl.add_input(InputRole::kControl, "b");
  const SignalId na = nl.not_(a);
  const SignalId r = nl.reg(na);
  const SignalId x = nl.xor_(r, b);
  const StableSupport ss(nl);
  EXPECT_EQ(ss.support(x).count(), 2u);
  EXPECT_TRUE(ss.support(x).test(ss.stable_index(r)));
  EXPECT_TRUE(ss.support(x).test(ss.stable_index(b)));
  EXPECT_FALSE(ss.support(x).test(ss.stable_index(a)));
}

TEST(Cone, StablePointsAreSingletons) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId r = nl.reg(a);
  const StableSupport ss(nl);
  EXPECT_EQ(ss.support(a).count(), 1u);
  EXPECT_EQ(ss.support(r).count(), 1u);
  EXPECT_TRUE(ss.is_stable(a));
  EXPECT_TRUE(ss.is_stable(r));
}

TEST(Cone, ConstantsHaveEmptySupport) {
  Netlist nl;
  const SignalId c1 = nl.constant(true);
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId x = nl.and_(c1, a);
  const StableSupport ss(nl);
  EXPECT_EQ(ss.support(c1).count(), 0u);
  EXPECT_EQ(ss.support(x).count(), 1u);
}

TEST(Cone, CombinationalConeStopsAtRegisters) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId n1 = nl.not_(a);
  const SignalId r = nl.reg(n1);
  const SignalId n2 = nl.not_(r);
  const SignalId x = nl.xor_(n2, a);
  const auto cone = combinational_cone(nl, x);
  // Cone of x: {x, n2, r(boundary), a} but not n1.
  EXPECT_NE(std::find(cone.begin(), cone.end(), x), cone.end());
  EXPECT_NE(std::find(cone.begin(), cone.end(), n2), cone.end());
  EXPECT_NE(std::find(cone.begin(), cone.end(), r), cone.end());
  EXPECT_EQ(std::find(cone.begin(), cone.end(), n1), cone.end());
}

// --- cell library / area --------------------------------------------------------

TEST(CellLib, EveryGateKindHasACell) {
  const CellLibrary& lib = CellLibrary::nangate45();
  for (GateKind k : {GateKind::kBuf, GateKind::kNot, GateKind::kAnd,
                     GateKind::kNand, GateKind::kOr, GateKind::kNor,
                     GateKind::kXor, GateKind::kXnor, GateKind::kMux,
                     GateKind::kReg})
    EXPECT_NO_THROW(lib.cell_for(k));
}

TEST(CellLib, GateEquivalentUnit) {
  const CellLibrary& lib = CellLibrary::nangate45();
  EXPECT_DOUBLE_EQ(lib.cell_for(GateKind::kNand).area_um2, lib.nand2_area());
}

TEST(CellLib, AreaReportCounts) {
  Netlist nl = make_half_adder();
  const SignalId r = nl.reg(nl.outputs()[0].signal);
  nl.add_output("sum_reg", r);
  const AreaReport report = map_and_report(nl, CellLibrary::nangate45());
  EXPECT_EQ(report.combinational_cells, 2u);
  EXPECT_EQ(report.sequential_cells, 1u);
  EXPECT_EQ(report.cell_counts.at("XOR2_X1"), 1u);
  EXPECT_EQ(report.cell_counts.at("AND2_X1"), 1u);
  EXPECT_EQ(report.cell_counts.at("DFF_X1"), 1u);
  // 1 XOR (2 GE) + 1 AND (~1.33) + 1 DFF (~5.67): between 8 and 10 GE.
  EXPECT_GT(report.gate_equivalents, 8.0);
  EXPECT_LT(report.gate_equivalents, 10.0);
  EXPECT_FALSE(to_string(report).empty());
}

// --- exporters -------------------------------------------------------------------

TEST(Export, DotContainsNodesAndEdges) {
  const Netlist nl = make_half_adder();
  const std::string dot = to_dot(nl, "half_adder");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("XOR"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("sum"), std::string::npos);
}

TEST(Export, DotRespectsGuard) {
  const Netlist nl = make_half_adder();
  EXPECT_THROW(to_dot(nl, "g", 2), common::Error);
  EXPECT_NO_THROW(to_dot(nl, "g", 100));
}

TEST(Export, VerilogMentionsAllPieces) {
  Netlist nl = make_half_adder();
  nl.add_output("carry_reg", nl.reg(nl.outputs()[1].signal));
  const std::string v = to_verilog(nl, "half_adder");
  EXPECT_NE(v.find("module half_adder"), std::string::npos);
  EXPECT_NE(v.find("assign"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Export, JsonListsInputsWithRoles) {
  Netlist nl;
  nl.add_input(InputRole::kShare, "x", ShareLabel{0, 1, 3});
  nl.add_input(InputRole::kRandom, "r");
  const std::string j = to_json(nl);
  EXPECT_NE(j.find("\"share\""), std::string::npos);
  EXPECT_NE(j.find("\"random\""), std::string::npos);
  EXPECT_NE(j.find("\"bit\": 3"), std::string::npos);
}

// --- SNL text round trip ----------------------------------------------------------

TEST(TextIo, RoundTripPreservesStructure) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kShare, "a", ShareLabel{0, 0, 0});
  const SignalId b = nl.add_input(InputRole::kShare, "b", ShareLabel{0, 1, 0});
  const SignalId r = nl.add_input(InputRole::kRandom, "r");
  const SignalId x = nl.xor_(nl.and_(a, b), r);
  const SignalId q = nl.reg(x);
  nl.name_signal(x, "cross");
  nl.add_output("q", q);

  const std::string text = write_snl(nl);
  const Netlist back = parse_snl(text);

  EXPECT_EQ(back.size(), nl.size());
  EXPECT_EQ(back.inputs().size(), nl.inputs().size());
  EXPECT_EQ(back.outputs().size(), 1u);
  EXPECT_EQ(back.count(GateKind::kAnd), 1u);
  EXPECT_EQ(back.count(GateKind::kXor), 1u);
  EXPECT_EQ(back.count(GateKind::kReg), 1u);
  EXPECT_EQ(back.inputs()[0].role, InputRole::kShare);
  EXPECT_EQ(back.inputs()[2].role, InputRole::kRandom);
  EXPECT_EQ(back.inputs()[1].share.share, 1u);
  // Round-trip again: text must be stable.
  EXPECT_EQ(write_snl(back), text);
}

TEST(TextIo, RegisterFeedbackParses) {
  const std::string text =
      "input a control\n"
      "reg q n_next\n"
      "gate n_next XOR q a\n"
      "output q q\n";
  const Netlist nl = parse_snl(text);
  EXPECT_EQ(nl.count(GateKind::kReg), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(TextIo, ParserRejectsGarbage) {
  EXPECT_THROW(parse_snl("frobnicate x y\n"), common::Error);
  EXPECT_THROW(parse_snl("gate g XOR a b\n"), common::Error);  // unknown operand
  EXPECT_THROW(parse_snl("input a control\ninput a random\n"), common::Error);
  EXPECT_THROW(parse_snl("const c 2\n"), common::Error);
  EXPECT_THROW(parse_snl("gate g NOT\n"), common::Error);  // missing operand
}

TEST(TextIo, CommentsAndBlankLinesIgnored)
{
  const std::string text =
      "# a comment\n"
      "\n"
      "input a control  # trailing comment\n"
      "gate b NOT a\n"
      "output y b\n";
  const Netlist nl = parse_snl(text);
  EXPECT_EQ(nl.size(), 2u);
}

}  // namespace
}  // namespace sca::netlist
