#include <gtest/gtest.h>

#include <array>

#include "src/aes/sbox.hpp"
#include "src/common/bitops.hpp"
#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/conversions.hpp"
#include "src/gadgets/dom.hpp"
#include "src/gadgets/gf_circuits.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/gadgets/masked_sbox.hpp"
#include "src/gadgets/randomness_plan.hpp"
#include "src/gadgets/sharing.hpp"
#include "src/gf/gf256.hpp"
#include "src/netlist/ir.hpp"
#include "src/sim/simulator.hpp"
#include "tests/test_util.hpp"

namespace sca::gadgets {
namespace {

using netlist::InputRole;
using netlist::GateKind;
using netlist::Netlist;
using netlist::SignalId;

// --- bus helpers -----------------------------------------------------------------

TEST(Bus, XorConstInvertsSelectedBits) {
  Netlist nl;
  const Bus in = make_input_bus(nl, 8, InputRole::kControl, "x");
  const Bus out = xor_const(nl, in, 0x63);
  sim::Simulator simulator(nl);
  set_bus_all_lanes(simulator, in, 0x00);
  simulator.settle();
  EXPECT_EQ(read_bus_lane(simulator, out, 0), 0x63u);
  set_bus_all_lanes(simulator, in, 0xFF);
  simulator.settle();
  EXPECT_EQ(read_bus_lane(simulator, out, 0), 0xFFu ^ 0x63u);
}

TEST(Bus, ApplyMatrixMatchesValueLevel) {
  common::Xoshiro256 rng(17);
  gf::BitMatrix m(8, 8);
  for (std::size_t r = 0; r < 8; ++r) m.set_row(r, rng.byte());
  Netlist nl;
  const Bus in = make_input_bus(nl, 8, InputRole::kControl, "x");
  const Bus out = apply_matrix(nl, m, in);
  sim::Simulator simulator(nl);
  for (unsigned x = 0; x < 256; x += 5) {
    set_bus_all_lanes(simulator, in, x);
    simulator.settle();
    EXPECT_EQ(read_bus_lane(simulator, out, 0), m.apply(x)) << "x=" << x;
  }
}

TEST(Bus, MuxBusSelects) {
  Netlist nl;
  const SignalId sel = nl.add_input(InputRole::kControl, "sel");
  const Bus a = make_input_bus(nl, 4, InputRole::kControl, "a");
  const Bus b = make_input_bus(nl, 4, InputRole::kControl, "b");
  const Bus m = mux_bus(nl, sel, a, b);
  sim::Simulator simulator(nl);
  set_bus_all_lanes(simulator, a, 0x5);
  set_bus_all_lanes(simulator, b, 0xA);
  simulator.set_input_all_lanes(sel, false);
  simulator.settle();
  EXPECT_EQ(read_bus_lane(simulator, m, 0), 0x5u);
  simulator.set_input_all_lanes(sel, true);
  simulator.settle();
  EXPECT_EQ(read_bus_lane(simulator, m, 0), 0xAu);
}

TEST(Bus, EqConstAndIncrement) {
  Netlist nl;
  const Bus c = make_input_bus(nl, 4, InputRole::kControl, "c");
  const SignalId eq11 = eq_const(nl, c, 11);
  const Bus inc = increment_bus(nl, c);
  sim::Simulator simulator(nl);
  for (unsigned v = 0; v < 16; ++v) {
    set_bus_all_lanes(simulator, c, v);
    simulator.settle();
    EXPECT_EQ(simulator.value_in_lane(eq11, 0), v == 11);
    EXPECT_EQ(read_bus_lane(simulator, inc, 0), (v + 1) % 16) << v;
  }
}

TEST(Bus, XorTreeParity) {
  Netlist nl;
  const Bus in = make_input_bus(nl, 7, InputRole::kControl, "x");
  const SignalId p = xor_tree(nl, std::vector<SignalId>(in.begin(), in.end()));
  sim::Simulator simulator(nl);
  for (unsigned v = 0; v < 128; v += 3) {
    set_bus_all_lanes(simulator, in, v);
    simulator.settle();
    EXPECT_EQ(simulator.value_in_lane(p, 0), common::parity64(v) != 0);
  }
}

TEST(Bus, PerLaneDriving) {
  Netlist nl;
  const Bus in = make_input_bus(nl, 8, InputRole::kControl, "x");
  sim::Simulator simulator(nl);
  std::array<std::uint8_t, 64> values;
  for (unsigned lane = 0; lane < 64; ++lane)
    values[lane] = static_cast<std::uint8_t>(3 * lane + 1);
  set_bus_per_lane(simulator, in, values);
  simulator.settle();
  for (unsigned lane = 0; lane < 64; ++lane)
    EXPECT_EQ(read_bus_lane(simulator, in, lane), values[lane]);
}

// --- value-level sharing -----------------------------------------------------------

TEST(Sharing, BooleanRoundTrip) {
  common::Xoshiro256 rng(1);
  for (std::size_t shares = 1; shares <= 5; ++shares)
    for (int trial = 0; trial < 100; ++trial) {
      const std::uint8_t x = rng.byte();
      const auto sh = boolean_share(x, shares, rng);
      EXPECT_EQ(sh.size(), shares);
      EXPECT_EQ(boolean_unshare(sh), x);
    }
}

TEST(Sharing, MultiplicativeRoundTrip) {
  common::Xoshiro256 rng(2);
  for (std::size_t shares = 1; shares <= 4; ++shares)
    for (int trial = 0; trial < 100; ++trial) {
      const std::uint8_t x = rng.byte();
      const auto sh = multiplicative_share(x, shares, rng);
      EXPECT_EQ(multiplicative_unshare(sh), x);
      for (std::size_t i = 0; i + 1 < sh.size(); ++i) EXPECT_NE(sh[i], 0);
    }
}

TEST(Sharing, ZeroValueProblemIsVisible) {
  // The known flaw of plain multiplicative masking: for x = 0 the last share
  // is always 0 — unmasked.
  common::Xoshiro256 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sh = multiplicative_share(0, 3, rng);
    EXPECT_EQ(sh.back(), 0);
  }
}

// --- DOM-AND ------------------------------------------------------------------------

TEST(DomAnd, MaskIndexing) {
  EXPECT_EQ(dom_mask_count(2), 1u);
  EXPECT_EQ(dom_mask_count(3), 3u);
  EXPECT_EQ(dom_mask_count(4), 6u);
  EXPECT_EQ(dom_mask_index(0, 1, 3), 0u);
  EXPECT_EQ(dom_mask_index(0, 2, 3), 1u);
  EXPECT_EQ(dom_mask_index(1, 2, 3), 2u);
}

class DomAndShares : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DomAndShares, ComputesSharedAnd) {
  const std::size_t s = GetParam();
  Netlist nl;
  std::vector<SignalId> x, y, masks;
  for (std::size_t i = 0; i < s; ++i) {
    x.push_back(nl.add_input(InputRole::kShare, "x", {0, unsigned(i), 0}));
    y.push_back(nl.add_input(InputRole::kShare, "y", {1, unsigned(i), 0}));
  }
  for (std::size_t i = 0; i < dom_mask_count(s); ++i)
    masks.push_back(nl.add_input(InputRole::kRandom, "r"));
  const DomAnd gadget = build_dom_and(nl, x, y, masks, "dom");
  EXPECT_EQ(gadget.out.size(), s);

  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(7);
  for (unsigned xv = 0; xv < 2; ++xv)
    for (unsigned yv = 0; yv < 2; ++yv)
      for (int trial = 0; trial < 20; ++trial) {
        // Fresh bit-sharing of xv/yv and fresh masks.
        const auto xs = boolean_share(static_cast<std::uint8_t>(xv), s, rng);
        const auto ys = boolean_share(static_cast<std::uint8_t>(yv), s, rng);
        for (std::size_t i = 0; i < s; ++i) {
          simulator.set_input_all_lanes(x[i], xs[i] & 1);
          simulator.set_input_all_lanes(y[i], ys[i] & 1);
        }
        for (SignalId m : masks) simulator.set_input_all_lanes(m, rng.bit());
        // Both inner and cross products are registered: one clock of latency,
        // inputs held stable across it.
        simulator.step();
        simulator.settle();
        unsigned z = 0;
        for (std::size_t i = 0; i < s; ++i)
          z ^= simulator.value_in_lane(gadget.out[i], 0);
        EXPECT_EQ(z, xv & yv) << "s=" << s << " x=" << xv << " y=" << yv;
      }
}

INSTANTIATE_TEST_SUITE_P(ShareSweep, DomAndShares,
                         ::testing::Values(2, 3, 4, 5));

TEST(DomAnd, StructureMatchesFig1c) {
  // First-order DOM-AND with registered inner domain: 4 AND, 1 XOR for the
  // mask, 4 registers, 2 output XORs -> per Fig. 1c.
  Netlist nl;
  std::vector<SignalId> x = {nl.add_input(InputRole::kShare, "x0", {0, 0, 0}),
                             nl.add_input(InputRole::kShare, "x1", {0, 1, 0})};
  std::vector<SignalId> y = {nl.add_input(InputRole::kShare, "y0", {1, 0, 0}),
                             nl.add_input(InputRole::kShare, "y1", {1, 1, 0})};
  std::vector<SignalId> r = {nl.add_input(InputRole::kRandom, "r")};
  build_dom_and(nl, x, y, r, "g");
  EXPECT_EQ(nl.count(GateKind::kAnd), 4u);
  EXPECT_EQ(nl.count(GateKind::kReg), 4u);
  EXPECT_EQ(nl.count(GateKind::kXor), 4u);  // 2 mask XORs + 2 output XORs
}

TEST(DomAnd, RejectsWrongMaskCount) {
  Netlist nl;
  std::vector<SignalId> x = {nl.add_input(InputRole::kShare, "x0", {0, 0, 0}),
                             nl.add_input(InputRole::kShare, "x1", {0, 1, 0})};
  EXPECT_THROW(build_dom_and(nl, x, x, {}, "g"), common::Error);
}

// --- randomness plans ----------------------------------------------------------------

TEST(RandomnessPlan, FreshCounts) {
  EXPECT_EQ(RandomnessPlan::kron1_full_fresh().fresh_count(), 7u);
  EXPECT_EQ(RandomnessPlan::kron1_demeyer_eq6().fresh_count(), 3u);
  EXPECT_EQ(RandomnessPlan::kron1_single_reuse_r1r3().fresh_count(), 6u);
  EXPECT_EQ(RandomnessPlan::kron1_pair_reuse().fresh_count(), 5u);
  EXPECT_EQ(RandomnessPlan::kron1_proposed_eq9().fresh_count(), 4u);
  EXPECT_EQ(RandomnessPlan::kron1_r5_equals_r6().fresh_count(), 6u);
  for (int i = 1; i <= 4; ++i)
    EXPECT_EQ(RandomnessPlan::kron1_transition_secure(i).fresh_count(), 6u);
  EXPECT_EQ(RandomnessPlan::kron2_full_fresh().fresh_count(), 21u);
  EXPECT_EQ(RandomnessPlan::kron2_naive13().fresh_count(), 13u);
}

TEST(RandomnessPlan, SlotCounts) {
  EXPECT_EQ(RandomnessPlan::kron1_full_fresh().slot_count(), 7u);
  EXPECT_EQ(RandomnessPlan::kron2_full_fresh().slot_count(), 21u);
  EXPECT_EQ(RandomnessPlan::kron2_naive13().slot_count(), 21u);
}

TEST(RandomnessPlan, Eq6MatchesThePaper) {
  // r1 = r3, r2 = r4, r7 = r1, r6 = [r5 ^ r2].
  const RandomnessPlan plan = RandomnessPlan::kron1_demeyer_eq6();
  const auto& slots = plan.slots();
  EXPECT_EQ(slots[0], slots[2]);  // r1 == r3
  EXPECT_EQ(slots[1], slots[3]);  // r2 == r4
  EXPECT_EQ(slots[6], slots[0]);  // r7 == r1
  EXPECT_TRUE(slots[5].registered);
  EXPECT_EQ(slots[5].fresh_mask, slots[4].fresh_mask ^ slots[1].fresh_mask);
}

TEST(RandomnessPlan, Eq9MatchesThePaper) {
  const RandomnessPlan plan = RandomnessPlan::kron1_proposed_eq9();
  const auto& slots = plan.slots();
  // r1..r4 pairwise distinct and fresh.
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j)
      EXPECT_NE(slots[i].fresh_mask, slots[j].fresh_mask);
  EXPECT_EQ(slots[4], slots[3]);  // r5 == r4
  EXPECT_EQ(slots[5], slots[1]);  // r6 == r2
  EXPECT_EQ(slots[6], slots[2]);  // r7 == r3
}

TEST(RandomnessPlan, DescribeIsReadable) {
  EXPECT_EQ(RandomnessPlan::kron1_proposed_eq9().describe(),
            "r1=f0 r2=f1 r3=f2 r4=f3 r5=f3 r6=f1 r7=f2");
  EXPECT_NE(RandomnessPlan::kron1_demeyer_eq6().describe().find("[f1^f2]"),
            std::string::npos);
}

TEST(RandomnessPlan, MaterializeSemantics) {
  const RandomnessPlan plan = RandomnessPlan::kron1_demeyer_eq6();
  Netlist nl;
  std::vector<SignalId> fresh;
  for (std::size_t k = 0; k < plan.fresh_count(); ++k)
    fresh.push_back(nl.add_input(InputRole::kRandom, "f"));
  const auto slots = plan.materialize(nl, fresh);
  ASSERT_EQ(slots.size(), 7u);
  // Direct slots pass the fresh signal through.
  EXPECT_EQ(slots[0], fresh[0]);
  EXPECT_EQ(slots[2], fresh[0]);
  EXPECT_EQ(slots[4], fresh[2]);
  // The combined slot r6 = [f2 ^ f1] is a register fed by an XOR.
  EXPECT_EQ(nl.kind(slots[5]), GateKind::kReg);
  sim::Simulator simulator(nl);
  simulator.set_input_all_lanes(fresh[1], true);
  simulator.set_input_all_lanes(fresh[2], false);
  simulator.step();
  simulator.settle();
  EXPECT_TRUE(simulator.value_in_lane(slots[5], 0));
}

TEST(RandomnessPlan, RejectsBadSlots) {
  EXPECT_THROW(RandomnessPlan("bad", 2, {MaskSlotExpr{0, false}}),
               common::Error);
  EXPECT_THROW(RandomnessPlan("bad", 2, {MaskSlotExpr{0b100, false}}),
               common::Error);
  EXPECT_THROW(RandomnessPlan::kron1_transition_secure(5), common::Error);
}


TEST(RandomnessPlan, ParseRoundTripsAllNamedPlans) {
  for (const RandomnessPlan& plan :
       {RandomnessPlan::kron1_full_fresh(), RandomnessPlan::kron1_demeyer_eq6(),
        RandomnessPlan::kron1_proposed_eq9(), RandomnessPlan::kron1_pair_reuse(),
        RandomnessPlan::kron1_transition_secure(2),
        RandomnessPlan::kron2_full_fresh(), RandomnessPlan::kron2_reduced(),
        RandomnessPlan::kron2_reduced_leaky(),
        RandomnessPlan::kron2_naive13()}) {
    const RandomnessPlan back = RandomnessPlan::parse("rt", plan.describe());
    EXPECT_EQ(back.slots(), plan.slots()) << plan.name();
    EXPECT_EQ(back.fresh_count(), plan.fresh_count()) << plan.name();
    EXPECT_EQ(back.describe(), plan.describe()) << plan.name();
  }
}

TEST(RandomnessPlan, ParseRejectsMalformedInput) {
  EXPECT_THROW(RandomnessPlan::parse("x", ""), common::Error);
  EXPECT_THROW(RandomnessPlan::parse("x", "r2=f0"), common::Error);      // order
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=g0"), common::Error);      // not fN
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=[f0"), common::Error);     // bracket
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=f0^"), common::Error);     // dangling
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=f99"), common::Error);     // range
  EXPECT_THROW(RandomnessPlan::parse("x", "banana"), common::Error);
}

TEST(RandomnessPlan, ParseRejectsHardenedCorners) {
  // Duplicate slot (would silently shadow the earlier definition).
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=f0 r1=f1"), common::Error);
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=f0 r2=f1 r2=f2"),
               common::Error);
  // Empty expressions in every spelling.
  EXPECT_THROW(RandomnessPlan::parse("x", "r1="), common::Error);
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=[]"), common::Error);
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=f"), common::Error);
  // Out-of-range indices, including ones large enough to wrap a 32-bit
  // accumulator back into range (f4294967296 must not alias f0).
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=f64"), common::Error);
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=f4294967296"), common::Error);
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=f18446744073709551616"),
               common::Error);
  // A repeated fresh bit inside one slot XORs to constant zero — not a mask.
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=f0^f0"), common::Error);
  EXPECT_THROW(RandomnessPlan::parse("x", "r1=[f1^f2^f1]"), common::Error);
  // The f63 boundary itself is legal.
  EXPECT_EQ(RandomnessPlan::parse("x", "r1=f63").fresh_count(), 64u);
}

TEST(RandomnessPlan, ParseAcceptsRegisteredCombos) {
  const RandomnessPlan plan = RandomnessPlan::parse("x", "r1=f0 r2=[f0^f1]");
  EXPECT_EQ(plan.fresh_count(), 2u);
  EXPECT_FALSE(plan.slots()[0].registered);
  EXPECT_TRUE(plan.slots()[1].registered);
  EXPECT_EQ(plan.slots()[1].fresh_mask, 0b11u);
}

// --- Kronecker delta ---------------------------------------------------------------

class KroneckerPlans : public ::testing::TestWithParam<const char*> {
 protected:
  static RandomnessPlan plan_by_name(const std::string& name) {
    if (name == "full") return RandomnessPlan::kron1_full_fresh();
    if (name == "eq6") return RandomnessPlan::kron1_demeyer_eq6();
    if (name == "eq9") return RandomnessPlan::kron1_proposed_eq9();
    if (name == "single") return RandomnessPlan::kron1_single_reuse_r1r3();
    if (name == "pair") return RandomnessPlan::kron1_pair_reuse();
    if (name == "r5r6") return RandomnessPlan::kron1_r5_equals_r6();
    if (name == "trans1") return RandomnessPlan::kron1_transition_secure(1);
    throw common::Error("unknown plan in test");
  }
};

TEST_P(KroneckerPlans, ComputesDeltaForEveryInput) {
  // Whatever the randomness plan (secure or broken), the *function* is the
  // same: z = 1 iff X == 0. Exhaust all 256 inputs with random sharings.
  const RandomnessPlan plan = plan_by_name(GetParam());
  Netlist nl;
  std::vector<Bus> shares = {
      make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
      make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1)};
  const KroneckerDelta kron = build_kronecker(nl, shares, plan);
  nl.validate();

  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(11);
  for (unsigned x = 0; x < 256; ++x) {
    const auto sh = boolean_share(static_cast<std::uint8_t>(x), 2, rng);
    set_bus_all_lanes(simulator, shares[0], sh[0]);
    set_bus_all_lanes(simulator, shares[1], sh[1]);
    // Hold input stable for the 3-cycle latency, refreshing masks per cycle.
    for (std::size_t c = 0; c < kron.latency; ++c) {
      for (SignalId f : kron.fresh) simulator.set_input_all_lanes(f, rng.bit());
      simulator.step();
    }
    simulator.settle();
    const unsigned z = simulator.value_in_lane(kron.z[0], 0) ^
                       simulator.value_in_lane(kron.z[1], 0);
    EXPECT_EQ(z, x == 0 ? 1u : 0u) << "x=" << x << " plan=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(PlanSweep, KroneckerPlans,
                         ::testing::Values("full", "eq6", "eq9", "single",
                                           "pair", "r5r6", "trans1"));

TEST(Kronecker, SecondOrderComputesDelta) {
  for (const RandomnessPlan& plan :
       {RandomnessPlan::kron2_full_fresh(), RandomnessPlan::kron2_naive13()}) {
    Netlist nl;
    std::vector<Bus> shares = {
        make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
        make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1),
        make_input_bus(nl, 8, InputRole::kShare, "b2_", 0, 2)};
    const KroneckerDelta kron = build_kronecker(nl, shares, plan);
    nl.validate();

    sim::Simulator simulator(nl);
    common::Xoshiro256 rng(13);
    for (unsigned x = 0; x < 256; x += 3) {
      const auto sh = boolean_share(static_cast<std::uint8_t>(x), 3, rng);
      for (std::size_t i = 0; i < 3; ++i)
        set_bus_all_lanes(simulator, shares[i], sh[i]);
      for (std::size_t c = 0; c < kron.latency; ++c) {
        for (SignalId f : kron.fresh) simulator.set_input_all_lanes(f, rng.bit());
        simulator.step();
      }
      simulator.settle();
      unsigned z = 0;
      for (std::size_t i = 0; i < 3; ++i)
        z ^= simulator.value_in_lane(kron.z[i], 0);
      EXPECT_EQ(z, x == 0 ? 1u : 0u) << "x=" << x << " plan=" << plan.name();
    }
  }
}

TEST(Kronecker, StructureMatchesFig1b) {
  Netlist nl;
  std::vector<Bus> shares = {
      make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
      make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1)};
  const KroneckerDelta kron =
      build_kronecker(nl, shares, RandomnessPlan::kron1_full_fresh());
  EXPECT_EQ(kron.gates.size(), 7u);      // G1..G7
  EXPECT_EQ(kron.latency, 3u);           // three DOM layers
  EXPECT_EQ(nl.count(GateKind::kNot), 8u);   // one complement per input bit
  EXPECT_EQ(nl.count(GateKind::kAnd), 28u);  // 7 gates x 4 ANDs
  EXPECT_EQ(nl.count(GateKind::kReg), 28u);  // 7 gates x 4 registers
  EXPECT_EQ(nl.random_input_count(), 7u);
}

// --- GF circuits ---------------------------------------------------------------------

TEST(GfCircuits, MultiplierMatchesReference) {
  Netlist nl;
  const Bus a = make_input_bus(nl, 8, InputRole::kControl, "a");
  const Bus b = make_input_bus(nl, 8, InputRole::kControl, "b");
  const Bus p = build_gf256_mul(nl, a, b);
  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(19);
  // Exhaustive over a, random over b, plus the tricky fixed points.
  for (unsigned av = 0; av < 256; ++av) {
    const std::uint8_t bv = rng.byte();
    set_bus_all_lanes(simulator, a, av);
    set_bus_all_lanes(simulator, b, bv);
    simulator.settle();
    EXPECT_EQ(read_bus_lane(simulator, p, 0),
              gf::gf256_mul(static_cast<std::uint8_t>(av), bv))
        << "a=" << av << " b=" << int(bv);
  }
  for (auto [av, bv] : {std::pair<unsigned, unsigned>{0, 0}, {1, 1}, {0xFF, 0xFF},
                        {0x80, 0x02}, {0x53, 0xCA}}) {
    set_bus_all_lanes(simulator, a, av);
    set_bus_all_lanes(simulator, b, bv);
    simulator.settle();
    EXPECT_EQ(read_bus_lane(simulator, p, 0),
              gf::gf256_mul(static_cast<std::uint8_t>(av),
                            static_cast<std::uint8_t>(bv)));
  }
}

TEST(GfCircuits, InverterExhaustive) {
  Netlist nl;
  const Bus a = make_input_bus(nl, 8, InputRole::kControl, "a");
  const Bus inv = build_gf256_inv(nl, a);
  sim::Simulator simulator(nl);
  for (unsigned av = 0; av < 256; ++av) {
    set_bus_all_lanes(simulator, a, av);
    simulator.settle();
    EXPECT_EQ(read_bus_lane(simulator, inv, 0),
              gf::gf256_inv(static_cast<std::uint8_t>(av)))
        << "a=" << av;
  }
}

TEST(GfCircuits, InverterIsCombinational) {
  Netlist nl;
  const Bus a = make_input_bus(nl, 8, InputRole::kControl, "a");
  build_gf256_inv(nl, a);
  EXPECT_EQ(nl.count(GateKind::kReg), 0u);
}

TEST(GfCircuits, AffineExhaustive) {
  Netlist nl;
  const Bus a = make_input_bus(nl, 8, InputRole::kControl, "a");
  const Bus with_c = build_sbox_affine(nl, a, true);
  const Bus without_c = build_sbox_affine(nl, a, false);
  sim::Simulator simulator(nl);
  for (unsigned av = 0; av < 256; ++av) {
    set_bus_all_lanes(simulator, a, av);
    simulator.settle();
    EXPECT_EQ(read_bus_lane(simulator, with_c, 0),
              aes::sbox_affine(static_cast<std::uint8_t>(av)));
    EXPECT_EQ(read_bus_lane(simulator, without_c, 0),
              aes::sbox_affine(static_cast<std::uint8_t>(av)) ^ 0x63u);
  }
}

TEST(GfCircuits, SboxFromPieces) {
  // inv + affine chained = the AES Sbox, for every input.
  Netlist nl;
  const Bus a = make_input_bus(nl, 8, InputRole::kControl, "a");
  const Bus s = build_sbox_affine(nl, build_gf256_inv(nl, a), true);
  sim::Simulator simulator(nl);
  for (unsigned av = 0; av < 256; ++av) {
    set_bus_all_lanes(simulator, a, av);
    simulator.settle();
    EXPECT_EQ(read_bus_lane(simulator, s, 0),
              aes::sbox(static_cast<std::uint8_t>(av)));
  }
}

// --- conversions ----------------------------------------------------------------------

TEST(Conversions, B2MRecombines) {
  Netlist nl;
  const Bus b0 = make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0);
  const Bus b1 = make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1);
  const Bus r = make_input_bus(nl, 8, InputRole::kRandom, "R");
  const B2MResult b2m = build_b2m(nl, b0, b1, r);
  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(23);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint8_t x = rng.byte();
    const auto sh = boolean_share(x, 2, rng);
    const std::uint8_t rv = rng.nonzero_byte();
    set_bus_all_lanes(simulator, b0, sh[0]);
    set_bus_all_lanes(simulator, b1, sh[1]);
    set_bus_all_lanes(simulator, r, rv);
    simulator.step();
    simulator.settle();
    const std::uint8_t p0 =
        static_cast<std::uint8_t>(read_bus_lane(simulator, b2m.p0, 0));
    const std::uint8_t p1 =
        static_cast<std::uint8_t>(read_bus_lane(simulator, b2m.p1, 0));
    EXPECT_EQ(p0, rv);
    // X = inv(P0) * P1.
    EXPECT_EQ(gf::gf256_mul(gf::gf256_inv(p0), p1), x) << "x=" << int(x);
  }
}

TEST(Conversions, M2BRecombines) {
  Netlist nl;
  const Bus q0 = make_input_bus(nl, 8, InputRole::kControl, "q0_");
  const Bus q1 = make_input_bus(nl, 8, InputRole::kControl, "q1_");
  const Bus rp = make_input_bus(nl, 8, InputRole::kRandom, "Rp");
  const M2BResult m2b = build_m2b(nl, q0, q1, rp);
  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(29);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint8_t q0v = rng.byte(), q1v = rng.byte(), rv = rng.byte();
    set_bus_all_lanes(simulator, q0, q0v);
    set_bus_all_lanes(simulator, q1, q1v);
    set_bus_all_lanes(simulator, rp, rv);
    simulator.step();
    simulator.settle();
    const std::uint8_t out =
        static_cast<std::uint8_t>(read_bus_lane(simulator, m2b.b0, 0) ^
                                  read_bus_lane(simulator, m2b.b1, 0));
    EXPECT_EQ(out, gf::gf256_mul(q0v, q1v));
  }
}

// --- masked Sbox ------------------------------------------------------------------------

struct SboxConfig {
  const char* name;
  bool kronecker;
};

class MaskedSboxTest : public ::testing::TestWithParam<SboxConfig> {};

TEST_P(MaskedSboxTest, MatchesReferenceSboxPipelined) {
  const SboxConfig config = GetParam();
  MaskedSboxOptions opts;
  opts.include_kronecker = config.kronecker;
  opts.kron_plan = RandomnessPlan::kron1_demeyer_eq6();

  Netlist nl;
  const MaskedSbox sbox = build_masked_sbox(nl, opts);
  nl.validate();

  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(31);

  // Stream a new input every cycle (true pipelining); expect each output
  // `latency` cycles later. Without the Kronecker delta, input 0 is not
  // supported — skip it there.
  std::vector<std::uint8_t> inputs;
  for (unsigned x = config.kronecker ? 0 : 1; x < 256; ++x)
    inputs.push_back(static_cast<std::uint8_t>(x));
  // A few repeats with different sharings.
  for (int i = 0; i < 64; ++i)
    inputs.push_back(config.kronecker ? rng.byte() : rng.nonzero_byte());

  const std::size_t latency = sbox.latency;
  for (std::size_t cycle = 0; cycle < inputs.size() + latency; ++cycle) {
    if (cycle < inputs.size()) {
      const auto sh = boolean_share(inputs[cycle], 2, rng);
      set_bus_all_lanes(simulator, sbox.in_shares[0], sh[0]);
      set_bus_all_lanes(simulator, sbox.in_shares[1], sh[1]);
    }
    set_bus_all_lanes(simulator, sbox.rand_b2m, rng.nonzero_byte());
    set_bus_all_lanes(simulator, sbox.rand_m2b, rng.byte());
    for (SignalId f : sbox.kron_fresh) simulator.set_input_all_lanes(f, rng.bit());
    simulator.settle();
    if (cycle >= latency) {
      const std::uint8_t out = static_cast<std::uint8_t>(
          read_bus_lane(simulator, sbox.out_shares[0], 0) ^
          read_bus_lane(simulator, sbox.out_shares[1], 0));
      EXPECT_EQ(out, aes::sbox(inputs[cycle - latency]))
          << "config=" << config.name << " x=" << int(inputs[cycle - latency]);
    }
    simulator.clock();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MaskedSboxTest,
    ::testing::Values(SboxConfig{"with_kronecker", true},
                      SboxConfig{"without_kronecker", false}),
    [](const ::testing::TestParamInfo<SboxConfig>& info) {
      return info.param.name;
    });

TEST(MaskedSbox, LatencyIsFiveWithKroneckerTwoWithout) {
  Netlist nl1;
  MaskedSboxOptions with;
  EXPECT_EQ(build_masked_sbox(nl1, with).latency, 5u);
  Netlist nl2;
  MaskedSboxOptions without;
  without.include_kronecker = false;
  EXPECT_EQ(build_masked_sbox(nl2, without).latency, 2u);
}

TEST(MaskedSbox, EveryPlanStaysFunctionallyCorrect) {
  // Randomness plans change security, never function: spot-check all plans
  // on a handful of inputs including the zero-value corner.
  common::Xoshiro256 rng(37);
  for (const RandomnessPlan& plan :
       {RandomnessPlan::kron1_full_fresh(), RandomnessPlan::kron1_demeyer_eq6(),
        RandomnessPlan::kron1_proposed_eq9(),
        RandomnessPlan::kron1_transition_secure(3)}) {
    Netlist nl;
    MaskedSboxOptions opts;
    opts.kron_plan = plan;
    const MaskedSbox sbox = build_masked_sbox(nl, opts);
    sim::Simulator simulator(nl);
    for (std::uint8_t x : {0x00, 0x01, 0x53, 0xFF, 0x80}) {
      const auto sh = boolean_share(x, 2, rng);
      set_bus_all_lanes(simulator, sbox.in_shares[0], sh[0]);
      set_bus_all_lanes(simulator, sbox.in_shares[1], sh[1]);
      for (std::size_t c = 0; c < sbox.latency; ++c) {
        set_bus_all_lanes(simulator, sbox.rand_b2m, rng.nonzero_byte());
        set_bus_all_lanes(simulator, sbox.rand_m2b, rng.byte());
        for (SignalId f : sbox.kron_fresh)
          simulator.set_input_all_lanes(f, rng.bit());
        simulator.step();
      }
      simulator.settle();
      const std::uint8_t out = static_cast<std::uint8_t>(
          read_bus_lane(simulator, sbox.out_shares[0], 0) ^
          read_bus_lane(simulator, sbox.out_shares[1], 0));
      EXPECT_EQ(out, aes::sbox(x)) << "plan=" << plan.name() << " x=" << int(x);
    }
  }
}

}  // namespace
}  // namespace sca::gadgets
