// Wide compiled-kernel property tests.
//
// The contract under test: the compiled straight-line kernel at every lane
// width (64/256/512, with dead-gate elimination on or off) is bit-identical
// to the interpreted 64-lane oracle on every gadget the paper evaluates —
// per limb, per cycle, per signal — and the campaign engine built on it
// produces bit-identical statistics for every (kernel, lane width, thread
// count) combination, including across a forced checkpoint/resume that
// switches both the width and the kernel.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/simd.hpp"
#include "src/core/campaign.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/gadgets/masked_aes.hpp"
#include "src/gadgets/masked_sbox.hpp"
#include "src/netlist/cone.hpp"
#include "src/netlist/ir.hpp"
#include "src/netlist/slice.hpp"
#include "src/sim/simulator.hpp"

namespace sca {
namespace {

using gadgets::Bus;
using gadgets::RandomnessPlan;
using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

Netlist kronecker_netlist(const RandomnessPlan& plan) {
  Netlist nl;
  std::vector<Bus> shares;
  for (std::size_t i = 0; i < 2; ++i)
    shares.push_back(gadgets::make_input_bus(
        nl, 8, InputRole::kShare, "b" + std::to_string(i) + "_", 0,
        static_cast<std::uint32_t>(i)));
  gadgets::build_kronecker(nl, shares, plan);
  return nl;
}

Netlist sbox_netlist() {
  Netlist nl;
  gadgets::MaskedSboxOptions options;
  options.kron_plan = RandomnessPlan::kron1_demeyer_eq6();
  gadgets::build_masked_sbox(nl, options);
  return nl;
}

// Runs `cycles` cycles of the wide compiled kernel against limbs-many
// interpreted 64-lane oracle simulators fed the identical per-limb input
// words, and requires every readable signal to match in every limb at every
// cycle. With `observed` non-empty the compiled schedule dead-gate
// eliminates against that cone and only those signals are compared.
void expect_wide_matches_oracle(const Netlist& nl, unsigned lanes,
                                std::size_t cycles,
                                std::vector<SignalId> observed) {
  sim::ScheduleOptions wide_opts;
  wide_opts.lanes = lanes;
  wide_opts.compile = true;
  wide_opts.observed = observed;
  const sim::Schedule wide_schedule(nl, wide_opts);
  EXPECT_GT(wide_schedule.tape_ops(), 0u);
  EXPECT_GT(wide_schedule.levels(), 0u);
  EXPECT_LE(wide_schedule.live_gates(), wide_schedule.comb_gates());
  sim::Simulator wide(wide_schedule);

  sim::ScheduleOptions oracle_opts;
  oracle_opts.lanes = 64;
  oracle_opts.compile = false;
  const sim::Schedule oracle_schedule(nl, oracle_opts);
  const unsigned limbs = lanes / 64;
  std::vector<sim::Simulator> oracles;
  for (unsigned b = 0; b < limbs; ++b) oracles.emplace_back(oracle_schedule);

  // The comparison set: the observed cone, or every signal when fully
  // observable.
  std::vector<SignalId> compare = observed;
  if (compare.empty())
    for (SignalId id = 0; id < nl.size(); ++id) compare.push_back(id);

  common::Xoshiro256 rng(0xC0FFEE);
  std::vector<std::uint64_t> words(limbs);
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    for (const auto& in : nl.inputs()) {
      for (unsigned b = 0; b < limbs; ++b) words[b] = rng.next();
      wide.set_input_limbs(in.signal, words.data());
      for (unsigned b = 0; b < limbs; ++b)
        oracles[b].set_input(in.signal, words[b]);
    }
    wide.settle();
    for (unsigned b = 0; b < limbs; ++b) oracles[b].settle();

    std::size_t mismatches = 0;
    for (SignalId id : compare) {
      const std::uint64_t* v = wide.value_limbs(id);
      for (unsigned b = 0; b < limbs && mismatches < 5; ++b)
        if (v[b] != oracles[b].value(id)) {
          ++mismatches;
          ADD_FAILURE() << "lanes " << lanes << " cycle " << cycle << " limb "
                        << b << " signal " << nl.signal_name(id);
        }
    }
    ASSERT_EQ(mismatches, 0u) << "lanes " << lanes << " cycle " << cycle;

    wide.clock();
    for (unsigned b = 0; b < limbs; ++b) oracles[b].clock();
  }
}

void expect_all_widths_match(const Netlist& nl, std::size_t cycles) {
  // Fully observable (no dead-gate elimination): every signal compared.
  for (unsigned lanes : {64u, 256u, 512u})
    expect_wide_matches_oracle(nl, lanes, cycles, {});
  // Observed-cone schedules (the campaign configuration): dead logic is
  // eliminated; the surviving stable points must still match the oracle.
  const netlist::StableSupport supports(nl);
  std::vector<SignalId> observed(supports.stable_points().begin(),
                                 supports.stable_points().end());
  ASSERT_FALSE(observed.empty());
  for (unsigned lanes : {64u, 256u, 512u})
    expect_wide_matches_oracle(nl, lanes, cycles, observed);
}

TEST(Kernel, KroneckerFullFreshMatchesOracleAtAllWidths) {
  expect_all_widths_match(kronecker_netlist(RandomnessPlan::kron1_full_fresh()),
                          20);
}

TEST(Kernel, KroneckerEq6MatchesOracleAtAllWidths) {
  expect_all_widths_match(
      kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6()), 20);
}

TEST(Kernel, KroneckerEq9MatchesOracleAtAllWidths) {
  expect_all_widths_match(
      kronecker_netlist(RandomnessPlan::kron1_proposed_eq9()), 20);
}

TEST(Kernel, MaskedSboxMatchesOracleAtAllWidths) {
  expect_all_widths_match(sbox_netlist(), 20);
}

TEST(Kernel, MaskedAesSliceMatchesOracleAtAllWidths) {
  // The stitched MaskedAes128 combinational slice — the largest netlist the
  // linter and campaigns run on (state registers cut to held inputs).
  Netlist nl;
  (void)gadgets::build_masked_aes128(nl, {});
  const netlist::Slice slice = netlist::extract_slice(nl);
  ASSERT_FALSE(slice.cuts.empty());
  expect_all_widths_match(slice.nl, 20);
}

// --- campaign-level bit-identity --------------------------------------------

eval::CampaignOptions campaign_options(std::size_t sims) {
  eval::CampaignOptions opts;
  opts.model = eval::ProbeModel::kGlitch;
  opts.simulations = sims;
  opts.fixed_values[0] = 0x00;
  opts.seed = 11;
  return opts;
}

void expect_identical(const eval::CampaignResult& a,
                      const eval::CampaignResult& b, const std::string& tag) {
  EXPECT_EQ(a.pass, b.pass) << tag;
  EXPECT_EQ(a.leaking_sets, b.leaking_sets) << tag;
  EXPECT_EQ(a.max_minus_log10_p, b.max_minus_log10_p) << tag;
  ASSERT_EQ(a.results.size(), b.results.size()) << tag;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].name, b.results[i].name) << tag;
    EXPECT_EQ(a.results[i].g.g, b.results[i].g.g) << tag;
    EXPECT_EQ(a.results[i].minus_log10_p, b.results[i].minus_log10_p) << tag;
    EXPECT_EQ(a.results[i].g.n_fixed, b.results[i].g.n_fixed) << tag;
    EXPECT_EQ(a.results[i].g.n_random, b.results[i].g.n_random) << tag;
  }
}

TEST(KernelCampaign, BitIdenticalAcrossKernelLanesAndThreads) {
  // The tentpole contract: the counter PRG addresses randomness by absolute
  // simulation coordinates and the chunk grid ignores width and thread
  // count, so the interpreted 64-lane oracle and the compiled kernel at
  // every lane width and thread count produce bit-identical statistics.
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6());
  eval::CampaignOptions base_opts = campaign_options(12000);
  base_opts.interpreted_kernel = true;
  base_opts.threads = 1;
  const eval::CampaignResult base = eval::run_fixed_vs_random(nl, base_opts);
  EXPECT_EQ(base.lanes_used, 64u);

  for (unsigned lanes : {64u, 256u, 512u}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      eval::CampaignOptions opts = campaign_options(12000);
      opts.lanes = lanes;
      opts.threads = threads;
      const eval::CampaignResult r = eval::run_fixed_vs_random(nl, opts);
      EXPECT_EQ(r.lanes_used, lanes);
      expect_identical(base, r,
                       std::to_string(lanes) + " lanes / " +
                           std::to_string(threads) + " threads");
    }
  }
}

TEST(KernelCampaign, ResumeAcrossLaneWidthsAndKernels) {
  // Lane width and kernel choice are excluded from the snapshot fingerprint
  // on purpose: a campaign interrupted at 512 compiled lanes must resume on
  // the 64-lane interpreted oracle (or anything between) and still match
  // the uninterrupted run bit for bit.
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6());
  eval::CampaignOptions whole_opts = campaign_options(12000);
  whole_opts.interpreted_kernel = true;
  whole_opts.stages = 3;
  const eval::CampaignResult whole = eval::run_fixed_vs_random(nl, whole_opts);

  const std::string path = testing::TempDir() + "sca_ckpt_kernel_lanes.bin";
  std::remove(path.c_str());
  eval::CampaignOptions partial_opts = campaign_options(12000);
  partial_opts.lanes = 512;
  partial_opts.stages = 3;
  partial_opts.threads = 2;
  partial_opts.checkpoint_path = path;
  partial_opts.stop_after_stage = 1;
  const eval::CampaignResult partial =
      eval::run_fixed_vs_random(nl, partial_opts);
  EXPECT_TRUE(partial.interrupted);

  eval::CampaignOptions resume_opts = campaign_options(12000);
  resume_opts.interpreted_kernel = true;
  resume_opts.stages = 3;
  resume_opts.checkpoint_path = path;
  resume_opts.resume = true;
  const eval::CampaignResult resumed =
      eval::run_fixed_vs_random(nl, resume_opts);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_FALSE(resumed.interrupted);
  expect_identical(whole, resumed, "resume 512-compiled -> 64-interpreted");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sca
