// Checkpoint/resume and staged-evaluation property tests.
//
// The contract under test: a staged campaign is bit-identical to an
// unstaged one; a campaign killed at ANY stage boundary and resumed from
// its snapshot produces bit-identical final statistics to the uninterrupted
// run, for any thread count and both accumulation regimes; corrupted or
// mismatched snapshots are rejected with a clear error, never interpreted;
// early stopping cuts leaky campaigns short and leaves secure ones alone.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.hpp"
#include "src/core/campaign.hpp"
#include "src/core/checkpoint.hpp"
#include "src/core/search.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/netlist/ir.hpp"

namespace sca::eval {
namespace {

using gadgets::Bus;
using gadgets::RandomnessPlan;
using netlist::InputRole;
using netlist::Netlist;

Netlist kronecker_netlist(const RandomnessPlan& plan) {
  Netlist nl;
  std::vector<Bus> shares;
  for (std::size_t i = 0; i < 2; ++i)
    shares.push_back(gadgets::make_input_bus(
        nl, 8, InputRole::kShare, "b" + std::to_string(i) + "_", 0,
        static_cast<std::uint32_t>(i)));
  gadgets::build_kronecker(nl, shares, plan);
  return nl;
}

CampaignOptions staged_options(std::size_t sims, unsigned stages,
                               unsigned threads,
                               Accumulation acc = Accumulation::kBitSliced) {
  CampaignOptions opts;
  opts.model = ProbeModel::kGlitch;
  opts.simulations = sims;
  opts.stages = stages;
  opts.threads = threads;
  opts.accumulation = acc;
  opts.fixed_values[0] = 0x00;
  return opts;
}

std::string ckpt_path(const std::string& tag) {
  const std::string path = testing::TempDir() + "sca_ckpt_" + tag + ".bin";
  std::remove(path.c_str());
  return path;
}

// Bit-identical result comparison: same probe sets in the same order with
// the same raw statistics (doubles compared exactly — the whole point).
void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.pass, b.pass);
  EXPECT_EQ(a.leaking_sets, b.leaking_sets);
  EXPECT_EQ(a.max_minus_log10_p, b.max_minus_log10_p);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const ProbeSetResult& ra = a.results[i];
    const ProbeSetResult& rb = b.results[i];
    EXPECT_EQ(ra.name, rb.name) << i;
    EXPECT_EQ(ra.minus_log10_p, rb.minus_log10_p) << ra.name;
    EXPECT_EQ(ra.g.g, rb.g.g) << ra.name;
    EXPECT_EQ(ra.g.bins, rb.g.bins) << ra.name;
    EXPECT_EQ(ra.g.n_fixed, rb.g.n_fixed) << ra.name;
    EXPECT_EQ(ra.g.n_random, rb.g.n_random) << ra.name;
    EXPECT_EQ(ra.t.t, rb.t.t) << ra.name;
    EXPECT_EQ(ra.leaking, rb.leaking) << ra.name;
  }
}

TEST(Staged, StagedEqualsUnstaged) {
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  const CampaignResult whole =
      run_fixed_vs_random(nl, staged_options(15000, 1, 2));
  const CampaignResult staged =
      run_fixed_vs_random(nl, staged_options(15000, 5, 2));
  EXPECT_GE(staged.stages_total, 2u);
  EXPECT_EQ(staged.stages_completed, staged.stages_total);
  expect_identical(whole, staged);
}

TEST(Staged, ExplicitScheduleMatchesUniformStages) {
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  CampaignOptions opts = staged_options(15000, 1, 1);
  opts.stage_schedule = {0.2, 0.5, 1.0};
  const CampaignResult scheduled = run_fixed_vs_random(nl, opts);
  const CampaignResult whole =
      run_fixed_vs_random(nl, staged_options(15000, 1, 1));
  expect_identical(whole, scheduled);
}

TEST(Staged, StageReportsProgressMonotonically) {
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  CampaignOptions opts = staged_options(15000, 4, 1);
  std::vector<StageReport> reports;
  opts.on_stage = [&](const StageReport& r) { reports.push_back(r); };
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  ASSERT_EQ(reports.size(), result.stages_total);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].stage, i + 1);
    EXPECT_EQ(reports[i].stages_total, result.stages_total);
    if (i) {
      EXPECT_GT(reports[i].simulations_done, reports[i - 1].simulations_done);
      EXPECT_GE(reports[i].max_minus_log10_p,
                reports[i - 1].max_minus_log10_p - 1e-9);
    }
  }
  // The final stage report carries the exact finalized statistics.
  EXPECT_EQ(reports.back().simulations_done, result.simulations_per_group);
  EXPECT_EQ(reports.back().max_minus_log10_p, result.max_minus_log10_p);
  EXPECT_EQ(reports.back().leaking_sets, result.leaking_sets);
}

// The central property: kill at every stage boundary, resume, and the final
// statistics are bit-for-bit those of the uninterrupted run — across thread
// counts and both accumulation regimes.
TEST(Checkpoint, ResumeAtEveryStageBoundaryMatchesUninterrupted) {
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  constexpr std::size_t kSims = 12000;
  constexpr unsigned kStages = 4;
  for (const Accumulation acc :
       {Accumulation::kBitSliced, Accumulation::kScalar}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      const CampaignResult whole = run_fixed_vs_random(
          nl, staged_options(kSims, kStages, threads, acc));
      EXPECT_FALSE(whole.interrupted);
      for (unsigned kill_after = 1; kill_after < kStages; ++kill_after) {
        const std::string tag = std::to_string(static_cast<int>(acc)) + "_" +
                                std::to_string(threads) + "_" +
                                std::to_string(kill_after);
        CampaignOptions opts = staged_options(kSims, kStages, threads, acc);
        opts.checkpoint_path = ckpt_path(tag);
        opts.stop_after_stage = kill_after;
        const CampaignResult partial = run_fixed_vs_random(nl, opts);
        EXPECT_TRUE(partial.interrupted) << tag;
        EXPECT_LT(partial.simulations_done, whole.simulations_done) << tag;

        CampaignOptions resume = staged_options(kSims, kStages, threads, acc);
        resume.checkpoint_path = opts.checkpoint_path;
        resume.resume = true;
        const CampaignResult resumed = run_fixed_vs_random(nl, resume);
        EXPECT_TRUE(resumed.resumed) << tag;
        EXPECT_FALSE(resumed.interrupted) << tag;
        EXPECT_EQ(resumed.simulations_done, whole.simulations_done) << tag;
        expect_identical(whole, resumed);
        std::remove(opts.checkpoint_path.c_str());
      }
    }
  }
}

TEST(Checkpoint, ResumeAcrossThreadCounts) {
  // Thread count is excluded from the snapshot fingerprint on purpose:
  // the campaign is bit-identical across thread counts, so interrupting at
  // 1 thread and resuming at 8 (or vice versa) must still reproduce the
  // uninterrupted statistics.
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  const CampaignResult whole =
      run_fixed_vs_random(nl, staged_options(12000, 3, 1));
  CampaignOptions opts = staged_options(12000, 3, 1);
  opts.checkpoint_path = ckpt_path("xthreads");
  opts.stop_after_stage = 1;
  (void)run_fixed_vs_random(nl, opts);
  CampaignOptions resume = staged_options(12000, 3, 8);
  resume.checkpoint_path = opts.checkpoint_path;
  resume.resume = true;
  const CampaignResult resumed = run_fixed_vs_random(nl, resume);
  EXPECT_TRUE(resumed.resumed);
  expect_identical(whole, resumed);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(Checkpoint, ResumeAcrossAccumulationPaths) {
  // The accumulation path is excluded from the snapshot fingerprint like
  // the kernel and lane width: snapshots carry fully-materialized tables
  // (hosted marginals included), so a campaign interrupted on the fused
  // compiled pipeline must resume on the scalar per-set oracle — and the
  // other way around — and still match the uninterrupted run bit for bit.
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6());
  const CampaignResult whole =
      run_fixed_vs_random(nl, staged_options(12000, 3, 1));
  const std::pair<Accumulation, Accumulation> directions[] = {
      {Accumulation::kBitSliced, Accumulation::kScalar},
      {Accumulation::kScalar, Accumulation::kBitSliced}};
  for (const auto& [first, second] : directions) {
    const std::string tag = first == Accumulation::kScalar
                                ? "scalar_to_fused"
                                : "fused_to_scalar";
    CampaignOptions opts = staged_options(12000, 3, 2, first);
    opts.checkpoint_path = ckpt_path(tag);
    opts.stop_after_stage = 1;
    const CampaignResult partial = run_fixed_vs_random(nl, opts);
    EXPECT_TRUE(partial.interrupted) << tag;

    CampaignOptions resume = staged_options(12000, 3, 2, second);
    resume.checkpoint_path = opts.checkpoint_path;
    resume.resume = true;
    const CampaignResult resumed = run_fixed_vs_random(nl, resume);
    EXPECT_TRUE(resumed.resumed) << tag;
    EXPECT_FALSE(resumed.interrupted) << tag;
    expect_identical(whole, resumed);
    std::remove(opts.checkpoint_path.c_str());
  }
}

TEST(Checkpoint, ResumeUnderTableBatching) {
  // Stages x batches: a tiny table budget forces several simulation passes;
  // the cursor must land on (batch, stage) exactly.
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_demeyer_eq6());
  auto make = [&] {
    CampaignOptions opts = staged_options(12000, 3, 2);
    opts.table_memory_budget = 4 * 1024;  // forces many batches
    return opts;
  };
  const CampaignResult whole = run_fixed_vs_random(nl, make());
  EXPECT_GT(whole.table_batches, 1u);
  for (unsigned kill_after : {1u, 2u, 4u, 5u}) {
    CampaignOptions opts = make();
    opts.checkpoint_path = ckpt_path("batch" + std::to_string(kill_after));
    opts.stop_after_stage = kill_after;
    const CampaignResult partial = run_fixed_vs_random(nl, opts);
    EXPECT_TRUE(partial.interrupted);
    CampaignOptions resume = make();
    resume.checkpoint_path = opts.checkpoint_path;
    resume.resume = true;
    const CampaignResult resumed = run_fixed_vs_random(nl, resume);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.table_batches, whole.table_batches);
    expect_identical(whole, resumed);
    std::remove(opts.checkpoint_path.c_str());
  }
}

TEST(Checkpoint, ResumeWelchTTest) {
  // The t-test path checkpoints raw Welford moments; bit-exactness of the
  // restored FP state is what makes resumed == uninterrupted here.
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  auto make = [&](unsigned threads) {
    CampaignOptions opts = staged_options(12000, 3, threads);
    opts.statistic = Statistic::kWelchTTest;
    return opts;
  };
  for (const unsigned threads : {1u, 8u}) {
    const CampaignResult whole = run_fixed_vs_random(nl, make(threads));
    CampaignOptions opts = make(threads);
    opts.checkpoint_path = ckpt_path("ttest" + std::to_string(threads));
    opts.stop_after_stage = 2;
    (void)run_fixed_vs_random(nl, opts);
    CampaignOptions resume = make(threads);
    resume.checkpoint_path = opts.checkpoint_path;
    resume.resume = true;
    const CampaignResult resumed = run_fixed_vs_random(nl, resume);
    EXPECT_TRUE(resumed.resumed);
    expect_identical(whole, resumed);
    std::remove(opts.checkpoint_path.c_str());
  }
}

TEST(Checkpoint, CompletedSnapshotShortCircuitsRerun) {
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  CampaignOptions opts = staged_options(12000, 3, 2);
  opts.checkpoint_path = ckpt_path("complete");
  const CampaignResult whole = run_fixed_vs_random(nl, opts);
  CampaignOptions resume = opts;
  resume.resume = true;
  const CampaignResult rerun = run_fixed_vs_random(nl, resume);
  EXPECT_TRUE(rerun.resumed);
  // No additional simulation happened: the cumulative counter stands.
  EXPECT_EQ(rerun.simulations_done, whole.simulations_done);
  expect_identical(whole, rerun);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(Checkpoint, MissingSnapshotStartsFresh) {
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  CampaignOptions opts = staged_options(12000, 2, 1);
  opts.checkpoint_path = ckpt_path("missing");
  opts.resume = true;  // nothing on disk yet
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  EXPECT_FALSE(result.resumed);
  EXPECT_EQ(result.stages_completed, result.stages_total);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(Checkpoint, CorruptedSnapshotsAreRejected) {
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  CampaignOptions opts = staged_options(12000, 3, 1);
  opts.checkpoint_path = ckpt_path("corrupt");
  opts.stop_after_stage = 1;
  (void)run_fixed_vs_random(nl, opts);

  const auto read_file = [&] {
    std::ifstream is(opts.checkpoint_path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
  };
  const auto write_file = [&](const std::string& bytes) {
    std::ofstream os(opts.checkpoint_path,
                     std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const std::string good = read_file();
  ASSERT_GT(good.size(), 64u);

  CampaignOptions resume = staged_options(12000, 3, 1);
  resume.checkpoint_path = opts.checkpoint_path;
  resume.resume = true;

  // Truncated mid-payload.
  write_file(good.substr(0, good.size() / 2));
  EXPECT_THROW(run_fixed_vs_random(nl, resume), common::Error);

  // Single flipped payload byte: checksum mismatch.
  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x01;
  write_file(flipped);
  EXPECT_THROW(run_fixed_vs_random(nl, resume), common::Error);

  // Not a snapshot at all.
  write_file("definitely not a checkpoint");
  EXPECT_THROW(run_fixed_vs_random(nl, resume), common::Error);

  // Valid snapshot, wrong campaign (different seed -> fingerprint).
  write_file(good);
  CampaignOptions wrong = resume;
  wrong.seed = 99;
  EXPECT_THROW(run_fixed_vs_random(nl, wrong), common::Error);

  std::remove(opts.checkpoint_path.c_str());
}

TEST(EarlyStop, LeakyCampaignStopsBeforeHalfBudget) {
  // A gross leak (pair reuse) crosses threshold + margin within the first
  // stages; with K = 2 consecutive confirmations the campaign must stop
  // before half the budget — the E2 acceptance criterion, in miniature.
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  CampaignOptions opts = staged_options(40000, 10, 2);
  opts.early_stop_stages = 2;
  opts.early_stop_margin = 3.0;
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  EXPECT_TRUE(result.early_stopped);
  EXPECT_FALSE(result.pass);
  EXPECT_LT(result.stages_completed, result.stages_total);
  EXPECT_LT(result.simulations_done, result.simulations_per_group / 2);
}

TEST(EarlyStop, SecureCampaignRunsToCompletion) {
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_proposed_eq9());
  CampaignOptions opts = staged_options(15000, 10, 2);
  opts.early_stop_stages = 2;
  opts.early_stop_margin = 3.0;
  const CampaignResult result = run_fixed_vs_random(nl, opts);
  EXPECT_FALSE(result.early_stopped);
  EXPECT_TRUE(result.pass);
  EXPECT_EQ(result.stages_completed, result.stages_total);
  EXPECT_EQ(result.simulations_done, result.simulations_per_group);
}

TEST(EarlyStop, StoppedCampaignStillMatchesLeakNames) {
  // Early stopping trades budget for the same verdict: the leaking sets it
  // reports (from partial counts) are the gross leaks the full run finds.
  const Netlist nl = kronecker_netlist(RandomnessPlan::kron1_pair_reuse());
  const CampaignResult full =
      run_fixed_vs_random(nl, staged_options(40000, 1, 2));
  CampaignOptions opts = staged_options(40000, 10, 2);
  opts.early_stop_stages = 2;
  opts.early_stop_margin = 3.0;
  const CampaignResult stopped = run_fixed_vs_random(nl, opts);
  ASSERT_TRUE(stopped.early_stopped);
  // Nearly-tied sets may swap ranks between the partial and full budgets,
  // so compare against the full run's leak list, not its single top name.
  std::vector<std::string> full_leaks;
  for (const ProbeSetResult& r : full.results)
    if (r.leaking) full_leaks.push_back(r.name);
  EXPECT_NE(std::find(full_leaks.begin(), full_leaks.end(),
                      stopped.results.front().name),
            full_leaks.end())
      << "early-stop worst set " << stopped.results.front().name
      << " is not a gross leak of the full run";
}

// --- second-order family search: sharded checkpoint/resume ----------------

SecondOrderSearchOptions family_window(std::size_t candidates,
                                       unsigned threads) {
  SecondOrderSearchOptions opts;
  opts.model = ProbeModel::kGlitch;
  opts.begin = kron2_family13_naive_index();
  opts.end = opts.begin + candidates;
  opts.chunk = 2;
  opts.threads = threads;
  // The whole window is statically lint-rejected (the naive plan's G5/G6
  // reuse leaks regardless of the G7 wiring), so these sweeps never pay for
  // sampling; campaign determinism across thread counts has its own suite
  // above and in eval_test.
  opts.simulations = 500;
  return opts;
}

void expect_identical(const SecondOrderSearchResult& a,
                      const SecondOrderSearchResult& b) {
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.lint_rejected, b.lint_rejected);
  EXPECT_EQ(a.expensive_evaluations, b.expensive_evaluations);
  ASSERT_EQ(a.evaluations.size(), b.evaluations.size());
  for (std::size_t i = 0; i < a.evaluations.size(); ++i) {
    EXPECT_EQ(a.evaluations[i].index, b.evaluations[i].index) << i;
    EXPECT_EQ(a.evaluations[i].lint_rejected, b.evaluations[i].lint_rejected);
    EXPECT_EQ(a.evaluations[i].secure, b.evaluations[i].secure);
    EXPECT_EQ(a.evaluations[i].severity, b.evaluations[i].severity);
    EXPECT_EQ(a.evaluations[i].worst_probe, b.evaluations[i].worst_probe);
  }
}

TEST(SecondOrderSearch, ResumeIsBitIdenticalAcrossThreadCounts) {
  const SecondOrderSearchResult whole =
      search_kron2_family13(family_window(4, 1));
  ASSERT_TRUE(whole.complete);
  EXPECT_EQ(whole.chunks_total, 2u);

  for (const unsigned threads : {1u, 4u}) {
    SecondOrderSearchOptions opts = family_window(4, threads);
    opts.checkpoint_path =
        ckpt_path("family13_t" + std::to_string(threads));
    opts.stop_after_chunks = 1;
    const SecondOrderSearchResult part = search_kron2_family13(opts);
    EXPECT_FALSE(part.complete);
    EXPECT_EQ(part.chunks_done, 1u);
    EXPECT_EQ(part.evaluations.size(), 2u);

    opts.stop_after_chunks = 0;
    opts.resume = true;
    const SecondOrderSearchResult resumed = search_kron2_family13(opts);
    ASSERT_TRUE(resumed.complete);
    expect_identical(whole, resumed);
    std::remove(opts.checkpoint_path.c_str());
  }
}

TEST(SecondOrderSearch, FingerprintRejectsConfigurationFlips) {
  SecondOrderSearchOptions opts = family_window(4, 2);
  opts.checkpoint_path = ckpt_path("family13_fp");
  opts.stop_after_chunks = 1;
  ASSERT_FALSE(search_kron2_family13(opts).complete);

  // Resuming with the lint pre-filter toggled off would silently change
  // what the remaining chunks compute — the fingerprint must refuse.
  SecondOrderSearchOptions flipped = opts;
  flipped.resume = true;
  flipped.stop_after_chunks = 0;
  flipped.lint_prefilter = false;
  EXPECT_THROW(search_kron2_family13(flipped), common::Error);

  // Same for a different budget, window, or chunk grid.
  SecondOrderSearchOptions other_budget = opts;
  other_budget.resume = true;
  other_budget.simulations = 501;
  EXPECT_THROW(search_kron2_family13(other_budget), common::Error);
  SecondOrderSearchOptions other_grid = opts;
  other_grid.resume = true;
  other_grid.chunk = 4;
  EXPECT_THROW(search_kron2_family13(other_grid), common::Error);

  // The unflipped configuration still resumes fine afterwards.
  SecondOrderSearchOptions good = opts;
  good.resume = true;
  good.stop_after_chunks = 0;
  EXPECT_TRUE(search_kron2_family13(good).complete);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(SecondOrderSearch, RejectsBadWindows) {
  SecondOrderSearchOptions opts;
  opts.begin = 5;
  opts.end = 5;
  EXPECT_THROW(search_kron2_family13(opts), common::Error);
  opts.end = kron2_family13_size() + 1;
  EXPECT_THROW(search_kron2_family13(opts), common::Error);
  opts.begin = 0;
  opts.end = 1;
  opts.chunk = 0;
  EXPECT_THROW(search_kron2_family13(opts), common::Error);
}

}  // namespace
}  // namespace sca::eval
