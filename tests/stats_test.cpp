#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bitops.hpp"
#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/stats/gtest_stat.hpp"
#include "src/stats/pvalue.hpp"
#include "src/stats/ttest.hpp"

namespace sca::stats {
namespace {

// --- chi-squared survival function -------------------------------------------

TEST(PValue, Chi2KnownQuantiles) {
  // P(X >= 3.841) with 1 df is 0.05; P(X >= 6.635) is 0.01.
  EXPECT_NEAR(std::exp(chi2_log_sf(3.841, 1)), 0.05, 2e-4);
  EXPECT_NEAR(std::exp(chi2_log_sf(6.635, 1)), 0.01, 2e-4);
  // 5 df: P(X >= 11.070) = 0.05.
  EXPECT_NEAR(std::exp(chi2_log_sf(11.070, 5)), 0.05, 2e-4);
}

TEST(PValue, Chi2DfTwoIsExactExponential) {
  // With 2 df the survival function is exactly exp(-x/2).
  for (double x : {0.5, 1.0, 5.0, 40.0, 200.0})
    EXPECT_NEAR(chi2_log_sf(x, 2), -x / 2.0, 1e-9) << "x=" << x;
}

TEST(PValue, ExtremeTailStaysFinite) {
  // G = 1000 with 1 df: -log10(p) should be large but finite (around 218).
  const double mlp = chi2_minus_log10_p(1000.0, 1);
  EXPECT_GT(mlp, 200.0);
  EXPECT_LT(mlp, 250.0);
  EXPECT_TRUE(std::isfinite(mlp));
}

TEST(PValue, ZeroStatisticGivesPOne) {
  EXPECT_DOUBLE_EQ(chi2_log_sf(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(chi2_minus_log10_p(0.0, 3), 0.0);
}

TEST(PValue, MonotoneInStatistic) {
  double prev = chi2_minus_log10_p(0.1, 4);
  for (double x = 1.0; x < 500.0; x += 7.3) {
    const double cur = chi2_minus_log10_p(x, 4);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(PValue, MatchesGammaIdentity) {
  // Q(1, x) = exp(-x) exactly.
  for (double x : {0.1, 1.0, 3.0, 30.0})
    EXPECT_NEAR(log_gamma_q(1.0, x), -x, 1e-10);
}

// --- G-test -------------------------------------------------------------------

TEST(GTestStat, IdenticalDistributionsGiveNoEvidence) {
  std::vector<std::uint64_t> row = {1000, 2000, 3000, 500};
  const GTestResult r = g_test_two_rows(row, row);
  EXPECT_LT(r.minus_log10_p, 1.0);
  EXPECT_NEAR(r.g, 0.0, 1e-9);
}

TEST(GTestStat, GrosslyDifferentDistributionsAreFlagged) {
  std::vector<std::uint64_t> fixed = {9000, 1000};
  std::vector<std::uint64_t> random = {1000, 9000};
  const GTestResult r = g_test_two_rows(fixed, random);
  EXPECT_GT(r.minus_log10_p, 100.0);
}

TEST(GTestStat, NullSamplesRarelyCrossThreshold) {
  // Draw both rows from the same multinomial; with the 10^-7 threshold the
  // false-positive rate over 200 repetitions should be zero.
  common::Xoshiro256 rng(99);
  int false_positives = 0;
  for (int rep = 0; rep < 200; ++rep) {
    ContingencyTable table;
    for (int i = 0; i < 4000; ++i) {
      table.add(rng.next() % 8, 0);
      table.add(rng.next() % 8, 1);
    }
    if (table.g_test().minus_log10_p > 7.0) ++false_positives;
  }
  EXPECT_EQ(false_positives, 0);
}

TEST(GTestStat, DetectsSmallBias) {
  // Fixed group has a 5% excess mass on one bin; with 100k samples the
  // G-test must see it well past the threshold.
  common::Xoshiro256 rng(123);
  ContingencyTable table;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t f = (rng.next() % 100 < 30) ? 0 : 1 + rng.next() % 3;
    const std::uint64_t r = (rng.next() % 100 < 25) ? 0 : 1 + rng.next() % 3;
    table.add(f, 0);
    table.add(r, 1);
  }
  EXPECT_GT(table.g_test().minus_log10_p, 7.0);
}

TEST(GTestStat, EmptyGroupGivesZero) {
  ContingencyTable table;
  table.add(1, 0, 100);
  table.add(2, 0, 50);
  const GTestResult r = table.g_test();
  EXPECT_EQ(r.minus_log10_p, 0.0);
  EXPECT_EQ(r.n_random, 0u);
}

TEST(GTestStat, SingleBinGivesZero) {
  ContingencyTable table;
  table.add(7, 0, 100);
  table.add(7, 1, 120);
  EXPECT_EQ(table.g_test().minus_log10_p, 0.0);
}

TEST(GTestStat, MergeAccumulates) {
  ContingencyTable a, b;
  a.add(1, 0, 10);
  a.add(2, 1, 5);
  b.add(1, 0, 7);
  b.add(3, 1, 2);
  a.merge(b);
  EXPECT_EQ(a.group_total(0), 17u);
  EXPECT_EQ(a.group_total(1), 7u);
  EXPECT_EQ(a.bin_count(), 3u);
}

TEST(GTestStat, LowExpectationBinsArePooled) {
  // 10 bins with tiny counts should pool into a single residual, leaving
  // df = 1 (two effective columns) rather than 10.
  ContingencyTable table;
  table.add(0, 0, 10000);
  table.add(0, 1, 10000);
  for (std::uint64_t k = 1; k <= 10; ++k) {
    table.add(k, 0, 1);
    table.add(k, 1, 1);
  }
  const GTestResult r = table.g_test();
  EXPECT_EQ(r.bins, 2u);
  EXPECT_EQ(r.df, 1u);
}

TEST(GTestStat, DfCountsColumnsMinusOne) {
  ContingencyTable table;
  for (std::uint64_t k = 0; k < 5; ++k) {
    table.add(k, 0, 1000);
    table.add(k, 1, 1000 + 10 * k);
  }
  const GTestResult r = table.g_test();
  EXPECT_EQ(r.bins, 5u);
  EXPECT_EQ(r.df, 4u);
}

TEST(GTestStat, GStatisticMatchesHandComputation) {
  // 2x2 table: [[30, 10], [20, 40]].
  std::vector<std::uint64_t> fixed = {30, 10};
  std::vector<std::uint64_t> random = {20, 40};
  const GTestResult r = g_test_two_rows(fixed, random, /*min_expected=*/0.0);
  // E: col0 total 50, n0=40, n1=60, n=100 -> e00=20, e10=30, e01=20, e11=30.
  const double raw_g =
      2.0 * (30 * std::log(30 / 20.0) + 10 * std::log(10 / 20.0) +
             20 * std::log(20 / 30.0) + 40 * std::log(40 / 30.0));
  // Williams correction for the 2x2 table.
  const double row_term = 100.0 * (1.0 / 40.0 + 1.0 / 60.0) - 1.0;
  const double col_term = 100.0 * (1.0 / 50.0 + 1.0 / 50.0) - 1.0;
  const double q = 1.0 + row_term * col_term / (6.0 * 100.0 * 1.0);
  EXPECT_NEAR(r.g, raw_g / q, 1e-9);
  EXPECT_EQ(r.df, 1u);
}


// --- Welch t-test --------------------------------------------------------------

TEST(TTest, AccumulatorMatchesClosedForm) {
  MomentAccumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  // Sample variance of {1,2,3,4} is 5/3.
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(TTest, MergeEqualsSequential) {
  common::Xoshiro256 rng(21);
  MomentAccumulator all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(rng.byte());
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(TTest, DetectsMeanShift) {
  common::Xoshiro256 rng(22);
  MomentAccumulator fixed, random;
  for (int i = 0; i < 20000; ++i) {
    fixed.add(static_cast<double>(rng.next() % 8));
    random.add(static_cast<double>(rng.next() % 8) + 0.2);
  }
  const TTestResult r = welch_t_test(fixed, random);
  EXPECT_GT(std::fabs(r.t), kTvlaThreshold);
}

TEST(TTest, NullStaysBelowThreshold) {
  common::Xoshiro256 rng(23);
  MomentAccumulator fixed, random;
  for (int i = 0; i < 20000; ++i) {
    fixed.add(static_cast<double>(rng.next() % 8));
    random.add(static_cast<double>(rng.next() % 8));
  }
  EXPECT_LT(std::fabs(welch_t_test(fixed, random).t), kTvlaThreshold);
}

TEST(TTest, DegenerateInputsGiveZero) {
  MomentAccumulator empty, one;
  one.add(3.0);
  EXPECT_EQ(welch_t_test(empty, one).t, 0.0);
  MomentAccumulator ca, cb;  // constant equal samples
  for (int i = 0; i < 10; ++i) {
    ca.add(2.0);
    cb.add(2.0);
  }
  EXPECT_EQ(welch_t_test(ca, cb).t, 0.0);
}

TEST(TTest, AddWeightedIsBitIdenticalToRepeatedAdds) {
  common::Xoshiro256 rng(31);
  // Histogram folds (the bit-sliced campaign path) against the same counts
  // applied as sequential scalar adds — exact FP equality required.
  MomentAccumulator weighted, sequential;
  for (int step = 0; step < 200; ++step) {
    const double sample = static_cast<double>(rng.below(20));
    const std::uint64_t count = 1 + rng.below(7);
    weighted.add_weighted(sample, count);
    MomentAccumulator run;
    for (std::uint64_t i = 0; i < count; ++i) run.add(sample);
    sequential.merge(run);
    ASSERT_EQ(weighted.count(), sequential.count());
    ASSERT_EQ(weighted.mean(), sequential.mean());
    ASSERT_EQ(weighted.variance(), sequential.variance());
  }
  MomentAccumulator noop;
  noop.add_weighted(5.0, 0);
  EXPECT_EQ(noop.count(), 0u);
}

TEST(TTest, AddWeightedHistogramEqualsAscendingWeightedAdds) {
  // The batched fold the campaign's cell merge uses must replay exactly the
  // ascending-value add_weighted sequence (bit-identical Welford state).
  const std::vector<std::uint64_t> hist = {3, 0, 17, 1, 0, 0, 9};
  MomentAccumulator batched, reference;
  batched.add_weighted_histogram(hist.data(), hist.size());
  for (std::size_t v = 0; v < hist.size(); ++v)
    if (hist[v]) reference.add_weighted(static_cast<double>(v), hist[v]);
  EXPECT_TRUE(batched == reference);

  MomentAccumulator empty;
  empty.add_weighted_histogram(nullptr, 0);
  EXPECT_EQ(empty.count(), 0u);
}

// --- flat count tables --------------------------------------------------------

TEST(FlatCountTable, HashedModeMatchesContingencyTable) {
  common::Xoshiro256 rng(37);
  FlatCountTable flat;
  ContingencyTable reference;
  for (int i = 0; i < 20000; ++i) {
    // Stress probing/growth: a mix of dense small keys and sparse wide ones.
    const std::uint64_t key =
        (i % 3 == 0) ? rng.next() : rng.next() & 0x3FF;
    const int group = static_cast<int>(rng.bit());
    flat.add(key, group);
    reference.add(key, group);
  }
  EXPECT_EQ(flat.bin_count(), reference.bin_count());
  EXPECT_EQ(flat.group_total(0), reference.group_total(0));
  EXPECT_EQ(flat.group_total(1), reference.group_total(1));
  for (const auto& [key, cnt] : reference.counts()) {
    const auto got = flat.counts_for(key);
    ASSERT_EQ(got[0], cnt[0]) << "key " << key;
    ASSERT_EQ(got[1], cnt[1]) << "key " << key;
  }
  const GTestResult a = flat.g_test();
  const GTestResult b = reference.g_test();
  EXPECT_EQ(a.bins, b.bins);
  EXPECT_EQ(a.df, b.df);
  // Column order differs (sorted vs unordered_map), so allow FP reordering
  // noise in the G sum.
  EXPECT_NEAR(a.g, b.g, 1e-6 * std::max(1.0, b.g));
}

TEST(FlatCountTable, DirectModeMatchesHashedMode) {
  common::Xoshiro256 rng(41);
  FlatCountTable direct, hashed;
  direct.init_direct(10);
  ASSERT_TRUE(direct.direct_mode());
  ASSERT_FALSE(hashed.direct_mode());
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.below(1u << 10);
    const int group = static_cast<int>(rng.bit());
    const std::uint64_t count = 1 + rng.below(3);
    direct.add(key, group, count);
    hashed.add(key, group, count);
  }
  EXPECT_EQ(direct.bin_count(), hashed.bin_count());
  EXPECT_EQ(direct.sorted_keys(), hashed.sorted_keys());
  for (std::uint64_t key : direct.sorted_keys())
    ASSERT_EQ(direct.counts_for(key), hashed.counts_for(key));
  const GTestResult a = direct.g_test();
  const GTestResult b = hashed.g_test();
  EXPECT_EQ(a.bins, b.bins);
  EXPECT_EQ(a.g, b.g);  // identical column order -> identical FP sequence
}

TEST(FlatCountTable, AddMarginalizedEqualsDirectAccumulation) {
  // The subset-hosting contract: a hosted set's table built as an integer
  // marginal of its host's direct table is bit-identical to accumulating
  // the hosted set sample by sample. Host keys carry 6 bits; the hosted
  // set observes bits {0, 2, 5} of them (host_mask selects those).
  common::Xoshiro256 rng(43);
  const std::uint64_t mask = 0b100101;
  FlatCountTable host, hosted_direct, marginal;
  host.init_direct(6);
  hosted_direct.init_direct(3);
  marginal.init_direct(3);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.below(1u << 6);
    const int group = static_cast<int>(rng.bit());
    host.add(key, group);
    hosted_direct.add(common::extract_bits64(key, mask), group);
  }
  marginal.add_marginalized(host, mask);
  EXPECT_EQ(marginal.sorted_keys(), hosted_direct.sorted_keys());
  for (std::uint64_t key : marginal.sorted_keys())
    ASSERT_EQ(marginal.counts_for(key), hosted_direct.counts_for(key));
  const GTestResult a = marginal.g_test();
  const GTestResult b = hosted_direct.g_test();
  EXPECT_EQ(a.g, b.g);
  EXPECT_EQ(a.minus_log10_p, b.minus_log10_p);

  // Re-materialization (clear + marginalize again, as the campaign does
  // after every stage) reproduces the same table.
  marginal.clear();
  EXPECT_TRUE(marginal.direct_mode());
  marginal.add_marginalized(host, mask);
  for (std::uint64_t key : hosted_direct.sorted_keys())
    ASSERT_EQ(marginal.counts_for(key), hosted_direct.counts_for(key));
}

TEST(FlatCountTable, OverflowKeyRoutesToOverflowBin) {
  FlatCountTable flat;
  flat.add(FlatCountTable::kOverflowKey, 0, 5);
  flat.add(FlatCountTable::kOverflowKey, 1, 7);
  flat.add(3, 0);
  EXPECT_EQ(flat.bin_count(), 2u);  // one real key + the overflow bin
  const auto overflow = flat.counts_for(FlatCountTable::kOverflowKey);
  EXPECT_EQ(overflow[0], 5u);
  EXPECT_EQ(overflow[1], 7u);
  const auto keys = flat.sorted_keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys.back(), FlatCountTable::kOverflowKey);  // always sorts last
}

TEST(FlatCountTable, BinCapPoolingMatchesContingencyTable) {
  common::Xoshiro256 rng(43);
  FlatCountTable flat;
  ContingencyTable reference;
  flat.set_bin_limit(16);
  reference.set_bin_limit(16);
  // Same insertion sequence -> identical kept bins and pooled overflow.
  std::vector<std::pair<std::uint64_t, int>> inserts;
  for (int i = 0; i < 4000; ++i)
    inserts.push_back({rng.below(200), static_cast<int>(rng.bit())});
  for (const auto& [key, group] : inserts) {
    flat.add(key, group);
    reference.add(key, group);
  }
  EXPECT_EQ(flat.bin_count(), reference.bin_count());
  for (const auto& [key, cnt] : reference.counts())
    ASSERT_EQ(flat.counts_for(key), cnt) << "key " << key;
}

TEST(FlatCountTable, AddKeys64AndPackedMatchScalarAdds) {
  common::Xoshiro256 rng(47);
  FlatCountTable batched, packed, scalar;
  for (int round = 0; round < 50; ++round) {
    std::array<std::uint64_t, 64> keys;
    for (auto& key : keys) key = rng.below(1u << 12);
    const int group = static_cast<int>(rng.bit());
    batched.add_keys64(keys.data(), group);
    for (std::uint64_t key : keys) scalar.add(key, group);
    // A one-sample pack at key_bits = 12 reads bits [0, 12) of each row —
    // the keys themselves.
    packed.add_packed(keys.data(), 12, 1, group);
  }
  EXPECT_EQ(batched.sorted_keys(), scalar.sorted_keys());
  for (std::uint64_t key : scalar.sorted_keys()) {
    ASSERT_EQ(batched.counts_for(key), scalar.counts_for(key));
    ASSERT_EQ(packed.counts_for(key), scalar.counts_for(key));
  }
}

TEST(FlatCountTable, AddPackedExtractsSampleMajor) {
  // Two 8-bit samples per row: lane L carries sample 0 at bits [0,8) and
  // sample 1 at bits [8,16).
  std::array<std::uint64_t, 64> rows{};
  for (unsigned lane = 0; lane < 64; ++lane)
    rows[lane] = (static_cast<std::uint64_t>(lane + 100) << 8) | lane;
  FlatCountTable packed, scalar;
  packed.add_packed(rows.data(), 8, 2, 1);
  for (unsigned lane = 0; lane < 64; ++lane) scalar.add(lane, 1);
  for (unsigned lane = 0; lane < 64; ++lane) scalar.add(lane + 100, 1);
  EXPECT_EQ(packed.sorted_keys(), scalar.sorted_keys());
  for (std::uint64_t key : scalar.sorted_keys())
    ASSERT_EQ(packed.counts_for(key), scalar.counts_for(key));
}

TEST(FlatCountTable, FlatMergeMatchesScalarReplay) {
  common::Xoshiro256 rng(53);
  // Master <- two chunk tables (one direct, one hashed) must equal replaying
  // every observation into one table.
  FlatCountTable master, chunk_direct, chunk_hashed, replay;
  master.init_direct(8);
  chunk_direct.init_direct(8);
  replay.init_direct(8);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = rng.below(256);
    const int group = static_cast<int>(rng.bit());
    (i % 2 ? chunk_direct : chunk_hashed).add(key, group);
    replay.add(key, group);
  }
  master.merge(chunk_direct);
  master.merge(chunk_hashed);
  EXPECT_EQ(master.sorted_keys(), replay.sorted_keys());
  for (std::uint64_t key : replay.sorted_keys())
    ASSERT_EQ(master.counts_for(key), replay.counts_for(key));
  EXPECT_EQ(master.g_test().g, replay.g_test().g);
}

TEST(FlatCountTable, MergeOrderDeterministicUnderPooling) {
  common::Xoshiro256 rng(59);
  // When the master's bin cap can pool, merge visits incoming keys sorted,
  // so the result depends only on table contents — not the insertion order
  // that built the incoming chunk.
  FlatCountTable chunk_a, chunk_b;
  std::vector<std::pair<std::uint64_t, int>> inserts;
  for (int i = 0; i < 500; ++i)
    inserts.push_back({rng.below(100), static_cast<int>(rng.bit())});
  for (const auto& [key, group] : inserts) chunk_a.add(key, group);
  for (auto it = inserts.rbegin(); it != inserts.rend(); ++it)
    chunk_b.add(it->first, it->second);  // reversed insertion order
  auto build_master = [&](const FlatCountTable& chunk) {
    FlatCountTable master;
    master.set_bin_limit(20);
    for (int i = 0; i < 40; ++i) master.add(1000 + i, 0);  // near the cap
    master.merge(chunk);
    return master;
  };
  const FlatCountTable a = build_master(chunk_a);
  const FlatCountTable b = build_master(chunk_b);
  EXPECT_EQ(a.sorted_keys(), b.sorted_keys());
  for (std::uint64_t key : a.sorted_keys())
    ASSERT_EQ(a.counts_for(key), b.counts_for(key));
}

TEST(FlatCountTable, ContingencyMergeFromFlatMatchesScalar) {
  common::Xoshiro256 rng(61);
  FlatCountTable chunk;
  ContingencyTable via_merge, via_scalar;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.below(300);
    const int group = static_cast<int>(rng.bit());
    chunk.add(key, group);
    via_scalar.add(key, group);
  }
  via_merge.merge(chunk);
  EXPECT_EQ(via_merge.bin_count(), via_scalar.bin_count());
  for (const auto& [key, cnt] : via_scalar.counts())
    ASSERT_EQ(via_merge.counts().at(key), cnt);
}

TEST(FlatCountTable, ClearKeepsModeAndCapacity) {
  FlatCountTable direct, hashed;
  direct.init_direct(6);
  for (int i = 0; i < 100; ++i) {
    direct.add(static_cast<std::uint64_t>(i % 64), i % 2);
    hashed.add(static_cast<std::uint64_t>(i * 17), i % 2);
  }
  direct.clear();
  hashed.clear();
  EXPECT_TRUE(direct.direct_mode());
  EXPECT_EQ(direct.bin_count(), 0u);
  EXPECT_EQ(hashed.bin_count(), 0u);
  EXPECT_EQ(hashed.group_total(0) + hashed.group_total(1), 0u);
  direct.add(5, 0);
  hashed.add(5, 0);
  EXPECT_EQ(direct.counts_for(5)[0], 1u);
  EXPECT_EQ(hashed.counts_for(5)[0], 1u);
}

// --- snapshot serialization round trips -------------------------------------
//
// The checkpoint/resume machinery depends on serialize() -> deserialize()
// restoring accumulators whose future behavior is bit-identical to the
// original — integer counts exactly, Welford moments bit-for-bit.

TEST(Serialization, ContingencyTableRoundTrip) {
  common::Xoshiro256 rng(7);
  ContingencyTable table;
  table.set_bin_limit(200);
  for (int i = 0; i < 5000; ++i)
    table.add(rng.below(400), static_cast<int>(rng.bit()));
  std::ostringstream os;
  table.serialize(os);
  std::istringstream is(os.str());
  const ContingencyTable restored = ContingencyTable::deserialize(is);
  EXPECT_TRUE(table == restored);
  // Restored table keeps accumulating identically (same pooling decisions).
  ContingencyTable a = table, b = restored;
  for (int i = 0; i < 500; ++i) {
    a.add(static_cast<std::uint64_t>(i * 3), i % 2);
    b.add(static_cast<std::uint64_t>(i * 3), i % 2);
  }
  EXPECT_TRUE(a == b);
}

TEST(Serialization, FlatCountTableDirectRoundTrip) {
  FlatCountTable table;
  table.init_direct(10);
  common::Xoshiro256 rng(11);
  for (int i = 0; i < 3000; ++i)
    table.add(rng.below(1024), static_cast<int>(rng.bit()));
  std::ostringstream os;
  table.serialize(os);
  std::istringstream is(os.str());
  const FlatCountTable restored = FlatCountTable::deserialize(is);
  EXPECT_TRUE(restored.direct_mode());
  EXPECT_TRUE(table == restored);
  EXPECT_EQ(table.bin_count(), restored.bin_count());
  for (std::uint64_t key = 0; key < 1024; ++key)
    ASSERT_EQ(table.counts_for(key), restored.counts_for(key)) << key;
}

TEST(Serialization, FlatCountTableHashedRoundTripWithOverflow) {
  FlatCountTable table;
  table.set_bin_limit(64);  // forces pooling into the overflow bin
  common::Xoshiro256 rng(13);
  for (int i = 0; i < 4000; ++i)
    table.add(rng.next() & 0xFFFF, static_cast<int>(rng.bit()));
  std::ostringstream os;
  table.serialize(os);
  std::istringstream is(os.str());
  const FlatCountTable restored = FlatCountTable::deserialize(is);
  EXPECT_FALSE(restored.direct_mode());
  EXPECT_TRUE(table == restored);
  EXPECT_EQ(table.group_total(0), restored.group_total(0));
  EXPECT_EQ(table.group_total(1), restored.group_total(1));
  // Future adds pool identically: only already-resident keys get new bins.
  FlatCountTable a = table, b = restored;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng.next() & 0xFFFF;
    const int group = static_cast<int>(rng.bit());
    a.add(key, group);
    b.add(key, group);
  }
  EXPECT_TRUE(a == b);
}

TEST(Serialization, MomentAccumulatorRoundTripIsBitExact) {
  MomentAccumulator acc;
  common::Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i)
    acc.add_weighted(static_cast<double>(rng.below(256)), 1 + rng.below(7));
  std::ostringstream os;
  acc.serialize(os);
  std::istringstream is(os.str());
  MomentAccumulator restored = MomentAccumulator::deserialize(is);
  EXPECT_TRUE(acc == restored);
  // Continuing the Welford recurrence from the restored state stays
  // bit-identical — the property resume depends on.
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(rng.below(256));
    const std::uint64_t w = 1 + rng.below(7);
    acc.add_weighted(x, w);
    restored.add_weighted(x, w);
  }
  EXPECT_TRUE(acc == restored);
}

TEST(Serialization, TruncatedStreamsThrow) {
  ContingencyTable ct;
  ct.add(1, 0);
  ct.add(2, 1);
  FlatCountTable ft;
  ft.add(10, 0);
  ft.add(20, 1);
  MomentAccumulator acc;
  acc.add_weighted(1.5, 3);
  std::ostringstream a, b, c;
  ct.serialize(a);
  ft.serialize(b);
  acc.serialize(c);
  for (const std::string& full : {a.str(), b.str(), c.str()})
    ASSERT_GT(full.size(), 4u);
  {
    std::istringstream is(a.str().substr(0, a.str().size() - 3));
    EXPECT_THROW(ContingencyTable::deserialize(is), common::Error);
  }
  {
    std::istringstream is(b.str().substr(0, b.str().size() / 2));
    EXPECT_THROW(FlatCountTable::deserialize(is), common::Error);
  }
  {
    std::istringstream is(c.str().substr(0, 5));
    EXPECT_THROW(MomentAccumulator::deserialize(is), common::Error);
  }
}

}  // namespace
}  // namespace sca::stats
