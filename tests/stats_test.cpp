#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/stats/gtest_stat.hpp"
#include "src/stats/pvalue.hpp"
#include "src/stats/ttest.hpp"

namespace sca::stats {
namespace {

// --- chi-squared survival function -------------------------------------------

TEST(PValue, Chi2KnownQuantiles) {
  // P(X >= 3.841) with 1 df is 0.05; P(X >= 6.635) is 0.01.
  EXPECT_NEAR(std::exp(chi2_log_sf(3.841, 1)), 0.05, 2e-4);
  EXPECT_NEAR(std::exp(chi2_log_sf(6.635, 1)), 0.01, 2e-4);
  // 5 df: P(X >= 11.070) = 0.05.
  EXPECT_NEAR(std::exp(chi2_log_sf(11.070, 5)), 0.05, 2e-4);
}

TEST(PValue, Chi2DfTwoIsExactExponential) {
  // With 2 df the survival function is exactly exp(-x/2).
  for (double x : {0.5, 1.0, 5.0, 40.0, 200.0})
    EXPECT_NEAR(chi2_log_sf(x, 2), -x / 2.0, 1e-9) << "x=" << x;
}

TEST(PValue, ExtremeTailStaysFinite) {
  // G = 1000 with 1 df: -log10(p) should be large but finite (around 218).
  const double mlp = chi2_minus_log10_p(1000.0, 1);
  EXPECT_GT(mlp, 200.0);
  EXPECT_LT(mlp, 250.0);
  EXPECT_TRUE(std::isfinite(mlp));
}

TEST(PValue, ZeroStatisticGivesPOne) {
  EXPECT_DOUBLE_EQ(chi2_log_sf(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(chi2_minus_log10_p(0.0, 3), 0.0);
}

TEST(PValue, MonotoneInStatistic) {
  double prev = chi2_minus_log10_p(0.1, 4);
  for (double x = 1.0; x < 500.0; x += 7.3) {
    const double cur = chi2_minus_log10_p(x, 4);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(PValue, MatchesGammaIdentity) {
  // Q(1, x) = exp(-x) exactly.
  for (double x : {0.1, 1.0, 3.0, 30.0})
    EXPECT_NEAR(log_gamma_q(1.0, x), -x, 1e-10);
}

// --- G-test -------------------------------------------------------------------

TEST(GTestStat, IdenticalDistributionsGiveNoEvidence) {
  std::vector<std::uint64_t> row = {1000, 2000, 3000, 500};
  const GTestResult r = g_test_two_rows(row, row);
  EXPECT_LT(r.minus_log10_p, 1.0);
  EXPECT_NEAR(r.g, 0.0, 1e-9);
}

TEST(GTestStat, GrosslyDifferentDistributionsAreFlagged) {
  std::vector<std::uint64_t> fixed = {9000, 1000};
  std::vector<std::uint64_t> random = {1000, 9000};
  const GTestResult r = g_test_two_rows(fixed, random);
  EXPECT_GT(r.minus_log10_p, 100.0);
}

TEST(GTestStat, NullSamplesRarelyCrossThreshold) {
  // Draw both rows from the same multinomial; with the 10^-7 threshold the
  // false-positive rate over 200 repetitions should be zero.
  common::Xoshiro256 rng(99);
  int false_positives = 0;
  for (int rep = 0; rep < 200; ++rep) {
    ContingencyTable table;
    for (int i = 0; i < 4000; ++i) {
      table.add(rng.next() % 8, 0);
      table.add(rng.next() % 8, 1);
    }
    if (table.g_test().minus_log10_p > 7.0) ++false_positives;
  }
  EXPECT_EQ(false_positives, 0);
}

TEST(GTestStat, DetectsSmallBias) {
  // Fixed group has a 5% excess mass on one bin; with 100k samples the
  // G-test must see it well past the threshold.
  common::Xoshiro256 rng(123);
  ContingencyTable table;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t f = (rng.next() % 100 < 30) ? 0 : 1 + rng.next() % 3;
    const std::uint64_t r = (rng.next() % 100 < 25) ? 0 : 1 + rng.next() % 3;
    table.add(f, 0);
    table.add(r, 1);
  }
  EXPECT_GT(table.g_test().minus_log10_p, 7.0);
}

TEST(GTestStat, EmptyGroupGivesZero) {
  ContingencyTable table;
  table.add(1, 0, 100);
  table.add(2, 0, 50);
  const GTestResult r = table.g_test();
  EXPECT_EQ(r.minus_log10_p, 0.0);
  EXPECT_EQ(r.n_random, 0u);
}

TEST(GTestStat, SingleBinGivesZero) {
  ContingencyTable table;
  table.add(7, 0, 100);
  table.add(7, 1, 120);
  EXPECT_EQ(table.g_test().minus_log10_p, 0.0);
}

TEST(GTestStat, MergeAccumulates) {
  ContingencyTable a, b;
  a.add(1, 0, 10);
  a.add(2, 1, 5);
  b.add(1, 0, 7);
  b.add(3, 1, 2);
  a.merge(b);
  EXPECT_EQ(a.group_total(0), 17u);
  EXPECT_EQ(a.group_total(1), 7u);
  EXPECT_EQ(a.bin_count(), 3u);
}

TEST(GTestStat, LowExpectationBinsArePooled) {
  // 10 bins with tiny counts should pool into a single residual, leaving
  // df = 1 (two effective columns) rather than 10.
  ContingencyTable table;
  table.add(0, 0, 10000);
  table.add(0, 1, 10000);
  for (std::uint64_t k = 1; k <= 10; ++k) {
    table.add(k, 0, 1);
    table.add(k, 1, 1);
  }
  const GTestResult r = table.g_test();
  EXPECT_EQ(r.bins, 2u);
  EXPECT_EQ(r.df, 1u);
}

TEST(GTestStat, DfCountsColumnsMinusOne) {
  ContingencyTable table;
  for (std::uint64_t k = 0; k < 5; ++k) {
    table.add(k, 0, 1000);
    table.add(k, 1, 1000 + 10 * k);
  }
  const GTestResult r = table.g_test();
  EXPECT_EQ(r.bins, 5u);
  EXPECT_EQ(r.df, 4u);
}

TEST(GTestStat, GStatisticMatchesHandComputation) {
  // 2x2 table: [[30, 10], [20, 40]].
  std::vector<std::uint64_t> fixed = {30, 10};
  std::vector<std::uint64_t> random = {20, 40};
  const GTestResult r = g_test_two_rows(fixed, random, /*min_expected=*/0.0);
  // E: col0 total 50, n0=40, n1=60, n=100 -> e00=20, e10=30, e01=20, e11=30.
  const double raw_g =
      2.0 * (30 * std::log(30 / 20.0) + 10 * std::log(10 / 20.0) +
             20 * std::log(20 / 30.0) + 40 * std::log(40 / 30.0));
  // Williams correction for the 2x2 table.
  const double row_term = 100.0 * (1.0 / 40.0 + 1.0 / 60.0) - 1.0;
  const double col_term = 100.0 * (1.0 / 50.0 + 1.0 / 50.0) - 1.0;
  const double q = 1.0 + row_term * col_term / (6.0 * 100.0 * 1.0);
  EXPECT_NEAR(r.g, raw_g / q, 1e-9);
  EXPECT_EQ(r.df, 1u);
}


// --- Welch t-test --------------------------------------------------------------

TEST(TTest, AccumulatorMatchesClosedForm) {
  MomentAccumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  // Sample variance of {1,2,3,4} is 5/3.
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(TTest, MergeEqualsSequential) {
  common::Xoshiro256 rng(21);
  MomentAccumulator all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(rng.byte());
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(TTest, DetectsMeanShift) {
  common::Xoshiro256 rng(22);
  MomentAccumulator fixed, random;
  for (int i = 0; i < 20000; ++i) {
    fixed.add(static_cast<double>(rng.next() % 8));
    random.add(static_cast<double>(rng.next() % 8) + 0.2);
  }
  const TTestResult r = welch_t_test(fixed, random);
  EXPECT_GT(std::fabs(r.t), kTvlaThreshold);
}

TEST(TTest, NullStaysBelowThreshold) {
  common::Xoshiro256 rng(23);
  MomentAccumulator fixed, random;
  for (int i = 0; i < 20000; ++i) {
    fixed.add(static_cast<double>(rng.next() % 8));
    random.add(static_cast<double>(rng.next() % 8));
  }
  EXPECT_LT(std::fabs(welch_t_test(fixed, random).t), kTvlaThreshold);
}

TEST(TTest, DegenerateInputsGiveZero) {
  MomentAccumulator empty, one;
  one.add(3.0);
  EXPECT_EQ(welch_t_test(empty, one).t, 0.0);
  MomentAccumulator ca, cb;  // constant equal samples
  for (int i = 0; i < 10; ++i) {
    ca.add(2.0);
    cb.add(2.0);
  }
  EXPECT_EQ(welch_t_test(ca, cb).t, 0.0);
}

}  // namespace
}  // namespace sca::stats
