// Shared helpers for driving masked circuits in functional tests.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/gadgets/bus.hpp"
#include "src/netlist/ir.hpp"
#include "src/sim/simulator.hpp"

namespace sca::testutil {

/// Feeds every kRandom primary input a fresh value for this cycle: uniform
/// bits everywhere, then overwrites the listed buses with uniform *non-zero*
/// bytes (same value in all 64 lanes — functional tests check lane 0).
inline void feed_randomness(sim::Simulator& simulator,
                            const netlist::Netlist& nl,
                            const std::vector<gadgets::Bus>& nonzero_buses,
                            common::Xoshiro256& rng) {
  for (const auto& in : nl.inputs())
    if (in.role == netlist::InputRole::kRandom)
      simulator.set_input(in.signal, rng.bit() ? ~std::uint64_t{0} : 0);
  for (const gadgets::Bus& bus : nonzero_buses)
    gadgets::set_bus_all_lanes(simulator, bus, rng.nonzero_byte());
}

}  // namespace sca::testutil
