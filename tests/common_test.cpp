#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/common/bitops.hpp"
#include "src/common/check.hpp"
#include "src/common/dynamic_bitset.hpp"
#include "src/common/rng.hpp"
#include "src/common/simd.hpp"
#include "src/common/thread_pool.hpp"

namespace sca::common {
namespace {

TEST(Bitops, Parity) {
  EXPECT_EQ(parity64(0), 0u);
  EXPECT_EQ(parity64(1), 1u);
  EXPECT_EQ(parity64(0b1011), 1u);
  EXPECT_EQ(parity64(~std::uint64_t{0}), 0u);
}

TEST(Bitops, BitAndWithBit) {
  EXPECT_EQ(bit(0b100, 2), 1u);
  EXPECT_EQ(bit(0b100, 1), 0u);
  EXPECT_EQ(with_bit(0b100, 0, 1), 0b101u);
  EXPECT_EQ(with_bit(0b101, 2, 0), 0b001u);
}

TEST(Bitops, BroadcastBit) {
  EXPECT_EQ(broadcast_bit(0), 0u);
  EXPECT_EQ(broadcast_bit(1), ~std::uint64_t{0});
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 64), 0u);
  EXPECT_EQ(ceil_div(1, 64), 1u);
  EXPECT_EQ(ceil_div(64, 64), 1u);
  EXPECT_EQ(ceil_div(65, 64), 2u);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowRejectsZeroBound) {
  Xoshiro256 rng(7);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, NonzeroByteNeverZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 4096; ++i) EXPECT_NE(rng.nonzero_byte(), 0);
}

TEST(Rng, ByteRoughlyUniform) {
  Xoshiro256 rng(11);
  std::map<int, int> hist;
  const int kDraws = 256 * 200;
  for (int i = 0; i < kDraws; ++i) hist[rng.byte()]++;
  // Every byte value should appear; expected count 200 per bin.
  EXPECT_EQ(hist.size(), 256u);
  for (const auto& [v, c] : hist) EXPECT_GT(c, 100) << "value " << v;
}

TEST(Rng, BitIsBalanced) {
  Xoshiro256 rng(5);
  int ones = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) ones += static_cast<int>(rng.bit());
  EXPECT_GT(ones, kDraws / 2 - 300);
  EXPECT_LT(ones, kDraws / 2 + 300);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Xoshiro256 parent(9);
  Xoshiro256 child1 = parent.split();
  Xoshiro256 child2 = parent.split();
  EXPECT_NE(child1.next(), child2.next());
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(DynamicBitset, UnionIntersection) {
  DynamicBitset a(100), b(100);
  a.set(3);
  a.set(70);
  b.set(70);
  b.set(99);
  const DynamicBitset u = a | b;
  EXPECT_EQ(u.count(), 3u);
  const DynamicBitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));
}

TEST(DynamicBitset, SubsetAndIntersects) {
  DynamicBitset a(80), b(80);
  a.set(5);
  b.set(5);
  b.set(6);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  DynamicBitset c(80);
  c.set(7);
  EXPECT_FALSE(a.intersects(c));
}

TEST(DynamicBitset, SetBitsAscending) {
  DynamicBitset a(200);
  a.set(199);
  a.set(0);
  a.set(63);
  a.set(64);
  const auto bits = a.set_bits();
  ASSERT_EQ(bits.size(), 4u);
  EXPECT_EQ(bits[0], 0u);
  EXPECT_EQ(bits[1], 63u);
  EXPECT_EQ(bits[2], 64u);
  EXPECT_EQ(bits[3], 199u);
}

TEST(DynamicBitset, EqualityAndHash) {
  DynamicBitset a(70), b(70);
  a.set(33);
  b.set(33);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(34);
  EXPECT_FALSE(a == b);
}

TEST(DynamicBitset, DistinctSetsUsuallyHashDifferently) {
  std::set<std::size_t> hashes;
  for (std::size_t i = 0; i < 64; ++i) {
    DynamicBitset b(64);
    b.set(i);
    hashes.insert(b.hash());
  }
  EXPECT_GT(hashes.size(), 60u);
}

TEST(ThreadPool, ResolveThreadsNeverZero) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(0, 8, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, MoreWorkersThanItemsCoversEveryIndexOnce) {
  constexpr std::size_t kItems = 3;
  std::vector<std::atomic<int>> hits(kItems);
  parallel_for(kItems, 16, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  try {
    parallel_for(64, 4, [&](std::size_t i) {
      if (i == 17) throw std::runtime_error("worker 17 failed");
    });
    FAIL() << "parallel_for should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("worker 17 failed"),
              std::string::npos);
  }
}

TEST(ThreadPool, StatefulVariantBuildsOneStatePerWorker) {
  std::atomic<int> states_made{0};
  std::vector<std::atomic<int>> hits(32);
  parallel_for_stateful(
      hits.size(), 4,
      [&] {
        states_made.fetch_add(1);
        return 0;
      },
      [&](int& scratch, std::size_t i) {
        ++scratch;
        hits[i].fetch_add(1);
      });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GE(states_made.load(), 1);
  EXPECT_LE(states_made.load(), 4);
}

TEST(ThreadPool, ChunkSeedsAreDistinctPerChunkAndSeed) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t campaign_seed : {0ull, 1ull, 0xDEADBEEFull})
    for (std::uint64_t chunk = 0; chunk < 64; ++chunk)
      seeds.insert(chunk_seed(campaign_seed, chunk));
  EXPECT_EQ(seeds.size(), 3u * 64u);
  // Streams seeded from adjacent chunks must not correlate trivially.
  Xoshiro256 a(chunk_seed(42, 0)), b(chunk_seed(42, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Bitops, CsaIsAFullAdderPerLane) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t a = rng.next(), b = rng.next(), c = rng.next();
    std::uint64_t high = 0, low = 0;
    csa(high, low, a, b, c);
    for (unsigned lane = 0; lane < 64; ++lane) {
      const unsigned sum = static_cast<unsigned>((a >> lane) & 1) +
                           static_cast<unsigned>((b >> lane) & 1) +
                           static_cast<unsigned>((c >> lane) & 1);
      EXPECT_EQ(2 * ((high >> lane) & 1) + ((low >> lane) & 1), sum);
    }
  }
}

TEST(Bitops, ExtractBits64MatchesNaiveGather) {
  Xoshiro256 rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t v = rng.next();
    const std::uint64_t mask = rng.next() & rng.next();  // sparse-ish
    std::uint64_t expected = 0;
    unsigned bit = 0;
    for (unsigned i = 0; i < 64; ++i)
      if ((mask >> i) & 1) expected |= ((v >> i) & 1) << bit++;
    EXPECT_EQ(extract_bits64(v, mask), expected);
  }
  EXPECT_EQ(extract_bits64(0xFFFFFFFFFFFFFFFFull, 0), 0u);
  EXPECT_EQ(extract_bits64(0xA5ull, 0xFFull), 0xA5ull);
}

TEST(Bitops, Transpose64MatchesNaive) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t m[64], original[64];
    for (auto& row : m) row = rng.next();
    std::copy(std::begin(m), std::end(m), std::begin(original));
    transpose64(m);
    for (unsigned r = 0; r < 64; ++r)
      for (unsigned c = 0; c < 64; ++c)
        ASSERT_EQ((m[r] >> c) & 1, (original[c] >> r) & 1)
            << "element (" << r << ", " << c << ")";
  }
}

TEST(Bitops, Transpose64IsSelfInverse) {
  Xoshiro256 rng(13);
  std::uint64_t m[64], original[64];
  for (auto& row : m) row = rng.next();
  std::copy(std::begin(m), std::end(m), std::begin(original));
  transpose64(m);
  transpose64(m);
  for (unsigned r = 0; r < 64; ++r) EXPECT_EQ(m[r], original[r]);
}

TEST(Bitops, Transpose8x8MatchesNaive) {
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t x = rng.next();
    const std::uint64_t y = transpose8x8(x);
    for (unsigned r = 0; r < 8; ++r)
      for (unsigned c = 0; c < 8; ++c)
        ASSERT_EQ((y >> (8 * r + c)) & 1, (x >> (8 * c + r)) & 1);
    EXPECT_EQ(transpose8x8(y), x);
  }
}

TEST(Bitops, BytesToBitPlanesMatchesPerBitSpread) {
  Xoshiro256 rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint8_t bytes[64];
    for (auto& b : bytes) b = rng.byte();
    std::uint64_t planes[8];
    bytes_to_bit_planes(bytes, planes);
    for (unsigned b = 0; b < 8; ++b) {
      std::uint64_t expected = 0;
      for (unsigned lane = 0; lane < 64; ++lane)
        expected |= static_cast<std::uint64_t>((bytes[lane] >> b) & 1) << lane;
      ASSERT_EQ(planes[b], expected) << "plane " << b;
    }
  }
}

TEST(VerticalCounter, MatchesNaivePerLanePopcount) {
  Xoshiro256 rng(23);
  for (unsigned words : {0u, 1u, 3u, 17u, 64u, 200u}) {
    VerticalCounter vc;
    std::array<unsigned, 64> expected{};
    for (unsigned w = 0; w < words; ++w) {
      const std::uint64_t v = rng.next();
      vc.add(v);
      for (unsigned lane = 0; lane < 64; ++lane)
        expected[lane] += static_cast<unsigned>((v >> lane) & 1);
    }
    std::array<std::uint16_t, 64> got{};
    vc.lane_counts(got.data());
    for (unsigned lane = 0; lane < 64; ++lane) {
      ASSERT_EQ(got[lane], expected[lane]) << "lane " << lane;
      ASSERT_EQ(vc.lane_count(lane), expected[lane]);
    }
  }
}

TEST(VerticalCounter, ClearResetsAndReuses) {
  VerticalCounter vc;
  vc.add(~std::uint64_t{0});
  vc.add(~std::uint64_t{0});
  EXPECT_EQ(vc.lane_count(0), 2u);
  vc.clear();
  EXPECT_EQ(vc.planes_in_use(), 0u);
  EXPECT_EQ(vc.lane_count(63), 0u);
  vc.add(1);
  EXPECT_EQ(vc.lane_count(0), 1u);
  EXPECT_EQ(vc.lane_count(1), 0u);
}

TEST(ThreadPool, FinalizeRunsOncePerWorker) {
  std::atomic<int> states_made{0};
  std::atomic<int> finalized{0};
  std::atomic<int> total{0};
  parallel_for_stateful(
      100, 4,
      [&] {
        states_made.fetch_add(1);
        return int{0};
      },
      [](int& local, std::size_t i) { local += static_cast<int>(i); },
      [&](int& local) {
        finalized.fetch_add(1);
        total.fetch_add(local);
      });
  EXPECT_EQ(finalized.load(), states_made.load());
  EXPECT_EQ(total.load(), 99 * 100 / 2);
}

TEST(ThreadPool, FinalizeSkippedOnFailure) {
  std::atomic<int> finalized{0};
  EXPECT_THROW(
      parallel_for_stateful(
          8, 2, [] { return 0; },
          [](int&, std::size_t i) {
            if (i == 3) throw std::runtime_error("boom");
          },
          [&](int&) { finalized.fetch_add(1); }),
      std::runtime_error);
  // Workers that drained cleanly may finalize, but never all of them when
  // the failure raced in first; the failing worker itself must not.
  EXPECT_LE(finalized.load(), 1);
}

TEST(Check, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "fine"));
  try {
    require(false, "broken contract");
    FAIL() << "require should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("broken contract"), std::string::npos);
  }
}

// --- wide SIMD words and the wide statistics primitives ---------------------

TEST(Simd, WordOpsMatchPerLimbScalar) {
  Xoshiro256 rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint64_t a[8], b[8];
    for (auto& w : a) w = rng.next();
    for (auto& w : b) w = rng.next();
    const auto wa = SimdWord<8>::load(a);
    const auto wb = SimdWord<8>::load(b);
    for (unsigned i = 0; i < 8; ++i) {
      ASSERT_EQ((wa & wb).limb(i), a[i] & b[i]);
      ASSERT_EQ((wa | wb).limb(i), a[i] | b[i]);
      ASSERT_EQ((wa ^ wb).limb(i), a[i] ^ b[i]);
      ASSERT_EQ((~wa).limb(i), ~a[i]);
    }
    unsigned pc = 0;
    for (unsigned i = 0; i < 8; ++i)
      pc += static_cast<unsigned>(popcount64(a[i]));
    EXPECT_EQ(wa.popcount(), pc);
    EXPECT_EQ(wa.popcount(8), pc);
    EXPECT_EQ(wa.popcount(3), static_cast<unsigned>(popcount64(a[0]) +
                                                    popcount64(a[1]) +
                                                    popcount64(a[2])));
  }
  EXPECT_FALSE(SimdWord<4>::zero().any());
  EXPECT_TRUE(SimdWord<4>::ones().any());
}

TEST(Simd, LaneWidthResolution) {
  EXPECT_TRUE(valid_lane_width(64));
  EXPECT_TRUE(valid_lane_width(256));
  EXPECT_TRUE(valid_lane_width(512));
  EXPECT_FALSE(valid_lane_width(128));
  EXPECT_FALSE(valid_lane_width(0));
  EXPECT_EQ(resolve_lanes(256), 256u);
  EXPECT_TRUE(valid_lane_width(native_lane_width()));
  EXPECT_THROW(resolve_lanes(100), std::runtime_error);
}

TEST(Bitops, WideCsaIsAFullAdderPerLane) {
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t a[4], b[4], c[4];
    for (auto& w : a) w = rng.next();
    for (auto& w : b) w = rng.next();
    for (auto& w : c) w = rng.next();
    SimdWord<4> high, low;
    csa(high, low, SimdWord<4>::load(a), SimdWord<4>::load(b),
        SimdWord<4>::load(c));
    for (unsigned i = 0; i < 4; ++i) {
      std::uint64_t sh = 0, sl = 0;
      csa(sh, sl, a[i], b[i], c[i]);
      ASSERT_EQ(high.limb(i), sh) << "limb " << i;
      ASSERT_EQ(low.limb(i), sl) << "limb " << i;
    }
  }
}

TEST(WideVerticalCounter, MatchesPerLimbScalarCounters) {
  Xoshiro256 rng(37);
  for (unsigned words : {0u, 1u, 5u, 40u, 130u}) {
    WideVerticalCounter<8> wide;
    std::array<VerticalCounter, 8> scalar;
    std::uint64_t total = 0;
    std::uint64_t total_active3 = 0;
    for (unsigned w = 0; w < words; ++w) {
      std::uint64_t limbs[8];
      for (auto& x : limbs) x = rng.next();
      wide.add(SimdWord<8>::load(limbs));
      for (unsigned i = 0; i < 8; ++i) {
        scalar[i].add(limbs[i]);
        total += static_cast<std::uint64_t>(popcount64(limbs[i]));
        if (i < 3) total_active3 += static_cast<std::uint64_t>(
            popcount64(limbs[i]));
      }
    }
    for (unsigned i = 0; i < 8; ++i) {
      std::uint16_t got[64], want[64];
      wide.lane_counts(i, got);
      scalar[i].lane_counts(want);
      for (unsigned lane = 0; lane < 64; ++lane)
        ASSERT_EQ(got[lane], want[lane]) << "limb " << i << " lane " << lane;
    }
    EXPECT_EQ(wide.total(), total);
    EXPECT_EQ(wide.total(3), total_active3);
    wide.clear();
    EXPECT_EQ(wide.total(), 0u);
    EXPECT_EQ(wide.planes_in_use(), 0u);
  }
}

TEST(Bitops, TransposeWx64BlockMatchesPerLimbTranspose) {
  Xoshiro256 rng(41);
  constexpr std::size_t kRows = 13;   // deliberately not a multiple of 64
  constexpr std::size_t kStride = 8;  // 512-lane rows
  std::vector<std::uint64_t> rows(kRows * kStride);
  for (auto& w : rows) w = rng.next();
  for (unsigned limb = 0; limb < kStride; ++limb) {
    std::uint64_t out[64];
    transpose_wx64_block(rows.data(), kRows, kStride, limb, out);
    for (unsigned lane = 0; lane < 64; ++lane)
      for (std::size_t r = 0; r < kRows; ++r)
        ASSERT_EQ((out[lane] >> r) & 1,
                  (rows[r * kStride + limb] >> lane) & 1)
            << "limb " << limb << " lane " << lane << " row " << r;
    // Rows past kRows zero-pad the keys.
    for (unsigned lane = 0; lane < 64; ++lane)
      ASSERT_EQ(out[lane] >> kRows, 0u);
  }
}

// --- the counter-mode PRG contract ------------------------------------------

TEST(CounterPrg, CoordinateAddressedAndOrderFree) {
  // Every word is a pure function of (seed, cycle, slot, index): re-reading
  // any coordinate in any order yields the same value — the property the
  // sharded campaign's resume/thread/lane-width bit-identity builds on.
  const CounterPrg prg(1234);
  const std::uint64_t a = prg.word(77, 3, 5);
  const std::uint64_t b = prg.word(12, 0, 0);
  EXPECT_EQ(prg.word(77, 3, 5), a);
  EXPECT_EQ(prg.word(12, 0, 0), b);
  // Stream handle factoring matches the direct form.
  const CounterPrg::Stream s = prg.stream(77, 3);
  EXPECT_EQ(CounterPrg::word_at(s, 5), a);

  // Distinct coordinates give distinct words (these specific ones, with
  // overwhelming probability for any decent mixer).
  EXPECT_NE(prg.word(77, 3, 5), prg.word(77, 3, 6));
  EXPECT_NE(prg.word(77, 3, 5), prg.word(77, 4, 5));
  EXPECT_NE(prg.word(77, 3, 5), prg.word(78, 3, 5));
  EXPECT_NE(CounterPrg(1235).word(77, 3, 5), a);
}

TEST(CounterPrg, WordsAreRoughlyBalanced) {
  // Cheap sanity screen, not a statistical proof: across many coordinates
  // the bit density stays near one half.
  const CounterPrg prg(99);
  std::uint64_t ones = 0;
  const unsigned kWords = 4096;
  for (unsigned i = 0; i < kWords; ++i)
    ones += static_cast<std::uint64_t>(
        popcount64(prg.word(i / 16, i % 16, i % 7)));
  const double density =
      static_cast<double>(ones) / (64.0 * kWords);
  EXPECT_GT(density, 0.48);
  EXPECT_LT(density, 0.52);
}

TEST(Rng, BelowBoundaryValues) {
  Xoshiro256 rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.below(2), 2u);
  // A bound just past a power of two exercises the rejection path.
  const std::uint64_t bound = (std::uint64_t{1} << 63) + 1;
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.below(bound), bound);
}

}  // namespace
}  // namespace sca::common
