// Order-2 (pair-probe) lint suite: agreement with the glitch+transition
// sampler on the second-order Kronecker designs, calibration gadgets with
// known order-2 verdicts, property tests for the pair enumeration, and the
// lint pre-filter driving the 13-bit family search.
//
// The agreement contract is one-directional by the linter's soundness
// scope: lint-clean is a *proof*, so a sampled FAIL on a lint-clean design
// is a test failure (a lint false negative — the one thing the suite must
// never allow). A lint finding is a potential hazard; the sampler may need
// a paper-scale budget to confirm it (kron2_reduced_leaky's bias is ~0.2%,
// invisible below ~200 k simulations — that false-negative-by-budget story
// is asserted here deliberately).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/core/campaign.hpp"
#include "src/core/report.hpp"
#include "src/core/search.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/gadgets/randomness_plan.hpp"
#include "src/lint/linter.hpp"
#include "src/verif/exact.hpp"

namespace sca {
namespace {

using gadgets::RandomnessPlan;
using lint::LintModel;
using lint::LintOptions;
using lint::LintReport;
using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

Netlist build_kron2(const RandomnessPlan& plan) {
  Netlist nl;
  std::vector<gadgets::Bus> shares;
  for (std::size_t i = 0; i < 3; ++i)
    shares.push_back(gadgets::make_input_bus(
        nl, 8, InputRole::kShare, "b" + std::to_string(i) + "_", 0,
        static_cast<std::uint32_t>(i)));
  gadgets::build_kronecker(nl, shares, plan);
  return nl;
}

LintReport lint2(const Netlist& nl, LintModel model,
                 std::size_t max_findings = 0) {
  LintOptions options;
  options.model = model;
  options.order = 2;
  options.max_findings = max_findings;
  return lint::run_lint(nl, options);
}

eval::CampaignResult sample2(const Netlist& nl, eval::ProbeModel model,
                             std::size_t sims) {
  eval::CampaignOptions options;
  options.model = model;
  options.order = 2;
  options.simulations = sims;
  options.fixed_values[0] = 0x00;
  return eval::run_fixed_vs_random(nl, options);
}

// Calibration gadgets over a 3-share secret (2-share designs are order-2
// insecure by construction: the probe pair (x0, x1) reads both shares).
//
// Leaky: u = reg(x0 ^ x1 ^ r), v = reg(x2 ^ r). Each register alone is a
// uniformly padded value and no single glitch cone spans all three shares,
// so order 1 is clean — but the register pair XORs to the secret through
// the shared pad, the canonical order-2 leak. `swap_build_order` builds v
// first, to assert the verdict does not depend on signal-id order.
Netlist shared_pad_pair(bool swap_build_order = false) {
  Netlist nl;
  const SignalId x0 = nl.add_input(InputRole::kShare, "x0", {0, 0, 0});
  const SignalId x1 = nl.add_input(InputRole::kShare, "x1", {0, 1, 0});
  const SignalId x2 = nl.add_input(InputRole::kShare, "x2", {0, 2, 0});
  const SignalId r = nl.add_input(InputRole::kRandom, "r");
  const auto build_u = [&] {
    const SignalId ux = nl.xor_(nl.xor_(x0, r), x1);
    nl.name_signal(ux, "ux");
    const SignalId u = nl.reg(ux);
    nl.name_signal(u, "u");
    nl.add_output("u", u);
  };
  const auto build_v = [&] {
    const SignalId vx = nl.xor_(x2, r);
    nl.name_signal(vx, "vx");
    const SignalId v = nl.reg(vx);
    nl.name_signal(v, "v");
    nl.add_output("v", v);
  };
  if (swap_build_order) {
    build_v();
    build_u();
  } else {
    build_u();
    build_v();
  }
  return nl;
}

// Secure control: per-share resharing with independent pads — any two
// probes see at most two shares (directly or padded), so every pair's
// joint observation stays secret-independent.
Netlist independent_pad_resharing() {
  Netlist nl;
  for (unsigned i = 0; i < 3; ++i) {
    const SignalId x = nl.add_input(InputRole::kShare,
                                    "x" + std::to_string(i), {0, i, 0});
    const SignalId r =
        nl.add_input(InputRole::kRandom, "r" + std::to_string(i));
    const SignalId y = nl.reg(nl.xor_(x, r));
    nl.name_signal(y, "y" + std::to_string(i));
    nl.add_output("y" + std::to_string(i), y);
  }
  return nl;
}

// --- calibration family: known order-2 verdicts, lint vs sampler ----------

TEST(Lint2, SharedPadResharingFlaggedAndConfirmedBySampler) {
  const Netlist nl = shared_pad_pair();
  // Order 1: no single observation spans all three shares — clean.
  LintOptions o1;
  o1.model = LintModel::kGlitch;
  EXPECT_TRUE(lint::run_lint(nl, o1).clean());
  // Order 2: the register pair completes the sharing through the shared pad.
  const LintReport report = lint2(nl, LintModel::kGlitch);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.order, 2u);
  // The finding names a genuine pair (both probes set).
  EXPECT_NE(report.findings.front().probe2, netlist::kNoSignal);
  // And the sampler agrees immediately — the leak is total (u ^ v = x0 ^
  // x1 ^ x2), so a small budget is decisive.
  const auto sampled = sample2(nl, eval::ProbeModel::kGlitch, 2000);
  EXPECT_FALSE(sampled.pass);
  EXPECT_GT(sampled.max_minus_log10_p, 20.0);
}

TEST(Lint2, IndependentPadResharingCleanAndConfirmedBySampler) {
  const Netlist nl = independent_pad_resharing();
  const LintReport report = lint2(nl, LintModel::kGlitchTransition);
  EXPECT_TRUE(report.clean()) << to_string(report);
  // Zero-false-negative contract: lint-clean must never sample FAIL.
  const auto sampled =
      sample2(nl, eval::ProbeModel::kGlitchTransition, 2000);
  EXPECT_TRUE(sampled.pass) << "lint false negative: sampler found "
                            << sampled.results.front().name;
}

TEST(Lint2, PairVerdictInvariantUnderConstructionOrder) {
  // The same gadget built with its two registers in either order must
  // produce the same verdict and the same flagged pair (by name).
  const LintReport fwd =
      lint2(shared_pad_pair(/*swap_build_order=*/false), LintModel::kGlitch);
  const LintReport rev =
      lint2(shared_pad_pair(/*swap_build_order=*/true), LintModel::kGlitch);
  ASSERT_FALSE(fwd.clean());
  ASSERT_FALSE(rev.clean());
  EXPECT_EQ(fwd.findings.size(), rev.findings.size());
  const auto pair_names = [](const LintReport& r) {
    std::vector<std::string> names;
    for (const auto& f : r.findings) {
      std::string a = f.probe_name, b = f.probe2_name;
      if (b < a) std::swap(a, b);
      names.push_back(a + "&" + b);
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  EXPECT_EQ(pair_names(fwd), pair_names(rev));
  EXPECT_EQ(fwd.probes_flagged, rev.probes_flagged);
}

TEST(Lint2, PairCertificateReplaysThroughExactVerifier) {
  const Netlist nl = shared_pad_pair();
  LintOptions options;
  options.model = LintModel::kGlitch;
  options.order = 2;
  options.certify = true;
  const LintReport report = lint::run_lint(nl, options);
  ASSERT_FALSE(report.clean());
  const lint::LintFinding& f = report.findings.front();
  ASSERT_TRUE(f.certificate.has_value());
  EXPECT_TRUE(f.certificate->available)
      << f.certificate->unavailable_reason;
  EXPECT_GT(f.certificate->tv_distance, 0.0);
  EXPECT_NE(f.certificate->secret_a, f.certificate->secret_b);

  // The replay vehicle itself: a single probe on the pair-combiner in the
  // augmented netlist sees what the pair sees, and the unchanged
  // single-probe exact verifier finds the leak there.
  const auto [combined, combiner] =
      lint::pair_probe_netlist(nl, f.probe, f.probe2);
  const verif::ExactReport exact =
      verif::verify_first_order_glitch(combined, {});
  EXPECT_TRUE(exact.any_leak);
}

// --- agreement on the second-order Kronecker designs ----------------------

TEST(Lint2, NaiveThirteenFlaggedAtOrderTwoAgreesWithSampler) {
  const Netlist nl = build_kron2(RandomnessPlan::kron2_naive13());
  const LintReport report = lint2(nl, LintModel::kGlitch, /*max_findings=*/1);
  ASSERT_FALSE(report.clean());
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.findings.size(), 1u);
  const auto sampled = sample2(nl, eval::ProbeModel::kGlitch, 4000);
  EXPECT_FALSE(sampled.pass);
}

TEST(Lint2, RepairedReducedCleanAtOrderTwoAgreesWithSampler) {
  // The registered-XOR repair (G7 slots [f0^f9], [f3^f10], [f6^f1]): the
  // pair-probe lint proves it second-order secure under glitch+transition
  // probing, and the sampler must agree (zero false negatives). The
  // 200k-simulation confirmation lives in EXPERIMENTS.md; this budget
  // keeps CI honest without re-running it.
  const Netlist nl = build_kron2(RandomnessPlan::kron2_reduced());
  const LintReport report = lint2(nl, LintModel::kGlitchTransition);
  EXPECT_TRUE(report.clean()) << to_string(report);
  const auto sampled =
      sample2(nl, eval::ProbeModel::kGlitchTransition, 4000);
  EXPECT_TRUE(sampled.pass) << "lint false negative at "
                            << sampled.results.front().name;
}

TEST(Lint2, LeakyReducedFlaggedWhereTheSamplerBudgetFails) {
  // The design this repo originally shipped: raw first-layer masks reused
  // in the top gate. The lint flags it statically; a small-budget sampler
  // PASSES (the bias is ~0.2%, needs ~200 k simulations) — the exact
  // false-negative the paper warns evaluation-tool users about, and the
  // reason the pre-filter is lint and not a cheap campaign.
  const Netlist nl = build_kron2(RandomnessPlan::kron2_reduced_leaky());
  const LintReport report = lint2(nl, LintModel::kGlitchTransition);
  ASSERT_FALSE(report.clean());
  for (const auto& f : report.findings)
    EXPECT_NE(f.probe2, netlist::kNoSignal) << f.message;
  const auto sampled =
      sample2(nl, eval::ProbeModel::kGlitchTransition, 2000);
  EXPECT_TRUE(sampled.pass)
      << "budget grew teeth: update the narrative in EXPERIMENTS.md";
}

// --- pair enumeration properties ------------------------------------------

TEST(Lint2, PairCountersAndCacheInvariance) {
  const Netlist nl = build_kron2(RandomnessPlan::kron2_naive13());
  LintOptions options;
  options.model = LintModel::kGlitch;
  options.order = 2;
  const LintReport cached = lint::run_lint(nl, options);
  options.pair_cache = false;
  const LintReport uncached = lint::run_lint(nl, options);

  // Enumeration covers exactly the C(n, 2) pairs of the deduplicated
  // universe, and union-dedup folds a nonzero share of them.
  const std::size_t n = cached.probes_checked;
  EXPECT_EQ(cached.pairs_enumerated, n * (n - 1) / 2);
  EXPECT_GT(cached.pairs_deduped, 0u);
  EXPECT_LT(cached.pairs_deduped, cached.pairs_enumerated);

  // The cache is an optimization, not a semantic switch: identical
  // findings, flag counts and dedup counters either way.
  EXPECT_EQ(cached.pairs_enumerated, uncached.pairs_enumerated);
  EXPECT_EQ(cached.pairs_deduped, uncached.pairs_deduped);
  EXPECT_EQ(cached.probes_flagged, uncached.probes_flagged);
  ASSERT_EQ(cached.findings.size(), uncached.findings.size());
  for (std::size_t i = 0; i < cached.findings.size(); ++i) {
    EXPECT_EQ(cached.findings[i].probe_name, uncached.findings[i].probe_name);
    EXPECT_EQ(cached.findings[i].probe2_name,
              uncached.findings[i].probe2_name);
    EXPECT_EQ(cached.findings[i].rule, uncached.findings[i].rule);
    EXPECT_EQ(cached.findings[i].message, uncached.findings[i].message);
  }
}

TEST(Lint2, OrderTwoSubsumesOrderOne) {
  // A clean order-2 report proves every pair's joint distribution secret-
  // independent, which contains every single probe as a subset: order 1 on
  // the same design must also be clean.
  const Netlist nl = build_kron2(RandomnessPlan::kron2_reduced());
  ASSERT_TRUE(lint2(nl, LintModel::kGlitchTransition).clean());
  LintOptions o1;
  o1.model = LintModel::kGlitchTransition;
  EXPECT_TRUE(lint::run_lint(nl, o1).clean());
}

TEST(Lint2, JsonReportCarriesPairFields) {
  const Netlist nl = shared_pad_pair();
  const LintReport report = lint2(nl, LintModel::kGlitch);
  ASSERT_FALSE(report.clean());
  const std::string json = eval::to_json(report);
  EXPECT_NE(json.find("\"order\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pairs_enumerated\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pairs_deduped\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"probe2\":"), std::string::npos) << json;
}

// --- the 13-bit family and its lint-prefiltered search --------------------

TEST(Lint2, Family13DecodeAnchors) {
  EXPECT_EQ(eval::kron2_family13_size(),
            std::uint64_t{1716} * 1716 * 1716);
  const std::uint64_t naive = eval::kron2_family13_naive_index();
  const auto plan = eval::kron2_family13_plan(naive);
  EXPECT_EQ(plan.slots(), RandomnessPlan::kron2_naive13().slots());
  EXPECT_EQ(plan.fresh_count(), 13u);
  EXPECT_THROW(eval::kron2_family13_plan(eval::kron2_family13_size()),
               common::Error);
  // Every decoded candidate keeps one gate's three masks pairwise distinct.
  for (const std::uint64_t index :
       {std::uint64_t{0}, std::uint64_t{1715}, std::uint64_t{1716}, naive,
        eval::kron2_family13_size() - 1}) {
    const auto p = eval::kron2_family13_plan(index);
    ASSERT_EQ(p.slot_count(), 21u);
    for (std::size_t g = 12; g < 21; g += 3) {
      EXPECT_NE(p.slots()[g].fresh_mask, p.slots()[g + 1].fresh_mask);
      EXPECT_NE(p.slots()[g].fresh_mask, p.slots()[g + 2].fresh_mask);
      EXPECT_NE(p.slots()[g + 1].fresh_mask, p.slots()[g + 2].fresh_mask);
    }
  }
}

TEST(Lint2, PrefilterRejectsSliceAndMatchesUnfilteredSweep) {
  // The acceptance slice: a seeded window of the family around the naive
  // plan. The pre-filter must statically reject at least 30% of it, and
  // the filtered sweep's secure set must be identical to the unfiltered
  // (sample-everything) sweep's.
  // Slice size and budget are CI-bounded: every candidate here leaks with
  // severity ~11+ at 1500 sims (30+ at 4000 — see EXPERIMENTS.md), an
  // order of magnitude over the 7.0 threshold, so the verdicts are stable
  // goldens, not statistical expectations.
  eval::SecondOrderSearchOptions options;
  options.model = eval::ProbeModel::kGlitch;
  options.begin = eval::kron2_family13_naive_index();
  options.end = options.begin + 3;
  options.chunk = 2;
  options.simulations = 1500;
  const auto filtered = eval::search_kron2_family13(options);
  ASSERT_TRUE(filtered.complete);
  ASSERT_EQ(filtered.evaluations.size(), 3u);
  EXPECT_GE(filtered.lint_rejected * 10, filtered.evaluations.size() * 3)
      << "pre-filter rejected under 30% of the slice";

  auto unfiltered_options = options;
  unfiltered_options.lint_prefilter = false;
  const auto unfiltered = eval::search_kron2_family13(unfiltered_options);
  ASSERT_EQ(unfiltered.evaluations.size(), filtered.evaluations.size());
  EXPECT_EQ(unfiltered.lint_rejected, 0u);
  EXPECT_EQ(filtered.secure_indices(), unfiltered.secure_indices());
  // Zero false negatives on the slice: a candidate the sampler convicts
  // must have been statically rejected, and a candidate lint let through
  // must carry the identical sampled verdict in both sweeps.
  for (std::size_t i = 0; i < filtered.evaluations.size(); ++i) {
    const auto& lint_view = filtered.evaluations[i];
    const auto& sampled = unfiltered.evaluations[i];
    ASSERT_EQ(lint_view.index, sampled.index);
    if (!sampled.secure) EXPECT_TRUE(lint_view.lint_rejected);
    if (!lint_view.lint_rejected) {
      EXPECT_EQ(lint_view.secure, sampled.secure);
      EXPECT_EQ(lint_view.severity, sampled.severity);
      EXPECT_EQ(lint_view.worst_probe, sampled.worst_probe);
    }
  }
}

}  // namespace
}  // namespace sca
