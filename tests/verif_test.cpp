#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/dom.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/gadgets/randomness_plan.hpp"
#include "src/netlist/ir.hpp"
#include "src/verif/exact.hpp"
#include "src/verif/unroll.hpp"

namespace sca::verif {
namespace {

using gadgets::Bus;
using gadgets::RandomnessPlan;
using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

// --- unrolling -----------------------------------------------------------------

TEST(Unroll, SequentialDepthOfPipelines) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  EXPECT_EQ(sequential_depth(nl), 0u);
  const SignalId r1 = nl.reg(a);
  EXPECT_EQ(sequential_depth(nl), 1u);
  const SignalId r2 = nl.reg(nl.not_(r1));
  nl.reg(nl.xor_(r2, a));
  EXPECT_EQ(sequential_depth(nl), 3u);
}

TEST(Unroll, RejectsRegisterFeedback) {
  Netlist nl;
  const SignalId q = nl.make_reg_placeholder();
  nl.connect_reg(q, nl.not_(q));
  EXPECT_THROW(sequential_depth(nl), common::Error);
}

TEST(Unroll, CreatesPerCycleInputs) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kRandom, "a");
  nl.reg(a);
  const Unrolled u = unroll(nl, 3);
  EXPECT_EQ(u.nl.inputs().size(), 3u);
  EXPECT_EQ(u.input_cycle.size(), 3u);
  EXPECT_EQ(u.input_cycle[0], 0u);
  EXPECT_EQ(u.input_cycle[2], 2u);
  EXPECT_EQ(u.nl.registers().size(), 0u);
}

TEST(Unroll, RegisterAliasesPreviousCycle) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId r = nl.reg(a);
  const Unrolled u = unroll(nl, 2);
  // r at cycle 1 aliases a's cycle-0 instance; r at cycle 0 is undefined.
  EXPECT_EQ(u.map[0][r], netlist::kNoSignal);
  EXPECT_EQ(u.map[1][r], u.map[0][a]);
}

TEST(Unroll, DeepRegistersNeedEnoughCycles) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId r2 = nl.reg(nl.reg(a));
  const Unrolled u = unroll(nl, 3);
  EXPECT_EQ(u.map[1][r2], netlist::kNoSignal);
  EXPECT_NE(u.map[2][r2], netlist::kNoSignal);
}

// --- exact verifier on hand-built circuits ---------------------------------------

// A deliberately broken "masked" circuit: it recombines the shares.
TEST(Exact, UnmaskedRecombinationLeaks) {
  Netlist nl;
  const SignalId s0 = nl.add_input(InputRole::kShare, "s0", {0, 0, 0});
  const SignalId s1 = nl.add_input(InputRole::kShare, "s1", {0, 1, 0});
  nl.xor_(s0, s1);  // the secret, in the clear
  const ExactReport report = verify_first_order_glitch(nl);
  EXPECT_TRUE(report.any_leak);
  // The leaking probe's distributions must be maximally apart (TV = 1).
  EXPECT_DOUBLE_EQ(report.leaking().front()->max_tv_distance, 1.0);
}

TEST(Exact, SingleShareProbeIsSecure) {
  Netlist nl;
  const SignalId s0 = nl.add_input(InputRole::kShare, "s0", {0, 0, 0});
  nl.add_input(InputRole::kShare, "s1", {0, 1, 0});
  nl.not_(s0);  // touches only one share
  const ExactReport report = verify_first_order_glitch(nl);
  EXPECT_FALSE(report.any_leak);
}

TEST(Exact, UnprotectedAndOfSharesLeaks) {
  // x0 & x1 (shares of the same secret): classic first-order leak.
  Netlist nl;
  const SignalId s0 = nl.add_input(InputRole::kShare, "s0", {0, 0, 0});
  const SignalId s1 = nl.add_input(InputRole::kShare, "s1", {0, 1, 0});
  nl.and_(s0, s1);
  const ExactReport report = verify_first_order_glitch(nl);
  EXPECT_TRUE(report.any_leak);
}

TEST(Exact, DomAndIsFirstOrderSecure) {
  Netlist nl;
  std::vector<SignalId> x = {nl.add_input(InputRole::kShare, "x0", {0, 0, 0}),
                             nl.add_input(InputRole::kShare, "x1", {0, 1, 0})};
  std::vector<SignalId> y = {nl.add_input(InputRole::kShare, "y0", {1, 0, 0}),
                             nl.add_input(InputRole::kShare, "y1", {1, 1, 0})};
  std::vector<SignalId> r = {nl.add_input(InputRole::kRandom, "r")};
  gadgets::build_dom_and(nl, x, y, r, "dom");
  const ExactReport report = verify_first_order_glitch(nl);
  EXPECT_FALSE(report.any_leak);
  EXPECT_FALSE(report.any_skipped);
}

TEST(Exact, DomAndWithoutMaskLeaks) {
  // Replacing the fresh mask with a constant breaks DOM: the cross-domain
  // register then stores x^i y^j unblinded and the output XOR's probe sees
  // both shares of y.
  Netlist nl;
  std::vector<SignalId> x = {nl.add_input(InputRole::kShare, "x0", {0, 0, 0}),
                             nl.add_input(InputRole::kShare, "x1", {0, 1, 0})};
  std::vector<SignalId> y = {nl.add_input(InputRole::kShare, "y0", {1, 0, 0}),
                             nl.add_input(InputRole::kShare, "y1", {1, 1, 0})};
  std::vector<SignalId> r = {nl.constant(false)};
  gadgets::build_dom_and(nl, x, y, r, "dom");
  const ExactReport report = verify_first_order_glitch(nl);
  EXPECT_TRUE(report.any_leak);
}

TEST(Exact, TwoDomAndsSharingOneMaskLeak) {
  // The minimal version of the paper's finding: two DOM-ANDs fed related
  // inputs and the *same* fresh mask; a probe combining their registered
  // outputs observes mask-cancelled data.
  Netlist nl;
  std::vector<SignalId> x = {nl.add_input(InputRole::kShare, "x0", {0, 0, 0}),
                             nl.add_input(InputRole::kShare, "x1", {0, 1, 0})};
  std::vector<SignalId> y = {nl.add_input(InputRole::kShare, "y0", {1, 0, 0}),
                             nl.add_input(InputRole::kShare, "y1", {1, 1, 0})};
  const SignalId r = nl.add_input(InputRole::kRandom, "r");
  const auto g1 = gadgets::build_dom_and(nl, x, y, {r}, "g1");
  const auto g2 = gadgets::build_dom_and(nl, y, x, {r}, "g2");
  // Downstream gate whose glitch-extended probe sees both gadgets' registers.
  nl.and_(g1.out[0], g2.out[0]);
  const ExactReport report = verify_first_order_glitch(nl);
  EXPECT_TRUE(report.any_leak);
}

// --- exact verifier vs the paper's claims (glitch model) --------------------------

class KroneckerExact : public ::testing::TestWithParam<
                           std::pair<const char*, bool>> {  // (plan, leaks)
 protected:
  static RandomnessPlan plan_by_name(const std::string& name) {
    if (name == "full") return RandomnessPlan::kron1_full_fresh();
    if (name == "eq6") return RandomnessPlan::kron1_demeyer_eq6();
    if (name == "eq9") return RandomnessPlan::kron1_proposed_eq9();
    if (name == "single") return RandomnessPlan::kron1_single_reuse_r1r3();
    if (name == "pair") return RandomnessPlan::kron1_pair_reuse();
    if (name == "r5r6") return RandomnessPlan::kron1_r5_equals_r6();
    if (name == "trans1") return RandomnessPlan::kron1_transition_secure(1);
    if (name == "trans4") return RandomnessPlan::kron1_transition_secure(4);
    throw common::Error("unknown plan in test");
  }
};

TEST_P(KroneckerExact, MatchesPaperVerdict) {
  const auto [plan_name, expect_leak] = GetParam();
  Netlist nl;
  std::vector<Bus> shares = {
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1)};
  gadgets::build_kronecker(nl, shares, plan_by_name(plan_name));
  const ExactReport report = verify_first_order_glitch(nl);
  EXPECT_FALSE(report.any_skipped);
  EXPECT_EQ(report.any_leak, expect_leak) << plan_name << "\n"
                                          << to_string(report);
}

INSTANTIATE_TEST_SUITE_P(
    PaperClaims, KroneckerExact,
    ::testing::Values(std::pair{"full", false},   // 7 fresh masks: secure
                      std::pair{"eq6", true},     // CHES 2018 Eq.(6): leaks
                      std::pair{"single", true},  // r1 = r3 alone: leaks
                      std::pair{"pair", true},    // r1=r3, r2=r4: leaks
                      std::pair{"eq9", false},    // repaired Eq.(9): secure
                      std::pair{"r5r6", true},    // r5 = r6: leaks
                      std::pair{"trans1", false},
                      std::pair{"trans4", false}),
    [](const auto& info) { return std::string(info.param.first); });

TEST(Exact, Eq6LeakLocalizesToG7) {
  // The paper's Fig. 3: the leaking probes sit inside gate G7, observing the
  // registered inner-domain products of G5/G6.
  Netlist nl;
  std::vector<Bus> shares = {
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1)};
  gadgets::build_kronecker(nl, shares, RandomnessPlan::kron1_demeyer_eq6());
  const ExactReport report = verify_first_order_glitch(nl);
  ASSERT_TRUE(report.any_leak);
  for (const ExactProbeResult* leak : report.leaking())
    EXPECT_NE(leak->name.find("G7"), std::string::npos)
        << "leak outside G7: " << leak->name;
}

TEST(Exact, SingleReuseWitnessInvolvesZeroUnmaskedBits) {
  // Section III, Eq. (8): with r1 = r3 the observation distribution differs
  // between secrets with x1 = x5 = 0 and secrets with x1 = 1 (x5 = 0).
  // Verify directly on the conditional distributions of a leaking probe.
  Netlist nl;
  std::vector<Bus> shares = {
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1)};
  gadgets::build_kronecker(nl, shares,
                           RandomnessPlan::kron1_single_reuse_r1r3());
  const ExactReport report = verify_first_order_glitch(nl);
  ASSERT_TRUE(report.any_leak);
  const ExactProbeResult* leak = report.leaking().front();

  const auto dist = exact_probe_distribution(nl, leak->probe);
  // The Kronecker input is complemented, so the paper's "x1 = x5 = 0"
  // condition corresponds to complemented bits 1 and 5 both 1, i.e. secret
  // bits x1 = x5 = 0. Check: dist is constant within {x : x1=x5=0} but
  // differs from some secret with x1 = 1.
  const auto& base = dist.at(0x00);           // x = 0: x1 = x5 = 0
  EXPECT_EQ(dist.at(0x01), base);             // x = 1: still x1 = x5 = 0
  bool differs_for_x1_set = false;
  for (const auto& [secret, histogram] : dist)
    if ((secret & 0b100010) && histogram != base) differs_for_x1_set = true;
  EXPECT_TRUE(differs_for_x1_set);
}

TEST(Exact, PairReuseIsMoreSevereThanSingle) {
  // "Considering other optimizations such as r2 = r4 could further
  // exacerbate the vulnerabilities": compare worst-case TV distances.
  auto severity = [](const RandomnessPlan& plan) {
    Netlist nl;
    std::vector<Bus> shares = {
        gadgets::make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
        gadgets::make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1)};
    gadgets::build_kronecker(nl, shares, plan);
    const ExactReport report = verify_first_order_glitch(nl);
    double worst = 0.0;
    for (const auto* leak : report.leaking())
      worst = std::max(worst, leak->max_tv_distance);
    return worst;
  };
  const double single = severity(RandomnessPlan::kron1_single_reuse_r1r3());
  const double pair = severity(RandomnessPlan::kron1_pair_reuse());
  EXPECT_GT(single, 0.0);
  EXPECT_GT(pair, single);
}

TEST(Exact, SecondOrderKroneckerFullFreshHasNoFirstOrderLeak) {
  Netlist nl;
  std::vector<Bus> shares = {
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1),
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b2_", 0, 2)};
  gadgets::build_kronecker(nl, shares, RandomnessPlan::kron2_full_fresh());
  const ExactReport report = verify_first_order_glitch(nl);
  EXPECT_FALSE(report.any_leak) << to_string(report);
}

TEST(Exact, DeterministicAcrossThreadCounts) {
  // Per-probe enumeration is parallelized; probe order and every per-probe
  // result must be identical for threads in {1, 2, 8}.
  Netlist nl;
  std::vector<Bus> shares = {
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1)};
  gadgets::build_kronecker(nl, shares, RandomnessPlan::kron1_demeyer_eq6());

  ExactOptions options;
  options.threads = 1;
  const ExactReport base = verify_first_order_glitch(nl, options);
  ASSERT_TRUE(base.any_leak);
  for (unsigned threads : {2u, 8u}) {
    options.threads = threads;
    const ExactReport report = verify_first_order_glitch(nl, options);
    EXPECT_EQ(report.any_leak, base.any_leak);
    EXPECT_EQ(report.probes_leaking, base.probes_leaking);
    ASSERT_EQ(report.probes.size(), base.probes.size());
    for (std::size_t i = 0; i < base.probes.size(); ++i) {
      EXPECT_EQ(report.probes[i].name, base.probes[i].name);
      EXPECT_EQ(report.probes[i].leaks, base.probes[i].leaks);
      EXPECT_EQ(report.probes[i].max_tv_distance,
                base.probes[i].max_tv_distance);
    }
  }
}

TEST(Exact, ReportRendering) {
  Netlist nl;
  const SignalId s0 = nl.add_input(InputRole::kShare, "s0", {0, 0, 0});
  const SignalId s1 = nl.add_input(InputRole::kShare, "s1", {0, 1, 0});
  nl.name_signal(nl.xor_(s0, s1), "recombined");
  const ExactReport report = verify_first_order_glitch(nl);
  const std::string text = to_string(report);
  EXPECT_NE(text.find("LEAK"), std::string::npos);
  EXPECT_NE(text.find("recombined"), std::string::npos);
}

}  // namespace
}  // namespace sca::verif
