// Compiled accumulation-plan property tests.
//
// Two layers of contract. The planner itself (src/core/accplan) is a pure
// function of the batch's set descriptors: hosting must pick a minimal
// strict superset with an exact pext key mask, trie CSE must never emit
// more expansion work than the unshared per-set total, packed gather
// recipes must reproduce each set's key bit-for-bit, and the shard
// partition must cover every live set exactly once. On top of that, the
// campaign built on the plan must be bit-identical to the retained scalar
// per-set oracle for every regime the planner can select — narrow, packed,
// compacted, hosted and t-test — at every lane width and thread count,
// including the 2-D (chunk x probe-set shard) schedule.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/accplan.hpp"
#include "src/core/campaign.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/gadgets/masked_sbox.hpp"
#include "src/netlist/ir.hpp"

namespace sca {
namespace {

namespace ap = eval::accplan;

using gadgets::Bus;
using gadgets::RandomnessPlan;
using netlist::InputRole;
using netlist::Netlist;

// --- planner unit tests ------------------------------------------------------

ap::PlanSetInput set_input(const std::vector<std::size_t>& points,
                           bool transitions = false, bool compacted = false,
                           bool direct_table = true) {
  ap::PlanSetInput in;
  in.points = &points;
  in.observation_bits = points.size() * (transitions ? 2 : 1);
  in.compacted = compacted;
  in.direct_table = direct_table;
  return in;
}

TEST(AccPlan, HostingPicksMinimalWidthStrictSuperset) {
  const std::vector<std::size_t> wide = {0, 1, 2, 3, 5};
  const std::vector<std::size_t> tight = {1, 3, 5};
  const std::vector<std::size_t> sub = {1, 3};
  const std::vector<ap::PlanSetInput> sets = {
      set_input(wide), set_input(tight), set_input(sub)};
  const ap::AccumulationPlan plan =
      ap::compile_accumulation_plan(sets, ap::PlanOptions{});

  // `sub` has two strict supersets; the width-3 one must win.
  EXPECT_EQ(plan.sets[2].regime, ap::AccRegime::kHosted);
  EXPECT_EQ(plan.sets[2].host, 1u);
  // Positions of points 1 and 3 inside {1, 3, 5} are bits 0 and 1.
  EXPECT_EQ(plan.sets[2].host_mask, 0b011u);
  // `tight` is itself hosted by `wide` (positions 1, 3, 4).
  EXPECT_EQ(plan.sets[1].regime, ap::AccRegime::kHosted);
  EXPECT_EQ(plan.sets[1].host, 0u);
  EXPECT_EQ(plan.sets[1].host_mask, 0b11010u);
  EXPECT_EQ(plan.hosted_sets, 2u);
  EXPECT_EQ(plan.live_sets, 1u);
  // The chain materializes wide-first: `tight` before `sub`.
  ASSERT_EQ(plan.finalize_order.size(), 2u);
  EXPECT_EQ(plan.finalize_order[0], 1u);
  EXPECT_EQ(plan.finalize_order[1], 2u);
}

TEST(AccPlan, HostMaskMirrorsPreviousHalfUnderTransitions) {
  const std::vector<std::size_t> super = {0, 1, 2};
  const std::vector<std::size_t> sub = {0, 2};
  const std::vector<ap::PlanSetInput> sets = {set_input(super, true),
                                              set_input(sub, true)};
  ap::PlanOptions opts;
  opts.transitions = true;
  const ap::AccumulationPlan plan = ap::compile_accumulation_plan(sets, opts);
  ASSERT_EQ(plan.sets[1].regime, ap::AccRegime::kHosted);
  // Now half selects host bits {0, 2}; the prev half mirrors them three
  // (= host point count) positions higher.
  EXPECT_EQ(plan.sets[1].host_mask, 0b101101u);
}

TEST(AccPlan, FuseOffKeepsEverySetLive) {
  const std::vector<std::size_t> super = {0, 1, 2, 3};
  const std::vector<std::size_t> sub = {1, 2};
  const std::vector<ap::PlanSetInput> sets = {set_input(super),
                                              set_input(sub)};
  ap::PlanOptions opts;
  opts.fuse = false;
  const ap::AccumulationPlan plan = ap::compile_accumulation_plan(sets, opts);
  EXPECT_EQ(plan.hosted_sets, 0u);
  EXPECT_EQ(plan.live_sets, 2u);
  EXPECT_EQ(plan.sets[1].regime, ap::AccRegime::kNarrow);
}

TEST(AccPlan, TrieSharesCommonExpansionPrefixes) {
  // Three width-3 narrow sets sharing the prefix row 0 (none a subset of
  // another, so hosting stays out of the way). A non-shared trie would
  // expand (2^3 - 1) masks per set; the shared one reuses the row-0 and
  // row-{0,1} levels.
  const std::vector<std::size_t> a = {0, 1, 2};
  const std::vector<std::size_t> b = {0, 1, 3};
  const std::vector<std::size_t> c = {0, 2, 3};
  const std::vector<ap::PlanSetInput> sets = {set_input(a), set_input(b),
                                              set_input(c)};
  const ap::AccumulationPlan plan =
      ap::compile_accumulation_plan(sets, ap::PlanOptions{});
  EXPECT_EQ(plan.live_sets, 3u);
  EXPECT_LT(plan.trie_expand_ops, plan.trie_expand_ops_unshared);
  EXPECT_EQ(plan.trie_expand_ops_unshared, 3u * 7u);
  // One emit per narrow set, all in the single shard.
  ASSERT_EQ(plan.shards.size(), 1u);
  std::size_t emits = 0;
  for (const ap::TrieOp& op : plan.shards[0].trie) emits += op.emit ? 1 : 0;
  EXPECT_EQ(emits, 3u);
}

TEST(AccPlan, PackedGatherRecipesReproduceKeys) {
  // Two wide sets with overlapping rows force a shared transpose-block
  // union spanning two 64-row blocks. Expanding each set's gather recipe
  // against the block tables must reproduce its key-bit code sequence
  // exactly (now rows ascending), one key bit per code.
  std::vector<std::size_t> a_pts, b_pts;
  for (std::size_t p = 0; p < 40; ++p) a_pts.push_back(p);
  for (std::size_t p = 30; p < 70; ++p) b_pts.push_back(p);
  const std::vector<ap::PlanSetInput> sets = {
      set_input(a_pts, false, false, false),
      set_input(b_pts, false, false, false)};
  const ap::AccumulationPlan plan =
      ap::compile_accumulation_plan(sets, ap::PlanOptions{});
  ASSERT_EQ(plan.shards.size(), 1u);
  const ap::ShardProgram& prog = plan.shards[0];
  ASSERT_EQ(prog.packed.size(), 2u);
  EXPECT_EQ(prog.blocks.size(), 2u);

  for (std::uint32_t i : prog.packed) {
    const ap::SetAccPlan& p = plan.sets[i];
    EXPECT_EQ(p.regime, ap::AccRegime::kPacked);
    std::vector<std::uint32_t> decoded;
    std::uint8_t expected_shift = 0;
    for (const ap::PackedGather& g : p.gathers) {
      EXPECT_EQ(g.shift, expected_shift);
      ASSERT_LT(g.block, prog.blocks.size());
      for (std::uint8_t bit = 0; bit < 64; ++bit)
        if (g.mask >> bit & 1) decoded.push_back(prog.blocks[g.block][bit]);
      expected_shift =
          static_cast<std::uint8_t>(expected_shift + __builtin_popcountll(g.mask));
    }
    EXPECT_EQ(decoded, p.rows);
    EXPECT_EQ(expected_shift, sets[i].observation_bits);
  }
}

TEST(AccPlan, ShardPartitionCoversEveryLiveSetOnce) {
  std::vector<std::vector<std::size_t>> points;
  std::vector<ap::PlanSetInput> sets;
  points.reserve(8);
  for (std::size_t i = 0; i < 8; ++i)
    points.push_back({3 * i, 3 * i + 1, 3 * i + 2});
  for (const auto& p : points) sets.push_back(set_input(p));
  ap::PlanOptions opts;
  opts.shards = 3;
  const ap::AccumulationPlan plan = ap::compile_accumulation_plan(sets, opts);
  ASSERT_EQ(plan.shards.size(), 3u);
  std::vector<int> seen(sets.size(), 0);
  for (std::size_t s = 0; s < plan.shards.size(); ++s)
    for (const ap::TrieOp& op : plan.shards[s].trie)
      if (op.emit) {
        ++seen[op.arg];
        EXPECT_EQ(plan.sets[op.arg].shard, s);
      }
  for (int count : seen) EXPECT_EQ(count, 1);
  // Requesting more shards than live sets clamps.
  opts.shards = 64;
  EXPECT_EQ(ap::compile_accumulation_plan(sets, opts).shards.size(), 8u);
}

TEST(AccPlan, TtestForcesHwRegimeAndDisablesHosting) {
  const std::vector<std::size_t> super = {0, 1, 2, 3};
  const std::vector<std::size_t> sub = {1, 2};
  const std::vector<ap::PlanSetInput> sets = {set_input(super),
                                              set_input(sub)};
  ap::PlanOptions opts;
  opts.ttest = true;
  const ap::AccumulationPlan plan = ap::compile_accumulation_plan(sets, opts);
  EXPECT_EQ(plan.hosted_sets, 0u);
  for (const ap::SetAccPlan& p : plan.sets)
    EXPECT_EQ(p.regime, ap::AccRegime::kTtestHw);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0].ttest.size(), 2u);
}

// --- campaign-level bit-identity --------------------------------------------

Netlist kronecker_netlist() {
  Netlist nl;
  std::vector<Bus> shares;
  for (std::size_t i = 0; i < 2; ++i)
    shares.push_back(gadgets::make_input_bus(
        nl, 8, InputRole::kShare, "b" + std::to_string(i) + "_", 0,
        static_cast<std::uint32_t>(i)));
  gadgets::build_kronecker(nl, shares, RandomnessPlan::kron1_demeyer_eq6());
  return nl;
}

Netlist sbox_netlist() {
  Netlist nl;
  gadgets::MaskedSboxOptions options;
  options.kron_plan = RandomnessPlan::kron1_demeyer_eq6();
  gadgets::build_masked_sbox(nl, options);
  return nl;
}

eval::CampaignOptions campaign_options(std::size_t sims) {
  eval::CampaignOptions opts;
  opts.model = eval::ProbeModel::kGlitch;
  opts.simulations = sims;
  opts.fixed_values[0] = 0x00;
  opts.seed = 11;
  return opts;
}

void expect_identical(const eval::CampaignResult& a,
                      const eval::CampaignResult& b, const std::string& tag) {
  EXPECT_EQ(a.pass, b.pass) << tag;
  EXPECT_EQ(a.leaking_sets, b.leaking_sets) << tag;
  EXPECT_EQ(a.max_minus_log10_p, b.max_minus_log10_p) << tag;
  EXPECT_EQ(a.aliased_probe_sets, b.aliased_probe_sets) << tag;
  ASSERT_EQ(a.results.size(), b.results.size()) << tag;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].name, b.results[i].name) << tag;
    EXPECT_EQ(a.results[i].minus_log10_p, b.results[i].minus_log10_p) << tag;
    if (a.statistic == eval::Statistic::kWelchTTest) {
      EXPECT_EQ(a.results[i].t.t, b.results[i].t.t) << tag;
      EXPECT_EQ(a.results[i].t.n_fixed, b.results[i].t.n_fixed) << tag;
      EXPECT_EQ(a.results[i].t.n_random, b.results[i].t.n_random) << tag;
    } else {
      EXPECT_EQ(a.results[i].g.g, b.results[i].g.g) << tag;
      EXPECT_EQ(a.results[i].g.n_fixed, b.results[i].g.n_fixed) << tag;
      EXPECT_EQ(a.results[i].g.n_random, b.results[i].g.n_random) << tag;
    }
  }
}

TEST(AccPlanCampaign, FusedMatchesScalarOracleAcrossLanesAndThreads) {
  // The tentpole contract: hosting, conjunction CSE, shared transposes and
  // the 2-D shard schedule are all plan structure, never statistics — the
  // fused pipeline at every lane width and thread count must reproduce the
  // scalar per-set oracle bit for bit.
  const Netlist nl = kronecker_netlist();
  eval::CampaignOptions base_opts = campaign_options(12000);
  base_opts.accumulation = eval::Accumulation::kScalar;
  base_opts.threads = 1;
  const eval::CampaignResult base = eval::run_fixed_vs_random(nl, base_opts);
  EXPECT_EQ(base.hosted_sets, 0u);  // the oracle never hosts

  for (unsigned lanes : {64u, 256u, 512u}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      eval::CampaignOptions opts = campaign_options(12000);
      opts.lanes = lanes;
      opts.threads = threads;
      const eval::CampaignResult r = eval::run_fixed_vs_random(nl, opts);
      expect_identical(base, r,
                       "fused " + std::to_string(lanes) + " lanes / " +
                           std::to_string(threads) + " threads");
    }
  }
}

TEST(AccPlanCampaign, SboxHostingPreservesStatistics) {
  // On the full masked Sbox most first-order glitch-extended sets are
  // strict subsets of their cone roots; the fused run must host a large
  // fraction of them and still match the oracle exactly.
  const Netlist nl = sbox_netlist();
  eval::CampaignOptions scalar_opts = campaign_options(4000);
  scalar_opts.accumulation = eval::Accumulation::kScalar;
  const eval::CampaignResult scalar = eval::run_fixed_vs_random(nl, scalar_opts);
  EXPECT_EQ(scalar.hosted_sets, 0u);

  const eval::CampaignResult fused =
      eval::run_fixed_vs_random(nl, campaign_options(4000));
  EXPECT_GT(fused.hosted_sets, 0u);
  expect_identical(scalar, fused, "sbox hosted vs scalar");

  // The alias counter is the sum of the per-representative alias lists.
  std::size_t alias_names = 0;
  for (const eval::ProbeSetResult& r : fused.results)
    alias_names += r.aliases.size();
  EXPECT_EQ(alias_names, fused.aliased_probe_sets);
}

TEST(AccPlanCampaign, CompactedRegimeFusedMatchesScalar) {
  // Glitch+transition doubles every key width; a tight observation cap
  // forces wide sets into the compacted HW-pair regime in both paths.
  const Netlist nl = kronecker_netlist();
  eval::CampaignOptions scalar_opts = campaign_options(8000);
  scalar_opts.model = eval::ProbeModel::kGlitchTransition;
  scalar_opts.max_observation_bits = 6;
  scalar_opts.accumulation = eval::Accumulation::kScalar;
  const eval::CampaignResult scalar = eval::run_fixed_vs_random(nl, scalar_opts);

  eval::CampaignOptions fused_opts = campaign_options(8000);
  fused_opts.model = eval::ProbeModel::kGlitchTransition;
  fused_opts.max_observation_bits = 6;
  fused_opts.threads = 2;
  const eval::CampaignResult fused = eval::run_fixed_vs_random(nl, fused_opts);

  bool any_compacted = false;
  for (const eval::ProbeSetResult& r : fused.results)
    any_compacted |= r.compacted;
  EXPECT_TRUE(any_compacted);
  expect_identical(scalar, fused, "compacted transition model");
}

TEST(AccPlanCampaign, TtestFusedMatchesScalar) {
  const Netlist nl = kronecker_netlist();
  eval::CampaignOptions scalar_opts = campaign_options(8000);
  scalar_opts.statistic = eval::Statistic::kWelchTTest;
  scalar_opts.accumulation = eval::Accumulation::kScalar;
  const eval::CampaignResult scalar = eval::run_fixed_vs_random(nl, scalar_opts);

  eval::CampaignOptions fused_opts = campaign_options(8000);
  fused_opts.statistic = eval::Statistic::kWelchTTest;
  fused_opts.threads = 2;
  const eval::CampaignResult fused = eval::run_fixed_vs_random(nl, fused_opts);
  EXPECT_EQ(fused.statistic, eval::Statistic::kWelchTTest);
  expect_identical(scalar, fused, "welch t-test");
}

TEST(AccPlanCampaign, ProbeSetShardsEngageAndPreserveStatistics) {
  // 12000 simulations fit one chunk, so an 8-thread fused run can only
  // scale by splitting the probe sets into shards; each (chunk, shard)
  // cell re-simulates its chunk. The shard schedule must engage and leave
  // every statistic bit-identical to the single-threaded run.
  const Netlist nl = kronecker_netlist();
  eval::CampaignOptions single_opts = campaign_options(12000);
  single_opts.threads = 1;
  const eval::CampaignResult single = eval::run_fixed_vs_random(nl, single_opts);
  EXPECT_EQ(single.set_shards, 1u);

  eval::CampaignOptions sharded_opts = campaign_options(12000);
  sharded_opts.threads = 8;
  const eval::CampaignResult sharded =
      eval::run_fixed_vs_random(nl, sharded_opts);
  EXPECT_GT(sharded.set_shards, 1u);
  EXPECT_EQ(sharded.simulations_done, single.simulations_done);
  expect_identical(single, sharded, "2-D shard schedule");
}

}  // namespace
}  // namespace sca
