#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/netlist/ir.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"

namespace sca::sim {
namespace {

using netlist::GateKind;
using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

TEST(Simulator, AllBooleanGatesTruthTables) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId b = nl.add_input(InputRole::kControl, "b");
  const SignalId g_and = nl.and_(a, b);
  const SignalId g_nand = nl.nand_(a, b);
  const SignalId g_or = nl.or_(a, b);
  const SignalId g_nor = nl.nor_(a, b);
  const SignalId g_xor = nl.xor_(a, b);
  const SignalId g_xnor = nl.xnor_(a, b);
  const SignalId g_not = nl.not_(a);
  const SignalId g_buf = nl.buf(b);

  Simulator simulator(nl);
  // Lanes 0..3 encode (a,b) = (0,0),(1,0),(0,1),(1,1).
  simulator.set_input(a, 0b1010);
  simulator.set_input(b, 0b1100);
  simulator.settle();

  EXPECT_EQ(simulator.value(g_and) & 0xF, 0b1000u);
  EXPECT_EQ(simulator.value(g_nand) & 0xF, 0b0111u);
  EXPECT_EQ(simulator.value(g_or) & 0xF, 0b1110u);
  EXPECT_EQ(simulator.value(g_nor) & 0xF, 0b0001u);
  EXPECT_EQ(simulator.value(g_xor) & 0xF, 0b0110u);
  EXPECT_EQ(simulator.value(g_xnor) & 0xF, 0b1001u);
  EXPECT_EQ(simulator.value(g_not) & 0xF, 0b0101u);
  EXPECT_EQ(simulator.value(g_buf) & 0xF, 0b1100u);
}

TEST(Simulator, MuxSelectsPerLane) {
  Netlist nl;
  const SignalId sel = nl.add_input(InputRole::kControl, "sel");
  const SignalId a0 = nl.add_input(InputRole::kControl, "a0");
  const SignalId a1 = nl.add_input(InputRole::kControl, "a1");
  const SignalId m = nl.mux(sel, a0, a1);
  Simulator simulator(nl);
  simulator.set_input(sel, 0b01);
  simulator.set_input(a0, 0b10);
  simulator.set_input(a1, 0b01);
  simulator.settle();
  // Lane 0: sel=1 -> a1 bit0 = 1. Lane 1: sel=0 -> a0 bit1 = 1.
  EXPECT_EQ(simulator.value(m) & 0b11, 0b11u);
}

TEST(Simulator, ConstantsSurviveReset) {
  Netlist nl;
  const SignalId c1 = nl.constant(true);
  const SignalId c0 = nl.constant(false);
  Simulator simulator(nl);
  simulator.reset();
  EXPECT_EQ(simulator.value(c1), ~std::uint64_t{0});
  EXPECT_EQ(simulator.value(c0), 0u);
}

TEST(Simulator, RegisterDelaysByOneCycle) {
  Netlist nl;
  const SignalId d = nl.add_input(InputRole::kControl, "d");
  const SignalId q = nl.reg(d);
  const SignalId q2 = nl.reg(q);
  Simulator simulator(nl);

  simulator.set_input(d, 0xDEADull);
  simulator.settle();
  EXPECT_EQ(simulator.value(q), 0u);  // still previous state
  simulator.clock();
  EXPECT_EQ(simulator.value(q), 0xDEADull);
  EXPECT_EQ(simulator.value(q2), 0u);
  simulator.set_input(d, 0ull);
  simulator.step();
  EXPECT_EQ(simulator.value(q), 0u);
  EXPECT_EQ(simulator.value(q2), 0xDEADull);
}

TEST(Simulator, RegisterFeedbackToggles) {
  // q <= NOT q: classic toggle flop.
  Netlist nl;
  const SignalId q = nl.make_reg_placeholder();
  const SignalId nq = nl.not_(q);
  nl.connect_reg(q, nq);
  Simulator simulator(nl);
  simulator.settle();
  EXPECT_EQ(simulator.value(q), 0u);
  simulator.clock();
  simulator.settle();
  EXPECT_EQ(simulator.value(q), ~std::uint64_t{0});
  simulator.clock();
  simulator.settle();
  EXPECT_EQ(simulator.value(q), 0u);
}

TEST(Simulator, SetInputRejectsNonInput) {
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId n = nl.not_(a);
  Simulator simulator(nl);
  EXPECT_THROW(simulator.set_input(n, 1), common::Error);
}

TEST(Simulator, LanesAreIndependent) {
  // Random 3-gate circuit evaluated 64 lanes at once must agree with
  // per-lane scalar evaluation.
  Netlist nl;
  const SignalId a = nl.add_input(InputRole::kControl, "a");
  const SignalId b = nl.add_input(InputRole::kControl, "b");
  const SignalId c = nl.add_input(InputRole::kControl, "c");
  const SignalId t1 = nl.xor_(a, b);
  const SignalId t2 = nl.and_(t1, c);
  const SignalId out = nl.or_(t2, a);

  common::Xoshiro256 rng(42);
  Simulator simulator(nl);
  for (int rounds = 0; rounds < 10; ++rounds) {
    const std::uint64_t va = rng.next(), vb = rng.next(), vc = rng.next();
    simulator.set_input(a, va);
    simulator.set_input(b, vb);
    simulator.set_input(c, vc);
    simulator.settle();
    for (unsigned lane = 0; lane < 64; ++lane) {
      const bool ea = (va >> lane) & 1, eb = (vb >> lane) & 1, ec = (vc >> lane) & 1;
      const bool expect = ((ea ^ eb) && ec) || ea;
      EXPECT_EQ(simulator.value_in_lane(out, lane), expect);
    }
  }
}

TEST(Simulator, PipelineLatencyMatchesRegisterDepth) {
  // 3-deep pipeline of buffers: value appears at the output after 3 clocks.
  Netlist nl;
  const SignalId in = nl.add_input(InputRole::kControl, "in");
  SignalId s = in;
  for (int i = 0; i < 3; ++i) s = nl.reg(nl.buf(s));
  Simulator simulator(nl);

  std::vector<std::uint64_t> sent;
  common::Xoshiro256 rng(3);
  for (int cycle = 0; cycle < 10; ++cycle) {
    const std::uint64_t v = rng.next();
    sent.push_back(v);
    simulator.set_input(in, v);
    simulator.settle();
    if (cycle >= 3) EXPECT_EQ(simulator.value(s), sent[cycle - 3]);
    simulator.clock();
  }
}


TEST(VcdTrace, RendersChanges) {
  netlist::Netlist nl;
  const netlist::SignalId d = nl.add_input(netlist::InputRole::kControl, "d");
  const netlist::SignalId q = nl.reg(d);
  nl.name_signal(q, "q");
  Simulator simulator(nl);
  VcdTrace trace(simulator, {d, q});

  simulator.set_input_all_lanes(d, true);
  simulator.settle();
  trace.sample(0);
  simulator.clock();
  simulator.set_input_all_lanes(d, false);
  simulator.settle();
  trace.sample(1);
  simulator.clock();
  simulator.settle();
  trace.sample(2);

  EXPECT_EQ(trace.sample_count(), 3u);
  const std::string vcd = trace.render("tb");
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module tb"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#1"), std::string::npos);
  // q toggles 0 -> 1 -> 0 across the three samples.
  EXPECT_NE(vcd.find("q $end"), std::string::npos);
}

TEST(VcdTrace, DefaultsToNamedSignals) {
  netlist::Netlist nl;
  const netlist::SignalId a = nl.add_input(netlist::InputRole::kControl, "a");
  nl.not_(a);                      // unnamed
  nl.name_signal(nl.not_(a), "nb");
  Simulator simulator(nl);
  VcdTrace trace(simulator, {});
  simulator.settle();
  trace.sample(0);
  const std::string vcd = trace.render();
  EXPECT_NE(vcd.find(" a "), std::string::npos);
  EXPECT_NE(vcd.find(" nb "), std::string::npos);
}

TEST(VcdTrace, RejectsNonMonotonicTime) {
  netlist::Netlist nl;
  nl.add_input(netlist::InputRole::kControl, "a");
  Simulator simulator(nl);
  VcdTrace trace(simulator, {});
  simulator.settle();
  trace.sample(5);
  EXPECT_THROW(trace.sample(5), common::Error);
}

}  // namespace
}  // namespace sca::sim
