// Golden verdicts and exact-verifier agreement for the static leakage
// linter (src/lint). The ground truth is the paper itself: Eq. (6) must be
// flagged (R1 at G7), Eq. (9) must pass the glitch rules and fail the
// transition rules, and exactly the four r7 = r_i (i = 1..4) plans survive
// the transition model — all cross-checked against verif::exact and
// eval::search over the full small-plan space.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/report.hpp"
#include "src/core/search.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/gadgets/randomness_plan.hpp"
#include "src/lint/linter.hpp"
#include "src/verif/exact.hpp"

namespace sca {
namespace {

using gadgets::RandomnessPlan;
using lint::LintModel;
using lint::LintOptions;
using lint::LintReport;
using lint::LintRule;
using netlist::InputRole;
using netlist::Netlist;

Netlist build_kron1(const RandomnessPlan& plan) {
  Netlist nl;
  const std::vector<gadgets::Bus> shares = {
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b0_", 0, 0),
      gadgets::make_input_bus(nl, 8, InputRole::kShare, "b1_", 0, 1)};
  gadgets::build_kronecker(nl, shares, plan);
  return nl;
}

LintReport lint_kron1(const RandomnessPlan& plan, LintModel model) {
  const Netlist nl = build_kron1(plan);
  LintOptions options;
  options.model = model;
  return lint::run_lint(nl, options);
}

// --- paper golden verdicts, glitch model ---------------------------------------

TEST(Lint, FullFreshIsCleanUnderBothModels) {
  EXPECT_TRUE(
      lint_kron1(RandomnessPlan::kron1_full_fresh(), LintModel::kGlitch)
          .clean());
  EXPECT_TRUE(lint_kron1(RandomnessPlan::kron1_full_fresh(),
                         LintModel::kGlitchTransition)
                  .clean());
}

TEST(Lint, Eq6FlaggedAsFreshReuseInsideG7) {
  // The CHES 2018 optimization, Eq. (6): r1 = r3 makes the two first-layer
  // DOM gates' glitch-extended cones meet inside G7 — the linter must point
  // at exactly that structure.
  const LintReport report =
      lint_kron1(RandomnessPlan::kron1_demeyer_eq6(), LintModel::kGlitch);
  ASSERT_FALSE(report.clean());
  bool r1_at_g7 = false;
  for (const lint::LintFinding& f : report.findings) {
    EXPECT_NE(f.probe_name.find("G7"), std::string::npos)
        << "finding outside G7: " << f.message;
    // Certification is opt-in: without LintOptions::certify there is none.
    EXPECT_FALSE(f.certificate.has_value());
    if (f.rule == LintRule::kR1FreshReuse &&
        f.probe_name.find("G7") != std::string::npos &&
        !f.shared_fresh.empty())
      r1_at_g7 = true;
  }
  EXPECT_TRUE(r1_at_g7) << to_string(report);
}

TEST(Lint, SingleReuseR1R3Flagged) {
  const LintReport report = lint_kron1(
      RandomnessPlan::kron1_single_reuse_r1r3(), LintModel::kGlitch);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.findings.front().rule, LintRule::kR1FreshReuse);
}

TEST(Lint, R5EqualsR6Flagged) {
  // Section IV's counterexample: sharing the two layer-2 masks leaks even
  // under the glitch-only model.
  EXPECT_FALSE(lint_kron1(RandomnessPlan::kron1_r5_equals_r6(),
                          LintModel::kGlitch)
                   .clean());
}

TEST(Lint, Eq9CleanUnderGlitchFlaggedUnderTransition) {
  // The paper's repaired plan, Eq. (9): secure in the glitch model, broken
  // once register transitions are observed (Section IV). The transition
  // finding must be an R4 (the glitch-only subtuple is clean).
  EXPECT_TRUE(lint_kron1(RandomnessPlan::kron1_proposed_eq9(),
                         LintModel::kGlitch)
                  .clean());
  const LintReport report = lint_kron1(RandomnessPlan::kron1_proposed_eq9(),
                                       LintModel::kGlitchTransition);
  ASSERT_FALSE(report.clean());
  for (const lint::LintFinding& f : report.findings)
    EXPECT_EQ(f.rule, LintRule::kR4TransitionHazard) << f.message;
}

TEST(Lint, TransitionModelAcceptsExactlyTheFourPaperSolutions) {
  // Section IV: of the six r7 = r_i reuse candidates, exactly r7 = r1..r4
  // survive transitions (r5/r6 feed the same register chain as r7).
  for (unsigned i = 1; i <= 6; ++i) {
    std::vector<gadgets::MaskSlotExpr> slots;
    for (unsigned k = 0; k < 6; ++k)
      slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << k, false});
    slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << (i - 1), false});
    const RandomnessPlan plan("r7-is-r" + std::to_string(i), 6,
                              std::move(slots));
    const LintReport report = lint_kron1(plan, LintModel::kGlitchTransition);
    EXPECT_EQ(report.clean(), i <= 4)
        << "r7=r" << i << "\n"
        << to_string(report);
  }
}

// --- counterexample certificates -----------------------------------------------

// Replays one finding's certificate through verif::exact_probe_distribution
// and collects every way it fails to be a real distinguisher: the two
// secret values must induce different distributions and the chosen
// observation must separate them with exactly the recorded counts. Returns
// human-readable problems (empty = valid certificate); gtest-free so it can
// run on worker threads.
std::vector<std::string> certificate_problems(
    const Netlist& nl, const lint::LintFinding& f,
    const verif::ExactOptions& exact_options) {
  std::vector<std::string> problems;
  const auto fail = [&](const std::string& what) {
    problems.push_back(f.message + " — " + what);
  };
  if (!f.certificate.has_value()) return {f.message + " — no certificate"};
  const lint::LintCertificate& cert = *f.certificate;
  if (!cert.available) return {f.message + " — " + cert.unavailable_reason};
  if (cert.tv_distance <= 0.0) fail("zero tv distance");
  if (cert.count_a <= cert.count_b) fail("counts do not separate");
  if (cert.assignment.empty()) fail("no witness assignment");

  const auto distributions =
      verif::exact_probe_distribution(nl, f.probe, exact_options);
  const auto& dist_a = distributions.at(cert.secret_a);
  const auto& dist_b = distributions.at(cert.secret_b);
  if (dist_a == dist_b) fail("distributions are identical on replay");
  const auto it_a = dist_a.find(cert.observation);
  if (it_a == dist_a.end() || it_a->second != cert.count_a)
    fail("count_a does not replay");
  const auto it_b = dist_b.find(cert.observation);
  if ((it_b == dist_b.end() ? 0u : it_b->second) != cert.count_b)
    fail("count_b does not replay");
  return problems;
}

// --- agreement with the exact verifier over the small-plan space ----------------

// The exact glitch-model verdict for every single-bit slot partition with
// <= 4 fresh bits — the expensive half of the agreement and pre-filter
// tests, computed once.
const eval::SearchResult& exact_partition_search() {
  static const eval::SearchResult result = [] {
    eval::SearchOptions options;
    options.model = eval::ProbeModel::kGlitch;
    return eval::search_all_partitions(options, /*max_fresh=*/4);
  }();
  return result;
}

// All single-bit slot partitions with <= 4 fresh bits (715 of Bell(7) = 877
// plans): the linter must agree with verif::exact *exactly* — no false
// negatives (soundness) and no false positives — every finding across the
// sweep must carry a replay-validated counterexample certificate, and
// therefore the lint-prefiltered search must return the identical
// secure-plan set while sending fewer candidates to the exact stage. One
// test, because the exact sweep is the expensive part and ctest isolates
// test processes.
TEST(Lint, AgreesWithExactVerifierAndPrefilterKeepsSecureSet) {
  const eval::SearchResult& exact = exact_partition_search();
  ASSERT_EQ(exact.evaluations.size(), 715u);

  // Per plan: lint with certification, then replay every certificate
  // (gtest-free on the workers; assertions run below on the main thread).
  std::vector<int> lint_clean(exact.evaluations.size(), 0);
  std::vector<std::size_t> certificates(exact.evaluations.size(), 0);
  std::vector<std::vector<std::string>> problems(exact.evaluations.size());
  common::parallel_for(
      exact.evaluations.size(), /*threads=*/0, [&](std::size_t i) {
        const Netlist nl = build_kron1(exact.evaluations[i].plan);
        LintOptions options;
        options.certify = true;
        options.threads = 1;  // already parallel over plans
        const LintReport report = lint::run_lint(nl, options);
        lint_clean[i] = report.clean();
        for (const lint::LintFinding& f : report.findings) {
          ++certificates[i];
          for (std::string& p :
               certificate_problems(nl, f, verif::ExactOptions{}))
            problems[i].push_back(std::move(p));
        }
      });
  std::size_t certified = 0;
  for (std::size_t i = 0; i < exact.evaluations.size(); ++i) {
    const auto& e = exact.evaluations[i];
    ASSERT_TRUE(e.exact);
    EXPECT_EQ(static_cast<bool>(lint_clean[i]), e.secure)
        << e.plan.describe();
    // Clean plans have no findings, hence no certificates; flagged plans
    // carry only replay-validated ones.
    for (const std::string& p : problems[i])
      ADD_FAILURE() << e.plan.describe() << ": " << p;
    certified += certificates[i];
  }
  EXPECT_GT(certified, 0u);

  // Pre-filter identity: exact agreement above already implies it, but the
  // search plumbing (counters, skip path) deserves its own end-to-end pass.
  eval::SearchOptions options;
  options.model = eval::ProbeModel::kGlitch;
  options.lint_prefilter = true;
  const eval::SearchResult filtered =
      eval::search_all_partitions(options, /*max_fresh=*/4);

  const auto secure_names = [](const eval::SearchResult& r) {
    std::set<std::string> names;
    for (const eval::PlanEvaluation* e : r.secure_plans())
      names.insert(e->plan.describe());
    return names;
  };
  EXPECT_EQ(secure_names(exact), secure_names(filtered));
  EXPECT_EQ(exact.lint_rejected, 0u);
  EXPECT_GT(filtered.lint_rejected, 0u);
  EXPECT_LT(filtered.expensive_evaluations, exact.expensive_evaluations);
  EXPECT_EQ(filtered.lint_rejected + filtered.expensive_evaluations,
            filtered.evaluations.size());
}

TEST(Lint, PrefilteredR7SearchMatchesPaperUnderTransitions) {
  // The r7-reuse search under the transition model with the pre-filter on:
  // flagged candidates (r7 = r5, r7 = r6) never reach the sampler, and the
  // secure set is the paper's four solutions plus the full-fresh baseline.
  eval::SearchOptions options;
  options.model = eval::ProbeModel::kGlitchTransition;
  options.lint_prefilter = true;
  options.simulations = 20'000;
  const eval::SearchResult result = eval::search_r7_reuse(options);
  ASSERT_EQ(result.evaluations.size(), 7u);
  EXPECT_EQ(result.lint_rejected, 2u);
  std::set<std::string> secure;
  for (const eval::PlanEvaluation* e : result.secure_plans())
    secure.insert(e->plan.name());
  const std::set<std::string> expected = {
      "kron1/full-fresh-7", "kron1/search-r7-is-r1", "kron1/search-r7-is-r2",
      "kron1/search-r7-is-r3", "kron1/search-r7-is-r4"};
  EXPECT_EQ(secure, expected);
}

TEST(Lint, TransitionFindingsGetTransitionModelCertificates) {
  // An R4 hazard is invisible to a glitch-only enumeration, so its
  // certificate must come from the transition-extended engine. Minimal
  // Section IV shape (full Eq. (9) needs a 2^32 enumeration — too slow for
  // tier 1): both shares are masked with the *same* fresh bit but at
  // register depths 1 and 2, so any single cycle shows two independently
  // masked values while consecutive cycles expose x0 ^ r and x1 ^ r of the
  // same r instance.
  Netlist nl;
  const netlist::SignalId x0 =
      nl.add_input(InputRole::kShare, "x0", netlist::ShareLabel{0, 0, 0});
  const netlist::SignalId x1 =
      nl.add_input(InputRole::kShare, "x1", netlist::ShareLabel{0, 1, 0});
  const netlist::SignalId r = nl.add_input(InputRole::kRandom, "r");
  const netlist::SignalId a = nl.reg(nl.xor_(x0, r));
  nl.name_signal(a, "a_reg");
  const netlist::SignalId b = nl.reg(nl.reg(nl.xor_(x1, r)));
  nl.name_signal(b, "b_reg");
  const netlist::SignalId q = nl.and_(a, b);
  nl.name_signal(q, "q");
  nl.add_output("q", q);
  nl.validate();

  ASSERT_TRUE(lint::run_lint(nl).clean());  // glitch model: two fresh masks
  LintOptions options;
  options.model = LintModel::kGlitchTransition;
  options.certify = true;
  const LintReport report = lint::run_lint(nl, options);
  ASSERT_FALSE(report.clean());
  verif::ExactOptions exact_options;
  exact_options.transitions = true;
  std::size_t r4 = 0;
  for (const lint::LintFinding& f : report.findings) {
    if (f.rule == LintRule::kR4TransitionHazard) ++r4;
    for (const std::string& problem :
         certificate_problems(nl, f, exact_options))
      ADD_FAILURE() << problem;
  }
  EXPECT_GT(r4, 0u) << to_string(report);
}

// --- report plumbing ------------------------------------------------------------

TEST(Lint, JsonRenderingIsWellFormedAndCarriesFindings) {
  const LintReport report =
      lint_kron1(RandomnessPlan::kron1_demeyer_eq6(), LintModel::kGlitch);
  const std::string json = eval::to_json(report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"backend\":\"lint\""), std::string::npos);
  EXPECT_NE(json.find("\"model\":\"glitch\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("R1-fresh-reuse"), std::string::npos);
  EXPECT_NE(json.find("G7"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one line
}

TEST(Lint, RejectsRegisterFeedbackLikeTheExactVerifier) {
  Netlist nl;
  const netlist::SignalId state = nl.make_reg_placeholder();
  const netlist::SignalId inv = nl.not_(state);
  nl.connect_reg(state, inv);
  nl.add_output("q", state);
  EXPECT_THROW(lint::run_lint(nl), common::Error);
}

}  // namespace
}  // namespace sca
