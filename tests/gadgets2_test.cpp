// Tests for the extended gadget layer: DOM field multipliers, ring refresh,
// the Boolean-masked DOM baseline Sbox, and the second-order multiplicative
// Sbox with its conversions.
#include <gtest/gtest.h>

#include "src/aes/sbox.hpp"
#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/core/campaign.hpp"
#include "src/core/report.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/conversions2.hpp"
#include "src/gadgets/dom_gf.hpp"
#include "src/gadgets/dom_sbox.hpp"
#include "src/gadgets/masked_sbox2.hpp"
#include "src/gadgets/sharing.hpp"
#include "src/gf/gf256.hpp"
#include "src/gf/tower.hpp"
#include "src/netlist/ir.hpp"
#include "src/sim/simulator.hpp"

namespace sca::gadgets {
namespace {

using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

std::uint8_t field_mul_ref(GfKind kind, std::uint8_t a, std::uint8_t b) {
  switch (kind) {
    case GfKind::kGf4Tower: return gf::gf4_mul(a, b);
    case GfKind::kGf16Tower: return gf::gf16_mul(a, b);
    case GfKind::kGf256Aes: return gf::gf256_mul(a, b);
  }
  throw common::Error("unknown field");
}

struct DomGfCase {
  GfKind kind;
  std::size_t shares;
};

class DomGfMulTest : public ::testing::TestWithParam<DomGfCase> {};

TEST_P(DomGfMulTest, SharesRecombineToProduct) {
  const auto [kind, s] = GetParam();
  const std::size_t width = gf_width(kind);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << width) - 1);

  Netlist nl;
  std::vector<Bus> x, y, masks;
  for (std::size_t i = 0; i < s; ++i) {
    x.push_back(make_input_bus(nl, width, InputRole::kShare, "x", 0,
                               static_cast<std::uint32_t>(i)));
    y.push_back(make_input_bus(nl, width, InputRole::kShare, "y", 1,
                               static_cast<std::uint32_t>(i)));
  }
  for (std::size_t i = 0; i < dom_mask_count(s); ++i)
    masks.push_back(make_input_bus(nl, width, InputRole::kRandom, "m"));
  const DomGfMul gadget = build_dom_gf_mul(nl, kind, x, y, masks, "mul");
  nl.validate();

  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint8_t xv = static_cast<std::uint8_t>(rng.byte() & mask);
    const std::uint8_t yv = static_cast<std::uint8_t>(rng.byte() & mask);
    auto xs = boolean_share(xv, s, rng);
    auto ys = boolean_share(yv, s, rng);
    for (std::size_t i = 0; i < s; ++i) {
      set_bus_all_lanes(simulator, x[i], xs[i] & mask);
      set_bus_all_lanes(simulator, y[i], ys[i] & mask);
    }
    for (const Bus& m : masks)
      set_bus_all_lanes(simulator, m, rng.byte() & mask);
    simulator.step();
    simulator.settle();
    std::uint8_t z = 0;
    for (std::size_t i = 0; i < s; ++i)
      z ^= static_cast<std::uint8_t>(read_bus_lane(simulator, gadget.out[i], 0));
    EXPECT_EQ(z, field_mul_ref(kind, xv, yv))
        << "x=" << int(xv) << " y=" << int(yv) << " shares=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FieldsAndOrders, DomGfMulTest,
    ::testing::Values(DomGfCase{GfKind::kGf4Tower, 2},
                      DomGfCase{GfKind::kGf4Tower, 3},
                      DomGfCase{GfKind::kGf16Tower, 2},
                      DomGfCase{GfKind::kGf16Tower, 3},
                      DomGfCase{GfKind::kGf256Aes, 2},
                      DomGfCase{GfKind::kGf256Aes, 3}),
    [](const auto& info) {
      std::string name =
          info.param.kind == GfKind::kGf4Tower
              ? "gf4"
              : info.param.kind == GfKind::kGf16Tower ? "gf16" : "gf256";
      return name + "_s" + std::to_string(info.param.shares);
    });

TEST(DomGfMul, RejectsBadShapes) {
  Netlist nl;
  const Bus a = make_input_bus(nl, 4, InputRole::kShare, "a", 0, 0);
  const Bus b = make_input_bus(nl, 4, InputRole::kShare, "b", 0, 1);
  const Bus m = make_input_bus(nl, 4, InputRole::kRandom, "m");
  // One share only.
  EXPECT_THROW(build_dom_gf_mul(nl, GfKind::kGf16Tower, {a}, {a}, {m}, "g"),
               common::Error);
  // Wrong mask count.
  EXPECT_THROW(
      build_dom_gf_mul(nl, GfKind::kGf16Tower, {a, b}, {a, b}, {m, m}, "g"),
      common::Error);
  // Wrong width.
  const Bus w8 = make_input_bus(nl, 8, InputRole::kShare, "w", 1, 0);
  EXPECT_THROW(
      build_dom_gf_mul(nl, GfKind::kGf16Tower, {w8, w8}, {a, b}, {m}, "g"),
      common::Error);
}

class RingRefreshTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingRefreshTest, PreservesValueAndRandomizes) {
  const std::size_t s = GetParam();
  Netlist nl;
  std::vector<Bus> shares, masks;
  for (std::size_t i = 0; i < s; ++i)
    shares.push_back(make_input_bus(nl, 8, InputRole::kShare, "x", 0,
                                    static_cast<std::uint32_t>(i)));
  for (std::size_t i = 0; i < refresh_mask_count(s); ++i)
    masks.push_back(make_input_bus(nl, 8, InputRole::kRandom, "m"));
  const auto out = build_ring_refresh(nl, shares, masks, "refresh");
  ASSERT_EQ(out.size(), s);

  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(9);
  bool shares_changed = false;
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint8_t x = rng.byte();
    auto sh = boolean_share(x, s, rng);
    for (std::size_t i = 0; i < s; ++i)
      set_bus_all_lanes(simulator, shares[i], sh[i]);
    for (const Bus& m : masks) set_bus_all_lanes(simulator, m, rng.byte());
    simulator.step();
    simulator.settle();
    std::uint8_t recombined = 0;
    for (std::size_t i = 0; i < s; ++i) {
      const auto v =
          static_cast<std::uint8_t>(read_bus_lane(simulator, out[i], 0));
      recombined ^= v;
      if (v != sh[i]) shares_changed = true;
    }
    EXPECT_EQ(recombined, x);
  }
  EXPECT_TRUE(shares_changed);  // the refresh actually re-randomizes
}

INSTANTIATE_TEST_SUITE_P(Orders, RingRefreshTest, ::testing::Values(2, 3, 4));

// --- DOM baseline Sbox ---------------------------------------------------------

TEST(DomSbox, MaskBitAccounting) {
  EXPECT_EQ(dom_sbox_mask_bits(2), 18u + 4u);
  EXPECT_EQ(dom_sbox_mask_bits(3), 54u + 12u);
}

TEST(DomSbox, MatchesReferenceSboxPipelined) {
  Netlist nl;
  const DomSbox sbox = build_dom_sbox(nl, DomSboxOptions{});
  nl.validate();
  EXPECT_EQ(sbox.latency, 6u);

  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(3);
  for (unsigned cycle = 0; cycle < 256 + sbox.latency; ++cycle) {
    if (cycle < 256) {
      const auto sh = boolean_share(static_cast<std::uint8_t>(cycle), 2, rng);
      set_bus_all_lanes(simulator, sbox.in_shares[0], sh[0]);
      set_bus_all_lanes(simulator, sbox.in_shares[1], sh[1]);
    }
    for (SignalId m : sbox.masks) simulator.set_input_all_lanes(m, rng.bit());
    simulator.settle();
    if (cycle >= sbox.latency) {
      const std::uint8_t out = static_cast<std::uint8_t>(
          read_bus_lane(simulator, sbox.out_shares[0], 0) ^
          read_bus_lane(simulator, sbox.out_shares[1], 0));
      EXPECT_EQ(out, aes::sbox(static_cast<std::uint8_t>(cycle - sbox.latency)));
    }
    simulator.clock();
  }
}

TEST(DomSbox, ThirdOrderSharingStaysFunctional) {
  Netlist nl;
  DomSboxOptions options;
  options.share_count = 3;
  const DomSbox sbox = build_dom_sbox(nl, options);
  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(4);
  for (std::uint8_t x : {0x00, 0x01, 0x53, 0xFF}) {
    const auto sh = boolean_share(x, 3, rng);
    for (std::size_t i = 0; i < 3; ++i)
      set_bus_all_lanes(simulator, sbox.in_shares[i], sh[i]);
    for (std::size_t c = 0; c < sbox.latency; ++c) {
      for (SignalId m : sbox.masks) simulator.set_input_all_lanes(m, rng.bit());
      simulator.step();
    }
    simulator.settle();
    std::uint8_t out = 0;
    for (std::size_t i = 0; i < 3; ++i)
      out ^= static_cast<std::uint8_t>(
          read_bus_lane(simulator, sbox.out_shares[i], 0));
    EXPECT_EQ(out, aes::sbox(x)) << "x=" << int(x);
  }
}

TEST(DomSbox, FirstOrderCampaignPasses) {
  Netlist nl;
  build_dom_sbox(nl, DomSboxOptions{});
  eval::CampaignOptions options;
  options.simulations = 60000;
  options.fixed_values[0] = 0x00;
  const eval::CampaignResult result = eval::run_fixed_vs_random(nl, options);
  EXPECT_TRUE(result.pass) << to_string(result);
}

// --- second-order conversions ----------------------------------------------------

TEST(Conversions2, B2M2Recombines) {
  Netlist nl;
  std::vector<Bus> shares;
  for (std::uint32_t i = 0; i < 3; ++i)
    shares.push_back(
        make_input_bus(nl, 8, InputRole::kShare, "b" + std::to_string(i), 0, i));
  const Bus r1 = make_input_bus(nl, 8, InputRole::kRandom, "r1");
  const Bus r2 = make_input_bus(nl, 8, InputRole::kRandom, "r2");
  const B2M2Result conv = build_b2m2(nl, shares, r1, r2);
  EXPECT_EQ(conv.latency, 2u);

  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint8_t x = rng.byte();
    const auto sh = boolean_share(x, 3, rng);
    for (std::size_t i = 0; i < 3; ++i)
      set_bus_all_lanes(simulator, shares[i], sh[i]);
    const std::uint8_t r1v = rng.nonzero_byte(), r2v = rng.nonzero_byte();
    set_bus_all_lanes(simulator, r1, r1v);
    set_bus_all_lanes(simulator, r2, r2v);
    simulator.step();
    simulator.step();
    simulator.settle();
    const auto p = static_cast<std::uint8_t>(read_bus_lane(simulator, conv.p, 0));
    EXPECT_EQ(static_cast<std::uint8_t>(
                  read_bus_lane(simulator, conv.r1, 0)), r1v);
    EXPECT_EQ(static_cast<std::uint8_t>(
                  read_bus_lane(simulator, conv.r2, 0)), r2v);
    // X = inv(R1) * inv(R2) * P.
    EXPECT_EQ(gf::gf256_mul(gf::gf256_mul(gf::gf256_inv(r1v), gf::gf256_inv(r2v)), p),
              x);
  }
}

TEST(Conversions2, M2B2Recombines) {
  Netlist nl;
  const Bus q0 = make_input_bus(nl, 8, InputRole::kControl, "q0");
  const Bus q1 = make_input_bus(nl, 8, InputRole::kControl, "q1");
  const Bus q2 = make_input_bus(nl, 8, InputRole::kControl, "q2");
  const Bus s1 = make_input_bus(nl, 8, InputRole::kRandom, "s1");
  const Bus s2 = make_input_bus(nl, 8, InputRole::kRandom, "s2");
  const M2B2Result conv = build_m2b2(nl, q0, q1, q2, s1, s2);
  EXPECT_EQ(conv.latency, 3u);
  ASSERT_EQ(conv.b_shares.size(), 3u);

  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint8_t q0v = rng.byte(), q1v = rng.byte(), q2v = rng.byte();
    set_bus_all_lanes(simulator, q0, q0v);
    set_bus_all_lanes(simulator, q1, q1v);
    set_bus_all_lanes(simulator, q2, q2v);
    set_bus_all_lanes(simulator, s1, rng.byte());
    set_bus_all_lanes(simulator, s2, rng.byte());
    for (int c = 0; c < 3; ++c) simulator.step();
    simulator.settle();
    std::uint8_t x = 0;
    for (const Bus& b : conv.b_shares)
      x ^= static_cast<std::uint8_t>(read_bus_lane(simulator, b, 0));
    EXPECT_EQ(x, gf::gf256_mul(gf::gf256_mul(q0v, q1v), q2v));
  }
}

// --- second-order masked Sbox -------------------------------------------------------

TEST(MaskedSbox2, MatchesReferenceSboxPipelined) {
  Netlist nl;
  const MaskedSbox2 sbox = build_masked_sbox2(nl, MaskedSbox2Options{});
  nl.validate();
  EXPECT_EQ(sbox.latency, 8u);

  sim::Simulator simulator(nl);
  common::Xoshiro256 rng(17);
  for (unsigned cycle = 0; cycle < 256 + sbox.latency; ++cycle) {
    if (cycle < 256) {
      const auto sh = boolean_share(static_cast<std::uint8_t>(cycle), 3, rng);
      for (std::size_t i = 0; i < 3; ++i)
        set_bus_all_lanes(simulator, sbox.in_shares[i], sh[i]);
    }
    set_bus_all_lanes(simulator, sbox.rand_r1, rng.nonzero_byte());
    set_bus_all_lanes(simulator, sbox.rand_r2, rng.nonzero_byte());
    set_bus_all_lanes(simulator, sbox.rand_s1, rng.byte());
    set_bus_all_lanes(simulator, sbox.rand_s2, rng.byte());
    for (SignalId f : sbox.kron_fresh) simulator.set_input_all_lanes(f, rng.bit());
    simulator.settle();
    if (cycle >= sbox.latency) {
      std::uint8_t out = 0;
      for (std::size_t i = 0; i < 3; ++i)
        out ^= static_cast<std::uint8_t>(
            read_bus_lane(simulator, sbox.out_shares[i], 0));
      EXPECT_EQ(out, aes::sbox(static_cast<std::uint8_t>(cycle - sbox.latency)))
          << "x=" << (cycle - sbox.latency);
    }
    simulator.clock();
  }
}

TEST(MaskedSbox2, RejectsFirstOrderPlan) {
  Netlist nl;
  MaskedSbox2Options options;
  options.kron_plan = RandomnessPlan::kron1_full_fresh();
  EXPECT_THROW(build_masked_sbox2(nl, options), common::Error);
}

TEST(MaskedSbox2, FirstOrderCampaignPasses) {
  Netlist nl;
  const MaskedSbox2 sbox = build_masked_sbox2(nl, MaskedSbox2Options{});
  eval::CampaignOptions options;
  options.simulations = 50000;
  options.fixed_values[0] = 0x00;
  options.nonzero_random_buses = {sbox.rand_r1, sbox.rand_r2};
  options.warmup_cycles = 12;
  options.sample_interval = 12;
  const eval::CampaignResult result = eval::run_fixed_vs_random(nl, options);
  EXPECT_TRUE(result.pass) << to_string(result);
}

}  // namespace
}  // namespace sca::gadgets
