// Whole-design lint of the masked AES-128 core through slice extraction
// (ctest label `lint-aes`): the Eq. (6) randomness plan must be flagged as
// R1 fresh reuse inside *every* Sbox instance's G7 — all 16 SubBytes and
// all 4 key-schedule instances, attributed to the state/key byte the
// instance reads — and the repaired Eq. (9) plan must lint glitch-clean
// across all 20. Every finding carries an exact counterexample certificate,
// replayed here through verif::exact_probe_distribution.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/report.hpp"
#include "src/gadgets/masked_aes.hpp"
#include "src/gadgets/randomness_plan.hpp"
#include "src/lint/linter.hpp"
#include "src/netlist/ir.hpp"
#include "src/netlist/slice.hpp"
#include "src/verif/exact.hpp"

namespace sca {
namespace {

using gadgets::RandomnessPlan;
using lint::LintFinding;
using lint::LintOptions;
using lint::LintReport;
using lint::LintRule;
using netlist::Netlist;

// The 20 Sbox instance scopes and the state/key byte each one reads: the
// SubBytes instance sb<b> consumes state register byte b (ShiftRows comes
// *after* SubBytes), the key-schedule instance ks<i> consumes key register
// byte RotWord[i].
std::map<std::string, std::string> instance_to_state_byte() {
  std::map<std::string, std::string> m;
  for (int b = 0; b < 16; ++b)
    m["aes.sb" + std::to_string(b)] = "aes.st" + std::to_string(b);
  constexpr int kRotWord[4] = {13, 14, 15, 12};
  for (int i = 0; i < 4; ++i)
    m["aes.ks" + std::to_string(i)] = "aes.k" + std::to_string(kRotWord[i]);
  return m;
}

// Instance scope of a probe name "aes.sb12.kron.G7.x" -> "aes.sb12".
std::string instance_of(const std::string& probe_name) {
  const auto pos = probe_name.find(".kron.");
  return pos == std::string::npos ? std::string() : probe_name.substr(0, pos);
}

Netlist build_aes(const RandomnessPlan& plan) {
  Netlist nl;
  gadgets::MaskedAesOptions options;
  options.kron_plan = plan;
  gadgets::build_masked_aes128(nl, options);
  return nl;
}

LintOptions whole_design_options() {
  LintOptions options;
  options.model = lint::LintModel::kGlitch;
  options.feedback = lint::FeedbackMode::kSlice;
  // The lint lattice models *uniform* fresh randomness; the B2M multiplier
  // masks of the full core are non-zero-constrained, so the sound scope of
  // a whole-design verdict is the Kronecker subtrees, where every fresh bit
  // is uniform. This restriction is exactly the paper's target: Eq. (6)
  // vs Eq. (9) live inside the Kronecker delta.
  options.scope_contains = ".kron.";
  return options;
}

TEST(LintAes, Eq6FlagsFreshReuseInsideEveryInstanceG7WithCertificates) {
  const Netlist nl = build_aes(RandomnessPlan::kron1_demeyer_eq6());
  LintOptions options = whole_design_options();
  options.certify = true;
  const LintReport report = lint::run_lint(nl, options);

  // The feedback design was sliced, not rejected: all 512 state/key share
  // registers plus the 8 controller registers (phase, round, ran) were cut.
  EXPECT_TRUE(report.sliced);
  EXPECT_EQ(report.cut_registers, 520u);
  ASSERT_FALSE(report.clean());

  const std::map<std::string, std::string> expected_byte =
      instance_to_state_byte();
  std::set<std::string> flagged_instances;
  for (const LintFinding& f : report.findings) {
    // Golden shape: every finding is the paper's R1 fresh reuse at G7.
    EXPECT_EQ(f.rule, LintRule::kR1FreshReuse) << f.message;
    EXPECT_NE(f.probe_name.find(".kron.G7"), std::string::npos) << f.message;
    EXPECT_FALSE(f.shared_fresh.empty()) << f.message;

    const std::string instance = instance_of(f.probe_name);
    ASSERT_TRUE(expected_byte.contains(instance)) << f.probe_name;
    flagged_instances.insert(instance);

    // Per-instance attribution: the completed sharing must be the state or
    // key register byte this instance reads, carried across the register
    // cut by the label transfer ("aes.st3.b1@t-5" style).
    const std::string want = expected_byte.at(instance) + ".b";
    bool attributed = false;
    for (const std::string& c : f.completed)
      attributed |= c.compare(0, want.size(), want) == 0;
    EXPECT_TRUE(attributed)
        << f.message << " — expected a completed sharing of " << want << "*";
  }
  // All 20 instances (16 SubBytes + 4 key schedule) are flagged.
  EXPECT_EQ(flagged_instances.size(), expected_byte.size()) << [&] {
    std::string missing;
    for (const auto& [instance, byte] : expected_byte)
      if (!flagged_instances.contains(instance)) missing += instance + " ";
    return "missing: " + missing;
  }();

  // Every finding carries a *validated* counterexample certificate: replay
  // the witness through the exact engine on the same slice and check the
  // two secret values really induce different observation distributions.
  netlist::Slice slice = netlist::extract_slice(nl);
  verif::ExactOptions exact_options;
  exact_options.held_inputs = slice.held_inputs;
  for (const LintFinding& f : report.findings) {
    ASSERT_TRUE(f.certificate.has_value()) << f.message;
    const lint::LintCertificate& cert = *f.certificate;
    ASSERT_TRUE(cert.available)
        << f.message << " — " << cert.unavailable_reason;
    EXPECT_GT(cert.tv_distance, 0.0);
    EXPECT_GT(cert.count_a, cert.count_b);
    EXPECT_NE(cert.secret_a, cert.secret_b);
    EXPECT_FALSE(cert.secret_bits.empty());
    EXPECT_FALSE(cert.assignment.empty());

    const auto distributions =
        verif::exact_probe_distribution(slice.nl, f.probe, exact_options);
    const auto& dist_a = distributions.at(cert.secret_a);
    const auto& dist_b = distributions.at(cert.secret_b);
    EXPECT_NE(dist_a, dist_b) << f.message;
    const auto it_a = dist_a.find(cert.observation);
    ASSERT_NE(it_a, dist_a.end()) << f.message;
    EXPECT_EQ(it_a->second, cert.count_a);
    const auto it_b = dist_b.find(cert.observation);
    EXPECT_EQ(it_b == dist_b.end() ? 0u : it_b->second, cert.count_b);
  }

  // Certificate serialization: the JSON report inlines the witness.
  const std::string json = eval::to_json(report);
  EXPECT_NE(json.find("\"sliced\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cut_registers\":520"), std::string::npos);
  EXPECT_NE(json.find("\"certificate\":{\"available\":true"),
            std::string::npos);
  EXPECT_NE(json.find("\"assignment\":{"), std::string::npos);
}

TEST(LintAes, Eq9LintsGlitchCleanAcrossAllTwentyInstances) {
  const Netlist nl = build_aes(RandomnessPlan::kron1_proposed_eq9());
  const LintReport report = lint::run_lint(nl, whole_design_options());
  EXPECT_TRUE(report.sliced);
  EXPECT_EQ(report.cut_registers, 520u);
  EXPECT_GT(report.probes_checked, 0u);
  EXPECT_TRUE(report.clean()) << to_string(report);
  // Clean probes never get a certificate — there is nothing to certify.
  for (const LintFinding& f : report.findings)
    EXPECT_FALSE(f.certificate.has_value());
}

}  // namespace
}  // namespace sca
