// Wide bit-parallel words for the simulation and accumulation kernels.
//
// SimdWord<kLimbs> packs kLimbs 64-bit lane words into one value (64, 256 or
// 512 simulation lanes) and supports exactly the operations a bit-parallel
// netlist kernel needs: bitwise logic, load/store, broadcast, and per-limb
// access. On GCC/Clang it is backed by vector extensions, which lower to the
// widest instruction set the build targets (SSE2 pairs, AVX2, or AVX-512)
// and stay correct on any of them; defining SCA_NO_VECTOR_EXT selects a
// portable scalar-array fallback with identical semantics.
//
// Lane numbering follows the simulator convention: lane L lives in bit
// (L % 64) of limb (L / 64).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/common/check.hpp"

#if defined(__GNUC__) && !defined(SCA_NO_VECTOR_EXT)
#define SCA_SIMD_VECTOR_EXT 1
#endif

namespace sca::common {

template <unsigned kLimbs>
struct SimdWord {
  static_assert(kLimbs >= 1 && (kLimbs & (kLimbs - 1)) == 0,
                "SimdWord: limb count must be a power of two");
  static constexpr unsigned kLanes = 64 * kLimbs;

#if SCA_SIMD_VECTOR_EXT
  typedef std::uint64_t Vec __attribute__((vector_size(kLimbs * 8)));
  Vec v;
#else
  std::uint64_t v[kLimbs];
#endif

  /// Reads kLimbs words from `p` (no alignment requirement).
  static SimdWord load(const std::uint64_t* p) {
    SimdWord w;
    std::memcpy(&w.v, p, sizeof(w.v));
    return w;
  }

  /// Writes kLimbs words to `p` (no alignment requirement).
  void store(std::uint64_t* p) const { std::memcpy(p, &v, sizeof(v)); }

  /// All limbs set to `x`.
  static SimdWord broadcast(std::uint64_t x) {
    SimdWord w;
    for (unsigned i = 0; i < kLimbs; ++i) w.set_limb(i, x);
    return w;
  }

  static SimdWord zero() { return broadcast(0); }
  static SimdWord ones() { return broadcast(~std::uint64_t{0}); }

  // Per-limb access goes through memcpy (GCC types a one-limb vector as a
  // plain scalar, so subscripting is not portable across limb counts); the
  // compiler lowers these to direct extracts/inserts.
  std::uint64_t limb(unsigned i) const {
    std::uint64_t x;
    std::memcpy(&x, reinterpret_cast<const char*>(&v) + i * 8u, 8);
    return x;
  }
  void set_limb(unsigned i, std::uint64_t x) {
    std::memcpy(reinterpret_cast<char*>(&v) + i * 8u, &x, 8);
  }

  /// True if any bit in any limb is set.
  bool any() const {
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < kLimbs; ++i) acc |= limb(i);
    return acc != 0;
  }

  /// Set bits across limbs [0, active) — the chunk-tail-aware popcount the
  /// accumulation paths use (inactive limbs carry don't-care values).
  unsigned popcount(unsigned active) const {
    unsigned n = 0;
    for (unsigned i = 0; i < active; ++i)
      n += static_cast<unsigned>(__builtin_popcountll(limb(i)));
    return n;
  }

  /// Full-width popcount: the fixed trip count lets the compiler unroll
  /// and, where the ISA has vector popcounts, vectorize it — prefer this
  /// in hot loops whenever the word has no inactive tail.
  unsigned popcount() const {
    unsigned n = 0;
    for (unsigned i = 0; i < kLimbs; ++i)
      n += static_cast<unsigned>(__builtin_popcountll(limb(i)));
    return n;
  }

  friend SimdWord operator&(SimdWord a, SimdWord b) {
#if SCA_SIMD_VECTOR_EXT
    a.v = a.v & b.v;
#else
    for (unsigned i = 0; i < kLimbs; ++i) a.v[i] = a.v[i] & b.v[i];
#endif
    return a;
  }
  friend SimdWord operator|(SimdWord a, SimdWord b) {
#if SCA_SIMD_VECTOR_EXT
    a.v = a.v | b.v;
#else
    for (unsigned i = 0; i < kLimbs; ++i) a.v[i] = a.v[i] | b.v[i];
#endif
    return a;
  }
  friend SimdWord operator^(SimdWord a, SimdWord b) {
#if SCA_SIMD_VECTOR_EXT
    a.v = a.v ^ b.v;
#else
    for (unsigned i = 0; i < kLimbs; ++i) a.v[i] = a.v[i] ^ b.v[i];
#endif
    return a;
  }
  friend SimdWord operator~(SimdWord a) {
#if SCA_SIMD_VECTOR_EXT
    a.v = ~a.v;
#else
    for (unsigned i = 0; i < kLimbs; ++i) a.v[i] = ~a.v[i];
#endif
    return a;
  }
  SimdWord& operator&=(SimdWord b) { return *this = *this & b; }
  SimdWord& operator|=(SimdWord b) { return *this = *this | b; }
  SimdWord& operator^=(SimdWord b) { return *this = *this ^ b; }
};

/// Lane widths the kernels are instantiated for (limbs 1, 4, 8).
inline bool valid_lane_width(unsigned lanes) {
  return lanes == 64 || lanes == 256 || lanes == 512;
}

/// Widest lane count worth running on this machine: 512 when the CPU has
/// AVX-512F, else 256 (on AVX2 that is one op per word; on bare SSE2 the
/// compiler pairs the halves, which still beats 64-bit words on memory
/// traffic). Non-x86 hosts default to 256 via the compiler's native vectors.
inline unsigned native_lane_width() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return 512;
#endif
  return 256;
}

/// Lane-width resolution, mirroring resolve_threads: an explicit request
/// wins, else the SCA_LANES environment variable, else the native width.
/// Accepts 64, 256, or 512.
inline unsigned resolve_lanes(unsigned requested) {
  unsigned lanes = requested;
  if (lanes == 0) {
    if (const char* env = std::getenv("SCA_LANES")) {
      const unsigned long v = std::strtoul(env, nullptr, 10);
      if (v > 0) lanes = static_cast<unsigned>(v);
    }
  }
  if (lanes == 0) lanes = native_lane_width();
  require(valid_lane_width(lanes), "resolve_lanes: lane width must be 64, 256, or 512");
  return lanes;
}

}  // namespace sca::common
