// Work-sharing primitives for the parallel evaluation engine.
//
// Every parallel loop in the evaluator goes through parallel_for: workers
// pull indices from a shared atomic counter, so load imbalance (probe sets
// of very different table sizes, candidate plans of very different cost)
// self-schedules. Crucially, *what* is computed per index never depends on
// which worker runs it — determinism across thread counts is the callers'
// contract, and they keep it by deriving any per-index randomness from the
// index itself and by reducing results in index order.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace sca::common {

/// Resolves a thread-count request: `requested` > 0 wins, else the
/// SCA_THREADS environment variable, else std::thread::hardware_concurrency
/// (never 0).
inline unsigned resolve_threads(unsigned requested = 0) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SCA_THREADS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// parallel_for with per-worker state: each worker constructs its own state
/// once via make() and then runs fn(state, i) for the indices it claims.
/// Used where the per-index work needs an expensive scratch structure (a
/// campaign worker's private Simulator) that must not be shared between
/// threads but is wasteful to rebuild per index.
///
/// Indices are claimed from a shared atomic counter; the calling thread is
/// one of the workers. Exceptions thrown by make() or fn() are captured and
/// the first one (in completion order) is rethrown on the calling thread
/// after all workers have joined. `threads` == 0 resolves via
/// resolve_threads(); n == 0 is a no-op; surplus workers beyond n are not
/// spawned. Determinism is preserved as long as fn's output depends only on
/// the index, never on the state's history.
/// The full form also takes finalize(state), run once per worker after it
/// has drained the index space (and skipped when any worker failed — the
/// exception wins). This is the hook for reductions that are commutative
/// and so need no per-index ordering: a worker accumulates privately across
/// all the indices it claimed and folds into the shared result exactly once.
template <typename MakeState, typename Fn, typename Finalize>
void parallel_for_stateful(std::size_t n, unsigned threads, MakeState&& make,
                           Fn&& fn, Finalize&& finalize) {
  if (n == 0) return;
  threads = resolve_threads(threads);
  if (static_cast<std::size_t>(threads) > n)
    threads = static_cast<unsigned>(n);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  auto fail = [&](std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!error) error = std::move(e);
    failed.store(true, std::memory_order_release);
  };

  auto worker = [&] {
    try {
      auto state = make();
      while (true) {
        if (failed.load(std::memory_order_acquire)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(state, i);
      }
      finalize(state);
    } catch (...) {
      fail(std::current_exception());
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
    worker();
    for (auto& th : pool) th.join();
  }
  if (error) std::rethrow_exception(error);
}

template <typename MakeState, typename Fn>
void parallel_for_stateful(std::size_t n, unsigned threads, MakeState&& make,
                           Fn&& fn) {
  parallel_for_stateful(n, threads, std::forward<MakeState>(make),
                        std::forward<Fn>(fn), [](auto&) {});
}

/// Runs fn(i) for every i in [0, n), distributing indices over up to
/// `threads` workers. See parallel_for_stateful for scheduling, exception,
/// and determinism semantics.
template <typename Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  struct NoState {};
  parallel_for_stateful(
      n, threads, [] { return NoState{}; },
      [&fn](NoState&, std::size_t i) { fn(i); });
}

/// Derives the seed of an independent, reproducible RNG stream for work
/// chunk `chunk` of a campaign seeded with `seed`. Pure function of its
/// arguments, so chunk c draws the same masks no matter which worker (or
/// how many workers) executes it. SplitMix64-style finalizer over the
/// (seed, chunk) pair.
inline std::uint64_t chunk_seed(std::uint64_t seed, std::uint64_t chunk) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (chunk + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace sca::common
