// Little-endian binary stream I/O for campaign snapshots.
//
// The checkpoint/resume machinery serializes statistics accumulators into a
// versioned binary format; these helpers make that format explicit and
// platform-independent (fixed widths, fixed byte order, doubles bit-cast
// through uint64) and turn every short read into a thrown Error instead of
// silently propagating stream failbits. The FNV-1a accumulator doubles as
// the snapshot checksum and the campaign-options fingerprint.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "src/common/check.hpp"

namespace sca::common {

inline void write_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(b, 8);
}

inline std::uint64_t read_u64(std::istream& is) {
  char b[8];
  is.read(b, 8);
  require(is.gcount() == 8, "serialize: truncated stream (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  return v;
}

inline void write_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

inline std::uint8_t read_u8(std::istream& is) {
  const int c = is.get();
  require(c != std::char_traits<char>::eof(),
          "serialize: truncated stream (u8)");
  return static_cast<std::uint8_t>(c);
}

/// Doubles travel as their IEEE-754 bit pattern: deserialization is
/// bit-exact, which the resume-equals-uninterrupted contract requires for
/// the Welford moment state.
inline void write_f64(std::ostream& os, double v) {
  write_u64(os, std::bit_cast<std::uint64_t>(v));
}

inline double read_f64(std::istream& is) {
  return std::bit_cast<double>(read_u64(is));
}

/// Length-prefixed string. The read side caps the length so a corrupted
/// prefix cannot trigger a multi-gigabyte allocation.
inline void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& is,
                               std::size_t max_len = std::size_t{1} << 24) {
  const std::uint64_t len = read_u64(is);
  require(len <= max_len, "serialize: string length out of range");
  std::string s(static_cast<std::size_t>(len), '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  require(static_cast<std::uint64_t>(is.gcount()) == len,
          "serialize: truncated stream (string)");
  return s;
}

/// Streaming FNV-1a over 64-bit words — the snapshot payload checksum and
/// the campaign-options fingerprint. Not cryptographic; it guards against
/// corruption and honest mismatches, not adversaries.
class Fnv1a {
 public:
  Fnv1a& feed(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001b3ull;
    }
    return *this;
  }
  Fnv1a& feed(double v) { return feed(std::bit_cast<std::uint64_t>(v)); }
  Fnv1a& feed(const std::string& s) {
    feed(static_cast<std::uint64_t>(s.size()));
    for (char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ull;
    }
    return *this;
  }
  Fnv1a& feed_bytes(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<unsigned char>(data[i]);
      h_ *= 0x100000001b3ull;
    }
    return *this;
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

}  // namespace sca::common
