// Deterministic, fast pseudo-random number generation for simulation.
//
// The leakage evaluation campaigns draw billions of mask/share bits; the
// standard-library engines are both slower and awkward to seed reproducibly,
// so we ship xoshiro256** (public-domain algorithm by Blackman & Vigna) with
// SplitMix64 seeding. Every campaign takes an explicit seed so results are
// reproducible run-to-run.
#pragma once

#include <array>
#include <cstdint>

namespace sca::common {

/// xoshiro256** PRNG. Not cryptographically secure — this randomizes
/// *simulated* masks inside a statistical evaluation, it does not protect
/// real secrets.
class Xoshiro256 {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next 64 uniform random bits.
  std::uint64_t next();

  /// Uniform value in [0, bound). `bound` must be non-zero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform byte.
  std::uint8_t byte() { return static_cast<std::uint8_t>(next() & 0xFF); }

  /// Uniform non-zero byte (rejection sampling), e.g. masks from GF(256)*.
  std::uint8_t nonzero_byte();

  /// Single uniform bit as 0/1.
  std::uint64_t bit() { return next() >> 63; }

  /// Equivalent of "long jump": splits off an independent stream.
  Xoshiro256 split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// SplitMix64 step — used for seeding and stream splitting.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace sca::common
