// Deterministic, fast pseudo-random number generation for simulation.
//
// The leakage evaluation campaigns draw billions of mask/share bits; the
// standard-library engines are both slower and awkward to seed reproducibly,
// so we ship xoshiro256** (public-domain algorithm by Blackman & Vigna) with
// SplitMix64 seeding. Every campaign takes an explicit seed so results are
// reproducible run-to-run.
#pragma once

#include <array>
#include <cstdint>

namespace sca::common {

/// xoshiro256** PRNG. Not cryptographically secure — this randomizes
/// *simulated* masks inside a statistical evaluation, it does not protect
/// real secrets.
class Xoshiro256 {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next 64 uniform random bits.
  std::uint64_t next();

  /// Uniform value in [0, bound). `bound` must be non-zero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform byte.
  std::uint8_t byte() { return static_cast<std::uint8_t>(next() & 0xFF); }

  /// Uniform non-zero byte (rejection sampling), e.g. masks from GF(256)*.
  std::uint8_t nonzero_byte();

  /// Single uniform bit as 0/1.
  std::uint64_t bit() { return next() >> 63; }

  /// Equivalent of "long jump": splits off an independent stream.
  Xoshiro256 split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// SplitMix64 step — used for seeding and stream splitting.
std::uint64_t splitmix64(std::uint64_t& state);

/// SplitMix64's finalizer: a bijective avalanche mix on 64 bits. The
/// building block of the counter-mode generator below (SplitMix itself is
/// exactly this finalizer applied to a counter).
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Counter-mode bit-plane generator for the campaign hot loop.
///
/// Every 64-bit output is a pure function of (seed, cycle, slot, index):
/// no sequential state at all. That is the property the sharded campaign
/// engine builds on — any worker, chunk partition, checkpoint resume, or
/// SIMD lane width that evaluates the same logical simulation coordinates
/// draws the identical randomness, so statistics are bit-identical across
/// all of them by construction rather than by stream-replay discipline.
///
/// Addressing convention used by the campaign: `cycle` encodes the absolute
/// simulation cycle ((run * 2 + group) * cycles_per_group + cycle_in_group),
/// `slot` numbers the fresh-randomness consumers of one cycle (secret bytes,
/// share masks, plain random inputs, nonzero buses), and `index` walks the
/// words a slot draws (bit planes 0..7, then 8 more per rejection round).
///
/// Construction: a chain of SplitMix64 finalizers over the address words,
/// with golden-ratio spacing — the same statistical pedigree as SplitMix64
/// itself (a Weyl counter pushed through mix64).
class CounterPrg {
 public:
  /// A per-(cycle, slot) stream handle: draw words from it by index.
  using Stream = std::uint64_t;

  static constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

  explicit CounterPrg(std::uint64_t seed) : key_(mix64(seed + kGolden)) {}

  /// The stream of fresh-randomness slot `slot` at simulation cycle
  /// `cycle` — two mixes, hoistable out of the per-word loop.
  Stream stream(std::uint64_t cycle, std::uint32_t slot) const {
    return mix64(mix64(key_ ^ cycle) + slot * kGolden);
  }

  /// Word `index` of a stream — one mix per word.
  static std::uint64_t word_at(Stream s, std::uint32_t index) {
    return mix64(s + (static_cast<std::uint64_t>(index) + 1) * kGolden);
  }

  /// Uniform 64 bits at counter coordinates (cycle, slot, index).
  std::uint64_t word(std::uint64_t cycle, std::uint32_t slot,
                     std::uint32_t index) const {
    return word_at(stream(cycle, slot), index);
  }

 private:
  std::uint64_t key_;
};

}  // namespace sca::common
