// Error-handling helpers shared across the library.
//
// Library code throws sca::common::Error (derived from std::runtime_error)
// for contract violations that a caller can meaningfully react to, and uses
// SCA_ASSERT for internal invariants that indicate a bug in this library.
#pragma once

#include <stdexcept>
#include <string>

namespace sca::common {

/// Exception type thrown by all modules of this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws sca::common::Error with the given message if `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

}  // namespace sca::common

// Internal invariant check: always on (the circuits are small; correctness
// of a leakage evaluator matters more than the last few percent of speed).
#define SCA_ASSERT(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::sca::common::Error(std::string("internal invariant failed: ") + \
                                 (msg) + " [" #cond "]");                   \
    }                                                                       \
  } while (0)
