// A compact dynamically-sized bitset with the set operations needed by the
// combinational-cone analysis (union, subset test, iteration over set bits).
//
// std::vector<bool> lacks word-level access and std::bitset is fixed-size;
// the probing engine unions thousands of source sets, so word-parallel
// operations matter.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/bitops.hpp"
#include "src/common/check.hpp"

namespace sca::common {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_(ceil_div(size, 64), 0) {}

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    SCA_ASSERT(i < size_, "DynamicBitset::test out of range");
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i) {
    SCA_ASSERT(i < size_, "DynamicBitset::set out of range");
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }

  void reset(std::size_t i) {
    SCA_ASSERT(i < size_, "DynamicBitset::reset out of range");
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(popcount64(w));
    return n;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  bool none() const { return !any(); }

  /// In-place union. Both operands must have the same size.
  DynamicBitset& operator|=(const DynamicBitset& other) {
    SCA_ASSERT(size_ == other.size_, "DynamicBitset size mismatch in |=");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// In-place intersection.
  DynamicBitset& operator&=(const DynamicBitset& other) {
    SCA_ASSERT(size_ == other.size_, "DynamicBitset size mismatch in &=");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// In-place symmetric difference (GF(2) sum of the indicator vectors).
  DynamicBitset& operator^=(const DynamicBitset& other) {
    SCA_ASSERT(size_ == other.size_, "DynamicBitset size mismatch in ^=");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
    return *this;
  }

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }

  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// True if every set bit of *this is also set in `other`.
  bool is_subset_of(const DynamicBitset& other) const {
    SCA_ASSERT(size_ == other.size_, "DynamicBitset size mismatch in subset");
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~other.words_[i]) return false;
    return true;
  }

  bool intersects(const DynamicBitset& other) const {
    SCA_ASSERT(size_ == other.size_, "DynamicBitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> set_bits() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        out.push_back(wi * 64 + ctz64(w));
        w &= w - 1;
      }
    }
    return out;
  }

  /// FNV-style hash over the words, usable as an unordered_map key helper.
  std::size_t hash() const {
    std::size_t h = 0xcbf29ce484222325ull ^ size_;
    for (auto w : words_) {
      h ^= static_cast<std::size_t>(w);
      h *= 0x100000001b3ull;
    }
    return h;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct DynamicBitsetHash {
  std::size_t operator()(const DynamicBitset& b) const { return b.hash(); }
};

}  // namespace sca::common
