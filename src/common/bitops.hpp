// Small bit-manipulation helpers used by the field arithmetic, the netlist
// simulator and the statistical evaluation engine, plus the bit-sliced
// primitives behind the campaign's statistics hot path: a Hacker's-Delight
// 64x64 bit-matrix transpose (64 exact observation keys per call) and a
// carry-save vertical counter (per-lane Hamming weights of k words in O(k)
// word operations).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "src/common/check.hpp"
#include "src/common/simd.hpp"

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace sca::common {

/// Number of set bits in `v`.
inline int popcount64(std::uint64_t v) { return std::popcount(v); }

/// XOR-parity (0 or 1) of all bits of `v`.
inline std::uint64_t parity64(std::uint64_t v) {
  return static_cast<std::uint64_t>(std::popcount(v) & 1);
}

/// Extracts bit `i` of `v` as 0/1.
inline std::uint64_t bit(std::uint64_t v, unsigned i) { return (v >> i) & 1u; }

/// Sets bit `i` of `v` to `b` (b must be 0 or 1).
inline std::uint64_t with_bit(std::uint64_t v, unsigned i, std::uint64_t b) {
  return (v & ~(std::uint64_t{1} << i)) | (b << i);
}

/// Broadcasts a single bit (0/1) to a full 64-bit lane mask (0 or ~0).
inline std::uint64_t broadcast_bit(std::uint64_t b) {
  return std::uint64_t{0} - (b & 1u);
}

/// Index of the least significant set bit; undefined for v == 0.
inline unsigned ctz64(std::uint64_t v) {
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Ceiling division for unsigned types.
inline std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Parallel bit extract: gathers the bits of `v` selected by `mask` into
/// the low bits of the result, preserving their order (BMI2 pext, with a
/// portable loop fallback). The order-preserving contract is what lets the
/// accumulation planner express "this probe set's key inside its host's
/// key" and "these transposed block bits of a packed key" as a single mask.
inline std::uint64_t extract_bits64(std::uint64_t v, std::uint64_t mask) {
#if defined(__BMI2__)
  return _pext_u64(v, mask);
#else
  std::uint64_t out = 0;
  unsigned bit = 0;
  for (std::uint64_t m = mask; m != 0; m &= m - 1)
    out |= ((v >> ctz64(m)) & 1u) << bit++;
  return out;
#endif
}

/// Carry-save adder: one full-adder layer over three 64-lane words. After
/// the call, per lane, a + b + c == 2 * high + low (bitwise sum and carry).
inline void csa(std::uint64_t& high, std::uint64_t& low, std::uint64_t a,
                std::uint64_t b, std::uint64_t c) {
  const std::uint64_t u = a ^ b;
  high = (a & b) | (u & c);
  low = u ^ c;
}

/// The same full-adder layer over W-lane SIMD words: one vector op per
/// logic step, so the vertical counters below cost the identical op count
/// per *word* at 4-8x the lanes.
template <unsigned kLimbs>
inline void csa(SimdWord<kLimbs>& high, SimdWord<kLimbs>& low,
                SimdWord<kLimbs> a, SimdWord<kLimbs> b, SimdWord<kLimbs> c) {
  const SimdWord<kLimbs> u = a ^ b;
  high = (a & b) | (u & c);
  low = u ^ c;
}

/// In-place transpose of a 64x64 bit matrix (Hacker's Delight 7-3,
/// recursive block swap): afterwards bit c of m[r] is the former bit r of
/// m[c]. Self-inverse. This turns k gathered observation words (row d = the
/// 64-lane value of observation bit d) into 64 per-lane exact keys (row L =
/// lane L's observation tuple) in ~6*64 word operations — no per-bit
/// shifting.
inline void transpose64(std::uint64_t m[64]) {
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      // LSB-first columns (bit i = column i), so the off-diagonal blocks to
      // swap sit in the HIGH half of m[k] and the LOW half of m[k + j] —
      // the mirror image of the textbook MSB-first formulation.
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

/// Transpose of an 8x8 bit matrix packed row-major into one word (row r =
/// byte r, i.e. bits [8r, 8r+8)): afterwards bit c of row r is the former
/// bit r of row c.
inline std::uint64_t transpose8x8(std::uint64_t x) {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x ^= t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x ^= t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x ^= t ^ (t << 28);
  return x;
}

/// Spreads 64 per-lane byte values into 8 bit-plane words: bit L of
/// planes[b] is bit b of bytes[L]. This is the byte->lane-word layout
/// change the simulator's share inputs need, done as eight 8x8 block
/// transposes instead of 8x64 single-bit inserts.
inline void bytes_to_bit_planes(const std::uint8_t bytes[64],
                                std::uint64_t planes[8]) {
  for (unsigned b = 0; b < 8; ++b) planes[b] = 0;
  for (unsigned blk = 0; blk < 8; ++blk) {
    std::uint64_t x = 0;
    for (unsigned l = 0; l < 8; ++l)
      x |= static_cast<std::uint64_t>(bytes[8 * blk + l]) << (8 * l);
    const std::uint64_t y = transpose8x8(x);
    for (unsigned b = 0; b < 8; ++b)
      planes[b] |= ((y >> (8 * b)) & 0xFFu) << (8 * blk);
  }
}

/// Bit-sliced vertical counter: 64 independent saturating-free counters,
/// one per lane, held column-wise (bit L of planes_[j] is bit j of lane L's
/// count). add(w) increments every lane whose bit is set in w with a
/// ripple-carry over the planes — amortized O(1) word operations per word
/// added — so the per-lane Hamming weight of k observation words costs O(k)
/// word operations total instead of 64*k scalar shifts. Capacity 2^16 - 1
/// per lane (16 planes), far beyond any probe-set observation width.
class VerticalCounter {
 public:
  static constexpr unsigned kPlanes = 16;

  /// Per-lane increment by the bits of `w`.
  void add(std::uint64_t w) {
    std::uint64_t carry = w;
    for (unsigned j = 0; carry != 0; ++j) {
      if (j == used_) {
        SCA_ASSERT(used_ < kPlanes, "VerticalCounter: lane count overflow");
        planes_[used_++] = carry;  // counter grows a plane; no overflow yet
        return;
      }
      const std::uint64_t t = planes_[j] & carry;
      planes_[j] ^= carry;
      carry = t;
    }
  }

  /// Count of lane L (sum of the added words' bits L).
  unsigned lane_count(unsigned lane) const {
    unsigned v = 0;
    for (unsigned j = 0; j < used_; ++j)
      v |= static_cast<unsigned>((planes_[j] >> lane) & 1u) << j;
    return v;
  }

  /// Extracts all 64 per-lane counts at once.
  void lane_counts(std::uint16_t out[64]) const {
    for (unsigned lane = 0; lane < 64; ++lane) {
      unsigned v = 0;
      for (unsigned j = 0; j < used_; ++j)
        v |= static_cast<unsigned>((planes_[j] >> lane) & 1u) << j;
      out[lane] = static_cast<std::uint16_t>(v);
    }
  }

  /// Resets every lane to zero (O(planes in use)).
  void clear() {
    for (unsigned j = 0; j < used_; ++j) planes_[j] = 0;
    used_ = 0;
  }

  /// Number of planes currently in use (== bit width of the largest count).
  unsigned planes_in_use() const { return used_; }

 private:
  std::array<std::uint64_t, kPlanes> planes_{};
  unsigned used_ = 0;
};

/// W-lane generalization of VerticalCounter: W = 64 * kLimbs independent
/// per-lane counters held column-wise in SIMD bit planes. Same ripple-carry
/// add (amortized O(1) vector ops per word) over 4-8x the lanes; extraction
/// goes one 64-lane limb at a time so chunk tails (inactive high limbs) can
/// be skipped.
template <unsigned kLimbs>
class WideVerticalCounter {
 public:
  using Word = SimdWord<kLimbs>;
  static constexpr unsigned kPlanes = 16;

  /// Per-lane increment by the bits of `w`.
  void add(Word w) {
    Word carry = w;
    for (unsigned j = 0; carry.any(); ++j) {
      if (j == used_) {
        SCA_ASSERT(used_ < kPlanes, "WideVerticalCounter: lane count overflow");
        planes_[used_++] = carry;
        return;
      }
      const Word t = planes_[j] & carry;
      planes_[j] = planes_[j] ^ carry;
      carry = t;
    }
  }

  /// Extracts the 64 per-lane counts of limb `limb` (lanes [64*limb,
  /// 64*limb + 64)).
  void lane_counts(unsigned limb, std::uint16_t out[64]) const {
    for (unsigned lane = 0; lane < 64; ++lane) {
      unsigned v = 0;
      for (unsigned j = 0; j < used_; ++j)
        v |= static_cast<unsigned>((planes_[j].limb(limb) >> lane) & 1u) << j;
      out[lane] = static_cast<std::uint16_t>(v);
    }
  }

  /// Sum of all lane counts across limbs [0, active) — one popcount per
  /// plane in use instead of per-lane extraction.
  std::uint64_t total(unsigned active = kLimbs) const {
    std::uint64_t sum = 0;
    for (unsigned j = 0; j < used_; ++j)
      sum += static_cast<std::uint64_t>(planes_[j].popcount(active)) << j;
    return sum;
  }

  /// Resets every lane to zero (O(planes in use)).
  void clear() {
    for (unsigned j = 0; j < used_; ++j) planes_[j] = Word::zero();
    used_ = 0;
  }

  unsigned planes_in_use() const { return used_; }

  /// Bit-plane j of the per-lane counts (j < planes_in_use()): lane L's
  /// count has bit j set iff plane j has lane L set. Conjunction-expanding
  /// the planes histograms the counts without per-lane extraction.
  const Word& plane(unsigned j) const { return planes_[j]; }

 private:
  std::array<Word, kPlanes> planes_{};
  unsigned used_ = 0;
};

/// One 64-lane block of a W x 64 bit-matrix transpose. The input is `nrows`
/// rows (nrows <= 64) of kLimbs-limb SIMD lane words — row r holds
/// observation bit r of W lanes — laid out as rows[r * stride + limb].
/// The output is the transposed 64x64 block for lanes [64*limb, 64*limb+64):
/// out[L] is the nrows-bit key of lane 64*limb + L (bit r = row r's bit).
/// Rows past nrows zero-pad, exactly like the 64x64 core used alone.
inline void transpose_wx64_block(const std::uint64_t* rows, std::size_t nrows,
                                 std::size_t stride, unsigned limb,
                                 std::uint64_t out[64]) {
  SCA_ASSERT(nrows <= 64, "transpose_wx64_block: at most 64 rows");
  for (std::size_t r = 0; r < nrows; ++r) out[r] = rows[r * stride + limb];
  for (std::size_t r = nrows; r < 64; ++r) out[r] = 0;
  transpose64(out);
}

}  // namespace sca::common
