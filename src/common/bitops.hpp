// Small bit-manipulation helpers used by the field arithmetic, the netlist
// simulator and the statistical evaluation engine.
#pragma once

#include <bit>
#include <cstdint>

namespace sca::common {

/// Number of set bits in `v`.
inline int popcount64(std::uint64_t v) { return std::popcount(v); }

/// XOR-parity (0 or 1) of all bits of `v`.
inline std::uint64_t parity64(std::uint64_t v) {
  return static_cast<std::uint64_t>(std::popcount(v) & 1);
}

/// Extracts bit `i` of `v` as 0/1.
inline std::uint64_t bit(std::uint64_t v, unsigned i) { return (v >> i) & 1u; }

/// Sets bit `i` of `v` to `b` (b must be 0 or 1).
inline std::uint64_t with_bit(std::uint64_t v, unsigned i, std::uint64_t b) {
  return (v & ~(std::uint64_t{1} << i)) | (b << i);
}

/// Broadcasts a single bit (0/1) to a full 64-bit lane mask (0 or ~0).
inline std::uint64_t broadcast_bit(std::uint64_t b) {
  return std::uint64_t{0} - (b & 1u);
}

/// Index of the least significant set bit; undefined for v == 0.
inline unsigned ctz64(std::uint64_t v) {
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Ceiling division for unsigned types.
inline std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

}  // namespace sca::common
