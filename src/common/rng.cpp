#include "src/common/rng.hpp"

#include <bit>

#include "src/common/check.hpp"

namespace sca::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // An all-zero state would be a fixed point; SplitMix64 cannot produce four
  // zero outputs in a row, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  require(bound != 0, "Xoshiro256::below: bound must be non-zero");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

std::uint8_t Xoshiro256::nonzero_byte() {
  std::uint8_t b = byte();
  while (b == 0) b = byte();
  return b;
}

Xoshiro256 Xoshiro256::split() {
  // Derive a child seed from the parent stream; the parent advances, so
  // successive splits give distinct streams.
  return Xoshiro256(next() ^ 0xD2B74407B1CE6E93ull);
}

}  // namespace sca::common
