#include "src/core/accplan.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/common/check.hpp"

namespace sca::eval::accplan {

using common::require;

namespace {

// True iff `a` (ascending) is a subset of `b` (ascending). Strictness is
// guaranteed by the caller comparing sizes.
bool is_subset(const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
  std::size_t j = 0;
  for (std::size_t v : a) {
    while (j < b.size() && b[j] < v) ++j;
    if (j == b.size() || b[j] != v) return false;
    ++j;
  }
  return true;
}

// The bit positions of `sub`'s points inside `super`'s key (now half at the
// point's rank in `super`, prev half mirrored `super_points` higher under
// transitions). Requires sub ⊆ super.
std::uint64_t subset_key_mask(const std::vector<std::size_t>& sub,
                              const std::vector<std::size_t>& super,
                              bool transitions) {
  std::uint64_t mask = 0;
  std::size_t j = 0;
  for (std::size_t v : sub) {
    while (super[j] < v) ++j;
    mask |= std::uint64_t{1} << j;
    if (transitions) mask |= std::uint64_t{1} << (super.size() + j);
    ++j;
  }
  return mask;
}

}  // namespace

AccumulationPlan compile_accumulation_plan(const std::vector<PlanSetInput>& sets,
                                           const PlanOptions& options) {
  require(options.narrow_bits <= 8,
          "accplan: narrow_bits above the trie's combo-stack bound");
  AccumulationPlan plan;
  const std::size_t n = sets.size();
  plan.sets.resize(n);

  // Regime selection (hosting may re-label exact sets below).
  for (std::size_t i = 0; i < n; ++i) {
    require(sets[i].points != nullptr, "accplan: set without observed points");
    SetAccPlan& p = plan.sets[i];
    if (options.ttest)
      p.regime = AccRegime::kTtestHw;
    else if (sets[i].compacted)
      p.regime = AccRegime::kCompacted;
    else if (sets[i].observation_bits <= options.narrow_bits)
      p.regime = AccRegime::kNarrow;
    else
      p.regime = AccRegime::kPacked;
  }

  // Subset hosting: for every exact direct-table set, search for a
  // minimal-width strict superset among the other exact direct-table sets.
  // The inverted index lists, per observed point, the candidate sets
  // containing it in (width asc, id asc) order; scanning the probed set's
  // rarest point's list, the first strict superset found is automatically
  // the minimal-width host (every superset must contain that point). Host
  // chains (i hosted by j hosted by k) are sound because width strictly
  // increases along host links; finalize_order materializes wide-first.
  if (options.fuse && !options.ttest) {
    std::vector<std::uint32_t> exact;
    for (std::size_t i = 0; i < n; ++i)
      if (!sets[i].compacted && sets[i].direct_table)
        exact.push_back(static_cast<std::uint32_t>(i));
    std::stable_sort(exact.begin(), exact.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return sets[a].points->size() < sets[b].points->size();
                     });
    std::unordered_map<std::size_t, std::vector<std::uint32_t>> by_point;
    for (std::uint32_t id : exact)
      for (std::size_t pt : *sets[id].points) by_point[pt].push_back(id);
    for (std::uint32_t i : exact) {
      const std::vector<std::size_t>& pts = *sets[i].points;
      const std::vector<std::uint32_t>* rarest = nullptr;
      for (std::size_t pt : pts) {
        const auto& list = by_point.at(pt);
        if (!rarest || list.size() < rarest->size()) rarest = &list;
      }
      std::size_t scanned = 0;
      for (std::uint32_t j : *rarest) {
        if (sets[j].points->size() <= pts.size()) continue;
        if (++scanned > options.host_scan_cap) break;
        if (!is_subset(pts, *sets[j].points)) continue;
        SetAccPlan& p = plan.sets[i];
        p.regime = AccRegime::kHosted;
        p.host = j;
        p.host_mask =
            subset_key_mask(pts, *sets[j].points, options.transitions);
        break;
      }
    }
  }

  // Observation-matrix rows: the ascending union of the live sets' points.
  // Hosted points are always covered by their (transitively live) host, so
  // the union over live sets equals the union over all sets.
  std::vector<std::size_t> row_union;
  for (std::size_t i = 0; i < n; ++i) {
    if (plan.sets[i].regime == AccRegime::kHosted) continue;
    row_union.insert(row_union.end(), sets[i].points->begin(),
                     sets[i].points->end());
  }
  std::sort(row_union.begin(), row_union.end());
  row_union.erase(std::unique(row_union.begin(), row_union.end()),
                  row_union.end());
  plan.rows = std::move(row_union);
  std::unordered_map<std::size_t, std::uint32_t> row_of;
  row_of.reserve(plan.rows.size());
  for (std::size_t r = 0; r < plan.rows.size(); ++r)
    row_of[plan.rows[r]] = static_cast<std::uint32_t>(r);
  const std::uint32_t num_rows = static_cast<std::uint32_t>(plan.rows.size());

  std::vector<std::uint32_t> live;
  for (std::size_t i = 0; i < n; ++i) {
    SetAccPlan& p = plan.sets[i];
    if (p.regime == AccRegime::kHosted) {
      ++plan.hosted_sets;
      continue;
    }
    p.rows.reserve(sets[i].points->size());
    for (std::size_t pt : *sets[i].points) p.rows.push_back(row_of.at(pt));
    live.push_back(static_cast<std::uint32_t>(i));
  }
  plan.live_sets = live.size();

  // Shard partition: greedy balance on a per-sample op-count estimate,
  // heaviest sets first (stable — ties keep input order), each to the
  // lightest shard. Shard membership only partitions work; every merge is
  // per-set and chunk-ordered, so the shard count never affects statistics.
  const std::size_t num_shards = std::max<std::size_t>(
      1, std::min<std::size_t>(options.shards, std::max<std::size_t>(
                                                   live.size(), 1)));
  plan.shards.resize(num_shards);
  {
    auto cost = [&](std::uint32_t i) -> double {
      const std::size_t bits = sets[i].observation_bits;
      switch (plan.sets[i].regime) {
        case AccRegime::kNarrow:
          return static_cast<double>(std::size_t{1} << bits);
        case AccRegime::kPacked:
          return 64.0 + static_cast<double>(bits);
        case AccRegime::kCompacted:
          return 48.0;
        case AccRegime::kTtestHw:
          return 16.0 + static_cast<double>(bits);
        case AccRegime::kHosted:
          break;
      }
      return 0.0;
    };
    std::vector<std::uint32_t> order = live;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return cost(a) > cost(b);
                     });
    std::vector<double> load(num_shards, 0.0);
    for (std::uint32_t i : order) {
      std::size_t best = 0;
      for (std::size_t s = 1; s < num_shards; ++s)
        if (load[s] < load[best]) best = s;
      plan.sets[i].shard = static_cast<std::uint32_t>(best);
      load[best] += cost(i);
    }
  }

  // Per-shard straight-line programs.
  for (std::size_t s = 0; s < num_shards; ++s) {
    ShardProgram& prog = plan.shards[s];

    // Narrow sets: one shared trie over the expansion row sequences
    // (now rows ascending, then — under transitions — the same rows'
    // prev codes). Lexicographic order maximizes shared prefixes; the DFS
    // linearization emits an expand op only where a set's sequence leaves
    // the common prefix of its predecessor.
    std::vector<std::uint32_t> narrow;
    for (std::uint32_t i : live)
      if (plan.sets[i].regime == AccRegime::kNarrow &&
          plan.sets[i].shard == s)
        narrow.push_back(i);
    std::vector<std::vector<std::uint32_t>> seqs(narrow.size());
    for (std::size_t k = 0; k < narrow.size(); ++k) {
      const auto& rows = plan.sets[narrow[k]].rows;
      seqs[k] = rows;
      if (options.transitions)
        for (std::uint32_t r : rows) seqs[k].push_back(r + num_rows);
    }
    std::vector<std::size_t> seq_order(narrow.size());
    for (std::size_t k = 0; k < narrow.size(); ++k) seq_order[k] = k;
    std::sort(seq_order.begin(), seq_order.end(),
              [&](std::size_t a, std::size_t b) { return seqs[a] < seqs[b]; });
    std::vector<std::uint32_t> path;
    for (std::size_t k : seq_order) {
      const std::vector<std::uint32_t>& seq = seqs[k];
      std::size_t lcp = 0;
      while (lcp < path.size() && lcp < seq.size() && path[lcp] == seq[lcp])
        ++lcp;
      path.resize(lcp);
      while (path.size() < seq.size()) {
        const std::uint8_t depth = static_cast<std::uint8_t>(path.size());
        prog.trie.push_back({seq[path.size()], depth, false});
        plan.trie_expand_ops += std::size_t{1} << depth;
        path.push_back(seq[path.size()]);
      }
      prog.trie.push_back(
          {narrow[k], static_cast<std::uint8_t>(seq.size()), true});
      plan.trie_expand_ops_unshared += (std::size_t{1} << seq.size()) - 1;
    }

    // Packed sets: the sorted union of their expansion codes, cut into
    // consecutive <= 64-row transpose blocks. A set's key-bit sequence
    // (now rows ascending, prev codes after) is itself ascending in code
    // space, so grouping it by block yields one in-order pext gather per
    // touched block.
    std::vector<std::uint32_t> packed_codes;
    for (std::uint32_t i : live) {
      const SetAccPlan& p = plan.sets[i];
      if (p.regime != AccRegime::kPacked || p.shard != s) continue;
      prog.packed.push_back(i);
      packed_codes.insert(packed_codes.end(), p.rows.begin(), p.rows.end());
      if (options.transitions)
        for (std::uint32_t r : p.rows) packed_codes.push_back(r + num_rows);
    }
    std::sort(packed_codes.begin(), packed_codes.end());
    packed_codes.erase(
        std::unique(packed_codes.begin(), packed_codes.end()),
        packed_codes.end());
    std::unordered_map<std::uint32_t, std::pair<std::uint32_t, std::uint8_t>>
        code_slot;  // code -> (block, bit position in block)
    for (std::size_t c = 0; c < packed_codes.size(); c += 64) {
      const std::size_t end = std::min(packed_codes.size(), c + 64);
      prog.blocks.emplace_back(packed_codes.begin() + c,
                               packed_codes.begin() + end);
      for (std::size_t k = c; k < end; ++k)
        code_slot[packed_codes[k]] = {
            static_cast<std::uint32_t>(prog.blocks.size() - 1),
            static_cast<std::uint8_t>(k - c)};
    }
    for (std::uint32_t i : prog.packed) {
      SetAccPlan& p = plan.sets[i];
      std::vector<std::uint32_t> key_codes = p.rows;
      if (options.transitions)
        for (std::uint32_t r : p.rows) key_codes.push_back(r + num_rows);
      std::uint8_t key_bit = 0;
      for (std::uint32_t code : key_codes) {
        const auto [block, pos] = code_slot.at(code);
        if (!p.gathers.empty() && p.gathers.back().block == block) {
          p.gathers.back().mask |= std::uint64_t{1} << pos;
        } else {
          p.gathers.push_back({block, std::uint64_t{1} << pos, key_bit});
        }
        ++key_bit;
      }
    }

    for (std::uint32_t i : live) {
      const SetAccPlan& p = plan.sets[i];
      if (p.shard != s) continue;
      if (p.regime == AccRegime::kCompacted) prog.compacted.push_back(i);
      if (p.regime == AccRegime::kTtestHw) prog.ttest.push_back(i);
    }
  }

  // Materialization order for hosted sets: widest first, so a hosted set
  // that itself hosts narrower sets (a chain) is materialized before its
  // dependents read it.
  for (std::size_t i = 0; i < n; ++i)
    if (plan.sets[i].regime == AccRegime::kHosted)
      plan.finalize_order.push_back(static_cast<std::uint32_t>(i));
  std::stable_sort(plan.finalize_order.begin(), plan.finalize_order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return sets[a].observation_bits >
                            sets[b].observation_bits;
                   });
  return plan;
}

}  // namespace sca::eval::accplan
