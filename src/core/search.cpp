#include "src/core/search.hpp"

#include <algorithm>
#include <limits>

#include "src/common/thread_pool.hpp"
#include "src/core/campaign.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/lint/linter.hpp"
#include "src/verif/exact.hpp"

namespace sca::eval {

using gadgets::RandomnessPlan;
using netlist::Netlist;

std::vector<const PlanEvaluation*> SearchResult::secure_plans() const {
  std::vector<const PlanEvaluation*> out;
  for (const auto& e : evaluations)
    if (e.secure) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const PlanEvaluation* a, const PlanEvaluation* b) {
              return a->plan.fresh_count() < b->plan.fresh_count();
            });
  return out;
}

std::size_t SearchResult::min_secure_fresh() const {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (const auto& e : evaluations)
    if (e.secure) best = std::min(best, e.plan.fresh_count());
  return best;
}

PlanEvaluation evaluate_kron1_plan(const RandomnessPlan& plan,
                                   const SearchOptions& options) {
  Netlist nl;
  const std::vector<gadgets::Bus> shares = {
      gadgets::make_input_bus(nl, 8, netlist::InputRole::kShare, "b0_", 0, 0),
      gadgets::make_input_bus(nl, 8, netlist::InputRole::kShare, "b1_", 0, 1)};
  gadgets::build_kronecker(nl, shares, plan);

  PlanEvaluation eval{plan, false, false, 0.0, "", false};
  if (options.lint_prefilter) {
    lint::LintOptions lint_options;
    lint_options.model = options.model == ProbeModel::kGlitchTransition
                             ? lint::LintModel::kGlitchTransition
                             : lint::LintModel::kGlitch;
    const lint::LintReport report = lint::run_lint(nl, lint_options);
    if (!report.clean()) {
      eval.lint_rejected = true;
      eval.worst_probe = report.findings.front().probe_name;
      return eval;
    }
  }
  if (options.model == ProbeModel::kGlitch && options.prefer_exact) {
    verif::ExactOptions exact_options;
    exact_options.threads = options.threads;
    const verif::ExactReport report =
        verif::verify_first_order_glitch(nl, exact_options);
    eval.exact = true;
    eval.secure = !report.any_leak && !report.any_skipped;
    for (const auto* leak : report.leaking()) {
      eval.severity = leak->max_tv_distance;
      eval.worst_probe = leak->name;
      break;
    }
    return eval;
  }

  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.order = 1;
  campaign.simulations = options.simulations;
  campaign.seed = options.seed;
  campaign.threshold = options.threshold;
  campaign.threads = options.threads;
  // The fixed value must be the zero-value corner: the Kronecker's entire
  // reason to exist, and where the paper's leaks show.
  campaign.fixed_values[0] = 0x00;
  const CampaignResult result = run_fixed_vs_random(nl, campaign);
  eval.secure = result.pass;
  eval.severity = result.max_minus_log10_p;
  if (!result.results.empty()) eval.worst_probe = result.results.front().name;
  return eval;
}

namespace {

// Evaluates every candidate in parallel, one worker per plan, each
// evaluation single-threaded (the pool is spent across candidates). Results
// land in candidate order, so the search outcome is identical for any
// thread count.
SearchResult evaluate_candidates(std::vector<RandomnessPlan> candidates,
                                 const SearchOptions& options) {
  SearchOptions per_plan = options;
  per_plan.threads = 1;
  SearchResult result;
  result.evaluations.reserve(candidates.size());
  for (const RandomnessPlan& plan : candidates)
    result.evaluations.push_back(
        PlanEvaluation{plan, false, false, 0.0, "", false});
  common::parallel_for(candidates.size(), options.threads, [&](std::size_t i) {
    result.evaluations[i] = evaluate_kron1_plan(candidates[i], per_plan);
  });
  for (const PlanEvaluation& e : result.evaluations)
    (e.lint_rejected ? result.lint_rejected : result.expensive_evaluations)++;
  return result;
}

}  // namespace

SearchResult search_r7_reuse(const SearchOptions& options) {
  std::vector<RandomnessPlan> candidates;
  // r7 fresh (the 7-bit baseline).
  candidates.push_back(RandomnessPlan::kron1_full_fresh());
  // r7 = r_i for i = 1..6.
  for (unsigned i = 1; i <= 6; ++i) {
    std::vector<gadgets::MaskSlotExpr> slots;
    for (unsigned k = 0; k < 6; ++k)
      slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << k, false});
    slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << (i - 1), false});
    candidates.emplace_back("kron1/search-r7-is-r" + std::to_string(i), 6,
                            std::move(slots));
  }
  return evaluate_candidates(std::move(candidates), options);
}

SearchResult search_all_partitions(const SearchOptions& options,
                                   std::size_t max_fresh) {
  // Restricted growth strings over 7 slots enumerate set partitions up to
  // renaming of fresh bits.
  std::vector<RandomnessPlan> candidates;
  std::vector<unsigned> assignment(7, 0);
  while (true) {
    const unsigned used =
        *std::max_element(assignment.begin(), assignment.end()) + 1;
    if (!max_fresh || used <= max_fresh) {
      std::vector<gadgets::MaskSlotExpr> slots;
      for (unsigned a : assignment)
        slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << a, false});
      std::string name = "kron1/partition-";
      for (unsigned a : assignment) name += static_cast<char>('0' + a);
      candidates.emplace_back(name, used, std::move(slots));
    }
    // Next restricted growth string.
    int i = 6;
    for (; i >= 1; --i) {
      const unsigned prefix_max =
          *std::max_element(assignment.begin(), assignment.begin() + i);
      if (assignment[i] <= prefix_max) {
        ++assignment[i];
        for (std::size_t j = i + 1; j < 7; ++j) assignment[j] = 0;
        break;
      }
    }
    if (i < 1) break;
  }
  return evaluate_candidates(std::move(candidates), options);
}

}  // namespace sca::eval
