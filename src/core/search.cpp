#include "src/core/search.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/common/check.hpp"
#include "src/common/serialize.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/campaign.hpp"
#include "src/gadgets/bus.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/lint/linter.hpp"
#include "src/verif/exact.hpp"

namespace sca::eval {

using gadgets::RandomnessPlan;
using netlist::Netlist;

std::vector<const PlanEvaluation*> SearchResult::secure_plans() const {
  std::vector<const PlanEvaluation*> out;
  for (const auto& e : evaluations)
    if (e.secure) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const PlanEvaluation* a, const PlanEvaluation* b) {
              return a->plan.fresh_count() < b->plan.fresh_count();
            });
  return out;
}

std::size_t SearchResult::min_secure_fresh() const {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (const auto& e : evaluations)
    if (e.secure) best = std::min(best, e.plan.fresh_count());
  return best;
}

PlanEvaluation evaluate_kron1_plan(const RandomnessPlan& plan,
                                   const SearchOptions& options) {
  Netlist nl;
  const std::vector<gadgets::Bus> shares = {
      gadgets::make_input_bus(nl, 8, netlist::InputRole::kShare, "b0_", 0, 0),
      gadgets::make_input_bus(nl, 8, netlist::InputRole::kShare, "b1_", 0, 1)};
  gadgets::build_kronecker(nl, shares, plan);

  PlanEvaluation eval{plan, false, false, 0.0, "", false};
  if (options.lint_prefilter) {
    lint::LintOptions lint_options;
    lint_options.model = options.model == ProbeModel::kGlitchTransition
                             ? lint::LintModel::kGlitchTransition
                             : lint::LintModel::kGlitch;
    const lint::LintReport report = lint::run_lint(nl, lint_options);
    if (!report.clean()) {
      eval.lint_rejected = true;
      eval.worst_probe = report.findings.front().probe_name;
      return eval;
    }
  }
  if (options.model == ProbeModel::kGlitch && options.prefer_exact) {
    verif::ExactOptions exact_options;
    exact_options.threads = options.threads;
    const verif::ExactReport report =
        verif::verify_first_order_glitch(nl, exact_options);
    eval.exact = true;
    eval.secure = !report.any_leak && !report.any_skipped;
    for (const auto* leak : report.leaking()) {
      eval.severity = leak->max_tv_distance;
      eval.worst_probe = leak->name;
      break;
    }
    return eval;
  }

  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.order = 1;
  campaign.simulations = options.simulations;
  campaign.seed = options.seed;
  campaign.threshold = options.threshold;
  campaign.threads = options.threads;
  // The fixed value must be the zero-value corner: the Kronecker's entire
  // reason to exist, and where the paper's leaks show.
  campaign.fixed_values[0] = 0x00;
  const CampaignResult result = run_fixed_vs_random(nl, campaign);
  eval.secure = result.pass;
  eval.severity = result.max_minus_log10_p;
  if (!result.results.empty()) eval.worst_probe = result.results.front().name;
  return eval;
}

namespace {

// Evaluates every candidate in parallel, one worker per plan, each
// evaluation single-threaded (the pool is spent across candidates). Results
// land in candidate order, so the search outcome is identical for any
// thread count.
SearchResult evaluate_candidates(std::vector<RandomnessPlan> candidates,
                                 const SearchOptions& options) {
  SearchOptions per_plan = options;
  per_plan.threads = 1;
  SearchResult result;
  result.evaluations.reserve(candidates.size());
  for (const RandomnessPlan& plan : candidates)
    result.evaluations.push_back(
        PlanEvaluation{plan, false, false, 0.0, "", false});
  common::parallel_for(candidates.size(), options.threads, [&](std::size_t i) {
    result.evaluations[i] = evaluate_kron1_plan(candidates[i], per_plan);
  });
  for (const PlanEvaluation& e : result.evaluations)
    (e.lint_rejected ? result.lint_rejected : result.expensive_evaluations)++;
  return result;
}

}  // namespace

SearchResult search_r7_reuse(const SearchOptions& options) {
  std::vector<RandomnessPlan> candidates;
  // r7 fresh (the 7-bit baseline).
  candidates.push_back(RandomnessPlan::kron1_full_fresh());
  // r7 = r_i for i = 1..6.
  for (unsigned i = 1; i <= 6; ++i) {
    std::vector<gadgets::MaskSlotExpr> slots;
    for (unsigned k = 0; k < 6; ++k)
      slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << k, false});
    slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << (i - 1), false});
    candidates.emplace_back("kron1/search-r7-is-r" + std::to_string(i), 6,
                            std::move(slots));
  }
  return evaluate_candidates(std::move(candidates), options);
}

SearchResult search_all_partitions(const SearchOptions& options,
                                   std::size_t max_fresh) {
  // Restricted growth strings over 7 slots enumerate set partitions up to
  // renaming of fresh bits.
  std::vector<RandomnessPlan> candidates;
  std::vector<unsigned> assignment(7, 0);
  while (true) {
    const unsigned used =
        *std::max_element(assignment.begin(), assignment.end()) + 1;
    if (!max_fresh || used <= max_fresh) {
      std::vector<gadgets::MaskSlotExpr> slots;
      for (unsigned a : assignment)
        slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << a, false});
      std::string name = "kron1/partition-";
      for (unsigned a : assignment) name += static_cast<char>('0' + a);
      candidates.emplace_back(name, used, std::move(slots));
    }
    // Next restricted growth string.
    int i = 6;
    for (; i >= 1; --i) {
      const unsigned prefix_max =
          *std::max_element(assignment.begin(), assignment.begin() + i);
      if (assignment[i] <= prefix_max) {
        ++assignment[i];
        for (std::size_t j = i + 1; j < 7; ++j) assignment[j] = 0;
        break;
      }
    }
    if (i < 1) break;
  }
  return evaluate_candidates(std::move(candidates), options);
}

// --- second-order 13-bit family search ------------------------------------

namespace {

constexpr unsigned kFamilyBits = 13;   // f0..f12 available to upper slots
constexpr std::uint64_t kTriples = 13ull * 12 * 11;  // ordered distinct

// Decodes a gate code in [0, 1716) into an ordered triple of distinct
// values over {0..12}, lexicographically.
std::array<unsigned, 3> decode_triple(std::uint64_t code) {
  const unsigned a = static_cast<unsigned>(code / (12 * 11));
  std::uint64_t rem = code % (12 * 11);
  const unsigned bi = static_cast<unsigned>(rem / 11);
  const unsigned ci = static_cast<unsigned>(rem % 11);
  // Map choice indices through the remaining-value lists.
  std::array<unsigned, 3> out{a, 0, 0};
  unsigned pool_b = 0;
  for (unsigned v = 0; v < kFamilyBits; ++v) {
    if (v == a) continue;
    if (pool_b++ == bi) {
      out[1] = v;
      break;
    }
  }
  unsigned pool_c = 0;
  for (unsigned v = 0; v < kFamilyBits; ++v) {
    if (v == a || v == out[1]) continue;
    if (pool_c++ == ci) {
      out[2] = v;
      break;
    }
  }
  return out;
}

std::uint64_t encode_triple(unsigned a, unsigned b, unsigned c) {
  unsigned bi = 0;
  for (unsigned v = 0; v < b; ++v)
    if (v != a) ++bi;
  unsigned ci = 0;
  for (unsigned v = 0; v < c; ++v)
    if (v != a && v != b) ++ci;
  return (static_cast<std::uint64_t>(a) * 12 + bi) * 11 + ci;
}

Netlist kron2_netlist(const RandomnessPlan& plan) {
  Netlist nl;
  std::vector<gadgets::Bus> shares;
  for (std::size_t i = 0; i < 3; ++i)
    shares.push_back(gadgets::make_input_bus(
        nl, 8, netlist::InputRole::kShare, "b" + std::to_string(i) + "_", 0,
        static_cast<std::uint32_t>(i)));
  gadgets::build_kronecker(nl, shares, plan);
  return nl;
}

SecondOrderCandidateResult evaluate_family13_candidate(
    std::uint64_t index, const SecondOrderSearchOptions& options) {
  const RandomnessPlan plan = kron2_family13_plan(index);
  const Netlist nl = kron2_netlist(plan);
  SecondOrderCandidateResult r;
  r.index = index;
  if (options.lint_prefilter) {
    lint::LintOptions lo;
    lo.model = options.model == ProbeModel::kGlitchTransition
                   ? lint::LintModel::kGlitchTransition
                   : lint::LintModel::kGlitch;
    lo.order = 2;
    lo.max_findings = 1;
    lo.threads = 1;
    const lint::LintReport report = lint::run_lint(nl, lo);
    if (!report.clean()) {
      r.lint_rejected = true;
      r.worst_probe = report.findings.front().probe_name;
      return r;
    }
  }
  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.order = options.order;
  campaign.simulations = options.simulations;
  campaign.seed = options.seed;
  campaign.threshold = options.threshold;
  campaign.threads = 1;
  campaign.fixed_values[0] = 0x00;
  const CampaignResult result = run_fixed_vs_random(nl, campaign);
  r.secure = result.pass;
  r.severity = result.max_minus_log10_p;
  if (!result.results.empty()) r.worst_probe = result.results.front().name;
  return r;
}

// --- sweep checkpoint -----------------------------------------------------
// Same envelope discipline as core/checkpoint.cpp (magic, version,
// length-prefixed payload, FNV-1a checksum, tmp+rename), own format: the
// payload is the per-candidate verdict list, tiny compared to campaign
// count tables.

constexpr char kSweepMagic[8] = {'S', 'C', 'A', '2', 'S', 'R', 'C', 'H'};
constexpr std::uint64_t kSweepVersion = 1;

std::uint64_t sweep_fingerprint(const SecondOrderSearchOptions& o) {
  return common::Fnv1a()
      .feed(std::string("kron2-family13"))
      .feed(o.begin)
      .feed(o.end)
      .feed(static_cast<std::uint64_t>(o.chunk))
      .feed(static_cast<std::uint64_t>(o.model))
      .feed(static_cast<std::uint64_t>(o.order))
      .feed(static_cast<std::uint64_t>(o.simulations))
      .feed(o.seed)
      .feed(o.threshold)
      .feed(static_cast<std::uint64_t>(o.lint_prefilter ? 1 : 0))
      // Lint configuration the pre-filter runs with (fixed today, part of
      // the fingerprint so a future knob cannot silently mix sweeps).
      .feed(std::uint64_t{2})  // lint order
      .feed(std::uint64_t{1})  // lint max_findings
      .value();
}

struct SweepSnapshot {
  std::uint64_t fingerprint = 0;
  std::uint64_t chunks_done = 0;
  std::vector<SecondOrderCandidateResult> finished;
};

void save_sweep_checkpoint(const std::string& path,
                           const SweepSnapshot& snap) {
  std::ostringstream payload;
  common::write_u64(payload, snap.fingerprint);
  common::write_u64(payload, snap.chunks_done);
  common::write_u64(payload, snap.finished.size());
  for (const SecondOrderCandidateResult& r : snap.finished) {
    common::write_u64(payload, r.index);
    common::write_u8(payload, r.lint_rejected ? 1 : 0);
    common::write_u8(payload, r.secure ? 1 : 0);
    common::write_f64(payload, r.severity);
    common::write_string(payload, r.worst_probe);
  }
  const std::string bytes = payload.str();
  const std::uint64_t checksum =
      common::Fnv1a().feed_bytes(bytes.data(), bytes.size()).value();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    common::require(os.good(),
                    "search checkpoint: cannot open " + tmp + " for writing");
    os.write(kSweepMagic, sizeof(kSweepMagic));
    common::write_u64(os, kSweepVersion);
    common::write_u64(os, bytes.size());
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    common::write_u64(os, checksum);
    os.flush();
    common::require(os.good(), "search checkpoint: write to " + tmp + " failed");
  }
  common::require(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "search checkpoint: rename to " + path + " failed");
}

SweepSnapshot load_sweep_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  common::require(is.good(), "search checkpoint: cannot open " + path);
  char magic[sizeof(kSweepMagic)];
  is.read(magic, sizeof(kSweepMagic));
  common::require(is.gcount() == sizeof(kSweepMagic) &&
                      std::equal(magic, magic + sizeof(kSweepMagic),
                                 kSweepMagic),
                  "search checkpoint: " + path +
                      " is not a sweep snapshot (bad magic)");
  common::require(common::read_u64(is) == kSweepVersion,
                  "search checkpoint: unsupported snapshot version in " + path);
  const std::uint64_t size = common::read_u64(is);
  common::require(size <= (std::uint64_t{1} << 32),
                  "search checkpoint: payload size out of range in " + path);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(size));
  common::require(static_cast<std::uint64_t>(is.gcount()) == size,
                  "search checkpoint: " + path + " is truncated");
  const std::uint64_t checksum = common::read_u64(is);
  common::require(
      checksum ==
          common::Fnv1a().feed_bytes(bytes.data(), bytes.size()).value(),
      "search checkpoint: " + path + " is corrupt (checksum mismatch)");
  std::istringstream payload(bytes);
  SweepSnapshot snap;
  snap.fingerprint = common::read_u64(payload);
  snap.chunks_done = common::read_u64(payload);
  const std::uint64_t n = common::read_u64(payload);
  common::require(n <= (std::uint64_t{1} << 24),
                  "search checkpoint: candidate count out of range");
  snap.finished.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    SecondOrderCandidateResult r;
    r.index = common::read_u64(payload);
    r.lint_rejected = common::read_u8(payload) != 0;
    r.secure = common::read_u8(payload) != 0;
    r.severity = common::read_f64(payload);
    r.worst_probe = common::read_string(payload);
    snap.finished.push_back(std::move(r));
  }
  payload.peek();
  common::require(payload.eof(),
                  "search checkpoint: " + path + " has trailing bytes");
  return snap;
}

}  // namespace

std::vector<std::uint64_t> SecondOrderSearchResult::secure_indices() const {
  std::vector<std::uint64_t> out;
  for (const SecondOrderCandidateResult& r : evaluations)
    if (r.secure) out.push_back(r.index);
  return out;
}

std::uint64_t kron2_family13_size() { return kTriples * kTriples * kTriples; }

RandomnessPlan kron2_family13_plan(std::uint64_t index) {
  common::require(index < kron2_family13_size(),
                  "kron2_family13_plan: index out of range");
  const std::uint64_t g7 = index % kTriples;
  const std::uint64_t g6 = (index / kTriples) % kTriples;
  const std::uint64_t g5 = index / (kTriples * kTriples);
  std::vector<gadgets::MaskSlotExpr> slots;
  for (unsigned k = 0; k < 12; ++k)
    slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << k, false});
  for (const std::uint64_t code : {g5, g6, g7})
    for (const unsigned v : decode_triple(code))
      slots.push_back(gadgets::MaskSlotExpr{std::uint64_t{1} << v, false});
  return RandomnessPlan("kron2/family13-" + std::to_string(index), kFamilyBits,
                        std::move(slots));
}

std::uint64_t kron2_family13_naive_index() {
  // kron2_naive13: G5 = (f9, f10, f11), G6 = (f3, f4, f5), G7 = (f12, f6, f7).
  return (encode_triple(9, 10, 11) * kTriples + encode_triple(3, 4, 5)) *
             kTriples +
         encode_triple(12, 6, 7);
}

SecondOrderSearchResult search_kron2_family13(
    const SecondOrderSearchOptions& options) {
  SecondOrderSearchOptions o = options;
  if (o.end == 0) o.end = o.begin + o.chunk;
  common::require(o.begin < o.end && o.end <= kron2_family13_size(),
                  "search_kron2_family13: bad candidate window");
  common::require(o.chunk > 0, "search_kron2_family13: chunk must be > 0");
  common::require(o.order >= 1 && o.order <= 2,
                  "search_kron2_family13: order must be 1 or 2");

  const std::uint64_t fingerprint = sweep_fingerprint(o);
  const std::uint64_t total = o.end - o.begin;
  const std::size_t chunks_total =
      static_cast<std::size_t>((total + o.chunk - 1) / o.chunk);

  SweepSnapshot snap;
  snap.fingerprint = fingerprint;
  if (o.resume && !o.checkpoint_path.empty()) {
    snap = load_sweep_checkpoint(o.checkpoint_path);
    common::require(snap.fingerprint == fingerprint,
                    "search_kron2_family13: checkpoint was written by a "
                    "different sweep configuration (fingerprint mismatch)");
    common::require(
        snap.finished.size() ==
            std::min<std::uint64_t>(snap.chunks_done * o.chunk, total),
        "search_kron2_family13: checkpoint candidate count does not match "
        "its chunk progress");
  }

  std::size_t ran = 0;
  for (std::size_t c = snap.chunks_done; c < chunks_total; ++c) {
    if (o.stop_after_chunks && ran >= o.stop_after_chunks) break;
    const std::uint64_t lo = o.begin + c * o.chunk;
    const std::uint64_t hi = std::min<std::uint64_t>(lo + o.chunk, o.end);
    std::vector<SecondOrderCandidateResult> chunk_results(
        static_cast<std::size_t>(hi - lo));
    common::parallel_for(
        chunk_results.size(), o.threads, [&](std::size_t i) {
          chunk_results[i] = evaluate_family13_candidate(lo + i, o);
        });
    for (SecondOrderCandidateResult& r : chunk_results)
      snap.finished.push_back(std::move(r));
    snap.chunks_done = c + 1;
    ++ran;
    if (!o.checkpoint_path.empty())
      save_sweep_checkpoint(o.checkpoint_path, snap);
  }

  SecondOrderSearchResult result;
  result.begin = o.begin;
  result.end = o.end;
  result.evaluations = std::move(snap.finished);
  result.chunks_done = snap.chunks_done;
  result.chunks_total = chunks_total;
  result.complete = snap.chunks_done == chunks_total;
  for (const SecondOrderCandidateResult& r : result.evaluations)
    (r.lint_rejected ? result.lint_rejected : result.expensive_evaluations)++;
  return result;
}

}  // namespace sca::eval
