#include "src/core/probes.hpp"

#include <algorithm>
#include <map>

#include "src/common/check.hpp"

namespace sca::eval {

using netlist::GateKind;
using netlist::Netlist;
using netlist::SignalId;

std::string to_string(ProbeModel model) {
  switch (model) {
    case ProbeModel::kGlitch:
      return "glitch-extended";
    case ProbeModel::kGlitchTransition:
      return "glitch+transition-extended";
  }
  return "?";
}

std::vector<Probe> build_probe_universe(const Netlist& nl,
                                        const netlist::StableSupport& supports,
                                        const std::string& scope_filter) {
  struct Group {
    SignalId representative = netlist::kNoSignal;
    std::vector<SignalId> folded;  // same observation, not the representative
  };
  std::map<std::vector<SignalId>, Group> unique;
  for (SignalId id = 0; id < nl.size(); ++id) {
    const GateKind k = nl.kind(id);
    if (k == GateKind::kConst0 || k == GateKind::kConst1) continue;
    if (!scope_filter.empty()) {
      const auto name = nl.explicit_name(id);
      if (!name || name->rfind(scope_filter, 0) != 0) continue;
    }
    std::vector<SignalId> observed;
    for (std::size_t idx : supports.support(id).set_bits())
      observed.push_back(supports.stable_points()[idx]);
    if (observed.empty()) continue;
    auto [it, inserted] = unique.try_emplace(std::move(observed), Group{id, {}});
    if (!inserted) {
      // Explicitly-named signals make better representatives; the loser
      // becomes an alias either way.
      if (!nl.explicit_name(it->second.representative) &&
          nl.explicit_name(id)) {
        it->second.folded.push_back(it->second.representative);
        it->second.representative = id;
      } else {
        it->second.folded.push_back(id);
      }
    }
  }

  std::vector<Probe> universe;
  universe.reserve(unique.size());
  for (auto& [observed, group] : unique) {
    Probe p;
    p.representative = group.representative;
    p.name = nl.signal_name(group.representative);
    p.observed = observed;
    p.aliases.reserve(group.folded.size());
    for (SignalId id : group.folded) p.aliases.push_back(nl.signal_name(id));
    universe.push_back(std::move(p));
  }
  return universe;
}

std::vector<std::vector<std::size_t>> enumerate_probe_sets(
    std::size_t universe_size, unsigned order) {
  common::require(order >= 1 && order <= 3,
                  "enumerate_probe_sets: order must be 1..3");
  std::vector<std::vector<std::size_t>> sets;
  if (order == 1) {
    for (std::size_t i = 0; i < universe_size; ++i) sets.push_back({i});
  } else if (order == 2) {
    for (std::size_t i = 0; i < universe_size; ++i)
      for (std::size_t j = i + 1; j < universe_size; ++j) sets.push_back({i, j});
  } else {
    for (std::size_t i = 0; i < universe_size; ++i)
      for (std::size_t j = i + 1; j < universe_size; ++j)
        for (std::size_t k = j + 1; k < universe_size; ++k)
          sets.push_back({i, j, k});
  }
  return sets;
}

std::vector<SignalId> union_observation(const std::vector<Probe>& universe,
                                        const std::vector<std::size_t>& set) {
  common::require(!set.empty(), "union_observation: empty probe set");
  for (std::size_t k = 0; k < set.size(); ++k) {
    common::require(set[k] < universe.size(),
                    "union_observation: probe index out of range");
    common::require(k == 0 || set[k - 1] < set[k],
                    "union_observation: probe indices must be strictly "
                    "ascending (no duplicates)");
  }
  std::vector<SignalId> observed;
  for (std::size_t pi : set)
    observed.insert(observed.end(), universe[pi].observed.begin(),
                    universe[pi].observed.end());
  std::sort(observed.begin(), observed.end());
  observed.erase(std::unique(observed.begin(), observed.end()),
                 observed.end());
  return observed;
}

}  // namespace sca::eval
