#include "src/core/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace sca::eval {

namespace {

// Minimal JSON string escaping — probe-set names only contain identifier
// characters, dots, '&' and spaces, but a correct writer costs nothing.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string verdict_line(const CampaignResult& result) {
  std::ostringstream os;
  os << (result.pass ? "PASS" : "FAIL") << " (max "
     << (result.statistic == Statistic::kWelchTTest ? "|t|" : "-log10(p)")
     << " = " << std::fixed << std::setprecision(2)
     << result.max_minus_log10_p << " over " << result.total_sets
     << " probe sets, " << result.leaking_sets << " leaking)";
  return os.str();
}

std::string to_string(const CampaignResult& result, std::size_t top_n) {
  std::ostringstream os;
  os << "fixed-vs-random campaign: " << to_string(result.model) << ", order "
     << result.order << ", " << result.simulations_per_group
     << " simulations/group, " << result.threads_used
     << (result.threads_used == 1 ? " thread" : " threads");
  if (result.table_batches > 1)
    os << ", " << result.table_batches << " table batches";
  os << "\n";
  os << "verdict: " << verdict_line(result) << "\n";
  if (result.dropped_sets)
    os << "WARNING: " << result.dropped_sets
       << " probe sets dropped by max_probe_sets cap\n";
  os << std::fixed << std::setprecision(2);
  os << "  -log10(p)  bits  probe set\n";
  for (const ProbeSetResult* r : result.top(top_n)) {
    os << "  " << std::setw(9) << r->minus_log10_p << "  " << std::setw(4)
       << r->observation_bits << "  " << r->name
       << (r->compacted ? " [compact]" : "") << (r->leaking ? "  <-- LEAK" : "")
       << "\n";
  }
  return os.str();
}

std::string stage_line(const StageReport& report) {
  std::ostringstream os;
  os << "stage " << report.stage << "/" << report.stages_total;
  if (report.batches_total > 1)
    os << " (batch " << report.batch << "/" << report.batches_total << ")";
  os << ": " << report.simulations_done << "/" << report.simulations_total
     << " sims, max = " << std::fixed << std::setprecision(2)
     << report.max_minus_log10_p;
  if (!report.worst_set.empty()) os << " (" << report.worst_set << ")";
  os << ", " << report.leaking_sets
     << (report.leaking_sets == 1 ? " leak" : " leaks");
  if (report.sims_per_second > 0.0)
    os << ", " << std::setprecision(0) << report.sims_per_second << " sims/s";
  if (report.early_stopped) os << "  [early stop]";
  return os.str();
}

std::string to_json(const StageReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  os << "{\"stage\":" << report.stage
     << ",\"stages_total\":" << report.stages_total
     << ",\"batch\":" << report.batch
     << ",\"batches_total\":" << report.batches_total
     << ",\"simulations_done\":" << report.simulations_done
     << ",\"simulations_total\":" << report.simulations_total
     << ",\"max_minus_log10_p\":" << report.max_minus_log10_p
     << ",\"worst_set\":\"" << json_escape(report.worst_set) << "\""
     << ",\"leaking_sets\":" << report.leaking_sets
     << ",\"pass_so_far\":" << (report.pass_so_far ? "true" : "false")
     << ",\"stage_seconds\":" << report.stage_seconds
     << ",\"sims_per_second\":" << report.sims_per_second
     << ",\"simulate_seconds\":" << report.simulate_seconds
     << ",\"accumulate_seconds\":" << report.accumulate_seconds
     << ",\"merge_seconds\":" << report.merge_seconds
     << ",\"extract_seconds\":" << report.extract_seconds
     << ",\"transpose_seconds\":" << report.transpose_seconds
     << ",\"histogram_seconds\":" << report.histogram_seconds
     << ",\"aliased_probe_sets\":" << report.aliased_probe_sets
     << ",\"early_stopped\":" << (report.early_stopped ? "true" : "false")
     << ",\"checkpoint\":\"" << json_escape(report.checkpoint_path) << "\"}";
  return os.str();
}

std::string to_json(const CampaignResult& result, std::size_t top_n) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  os << "{\"pass\":" << (result.pass ? "true" : "false")
     << ",\"statistic\":\""
     << (result.statistic == Statistic::kWelchTTest ? "ttest" : "gtest")
     << "\""
     << ",\"max_minus_log10_p\":" << result.max_minus_log10_p
     << ",\"leaking_sets\":" << result.leaking_sets
     << ",\"total_sets\":" << result.total_sets
     << ",\"unevaluated_sets\":" << result.unevaluated_sets
     << ",\"simulations_per_group\":" << result.simulations_per_group
     << ",\"simulations_done\":" << result.simulations_done
     << ",\"stages_total\":" << result.stages_total
     << ",\"stages_completed\":" << result.stages_completed
     << ",\"early_stopped\":" << (result.early_stopped ? "true" : "false")
     << ",\"interrupted\":" << (result.interrupted ? "true" : "false")
     << ",\"resumed\":" << (result.resumed ? "true" : "false")
     << ",\"threads\":" << result.threads_used
     << ",\"table_batches\":" << result.table_batches
     << ",\"simulate_seconds\":" << result.simulate_seconds
     << ",\"accumulate_seconds\":" << result.accumulate_seconds
     << ",\"merge_seconds\":" << result.merge_seconds
     << ",\"extract_seconds\":" << result.extract_seconds
     << ",\"transpose_seconds\":" << result.transpose_seconds
     << ",\"histogram_seconds\":" << result.histogram_seconds
     << ",\"aliased_probe_sets\":" << result.aliased_probe_sets
     << ",\"hosted_sets\":" << result.hosted_sets
     << ",\"set_shards\":" << result.set_shards << ",\"top\":[";
  bool first = true;
  for (const ProbeSetResult* r : result.top(top_n)) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(r->name) << "\""
       << ",\"minus_log10_p\":" << r->minus_log10_p
       << ",\"bits\":" << r->observation_bits
       << ",\"compacted\":" << (r->compacted ? "true" : "false")
       << ",\"leaking\":" << (r->leaking ? "true" : "false")
       << ",\"aliases\":" << r->aliases.size();
    if (!r->aliases.empty()) {
      // Names capped to keep the report bounded; the count above is exact.
      os << ",\"alias_names\":[";
      const std::size_t shown = std::min<std::size_t>(r->aliases.size(), 8);
      for (std::size_t i = 0; i < shown; ++i)
        os << (i ? "," : "") << "\"" << json_escape(r->aliases[i]) << "\"";
      os << "]";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string to_json(const lint::LintReport& report) {
  std::ostringstream os;
  os << "{\"backend\":\"lint\",\"model\":\"" << lint::to_string(report.model)
     << "\",\"order\":" << report.order
     << ",\"clean\":" << (report.clean() ? "true" : "false")
     << ",\"probes_checked\":" << report.probes_checked
     << ",\"probes_flagged\":" << report.probes_flagged
     << ",\"otp_cuts\":" << report.cuts_applied;
  if (report.order >= 2)
    os << ",\"pairs_enumerated\":" << report.pairs_enumerated
       << ",\"pairs_deduped\":" << report.pairs_deduped;
  os << ",\"truncated\":" << (report.truncated ? "true" : "false")
     << ",\"sliced\":" << (report.sliced ? "true" : "false")
     << ",\"cut_registers\":" << report.cut_registers << ",\"findings\":[";
  const auto string_array = [&](const std::vector<std::string>& items) {
    os << "[";
    for (std::size_t i = 0; i < items.size(); ++i)
      os << (i ? "," : "") << "\"" << json_escape(items[i]) << "\"";
    os << "]";
  };
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const lint::LintFinding& f = report.findings[i];
    if (i) os << ",";
    os << "{\"rule\":\"" << lint::lint_rule_name(f.rule) << "\""
       << ",\"probe\":\"" << json_escape(f.probe_name) << "\"";
    if (f.probe2 != netlist::kNoSignal)
      os << ",\"probe2\":\"" << json_escape(f.probe2_name) << "\"";
    os << ",\"offending\":";
    string_array(f.offending);
    os << ",\"shared_fresh\":";
    string_array(f.shared_fresh);
    os << ",\"completed\":";
    string_array(f.completed);
    os << ",\"message\":\"" << json_escape(f.message) << "\"";
    if (f.certificate) {
      const lint::LintCertificate& c = *f.certificate;
      os << ",\"certificate\":{\"available\":"
         << (c.available ? "true" : "false");
      if (!c.available) {
        os << ",\"reason\":\"" << json_escape(c.unavailable_reason) << "\"}";
      } else {
        os << ",\"secret_bits\":";
        string_array(c.secret_bits);
        os << ",\"secret_a\":" << c.secret_a << ",\"secret_b\":" << c.secret_b
           << ",\"tv_distance\":" << c.tv_distance
           << ",\"observation\":" << c.observation
           << ",\"count_a\":" << c.count_a << ",\"count_b\":" << c.count_b
           << ",\"assignment\":{";
        for (std::size_t j = 0; j < c.assignment.size(); ++j)
          os << (j ? "," : "") << "\"" << json_escape(c.assignment[j].first)
             << "\":" << (c.assignment[j].second ? 1 : 0);
        os << "}}";
      }
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void default_stage_sink(const StageReport& report) {
  std::printf("%s\n", stage_line(report).c_str());
  std::fflush(stdout);
  if (const char* path = std::getenv("SCA_STAGE_JSON")) {
    std::ofstream os(path, std::ios::app);
    if (os.good()) os << to_json(report) << "\n";
  }
}

}  // namespace sca::eval
