#include "src/core/report.hpp"

#include <iomanip>
#include <sstream>

namespace sca::eval {

std::string verdict_line(const CampaignResult& result) {
  std::ostringstream os;
  os << (result.pass ? "PASS" : "FAIL") << " (max "
     << (result.statistic == Statistic::kWelchTTest ? "|t|" : "-log10(p)")
     << " = " << std::fixed << std::setprecision(2)
     << result.max_minus_log10_p << " over " << result.total_sets
     << " probe sets, " << result.leaking_sets << " leaking)";
  return os.str();
}

std::string to_string(const CampaignResult& result, std::size_t top_n) {
  std::ostringstream os;
  os << "fixed-vs-random campaign: " << to_string(result.model) << ", order "
     << result.order << ", " << result.simulations_per_group
     << " simulations/group, " << result.threads_used
     << (result.threads_used == 1 ? " thread" : " threads");
  if (result.table_batches > 1)
    os << ", " << result.table_batches << " table batches";
  os << "\n";
  os << "verdict: " << verdict_line(result) << "\n";
  if (result.dropped_sets)
    os << "WARNING: " << result.dropped_sets
       << " probe sets dropped by max_probe_sets cap\n";
  os << std::fixed << std::setprecision(2);
  os << "  -log10(p)  bits  probe set\n";
  for (const ProbeSetResult* r : result.top(top_n)) {
    os << "  " << std::setw(9) << r->minus_log10_p << "  " << std::setw(4)
       << r->observation_bits << "  " << r->name
       << (r->compacted ? " [compact]" : "") << (r->leaking ? "  <-- LEAK" : "")
       << "\n";
  }
  return os.str();
}

}  // namespace sca::eval
