// Text rendering of campaign results, in the spirit of PROLEAD's report:
// a verdict line, campaign parameters, and the most significant probe sets
// with their -log10(p) values and gate names.
#pragma once

#include <string>

#include "src/core/campaign.hpp"
#include "src/lint/linter.hpp"

namespace sca::eval {

/// Full report with the `top_n` most significant probe sets.
std::string to_string(const CampaignResult& result, std::size_t top_n = 10);

/// One-line verdict: "PASS (max -log10(p) = 1.32 over 107 probe sets)".
std::string verdict_line(const CampaignResult& result);

/// One-line progress report of a completed evaluation stage:
/// "stage 3/10: 60000/200000 sims, max -log10(p) = 5.21 (sbox...), 1 leak".
std::string stage_line(const StageReport& report);

/// Single-line JSON object of a stage report, for machine-readable
/// progress streams (one object per line).
std::string to_json(const StageReport& report);

/// Single-line JSON object of a campaign result with its `top_n` worst
/// probe sets inlined.
std::string to_json(const CampaignResult& result, std::size_t top_n = 10);

/// Single-line JSON object of a lint report with every finding inlined
/// (rule, probe, offending signals, shared fresh bits, completed sharings).
std::string to_json(const lint::LintReport& report);

/// Ready-made CampaignOptions::on_stage sink: prints stage_line() to
/// stdout and, when the SCA_STAGE_JSON environment variable names a file,
/// appends to_json() as one line to it.
void default_stage_sink(const StageReport& report);

}  // namespace sca::eval
