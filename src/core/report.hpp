// Text rendering of campaign results, in the spirit of PROLEAD's report:
// a verdict line, campaign parameters, and the most significant probe sets
// with their -log10(p) values and gate names.
#pragma once

#include <string>

#include "src/core/campaign.hpp"

namespace sca::eval {

/// Full report with the `top_n` most significant probe sets.
std::string to_string(const CampaignResult& result, std::size_t top_n = 10);

/// One-line verdict: "PASS (max -log10(p) = 1.32 over 107 probe sets)".
std::string verdict_line(const CampaignResult& result);

}  // namespace sca::eval
