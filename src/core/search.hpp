// Randomness-plan search for the first-order Kronecker delta.
//
// Section IV of the paper finds its repaired optimization (Eq. (9)) and the
// transition-secure family ("four solutions, r7 = r_i") by manual analysis
// plus trial and error with PROLEAD. This module mechanizes that search:
// enumerate candidate plans, build the Kronecker with each, evaluate it —
// exactly (glitch model) or by sampling (transition model) — and collect
// the secure plans by fresh-mask cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/probes.hpp"
#include "src/gadgets/randomness_plan.hpp"

namespace sca::eval {

struct SearchOptions {
  ProbeModel model = ProbeModel::kGlitch;
  /// Under the glitch model, use the exact enumerative verifier (sound and
  /// fast for the Kronecker); the transition model always samples.
  bool prefer_exact = true;
  /// Sampling budget per candidate (observations per group).
  std::size_t simulations = 100'000;
  std::uint64_t seed = 1;
  double threshold = 7.0;
  /// Worker threads (0 = SCA_THREADS env, else hardware concurrency). The
  /// search_* drivers parallelize *across* candidate plans and evaluate
  /// each candidate single-threaded (no oversubscription); a standalone
  /// evaluate_kron1_plan call spends the whole pool inside the one
  /// evaluation. Results are ordered by candidate index either way, so they
  /// are identical for any thread count.
  unsigned threads = 0;
  /// Run the static linter (src/lint) on each candidate first and reject
  /// flagged plans without any exact or sampling evaluation. Sound by the
  /// linter's construction (lint-clean => secure under the model); verdict
  /// identity with the unfiltered search is asserted in tests/lint_test.cpp.
  bool lint_prefilter = false;
};

struct PlanEvaluation {
  gadgets::RandomnessPlan plan;
  bool secure = false;
  bool exact = false;      ///< verdict from the exact verifier
  double severity = 0.0;   ///< max TV distance (exact) or -log10(p) (sampled)
  std::string worst_probe; ///< most significant probe (empty when secure/exact)
  bool lint_rejected = false;  ///< pre-filter verdict, no expensive run
};

struct SearchResult {
  std::vector<PlanEvaluation> evaluations;
  /// Candidates the lint pre-filter rejected statically (0 when disabled).
  std::size_t lint_rejected = 0;
  /// Candidates that reached the exact verifier or the sampler.
  std::size_t expensive_evaluations = 0;

  /// Secure plans, cheapest (fewest fresh bits) first.
  std::vector<const PlanEvaluation*> secure_plans() const;
  /// Minimum fresh-bit count among secure plans (SIZE_MAX if none).
  std::size_t min_secure_fresh() const;
};

/// Evaluates one first-order Kronecker plan.
PlanEvaluation evaluate_kron1_plan(const gadgets::RandomnessPlan& plan,
                                   const SearchOptions& options);

/// The paper's Section IV search space: r1..r6 fresh and independent,
/// r7 either fresh or reusing one of r1..r6 (7 candidates).
SearchResult search_r7_reuse(const SearchOptions& options);

/// Exhaustive search over all single-bit slot assignments up to renaming of
/// fresh bits (set partitions of the 7 slots; Bell(7) = 877 candidates).
/// `max_fresh` skips partitions using more than that many fresh bits
/// (0 = no limit).
SearchResult search_all_partitions(const SearchOptions& options,
                                   std::size_t max_fresh = 0);

}  // namespace sca::eval
