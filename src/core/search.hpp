// Randomness-plan search for the first-order Kronecker delta.
//
// Section IV of the paper finds its repaired optimization (Eq. (9)) and the
// transition-secure family ("four solutions, r7 = r_i") by manual analysis
// plus trial and error with PROLEAD. This module mechanizes that search:
// enumerate candidate plans, build the Kronecker with each, evaluate it —
// exactly (glitch model) or by sampling (transition model) — and collect
// the secure plans by fresh-mask cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/probes.hpp"
#include "src/gadgets/randomness_plan.hpp"

namespace sca::eval {

struct SearchOptions {
  ProbeModel model = ProbeModel::kGlitch;
  /// Under the glitch model, use the exact enumerative verifier (sound and
  /// fast for the Kronecker); the transition model always samples.
  bool prefer_exact = true;
  /// Sampling budget per candidate (observations per group).
  std::size_t simulations = 100'000;
  std::uint64_t seed = 1;
  double threshold = 7.0;
  /// Worker threads (0 = SCA_THREADS env, else hardware concurrency). The
  /// search_* drivers parallelize *across* candidate plans and evaluate
  /// each candidate single-threaded (no oversubscription); a standalone
  /// evaluate_kron1_plan call spends the whole pool inside the one
  /// evaluation. Results are ordered by candidate index either way, so they
  /// are identical for any thread count.
  unsigned threads = 0;
  /// Run the static linter (src/lint) on each candidate first and reject
  /// flagged plans without any exact or sampling evaluation. Sound by the
  /// linter's construction (lint-clean => secure under the model); verdict
  /// identity with the unfiltered search is asserted in tests/lint_test.cpp.
  bool lint_prefilter = false;
};

struct PlanEvaluation {
  gadgets::RandomnessPlan plan;
  bool secure = false;
  bool exact = false;      ///< verdict from the exact verifier
  double severity = 0.0;   ///< max TV distance (exact) or -log10(p) (sampled)
  std::string worst_probe; ///< most significant probe (empty when secure/exact)
  bool lint_rejected = false;  ///< pre-filter verdict, no expensive run
};

struct SearchResult {
  std::vector<PlanEvaluation> evaluations;
  /// Candidates the lint pre-filter rejected statically (0 when disabled).
  std::size_t lint_rejected = 0;
  /// Candidates that reached the exact verifier or the sampler.
  std::size_t expensive_evaluations = 0;

  /// Secure plans, cheapest (fewest fresh bits) first.
  std::vector<const PlanEvaluation*> secure_plans() const;
  /// Minimum fresh-bit count among secure plans (SIZE_MAX if none).
  std::size_t min_secure_fresh() const;
};

/// Evaluates one first-order Kronecker plan.
PlanEvaluation evaluate_kron1_plan(const gadgets::RandomnessPlan& plan,
                                   const SearchOptions& options);

/// The paper's Section IV search space: r1..r6 fresh and independent,
/// r7 either fresh or reusing one of r1..r6 (7 candidates).
SearchResult search_r7_reuse(const SearchOptions& options);

/// Exhaustive search over all single-bit slot assignments up to renaming of
/// fresh bits (set partitions of the 7 slots; Bell(7) = 877 candidates).
/// `max_fresh` skips partitions using more than that many fresh bits
/// (0 = no limit).
SearchResult search_all_partitions(const SearchOptions& options,
                                   std::size_t max_fresh = 0);

// --- second-order 13-bit family search ------------------------------------
//
// The CHES 2018 optimization the paper's Experiment E9 evaluates reduces
// the second-order Kronecker's randomness from 21 to 13 bits. Its exact
// wiring is not printed, so this search mechanizes the reconstruction the
// way Section IV mechanized the first-order one: enumerate the whole
// family, evaluate every member at order 2, and let the verdicts tell the
// story. The family: first-layer slots pinned to fresh f0..f11, and the
// nine upper slots (G5, G6, G7) each drawing from {f0..f12} with the three
// masks of one gate pairwise distinct — (13*12*11)^3 = 1716^3 candidates,
// kron2_naive13 among them. A full sweep is petabyte-scale simulation
// work; the order-2 lint pre-filter (max_findings = 1) statically rejects
// the bulk of the candidates in milliseconds-to-seconds each, and the
// deterministic chunk grid + checkpoint below make the remainder a
// resumable, shardable batch job (tests pin a seeded slice; bench_e9 runs
// a window).

struct SecondOrderSearchOptions {
  ProbeModel model = ProbeModel::kGlitchTransition;
  /// Campaign order for the sampling evaluation (2 = the point).
  unsigned order = 2;
  /// Sampling budget per candidate that survives the pre-filter.
  std::size_t simulations = 20'000;
  std::uint64_t seed = 1;
  double threshold = 7.0;
  /// Worker threads (0 = SCA_THREADS env, else hardware concurrency).
  /// Parallelism is *across* candidates inside one chunk; each candidate
  /// evaluates single-threaded, and results land in candidate order, so
  /// the sweep is bit-identical for every thread count.
  unsigned threads = 0;
  /// Run the order-2 linter (max_findings = 1) on each candidate first and
  /// reject flagged plans without sampling. Rejection is recorded per
  /// candidate; agreement with the unfiltered sweep is asserted on a
  /// seeded slice in tests/lint2_test.cpp.
  bool lint_prefilter = true;
  /// Candidate window [begin, end) over the family index space
  /// (end = 0 means begin + one default chunk). Windows compose: disjoint
  /// windows can run on different machines and their result lists
  /// concatenate into the full sweep.
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  /// Candidates per chunk. Chunks run sequentially (parallelism lives
  /// inside a chunk) and the checkpoint advances at chunk boundaries, so
  /// the grid is the resume granularity.
  std::size_t chunk = 32;
  /// Snapshot path ("" = no checkpointing). The snapshot fingerprint binds
  /// family, window, chunk grid, model, order, budget, seed, threshold and
  /// the lint pre-filter configuration: resuming under any other
  /// configuration throws instead of silently mixing sweeps.
  std::string checkpoint_path;
  bool resume = false;
  /// Stop after this many chunks (0 = run the window to completion) with
  /// the checkpoint written — the forced-resume hook used by tests and CI.
  std::size_t stop_after_chunks = 0;
};

struct SecondOrderCandidateResult {
  std::uint64_t index = 0;     ///< family index (kron2_family13_plan(index))
  bool lint_rejected = false;  ///< order-2 lint flagged it; not sampled
  bool secure = false;
  double severity = 0.0;       ///< -log10(p) of the worst probe set
  std::string worst_probe;     ///< worst probe set (sampled candidates)
};

struct SecondOrderSearchResult {
  /// One entry per candidate in [begin, end), in index order.
  std::vector<SecondOrderCandidateResult> evaluations;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::size_t lint_rejected = 0;
  std::size_t expensive_evaluations = 0;
  std::size_t chunks_done = 0;
  std::size_t chunks_total = 0;
  /// False when stop_after_chunks ended the run early (resume to finish).
  bool complete = false;

  /// Indices of candidates that passed the order-2 evaluation.
  std::vector<std::uint64_t> secure_indices() const;
};

/// Number of candidates in the 13-bit family (1716^3).
std::uint64_t kron2_family13_size();

/// Decodes a family index into its plan: index = (g5 * 1716 + g6) * 1716 +
/// g7 where each gate code enumerates ordered distinct triples over
/// {f0..f12} lexicographically. Throws for out-of-range indices.
gadgets::RandomnessPlan kron2_family13_plan(std::uint64_t index);

/// Family index of the kron2_naive13 plan (a sanity anchor for tests).
std::uint64_t kron2_family13_naive_index();

/// Sweeps the window [begin, end) of the 13-bit family at order 2.
SecondOrderSearchResult search_kron2_family13(
    const SecondOrderSearchOptions& options);

}  // namespace sca::eval
