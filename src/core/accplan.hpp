// Ahead-of-time compilation of a campaign batch's statistics accumulation.
//
// The campaign engine treats the batch's probe sets the way sim/tape treats
// gates: a planning pass runs once per batch, before any simulation, and
// emits a straight-line accumulation program that the per-chunk executor
// replays over every buffered sample. The plan makes three structural
// optimizations that a per-set loop cannot:
//
//  * **Subset hosting.** An exact direct-table set whose observed points are
//    a strict subset of another exact direct-table set in the same batch
//    needs no per-sample accumulation at all: its contingency table is an
//    exact integer marginal of the host's direct table (sum host keys that
//    project onto each hosted key). Direct tables materialize their whole
//    key space and never pool, so the marginal is bit-identical to
//    accumulating the hosted set directly. A first-order campaign over a
//    real design is dominated by such subsets (every probe inside a cone
//    observes a subset of the cone's root), so hosting removes most sets
//    from the hot loop entirely.
//  * **Shared observation matrix + conjunction CSE.** The remaining live
//    sets read their observed bit planes out of one shared row-indexed
//    matrix instead of gathering per set. Narrow sets (conjunction-popcount
//    regime) compile into one trie-linearized program whose expansion ops
//    are shared across every set with a common observation prefix; packed
//    sets (transpose regime) share 64-row transpose blocks, each set
//    extracting its key bits from the transposed block with a pext-style
//    gather recipe.
//  * **Plan-time regime selection.** Vertical-counter HW (t-test),
//    compacted-HW histogram, narrow conjunction, or packed transpose is
//    decided per set at plan time; the executor runs homogeneous op lists
//    with no per-sample dispatch on set shape.
//
// The plan also carries the probe-set shard partition for the campaign's
// two-dimensional (chunk x set-shard) scheduling: large probe-set counts
// scale past the chunk grid by splitting the live sets into shards that
// execute as independent work cells. Everything in the plan is a pure
// function of the batch's set descriptors and the options, so fused and
// unfused runs (and resumed ones) stay bit-identical by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sca::eval::accplan {

/// Accumulation regime chosen at plan time.
enum class AccRegime : std::uint8_t {
  kHosted,     ///< finalized as an integer marginal of a hosting set
  kNarrow,     ///< conjunction-popcount histogram (trie program)
  kPacked,     ///< shared-block transpose + pext key gather
  kCompacted,  ///< Hamming-weight pair histogram in plane space
  kTtestHw,    ///< vertical-counter Hamming weights (Welch t-test)
};

/// Per-set descriptor the planner consumes (a view into PreparedSet).
struct PlanSetInput {
  /// Observed stable-point indices, ascending (the campaign's dense order).
  const std::vector<std::size_t>* points = nullptr;
  std::size_t observation_bits = 0;  ///< points x (1 or 2 under transitions)
  bool compacted = false;
  bool direct_table = false;
};

struct PlanOptions {
  bool transitions = false;  ///< keys carry a previous-cycle half
  bool ttest = false;        ///< every set runs the HW regime
  /// Enables hosting and cross-set CSE (the fused G-test pipeline). The
  /// scalar oracle plans with fuse = false: every set stays live in its
  /// classic regime, so the oracle's work is untouched by plan structure.
  bool fuse = true;
  /// Exact sets at or below this width use the narrow conjunction regime
  /// (must stay <= 8 so the trie's combo stack is bounded and every narrow
  /// set is direct-indexed).
  std::size_t narrow_bits = 8;
  /// Requested probe-set shards for 2-D scheduling (clamped to the live-set
  /// count; 1 = classic chunk-only scheduling).
  unsigned shards = 1;
  /// Hosting searches at most this many superset candidates per set before
  /// giving up (hosting is an optimization, so capping is sound; the
  /// rarest-point index makes real searches hit in a few probes).
  std::size_t host_scan_cap = 64;
};

/// One op of a shard's straight-line narrow-conjunction program. The
/// executor keeps a stack of combo levels (level d holds the 2^d lane-mask
/// conjunctions of the first d rows on the current trie path); kExpand
/// reads level `depth` and writes level `depth + 1` from matrix row `arg`,
/// kEmit popcounts level `depth` into batch-local set `arg`'s direct table.
/// Sibling subtrees reuse the parent's level in place — the DFS
/// linearization guarantees a level is fully consumed before a sibling
/// overwrites it.
struct TrieOp {
  std::uint32_t arg = 0;
  std::uint8_t depth = 0;
  bool emit = false;
};

/// One pext-style gather step of a packed set's key recipe: extract the
/// bits selected by `mask` from the set's shard-local transposed block
/// `block` and OR them into the key at bit offset `shift`. Masks select
/// block rows in ascending order, which equals ascending key-bit order, so
/// a recipe is one pext + shift per touched block.
struct PackedGather {
  std::uint32_t block = 0;
  std::uint64_t mask = 0;
  std::uint8_t shift = 0;
};

/// Compiled accumulation of one probe set (batch-local).
struct SetAccPlan {
  static constexpr std::uint32_t kNoHost = ~std::uint32_t{0};
  AccRegime regime = AccRegime::kNarrow;
  std::uint32_t shard = 0;  ///< owning shard (live sets only)
  /// Hosting: batch-local index of the host set and the bit positions of
  /// this set's key inside the host's key (now half and, under transitions,
  /// the mirrored prev half). pext(host_key, host_mask) == hosted key.
  std::uint32_t host = kNoHost;
  std::uint64_t host_mask = 0;
  /// Observation-matrix rows of the observed points, ascending (the now
  /// half; under transitions the prev value of row r is row r + num_rows).
  std::vector<std::uint32_t> rows;
  std::vector<PackedGather> gathers;  ///< kPacked key recipe
};

/// The per-shard straight-line programs the executor replays per sample
/// buffer. Lists hold batch-local set indices.
struct ShardProgram {
  std::vector<TrieOp> trie;  ///< narrow sets, expansion CSE'd
  /// Transpose blocks: each block is <= 64 matrix rows (ascending), gathered
  /// and transposed once per (sample, limb) and shared by every packed set
  /// whose key touches it.
  std::vector<std::vector<std::uint32_t>> blocks;
  std::vector<std::uint32_t> packed;
  std::vector<std::uint32_t> compacted;
  std::vector<std::uint32_t> ttest;
};

/// The compiled batch plan.
struct AccumulationPlan {
  /// Stable-point index of each observation-matrix row (the union of the
  /// live sets' observed points, ascending). Samples snapshot exactly these
  /// signals, row-major.
  std::vector<std::size_t> rows;
  std::vector<SetAccPlan> sets;        ///< batch-local, input order
  std::vector<ShardProgram> shards;    ///< size >= 1
  /// Hosted sets in materialization order (hosts before their dependents —
  /// descending observation width works because hosts are strictly wider).
  std::vector<std::uint32_t> finalize_order;
  std::size_t hosted_sets = 0;
  std::size_t live_sets = 0;
  /// CSE diagnostics: expansion ops emitted vs. the per-set total a
  /// non-shared trie would need.
  std::size_t trie_expand_ops = 0;
  std::size_t trie_expand_ops_unshared = 0;
};

/// Compiles the batch plan. Deterministic: depends only on `sets` (order
/// included) and `options`, never on thread count or lane width.
AccumulationPlan compile_accumulation_plan(const std::vector<PlanSetInput>& sets,
                                           const PlanOptions& options);

}  // namespace sca::eval::accplan
