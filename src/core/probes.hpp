// Probe placement and extension for the robust probing models.
//
// A standard probe sits on one signal. Under the glitch-extended model it
// observes all stable signals (register outputs, primary inputs) in the
// probed signal's combinational fan-in; under the transition extension it
// additionally observes those signals' values in the previous clock cycle.
// Probes whose extended observation sets coincide are statistically
// indistinguishable, so the universe is deduplicated by observation set.
#pragma once

#include <string>
#include <vector>

#include "src/netlist/cone.hpp"
#include "src/netlist/ir.hpp"

namespace sca::eval {

enum class ProbeModel {
  kGlitch,            ///< glitch-extended probes (the paper's Section III)
  kGlitchTransition,  ///< glitch- and transition-extended (Section IV)
};

std::string to_string(ProbeModel model);

/// One deduplicated probe position.
struct Probe {
  netlist::SignalId representative = netlist::kNoSignal;
  std::string name;                         ///< representative's name
  std::vector<netlist::SignalId> observed;  ///< stable signals, ascending
  /// Names of the other probe positions folded into this one because their
  /// extended observation sets coincide (e.g. every gate of one glitch
  /// cone). The representative's verdict applies to each of them verbatim.
  std::vector<std::string> aliases;
};

/// Builds the deduplicated probe universe over all signals of `nl`.
/// When `scope_filter` is non-empty, only signals whose hierarchical name
/// starts with the prefix are probed (e.g. "sbox.kron." to focus on the
/// Kronecker delta inside a larger design).
std::vector<Probe> build_probe_universe(const netlist::Netlist& nl,
                                        const netlist::StableSupport& supports,
                                        const std::string& scope_filter = "");

/// All probe sets of size exactly `order` as index tuples into the universe.
/// Universes smaller than `order` have no sets of that size — the result is
/// empty, not an error; order 0 (and > 3) is rejected with common::Error.
std::vector<std::vector<std::size_t>> enumerate_probe_sets(
    std::size_t universe_size, unsigned order);

/// Union of the observation sets of the probes selected by `set` (indices
/// into `universe`), sorted ascending and deduplicated — the joint
/// observation a higher-order adversary sees, and the canonical key the
/// campaign and the order-2 linter dedup probe sets by. `set` must be
/// non-empty and strictly ascending (duplicate probe indices would silently
/// collapse an order-k set into a lower-order one); out-of-range or
/// ill-ordered sets throw common::Error.
std::vector<netlist::SignalId> union_observation(
    const std::vector<Probe>& universe, const std::vector<std::size_t>& set);

}  // namespace sca::eval
