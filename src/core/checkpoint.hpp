// Versioned binary snapshots of a staged campaign — the checkpoint/resume
// machinery of run_fixed_vs_random.
//
// A snapshot freezes the campaign at a stage boundary: which table batches
// are finalized (their exact ProbeSetResults), how many stages of the
// in-progress batch have run (the chunk cursor), and the master accumulators
// of that batch, bit-exact. No RNG state is stored — every chunk draws from
// an independent stream seeded by chunk_seed(seed, chunk), so the cursor
// alone determines every remaining draw. Because stages partition the fixed
// chunk grid, a resumed campaign replays the identical merge sequence the
// uninterrupted one would have run, for any thread count.
//
// Cross-path contract: the fingerprint deliberately excludes the thread
// count, accumulation path (fused plan vs scalar oracle), SIMD lane width,
// and kernel choice — all are bit-identity-irrelevant by construction. The
// snapshot stores only fully-materialized master accumulators: hosted sets
// (finalized as integer marginals of a hosting set by the accumulation
// plan) are materialized at every stage boundary before saving, so a
// snapshot written by the fused pipeline is byte-indistinguishable from
// one written by the scalar oracle at the same cursor, and resume works
// across paths in both directions (tests/checkpoint_test.cpp,
// Checkpoint.ResumeAcrossAccumulationPaths).
//
// On-disk format: an 8-byte magic, a version word, a length-prefixed
// payload, and an FNV-1a checksum of the payload; writes go through a
// temp file + rename so a crash mid-save never corrupts a previous good
// snapshot. load_checkpoint throws common::Error on any truncation,
// checksum mismatch, or malformed field — corrupted snapshots are rejected,
// never interpreted.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/campaign.hpp"
#include "src/stats/gtest_stat.hpp"
#include "src/stats/ttest.hpp"

namespace sca::eval {

/// Master accumulators of one probe set of the in-progress batch.
struct SetSnapshot {
  bool has_table = false;  ///< G-test set (table) vs t-test set (moments)
  stats::FlatCountTable table;
  std::array<stats::MomentAccumulator, 2> moments;
};

/// Everything needed to continue a staged campaign from a stage boundary.
struct CampaignSnapshot {
  /// FNV-1a fingerprint of the campaign configuration (seed, budget, chunk
  /// grid, stage schedule, batch ranges, probe-set names, ...). Resume
  /// refuses a snapshot whose fingerprint does not match the options —
  /// thread count and accumulation regime are deliberately excluded, since
  /// both are bit-identical by contract and resuming across them is sound.
  std::uint64_t fingerprint = 0;
  std::uint64_t num_chunks = 0;
  std::uint64_t batches_total = 0;
  std::uint64_t batch_index = 0;  ///< batches fully finalized so far
  std::uint64_t stages_done = 0;  ///< stages finished in the current batch
  std::uint64_t streak = 0;       ///< consecutive over-margin stages so far
  bool early_stopped = false;
  bool complete = false;  ///< campaign finished; resume returns immediately
  // Cumulative counters, so a resumed result reports whole-campaign totals.
  std::uint64_t total_cycles = 0;
  std::uint64_t simulations_done = 0;
  double simulate_seconds = 0.0;
  double accumulate_seconds = 0.0;
  double merge_seconds = 0.0;
  /// Exact results of the finalized batches, in evaluation order.
  std::vector<ProbeSetResult> finished;
  /// Master accumulators of the in-progress batch (empty when stages_done
  /// is 0 or the snapshot is a batch boundary).
  std::vector<SetSnapshot> sets;
};

/// Atomically writes `snapshot` to `path` (temp file + rename).
void save_checkpoint(const std::string& path, const CampaignSnapshot& snapshot);

/// Loads a snapshot; throws common::Error if the file is missing, truncated,
/// checksum-corrupt, or structurally malformed.
CampaignSnapshot load_checkpoint(const std::string& path);

}  // namespace sca::eval
