#include "src/core/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/check.hpp"
#include "src/common/serialize.hpp"

namespace sca::eval {

using common::require;

namespace {

constexpr char kMagic[8] = {'S', 'C', 'A', 'C', 'K', 'P', 'T', '1'};
// Version 2: the campaign switched to the counter-mode PRG (and wide-run
// aligned chunk grids), so counts in version-1 snapshots were drawn from a
// different randomness sequence and must not be resumed from.
constexpr std::uint64_t kVersion = 2;

// Caps on vector lengths read from disk, so a corrupted count cannot
// trigger an absurd allocation before the checksum check would catch it.
constexpr std::uint64_t kMaxSets = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxRepresentatives = std::uint64_t{1} << 16;

void write_result(std::ostream& os, const ProbeSetResult& r) {
  common::write_string(os, r.name);
  common::write_u64(os, r.representatives.size());
  for (auto s : r.representatives) common::write_u64(os, s);
  common::write_u64(os, r.observation_bits);
  common::write_u8(os, r.compacted ? 1 : 0);
  common::write_f64(os, r.g.g);
  common::write_u64(os, r.g.df);
  common::write_f64(os, r.g.minus_log10_p);
  common::write_u64(os, r.g.bins);
  common::write_u64(os, r.g.n_fixed);
  common::write_u64(os, r.g.n_random);
  common::write_f64(os, r.t.t);
  common::write_f64(os, r.t.degrees_of_freedom);
  common::write_u64(os, r.t.n_fixed);
  common::write_u64(os, r.t.n_random);
  common::write_f64(os, r.severity);
  common::write_f64(os, r.minus_log10_p);
  common::write_u8(os, r.leaking ? 1 : 0);
}

ProbeSetResult read_result(std::istream& is) {
  ProbeSetResult r;
  r.name = common::read_string(is);
  const std::uint64_t nrep = common::read_u64(is);
  require(nrep <= kMaxRepresentatives,
          "checkpoint: representative count out of range");
  r.representatives.reserve(static_cast<std::size_t>(nrep));
  for (std::uint64_t i = 0; i < nrep; ++i)
    r.representatives.push_back(
        static_cast<netlist::SignalId>(common::read_u64(is)));
  r.observation_bits = common::read_u64(is);
  r.compacted = common::read_u8(is) != 0;
  r.g.g = common::read_f64(is);
  r.g.df = common::read_u64(is);
  r.g.minus_log10_p = common::read_f64(is);
  r.g.bins = common::read_u64(is);
  r.g.n_fixed = common::read_u64(is);
  r.g.n_random = common::read_u64(is);
  r.t.t = common::read_f64(is);
  r.t.degrees_of_freedom = common::read_f64(is);
  r.t.n_fixed = common::read_u64(is);
  r.t.n_random = common::read_u64(is);
  r.severity = common::read_f64(is);
  r.minus_log10_p = common::read_f64(is);
  r.leaking = common::read_u8(is) != 0;
  return r;
}

void write_payload(std::ostream& os, const CampaignSnapshot& snap) {
  common::write_u64(os, snap.fingerprint);
  common::write_u64(os, snap.num_chunks);
  common::write_u64(os, snap.batches_total);
  common::write_u64(os, snap.batch_index);
  common::write_u64(os, snap.stages_done);
  common::write_u64(os, snap.streak);
  common::write_u8(os, snap.early_stopped ? 1 : 0);
  common::write_u8(os, snap.complete ? 1 : 0);
  common::write_u64(os, snap.total_cycles);
  common::write_u64(os, snap.simulations_done);
  common::write_f64(os, snap.simulate_seconds);
  common::write_f64(os, snap.accumulate_seconds);
  common::write_f64(os, snap.merge_seconds);
  common::write_u64(os, snap.finished.size());
  for (const auto& r : snap.finished) write_result(os, r);
  common::write_u64(os, snap.sets.size());
  for (const auto& s : snap.sets) {
    common::write_u8(os, s.has_table ? 1 : 0);
    if (s.has_table) {
      s.table.serialize(os);
    } else {
      s.moments[0].serialize(os);
      s.moments[1].serialize(os);
    }
  }
}

CampaignSnapshot read_payload(std::istream& is) {
  CampaignSnapshot snap;
  snap.fingerprint = common::read_u64(is);
  snap.num_chunks = common::read_u64(is);
  snap.batches_total = common::read_u64(is);
  snap.batch_index = common::read_u64(is);
  snap.stages_done = common::read_u64(is);
  snap.streak = common::read_u64(is);
  snap.early_stopped = common::read_u8(is) != 0;
  snap.complete = common::read_u8(is) != 0;
  snap.total_cycles = common::read_u64(is);
  snap.simulations_done = common::read_u64(is);
  snap.simulate_seconds = common::read_f64(is);
  snap.accumulate_seconds = common::read_f64(is);
  snap.merge_seconds = common::read_f64(is);
  const std::uint64_t nfinished = common::read_u64(is);
  require(nfinished <= kMaxSets, "checkpoint: finished count out of range");
  snap.finished.reserve(static_cast<std::size_t>(nfinished));
  for (std::uint64_t i = 0; i < nfinished; ++i)
    snap.finished.push_back(read_result(is));
  const std::uint64_t nsets = common::read_u64(is);
  require(nsets <= kMaxSets, "checkpoint: set count out of range");
  snap.sets.reserve(static_cast<std::size_t>(nsets));
  for (std::uint64_t i = 0; i < nsets; ++i) {
    SetSnapshot s;
    s.has_table = common::read_u8(is) != 0;
    if (s.has_table) {
      s.table = stats::FlatCountTable::deserialize(is);
    } else {
      s.moments[0] = stats::MomentAccumulator::deserialize(is);
      s.moments[1] = stats::MomentAccumulator::deserialize(is);
    }
    snap.sets.push_back(std::move(s));
  }
  return snap;
}

}  // namespace

void save_checkpoint(const std::string& path,
                     const CampaignSnapshot& snapshot) {
  std::ostringstream payload;
  write_payload(payload, snapshot);
  const std::string bytes = payload.str();
  const std::uint64_t checksum =
      common::Fnv1a().feed_bytes(bytes.data(), bytes.size()).value();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    require(os.good(), "checkpoint: cannot open " + tmp + " for writing");
    os.write(kMagic, sizeof(kMagic));
    common::write_u64(os, kVersion);
    common::write_u64(os, bytes.size());
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    common::write_u64(os, checksum);
    os.flush();
    require(os.good(), "checkpoint: write to " + tmp + " failed");
  }
  require(std::rename(tmp.c_str(), path.c_str()) == 0,
          "checkpoint: rename to " + path + " failed");
}

CampaignSnapshot load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  require(is.good(), "checkpoint: cannot open " + path);
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(kMagic));
  require(is.gcount() == sizeof(kMagic) &&
              std::equal(magic, magic + sizeof(kMagic), kMagic),
          "checkpoint: " + path + " is not a campaign snapshot (bad magic)");
  const std::uint64_t version = common::read_u64(is);
  require(version == kVersion,
          "checkpoint: unsupported snapshot version in " + path);
  const std::uint64_t size = common::read_u64(is);
  require(size <= (std::uint64_t{1} << 40),
          "checkpoint: payload size out of range in " + path);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(size));
  require(static_cast<std::uint64_t>(is.gcount()) == size,
          "checkpoint: " + path + " is truncated");
  const std::uint64_t checksum = common::read_u64(is);
  const std::uint64_t actual =
      common::Fnv1a().feed_bytes(bytes.data(), bytes.size()).value();
  require(checksum == actual,
          "checkpoint: " + path + " is corrupt (checksum mismatch)");

  std::istringstream payload(bytes);
  CampaignSnapshot snap = read_payload(payload);
  // The payload must be consumed exactly: trailing bytes mean a malformed
  // writer or silent corruption the field reads happened to tolerate.
  payload.peek();
  require(payload.eof(), "checkpoint: " + path + " has trailing bytes");
  return snap;
}

}  // namespace sca::eval
