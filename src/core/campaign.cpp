#include "src/core/campaign.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/bitops.hpp"
#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/common/serialize.hpp"
#include "src/common/simd.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/accplan.hpp"
#include "src/core/checkpoint.hpp"
#include "src/sim/simulator.hpp"

namespace sca::eval {

using common::CounterPrg;
using common::require;
using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

namespace {

// Share inputs of one secret group arranged as [share][bit] -> signal, plus
// the per-campaign constants of the group (value mask, fixed-group secret)
// hoisted out of the per-cycle input-feeding loop.
struct GroupInputs {
  std::uint32_t group = 0;
  std::vector<std::vector<SignalId>> share_bits;  // [share][bit]
  std::uint32_t bits = 0;
  std::uint8_t value_mask = 0;   // (1 << bits) - 1
  std::uint8_t fixed_byte = 0;   // fixed-group secret, pre-masked
};

std::vector<GroupInputs> collect_groups(
    const Netlist& nl,
    const std::map<std::uint32_t, std::uint8_t>& fixed_values) {
  std::map<std::uint32_t, GroupInputs> groups;
  for (const auto& in : nl.inputs()) {
    if (in.role != InputRole::kShare) continue;
    GroupInputs& g = groups[in.share.secret];
    g.group = in.share.secret;
    if (g.share_bits.size() <= in.share.share)
      g.share_bits.resize(in.share.share + 1);
    auto& bits = g.share_bits[in.share.share];
    if (bits.size() <= in.share.bit) bits.resize(in.share.bit + 1, netlist::kNoSignal);
    bits[in.share.bit] = in.signal;
    g.bits = std::max(g.bits, in.share.bit + 1);
  }
  std::vector<GroupInputs> out;
  for (auto& [id, g] : groups) {
    require(g.bits <= 8, "campaign: secret groups wider than 8 bits unsupported");
    for (const auto& share : g.share_bits) {
      require(share.size() == g.bits, "campaign: ragged share inputs");
      for (SignalId s : share)
        require(s != netlist::kNoSignal, "campaign: missing share input bit");
    }
    g.value_mask = g.bits >= 8 ? std::uint8_t{0xFF}
                               : static_cast<std::uint8_t>((1u << g.bits) - 1);
    if (auto it = fixed_values.find(g.group); it != fixed_values.end())
      g.fixed_byte = static_cast<std::uint8_t>(it->second & g.value_mask);
    out.push_back(std::move(g));
  }
  require(!out.empty(), "campaign: netlist declares no share inputs");
  return out;
}

// One evaluated probe set after union-dedup: the union of the constituent
// probes' observations, as dense stable indices.
struct PreparedSet {
  std::string name;
  std::vector<SignalId> representatives;
  std::vector<std::size_t> dense;  // indices into stable_points
  std::size_t observation_bits = 0;
  bool compacted = false;
  bool direct_table = false;  // exact keys small enough to direct-index
  std::vector<std::string> aliases;  // folded probes / probe sets
  stats::FlatCountTable table;                     // G-test mode
  std::array<stats::MomentAccumulator, 2> moments;  // t-test mode
};

// One buffered sample: the observation-matrix row values at the sample cycle
// and, for transition models, the cycle before. Row-major limb layout over
// the batch plan's rows (the union of the live sets' observed points): the
// limbs() lane words of matrix row r sit at [r * limbs, (r + 1) * limbs), so
// an observation word loads as one SimdWord. `active` is the number of limbs
// carrying real runs (the last wide run of a chunk may be a tail; inactive
// limbs hold don't-care values and are never accumulated).
struct Sample {
  std::vector<std::uint64_t> now;
  std::vector<std::uint64_t> prev;
  int group = 0;
  unsigned active = 1;
};

// FNV-1a over the signal ids of a sorted observation vector — probe-set
// dedup key. The map still compares full vectors on hash collision, so a
// collision can never merge distinct sets.
struct ObservationHash {
  std::size_t operator()(const std::vector<SignalId>& v) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (SignalId s : v) {
      h ^= static_cast<std::uint64_t>(s);
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

// Accumulators of one work cell (chunk x probe-set shard) for the probe sets
// of one batch; merged into the master accumulators in cell order. G-test
// sets use flat count tables (direct-indexed or open-addressed — no
// per-observation node allocation); t-test sets accumulate an integer
// Hamming-weight histogram per group, folded into the master moment
// accumulators as weighted adds. Entries for sets owned by other shards (or
// hosted sets) stay empty, and merging an empty table is a no-op.
struct ChunkAccumulators {
  std::vector<stats::FlatCountTable> tables;
  std::vector<std::array<std::vector<std::uint64_t>, 2>> hw_hist;
};

// Per-worker scratch: a private simulator over the shared schedule,
// reusable snapshot buffers, bit-sliced accumulation scratch, per-phase
// timers — and the worker-lifetime direct-indexed tables. Direct tables
// materialize their whole key space, so merging them is a commutative
// integer array add: a worker accumulates them across every cell it runs
// and folds into the master exactly once (the thread pool's finalize hook),
// skipping the cell-ordered reduction without costing determinism.
struct WorkerCtx {
  explicit WorkerCtx(const sim::Schedule& schedule) : simulator(schedule) {}
  sim::Simulator simulator;
  std::vector<std::uint64_t> prev_snapshot;
  std::vector<stats::FlatCountTable> direct_tables;
  std::vector<std::uint64_t> block_scratch;  // packed-regime staging tiles
  double simulate_seconds = 0.0;
  double accumulate_seconds = 0.0;
  double extract_seconds = 0.0;
  double transpose_seconds = 0.0;
  double histogram_seconds = 0.0;
};

// Exact probe sets at or below this observation width use the
// conjunction-popcount histogram (no transpose, no per-lane work). Must
// stay below FlatCountTable::kMaxDirectBits so those sets always hit the
// direct-indexed table mode, where add() order cannot matter. 8 balances
// the 2^bits expansion cost against the transpose path's per-lane table
// updates (measured via SCA_DEBUG_ACC on the E2 campaign; the expansion
// is one vector op per combo, so it wins as long as the per-key popcount
// vectorizes).
constexpr std::size_t kPopcountBits = 8;

// SCA_DEBUG_ACC=1 breaks the accumulate phase down by path (cumulative
// process-wide nanoseconds, printed to stderr after every campaign) — the
// profiling hook behind the kernel's throughput tuning.
struct AccPathNanos {
  std::atomic<std::uint64_t> ttest{0};
  std::atomic<std::uint64_t> scalar{0};
  std::atomic<std::uint64_t> compacted{0};
  std::atomic<std::uint64_t> narrow{0};
  std::atomic<std::uint64_t> packed{0};
};
AccPathNanos g_acc_path_nanos;

bool acc_debug_enabled() {
  static const bool on = std::getenv("SCA_DEBUG_ACC") != nullptr;
  return on;
}

void report_acc_debug() {
  if (!acc_debug_enabled()) return;
  const AccPathNanos& n = g_acc_path_nanos;
  std::fprintf(stderr,
               "accumulate paths (cumulative): ttest %.3fs scalar %.3fs "
               "compacted %.3fs narrow %.3fs packed %.3fs\n",
               n.ttest.load() * 1e-9, n.scalar.load() * 1e-9,
               n.compacted.load() * 1e-9, n.narrow.load() * 1e-9,
               n.packed.load() * 1e-9);
}

void debug_charge(std::atomic<std::uint64_t>& bucket,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
  if (acc_debug_enabled())
    bucket += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Stage-count resolution, mirroring resolve_threads: an explicit request
// wins, else the SCA_STAGES environment variable, else 1 (the classic
// single-pass campaign).
unsigned resolve_stages(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SCA_STAGES")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 1;
}

}  // namespace

std::vector<const ProbeSetResult*> CampaignResult::top(std::size_t n) const {
  std::vector<const ProbeSetResult*> out;
  for (const auto& r : results) {
    if (out.size() >= n) break;
    out.push_back(&r);
  }
  return out;
}

CampaignResult run_fixed_vs_random(const Netlist& nl,
                                   const CampaignOptions& options) {
  nl.validate();
  require(options.order >= 1 && options.order <= 2,
          "campaign: supported orders are 1 and 2");
  require(options.sample_interval >= 1, "campaign: sample_interval must be >= 1");
  const bool ttest = options.statistic == Statistic::kWelchTTest;
  require(!ttest || options.order == 1,
          "campaign: the Welch t-test statistic supports order 1 only");

  const netlist::StableSupport supports(nl);
  const std::vector<Probe> universe =
      build_probe_universe(nl, supports, options.probe_scope_filter);
  require(!universe.empty(), "campaign: no probes (check probe_scope_filter)");

  const std::vector<SignalId>& stable_points = supports.stable_points();
  std::unordered_map<SignalId, std::size_t> dense_index;
  for (std::size_t i = 0; i < stable_points.size(); ++i)
    dense_index[stable_points[i]] = i;

  // Exact keys are only sound when the full key space fits the table: once
  // the bin cap forces overflow pooling, the group whose observations have
  // higher entropy pools more of its mass and a spurious group difference
  // appears. So: compact (Hamming-weight observations) whenever 2^bits
  // could exceed the cap; exact keys must also fit a 64-bit word. The cap
  // depends only on the options — computed once, not per probe set.
  std::size_t bin_cap_bits = 0;
  while ((std::size_t{2} << bin_cap_bits) <= options.max_bins_per_set &&
         bin_cap_bits < 60)
    ++bin_cap_bits;
  const std::size_t exact_limit =
      std::min({options.max_observation_bits, bin_cap_bits, std::size_t{60}});

  // Enumerate probe sets and dedupe by union observation: a pair whose union
  // equals another set's union (including any single probe) is statistically
  // identical, so only the first instance is evaluated — later hits ride
  // along as aliases of the canonical set (the verdict fan-out), and probes
  // folded at universe build seed the order-1 sets' alias lists.
  const bool transitions = options.model == ProbeModel::kGlitchTransition;
  std::vector<PreparedSet> prepared;
  std::size_t dropped = 0;
  {
    std::unordered_map<std::vector<SignalId>, std::size_t, ObservationHash>
        seen;
    const auto sets = enumerate_probe_sets(universe.size(), options.order);
    seen.reserve(sets.size());
    for (const auto& set : sets) {
      std::vector<SignalId> observed = union_observation(universe, set);
      if (auto it = seen.find(observed); it != seen.end()) {
        std::string alias;
        for (std::size_t pi : set) {
          if (!alias.empty()) alias += " & ";
          alias += universe[pi].name;
        }
        prepared[it->second].aliases.push_back(std::move(alias));
        continue;
      }
      if (options.max_probe_sets && prepared.size() >= options.max_probe_sets) {
        ++dropped;
        continue;
      }
      const auto [seen_it, inserted] =
          seen.emplace(std::move(observed), prepared.size());
      SCA_ASSERT(inserted, "campaign: probe-set dedup raced");
      const std::vector<SignalId>& obs = seen_it->first;
      PreparedSet p;
      for (std::size_t pi : set) {
        if (!p.name.empty()) p.name += " & ";
        p.name += universe[pi].name;
        p.representatives.push_back(universe[pi].representative);
      }
      if (set.size() == 1) p.aliases = universe[set[0]].aliases;
      p.dense.reserve(obs.size());
      for (SignalId sig : obs) p.dense.push_back(dense_index.at(sig));
      p.observation_bits = obs.size() * (transitions ? 2 : 1);
      p.compacted = p.observation_bits > exact_limit;
      p.direct_table = !p.compacted &&
                       p.observation_bits <= stats::FlatCountTable::kMaxDirectBits;
      p.table.set_bin_limit(options.max_bins_per_set);
      if (p.direct_table)
        p.table.init_direct(static_cast<unsigned>(p.observation_bits));
      prepared.push_back(std::move(p));
    }
  }
  std::size_t aliased_probe_sets = 0;
  for (const PreparedSet& p : prepared) aliased_probe_sets += p.aliases.size();

  if (std::getenv("SCA_DEBUG_SETS")) {
    std::map<std::size_t, std::size_t> exact_hist, compact_hist;
    for (const auto& p : prepared)
      (p.compacted ? compact_hist : exact_hist)[p.observation_bits]++;
    std::fprintf(stderr, "sets=%zu exact:", prepared.size());
    for (auto [b, n] : exact_hist) std::fprintf(stderr, " %zub x%zu", b, n);
    std::fprintf(stderr, " | compacted:");
    for (auto [b, n] : compact_hist) std::fprintf(stderr, " %zub x%zu", b, n);
    std::fprintf(stderr, "\n");
  }

  const std::vector<GroupInputs> groups =
      collect_groups(nl, options.fixed_values);

  std::vector<SignalId> plain_randoms;
  {
    std::unordered_set<SignalId> nonzero_members;
    for (const auto& bus : options.nonzero_random_buses)
      for (SignalId s : bus) nonzero_members.insert(s);
    for (const auto& in : nl.inputs())
      if (in.role == InputRole::kRandom && !nonzero_members.contains(in.signal))
        plain_randoms.push_back(in.signal);
  }

  // Lane width and kernel: the compiled levelized tape at the resolved
  // width by default, the interpreted 64-lane reference on request (the
  // oracle the tape is tested against). The campaign only ever reads
  // stable points, so the tape is dead-gate-eliminated against them.
  require(!options.interpreted_kernel || options.lanes == 0 ||
              options.lanes == 64,
          "campaign: the interpreted oracle kernel runs 64 lanes only");
  const unsigned lanes =
      options.interpreted_kernel ? 64 : common::resolve_lanes(options.lanes);
  const unsigned limbs = lanes / 64;
  constexpr unsigned kMaxLimbs = 8;

  // Shared read-only evaluation plan; every worker simulator runs over it.
  sim::ScheduleOptions schedule_options;
  schedule_options.lanes = lanes;
  schedule_options.compile = !options.interpreted_kernel;
  schedule_options.observed = stable_points;
  const sim::Schedule schedule(nl, schedule_options);
  const unsigned threads = common::resolve_threads(options.threads);

  // Fresh randomness comes from the counter-mode PRG: every drawn word is
  // a pure function of (seed, cycle, slot, word index), where `cycle` is
  // the absolute simulated cycle of a 64-lane run,
  //
  //   cycle = (run * 2 + group) * cycles_per_group + cycle_in_group,
  //
  // and `slot` numbers the fresh-randomness consumers statically: per
  // secret group one secret slot and one slot per drawn share, then the
  // plain random inputs, then the nonzero buses. Addressing draws by
  // absolute run (not by chunk stream position) is what makes the
  // statistics bit-identical for every lane width, thread count, chunk
  // partition, and checkpoint/resume split.
  struct GroupSlots {
    std::uint32_t secret = 0;
    std::uint32_t shares0 = 0;  // slot of share 0; share sh at shares0 + sh
  };
  std::vector<GroupSlots> group_slots;
  std::uint32_t prg_slots = 0;
  for (const GroupInputs& g : groups) {
    GroupSlots gs;
    gs.secret = prg_slots++;
    gs.shares0 = prg_slots;
    prg_slots += static_cast<std::uint32_t>(g.share_bits.size() - 1);
    group_slots.push_back(gs);
  }
  const std::uint32_t plain_slot0 = prg_slots;
  prg_slots += static_cast<std::uint32_t>(plain_randoms.size());
  const std::uint32_t bus_slot0 = prg_slots;
  prg_slots += static_cast<std::uint32_t>(options.nonzero_random_buses.size());

  const std::size_t samples_per_run =
      std::max<std::size_t>(1, options.samples_per_run);
  const std::size_t cycles_per_group =
      options.warmup_cycles + samples_per_run * options.sample_interval;

  // Feeds one cycle of inputs for a wide run covering the 64-lane runs
  // [run0, run0 + active). Secrets and masks are drawn directly as bit
  // planes (word index = bit plane), XOR-sharing happens in plane space,
  // and nonzero bytes are rejection-sampled in plane space: a lane whose
  // drawn byte is zero takes the next 8-word block of its stream until
  // every lane is nonzero.
  // Null calibration turns the campaign into random-vs-random: the "fixed"
  // group draws fresh secrets too (from the same counter coordinates), so
  // the null hypothesis holds by construction and any verdict is a false
  // positive of the statistic.
  const bool null_calibration = options.null_calibration;
  auto feed_cycle = [&](sim::Simulator& simulator, const CounterPrg& prg,
                        std::size_t run0, unsigned active, int group,
                        std::size_t cycle_in_group) {
    std::uint64_t cyc[kMaxLimbs];
    for (unsigned b = 0; b < active; ++b)
      cyc[b] = (static_cast<std::uint64_t>(run0 + b) * 2 +
                static_cast<std::uint64_t>(group)) *
                   cycles_per_group +
               cycle_in_group;
    const bool fixed_group = group == 0;
    std::uint64_t acc[8][kMaxLimbs];
    std::uint64_t mask_plane[8][kMaxLimbs];
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const GroupInputs& g = groups[gi];
      const GroupSlots& gs = group_slots[gi];
      if (fixed_group && !null_calibration) {
        for (std::uint32_t p = 0; p < g.bits; ++p) {
          const std::uint64_t w =
              (g.fixed_byte >> p) & 1u ? ~std::uint64_t{0} : 0;
          for (unsigned b = 0; b < active; ++b) acc[p][b] = w;
        }
      } else {
        for (unsigned b = 0; b < active; ++b) {
          const CounterPrg::Stream s = prg.stream(cyc[b], gs.secret);
          for (std::uint32_t p = 0; p < g.bits; ++p)
            acc[p][b] = CounterPrg::word_at(s, p);
        }
      }
      const std::size_t num_shares = g.share_bits.size();
      for (std::size_t sh = 0; sh + 1 < num_shares; ++sh) {
        for (unsigned b = 0; b < active; ++b) {
          const CounterPrg::Stream s =
              prg.stream(cyc[b], gs.shares0 + static_cast<std::uint32_t>(sh));
          for (std::uint32_t p = 0; p < g.bits; ++p) {
            const std::uint64_t m = CounterPrg::word_at(s, p);
            mask_plane[p][b] = m;
            acc[p][b] ^= m;
          }
        }
        for (std::uint32_t p = 0; p < g.bits; ++p) {
          std::uint64_t* dst = simulator.input_limbs(g.share_bits[sh][p]);
          for (unsigned b = 0; b < active; ++b) dst[b] = mask_plane[p][b];
        }
      }
      for (std::uint32_t p = 0; p < g.bits; ++p) {
        std::uint64_t* dst =
            simulator.input_limbs(g.share_bits[num_shares - 1][p]);
        for (unsigned b = 0; b < active; ++b) dst[b] = acc[p][b];
      }
    }
    for (std::size_t i = 0; i < plain_randoms.size(); ++i) {
      std::uint64_t* dst = simulator.input_limbs(plain_randoms[i]);
      const std::uint32_t slot = plain_slot0 + static_cast<std::uint32_t>(i);
      for (unsigned b = 0; b < active; ++b)
        dst[b] = CounterPrg::word_at(prg.stream(cyc[b], slot), 0);
    }
    for (std::size_t bi = 0; bi < options.nonzero_random_buses.size(); ++bi) {
      const gadgets::Bus& bus = options.nonzero_random_buses[bi];
      const std::uint32_t slot = bus_slot0 + static_cast<std::uint32_t>(bi);
      const std::size_t nbits = bus.size();
      SCA_ASSERT(nbits >= 1 && nbits <= 8,
                 "campaign: nonzero buses are 1..8 bits");
      std::uint64_t planes[8][kMaxLimbs];
      for (unsigned b = 0; b < active; ++b) {
        const CounterPrg::Stream s = prg.stream(cyc[b], slot);
        std::uint64_t pl[8];
        std::uint64_t nonzero = 0;
        for (std::size_t p = 0; p < nbits; ++p) {
          pl[p] = CounterPrg::word_at(s, static_cast<std::uint32_t>(p));
          nonzero |= pl[p];
        }
        std::uint32_t widx = 8;
        for (std::uint64_t zero = ~nonzero; zero; widx += 8) {
          std::uint64_t redrawn = 0;
          for (std::size_t p = 0; p < nbits; ++p) {
            const std::uint64_t d =
                CounterPrg::word_at(s, widx + static_cast<std::uint32_t>(p));
            pl[p] |= d & zero;
            redrawn |= d;
          }
          zero &= ~redrawn;
        }
        for (std::size_t p = 0; p < nbits; ++p) planes[p][b] = pl[p];
      }
      for (std::size_t p = 0; p < nbits; ++p) {
        std::uint64_t* dst = simulator.input_limbs(bus[p]);
        for (unsigned b = 0; b < active; ++b) dst[b] = planes[p][b];
      }
    }
  };

  // Samples snapshot exactly the batch plan's observation-matrix rows —
  // the union of the live sets' observed points — not the full stable set.
  auto snapshot_rows = [&](const sim::Simulator& simulator,
                           const std::vector<SignalId>& row_signals,
                           std::vector<std::uint64_t>& into) {
    into.resize(row_signals.size() * limbs);
    std::uint64_t* out = into.data();
    for (std::size_t i = 0; i < row_signals.size(); ++i)
      std::memcpy(out + i * limbs, simulator.value_limbs(row_signals[i]),
                  limbs * sizeof(std::uint64_t));
  };

  // Executes one shard of the batch's compiled accumulation plan over a
  // buffer of samples. Regime-homogeneous phases replace the old per-set
  // dispatch:
  //
  //  * t-test: per-lane Hamming weights from a vertical counter (bit-sliced)
  //    or the per-bit scalar reference.
  //  * scalar oracle: the per-bit reference loop over every set, untouched
  //    by plan structure (the plan compiles with fuse = false, so no set is
  //    hosted and no work is shared — the oracle stays an oracle).
  //  * narrow (trie): one straight-line conjunction program per shard whose
  //    expansion ops are shared across sets with a common observation
  //    prefix; emits popcount a whole 2^bits histogram per limb word.
  //  * compacted: Hamming-weight pairs histogrammed in plane space.
  //  * packed: shared transpose blocks staged per sample tile — gather the
  //    blocks' matrix rows (extract), transpose each 64x64 block once
  //    (transpose), then every packed set pext-gathers its key bits from
  //    the transposed columns (histogram). One transpose serves every set
  //    touching the block.
  //
  // The bit-sliced path never leaves lane-word space until the final
  // histogram update, and inactive tail limbs are never read. Both paths
  // feed identical integer counts into identical downstream operations, so
  // their statistics are bit-identical (asserted by tests): direct tables
  // are order-free integer arrays, and hashed chunk tables are unlimited
  // (pooling only happens at the sorted master merge).
  const bool bitsliced = options.accumulation == Accumulation::kBitSliced;
  auto accumulate_impl = [&]<unsigned kLimbs>(
                             const accplan::AccumulationPlan& plan,
                             const std::vector<Sample>& buf,
                             std::size_t shard_idx, ChunkAccumulators& acc,
                             std::vector<stats::FlatCountTable>& direct_tables,
                             WorkerCtx& ctx) {
    using Word = common::SimdWord<kLimbs>;
    const accplan::ShardProgram& prog = plan.shards[shard_idx];
    const std::size_t num_rows = plan.rows.size();
    const auto code_word = [&](const Sample& sample, std::uint32_t code) {
      return code < num_rows
                 ? Word::load(sample.now.data() +
                              static_cast<std::size_t>(code) * kLimbs)
                 : Word::load(sample.prev.data() +
                              (static_cast<std::size_t>(code) - num_rows) *
                                  kLimbs);
    };
    const auto code_limb = [&](const Sample& sample, std::size_t code,
                               unsigned b) {
      return code < num_rows ? sample.now[code * kLimbs + b]
                             : sample.prev[(code - num_rows) * kLimbs + b];
    };

    if (ttest) {
      const auto t0 = std::chrono::steady_clock::now();
      common::WideVerticalCounter<kLimbs> vc;
      std::array<std::uint16_t, 64> hw{};
      for (std::uint32_t l : prog.ttest) {
        const accplan::SetAccPlan& sp = plan.sets[l];
        auto& hist = acc.hw_hist[l];
        for (const Sample& sample : buf) {
          auto& h = hist[static_cast<std::size_t>(sample.group)];
          if (bitsliced) {
            // TVLA: per-lane Hamming weight of the (extended) observation,
            // all lanes per vertical-counter pass.
            vc.clear();
            for (std::uint32_t r : sp.rows) vc.add(code_word(sample, r));
            if (transitions)
              for (std::uint32_t r : sp.rows)
                vc.add(code_word(
                    sample, r + static_cast<std::uint32_t>(num_rows)));
            for (unsigned b = 0; b < sample.active; ++b) {
              vc.lane_counts(b, hw.data());
              for (unsigned lane = 0; lane < 64; ++lane) ++h[hw[lane]];
            }
          } else {
            for (unsigned b = 0; b < sample.active; ++b) {
              for (unsigned lane = 0; lane < 64; ++lane) {
                unsigned w = 0;
                for (std::uint32_t r : sp.rows) {
                  w += (sample.now[r * kLimbs + b] >> lane) & 1u;
                  if (transitions)
                    w += (sample.prev[r * kLimbs + b] >> lane) & 1u;
                }
                ++h[w];
              }
            }
          }
        }
      }
      debug_charge(g_acc_path_nanos.ttest, t0, std::chrono::steady_clock::now());
      return;
    }

    if (!bitsliced) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t l = 0; l < plan.sets.size(); ++l) {
        const accplan::SetAccPlan& sp = plan.sets[l];
        stats::FlatCountTable& table =
            direct_tables[l].direct_mode() ? direct_tables[l] : acc.tables[l];
        const bool compacted = sp.regime == accplan::AccRegime::kCompacted;
        for (const Sample& sample : buf) {
          for (unsigned b = 0; b < sample.active; ++b) {
            for (unsigned lane = 0; lane < 64; ++lane) {
              std::uint64_t key;
              if (compacted) {
                // Compact mode: per-cycle Hamming weight of the observation.
                unsigned hn = 0, hp = 0;
                for (std::uint32_t r : sp.rows) {
                  hn += (sample.now[r * kLimbs + b] >> lane) & 1u;
                  if (transitions)
                    hp += (sample.prev[r * kLimbs + b] >> lane) & 1u;
                }
                key = hn * 257u + hp;
              } else {
                std::uint64_t obs = 0;
                std::size_t bit = 0;
                for (std::uint32_t r : sp.rows)
                  obs |= ((sample.now[r * kLimbs + b] >> lane) & 1u) << bit++;
                if (transitions)
                  for (std::uint32_t r : sp.rows)
                    obs |= ((sample.prev[r * kLimbs + b] >> lane) & 1u)
                           << bit++;
                key = obs;
              }
              table.add(key, sample.group);
            }
          }
        }
      }
      debug_charge(g_acc_path_nanos.scalar, t0,
                   std::chrono::steady_clock::now());
      return;
    }

    if (!prog.trie.empty()) {
      // Narrow exact sets (the bulk of a first-order campaign): the whole
      // 2^bits histogram of a sample comes from conjunction popcounts —
      // level[key] has lane L set iff lane L observed `key` — with no
      // transpose and no per-lane work at all. The trie program shares
      // expansion ops across every set with a common observation prefix;
      // sibling subtrees reuse a level in place after it is consumed.
      // Level d of the combo stack lives at offset 2^d - 1 (depth is
      // capped at kPopcountBits, so the stack is 2^(kPopcountBits+1)-1
      // words). Direct tables guaranteed (kPopcountBits < kMaxDirectBits),
      // so add order is irrelevant to the stored integer counts.
      const auto t0 = std::chrono::steady_clock::now();
      std::array<Word, (std::size_t{2} << kPopcountBits) - 1> levels;
      for (const Sample& sample : buf) {
        levels[0] = Word::ones();
        const bool full = sample.active == kLimbs;
        for (const accplan::TrieOp& op : prog.trie) {
          if (!op.emit) {
            const Word w = code_word(sample, op.arg);
            const std::size_t cnt = std::size_t{1} << op.depth;
            Word* const src = levels.data() + (cnt - 1);
            Word* const dst = levels.data() + (2 * cnt - 1);
            for (std::size_t c = 0; c < cnt; ++c) {
              const Word m = src[c];
              dst[c] = m & ~w;
              dst[cnt + c] = m & w;
            }
          } else {
            std::uint64_t* const counts =
                direct_tables[op.arg].direct_data() +
                static_cast<std::size_t>(sample.group);
            const std::size_t cnt = std::size_t{1} << op.depth;
            const Word* const lvl = levels.data() + (cnt - 1);
            if (full) {
              for (std::size_t key = 0; key < cnt; ++key)
                counts[2 * key] +=
                    static_cast<std::uint64_t>(lvl[key].popcount());
            } else {
              for (std::size_t key = 0; key < cnt; ++key)
                counts[2 * key] += static_cast<std::uint64_t>(
                    lvl[key].popcount(sample.active));
            }
          }
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      ctx.histogram_seconds += std::chrono::duration<double>(t1 - t0).count();
      debug_charge(g_acc_path_nanos.narrow, t0, t1);
    }

    if (!prog.compacted.empty()) {
      // Hamming-weight pairs histogrammed in plane space: the vertical
      // counter's bit-planes are the binary digits of the per-lane
      // counts, so conjunction-expanding pn (+ pp) planes yields one
      // lane-mask per (hn, hp) value and a popcount replaces 64 table
      // updates. The add() insertion order differs from the per-lane
      // reference, but chunk tables are unlimited (no pooling before
      // the sorted master merge), so the accumulated counts match
      // bin for bin.
      const auto t0 = std::chrono::steady_clock::now();
      common::WideVerticalCounter<kLimbs> vc_now, vc_prev;
      std::vector<Word> hw_combos;
      for (std::uint32_t l : prog.compacted) {
        const accplan::SetAccPlan& sp = plan.sets[l];
        stats::FlatCountTable& table = acc.tables[l];
        for (const Sample& sample : buf) {
          vc_now.clear();
          for (std::uint32_t r : sp.rows) vc_now.add(code_word(sample, r));
          const unsigned pn = vc_now.planes_in_use();
          unsigned pp = 0;
          if (transitions) {
            vc_prev.clear();
            for (std::uint32_t r : sp.rows)
              vc_prev.add(
                  code_word(sample, r + static_cast<std::uint32_t>(num_rows)));
            pp = vc_prev.planes_in_use();
          }
          const std::size_t n_hw = std::size_t{1} << (pn + pp);
          if (hw_combos.size() < n_hw) hw_combos.resize(n_hw);
          hw_combos[0] = Word::ones();
          std::size_t n = 1;
          for (unsigned j = 0; j < pn; ++j) {
            const Word w = vc_now.plane(j);
            for (std::size_t c = 0; c < n; ++c) {
              const Word m = hw_combos[c];
              hw_combos[c + n] = m & w;
              hw_combos[c] = m & ~w;
            }
            n <<= 1;
          }
          for (unsigned j = 0; j < pp; ++j) {
            const Word w = vc_prev.plane(j);
            for (std::size_t c = 0; c < n; ++c) {
              const Word m = hw_combos[c];
              hw_combos[c + n] = m & w;
              hw_combos[c] = m & ~w;
            }
            n <<= 1;
          }
          const std::uint64_t hn_mask = (std::uint64_t{1} << pn) - 1;
          const bool full = sample.active == kLimbs;
          for (std::size_t c = 0; c < n; ++c) {
            const unsigned cnt = full ? hw_combos[c].popcount()
                                      : hw_combos[c].popcount(sample.active);
            if (!cnt) continue;
            const std::uint64_t hn = c & hn_mask;
            const std::uint64_t hp = c >> pn;
            table.add(hn * 257u + hp, sample.group, cnt);
          }
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      ctx.histogram_seconds += std::chrono::duration<double>(t1 - t0).count();
      debug_charge(g_acc_path_nanos.compacted, t0, t1);
    }

    if (!prog.packed.empty()) {
      // Wider exact sets: the shard's transpose blocks are gathered and
      // transposed once per (sample, limb) and shared by every packed set
      // touching them; each set then pext-gathers its key bits from the
      // transposed columns (block word `lane` holds bit i = block-row i's
      // lane-L value, and masks select rows in ascending key-bit order).
      // Samples are staged in tiles so the block scratch stays in cache,
      // and each sub-pass (gather / transpose / key extraction) runs as a
      // separately-timed bulk loop over the tile. The key multiset per
      // (sample, limb) equals the 64-lane reference's, just in a different
      // insertion order — order-free for direct tables, and unlimited
      // chunk tables pool only at the sorted master merge, so the counts
      // stay bit-identical.
      const auto packed_start = std::chrono::steady_clock::now();
      const std::size_t nblocks = prog.blocks.size();
      const std::size_t words_per_sample = nblocks * 64 * kLimbs;
      const std::size_t tile_samples = std::max<std::size_t>(
          1, (std::size_t{256} << 10) / (words_per_sample * 8));
      if (ctx.block_scratch.size() < tile_samples * words_per_sample)
        ctx.block_scratch.resize(tile_samples * words_per_sample);
      std::uint64_t* const scratch = ctx.block_scratch.data();
      for (std::size_t s0 = 0; s0 < buf.size(); s0 += tile_samples) {
        const std::size_t sn = std::min(tile_samples, buf.size() - s0);
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t s = 0; s < sn; ++s) {
          const Sample& sample = buf[s0 + s];
          for (unsigned b = 0; b < sample.active; ++b) {
            std::uint64_t* dst =
                scratch + (s * kLimbs + b) * nblocks * 64;
            for (std::size_t blk = 0; blk < nblocks; ++blk, dst += 64) {
              const std::vector<std::uint32_t>& rows = prog.blocks[blk];
              for (std::size_t i = 0; i < rows.size(); ++i)
                dst[i] = code_limb(sample, rows[i], b);
              std::fill(dst + rows.size(), dst + 64, std::uint64_t{0});
            }
          }
        }
        const auto t1 = std::chrono::steady_clock::now();
        ctx.extract_seconds += std::chrono::duration<double>(t1 - t0).count();
        for (std::size_t s = 0; s < sn; ++s) {
          const unsigned active = buf[s0 + s].active;
          for (unsigned b = 0; b < active; ++b) {
            std::uint64_t* dst = scratch + (s * kLimbs + b) * nblocks * 64;
            for (std::size_t blk = 0; blk < nblocks; ++blk, dst += 64)
              common::transpose64(dst);
          }
        }
        const auto t2 = std::chrono::steady_clock::now();
        ctx.transpose_seconds += std::chrono::duration<double>(t2 - t1).count();
        for (std::uint32_t l : prog.packed) {
          const accplan::SetAccPlan& sp = plan.sets[l];
          stats::FlatCountTable& table = direct_tables[l].direct_mode()
                                             ? direct_tables[l]
                                             : acc.tables[l];
          std::uint64_t* const direct =
              table.direct_mode() ? table.direct_data() : nullptr;
          for (std::size_t s = 0; s < sn; ++s) {
            const Sample& sample = buf[s0 + s];
            const auto group = static_cast<std::size_t>(sample.group);
            for (unsigned b = 0; b < sample.active; ++b) {
              const std::uint64_t* const base =
                  scratch + (s * kLimbs + b) * nblocks * 64;
              for (unsigned lane = 0; lane < 64; ++lane) {
                std::uint64_t key = 0;
                for (const accplan::PackedGather& g : sp.gathers)
                  key |= common::extract_bits64(
                             base[std::size_t{g.block} * 64 + lane], g.mask)
                         << g.shift;
                if (direct)
                  ++direct[2 * key + group];
                else
                  table.add(key, static_cast<int>(sample.group));
              }
            }
          }
        }
        const auto t3 = std::chrono::steady_clock::now();
        ctx.histogram_seconds += std::chrono::duration<double>(t3 - t2).count();
      }
      debug_charge(g_acc_path_nanos.packed, packed_start,
                   std::chrono::steady_clock::now());
    }
  };
  auto accumulate = [&](const accplan::AccumulationPlan& plan,
                        const std::vector<Sample>& buf, std::size_t shard_idx,
                        ChunkAccumulators& acc,
                        std::vector<stats::FlatCountTable>& direct_tables,
                        WorkerCtx& ctx) {
    switch (limbs) {
      case 1:
        accumulate_impl.template operator()<1>(plan, buf, shard_idx, acc,
                                               direct_tables, ctx);
        break;
      case 4:
        accumulate_impl.template operator()<4>(plan, buf, shard_idx, acc,
                                               direct_tables, ctx);
        break;
      case 8:
        accumulate_impl.template operator()<8>(plan, buf, shard_idx, acc,
                                               direct_tables, ctx);
        break;
      default:
        SCA_ASSERT(false, "campaign: unsupported limb count");
    }
  };

  // --- main loop ------------------------------------------------------------------
  const std::size_t observations_per_run = 64 * samples_per_run;
  const std::size_t runs_per_group = common::ceil_div(
      std::max<std::size_t>(options.simulations, 64), observations_per_run);

  // The run budget is sharded into fixed chunks; chunk c simulates the
  // 64-lane runs [c * runs_per_chunk, ...), whose randomness the counter
  // PRG addresses by absolute run. The chunk grid depends only on the
  // workload — never on the thread count or the lane width — so every
  // thread count and every lane width produces bit-identical statistics
  // (wide execution blocks align to the chunk start; a chunk tail shorter
  // than the lane width just runs with inactive limbs). ~256 chunks bound
  // the ordered merge overhead while load-balancing well beyond any sane
  // thread count. Campaigns of at least 256 runs round the chunk size up
  // to the widest limb count, so the steady-state execution block is full
  // at every lane width; tiny campaigns keep the fine seed grid instead —
  // stage/early-stop granularity matters more than SIMD width there.
  const std::size_t runs_per_chunk = [&] {
    const std::size_t fine = common::ceil_div(runs_per_group, std::size_t{256});
    if (runs_per_group < 256) return fine;
    return common::ceil_div(fine, std::size_t{kMaxLimbs}) * kMaxLimbs;
  }();
  const std::size_t num_chunks =
      common::ceil_div(runs_per_group, runs_per_chunk);
  const std::size_t cycles_per_run = 2 * cycles_per_group;

  // Probe-set shards for the 2-D (chunk x shard) schedule: when the chunk
  // grid alone cannot feed every thread (tiny campaigns), the live sets
  // split into shards and each (chunk, shard) cell re-simulates its chunk
  // while accumulating only its shard's sets. Simulation is cheap next to
  // accumulation on probe-heavy workloads, and shard membership is part of
  // the deterministic plan, so the statistics stay bit-identical. The
  // scalar oracle keeps the classic 1-D schedule.
  const unsigned shard_target =
      (bitsliced && threads > 1 && num_chunks < threads)
          ? static_cast<unsigned>(
                common::ceil_div(std::size_t{threads}, num_chunks))
          : 1;

  // Stage boundaries over the chunk grid. A stage is a contiguous chunk
  // range; because every chunk draws from its own seeded stream and the
  // master merge is chunk-ordered, running the ranges back to back (in one
  // process or across a checkpoint/resume) is bit-identical to one
  // uninterrupted pass over [0, num_chunks).
  std::vector<std::size_t> stage_bounds;
  {
    std::vector<double> fractions = options.stage_schedule;
    if (fractions.empty()) {
      const unsigned s = resolve_stages(options.stages);
      for (unsigned i = 1; i <= s; ++i)
        fractions.push_back(static_cast<double>(i) / s);
    }
    require(std::abs(fractions.back() - 1.0) < 1e-9,
            "campaign: stage schedule must end at 1.0");
    stage_bounds.push_back(0);
    double prev = 0.0;
    for (double f : fractions) {
      require(f > prev && f <= 1.0 + 1e-9,
              "campaign: stage fractions must ascend within (0, 1]");
      prev = f;
      const std::size_t b = std::min<std::size_t>(
          num_chunks, static_cast<std::size_t>(std::llround(
                          f * static_cast<double>(num_chunks))));
      if (b > stage_bounds.back()) stage_bounds.push_back(b);
    }
    if (stage_bounds.back() != num_chunks) stage_bounds.push_back(num_chunks);
  }
  const std::size_t stages_total = stage_bounds.size() - 1;

  // Split the probe sets into batches whose contingency tables fit the
  // memory budget; the simulation re-runs per batch (it is cheap next to
  // table accumulation, and the chunk seeds make passes identical). Each
  // worker holds its own in-flight chunk tables, so the per-batch share of
  // the budget shrinks with the thread count. Master and chunk tables are
  // both flat (two 64-bit counts per direct slot, ~3 words per hashed slot
  // at half load); 64 bytes/bin covers the master plus one in-flight chunk
  // table.
  constexpr std::size_t kBytesPerBin = 64;
  const std::size_t samples_total = 2 * runs_per_group * observations_per_run;
  const std::size_t batch_budget = std::max<std::size_t>(
      options.table_memory_budget / (std::size_t{threads} + 1), kBytesPerBin);
  std::vector<std::pair<std::size_t, std::size_t>> batch_ranges;
  {
    std::size_t begin = 0;
    while (begin < prepared.size()) {
      std::size_t end = begin;
      std::size_t budget_used = 0;
      while (end < prepared.size()) {
        const PreparedSet& set = prepared[end];
        std::size_t est_bins = options.max_bins_per_set;
        if (set.compacted) {
          est_bins = std::min<std::size_t>(est_bins, 1024);
        } else if (set.observation_bits < 40) {
          est_bins = std::min<std::size_t>(
              est_bins, std::size_t{1} << set.observation_bits);
        }
        est_bins = std::min(est_bins, samples_total);
        std::size_t bytes = est_bins * kBytesPerBin;
        if (set.direct_table)  // master + chunk table materialize the space
          bytes = std::max<std::size_t>(
              bytes, std::size_t{32} << set.observation_bits);
        if (end > begin && budget_used + bytes > batch_budget) break;
        budget_used += bytes;
        ++end;
      }
      batch_ranges.emplace_back(begin, end);
      begin = end;
    }
  }

  // Configuration fingerprint: everything the snapshot's validity depends
  // on — seed, budget, chunk/stage/batch grids, sampling parameters, and
  // the prepared probe sets. Thread count, lane width, kernel choice, and
  // accumulation regime are deliberately excluded (all are bit-identical
  // by contract, so resuming across them is sound); the batch grid covers
  // the one way threads could matter, since the memory budget splits per
  // worker. The accumulation plan (hosting, sharding, CSE structure) is
  // also excluded by design: it is a pure function of the prepared sets
  // and the options, snapshots always carry fully materialized per-set
  // tables, and hosted masters recompute their marginal from scratch after
  // every stage — so a snapshot written by the fused pipeline resumes
  // under the scalar one and vice versa (asserted by tests).
  std::uint64_t fingerprint = 0;
  {
    common::Fnv1a fp;
    fp.feed(options.seed)
        .feed(static_cast<std::uint64_t>(runs_per_group))
        .feed(static_cast<std::uint64_t>(runs_per_chunk))
        .feed(static_cast<std::uint64_t>(num_chunks))
        .feed(static_cast<std::uint64_t>(samples_per_run))
        .feed(static_cast<std::uint64_t>(options.sample_interval))
        .feed(static_cast<std::uint64_t>(options.warmup_cycles))
        .feed(static_cast<std::uint64_t>(options.order))
        .feed(static_cast<std::uint64_t>(options.model))
        .feed(static_cast<std::uint64_t>(options.statistic))
        .feed(static_cast<std::uint64_t>(options.max_bins_per_set))
        .feed(static_cast<std::uint64_t>(options.null_calibration ? 1 : 0))
        .feed(options.threshold);
    for (std::size_t b : stage_bounds)
      fp.feed(static_cast<std::uint64_t>(b));
    for (const auto& [bb, be] : batch_ranges)
      fp.feed(static_cast<std::uint64_t>(bb))
          .feed(static_cast<std::uint64_t>(be));
    for (const auto& p : prepared)
      fp.feed(p.name).feed(static_cast<std::uint64_t>(p.observation_bits));
    fingerprint = fp.value();
  }

  std::vector<ProbeSetResult> finished;
  finished.reserve(prepared.size());
  std::size_t total_cycles = 0;
  std::size_t simulations_done = 0;
  double simulate_seconds = 0.0;
  double accumulate_seconds = 0.0;
  double merge_seconds = 0.0;
  // Accumulation sub-phases (not checkpointed — the snapshot format is
  // unchanged, so resumed campaigns restart these at zero).
  double extract_seconds = 0.0;
  double transpose_seconds = 0.0;
  double histogram_seconds = 0.0;

  // Resume: load a matching snapshot, restore the finalized results and the
  // in-progress batch's master accumulators, and continue from its cursor.
  std::size_t resume_batch = 0;
  std::size_t resume_stages = 0;
  std::size_t streak = 0;
  bool early_stopped = false;
  bool complete = false;
  bool resumed = false;
  if (options.resume && !options.checkpoint_path.empty()) {
    const bool exists =
        std::ifstream(options.checkpoint_path, std::ios::binary).good();
    if (exists) {
      CampaignSnapshot snap = load_checkpoint(options.checkpoint_path);
      require(snap.fingerprint == fingerprint,
              "campaign: checkpoint does not match this campaign "
              "configuration (different netlist, seed, budget, or schedule)");
      require(snap.num_chunks == num_chunks &&
                  snap.batches_total == batch_ranges.size() &&
                  snap.batch_index <= batch_ranges.size(),
              "campaign: checkpoint cursor out of range");
      resume_batch = snap.batch_index;
      resume_stages = snap.stages_done;
      streak = snap.streak;
      early_stopped = snap.early_stopped;
      complete = snap.complete;
      total_cycles = snap.total_cycles;
      simulations_done = snap.simulations_done;
      simulate_seconds = snap.simulate_seconds;
      accumulate_seconds = snap.accumulate_seconds;
      merge_seconds = snap.merge_seconds;
      finished = std::move(snap.finished);
      require(complete || resume_batch < batch_ranges.size(),
              "campaign: incomplete checkpoint past the last batch");
      require(complete || resume_stages < stages_total,
              "campaign: checkpoint stage cursor out of range");
      require(finished.size() ==
                  (resume_batch < batch_ranges.size()
                       ? batch_ranges[resume_batch].first
                       : prepared.size()),
              "campaign: checkpoint finished-set count mismatch");
      if (!complete && resume_stages > 0) {
        const auto [bb, be] = batch_ranges[resume_batch];
        require(snap.sets.size() == be - bb,
                "campaign: checkpoint accumulator count mismatch");
        for (std::size_t i = 0; i < snap.sets.size(); ++i) {
          PreparedSet& p = prepared[bb + i];
          SetSnapshot& s = snap.sets[i];
          require(s.has_table != ttest,
                  "campaign: checkpoint accumulator kind mismatch");
          if (ttest) {
            p.moments = s.moments;
          } else {
            require(s.table.direct_mode() == p.direct_table,
                    "campaign: checkpoint table mode mismatch");
            p.table = std::move(s.table);
          }
        }
      }
      resumed = true;
    }
  }
  std::size_t table_batches = resume_batch;

  // One simulation pass over the chunks [chunk_begin, chunk_end) — one
  // evaluation stage — accumulating only the probe sets
  // [set_begin, set_end) under the batch's compiled plan, scheduled over
  // the worker pool as (chunk x shard) cells. Cell results merge into the
  // master tables strictly in cell order (workers park out-of-order cells
  // in `pending`); cells of one chunk are drained consecutively and each
  // set belongs to exactly one shard, so every set's master merge still
  // sees ascending chunks — the bin-overflow pooling and the
  // floating-point Welford merges stay deterministic, and the
  // concatenation of stage passes stays bit-identical to one full pass.
  auto simulate_into = [&](const accplan::AccumulationPlan& plan,
                           const std::vector<SignalId>& row_signals,
                           std::size_t set_begin, std::size_t set_end,
                           std::size_t chunk_begin, std::size_t chunk_end) {
    const std::size_t shards = plan.shards.size();
    const std::size_t local_count = set_end - set_begin;
    const std::size_t cells = (chunk_end - chunk_begin) * shards;
    std::mutex merge_mutex;
    std::map<std::size_t, ChunkAccumulators> pending;
    std::size_t next_merge = 0;

    common::parallel_for_stateful(
        cells, threads,
        [&] {
          WorkerCtx ctx(schedule);
          if (!ttest) {
            // Direct-indexed live sets accumulate into worker-lifetime
            // tables (commutative integer merges need no cell ordering);
            // only hashed and compacted sets go through per-cell tables.
            // Hosted sets get no accumulator at all — their counts are
            // marginalized from their host after the stage.
            ctx.direct_tables.resize(local_count);
            for (std::size_t l = 0; l < local_count; ++l)
              if (plan.sets[l].regime != accplan::AccRegime::kHosted &&
                  prepared[set_begin + l].direct_table)
                ctx.direct_tables[l].init_direct(static_cast<unsigned>(
                    prepared[set_begin + l].observation_bits));
          }
          return ctx;
        },
        [&](WorkerCtx& ctx, std::size_t cell) {
          const std::size_t chunk = chunk_begin + cell / shards;
          const std::size_t shard = cell % shards;
          const CounterPrg prg(options.seed);
          ChunkAccumulators acc;
          if (ttest) {
            acc.hw_hist.resize(local_count);
            for (std::uint32_t l : plan.shards[shard].ttest)
              for (auto& h : acc.hw_hist[l])
                h.assign(prepared[set_begin + l].observation_bits + 1, 0);
          } else {
            // Cell tables (the non-direct sets' accumulators) carry no bin
            // limit, mirroring the unlimited per-chunk maps of the scalar
            // engine: pooling happens only at the deterministic master
            // merge. Sets owned by other shards leave empty tables, whose
            // merge is a no-op.
            acc.tables.resize(local_count);
          }

          const std::size_t run_begin = chunk * runs_per_chunk;
          const std::size_t run_end =
              std::min(runs_per_group, run_begin + runs_per_chunk);
          std::vector<Sample> buf;
          buf.reserve(2 * samples_per_run);
          // One iteration simulates limbs() 64-lane runs at once; the last
          // wide run of the chunk may carry a tail (active < limbs), whose
          // inactive limbs are fed nothing and accumulated never.
          for (std::size_t run = run_begin; run < run_end; run += limbs) {
            const unsigned active = static_cast<unsigned>(
                std::min<std::size_t>(limbs, run_end - run));
            buf.clear();
            const auto sim_start = std::chrono::steady_clock::now();
            // Groups are interleaved so that a bin-limited table fills its
            // key space from both groups evenly; running one group first
            // would push the other group's tail keys into the overflow bin
            // and fake a difference.
            for (int group = 0; group < 2; ++group) {
              sim::Simulator& simulator = ctx.simulator;
              simulator.reset();
              std::size_t cycle_in_group = 0;
              // The previous-cycle snapshot only feeds transition models;
              // skipping it elsewhere saves a full row copy per cycle.
              for (std::size_t c = 0; c < options.warmup_cycles; ++c) {
                feed_cycle(simulator, prg, run, active, group,
                           cycle_in_group++);
                simulator.settle();
                if (transitions)
                  snapshot_rows(simulator, row_signals, ctx.prev_snapshot);
                simulator.clock();
              }
              for (std::size_t s = 0; s < samples_per_run; ++s) {
                for (std::size_t c = 0; c < options.sample_interval; ++c) {
                  feed_cycle(simulator, prg, run, active, group,
                             cycle_in_group++);
                  simulator.settle();
                  if (c + 1 == options.sample_interval) {
                    Sample sample;
                    sample.group = group;
                    sample.active = active;
                    snapshot_rows(simulator, row_signals, sample.now);
                    if (transitions) sample.prev = ctx.prev_snapshot;
                    buf.push_back(std::move(sample));
                  }
                  if (transitions)
                    snapshot_rows(simulator, row_signals, ctx.prev_snapshot);
                  simulator.clock();
                }
              }
            }
            const auto acc_start = std::chrono::steady_clock::now();
            ctx.simulate_seconds +=
                std::chrono::duration<double>(acc_start - sim_start).count();
            accumulate(plan, buf, shard, acc, ctx.direct_tables, ctx);
            ctx.accumulate_seconds += seconds_since(acc_start);
          }

          std::lock_guard<std::mutex> lock(merge_mutex);
          const auto merge_start = std::chrono::steady_clock::now();
          pending.emplace(cell, std::move(acc));
          for (auto it = pending.find(next_merge); it != pending.end();
               it = pending.find(next_merge)) {
            const ChunkAccumulators& ready = it->second;
            const std::size_t ready_shard = next_merge % shards;
            for (std::size_t l = 0; l < local_count; ++l) {
              const accplan::SetAccPlan& sp = plan.sets[l];
              if (sp.regime == accplan::AccRegime::kHosted ||
                  sp.shard != ready_shard)
                continue;
              if (ttest) {
                // Histogram counts fold into the master Welford state as
                // weighted adds in ascending-weight order — a fixed
                // per-chunk FP operation sequence, so the t statistic is
                // bit-identical for any thread count and identical between
                // the bit-sliced and scalar paths.
                const auto& hist = ready.hw_hist[l];
                for (int group = 0; group < 2; ++group) {
                  const auto& h = hist[static_cast<std::size_t>(group)];
                  prepared[set_begin + l]
                      .moments[static_cast<std::size_t>(group)]
                      .add_weighted_histogram(h.data(), h.size());
                }
              } else if (!prepared[set_begin + l].direct_table) {
                prepared[set_begin + l].table.merge(ready.tables[l]);
              }
            }
            pending.erase(it);
            ++next_merge;
          }
          merge_seconds += seconds_since(merge_start);
        },
        [&](WorkerCtx& ctx) {
          // Worker drained: fold its lifetime state into the master under
          // the merge lock — the commutative direct-table reduction (one
          // flat array add per table, any worker order) and the phase
          // timers.
          std::lock_guard<std::mutex> lock(merge_mutex);
          simulate_seconds += ctx.simulate_seconds;
          accumulate_seconds += ctx.accumulate_seconds;
          extract_seconds += ctx.extract_seconds;
          transpose_seconds += ctx.transpose_seconds;
          histogram_seconds += ctx.histogram_seconds;
          const auto merge_start = std::chrono::steady_clock::now();
          if (!ttest) {
            for (std::size_t l = 0; l < local_count; ++l)
              if (plan.sets[l].regime != accplan::AccRegime::kHosted &&
                  prepared[set_begin + l].direct_table)
                prepared[set_begin + l].table.merge(ctx.direct_tables[l]);
          }
          merge_seconds += seconds_since(merge_start);
        });
    SCA_ASSERT(next_merge == cells && pending.empty(),
               "campaign: cell merge did not drain");
    const std::size_t run_begin = chunk_begin * runs_per_chunk;
    const std::size_t run_end =
        std::min(runs_per_group, chunk_end * runs_per_chunk);
    // Sharded cells re-simulate their chunk once per shard (counted as
    // cycles actually spent); the observation count is per unique run.
    total_cycles += (run_end - run_begin) * cycles_per_run * shards;
    simulations_done += (run_end - run_begin) * observations_per_run;
  };

  const double threshold = ttest ? stats::kTvlaThreshold : options.threshold;
  const bool early_stop_enabled = options.early_stop_stages > 0;
  // Interim statistics cost a g_test per set per stage; skip them when
  // nobody observes them (no stage callback, no early stopping).
  const bool want_interim = early_stop_enabled || bool(options.on_stage);
  const bool checkpointing = !options.checkpoint_path.empty();

  auto save_snapshot = [&](std::size_t batch_index, std::size_t stages_done,
                           bool is_complete) {
    CampaignSnapshot snap;
    snap.fingerprint = fingerprint;
    snap.num_chunks = num_chunks;
    snap.batches_total = batch_ranges.size();
    snap.batch_index = batch_index;
    snap.stages_done = stages_done;
    snap.streak = streak;
    snap.early_stopped = early_stopped;
    snap.complete = is_complete;
    snap.total_cycles = total_cycles;
    snap.simulations_done = simulations_done;
    snap.simulate_seconds = simulate_seconds;
    snap.accumulate_seconds = accumulate_seconds;
    snap.merge_seconds = merge_seconds;
    snap.finished = finished;
    if (stages_done > 0 && batch_index < batch_ranges.size()) {
      const auto [bb, be] = batch_ranges[batch_index];
      snap.sets.reserve(be - bb);
      for (std::size_t si = bb; si < be; ++si) {
        SetSnapshot set;
        set.has_table = !ttest;
        if (ttest)
          set.moments = prepared[si].moments;
        else
          set.table = prepared[si].table;
        snap.sets.push_back(std::move(set));
      }
    }
    save_checkpoint(options.checkpoint_path, snap);
  };

  // Severity over the batches finalized so far (including any restored from
  // a snapshot) — the baseline every stage's interim statistics extend.
  double finished_max = 0.0;
  std::size_t finished_leaks = 0;
  std::string finished_worst;
  for (const ProbeSetResult& r : finished) {
    if (r.severity > finished_max) {
      finished_max = r.severity;
      finished_worst = r.name;
    }
    if (r.severity > threshold) ++finished_leaks;
  }

  std::size_t stages_completed = resume_batch * stages_total + resume_stages;
  unsigned stages_run_here = 0;
  bool interrupted = false;
  std::size_t hosted_total = 0;
  std::size_t max_set_shards = 1;

  auto emit_stage = [&](std::size_t stage, std::size_t batch, double cur_max,
                        const std::string& worst, std::size_t leaks,
                        double stage_secs, bool saved) {
    if (!options.on_stage) return;
    StageReport rep;
    rep.stage = stage;
    rep.stages_total = stages_total;
    rep.batch = batch + 1;
    rep.batches_total = batch_ranges.size();
    const std::size_t runs_done =
        std::min(runs_per_group, stage_bounds[stage] * runs_per_chunk);
    const std::size_t runs_prev =
        std::min(runs_per_group, stage_bounds[stage - 1] * runs_per_chunk);
    rep.simulations_done = runs_done * observations_per_run;
    rep.simulations_total = runs_per_group * observations_per_run;
    rep.max_minus_log10_p = cur_max;
    rep.worst_set = worst;
    rep.leaking_sets = leaks;
    rep.pass_so_far = leaks == 0;
    rep.stage_seconds = stage_secs;
    rep.sims_per_second =
        stage_secs > 0.0
            ? 2.0 * static_cast<double>((runs_done - runs_prev) *
                                        observations_per_run) /
                  stage_secs
            : 0.0;
    rep.simulate_seconds = simulate_seconds;
    rep.accumulate_seconds = accumulate_seconds;
    rep.merge_seconds = merge_seconds;
    rep.extract_seconds = extract_seconds;
    rep.transpose_seconds = transpose_seconds;
    rep.histogram_seconds = histogram_seconds;
    rep.aliased_probe_sets = aliased_probe_sets;
    rep.early_stopped = early_stopped;
    if (saved) rep.checkpoint_path = options.checkpoint_path;
    options.on_stage(rep);
  };

  for (std::size_t b = resume_batch;
       b < batch_ranges.size() && !complete && !interrupted && !early_stopped;
       ++b) {
    const auto [set_begin, set_end] = batch_ranges[b];

    // Compile the batch's accumulation plan: regimes, subset hosting,
    // shared-trie / shared-block CSE, and the shard partition. The plan is
    // a pure function of the prepared sets and the options, so it needs no
    // fingerprint coverage and no snapshot state.
    std::vector<accplan::PlanSetInput> plan_inputs;
    plan_inputs.reserve(set_end - set_begin);
    for (std::size_t si = set_begin; si < set_end; ++si)
      plan_inputs.push_back({&prepared[si].dense,
                             prepared[si].observation_bits,
                             prepared[si].compacted,
                             prepared[si].direct_table});
    accplan::PlanOptions plan_options;
    plan_options.transitions = transitions;
    plan_options.ttest = ttest;
    plan_options.fuse = bitsliced;
    plan_options.narrow_bits = kPopcountBits;
    plan_options.shards = shard_target;
    const accplan::AccumulationPlan plan =
        accplan::compile_accumulation_plan(plan_inputs, plan_options);
    hosted_total += plan.hosted_sets;
    max_set_shards = std::max(max_set_shards, plan.shards.size());
    std::vector<SignalId> row_signals;
    row_signals.reserve(plan.rows.size());
    for (std::size_t r : plan.rows) row_signals.push_back(stable_points[r]);

    // Hosted sets' master tables are exact integer marginals of their
    // host's — recomputed from scratch after every stage, so interim
    // statistics, snapshots, and finalization all see tables
    // bit-identical to per-set accumulation (and a snapshot resumes under
    // any plan layout: the marginal only ever derives from the host's
    // cumulative master).
    auto materialize_hosted = [&] {
      if (ttest || plan.finalize_order.empty()) return;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint32_t idx : plan.finalize_order) {
        const accplan::SetAccPlan& sp = plan.sets[idx];
        stats::FlatCountTable& dst = prepared[set_begin + idx].table;
        dst.clear();
        dst.add_marginalized(prepared[set_begin + sp.host].table,
                             sp.host_mask);
      }
      merge_seconds += seconds_since(t0);
    };

    const std::size_t first_stage = b == resume_batch ? resume_stages : 0;
    std::size_t final_stage = stages_total;
    double last_stage_secs = 0.0;
    for (std::size_t s = first_stage; s < stages_total; ++s) {
      const auto stage_start = std::chrono::steady_clock::now();
      simulate_into(plan, row_signals, set_begin, set_end, stage_bounds[s],
                    stage_bounds[s + 1]);
      materialize_hosted();
      const double stage_secs = seconds_since(stage_start);
      last_stage_secs = stage_secs;
      ++stages_completed;
      ++stages_run_here;

      // Interim verdict-so-far over the current batch's master
      // accumulators, on top of the finalized-batch baseline.
      double cur_max = finished_max;
      std::string worst = finished_worst;
      std::size_t leaks = finished_leaks;
      if (want_interim) {
        for (std::size_t si = set_begin; si < set_end; ++si) {
          const double sev =
              ttest ? std::abs(stats::welch_t_test(prepared[si].moments[0],
                                                   prepared[si].moments[1])
                                   .t)
                    : prepared[si].table.g_test().minus_log10_p;
          if (sev > threshold) ++leaks;
          if (sev > cur_max) {
            cur_max = sev;
            worst = prepared[si].name;
          }
        }
        if (early_stop_enabled) {
          if (cur_max > threshold + options.early_stop_margin)
            ++streak;
          else
            streak = 0;
          if (streak >= options.early_stop_stages) early_stopped = true;
        }
      }

      if (s + 1 == stages_total || early_stopped) {
        // Batch (or campaign) done: finalize below, then snapshot/report
        // with exact statistics.
        final_stage = s + 1;
        break;
      }
      if (checkpointing) save_snapshot(b, s + 1, /*is_complete=*/false);
      emit_stage(s + 1, b, cur_max, worst, leaks, stage_secs, checkpointing);
      if (options.stop_after_stage &&
          stages_run_here >= options.stop_after_stage) {
        // Simulated kill: leave the snapshot on disk, return a partial
        // result flagged `interrupted`.
        interrupted = true;
        break;
      }
    }
    if (interrupted) break;

    // Finalize the batch — under early stopping, from its partial counts —
    // and release its table memory.
    for (std::size_t i = set_begin; i < set_end; ++i) {
      ProbeSetResult r;
      r.name = std::move(prepared[i].name);
      r.representatives = std::move(prepared[i].representatives);
      r.observation_bits = prepared[i].observation_bits;
      r.compacted = prepared[i].compacted;
      r.aliases = std::move(prepared[i].aliases);
      if (ttest) {
        r.t = stats::welch_t_test(prepared[i].moments[0],
                                  prepared[i].moments[1]);
        r.severity = std::abs(r.t.t);
      } else {
        r.g = prepared[i].table.g_test();
        prepared[i].table = stats::FlatCountTable();
        r.severity = r.g.minus_log10_p;
      }
      r.minus_log10_p = r.severity;
      if (r.severity > finished_max) {
        finished_max = r.severity;
        finished_worst = r.name;
      }
      if (r.severity > threshold) ++finished_leaks;
      finished.push_back(std::move(r));
    }
    ++table_batches;

    const bool campaign_over =
        early_stopped || b + 1 == batch_ranges.size();
    if (checkpointing) save_snapshot(b + 1, 0, campaign_over);
    emit_stage(final_stage, b, finished_max, finished_worst, finished_leaks,
               last_stage_secs, checkpointing);
    if (!campaign_over && options.stop_after_stage &&
        stages_run_here >= options.stop_after_stage)
      interrupted = true;
  }

  // --- statistics -------------------------------------------------------------------
  CampaignResult result;
  result.model = options.model;
  result.order = options.order;
  result.statistic = options.statistic;
  result.total_sets = prepared.size();
  result.dropped_sets = dropped;
  result.simulations_per_group = runs_per_group * observations_per_run;
  result.threads_used = threads;
  result.lanes_used = lanes;
  result.total_cycles = total_cycles;
  result.table_batches = table_batches;
  result.simulate_seconds = simulate_seconds;
  result.accumulate_seconds = accumulate_seconds;
  result.merge_seconds = merge_seconds;
  result.extract_seconds = extract_seconds;
  result.transpose_seconds = transpose_seconds;
  result.histogram_seconds = histogram_seconds;
  result.aliased_probe_sets = aliased_probe_sets;
  result.hosted_sets = hosted_total;
  result.set_shards = max_set_shards;
  result.stages_total = stages_total;
  result.stages_completed = stages_completed;
  result.early_stopped = early_stopped;
  result.interrupted = interrupted;
  result.resumed = resumed;
  result.simulations_done = simulations_done;
  result.unevaluated_sets = prepared.size() - finished.size();
  for (ProbeSetResult& r : finished) {
    r.leaking = r.severity > threshold;
    if (r.leaking) {
      result.pass = false;
      ++result.leaking_sets;
    }
    result.max_minus_log10_p = std::max(result.max_minus_log10_p, r.minus_log10_p);
    result.results.push_back(std::move(r));
  }
  std::sort(result.results.begin(), result.results.end(),
            [](const ProbeSetResult& a, const ProbeSetResult& b) {
              return a.minus_log10_p > b.minus_log10_p;
            });
  report_acc_debug();
  return result;
}

}  // namespace sca::eval
