#include "src/core/campaign.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/bitops.hpp"
#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/common/serialize.hpp"
#include "src/common/simd.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/checkpoint.hpp"
#include "src/sim/simulator.hpp"

namespace sca::eval {

using common::CounterPrg;
using common::require;
using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

namespace {

// Share inputs of one secret group arranged as [share][bit] -> signal, plus
// the per-campaign constants of the group (value mask, fixed-group secret)
// hoisted out of the per-cycle input-feeding loop.
struct GroupInputs {
  std::uint32_t group = 0;
  std::vector<std::vector<SignalId>> share_bits;  // [share][bit]
  std::uint32_t bits = 0;
  std::uint8_t value_mask = 0;   // (1 << bits) - 1
  std::uint8_t fixed_byte = 0;   // fixed-group secret, pre-masked
};

std::vector<GroupInputs> collect_groups(
    const Netlist& nl,
    const std::map<std::uint32_t, std::uint8_t>& fixed_values) {
  std::map<std::uint32_t, GroupInputs> groups;
  for (const auto& in : nl.inputs()) {
    if (in.role != InputRole::kShare) continue;
    GroupInputs& g = groups[in.share.secret];
    g.group = in.share.secret;
    if (g.share_bits.size() <= in.share.share)
      g.share_bits.resize(in.share.share + 1);
    auto& bits = g.share_bits[in.share.share];
    if (bits.size() <= in.share.bit) bits.resize(in.share.bit + 1, netlist::kNoSignal);
    bits[in.share.bit] = in.signal;
    g.bits = std::max(g.bits, in.share.bit + 1);
  }
  std::vector<GroupInputs> out;
  for (auto& [id, g] : groups) {
    require(g.bits <= 8, "campaign: secret groups wider than 8 bits unsupported");
    for (const auto& share : g.share_bits) {
      require(share.size() == g.bits, "campaign: ragged share inputs");
      for (SignalId s : share)
        require(s != netlist::kNoSignal, "campaign: missing share input bit");
    }
    g.value_mask = g.bits >= 8 ? std::uint8_t{0xFF}
                               : static_cast<std::uint8_t>((1u << g.bits) - 1);
    if (auto it = fixed_values.find(g.group); it != fixed_values.end())
      g.fixed_byte = static_cast<std::uint8_t>(it->second & g.value_mask);
    out.push_back(std::move(g));
  }
  require(!out.empty(), "campaign: netlist declares no share inputs");
  return out;
}

// One evaluated probe set after union-dedup: the union of the constituent
// probes' observations, as dense stable indices.
struct PreparedSet {
  std::string name;
  std::vector<SignalId> representatives;
  std::vector<std::size_t> dense;  // indices into stable_points
  std::size_t observation_bits = 0;
  bool compacted = false;
  bool direct_table = false;  // exact keys small enough to direct-index
  stats::FlatCountTable table;                     // G-test mode
  std::array<stats::MomentAccumulator, 2> moments;  // t-test mode
};

// One buffered sample: the stable-point values at the sample cycle and, for
// transition models, the cycle before. Point-major limb layout: the limbs()
// lane words of stable point i sit at [i * limbs, (i + 1) * limbs), so an
// observation word loads as one SimdWord. `active` is the number of limbs
// carrying real runs (the last wide run of a chunk may be a tail; inactive
// limbs hold don't-care values and are never accumulated).
struct Sample {
  std::vector<std::uint64_t> now;
  std::vector<std::uint64_t> prev;
  int group = 0;
  unsigned active = 1;
};

// FNV-1a over the signal ids of a sorted observation vector — probe-set
// dedup key. The map still compares full vectors on hash collision, so a
// collision can never merge distinct sets.
struct ObservationHash {
  std::size_t operator()(const std::vector<SignalId>& v) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (SignalId s : v) {
      h ^= static_cast<std::uint64_t>(s);
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

// Accumulators of one work chunk for the probe sets of one batch; merged
// into the master accumulators in chunk order. G-test sets use flat count
// tables (direct-indexed or open-addressed — no per-observation node
// allocation); t-test sets accumulate an integer Hamming-weight histogram
// per group, folded into the master moment accumulators as weighted adds.
struct ChunkAccumulators {
  std::vector<stats::FlatCountTable> tables;
  std::vector<std::array<std::vector<std::uint64_t>, 2>> hw_hist;
};

// Per-worker scratch: a private simulator over the shared schedule,
// reusable snapshot buffers, bit-sliced accumulation scratch, per-phase
// timers — and the worker-lifetime direct-indexed tables. Direct tables
// materialize their whole key space, so merging them is a commutative
// integer array add: a worker accumulates them across every chunk it runs
// and folds into the master exactly once (the thread pool's finalize hook),
// skipping the chunk-ordered reduction without costing determinism.
struct WorkerCtx {
  explicit WorkerCtx(const sim::Schedule& schedule) : simulator(schedule) {}
  sim::Simulator simulator;
  std::vector<std::uint64_t> prev_snapshot;
  std::vector<stats::FlatCountTable> direct_tables;
  double simulate_seconds = 0.0;
  double accumulate_seconds = 0.0;
};

// Exact probe sets at or below this observation width use the
// conjunction-popcount histogram (no transpose, no per-lane work). Must
// stay below FlatCountTable::kMaxDirectBits so those sets always hit the
// direct-indexed table mode, where add() order cannot matter. 8 balances
// the 2^bits expansion cost against the transpose path's per-lane table
// updates (measured via SCA_DEBUG_ACC on the E2 campaign; the expansion
// is one vector op per combo, so it wins as long as the per-key popcount
// vectorizes).
constexpr std::size_t kPopcountBits = 8;

// SCA_DEBUG_ACC=1 breaks the accumulate phase down by path (cumulative
// process-wide nanoseconds, printed to stderr after every campaign) — the
// profiling hook behind the kernel's throughput tuning.
struct AccPathNanos {
  std::atomic<std::uint64_t> ttest{0};
  std::atomic<std::uint64_t> scalar{0};
  std::atomic<std::uint64_t> compacted{0};
  std::atomic<std::uint64_t> narrow{0};
  std::atomic<std::uint64_t> packed{0};
};
AccPathNanos g_acc_path_nanos;

bool acc_debug_enabled() {
  static const bool on = std::getenv("SCA_DEBUG_ACC") != nullptr;
  return on;
}

void report_acc_debug() {
  if (!acc_debug_enabled()) return;
  const AccPathNanos& n = g_acc_path_nanos;
  std::fprintf(stderr,
               "accumulate paths (cumulative): ttest %.3fs scalar %.3fs "
               "compacted %.3fs narrow %.3fs packed %.3fs\n",
               n.ttest.load() * 1e-9, n.scalar.load() * 1e-9,
               n.compacted.load() * 1e-9, n.narrow.load() * 1e-9,
               n.packed.load() * 1e-9);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Stage-count resolution, mirroring resolve_threads: an explicit request
// wins, else the SCA_STAGES environment variable, else 1 (the classic
// single-pass campaign).
unsigned resolve_stages(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SCA_STAGES")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 1;
}

}  // namespace

std::vector<const ProbeSetResult*> CampaignResult::top(std::size_t n) const {
  std::vector<const ProbeSetResult*> out;
  for (const auto& r : results) {
    if (out.size() >= n) break;
    out.push_back(&r);
  }
  return out;
}

CampaignResult run_fixed_vs_random(const Netlist& nl,
                                   const CampaignOptions& options) {
  nl.validate();
  require(options.order >= 1 && options.order <= 2,
          "campaign: supported orders are 1 and 2");
  require(options.sample_interval >= 1, "campaign: sample_interval must be >= 1");
  const bool ttest = options.statistic == Statistic::kWelchTTest;
  require(!ttest || options.order == 1,
          "campaign: the Welch t-test statistic supports order 1 only");

  const netlist::StableSupport supports(nl);
  const std::vector<Probe> universe =
      build_probe_universe(nl, supports, options.probe_scope_filter);
  require(!universe.empty(), "campaign: no probes (check probe_scope_filter)");

  const std::vector<SignalId>& stable_points = supports.stable_points();
  std::unordered_map<SignalId, std::size_t> dense_index;
  for (std::size_t i = 0; i < stable_points.size(); ++i)
    dense_index[stable_points[i]] = i;

  // Exact keys are only sound when the full key space fits the table: once
  // the bin cap forces overflow pooling, the group whose observations have
  // higher entropy pools more of its mass and a spurious group difference
  // appears. So: compact (Hamming-weight observations) whenever 2^bits
  // could exceed the cap; exact keys must also fit a 64-bit word. The cap
  // depends only on the options — computed once, not per probe set.
  std::size_t bin_cap_bits = 0;
  while ((std::size_t{2} << bin_cap_bits) <= options.max_bins_per_set &&
         bin_cap_bits < 60)
    ++bin_cap_bits;
  const std::size_t exact_limit =
      std::min({options.max_observation_bits, bin_cap_bits, std::size_t{60}});

  // Enumerate probe sets and dedupe by union observation: a pair whose union
  // equals another set's union (including any single probe) is statistically
  // identical, so only the first instance is evaluated.
  const bool transitions = options.model == ProbeModel::kGlitchTransition;
  std::vector<PreparedSet> prepared;
  std::size_t dropped = 0;
  {
    std::unordered_map<std::vector<SignalId>, std::size_t, ObservationHash>
        seen;
    const auto sets = enumerate_probe_sets(universe.size(), options.order);
    seen.reserve(sets.size());
    for (const auto& set : sets) {
      std::vector<SignalId> observed;
      for (std::size_t pi : set)
        observed.insert(observed.end(), universe[pi].observed.begin(),
                        universe[pi].observed.end());
      std::sort(observed.begin(), observed.end());
      observed.erase(std::unique(observed.begin(), observed.end()),
                     observed.end());
      if (seen.contains(observed)) continue;
      if (options.max_probe_sets && prepared.size() >= options.max_probe_sets) {
        ++dropped;
        continue;
      }
      const auto [seen_it, inserted] =
          seen.emplace(std::move(observed), prepared.size());
      SCA_ASSERT(inserted, "campaign: probe-set dedup raced");
      const std::vector<SignalId>& obs = seen_it->first;
      PreparedSet p;
      for (std::size_t pi : set) {
        if (!p.name.empty()) p.name += " & ";
        p.name += universe[pi].name;
        p.representatives.push_back(universe[pi].representative);
      }
      p.dense.reserve(obs.size());
      for (SignalId sig : obs) p.dense.push_back(dense_index.at(sig));
      p.observation_bits = obs.size() * (transitions ? 2 : 1);
      p.compacted = p.observation_bits > exact_limit;
      p.direct_table = !p.compacted &&
                       p.observation_bits <= stats::FlatCountTable::kMaxDirectBits;
      p.table.set_bin_limit(options.max_bins_per_set);
      if (p.direct_table)
        p.table.init_direct(static_cast<unsigned>(p.observation_bits));
      prepared.push_back(std::move(p));
    }
  }

  if (std::getenv("SCA_DEBUG_SETS")) {
    std::map<std::size_t, std::size_t> exact_hist, compact_hist;
    for (const auto& p : prepared)
      (p.compacted ? compact_hist : exact_hist)[p.observation_bits]++;
    std::fprintf(stderr, "sets=%zu exact:", prepared.size());
    for (auto [b, n] : exact_hist) std::fprintf(stderr, " %zub x%zu", b, n);
    std::fprintf(stderr, " | compacted:");
    for (auto [b, n] : compact_hist) std::fprintf(stderr, " %zub x%zu", b, n);
    std::fprintf(stderr, "\n");
  }

  const std::vector<GroupInputs> groups =
      collect_groups(nl, options.fixed_values);

  std::vector<SignalId> plain_randoms;
  {
    std::unordered_set<SignalId> nonzero_members;
    for (const auto& bus : options.nonzero_random_buses)
      for (SignalId s : bus) nonzero_members.insert(s);
    for (const auto& in : nl.inputs())
      if (in.role == InputRole::kRandom && !nonzero_members.contains(in.signal))
        plain_randoms.push_back(in.signal);
  }

  // Lane width and kernel: the compiled levelized tape at the resolved
  // width by default, the interpreted 64-lane reference on request (the
  // oracle the tape is tested against). The campaign only ever reads
  // stable points, so the tape is dead-gate-eliminated against them.
  require(!options.interpreted_kernel || options.lanes == 0 ||
              options.lanes == 64,
          "campaign: the interpreted oracle kernel runs 64 lanes only");
  const unsigned lanes =
      options.interpreted_kernel ? 64 : common::resolve_lanes(options.lanes);
  const unsigned limbs = lanes / 64;
  constexpr unsigned kMaxLimbs = 8;

  // Shared read-only evaluation plan; every worker simulator runs over it.
  sim::ScheduleOptions schedule_options;
  schedule_options.lanes = lanes;
  schedule_options.compile = !options.interpreted_kernel;
  schedule_options.observed = stable_points;
  const sim::Schedule schedule(nl, schedule_options);
  const unsigned threads = common::resolve_threads(options.threads);

  // Fresh randomness comes from the counter-mode PRG: every drawn word is
  // a pure function of (seed, cycle, slot, word index), where `cycle` is
  // the absolute simulated cycle of a 64-lane run,
  //
  //   cycle = (run * 2 + group) * cycles_per_group + cycle_in_group,
  //
  // and `slot` numbers the fresh-randomness consumers statically: per
  // secret group one secret slot and one slot per drawn share, then the
  // plain random inputs, then the nonzero buses. Addressing draws by
  // absolute run (not by chunk stream position) is what makes the
  // statistics bit-identical for every lane width, thread count, chunk
  // partition, and checkpoint/resume split.
  struct GroupSlots {
    std::uint32_t secret = 0;
    std::uint32_t shares0 = 0;  // slot of share 0; share sh at shares0 + sh
  };
  std::vector<GroupSlots> group_slots;
  std::uint32_t prg_slots = 0;
  for (const GroupInputs& g : groups) {
    GroupSlots gs;
    gs.secret = prg_slots++;
    gs.shares0 = prg_slots;
    prg_slots += static_cast<std::uint32_t>(g.share_bits.size() - 1);
    group_slots.push_back(gs);
  }
  const std::uint32_t plain_slot0 = prg_slots;
  prg_slots += static_cast<std::uint32_t>(plain_randoms.size());
  const std::uint32_t bus_slot0 = prg_slots;
  prg_slots += static_cast<std::uint32_t>(options.nonzero_random_buses.size());

  const std::size_t samples_per_run =
      std::max<std::size_t>(1, options.samples_per_run);
  const std::size_t cycles_per_group =
      options.warmup_cycles + samples_per_run * options.sample_interval;

  // Feeds one cycle of inputs for a wide run covering the 64-lane runs
  // [run0, run0 + active). Secrets and masks are drawn directly as bit
  // planes (word index = bit plane), XOR-sharing happens in plane space,
  // and nonzero bytes are rejection-sampled in plane space: a lane whose
  // drawn byte is zero takes the next 8-word block of its stream until
  // every lane is nonzero.
  // Null calibration turns the campaign into random-vs-random: the "fixed"
  // group draws fresh secrets too (from the same counter coordinates), so
  // the null hypothesis holds by construction and any verdict is a false
  // positive of the statistic.
  const bool null_calibration = options.null_calibration;
  auto feed_cycle = [&](sim::Simulator& simulator, const CounterPrg& prg,
                        std::size_t run0, unsigned active, int group,
                        std::size_t cycle_in_group) {
    std::uint64_t cyc[kMaxLimbs];
    for (unsigned b = 0; b < active; ++b)
      cyc[b] = (static_cast<std::uint64_t>(run0 + b) * 2 +
                static_cast<std::uint64_t>(group)) *
                   cycles_per_group +
               cycle_in_group;
    const bool fixed_group = group == 0;
    std::uint64_t acc[8][kMaxLimbs];
    std::uint64_t mask_plane[8][kMaxLimbs];
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const GroupInputs& g = groups[gi];
      const GroupSlots& gs = group_slots[gi];
      if (fixed_group && !null_calibration) {
        for (std::uint32_t p = 0; p < g.bits; ++p) {
          const std::uint64_t w =
              (g.fixed_byte >> p) & 1u ? ~std::uint64_t{0} : 0;
          for (unsigned b = 0; b < active; ++b) acc[p][b] = w;
        }
      } else {
        for (unsigned b = 0; b < active; ++b) {
          const CounterPrg::Stream s = prg.stream(cyc[b], gs.secret);
          for (std::uint32_t p = 0; p < g.bits; ++p)
            acc[p][b] = CounterPrg::word_at(s, p);
        }
      }
      const std::size_t num_shares = g.share_bits.size();
      for (std::size_t sh = 0; sh + 1 < num_shares; ++sh) {
        for (unsigned b = 0; b < active; ++b) {
          const CounterPrg::Stream s =
              prg.stream(cyc[b], gs.shares0 + static_cast<std::uint32_t>(sh));
          for (std::uint32_t p = 0; p < g.bits; ++p) {
            const std::uint64_t m = CounterPrg::word_at(s, p);
            mask_plane[p][b] = m;
            acc[p][b] ^= m;
          }
        }
        for (std::uint32_t p = 0; p < g.bits; ++p) {
          std::uint64_t* dst = simulator.input_limbs(g.share_bits[sh][p]);
          for (unsigned b = 0; b < active; ++b) dst[b] = mask_plane[p][b];
        }
      }
      for (std::uint32_t p = 0; p < g.bits; ++p) {
        std::uint64_t* dst =
            simulator.input_limbs(g.share_bits[num_shares - 1][p]);
        for (unsigned b = 0; b < active; ++b) dst[b] = acc[p][b];
      }
    }
    for (std::size_t i = 0; i < plain_randoms.size(); ++i) {
      std::uint64_t* dst = simulator.input_limbs(plain_randoms[i]);
      const std::uint32_t slot = plain_slot0 + static_cast<std::uint32_t>(i);
      for (unsigned b = 0; b < active; ++b)
        dst[b] = CounterPrg::word_at(prg.stream(cyc[b], slot), 0);
    }
    for (std::size_t bi = 0; bi < options.nonzero_random_buses.size(); ++bi) {
      const gadgets::Bus& bus = options.nonzero_random_buses[bi];
      const std::uint32_t slot = bus_slot0 + static_cast<std::uint32_t>(bi);
      const std::size_t nbits = bus.size();
      SCA_ASSERT(nbits >= 1 && nbits <= 8,
                 "campaign: nonzero buses are 1..8 bits");
      std::uint64_t planes[8][kMaxLimbs];
      for (unsigned b = 0; b < active; ++b) {
        const CounterPrg::Stream s = prg.stream(cyc[b], slot);
        std::uint64_t pl[8];
        std::uint64_t nonzero = 0;
        for (std::size_t p = 0; p < nbits; ++p) {
          pl[p] = CounterPrg::word_at(s, static_cast<std::uint32_t>(p));
          nonzero |= pl[p];
        }
        std::uint32_t widx = 8;
        for (std::uint64_t zero = ~nonzero; zero; widx += 8) {
          std::uint64_t redrawn = 0;
          for (std::size_t p = 0; p < nbits; ++p) {
            const std::uint64_t d =
                CounterPrg::word_at(s, widx + static_cast<std::uint32_t>(p));
            pl[p] |= d & zero;
            redrawn |= d;
          }
          zero &= ~redrawn;
        }
        for (std::size_t p = 0; p < nbits; ++p) planes[p][b] = pl[p];
      }
      for (std::size_t p = 0; p < nbits; ++p) {
        std::uint64_t* dst = simulator.input_limbs(bus[p]);
        for (unsigned b = 0; b < active; ++b) dst[b] = planes[p][b];
      }
    }
  };

  auto snapshot_stable = [&](const sim::Simulator& simulator,
                             std::vector<std::uint64_t>& into) {
    into.resize(stable_points.size() * limbs);
    std::uint64_t* out = into.data();
    for (std::size_t i = 0; i < stable_points.size(); ++i)
      std::memcpy(out + i * limbs, simulator.value_limbs(stable_points[i]),
                  limbs * sizeof(std::uint64_t));
  };

  // Accumulates a buffer of samples into chunk-local tables for the probe
  // sets [set_begin, set_end). Set-major for cache locality; templated on
  // the limb count so every inner loop works on whole SIMD words.
  //
  // The bit-sliced path never leaves lane-word space until the final
  // histogram update: per-lane Hamming weights come from a carry-save
  // vertical counter over SIMD words (O(k) word ops for k observation
  // words), exact keys from one 64x64 bit-matrix transpose per limb per
  // sample (64 keys at once), and counts land in flat direct-indexed /
  // open-addressed tables. Inactive tail limbs are never read: vertical
  // counters and transposes extract limbs [0, active) only, and the
  // conjunction popcounts stop at `active`. The scalar path is the per-bit
  // reference; both feed identical integer counts into identical downstream
  // operations, so their statistics are bit-identical (asserted by tests).
  const bool bitsliced = options.accumulation == Accumulation::kBitSliced;
  auto accumulate_impl = [&]<unsigned kLimbs>(
                             const std::vector<Sample>& buf,
                             std::size_t set_begin, std::size_t set_end,
                             ChunkAccumulators& acc,
                             std::vector<stats::FlatCountTable>& direct_tables) {
    using Word = common::SimdWord<kLimbs>;
    common::WideVerticalCounter<kLimbs> vc_now, vc_prev;
    std::array<std::uint16_t, 64> hw_now{};
    std::array<std::uint64_t, 64> keys{};
    std::vector<Word> hw_combos;  // compacted-path conjunction scratch
    const auto obs_word = [](const std::vector<std::uint64_t>& vals,
                             std::size_t d) {
      return Word::load(vals.data() + d * kLimbs);
    };
    for (std::size_t si = set_begin; si < set_end; ++si) {
      const PreparedSet& set = prepared[si];
      const std::size_t k = set.dense.size();
      const auto set_start = acc_debug_enabled()
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
      const auto charge = [&](std::atomic<std::uint64_t>& bucket) {
        if (acc_debug_enabled())
          bucket += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - set_start)
                  .count());
      };
      if (ttest) {
        auto& hist = acc.hw_hist[si - set_begin];
        for (const Sample& sample : buf) {
          auto& h = hist[static_cast<std::size_t>(sample.group)];
          if (bitsliced) {
            // TVLA: per-lane Hamming weight of the (extended) observation,
            // all lanes per vertical-counter pass.
            vc_now.clear();
            for (std::size_t d : set.dense) vc_now.add(obs_word(sample.now, d));
            if (transitions)
              for (std::size_t d : set.dense)
                vc_now.add(obs_word(sample.prev, d));
            for (unsigned b = 0; b < sample.active; ++b) {
              vc_now.lane_counts(b, hw_now.data());
              for (unsigned lane = 0; lane < 64; ++lane) ++h[hw_now[lane]];
            }
          } else {
            for (unsigned b = 0; b < sample.active; ++b) {
              for (unsigned lane = 0; lane < 64; ++lane) {
                unsigned hw = 0;
                for (std::size_t d : set.dense) {
                  hw += (sample.now[d * kLimbs + b] >> lane) & 1u;
                  if (transitions)
                    hw += (sample.prev[d * kLimbs + b] >> lane) & 1u;
                }
                ++h[hw];
              }
            }
          }
        }
        charge(g_acc_path_nanos.ttest);
        continue;
      }
      stats::FlatCountTable& table = set.direct_table
                                         ? direct_tables[si - set_begin]
                                         : acc.tables[si - set_begin];
      if (!bitsliced) {
        for (const Sample& sample : buf) {
          for (unsigned b = 0; b < sample.active; ++b) {
            for (unsigned lane = 0; lane < 64; ++lane) {
              std::uint64_t key;
              if (set.compacted) {
                // Compact mode: per-cycle Hamming weight of the observation.
                unsigned hn = 0, hp = 0;
                for (std::size_t d : set.dense) {
                  hn += (sample.now[d * kLimbs + b] >> lane) & 1u;
                  if (transitions)
                    hp += (sample.prev[d * kLimbs + b] >> lane) & 1u;
                }
                key = hn * 257u + hp;
              } else {
                std::uint64_t obs = 0;
                std::size_t bit = 0;
                for (std::size_t d : set.dense)
                  obs |= ((sample.now[d * kLimbs + b] >> lane) & 1u) << bit++;
                if (transitions)
                  for (std::size_t d : set.dense)
                    obs |= ((sample.prev[d * kLimbs + b] >> lane) & 1u)
                           << bit++;
                key = obs;
              }
              table.add(key, sample.group);
            }
          }
        }
        charge(g_acc_path_nanos.scalar);
        continue;
      }
      if (set.compacted) {
        // Hamming-weight pairs histogrammed in plane space: the vertical
        // counter's bit-planes are the binary digits of the per-lane
        // counts, so conjunction-expanding pn (+ pp) planes yields one
        // lane-mask per (hn, hp) value and a popcount replaces 64 table
        // updates. The add() insertion order differs from the per-lane
        // reference, but chunk tables are unlimited (no pooling before
        // the sorted master merge), so the accumulated counts match
        // bin for bin.
        for (const Sample& sample : buf) {
          vc_now.clear();
          for (std::size_t d : set.dense) vc_now.add(obs_word(sample.now, d));
          const unsigned pn = vc_now.planes_in_use();
          unsigned pp = 0;
          if (transitions) {
            vc_prev.clear();
            for (std::size_t d : set.dense)
              vc_prev.add(obs_word(sample.prev, d));
            pp = vc_prev.planes_in_use();
          }
          const std::size_t n_hw = std::size_t{1} << (pn + pp);
          if (hw_combos.size() < n_hw) hw_combos.resize(n_hw);
          hw_combos[0] = Word::ones();
          std::size_t n = 1;
          for (unsigned j = 0; j < pn; ++j) {
            const Word w = vc_now.plane(j);
            for (std::size_t c = 0; c < n; ++c) {
              const Word m = hw_combos[c];
              hw_combos[c + n] = m & w;
              hw_combos[c] = m & ~w;
            }
            n <<= 1;
          }
          for (unsigned j = 0; j < pp; ++j) {
            const Word w = vc_prev.plane(j);
            for (std::size_t c = 0; c < n; ++c) {
              const Word m = hw_combos[c];
              hw_combos[c + n] = m & w;
              hw_combos[c] = m & ~w;
            }
            n <<= 1;
          }
          const std::uint64_t hn_mask = (std::uint64_t{1} << pn) - 1;
          const bool full = sample.active == kLimbs;
          for (std::size_t c = 0; c < n; ++c) {
            const unsigned cnt = full ? hw_combos[c].popcount()
                                      : hw_combos[c].popcount(sample.active);
            if (!cnt) continue;
            const std::uint64_t hn = c & hn_mask;
            const std::uint64_t hp = c >> pn;
            table.add(hn * 257u + hp, sample.group, cnt);
          }
        }
        charge(g_acc_path_nanos.compacted);
        continue;
      }
      if (set.observation_bits <= kPopcountBits) {
        // Narrow exact sets (the bulk of a first-order campaign): the whole
        // 2^bits histogram of a sample comes from conjunction popcounts —
        // combos[key] has lane L set iff lane L observed `key` — with no
        // transpose and no per-lane work at all. The expansion is pure SIMD
        // word logic; only the final per-key popcount touches limbs, and it
        // stops at the active limb. Direct tables guaranteed
        // (kPopcountBits < kMaxDirectBits), so add() order is irrelevant to
        // the stored integer counts.
        std::array<Word, std::size_t{1} << kPopcountBits> combos;
        std::uint64_t* const counts = table.direct_data();
        for (const Sample& sample : buf) {
          combos[0] = Word::ones();
          std::size_t n = 1;
          for (std::size_t i = 0; i < k; ++i) {
            const Word w = obs_word(sample.now, set.dense[i]);
            for (std::size_t c = 0; c < n; ++c) {
              const Word m = combos[c];
              combos[c + n] = m & w;
              combos[c] = m & ~w;
            }
            n <<= 1;
          }
          if (transitions) {
            for (std::size_t i = 0; i < k; ++i) {
              const Word w = obs_word(sample.prev, set.dense[i]);
              for (std::size_t c = 0; c < n; ++c) {
                const Word m = combos[c];
                combos[c + n] = m & w;
                combos[c] = m & ~w;
              }
              n <<= 1;
            }
          }
          std::uint64_t* const group_counts =
              counts + static_cast<std::size_t>(sample.group);
          if (sample.active == kLimbs) {
            for (std::size_t key = 0; key < n; ++key)
              group_counts[2 * key] +=
                  static_cast<std::uint64_t>(combos[key].popcount());
          } else {
            for (std::size_t key = 0; key < n; ++key)
              group_counts[2 * key] += static_cast<std::uint64_t>(
                  combos[key].popcount(sample.active));
          }
        }
        charge(g_acc_path_nanos.narrow);
        continue;
      }
      // Wider exact sets: gather the observation words as matrix rows and
      // transpose one 64-lane block per active limb; row L then holds lane
      // L's key. Up to 64/bits samples of the same group pack into one
      // transpose (sample s at bit offset s*bits), amortizing its fixed
      // cost; add_packed() extracts sample-major. Limb blocks replay the
      // same key multiset as the 64-lane reference, just in a different
      // insertion order — direct tables are order-free and chunk tables
      // are unlimited (pooling only happens at the sorted master merge),
      // so the counts stay bit-identical.
      {
        const unsigned pack = static_cast<unsigned>(
            std::size_t{64} / set.observation_bits);
        std::size_t idx = 0;
        while (idx < buf.size()) {
          const int group = buf[idx].group;
          const unsigned active = buf[idx].active;
          const std::size_t idx0 = idx;
          unsigned packed = 0;
          while (idx < buf.size() && packed < pack &&
                 buf[idx].group == group) {
            ++packed;
            ++idx;
          }
          for (unsigned b = 0; b < active; ++b) {
            for (unsigned s = 0; s < packed; ++s) {
              const Sample& sample = buf[idx0 + s];
              std::uint64_t* row = keys.data() + s * set.observation_bits;
              for (std::size_t i = 0; i < k; ++i)
                row[i] = sample.now[set.dense[i] * kLimbs + b];
              if (transitions)
                for (std::size_t i = 0; i < k; ++i)
                  row[k + i] = sample.prev[set.dense[i] * kLimbs + b];
            }
            std::fill(keys.begin() + packed * set.observation_bits, keys.end(),
                      0);
            common::transpose64(keys.data());
            table.add_packed(keys.data(),
                             static_cast<unsigned>(set.observation_bits),
                             packed, group);
          }
        }
        charge(g_acc_path_nanos.packed);
      }
    }
  };
  auto accumulate = [&](const std::vector<Sample>& buf, std::size_t set_begin,
                        std::size_t set_end, ChunkAccumulators& acc,
                        std::vector<stats::FlatCountTable>& direct_tables) {
    switch (limbs) {
      case 1:
        accumulate_impl.template operator()<1>(buf, set_begin, set_end, acc,
                                               direct_tables);
        break;
      case 4:
        accumulate_impl.template operator()<4>(buf, set_begin, set_end, acc,
                                               direct_tables);
        break;
      case 8:
        accumulate_impl.template operator()<8>(buf, set_begin, set_end, acc,
                                               direct_tables);
        break;
      default:
        SCA_ASSERT(false, "campaign: unsupported limb count");
    }
  };

  // --- main loop ------------------------------------------------------------------
  const std::size_t observations_per_run = 64 * samples_per_run;
  const std::size_t runs_per_group = common::ceil_div(
      std::max<std::size_t>(options.simulations, 64), observations_per_run);

  // The run budget is sharded into fixed chunks; chunk c simulates the
  // 64-lane runs [c * runs_per_chunk, ...), whose randomness the counter
  // PRG addresses by absolute run. The chunk grid depends only on the
  // workload — never on the thread count or the lane width — so every
  // thread count and every lane width produces bit-identical statistics
  // (wide execution blocks align to the chunk start; a chunk tail shorter
  // than the lane width just runs with inactive limbs). ~256 chunks bound
  // the ordered merge overhead while load-balancing well beyond any sane
  // thread count. Campaigns of at least 256 runs round the chunk size up
  // to the widest limb count, so the steady-state execution block is full
  // at every lane width; tiny campaigns keep the fine seed grid instead —
  // stage/early-stop granularity matters more than SIMD width there.
  const std::size_t runs_per_chunk = [&] {
    const std::size_t fine = common::ceil_div(runs_per_group, std::size_t{256});
    if (runs_per_group < 256) return fine;
    return common::ceil_div(fine, std::size_t{kMaxLimbs}) * kMaxLimbs;
  }();
  const std::size_t num_chunks =
      common::ceil_div(runs_per_group, runs_per_chunk);
  const std::size_t cycles_per_run = 2 * cycles_per_group;

  // Stage boundaries over the chunk grid. A stage is a contiguous chunk
  // range; because every chunk draws from its own seeded stream and the
  // master merge is chunk-ordered, running the ranges back to back (in one
  // process or across a checkpoint/resume) is bit-identical to one
  // uninterrupted pass over [0, num_chunks).
  std::vector<std::size_t> stage_bounds;
  {
    std::vector<double> fractions = options.stage_schedule;
    if (fractions.empty()) {
      const unsigned s = resolve_stages(options.stages);
      for (unsigned i = 1; i <= s; ++i)
        fractions.push_back(static_cast<double>(i) / s);
    }
    require(std::abs(fractions.back() - 1.0) < 1e-9,
            "campaign: stage schedule must end at 1.0");
    stage_bounds.push_back(0);
    double prev = 0.0;
    for (double f : fractions) {
      require(f > prev && f <= 1.0 + 1e-9,
              "campaign: stage fractions must ascend within (0, 1]");
      prev = f;
      const std::size_t b = std::min<std::size_t>(
          num_chunks, static_cast<std::size_t>(std::llround(
                          f * static_cast<double>(num_chunks))));
      if (b > stage_bounds.back()) stage_bounds.push_back(b);
    }
    if (stage_bounds.back() != num_chunks) stage_bounds.push_back(num_chunks);
  }
  const std::size_t stages_total = stage_bounds.size() - 1;

  // Split the probe sets into batches whose contingency tables fit the
  // memory budget; the simulation re-runs per batch (it is cheap next to
  // table accumulation, and the chunk seeds make passes identical). Each
  // worker holds its own in-flight chunk tables, so the per-batch share of
  // the budget shrinks with the thread count. Master and chunk tables are
  // both flat (two 64-bit counts per direct slot, ~3 words per hashed slot
  // at half load); 64 bytes/bin covers the master plus one in-flight chunk
  // table.
  constexpr std::size_t kBytesPerBin = 64;
  const std::size_t samples_total = 2 * runs_per_group * observations_per_run;
  const std::size_t batch_budget = std::max<std::size_t>(
      options.table_memory_budget / (std::size_t{threads} + 1), kBytesPerBin);
  std::vector<std::pair<std::size_t, std::size_t>> batch_ranges;
  {
    std::size_t begin = 0;
    while (begin < prepared.size()) {
      std::size_t end = begin;
      std::size_t budget_used = 0;
      while (end < prepared.size()) {
        const PreparedSet& set = prepared[end];
        std::size_t est_bins = options.max_bins_per_set;
        if (set.compacted) {
          est_bins = std::min<std::size_t>(est_bins, 1024);
        } else if (set.observation_bits < 40) {
          est_bins = std::min<std::size_t>(
              est_bins, std::size_t{1} << set.observation_bits);
        }
        est_bins = std::min(est_bins, samples_total);
        std::size_t bytes = est_bins * kBytesPerBin;
        if (set.direct_table)  // master + chunk table materialize the space
          bytes = std::max<std::size_t>(
              bytes, std::size_t{32} << set.observation_bits);
        if (end > begin && budget_used + bytes > batch_budget) break;
        budget_used += bytes;
        ++end;
      }
      batch_ranges.emplace_back(begin, end);
      begin = end;
    }
  }

  // Configuration fingerprint: everything the snapshot's validity depends
  // on — seed, budget, chunk/stage/batch grids, sampling parameters, and
  // the prepared probe sets. Thread count, lane width, kernel choice, and
  // accumulation regime are deliberately excluded (all are bit-identical
  // by contract, so resuming across them is sound); the batch grid covers
  // the one way threads could matter, since the memory budget splits per
  // worker.
  std::uint64_t fingerprint = 0;
  {
    common::Fnv1a fp;
    fp.feed(options.seed)
        .feed(static_cast<std::uint64_t>(runs_per_group))
        .feed(static_cast<std::uint64_t>(runs_per_chunk))
        .feed(static_cast<std::uint64_t>(num_chunks))
        .feed(static_cast<std::uint64_t>(samples_per_run))
        .feed(static_cast<std::uint64_t>(options.sample_interval))
        .feed(static_cast<std::uint64_t>(options.warmup_cycles))
        .feed(static_cast<std::uint64_t>(options.order))
        .feed(static_cast<std::uint64_t>(options.model))
        .feed(static_cast<std::uint64_t>(options.statistic))
        .feed(static_cast<std::uint64_t>(options.max_bins_per_set))
        .feed(static_cast<std::uint64_t>(options.null_calibration ? 1 : 0))
        .feed(options.threshold);
    for (std::size_t b : stage_bounds)
      fp.feed(static_cast<std::uint64_t>(b));
    for (const auto& [bb, be] : batch_ranges)
      fp.feed(static_cast<std::uint64_t>(bb))
          .feed(static_cast<std::uint64_t>(be));
    for (const auto& p : prepared)
      fp.feed(p.name).feed(static_cast<std::uint64_t>(p.observation_bits));
    fingerprint = fp.value();
  }

  std::vector<ProbeSetResult> finished;
  finished.reserve(prepared.size());
  std::size_t total_cycles = 0;
  std::size_t simulations_done = 0;
  double simulate_seconds = 0.0;
  double accumulate_seconds = 0.0;
  double merge_seconds = 0.0;

  // Resume: load a matching snapshot, restore the finalized results and the
  // in-progress batch's master accumulators, and continue from its cursor.
  std::size_t resume_batch = 0;
  std::size_t resume_stages = 0;
  std::size_t streak = 0;
  bool early_stopped = false;
  bool complete = false;
  bool resumed = false;
  if (options.resume && !options.checkpoint_path.empty()) {
    const bool exists =
        std::ifstream(options.checkpoint_path, std::ios::binary).good();
    if (exists) {
      CampaignSnapshot snap = load_checkpoint(options.checkpoint_path);
      require(snap.fingerprint == fingerprint,
              "campaign: checkpoint does not match this campaign "
              "configuration (different netlist, seed, budget, or schedule)");
      require(snap.num_chunks == num_chunks &&
                  snap.batches_total == batch_ranges.size() &&
                  snap.batch_index <= batch_ranges.size(),
              "campaign: checkpoint cursor out of range");
      resume_batch = snap.batch_index;
      resume_stages = snap.stages_done;
      streak = snap.streak;
      early_stopped = snap.early_stopped;
      complete = snap.complete;
      total_cycles = snap.total_cycles;
      simulations_done = snap.simulations_done;
      simulate_seconds = snap.simulate_seconds;
      accumulate_seconds = snap.accumulate_seconds;
      merge_seconds = snap.merge_seconds;
      finished = std::move(snap.finished);
      require(complete || resume_batch < batch_ranges.size(),
              "campaign: incomplete checkpoint past the last batch");
      require(complete || resume_stages < stages_total,
              "campaign: checkpoint stage cursor out of range");
      require(finished.size() ==
                  (resume_batch < batch_ranges.size()
                       ? batch_ranges[resume_batch].first
                       : prepared.size()),
              "campaign: checkpoint finished-set count mismatch");
      if (!complete && resume_stages > 0) {
        const auto [bb, be] = batch_ranges[resume_batch];
        require(snap.sets.size() == be - bb,
                "campaign: checkpoint accumulator count mismatch");
        for (std::size_t i = 0; i < snap.sets.size(); ++i) {
          PreparedSet& p = prepared[bb + i];
          SetSnapshot& s = snap.sets[i];
          require(s.has_table != ttest,
                  "campaign: checkpoint accumulator kind mismatch");
          if (ttest) {
            p.moments = s.moments;
          } else {
            require(s.table.direct_mode() == p.direct_table,
                    "campaign: checkpoint table mode mismatch");
            p.table = std::move(s.table);
          }
        }
      }
      resumed = true;
    }
  }
  std::size_t table_batches = resume_batch;

  // One simulation pass over the chunks [chunk_begin, chunk_end) — one
  // evaluation stage — accumulating only the probe sets
  // [set_begin, set_end), sharded over the worker pool. Chunk results merge
  // into the master tables strictly in chunk order (workers park
  // out-of-order chunks in `pending`), which keeps the bin-overflow pooling
  // and the floating-point Welford merges deterministic — and makes the
  // concatenation of stage passes bit-identical to one full pass.
  auto simulate_into = [&](std::size_t set_begin, std::size_t set_end,
                           std::size_t chunk_begin, std::size_t chunk_end) {
    std::mutex merge_mutex;
    std::map<std::size_t, ChunkAccumulators> pending;
    std::size_t next_merge = chunk_begin;

    common::parallel_for_stateful(
        chunk_end - chunk_begin, threads,
        [&] {
          WorkerCtx ctx(schedule);
          if (!ttest) {
            // Direct-indexed sets accumulate into worker-lifetime tables
            // (commutative integer merges need no chunk ordering); only
            // hashed and compacted sets go through per-chunk tables.
            ctx.direct_tables.resize(set_end - set_begin);
            for (std::size_t si = set_begin; si < set_end; ++si)
              if (prepared[si].direct_table)
                ctx.direct_tables[si - set_begin].init_direct(
                    static_cast<unsigned>(prepared[si].observation_bits));
          }
          return ctx;
        },
        [&](WorkerCtx& ctx, std::size_t index) {
          const std::size_t chunk = chunk_begin + index;
          const CounterPrg prg(options.seed);
          ChunkAccumulators acc;
          if (ttest) {
            acc.hw_hist.resize(set_end - set_begin);
            for (std::size_t si = set_begin; si < set_end; ++si)
              for (auto& h : acc.hw_hist[si - set_begin])
                h.assign(prepared[si].observation_bits + 1, 0);
          } else {
            // Chunk tables (the non-direct sets' accumulators) carry no bin
            // limit, mirroring the unlimited per-chunk maps of the scalar
            // engine: pooling happens only at the deterministic master
            // merge.
            acc.tables.resize(set_end - set_begin);
          }

          const std::size_t run_begin = chunk * runs_per_chunk;
          const std::size_t run_end =
              std::min(runs_per_group, run_begin + runs_per_chunk);
          std::vector<Sample> buf;
          buf.reserve(2 * samples_per_run);
          // One iteration simulates limbs() 64-lane runs at once; the last
          // wide run of the chunk may carry a tail (active < limbs), whose
          // inactive limbs are fed nothing and accumulated never.
          for (std::size_t run = run_begin; run < run_end; run += limbs) {
            const unsigned active = static_cast<unsigned>(
                std::min<std::size_t>(limbs, run_end - run));
            buf.clear();
            const auto sim_start = std::chrono::steady_clock::now();
            // Groups are interleaved so that a bin-limited table fills its
            // key space from both groups evenly; running one group first
            // would push the other group's tail keys into the overflow bin
            // and fake a difference.
            for (int group = 0; group < 2; ++group) {
              sim::Simulator& simulator = ctx.simulator;
              simulator.reset();
              std::size_t cycle_in_group = 0;
              // The previous-cycle snapshot only feeds transition models;
              // skipping it elsewhere saves a full stable-point copy per
              // cycle.
              for (std::size_t c = 0; c < options.warmup_cycles; ++c) {
                feed_cycle(simulator, prg, run, active, group,
                           cycle_in_group++);
                simulator.settle();
                if (transitions) snapshot_stable(simulator, ctx.prev_snapshot);
                simulator.clock();
              }
              for (std::size_t s = 0; s < samples_per_run; ++s) {
                for (std::size_t c = 0; c < options.sample_interval; ++c) {
                  feed_cycle(simulator, prg, run, active, group,
                             cycle_in_group++);
                  simulator.settle();
                  if (c + 1 == options.sample_interval) {
                    Sample sample;
                    sample.group = group;
                    sample.active = active;
                    snapshot_stable(simulator, sample.now);
                    if (transitions) sample.prev = ctx.prev_snapshot;
                    buf.push_back(std::move(sample));
                  }
                  if (transitions)
                    snapshot_stable(simulator, ctx.prev_snapshot);
                  simulator.clock();
                }
              }
            }
            const auto acc_start = std::chrono::steady_clock::now();
            ctx.simulate_seconds +=
                std::chrono::duration<double>(acc_start - sim_start).count();
            accumulate(buf, set_begin, set_end, acc, ctx.direct_tables);
            ctx.accumulate_seconds += seconds_since(acc_start);
          }

          std::lock_guard<std::mutex> lock(merge_mutex);
          const auto merge_start = std::chrono::steady_clock::now();
          pending.emplace(chunk, std::move(acc));
          for (auto it = pending.find(next_merge); it != pending.end();
               it = pending.find(next_merge)) {
            const ChunkAccumulators& ready = it->second;
            for (std::size_t si = set_begin; si < set_end; ++si) {
              if (ttest) {
                // Histogram counts fold into the master Welford state as
                // weighted adds in ascending-weight order — a fixed
                // per-chunk FP operation sequence, so the t statistic is
                // bit-identical for any thread count and identical between
                // the bit-sliced and scalar paths.
                const auto& hist = ready.hw_hist[si - set_begin];
                for (int group = 0; group < 2; ++group) {
                  auto& m = prepared[si].moments[static_cast<std::size_t>(group)];
                  const auto& h = hist[static_cast<std::size_t>(group)];
                  for (std::size_t hw = 0; hw < h.size(); ++hw)
                    if (h[hw]) m.add_weighted(static_cast<double>(hw), h[hw]);
                }
              } else if (!prepared[si].direct_table) {
                prepared[si].table.merge(ready.tables[si - set_begin]);
              }
            }
            pending.erase(it);
            ++next_merge;
          }
          merge_seconds += seconds_since(merge_start);
        },
        [&](WorkerCtx& ctx) {
          // Worker drained: fold its lifetime state into the master under
          // the merge lock — the commutative direct-table reduction (one
          // flat array add per table, any worker order) and the phase
          // timers.
          std::lock_guard<std::mutex> lock(merge_mutex);
          simulate_seconds += ctx.simulate_seconds;
          accumulate_seconds += ctx.accumulate_seconds;
          const auto merge_start = std::chrono::steady_clock::now();
          if (!ttest) {
            for (std::size_t si = set_begin; si < set_end; ++si)
              if (prepared[si].direct_table)
                prepared[si].table.merge(ctx.direct_tables[si - set_begin]);
          }
          merge_seconds += seconds_since(merge_start);
        });
    SCA_ASSERT(next_merge == chunk_end && pending.empty(),
               "campaign: chunk merge did not drain");
    const std::size_t run_begin = chunk_begin * runs_per_chunk;
    const std::size_t run_end =
        std::min(runs_per_group, chunk_end * runs_per_chunk);
    total_cycles += (run_end - run_begin) * cycles_per_run;
    simulations_done += (run_end - run_begin) * observations_per_run;
  };

  const double threshold = ttest ? stats::kTvlaThreshold : options.threshold;
  const bool early_stop_enabled = options.early_stop_stages > 0;
  // Interim statistics cost a g_test per set per stage; skip them when
  // nobody observes them (no stage callback, no early stopping).
  const bool want_interim = early_stop_enabled || bool(options.on_stage);
  const bool checkpointing = !options.checkpoint_path.empty();

  auto save_snapshot = [&](std::size_t batch_index, std::size_t stages_done,
                           bool is_complete) {
    CampaignSnapshot snap;
    snap.fingerprint = fingerprint;
    snap.num_chunks = num_chunks;
    snap.batches_total = batch_ranges.size();
    snap.batch_index = batch_index;
    snap.stages_done = stages_done;
    snap.streak = streak;
    snap.early_stopped = early_stopped;
    snap.complete = is_complete;
    snap.total_cycles = total_cycles;
    snap.simulations_done = simulations_done;
    snap.simulate_seconds = simulate_seconds;
    snap.accumulate_seconds = accumulate_seconds;
    snap.merge_seconds = merge_seconds;
    snap.finished = finished;
    if (stages_done > 0 && batch_index < batch_ranges.size()) {
      const auto [bb, be] = batch_ranges[batch_index];
      snap.sets.reserve(be - bb);
      for (std::size_t si = bb; si < be; ++si) {
        SetSnapshot set;
        set.has_table = !ttest;
        if (ttest)
          set.moments = prepared[si].moments;
        else
          set.table = prepared[si].table;
        snap.sets.push_back(std::move(set));
      }
    }
    save_checkpoint(options.checkpoint_path, snap);
  };

  // Severity over the batches finalized so far (including any restored from
  // a snapshot) — the baseline every stage's interim statistics extend.
  double finished_max = 0.0;
  std::size_t finished_leaks = 0;
  std::string finished_worst;
  for (const ProbeSetResult& r : finished) {
    if (r.severity > finished_max) {
      finished_max = r.severity;
      finished_worst = r.name;
    }
    if (r.severity > threshold) ++finished_leaks;
  }

  std::size_t stages_completed = resume_batch * stages_total + resume_stages;
  unsigned stages_run_here = 0;
  bool interrupted = false;

  auto emit_stage = [&](std::size_t stage, std::size_t batch, double cur_max,
                        const std::string& worst, std::size_t leaks,
                        double stage_secs, bool saved) {
    if (!options.on_stage) return;
    StageReport rep;
    rep.stage = stage;
    rep.stages_total = stages_total;
    rep.batch = batch + 1;
    rep.batches_total = batch_ranges.size();
    const std::size_t runs_done =
        std::min(runs_per_group, stage_bounds[stage] * runs_per_chunk);
    const std::size_t runs_prev =
        std::min(runs_per_group, stage_bounds[stage - 1] * runs_per_chunk);
    rep.simulations_done = runs_done * observations_per_run;
    rep.simulations_total = runs_per_group * observations_per_run;
    rep.max_minus_log10_p = cur_max;
    rep.worst_set = worst;
    rep.leaking_sets = leaks;
    rep.pass_so_far = leaks == 0;
    rep.stage_seconds = stage_secs;
    rep.sims_per_second =
        stage_secs > 0.0
            ? 2.0 * static_cast<double>((runs_done - runs_prev) *
                                        observations_per_run) /
                  stage_secs
            : 0.0;
    rep.simulate_seconds = simulate_seconds;
    rep.accumulate_seconds = accumulate_seconds;
    rep.merge_seconds = merge_seconds;
    rep.early_stopped = early_stopped;
    if (saved) rep.checkpoint_path = options.checkpoint_path;
    options.on_stage(rep);
  };

  for (std::size_t b = resume_batch;
       b < batch_ranges.size() && !complete && !interrupted && !early_stopped;
       ++b) {
    const auto [set_begin, set_end] = batch_ranges[b];
    const std::size_t first_stage = b == resume_batch ? resume_stages : 0;
    std::size_t final_stage = stages_total;
    double last_stage_secs = 0.0;
    for (std::size_t s = first_stage; s < stages_total; ++s) {
      const auto stage_start = std::chrono::steady_clock::now();
      simulate_into(set_begin, set_end, stage_bounds[s], stage_bounds[s + 1]);
      const double stage_secs = seconds_since(stage_start);
      last_stage_secs = stage_secs;
      ++stages_completed;
      ++stages_run_here;

      // Interim verdict-so-far over the current batch's master
      // accumulators, on top of the finalized-batch baseline.
      double cur_max = finished_max;
      std::string worst = finished_worst;
      std::size_t leaks = finished_leaks;
      if (want_interim) {
        for (std::size_t si = set_begin; si < set_end; ++si) {
          const double sev =
              ttest ? std::abs(stats::welch_t_test(prepared[si].moments[0],
                                                   prepared[si].moments[1])
                                   .t)
                    : prepared[si].table.g_test().minus_log10_p;
          if (sev > threshold) ++leaks;
          if (sev > cur_max) {
            cur_max = sev;
            worst = prepared[si].name;
          }
        }
        if (early_stop_enabled) {
          if (cur_max > threshold + options.early_stop_margin)
            ++streak;
          else
            streak = 0;
          if (streak >= options.early_stop_stages) early_stopped = true;
        }
      }

      if (s + 1 == stages_total || early_stopped) {
        // Batch (or campaign) done: finalize below, then snapshot/report
        // with exact statistics.
        final_stage = s + 1;
        break;
      }
      if (checkpointing) save_snapshot(b, s + 1, /*is_complete=*/false);
      emit_stage(s + 1, b, cur_max, worst, leaks, stage_secs, checkpointing);
      if (options.stop_after_stage &&
          stages_run_here >= options.stop_after_stage) {
        // Simulated kill: leave the snapshot on disk, return a partial
        // result flagged `interrupted`.
        interrupted = true;
        break;
      }
    }
    if (interrupted) break;

    // Finalize the batch — under early stopping, from its partial counts —
    // and release its table memory.
    for (std::size_t i = set_begin; i < set_end; ++i) {
      ProbeSetResult r;
      r.name = std::move(prepared[i].name);
      r.representatives = std::move(prepared[i].representatives);
      r.observation_bits = prepared[i].observation_bits;
      r.compacted = prepared[i].compacted;
      if (ttest) {
        r.t = stats::welch_t_test(prepared[i].moments[0],
                                  prepared[i].moments[1]);
        r.severity = std::abs(r.t.t);
      } else {
        r.g = prepared[i].table.g_test();
        prepared[i].table = stats::FlatCountTable();
        r.severity = r.g.minus_log10_p;
      }
      r.minus_log10_p = r.severity;
      if (r.severity > finished_max) {
        finished_max = r.severity;
        finished_worst = r.name;
      }
      if (r.severity > threshold) ++finished_leaks;
      finished.push_back(std::move(r));
    }
    ++table_batches;

    const bool campaign_over =
        early_stopped || b + 1 == batch_ranges.size();
    if (checkpointing) save_snapshot(b + 1, 0, campaign_over);
    emit_stage(final_stage, b, finished_max, finished_worst, finished_leaks,
               last_stage_secs, checkpointing);
    if (!campaign_over && options.stop_after_stage &&
        stages_run_here >= options.stop_after_stage)
      interrupted = true;
  }

  // --- statistics -------------------------------------------------------------------
  CampaignResult result;
  result.model = options.model;
  result.order = options.order;
  result.statistic = options.statistic;
  result.total_sets = prepared.size();
  result.dropped_sets = dropped;
  result.simulations_per_group = runs_per_group * observations_per_run;
  result.threads_used = threads;
  result.lanes_used = lanes;
  result.total_cycles = total_cycles;
  result.table_batches = table_batches;
  result.simulate_seconds = simulate_seconds;
  result.accumulate_seconds = accumulate_seconds;
  result.merge_seconds = merge_seconds;
  result.stages_total = stages_total;
  result.stages_completed = stages_completed;
  result.early_stopped = early_stopped;
  result.interrupted = interrupted;
  result.resumed = resumed;
  result.simulations_done = simulations_done;
  result.unevaluated_sets = prepared.size() - finished.size();
  for (ProbeSetResult& r : finished) {
    r.leaking = r.severity > threshold;
    if (r.leaking) {
      result.pass = false;
      ++result.leaking_sets;
    }
    result.max_minus_log10_p = std::max(result.max_minus_log10_p, r.minus_log10_p);
    result.results.push_back(std::move(r));
  }
  std::sort(result.results.begin(), result.results.end(),
            [](const ProbeSetResult& a, const ProbeSetResult& b) {
              return a.minus_log10_p > b.minus_log10_p;
            });
  report_acc_debug();
  return result;
}

}  // namespace sca::eval
