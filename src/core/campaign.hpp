// PROLEAD-style fixed-vs-random leakage evaluation campaign.
//
// Two groups of bit-parallel simulations are run: the *fixed* group feeds
// the same unmasked secrets every cycle, the *random* group feeds fresh
// uniform secrets; both groups re-share the secrets and redraw every fresh
// mask each cycle. For every (deduplicated, extended) probe set, the
// distribution of its observation is accumulated per group and compared
// with a G-test; leakage is declared when -log10(p) exceeds the threshold
// (7.0, matching PROLEAD). This is the tool flow the paper runs against the
// masked Sbox with 4 million simulations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/probes.hpp"
#include "src/gadgets/bus.hpp"
#include "src/netlist/ir.hpp"
#include "src/stats/gtest_stat.hpp"
#include "src/stats/ttest.hpp"

namespace sca::eval {

/// Which statistic decides leakage.
enum class Statistic {
  kGTest,       ///< PROLEAD's contingency G-test on full observations
  kWelchTTest,  ///< TVLA Welch t-test on observation Hamming weights
                ///< (first order only; threshold |t| > 4.5)
};

/// How per-sample observations turn into statistics.
enum class Accumulation {
  /// 64-lane word-space hot path: carry-save vertical popcounts for
  /// Hamming-weight observations, one 64x64 bit-matrix transpose per sample
  /// for exact keys, flat (open-addressed / direct-indexed) count tables.
  kBitSliced,
  /// Reference path: per-lane bit extraction with scalar shifts. Produces
  /// bin-for-bin identical counts and bit-identical statistics — kept as
  /// the equivalence oracle for the bit-sliced path (and exercised by
  /// tests), not for production use.
  kScalar,
};

struct CampaignOptions {
  ProbeModel model = ProbeModel::kGlitch;
  unsigned order = 1;
  Statistic statistic = Statistic::kGTest;
  Accumulation accumulation = Accumulation::kBitSliced;

  /// Observations collected per group (the paper's "number of simulations").
  std::size_t simulations = 200'000;

  std::uint64_t seed = 1;

  /// Worker threads for the sharded simulation (0 = the SCA_THREADS
  /// environment variable, else hardware concurrency). The campaign is
  /// bit-identical for every thread count: the run budget is split into
  /// fixed chunks, chunk c draws from an RNG stream seeded by
  /// f(seed, c), and per-chunk tables merge in chunk order.
  unsigned threads = 0;

  /// Leakage threshold on -log10(p), PROLEAD's default.
  double threshold = 7.0;

  /// Cycles to run before the first sample (>= pipeline depth).
  std::size_t warmup_cycles = 8;

  /// Cycles between samples within one run; must exceed the pipeline depth
  /// so consecutive samples are statistically independent.
  std::size_t sample_interval = 8;

  /// Sample points taken per 64-lane run before resetting.
  std::size_t samples_per_run = 32;

  /// Observations wider than this are compacted to Hamming weights per cycle
  /// (PROLEAD's compact mode) to keep contingency tables meaningful.
  std::size_t max_observation_bits = 20;

  /// Fixed unmasked value per secret group for the fixed group of the test.
  /// Groups not listed default to 0x00.
  std::map<std::uint32_t, std::uint8_t> fixed_values;

  /// Random-byte buses that must be drawn from GF(256)* (the B2M masks).
  std::vector<gadgets::Bus> nonzero_random_buses;

  /// Optional hierarchical-name prefix restricting probe placement.
  std::string probe_scope_filter;

  /// Hard cap on evaluated probe sets (0 = unlimited); sets beyond the cap
  /// are dropped and reported, never silently.
  std::size_t max_probe_sets = 0;

  /// Distinct observation keys tracked per probe set; once exceeded, further
  /// new keys pool into one overflow bin (gross leaks live in frequent keys,
  /// and the G-test pools rare bins anyway).
  std::size_t max_bins_per_set = 1u << 16;

  /// Approximate memory budget for contingency tables. Large order-2
  /// campaigns are split into probe-set batches, re-running the (cheap,
  /// seeded) simulation once per batch to stay under the budget. The budget
  /// covers the master tables plus every worker's in-flight chunk tables,
  /// so the per-batch share shrinks as the thread count grows.
  std::size_t table_memory_budget = std::size_t{4096} * 1024 * 1024;
};

struct ProbeSetResult {
  std::string name;           ///< probe names joined with " & "
  std::vector<netlist::SignalId> representatives;
  std::size_t observation_bits = 0;
  bool compacted = false;     ///< Hamming-weight compaction applied
  stats::GTestResult g;       ///< valid when statistic == kGTest
  stats::TTestResult t;       ///< valid when statistic == kWelchTTest
  /// Severity on the campaign's scale: -log10(p) for the G-test, |t| for
  /// the t-test (compare against 7.0 resp. 4.5).
  double severity = 0.0;
  double minus_log10_p = 0.0;  ///< == severity for the G-test (convenience)
  bool leaking = false;
};

struct CampaignResult {
  bool pass = true;
  Statistic statistic = Statistic::kGTest;
  /// Worst severity over all sets (-log10(p) or |t| depending on statistic).
  double max_minus_log10_p = 0.0;
  std::size_t leaking_sets = 0;
  std::size_t total_sets = 0;
  std::size_t dropped_sets = 0;  ///< sets beyond max_probe_sets
  std::size_t simulations_per_group = 0;
  unsigned threads_used = 1;     ///< resolved worker-thread count
  /// Simulated clock cycles over all runs, groups, and table batches — the
  /// number of settle() passes; gate evaluations = total_cycles x
  /// combinational gates x 64 lanes. Feeds the perf trajectory.
  std::size_t total_cycles = 0;
  std::size_t table_batches = 0;  ///< simulation passes under the memory budget
  /// Per-phase CPU time summed over all workers and batches: simulation
  /// (input feeding, settle, snapshot), statistics accumulation, and the
  /// ordered chunk merge. On one thread these add up to ~wall time; with N
  /// workers they can exceed it (they are CPU seconds, not wall seconds).
  double simulate_seconds = 0.0;
  double accumulate_seconds = 0.0;
  double merge_seconds = 0.0;
  ProbeModel model = ProbeModel::kGlitch;
  unsigned order = 1;
  /// All probe-set results, sorted by -log10(p) descending.
  std::vector<ProbeSetResult> results;

  /// The top `n` results (most leaking first).
  std::vector<const ProbeSetResult*> top(std::size_t n) const;
};

/// Runs the campaign. The netlist must have at least one secret group with
/// a complete set of share inputs.
CampaignResult run_fixed_vs_random(const netlist::Netlist& nl,
                                   const CampaignOptions& options);

}  // namespace sca::eval
