// PROLEAD-style fixed-vs-random leakage evaluation campaign.
//
// Two groups of bit-parallel simulations are run: the *fixed* group feeds
// the same unmasked secrets every cycle, the *random* group feeds fresh
// uniform secrets; both groups re-share the secrets and redraw every fresh
// mask each cycle. For every (deduplicated, extended) probe set, the
// distribution of its observation is accumulated per group and compared
// with a G-test; leakage is declared when -log10(p) exceeds the threshold
// (7.0, matching PROLEAD). This is the tool flow the paper runs against the
// masked Sbox with 4 million simulations.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/probes.hpp"
#include "src/gadgets/bus.hpp"
#include "src/netlist/ir.hpp"
#include "src/stats/gtest_stat.hpp"
#include "src/stats/ttest.hpp"

namespace sca::eval {

/// Which statistic decides leakage.
enum class Statistic {
  kGTest,       ///< PROLEAD's contingency G-test on full observations
  kWelchTTest,  ///< TVLA Welch t-test on observation Hamming weights
                ///< (first order only; threshold |t| > 4.5)
};

/// How per-sample observations turn into statistics.
enum class Accumulation {
  /// 64-lane word-space hot path: carry-save vertical popcounts for
  /// Hamming-weight observations, one 64x64 bit-matrix transpose per sample
  /// for exact keys, flat (open-addressed / direct-indexed) count tables.
  kBitSliced,
  /// Reference path: per-lane bit extraction with scalar shifts. Produces
  /// bin-for-bin identical counts and bit-identical statistics — kept as
  /// the equivalence oracle for the bit-sliced path (and exercised by
  /// tests), not for production use.
  kScalar,
};

/// Progress snapshot emitted after every completed evaluation stage (see
/// CampaignOptions::stages). All statistics are cumulative over the stages
/// completed so far; on the final stage of a batch they equal the exact
/// finalized batch results.
struct StageReport {
  std::size_t stage = 0;         ///< 1-based index of the just-completed stage
  std::size_t stages_total = 0;
  std::size_t batch = 0;         ///< 1-based table batch being evaluated
  std::size_t batches_total = 0;
  /// Per-group observations accumulated so far in this batch's pass.
  std::size_t simulations_done = 0;
  std::size_t simulations_total = 0;  ///< per-group budget of a full pass
  /// Worst severity so far across finalized batches and the current batch's
  /// interim statistics (-log10(p) for the G-test, |t| for the t-test).
  double max_minus_log10_p = 0.0;
  std::string worst_set;         ///< name of the worst probe set so far
  std::size_t leaking_sets = 0;  ///< sets over threshold so far
  bool pass_so_far = true;
  double stage_seconds = 0.0;    ///< wall time of this stage's simulation
  double sims_per_second = 0.0;  ///< both groups, this stage, wall-clock
  /// Cumulative per-phase CPU seconds (same meaning as in CampaignResult).
  double simulate_seconds = 0.0;
  double accumulate_seconds = 0.0;
  double merge_seconds = 0.0;
  /// Accumulation sub-phases (subset of accumulate_seconds, bit-sliced
  /// G-test path only): observation-row gathering, bit-matrix transposes,
  /// and histogram/table updates.
  double extract_seconds = 0.0;
  double transpose_seconds = 0.0;
  double histogram_seconds = 0.0;
  /// Probe sets answered by alias fan-out instead of their own
  /// accumulators (identical observation sets — see
  /// CampaignResult::aliased_probe_sets).
  std::size_t aliased_probe_sets = 0;
  bool early_stopped = false;    ///< this stage triggered early stopping
  std::string checkpoint_path;   ///< non-empty if a snapshot was just saved
};

struct CampaignOptions {
  ProbeModel model = ProbeModel::kGlitch;
  unsigned order = 1;
  Statistic statistic = Statistic::kGTest;
  Accumulation accumulation = Accumulation::kBitSliced;

  /// Observations collected per group (the paper's "number of simulations").
  std::size_t simulations = 200'000;

  std::uint64_t seed = 1;

  /// Worker threads for the sharded simulation (0 = the SCA_THREADS
  /// environment variable, else hardware concurrency). The campaign is
  /// bit-identical for every thread count: the run budget is split into
  /// fixed chunks, every fresh-randomness draw is a pure function of
  /// (seed, cycle, slot) through the counter-mode PRG, and per-chunk
  /// tables merge in chunk order.
  unsigned threads = 0;

  /// Simulation lane width: 64, 256, 512, or 0 = auto (the SCA_LANES
  /// environment variable, else the widest words the CPU runs well —
  /// 512 with AVX-512, 256 otherwise). The counter-mode PRG addresses
  /// randomness by absolute 64-lane run, so every lane width produces
  /// bit-identical statistics; the checkpoint fingerprint excludes it
  /// and a campaign may resume under a different width.
  unsigned lanes = 0;

  /// Run the interpreted (non-compiled, 64-lane) reference kernel instead
  /// of the levelized straight-line tape — the correctness oracle the
  /// compiled wide kernel is tested against. Requires lanes 0 or 64.
  bool interpreted_kernel = false;

  /// Leakage threshold on -log10(p), PROLEAD's default.
  double threshold = 7.0;

  /// Cycles to run before the first sample (>= pipeline depth).
  std::size_t warmup_cycles = 8;

  /// Cycles between samples within one run; must exceed the pipeline depth
  /// so consecutive samples are statistically independent.
  std::size_t sample_interval = 8;

  /// Sample points taken per 64-lane run before resetting.
  std::size_t samples_per_run = 32;

  /// Observations wider than this are compacted to Hamming weights per cycle
  /// (PROLEAD's compact mode) to keep contingency tables meaningful.
  std::size_t max_observation_bits = 20;

  /// Fixed unmasked value per secret group for the fixed group of the test.
  /// Groups not listed default to 0x00.
  std::map<std::uint32_t, std::uint8_t> fixed_values;

  /// Random-byte buses that must be drawn from GF(256)* (the B2M masks).
  std::vector<gadgets::Bus> nonzero_random_buses;

  /// Optional hierarchical-name prefix restricting probe placement.
  std::string probe_scope_filter;

  /// Hard cap on evaluated probe sets (0 = unlimited); sets beyond the cap
  /// are dropped and reported, never silently.
  std::size_t max_probe_sets = 0;

  /// Distinct observation keys tracked per probe set; once exceeded, further
  /// new keys pool into one overflow bin (gross leaks live in frequent keys,
  /// and the G-test pools rare bins anyway).
  std::size_t max_bins_per_set = 1u << 16;

  /// Approximate memory budget for contingency tables. Large order-2
  /// campaigns are split into probe-set batches, re-running the (cheap,
  /// seeded) simulation once per batch to stay under the budget. The budget
  /// covers the master tables plus every worker's in-flight chunk tables,
  /// so the per-batch share shrinks as the thread count grows.
  std::size_t table_memory_budget = std::size_t{4096} * 1024 * 1024;

  // --- staged evaluation --------------------------------------------------

  /// Number of evaluation stages the run budget is split into (0 = the
  /// SCA_STAGES environment variable, else 1 = the classic all-or-nothing
  /// run). Stages partition the fixed chunk grid, so a staged campaign is
  /// bit-identical to an unstaged one: stage s covers chunks
  /// [round(s/S * chunks), round((s+1)/S * chunks)) and the master
  /// accumulators after the last stage are the same integer counts / the
  /// same Welford FP operation sequence either way.
  unsigned stages = 0;

  /// Explicit stage schedule as cumulative budget fractions in (0, 1],
  /// ascending, last == 1 (e.g. {0.1, 0.3, 1.0}). Overrides `stages`.
  std::vector<double> stage_schedule;

  /// Early stopping: abort once the worst severity has exceeded
  /// threshold + early_stop_margin for this many *consecutive* stages
  /// (0 disables). The current batch is finalized from its partial counts;
  /// later batches are skipped and counted in unevaluated_sets.
  unsigned early_stop_stages = 0;
  double early_stop_margin = 0.0;

  /// Path of the campaign snapshot. When non-empty, a versioned binary
  /// checkpoint (master accumulators + cursor) is written atomically after
  /// every stage; with `resume`, a matching snapshot at this path is loaded
  /// and the campaign continues from its cursor, producing bit-identical
  /// final statistics to an uninterrupted run for any thread count.
  std::string checkpoint_path;

  /// Resume from `checkpoint_path` if a snapshot exists there (a missing
  /// file starts fresh; a corrupt or mismatched one throws common::Error).
  bool resume = false;

  /// Testing hook simulating a kill: stop after this many stages have run
  /// *in this process* (0 = run to completion). The checkpoint stays on
  /// disk and the partial result has `interrupted` set.
  unsigned stop_after_stage = 0;

  /// Called after every completed stage (in addition to checkpointing).
  std::function<void(const StageReport&)> on_stage;

  /// Null-calibration mode: the "fixed" group also draws fresh uniform
  /// secrets, making the null hypothesis true by construction. Any verdict
  /// above threshold is then a false positive of the statistic itself.
  bool null_calibration = false;
};

struct ProbeSetResult {
  std::string name;           ///< probe names joined with " & "
  std::vector<netlist::SignalId> representatives;
  std::size_t observation_bits = 0;
  bool compacted = false;     ///< Hamming-weight compaction applied
  stats::GTestResult g;       ///< valid when statistic == kGTest
  stats::TTestResult t;       ///< valid when statistic == kWelchTTest
  /// Severity on the campaign's scale: -log10(p) for the G-test, |t| for
  /// the t-test (compare against 7.0 resp. 4.5).
  double severity = 0.0;
  double minus_log10_p = 0.0;  ///< == severity for the G-test (convenience)
  bool leaking = false;
  /// Names of probe positions / probe sets whose observation set is
  /// identical to this one's — they were never accumulated separately, and
  /// this verdict applies to each of them verbatim (the dedup fan-out).
  std::vector<std::string> aliases;
};

struct CampaignResult {
  bool pass = true;
  Statistic statistic = Statistic::kGTest;
  /// Worst severity over all sets (-log10(p) or |t| depending on statistic).
  double max_minus_log10_p = 0.0;
  std::size_t leaking_sets = 0;
  std::size_t total_sets = 0;
  std::size_t dropped_sets = 0;  ///< sets beyond max_probe_sets
  std::size_t simulations_per_group = 0;
  unsigned threads_used = 1;     ///< resolved worker-thread count
  unsigned lanes_used = 64;      ///< resolved simulation lane width
  /// Simulated clock cycles over all runs, groups, and table batches, in
  /// 64-lane-run units regardless of lane width (wide words retire
  /// lanes/64 of these per settle() pass); gate evaluations =
  /// total_cycles x combinational gates x 64 lanes. Feeds the perf
  /// trajectory.
  std::size_t total_cycles = 0;
  std::size_t table_batches = 0;  ///< simulation passes under the memory budget
  /// Per-phase CPU time summed over all workers and batches: simulation
  /// (input feeding, settle, snapshot), statistics accumulation, and the
  /// ordered chunk merge. On one thread these add up to ~wall time; with N
  /// workers they can exceed it (they are CPU seconds, not wall seconds).
  double simulate_seconds = 0.0;
  double accumulate_seconds = 0.0;
  double merge_seconds = 0.0;
  /// Accumulation sub-phases of the bit-sliced G-test pipeline (subset of
  /// accumulate_seconds): gathering observation rows into transpose blocks,
  /// the 64x64 bit-matrix transposes, and histogram/table updates (trie
  /// expansion popcounts, packed-key extraction, HW histograms). The scalar
  /// oracle and the t-test vertical-counter path report zeros here.
  double extract_seconds = 0.0;
  double transpose_seconds = 0.0;
  double histogram_seconds = 0.0;
  /// Alias names recorded across all probe sets: probe positions folded at
  /// universe build (identical glitch cones) plus probe sets folded at
  /// enumeration (identical union observations). Each rode along on a
  /// canonical set's accumulators instead of being evaluated redundantly.
  std::size_t aliased_probe_sets = 0;
  /// Probe sets finalized as exact integer marginals of a hosting superset
  /// (no per-sample accumulation at all), summed over executed batches.
  std::size_t hosted_sets = 0;
  /// Probe-set shards of the 2-D (chunk x shard) schedule (max over
  /// batches; 1 = classic chunk-only scheduling).
  std::size_t set_shards = 1;
  ProbeModel model = ProbeModel::kGlitch;
  unsigned order = 1;
  /// Staged-evaluation bookkeeping. stages_completed counts stages finished
  /// across the whole campaign including any resumed-from snapshot; on an
  /// uninterrupted single-batch run it equals stages_total.
  std::size_t stages_total = 1;
  std::size_t stages_completed = 0;
  bool early_stopped = false;  ///< early stopping cut the budget short
  bool interrupted = false;    ///< stop_after_stage fired; snapshot on disk
  bool resumed = false;        ///< continued from a checkpoint
  /// Per-group observations actually simulated, summed over every pass and
  /// batch (equals simulations_per_group x table_batches when uninterrupted).
  std::size_t simulations_done = 0;
  /// Sets never evaluated because early stopping skipped their batches.
  std::size_t unevaluated_sets = 0;
  /// All probe-set results, sorted by -log10(p) descending.
  std::vector<ProbeSetResult> results;

  /// The top `n` results (most leaking first).
  std::vector<const ProbeSetResult*> top(std::size_t n) const;
};

/// Runs the campaign. The netlist must have at least one secret group with
/// a complete set of share inputs.
CampaignResult run_fixed_vs_random(const netlist::Netlist& nl,
                                   const CampaignOptions& options);

}  // namespace sca::eval
