#include "src/stats/gtest_stat.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/stats/pvalue.hpp"

namespace sca::stats {

void ContingencyTable::add(std::uint64_t key, int group, std::uint64_t count) {
  SCA_ASSERT(group == 0 || group == 1, "ContingencyTable: group must be 0/1");
  if (counts_.size() >= bin_limit_ && !counts_.contains(key))
    key = kOverflowKey;
  counts_[key][static_cast<std::size_t>(group)] += count;
}

void ContingencyTable::merge(const ContingencyTable& other) {
  if (counts_.size() + other.counts_.size() <= bin_limit_) {
    // Pooling cannot trigger: plain key-wise addition.
    for (const auto& [key, cnt] : other.counts_) {
      auto& mine = counts_[key];
      mine[0] += cnt[0];
      mine[1] += cnt[1];
    }
    return;
  }
  // The bin limit may force pooling during this merge. Visit the incoming
  // keys in sorted order so *which* keys overflow is a pure function of the
  // accumulated contents — never of hash-map iteration order — keeping
  // parallel campaigns bit-identical across thread counts.
  std::vector<std::uint64_t> keys;
  keys.reserve(other.counts_.size());
  for (const auto& [key, cnt] : other.counts_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t key : keys) {
    const auto& cnt = other.counts_.at(key);
    if (cnt[0]) add(key, 0, cnt[0]);
    if (cnt[1]) add(key, 1, cnt[1]);
  }
}

std::uint64_t ContingencyTable::group_total(int group) const {
  SCA_ASSERT(group == 0 || group == 1, "ContingencyTable: group must be 0/1");
  std::uint64_t total = 0;
  for (const auto& [key, cnt] : counts_)
    total += cnt[static_cast<std::size_t>(group)];
  return total;
}

namespace {

GTestResult g_test_on_columns(std::vector<std::array<std::uint64_t, 2>> cols,
                              double min_expected) {
  GTestResult result;
  std::uint64_t n0 = 0, n1 = 0;
  for (const auto& c : cols) {
    n0 += c[0];
    n1 += c[1];
  }
  result.n_fixed = n0;
  result.n_random = n1;
  const double n = static_cast<double>(n0 + n1);
  if (n0 == 0 || n1 == 0 || cols.size() < 2) {
    // One group empty or a single bin: no evidence of dependence.
    result.bins = cols.size();
    result.df = 0;
    result.minus_log10_p = 0.0;
    return result;
  }

  // Pool low-expectation columns into one residual column so the chi-squared
  // null stays a good approximation for the G statistic.
  std::vector<std::array<std::uint64_t, 2>> pooled;
  std::array<std::uint64_t, 2> residual{0, 0};
  bool residual_used = false;
  for (const auto& c : cols) {
    const double col_total = static_cast<double>(c[0] + c[1]);
    const double min_exp_in_col =
        col_total * static_cast<double>(std::min(n0, n1)) / n;
    if (min_exp_in_col < min_expected) {
      residual[0] += c[0];
      residual[1] += c[1];
      residual_used = true;
    } else {
      pooled.push_back(c);
    }
  }
  if (residual_used) pooled.push_back(residual);

  result.bins = pooled.size();
  if (pooled.size() < 2) {
    result.df = 0;
    result.minus_log10_p = 0.0;
    return result;
  }

  double g = 0.0;
  double sum_inv_col = 0.0;
  for (const auto& c : pooled) {
    const double col_total = static_cast<double>(c[0] + c[1]);
    sum_inv_col += 1.0 / col_total;
    const double e0 = col_total * static_cast<double>(n0) / n;
    const double e1 = col_total * static_cast<double>(n1) / n;
    if (c[0] > 0) g += static_cast<double>(c[0]) *
                       std::log(static_cast<double>(c[0]) / e0);
    if (c[1] > 0) g += static_cast<double>(c[1]) *
                       std::log(static_cast<double>(c[1]) / e1);
  }
  g *= 2.0;
  if (g < 0.0) g = 0.0;  // guard tiny negative rounding noise

  // Williams correction: with many sparse columns (expected counts near the
  // pooling threshold) the raw G statistic is biased a few percent above its
  // chi-squared null, which at tens of thousands of degrees of freedom is
  // enough to cross any fixed significance threshold. The correction removes
  // that bias and is negligible (q ~ 1) for the gross leaks we care about.
  const double df = static_cast<double>(pooled.size() - 1);
  const double row_term =
      n * (1.0 / static_cast<double>(n0) + 1.0 / static_cast<double>(n1)) - 1.0;
  const double col_term = n * sum_inv_col - 1.0;
  const double q = 1.0 + row_term * col_term / (6.0 * n * df);
  if (q > 1.0) g /= q;

  result.g = g;
  result.df = pooled.size() - 1;
  result.minus_log10_p = chi2_minus_log10_p(g, result.df);
  return result;
}

}  // namespace

GTestResult ContingencyTable::g_test(double min_expected) const {
  std::vector<std::array<std::uint64_t, 2>> cols;
  cols.reserve(counts_.size());
  for (const auto& [key, cnt] : counts_) cols.push_back(cnt);
  return g_test_on_columns(std::move(cols), min_expected);
}

GTestResult g_test_two_rows(const std::vector<std::uint64_t>& row_fixed,
                            const std::vector<std::uint64_t>& row_random,
                            double min_expected) {
  common::require(row_fixed.size() == row_random.size(),
                  "g_test_two_rows: row length mismatch");
  std::vector<std::array<std::uint64_t, 2>> cols;
  cols.reserve(row_fixed.size());
  for (std::size_t i = 0; i < row_fixed.size(); ++i) {
    if (row_fixed[i] == 0 && row_random[i] == 0) continue;
    cols.push_back({row_fixed[i], row_random[i]});
  }
  return g_test_on_columns(std::move(cols), min_expected);
}

}  // namespace sca::stats
