#include "src/stats/gtest_stat.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <ostream>

#include "src/common/bitops.hpp"
#include "src/common/check.hpp"
#include "src/common/serialize.hpp"
#include "src/stats/pvalue.hpp"

namespace sca::stats {

void ContingencyTable::add(std::uint64_t key, int group, std::uint64_t count) {
  SCA_ASSERT(group == 0 || group == 1, "ContingencyTable: group must be 0/1");
  if (counts_.size() >= bin_limit_ && !counts_.contains(key))
    key = kOverflowKey;
  counts_[key][static_cast<std::size_t>(group)] += count;
}

void ContingencyTable::merge(const ContingencyTable& other) {
  if (counts_.size() + other.counts_.size() <= bin_limit_) {
    // Pooling cannot trigger: plain key-wise addition.
    for (const auto& [key, cnt] : other.counts_) {
      auto& mine = counts_[key];
      mine[0] += cnt[0];
      mine[1] += cnt[1];
    }
    return;
  }
  // The bin limit may force pooling during this merge. Visit the incoming
  // keys in sorted order so *which* keys overflow is a pure function of the
  // accumulated contents — never of hash-map iteration order — keeping
  // parallel campaigns bit-identical across thread counts.
  std::vector<std::uint64_t> keys;
  keys.reserve(other.counts_.size());
  for (const auto& [key, cnt] : other.counts_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t key : keys) {
    const auto& cnt = other.counts_.at(key);
    if (cnt[0]) add(key, 0, cnt[0]);
    if (cnt[1]) add(key, 1, cnt[1]);
  }
}

void ContingencyTable::merge(const FlatCountTable& other) {
  const std::size_t incoming = other.bin_count();
  if (incoming == 0) return;
  if (counts_.size() + incoming <= bin_limit_) {
    // Pooling cannot trigger: plain key-wise addition, any visit order.
    if (other.direct_bits_ >= 0) {
      const std::size_t space = std::size_t{1} << other.direct_bits_;
      for (std::size_t key = 0; key < space; ++key) {
        const std::uint64_t c0 = other.direct_counts_[2 * key];
        const std::uint64_t c1 = other.direct_counts_[2 * key + 1];
        if (c0 == 0 && c1 == 0) continue;
        auto& mine = counts_[key];
        mine[0] += c0;
        mine[1] += c1;
      }
    } else {
      for (std::size_t slot = 0; slot < other.keys_.size(); ++slot) {
        if (other.keys_[slot] == FlatCountTable::kEmptySlot) continue;
        auto& mine = counts_[other.keys_[slot]];
        mine[0] += other.counts_[2 * slot];
        mine[1] += other.counts_[2 * slot + 1];
      }
    }
    if (other.overflow_used_) {
      auto& mine = counts_[FlatCountTable::kOverflowKey];
      mine[0] += other.overflow_[0];
      mine[1] += other.overflow_[1];
    }
    return;
  }
  // The bin limit may force pooling: ascending key order, exactly like
  // merge(const ContingencyTable&). Direct mode is ascending by layout; the
  // overflow bin (kOverflowKey == ~0) always sorts last.
  auto add_pair = [&](std::uint64_t key, std::uint64_t c0, std::uint64_t c1) {
    if (c0) add(key, 0, c0);
    if (c1) add(key, 1, c1);
  };
  if (other.direct_bits_ >= 0) {
    const std::size_t space = std::size_t{1} << other.direct_bits_;
    for (std::size_t key = 0; key < space; ++key)
      add_pair(key, other.direct_counts_[2 * key],
               other.direct_counts_[2 * key + 1]);
  } else {
    std::vector<std::size_t> slots;
    slots.reserve(other.used_slots_);
    for (std::size_t slot = 0; slot < other.keys_.size(); ++slot)
      if (other.keys_[slot] != FlatCountTable::kEmptySlot) slots.push_back(slot);
    std::sort(slots.begin(), slots.end(),
              [&](std::size_t a, std::size_t b) {
                return other.keys_[a] < other.keys_[b];
              });
    for (std::size_t slot : slots)
      add_pair(other.keys_[slot], other.counts_[2 * slot],
               other.counts_[2 * slot + 1]);
  }
  if (other.overflow_used_)
    add_pair(FlatCountTable::kOverflowKey, other.overflow_[0],
             other.overflow_[1]);
}

std::uint64_t ContingencyTable::group_total(int group) const {
  SCA_ASSERT(group == 0 || group == 1, "ContingencyTable: group must be 0/1");
  std::uint64_t total = 0;
  for (const auto& [key, cnt] : counts_)
    total += cnt[static_cast<std::size_t>(group)];
  return total;
}

namespace {

GTestResult g_test_on_columns(std::vector<std::array<std::uint64_t, 2>> cols,
                              double min_expected) {
  GTestResult result;
  std::uint64_t n0 = 0, n1 = 0;
  for (const auto& c : cols) {
    n0 += c[0];
    n1 += c[1];
  }
  result.n_fixed = n0;
  result.n_random = n1;
  const double n = static_cast<double>(n0 + n1);
  if (n0 == 0 || n1 == 0 || cols.size() < 2) {
    // One group empty or a single bin: no evidence of dependence.
    result.bins = cols.size();
    result.df = 0;
    result.minus_log10_p = 0.0;
    return result;
  }

  // Pool low-expectation columns into one residual column so the chi-squared
  // null stays a good approximation for the G statistic.
  std::vector<std::array<std::uint64_t, 2>> pooled;
  std::array<std::uint64_t, 2> residual{0, 0};
  bool residual_used = false;
  for (const auto& c : cols) {
    const double col_total = static_cast<double>(c[0] + c[1]);
    const double min_exp_in_col =
        col_total * static_cast<double>(std::min(n0, n1)) / n;
    if (min_exp_in_col < min_expected) {
      residual[0] += c[0];
      residual[1] += c[1];
      residual_used = true;
    } else {
      pooled.push_back(c);
    }
  }
  if (residual_used) pooled.push_back(residual);

  result.bins = pooled.size();
  if (pooled.size() < 2) {
    result.df = 0;
    result.minus_log10_p = 0.0;
    return result;
  }

  double g = 0.0;
  double sum_inv_col = 0.0;
  for (const auto& c : pooled) {
    const double col_total = static_cast<double>(c[0] + c[1]);
    sum_inv_col += 1.0 / col_total;
    const double e0 = col_total * static_cast<double>(n0) / n;
    const double e1 = col_total * static_cast<double>(n1) / n;
    if (c[0] > 0) g += static_cast<double>(c[0]) *
                       std::log(static_cast<double>(c[0]) / e0);
    if (c[1] > 0) g += static_cast<double>(c[1]) *
                       std::log(static_cast<double>(c[1]) / e1);
  }
  g *= 2.0;
  if (g < 0.0) g = 0.0;  // guard tiny negative rounding noise

  // Williams correction: with many sparse columns (expected counts near the
  // pooling threshold) the raw G statistic is biased a few percent above its
  // chi-squared null, which at tens of thousands of degrees of freedom is
  // enough to cross any fixed significance threshold. The correction removes
  // that bias and is negligible (q ~ 1) for the gross leaks we care about.
  const double df = static_cast<double>(pooled.size() - 1);
  const double row_term =
      n * (1.0 / static_cast<double>(n0) + 1.0 / static_cast<double>(n1)) - 1.0;
  const double col_term = n * sum_inv_col - 1.0;
  const double q = 1.0 + row_term * col_term / (6.0 * n * df);
  if (q > 1.0) g /= q;

  result.g = g;
  result.df = pooled.size() - 1;
  result.minus_log10_p = chi2_minus_log10_p(g, result.df);
  return result;
}

}  // namespace

GTestResult ContingencyTable::g_test(double min_expected) const {
  std::vector<std::array<std::uint64_t, 2>> cols;
  cols.reserve(counts_.size());
  for (const auto& [key, cnt] : counts_) cols.push_back(cnt);
  return g_test_on_columns(std::move(cols), min_expected);
}

void ContingencyTable::serialize(std::ostream& os) const {
  common::write_u64(os, bin_limit_);
  std::vector<std::uint64_t> keys;
  keys.reserve(counts_.size());
  for (const auto& [key, cnt] : counts_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  common::write_u64(os, keys.size());
  for (std::uint64_t key : keys) {
    const auto& cnt = counts_.at(key);
    common::write_u64(os, key);
    common::write_u64(os, cnt[0]);
    common::write_u64(os, cnt[1]);
  }
}

ContingencyTable ContingencyTable::deserialize(std::istream& is) {
  ContingencyTable table;
  table.bin_limit_ = common::read_u64(is);
  const std::uint64_t nkeys = common::read_u64(is);
  // A saturated table holds bin_limit_ resident keys plus the overflow bin
  // (the add() pooling check fires strictly after the limit is reached).
  common::require(nkeys == 0 || nkeys - 1 <= table.bin_limit_,
                  "ContingencyTable: snapshot exceeds its own bin limit");
  table.counts_.reserve(static_cast<std::size_t>(nkeys));
  for (std::uint64_t i = 0; i < nkeys; ++i) {
    const std::uint64_t key = common::read_u64(is);
    const std::uint64_t c0 = common::read_u64(is);
    const std::uint64_t c1 = common::read_u64(is);
    common::require(table.counts_.emplace(key, std::array<std::uint64_t, 2>{
                                                   c0, c1}).second,
                    "ContingencyTable: duplicate key in snapshot");
  }
  return table;
}

bool ContingencyTable::operator==(const ContingencyTable& other) const {
  return bin_limit_ == other.bin_limit_ && counts_ == other.counts_;
}

// --- FlatCountTable -----------------------------------------------------------

void FlatCountTable::init_direct(unsigned key_bits) {
  SCA_ASSERT(direct_bits_ < 0 && used_slots_ == 0 && !overflow_used_,
             "FlatCountTable: init_direct on a non-empty table");
  SCA_ASSERT(key_bits <= 30, "FlatCountTable: direct key space too large");
  SCA_ASSERT((std::size_t{1} << key_bits) <= bin_limit_,
             "FlatCountTable: direct key space exceeds the bin limit");
  direct_bits_ = static_cast<int>(key_bits);
  direct_counts_.assign(std::size_t{2} << key_bits, 0);
}

void FlatCountTable::set_bin_limit(std::size_t limit) {
  SCA_ASSERT(direct_bits_ < 0 ||
                 (std::size_t{1} << direct_bits_) <= limit,
             "FlatCountTable: bin limit below the direct key space");
  bin_limit_ = limit;
}

void FlatCountTable::reserve(std::size_t expected_keys) {
  if (direct_bits_ >= 0) return;
  std::size_t cap = 64;
  while (cap < 2 * expected_keys) cap <<= 1;
  if (cap <= keys_.size()) return;
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::uint64_t> old_counts = std::move(counts_);
  keys_.assign(cap, kEmptySlot);
  counts_.assign(2 * cap, 0);
  capacity_mask_ = cap - 1;
  hash_shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
  for (std::size_t slot = 0; slot < old_keys.size(); ++slot) {
    if (old_keys[slot] == kEmptySlot) continue;
    const std::size_t dst = find_slot(old_keys[slot]);
    keys_[dst] = old_keys[slot];
    counts_[2 * dst] = old_counts[2 * slot];
    counts_[2 * dst + 1] = old_counts[2 * slot + 1];
  }
}

std::size_t FlatCountTable::find_slot(std::uint64_t key) const {
  std::size_t slot =
      static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> hash_shift_);
  while (keys_[slot] != kEmptySlot && keys_[slot] != key)
    slot = (slot + 1) & capacity_mask_;
  return slot;
}

void FlatCountTable::grow() {
  const std::size_t cap = keys_.empty() ? 64 : 2 * keys_.size();
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::uint64_t> old_counts = std::move(counts_);
  keys_.assign(cap, kEmptySlot);
  counts_.assign(2 * cap, 0);
  capacity_mask_ = cap - 1;
  hash_shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
  for (std::size_t slot = 0; slot < old_keys.size(); ++slot) {
    if (old_keys[slot] == kEmptySlot) continue;
    const std::size_t dst = find_slot(old_keys[slot]);
    keys_[dst] = old_keys[slot];
    counts_[2 * dst] = old_counts[2 * slot];
    counts_[2 * dst + 1] = old_counts[2 * slot + 1];
  }
}

void FlatCountTable::add_hashed(std::uint64_t key, int group,
                                std::uint64_t count) {
  if (2 * (used_slots_ + 1) > keys_.size()) grow();
  const std::size_t slot = find_slot(key);
  if (keys_[slot] == kEmptySlot) {
    // New key: pool it once the bin limit is reached (the overflow bin
    // itself counts as one tracked bin, mirroring ContingencyTable).
    if (used_slots_ + (overflow_used_ ? 1 : 0) >= bin_limit_) {
      overflow_used_ = true;
      overflow_[static_cast<std::size_t>(group)] += count;
      return;
    }
    keys_[slot] = key;
    ++used_slots_;
  }
  counts_[2 * slot + static_cast<std::size_t>(group)] += count;
}

void FlatCountTable::add(std::uint64_t key, int group, std::uint64_t count) {
  SCA_ASSERT(group == 0 || group == 1, "FlatCountTable: group must be 0/1");
  if (direct_bits_ >= 0) {
    SCA_ASSERT(key < (std::uint64_t{1} << direct_bits_),
               "FlatCountTable: key outside the direct key space");
    direct_counts_[2 * static_cast<std::size_t>(key) +
                   static_cast<std::size_t>(group)] += count;
    return;
  }
  if (key == kOverflowKey) {
    // Routed to the dedicated overflow bin (also frees ~0 to act as the
    // empty-slot sentinel).
    overflow_used_ = true;
    overflow_[static_cast<std::size_t>(group)] += count;
    return;
  }
  add_hashed(key, group, count);
}

void FlatCountTable::add_keys64(const std::uint64_t keys[64], int group) {
  if (direct_bits_ >= 0) {
    std::uint64_t* counts = direct_counts_.data() + group;
    for (unsigned lane = 0; lane < 64; ++lane)
      counts[2 * static_cast<std::size_t>(keys[lane])] += 1;
    return;
  }
  for (unsigned lane = 0; lane < 64; ++lane) {
    const std::uint64_t key = keys[lane];
    if (key == kOverflowKey) {
      overflow_used_ = true;
      overflow_[static_cast<std::size_t>(group)] += 1;
    } else {
      add_hashed(key, group, 1);
    }
  }
}

void FlatCountTable::add_packed(const std::uint64_t rows[64],
                                unsigned key_bits, unsigned samples,
                                int group) {
  SCA_ASSERT(key_bits > 0 && samples >= 1 &&
                 static_cast<std::size_t>(key_bits) * samples <= 64,
             "FlatCountTable: packed samples exceed the 64-bit rows");
  const std::uint64_t mask =
      key_bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << key_bits) - 1;
  if (direct_bits_ >= 0) {
    SCA_ASSERT(key_bits <= static_cast<unsigned>(direct_bits_),
               "FlatCountTable: packed keys outside the direct key space");
    std::uint64_t* counts = direct_counts_.data() + group;
    for (unsigned s = 0; s < samples; ++s) {
      const unsigned shift = s * key_bits;
      for (unsigned lane = 0; lane < 64; ++lane)
        counts[2 * static_cast<std::size_t>((rows[lane] >> shift) & mask)] += 1;
    }
    return;
  }
  for (unsigned s = 0; s < samples; ++s) {
    const unsigned shift = s * key_bits;
    for (unsigned lane = 0; lane < 64; ++lane) {
      const std::uint64_t key = (rows[lane] >> shift) & mask;
      if (key == kOverflowKey) {  // only reachable for key_bits == 64
        overflow_used_ = true;
        overflow_[static_cast<std::size_t>(group)] += 1;
      } else {
        add_hashed(key, group, 1);
      }
    }
  }
}

void FlatCountTable::add_marginalized(const FlatCountTable& host,
                                      std::uint64_t key_mask) {
  SCA_ASSERT(direct_bits_ >= 0 && host.direct_bits_ >= 0,
             "FlatCountTable: marginalization requires direct mode");
  SCA_ASSERT(common::popcount64(key_mask) == direct_bits_,
             "FlatCountTable: key mask width mismatch");
  SCA_ASSERT(host.direct_bits_ >= 64 ||
                 key_mask < (std::uint64_t{1} << host.direct_bits_),
             "FlatCountTable: key mask outside the host key space");
  const std::size_t space = std::size_t{1} << host.direct_bits_;
  for (std::size_t key = 0; key < space; ++key) {
    const std::uint64_t c0 = host.direct_counts_[2 * key];
    const std::uint64_t c1 = host.direct_counts_[2 * key + 1];
    if (c0 == 0 && c1 == 0) continue;
    const std::size_t idx = static_cast<std::size_t>(
        common::extract_bits64(static_cast<std::uint64_t>(key), key_mask));
    direct_counts_[2 * idx] += c0;
    direct_counts_[2 * idx + 1] += c1;
  }
}

void FlatCountTable::merge(const FlatCountTable& other) {
  if (direct_bits_ >= 0 && other.direct_bits_ == direct_bits_) {
    // Same materialized key space: one flat integer array add.
    for (std::size_t i = 0; i < direct_counts_.size(); ++i)
      direct_counts_[i] += other.direct_counts_[i];
  } else if (other.direct_bits_ >= 0) {
    const std::size_t space = std::size_t{1} << other.direct_bits_;
    for (std::size_t key = 0; key < space; ++key) {
      const std::uint64_t c0 = other.direct_counts_[2 * key];
      const std::uint64_t c1 = other.direct_counts_[2 * key + 1];
      if (c0) add(key, 0, c0);
      if (c1) add(key, 1, c1);
    }
  } else {
    const std::size_t incoming =
        other.used_slots_ + (other.overflow_used_ ? 1 : 0);
    if (direct_bits_ >= 0 || bin_count() + incoming <= bin_limit_) {
      // Pooling cannot trigger: any visit order lands the same counts, so
      // take the slots as they come.
      for (std::size_t slot = 0; slot < other.keys_.size(); ++slot) {
        if (other.keys_[slot] == kEmptySlot) continue;
        if (other.counts_[2 * slot])
          add(other.keys_[slot], 0, other.counts_[2 * slot]);
        if (other.counts_[2 * slot + 1])
          add(other.keys_[slot], 1, other.counts_[2 * slot + 1]);
      }
    } else {
      // Pooling may trigger: sorted keys keep the merged contents a
      // function of the two tables' contents alone.
      for (std::uint64_t key : other.sorted_keys()) {
        if (key == kOverflowKey) continue;  // folded below
        const auto cnt = other.counts_for(key);
        if (cnt[0]) add(key, 0, cnt[0]);
        if (cnt[1]) add(key, 1, cnt[1]);
      }
    }
  }
  if (other.overflow_used_) {
    overflow_used_ = true;
    overflow_[0] += other.overflow_[0];
    overflow_[1] += other.overflow_[1];
  }
}

GTestResult FlatCountTable::g_test(double min_expected) const {
  std::vector<std::array<std::uint64_t, 2>> cols;
  if (direct_bits_ >= 0) {
    const std::size_t space = std::size_t{1} << direct_bits_;
    for (std::size_t key = 0; key < space; ++key)
      if (direct_counts_[2 * key] || direct_counts_[2 * key + 1])
        cols.push_back({direct_counts_[2 * key], direct_counts_[2 * key + 1]});
  } else {
    std::vector<std::uint64_t> keys;
    keys.reserve(used_slots_);
    for (std::size_t slot = 0; slot < keys_.size(); ++slot)
      if (keys_[slot] != kEmptySlot) keys.push_back(keys_[slot]);
    std::sort(keys.begin(), keys.end());
    cols.reserve(keys.size() + 1);
    for (std::uint64_t key : keys) cols.push_back(counts_for(key));
  }
  if (overflow_used_) cols.push_back(overflow_);
  return g_test_on_columns(std::move(cols), min_expected);
}

std::size_t FlatCountTable::bin_count() const {
  if (direct_bits_ >= 0) {
    std::size_t bins = overflow_used_ ? 1 : 0;
    const std::size_t space = std::size_t{1} << direct_bits_;
    for (std::size_t key = 0; key < space; ++key)
      if (direct_counts_[2 * key] || direct_counts_[2 * key + 1]) ++bins;
    return bins;
  }
  return used_slots_ + (overflow_used_ ? 1 : 0);
}

std::array<std::uint64_t, 2> FlatCountTable::counts_for(
    std::uint64_t key) const {
  if (key == kOverflowKey) return overflow_;
  if (direct_bits_ >= 0) {
    if (key >= (std::uint64_t{1} << direct_bits_)) return {0, 0};
    return {direct_counts_[2 * static_cast<std::size_t>(key)],
            direct_counts_[2 * static_cast<std::size_t>(key) + 1]};
  }
  if (keys_.empty()) return {0, 0};
  const std::size_t slot = find_slot(key);
  if (keys_[slot] == kEmptySlot) return {0, 0};
  return {counts_[2 * slot], counts_[2 * slot + 1]};
}

std::vector<std::uint64_t> FlatCountTable::sorted_keys() const {
  std::vector<std::uint64_t> keys;
  if (direct_bits_ >= 0) {
    const std::size_t space = std::size_t{1} << direct_bits_;
    for (std::size_t key = 0; key < space; ++key)
      if (direct_counts_[2 * key] || direct_counts_[2 * key + 1])
        keys.push_back(key);
  } else {
    keys.reserve(used_slots_);
    for (std::size_t slot = 0; slot < keys_.size(); ++slot)
      if (keys_[slot] != kEmptySlot) keys.push_back(keys_[slot]);
    std::sort(keys.begin(), keys.end());
  }
  if (overflow_used_) keys.push_back(kOverflowKey);
  return keys;
}

std::uint64_t FlatCountTable::group_total(int group) const {
  SCA_ASSERT(group == 0 || group == 1, "FlatCountTable: group must be 0/1");
  std::uint64_t total = overflow_[static_cast<std::size_t>(group)];
  if (direct_bits_ >= 0) {
    const std::size_t space = std::size_t{1} << direct_bits_;
    for (std::size_t key = 0; key < space; ++key)
      total += direct_counts_[2 * key + static_cast<std::size_t>(group)];
  } else {
    for (std::size_t slot = 0; slot < keys_.size(); ++slot)
      if (keys_[slot] != kEmptySlot)
        total += counts_[2 * slot + static_cast<std::size_t>(group)];
  }
  return total;
}

void FlatCountTable::serialize(std::ostream& os) const {
  common::write_u8(os, direct_bits_ >= 0 ? 1 : 0);
  common::write_u8(os, direct_bits_ >= 0
                           ? static_cast<std::uint8_t>(direct_bits_)
                           : 0);
  common::write_u64(os, bin_limit_);
  common::write_u8(os, overflow_used_ ? 1 : 0);
  common::write_u64(os, overflow_[0]);
  common::write_u64(os, overflow_[1]);
  // Resident keys in ascending order (sorted_keys() appends the overflow
  // bin, which is stored separately above — skip it here).
  std::vector<std::uint64_t> keys = sorted_keys();
  if (!keys.empty() && keys.back() == kOverflowKey) keys.pop_back();
  common::write_u64(os, keys.size());
  for (std::uint64_t key : keys) {
    const auto cnt = counts_for(key);
    common::write_u64(os, key);
    common::write_u64(os, cnt[0]);
    common::write_u64(os, cnt[1]);
  }
}

FlatCountTable FlatCountTable::deserialize(std::istream& is) {
  FlatCountTable table;
  const bool direct = common::read_u8(is) != 0;
  const unsigned direct_bits = common::read_u8(is);
  table.bin_limit_ = common::read_u64(is);
  table.overflow_used_ = common::read_u8(is) != 0;
  table.overflow_[0] = common::read_u64(is);
  table.overflow_[1] = common::read_u64(is);
  const std::uint64_t nkeys = common::read_u64(is);
  if (direct) {
    common::require(direct_bits <= 30 &&
                        (std::size_t{1} << direct_bits) <= table.bin_limit_,
                    "FlatCountTable: malformed direct snapshot header");
    common::require(!table.overflow_used_,
                    "FlatCountTable: direct snapshot cannot pool");
    common::require(nkeys <= (std::uint64_t{1} << direct_bits),
                    "FlatCountTable: direct snapshot overfull");
    table.init_direct(direct_bits);
    for (std::uint64_t i = 0; i < nkeys; ++i) {
      const std::uint64_t key = common::read_u64(is);
      common::require(key < (std::uint64_t{1} << direct_bits),
                      "FlatCountTable: snapshot key outside direct space");
      const std::uint64_t c0 = common::read_u64(is);
      const std::uint64_t c1 = common::read_u64(is);
      table.direct_counts_[2 * static_cast<std::size_t>(key)] = c0;
      table.direct_counts_[2 * static_cast<std::size_t>(key) + 1] = c1;
    }
    return table;
  }
  // As with ContingencyTable, a saturated table can hold one bin past the
  // limit (bin_limit_ resident keys plus the pooled overflow bin).
  const std::uint64_t total_bins = nkeys + (table.overflow_used_ ? 1 : 0);
  common::require(total_bins == 0 || total_bins - 1 <= table.bin_limit_,
                  "FlatCountTable: snapshot exceeds its own bin limit");
  table.reserve(static_cast<std::size_t>(nkeys));
  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < nkeys; ++i) {
    const std::uint64_t key = common::read_u64(is);
    common::require(key != kOverflowKey,
                    "FlatCountTable: overflow key stored as resident");
    common::require(i == 0 || key > prev_key,
                    "FlatCountTable: snapshot keys not strictly ascending");
    prev_key = key;
    const std::uint64_t c0 = common::read_u64(is);
    const std::uint64_t c1 = common::read_u64(is);
    // Direct slot insertion (bypassing add's pooling check, which must not
    // re-trigger while restoring an already-pooled table).
    if (2 * (table.used_slots_ + 1) > table.keys_.size()) table.grow();
    const std::size_t slot = table.find_slot(key);
    table.keys_[slot] = key;
    table.counts_[2 * slot] = c0;
    table.counts_[2 * slot + 1] = c1;
    ++table.used_slots_;
  }
  return table;
}

bool FlatCountTable::operator==(const FlatCountTable& other) const {
  if (direct_bits_ != other.direct_bits_ || bin_limit_ != other.bin_limit_ ||
      overflow_used_ != other.overflow_used_ || overflow_ != other.overflow_)
    return false;
  const std::vector<std::uint64_t> keys = sorted_keys();
  if (keys != other.sorted_keys()) return false;
  for (std::uint64_t key : keys)
    if (counts_for(key) != other.counts_for(key)) return false;
  return true;
}

void FlatCountTable::clear() {
  std::fill(direct_counts_.begin(), direct_counts_.end(), 0);
  std::fill(keys_.begin(), keys_.end(), kEmptySlot);
  std::fill(counts_.begin(), counts_.end(), 0);
  used_slots_ = 0;
  overflow_ = {0, 0};
  overflow_used_ = false;
}

GTestResult g_test_two_rows(const std::vector<std::uint64_t>& row_fixed,
                            const std::vector<std::uint64_t>& row_random,
                            double min_expected) {
  common::require(row_fixed.size() == row_random.size(),
                  "g_test_two_rows: row length mismatch");
  std::vector<std::array<std::uint64_t, 2>> cols;
  cols.reserve(row_fixed.size());
  for (std::size_t i = 0; i < row_fixed.size(); ++i) {
    if (row_fixed[i] == 0 && row_random[i] == 0) continue;
    cols.push_back({row_fixed[i], row_random[i]});
  }
  return g_test_on_columns(std::move(cols), min_expected);
}

}  // namespace sca::stats
