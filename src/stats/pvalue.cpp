#include "src/stats/pvalue.hpp"

#include <cmath>
#include <limits>

#include "src/common/check.hpp"

namespace sca::stats {

namespace {

// Log of Q(a, x) via the Lentz continued fraction, valid for x > a + 1.
double log_gamma_q_cf(double a, double x) {
  constexpr int kMaxIter = 1000;
  constexpr double kEps = 1e-15;
  constexpr double kTiny = 1e-300;

  // CF for Gamma(a, x) * e^x * x^(-a):   1/(x+1-a- 1*(1-a)/(x+3-a- ...)).
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return -x + a * std::log(x) - std::lgamma(a) + std::log(h);
}

// Log of P(a, x) via the power series, valid for x < a + 1; the caller
// converts to Q.
double log_gamma_p_series(double a, double x) {
  constexpr int kMaxIter = 10000;
  constexpr double kEps = 1e-16;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return -x + a * std::log(x) - std::lgamma(a) + std::log(sum);
}

}  // namespace

double log_gamma_q(double a, double x) {
  common::require(a > 0.0 && x >= 0.0, "log_gamma_q: requires a > 0, x >= 0");
  if (x == 0.0) return 0.0;  // Q(a, 0) = 1
  if (x > a + 1.0) return log_gamma_q_cf(a, x);
  // Q = 1 - P; P is small only when x << a, where the series is accurate and
  // log1p keeps precision.
  const double log_p = log_gamma_p_series(a, x);
  const double p = std::exp(log_p);
  if (p >= 1.0) return -std::numeric_limits<double>::infinity();
  return std::log1p(-p);
}

double chi2_log_sf(double x, std::size_t df) {
  common::require(df > 0, "chi2_log_sf: df must be positive");
  if (x <= 0.0) return 0.0;
  return log_gamma_q(static_cast<double>(df) / 2.0, x / 2.0);
}

double chi2_minus_log10_p(double x, std::size_t df) {
  return -chi2_log_sf(x, df) / std::log(10.0);
}

}  // namespace sca::stats
