// Tail probabilities for the chi-squared distribution, computed in log space.
//
// Leakage detection compares a G statistic against a chi-squared null; the
// interesting p-values are astronomically small (the paper's verdict
// threshold is -log10(p) > 7, and real leaks land at 10^-40 and beyond), so
// the survival function must be evaluated in log space rather than through
// double-precision probabilities that would underflow to zero.
#pragma once

#include <cstddef>

namespace sca::stats {

/// Natural log of the upper regularized incomplete gamma Q(a, x)
/// = Gamma(a, x) / Gamma(a). Requires a > 0, x >= 0.
double log_gamma_q(double a, double x);

/// Natural log of the chi-squared survival function P(X >= x) with `df`
/// degrees of freedom. Returns 0.0 (= log 1) for x <= 0.
double chi2_log_sf(double x, std::size_t df);

/// -log10 of the chi-squared p-value; the scale PROLEAD reports.
double chi2_minus_log10_p(double x, std::size_t df);

}  // namespace sca::stats
