// Welch's t-test on streaming samples — the TVLA methodology of Schneider &
// Moradi ("Leakage assessment methodology", the paper's reference [19]).
//
// Where the G-test compares full observation distributions, the t-test
// compares group means of a scalar statistic (classically the Hamming weight
// of an observation, standing in for instantaneous power). The standard
// leakage threshold is |t| > 4.5. A second-order variant runs the same test
// on centered squared samples.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace sca::stats {

/// Streaming mean/variance accumulator (Welford's algorithm).
class MomentAccumulator {
 public:
  void add(double sample);

  /// Adds `count` identical samples in one step — the histogram path of the
  /// bit-sliced campaign (per-chunk Hamming-weight counts instead of 64
  /// scalar adds per sample). Exactly equivalent to merging an accumulator
  /// holding `count` copies of `sample` (whose mean is `sample` and whose
  /// M2 is 0, both exactly), so it is bit-identical to add() called `count`
  /// times in a row on a fresh accumulator, and deterministic for any
  /// (histogram-ordered) call sequence.
  void add_weighted(double sample, std::uint64_t count);

  /// Folds a whole integer histogram — counts[i] samples of value i — in
  /// ascending-value order: exactly counts-nonzero add_weighted calls, so
  /// the FP operation sequence (and hence the t statistic) is a pure
  /// function of the histogram contents. The campaign's chunk-into-master
  /// reduction for Hamming-weight observations.
  void add_weighted_histogram(const std::uint64_t* counts, std::size_t n);

  void merge(const MomentAccumulator& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;

  /// Binary snapshot of the raw Welford state (n, mean, M2), doubles as
  /// IEEE-754 bit patterns. deserialize() restores a bit-exact copy — the
  /// t-test path's requirement for resume == uninterrupted.
  void serialize(std::ostream& os) const;
  static MomentAccumulator deserialize(std::istream& is);

  /// Bit-exact state equality (n, mean bits, M2 bits).
  bool operator==(const MomentAccumulator& other) const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

struct TTestResult {
  double t = 0.0;                 ///< Welch's t statistic
  double degrees_of_freedom = 0;  ///< Welch-Satterthwaite approximation
  std::uint64_t n_fixed = 0;
  std::uint64_t n_random = 0;
};

/// Welch's two-sample t-test between the groups' accumulated moments.
/// Degenerate inputs (an empty group, zero variance in both groups with
/// equal means) give t = 0.
TTestResult welch_t_test(const MomentAccumulator& fixed,
                         const MomentAccumulator& random);

/// The TVLA leakage threshold.
inline constexpr double kTvlaThreshold = 4.5;

}  // namespace sca::stats
