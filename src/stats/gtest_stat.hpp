// G-test (log-likelihood ratio) on 2 x K contingency tables.
//
// This is the statistic PROLEAD applies to the fixed-vs-random experiment:
// the two rows are the "fixed" and "random" simulation groups, the K columns
// are the distinct values observed by a (glitch/transition-extended) probe
// set, and the null hypothesis is that the observation distribution does not
// depend on the group.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "src/common/check.hpp"

namespace sca::stats {

class FlatCountTable;

/// Result of a G-test evaluation.
struct GTestResult {
  double g = 0.0;               ///< G statistic (2 * sum O ln(O/E)).
  std::size_t df = 0;           ///< Degrees of freedom.
  double minus_log10_p = 0.0;   ///< -log10 of the chi-squared p-value.
  std::size_t bins = 0;         ///< Number of distinct observed values.
  std::uint64_t n_fixed = 0;    ///< Total count in the fixed group.
  std::uint64_t n_random = 0;   ///< Total count in the random group.
};

/// Two-group contingency table keyed by a 64-bit observation key.
///
/// Keys are whatever encoding the caller chooses for an observation tuple
/// (for observations wider than 64 bits, the caller hashes them first; a
/// hash collision can only ever merge bins, which loses power but never
/// produces spurious leakage).
class ContingencyTable {
 public:
  /// Key that pooled overflow observations are counted under once the bin
  /// limit is reached (see set_bin_limit).
  static constexpr std::uint64_t kOverflowKey = ~std::uint64_t{0};

  /// Bounds the number of distinct keys tracked; once reached, observations
  /// with new keys are pooled under kOverflowKey. Bounds memory on huge
  /// observation spaces at a small loss of statistical power.
  void set_bin_limit(std::size_t limit) { bin_limit_ = limit; }

  /// Adds `count` observations of `key` to group 0 (fixed) or 1 (random).
  void add(std::uint64_t key, int group, std::uint64_t count = 1);

  /// Merges another table into this one — the reduction step joining the
  /// per-chunk tables of a parallel campaign. Respects this table's bin
  /// limit; when pooling could trigger, incoming keys are visited in sorted
  /// order so the merged contents depend only on the two tables' contents
  /// (bit-identical joins for any thread count / merge partitioning, as
  /// long as merges happen in a deterministic order).
  void merge(const ContingencyTable& other);

  /// Same reduction from a flat per-chunk accumulator (the bit-sliced hot
  /// path's table type), with the identical determinism contract: sorted
  /// incoming keys whenever pooling could trigger.
  void merge(const FlatCountTable& other);

  /// Runs the G-test over the accumulated counts. Bins where both groups
  /// have zero count are impossible by construction; bins with a low total
  /// expected count (< `min_expected`) are pooled into one residual bin to
  /// keep the chi-squared approximation honest, mirroring PROLEAD.
  GTestResult g_test(double min_expected = 5.0) const;

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t group_total(int group) const;

  const std::unordered_map<std::uint64_t, std::array<std::uint64_t, 2>>&
  counts() const {
    return counts_;
  }

  /// Binary snapshot of the accumulated counts (ascending key order, so the
  /// byte stream is canonical). deserialize() restores a table whose future
  /// add/merge/g_test behavior is identical to the original's.
  void serialize(std::ostream& os) const;
  static ContingencyTable deserialize(std::istream& is);

  /// Logical equality: same bin limit, same keys, same per-group counts.
  bool operator==(const ContingencyTable& other) const;

 private:
  std::unordered_map<std::uint64_t, std::array<std::uint64_t, 2>> counts_;
  std::size_t bin_limit_ = ~std::size_t{0};
};

/// Contiguous two-group count table — the per-chunk accumulator of the
/// bit-sliced campaign hot path, replacing the node-allocating
/// unordered_map. Two storage modes:
///
///  * **direct**: for key spaces [0, 2^bits) small enough to materialize,
///    counts live in one flat array indexed by `2 * key + group` — one
///    increment per observation, no hashing, no probing.
///  * **hashed**: open addressing with linear probing over SoA key/count
///    arrays (power-of-two capacity, multiplicative hashing, <= 50% load).
///
/// Semantics mirror ContingencyTable exactly, including bin-limit overflow
/// pooling under kOverflowKey keyed on *insertion order* — so a flat table
/// and a ContingencyTable fed the same observation sequence hold identical
/// bins with identical counts, and ContingencyTable::merge(FlatCountTable)
/// is a drop-in for the chunk-ordered deterministic reduction.
class FlatCountTable {
 public:
  static constexpr std::uint64_t kOverflowKey = ContingencyTable::kOverflowKey;
  /// Key space sizes up to 2^kMaxDirectBits use the direct-indexed mode.
  /// 2^16 entries is 1 MiB of counts per table — far cheaper than hashing
  /// every observation, and campaign batching already budgets the
  /// materialized space per set.
  static constexpr unsigned kMaxDirectBits = 16;

  FlatCountTable() = default;

  /// Switches to direct-indexed mode over keys [0, 2^key_bits). Must be
  /// called on an empty table; adding a key >= 2^key_bits afterwards is a
  /// contract violation. Direct mode never pools (the whole key space is
  /// materialized), so the key space must fit the bin limit.
  void init_direct(unsigned key_bits);

  /// Bounds distinct tracked keys; past it, new keys pool into kOverflowKey
  /// (same rule as ContingencyTable::set_bin_limit).
  void set_bin_limit(std::size_t limit);

  /// Pre-sizes the hashed mode for ~`expected_keys` distinct keys.
  void reserve(std::size_t expected_keys);

  /// Adds `count` observations of `key` to group 0 (fixed) or 1 (random).
  void add(std::uint64_t key, int group, std::uint64_t count = 1);

  /// Batched add of one 64-lane transposed sample: keys[L] is lane L's
  /// observation key, all 64 go to `group` in lane order (which keeps
  /// overflow pooling bit-identical to 64 scalar add() calls).
  void add_keys64(const std::uint64_t keys[64], int group);

  /// Batched add of `samples` transposed 64-lane samples packed into one
  /// bit matrix: lane L's s-th key sits at bits [s*key_bits, (s+1)*key_bits)
  /// of rows[L]. Insertion order is sample-major then lane order — exactly
  /// `samples` add_keys64 calls — so pooling stays bit-identical to the
  /// scalar reference. Requires key_bits * samples <= 64.
  void add_packed(const std::uint64_t rows[64], unsigned key_bits,
                  unsigned samples, int group);

  /// Chunk-into-master reduction between flat tables (same determinism
  /// contract as ContingencyTable::merge: incoming keys visit in sorted
  /// order whenever this table's bin limit could pool). Two direct tables
  /// over the same key space reduce with one flat array add.
  void merge(const FlatCountTable& other);

  /// Direct-to-direct marginalization: folds `host`'s counts onto this
  /// table's smaller key space, where this table's key is the parallel bit
  /// extract of the host key under `key_mask` (popcount(key_mask) must
  /// equal this table's direct key bits). Both tables materialize their
  /// full key space and never pool, so the result is integer-identical to
  /// having accumulated this table's observations directly — the
  /// correctness basis of the campaign planner's subset hosting.
  void add_marginalized(const FlatCountTable& host, std::uint64_t key_mask);

  /// G-test over the accumulated counts, columns in ascending key order
  /// (overflow bin last). Same pooling of low-expectation bins as
  /// ContingencyTable::g_test.
  GTestResult g_test(double min_expected = 5.0) const;

  /// Distinct keys currently tracked (the overflow bin counts as one).
  std::size_t bin_count() const;

  /// Counts of `key`, or {0, 0} if absent.
  std::array<std::uint64_t, 2> counts_for(std::uint64_t key) const;

  /// All keys with at least one nonzero count, ascending (includes
  /// kOverflowKey last when pooling happened). Basis of deterministic
  /// merges.
  std::vector<std::uint64_t> sorted_keys() const;

  std::uint64_t group_total(int group) const;

  /// Drops all counts but keeps the storage mode and capacity — per-chunk
  /// accumulators are recycled across chunks.
  void clear();

  /// Binary snapshot: storage mode, bin limit, overflow bin, then every
  /// resident (key, counts) triple in ascending key order. The canonical
  /// order makes the byte stream a pure function of the logical contents.
  void serialize(std::ostream& os) const;

  /// Restores a table from serialize()'s stream. The resident key set, the
  /// counts, the storage mode, and the bin limit all round-trip exactly, so
  /// every future add/merge/g_test on the restored table is bit-identical
  /// to the same operations on the original — the checkpoint/resume
  /// contract of the campaign engine. Throws common::Error on truncated or
  /// malformed input.
  static FlatCountTable deserialize(std::istream& is);

  /// Logical equality: same mode, bin limit, resident keys, counts, and
  /// overflow bin. Slot layout (hash capacity) is excluded — it never
  /// affects observable behavior.
  bool operator==(const FlatCountTable& other) const;

  bool direct_mode() const { return direct_bits_ >= 0; }

  /// Raw direct-mode storage, entry 2*key + group — the campaign's
  /// innermost histogram loop increments it without a per-bin call. Only
  /// valid in direct mode.
  std::uint64_t* direct_data() {
    SCA_ASSERT(direct_bits_ >= 0,
               "FlatCountTable: direct_data requires direct mode");
    return direct_counts_.data();
  }

 private:
  friend class ContingencyTable;

  // kOverflowKey doubles as the empty-slot sentinel: add() routes that key
  // to the dedicated overflow_ bin before hashing, so it never enters the
  // slot arrays and every stored key is distinguishable from "empty".
  static constexpr std::uint64_t kEmptySlot = kOverflowKey;

  std::size_t find_slot(std::uint64_t key) const;
  void grow();
  void add_hashed(std::uint64_t key, int group, std::uint64_t count);

  // Direct mode: counts_[2 * key + group]; direct_bits_ >= 0 switches it on.
  int direct_bits_ = -1;
  std::vector<std::uint64_t> direct_counts_;

  // Hashed mode (SoA): keys_[slot] is kEmptySlot or the stored key;
  // counts_[2 * slot + group] are the per-group counts of that slot.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> counts_;
  std::size_t capacity_mask_ = 0;
  unsigned hash_shift_ = 0;
  std::size_t used_slots_ = 0;

  std::size_t bin_limit_ = ~std::size_t{0};
  std::array<std::uint64_t, 2> overflow_{0, 0};
  bool overflow_used_ = false;
};

/// Convenience: G-test on an explicit pair of count vectors (same length,
/// column i of both rows). Used by the exact verifier and unit tests.
GTestResult g_test_two_rows(const std::vector<std::uint64_t>& row_fixed,
                            const std::vector<std::uint64_t>& row_random,
                            double min_expected = 5.0);

}  // namespace sca::stats
