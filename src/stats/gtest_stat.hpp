// G-test (log-likelihood ratio) on 2 x K contingency tables.
//
// This is the statistic PROLEAD applies to the fixed-vs-random experiment:
// the two rows are the "fixed" and "random" simulation groups, the K columns
// are the distinct values observed by a (glitch/transition-extended) probe
// set, and the null hypothesis is that the observation distribution does not
// depend on the group.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sca::stats {

/// Result of a G-test evaluation.
struct GTestResult {
  double g = 0.0;               ///< G statistic (2 * sum O ln(O/E)).
  std::size_t df = 0;           ///< Degrees of freedom.
  double minus_log10_p = 0.0;   ///< -log10 of the chi-squared p-value.
  std::size_t bins = 0;         ///< Number of distinct observed values.
  std::uint64_t n_fixed = 0;    ///< Total count in the fixed group.
  std::uint64_t n_random = 0;   ///< Total count in the random group.
};

/// Two-group contingency table keyed by a 64-bit observation key.
///
/// Keys are whatever encoding the caller chooses for an observation tuple
/// (for observations wider than 64 bits, the caller hashes them first; a
/// hash collision can only ever merge bins, which loses power but never
/// produces spurious leakage).
class ContingencyTable {
 public:
  /// Key that pooled overflow observations are counted under once the bin
  /// limit is reached (see set_bin_limit).
  static constexpr std::uint64_t kOverflowKey = ~std::uint64_t{0};

  /// Bounds the number of distinct keys tracked; once reached, observations
  /// with new keys are pooled under kOverflowKey. Bounds memory on huge
  /// observation spaces at a small loss of statistical power.
  void set_bin_limit(std::size_t limit) { bin_limit_ = limit; }

  /// Adds `count` observations of `key` to group 0 (fixed) or 1 (random).
  void add(std::uint64_t key, int group, std::uint64_t count = 1);

  /// Merges another table into this one — the reduction step joining the
  /// per-chunk tables of a parallel campaign. Respects this table's bin
  /// limit; when pooling could trigger, incoming keys are visited in sorted
  /// order so the merged contents depend only on the two tables' contents
  /// (bit-identical joins for any thread count / merge partitioning, as
  /// long as merges happen in a deterministic order).
  void merge(const ContingencyTable& other);

  /// Runs the G-test over the accumulated counts. Bins where both groups
  /// have zero count are impossible by construction; bins with a low total
  /// expected count (< `min_expected`) are pooled into one residual bin to
  /// keep the chi-squared approximation honest, mirroring PROLEAD.
  GTestResult g_test(double min_expected = 5.0) const;

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t group_total(int group) const;

  const std::unordered_map<std::uint64_t, std::array<std::uint64_t, 2>>&
  counts() const {
    return counts_;
  }

 private:
  std::unordered_map<std::uint64_t, std::array<std::uint64_t, 2>> counts_;
  std::size_t bin_limit_ = ~std::size_t{0};
};

/// Convenience: G-test on an explicit pair of count vectors (same length,
/// column i of both rows). Used by the exact verifier and unit tests.
GTestResult g_test_two_rows(const std::vector<std::uint64_t>& row_fixed,
                            const std::vector<std::uint64_t>& row_random,
                            double min_expected = 5.0);

}  // namespace sca::stats
