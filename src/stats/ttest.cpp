#include "src/stats/ttest.hpp"

#include <bit>
#include <cmath>
#include <istream>
#include <ostream>

#include "src/common/serialize.hpp"

namespace sca::stats {

void MomentAccumulator::add(double sample) {
  ++n_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (sample - mean_);
}

void MomentAccumulator::add_weighted(double sample, std::uint64_t count) {
  if (count == 0) return;
  if (n_ == 0) {
    // A run of equal samples has mean == sample and M2 == 0 exactly.
    n_ = count;
    mean_ = sample;
    m2_ = 0.0;
    return;
  }
  const double delta = sample - mean_;
  const double total = static_cast<double>(n_ + count);
  m2_ += delta * delta * static_cast<double>(n_) *
         static_cast<double>(count) / total;
  mean_ += delta * static_cast<double>(count) / total;
  n_ += count;
}

void MomentAccumulator::add_weighted_histogram(const std::uint64_t* counts,
                                               std::size_t n) {
  for (std::size_t v = 0; v < n; ++v)
    if (counts[v]) add_weighted(static_cast<double>(v), counts[v]);
}

void MomentAccumulator::merge(const MomentAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
}

void MomentAccumulator::serialize(std::ostream& os) const {
  common::write_u64(os, n_);
  common::write_f64(os, mean_);
  common::write_f64(os, m2_);
}

MomentAccumulator MomentAccumulator::deserialize(std::istream& is) {
  MomentAccumulator acc;
  acc.n_ = common::read_u64(is);
  acc.mean_ = common::read_f64(is);
  acc.m2_ = common::read_f64(is);
  return acc;
}

bool MomentAccumulator::operator==(const MomentAccumulator& other) const {
  return n_ == other.n_ &&
         std::bit_cast<std::uint64_t>(mean_) ==
             std::bit_cast<std::uint64_t>(other.mean_) &&
         std::bit_cast<std::uint64_t>(m2_) ==
             std::bit_cast<std::uint64_t>(other.m2_);
}

double MomentAccumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

TTestResult welch_t_test(const MomentAccumulator& fixed,
                         const MomentAccumulator& random) {
  TTestResult result;
  result.n_fixed = fixed.count();
  result.n_random = random.count();
  if (fixed.count() < 2 || random.count() < 2) return result;

  const double vf = fixed.variance() / static_cast<double>(fixed.count());
  const double vr = random.variance() / static_cast<double>(random.count());
  const double denom = vf + vr;
  if (denom <= 0.0) return result;  // both constant; equal means -> t = 0

  result.t = (fixed.mean() - random.mean()) / std::sqrt(denom);
  const double num = denom * denom;
  const double df_denom =
      vf * vf / static_cast<double>(fixed.count() - 1) +
      vr * vr / static_cast<double>(random.count() - 1);
  result.degrees_of_freedom = df_denom > 0.0 ? num / df_denom : 0.0;
  return result;
}

}  // namespace sca::stats
