#include "src/stats/ttest.hpp"

#include <cmath>

namespace sca::stats {

void MomentAccumulator::add(double sample) {
  ++n_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (sample - mean_);
}

void MomentAccumulator::add_weighted(double sample, std::uint64_t count) {
  if (count == 0) return;
  if (n_ == 0) {
    // A run of equal samples has mean == sample and M2 == 0 exactly.
    n_ = count;
    mean_ = sample;
    m2_ = 0.0;
    return;
  }
  const double delta = sample - mean_;
  const double total = static_cast<double>(n_ + count);
  m2_ += delta * delta * static_cast<double>(n_) *
         static_cast<double>(count) / total;
  mean_ += delta * static_cast<double>(count) / total;
  n_ += count;
}

void MomentAccumulator::merge(const MomentAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
}

double MomentAccumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

TTestResult welch_t_test(const MomentAccumulator& fixed,
                         const MomentAccumulator& random) {
  TTestResult result;
  result.n_fixed = fixed.count();
  result.n_random = random.count();
  if (fixed.count() < 2 || random.count() < 2) return result;

  const double vf = fixed.variance() / static_cast<double>(fixed.count());
  const double vr = random.variance() / static_cast<double>(random.count());
  const double denom = vf + vr;
  if (denom <= 0.0) return result;  // both constant; equal means -> t = 0

  result.t = (fixed.mean() - random.mean()) / std::sqrt(denom);
  const double num = denom * denom;
  const double df_denom =
      vf * vf / static_cast<double>(fixed.count() - 1) +
      vr * vr / static_cast<double>(random.count() - 1);
  result.degrees_of_freedom = df_denom > 0.0 ? num / df_denom : 0.0;
  return result;
}

}  // namespace sca::stats
