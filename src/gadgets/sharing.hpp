// Value-level secret sharing (Boolean and multiplicative).
//
// These are the software counterparts of the hardware masking: test harnesses
// and the evaluation engine use them to encode stimuli into shares and to
// recombine circuit outputs for functional checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.hpp"

namespace sca::gadgets {

/// Splits `x` into `share_count` Boolean shares: the first share_count-1 are
/// uniform, the last makes the XOR equal x (Equation (1) of the paper).
std::vector<std::uint8_t> boolean_share(std::uint8_t x, std::size_t share_count,
                                        common::Xoshiro256& rng);

/// XOR-recombines Boolean shares.
std::uint8_t boolean_unshare(std::span<const std::uint8_t> shares);

/// Splits `x` into multiplicative shares per Equation (3) of the paper:
/// shares 1..d-1 are uniform over GF(256)* and
///   x = inv(s[0]) * inv(s[1]) * ... * inv(s[d-2]) * s[d-1].
/// The zero-value problem is visible here: for x == 0 the last share is 0
/// regardless of the masks.
std::vector<std::uint8_t> multiplicative_share(std::uint8_t x,
                                               std::size_t share_count,
                                               common::Xoshiro256& rng);

/// Recombines multiplicative shares per Equation (3).
std::uint8_t multiplicative_unshare(std::span<const std::uint8_t> shares);

}  // namespace sca::gadgets
