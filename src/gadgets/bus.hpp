// Multi-bit bus helpers on top of the single-bit netlist builder.
//
// A Bus is an ordered vector of signal ids, little-endian: bus[i] is bit i of
// the byte/word it represents. All gadget builders (multipliers, inverters,
// conversions, the Sbox) work in terms of buses.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/gf/gf2.hpp"
#include "src/netlist/ir.hpp"
#include "src/sim/simulator.hpp"

namespace sca::gadgets {

using Bus = std::vector<netlist::SignalId>;

/// Adds `width` primary inputs named "<name>0".."<name>{width-1}".
/// For kShare inputs, the ShareLabel bit index follows the bus index.
Bus make_input_bus(netlist::Netlist& nl, std::size_t width,
                   netlist::InputRole role, const std::string& name,
                   std::uint32_t secret = 0, std::uint32_t share = 0);

/// Registers every bit of the bus (one pipeline stage).
Bus reg_bus(netlist::Netlist& nl, const Bus& bus);

/// Registers every bit `stages` times.
Bus delay_bus(netlist::Netlist& nl, const Bus& bus, std::size_t stages);

/// Bitwise XOR of two equal-width buses.
Bus xor_bus(netlist::Netlist& nl, const Bus& a, const Bus& b);

/// Bitwise AND of two equal-width buses.
Bus and_bus(netlist::Netlist& nl, const Bus& a, const Bus& b);

/// Bitwise NOT.
Bus not_bus(netlist::Netlist& nl, const Bus& a);

/// XOR of the bus with a compile-time constant: bits where the constant is 1
/// become inverters, other bits pass through unchanged.
Bus xor_const(netlist::Netlist& nl, const Bus& a, std::uint64_t constant);

/// Bitwise 2:1 mux: out[i] = sel ? a1[i] : a0[i].
Bus mux_bus(netlist::Netlist& nl, netlist::SignalId sel, const Bus& a0,
            const Bus& a1);

/// Equality comparator against a constant: AND tree over per-bit matches.
netlist::SignalId eq_const(netlist::Netlist& nl, const Bus& a,
                           std::uint64_t value);

/// Ripple increment (a + 1 mod 2^width); the carry out is discarded.
Bus increment_bus(netlist::Netlist& nl, const Bus& a);

/// Balanced XOR tree over the given signals (empty -> constant 0).
netlist::SignalId xor_tree(netlist::Netlist& nl,
                           std::vector<netlist::SignalId> signals);

/// Synthesizes the GF(2)-linear map `m` as per-output-bit XOR trees:
/// out[r] = XOR of in[c] over all c with m(r, c) = 1. Rows with no terms
/// become constant 0.
Bus apply_matrix(netlist::Netlist& nl, const gf::BitMatrix& m, const Bus& in);

/// Attaches debug names "<base>0..n" to the bus bits.
void name_bus(netlist::Netlist& nl, const Bus& bus, const std::string& base);

// --- simulation helpers --------------------------------------------------------

/// Drives an input bus with the same value in all 64 lanes.
void set_bus_all_lanes(sim::Simulator& simulator, const Bus& bus,
                       std::uint64_t value);

/// Drives an input bus with a distinct value per lane (values[lane]).
void set_bus_per_lane(sim::Simulator& simulator, const Bus& bus,
                      std::span<const std::uint8_t, 64> values);

/// Reads the bus value in one lane.
std::uint64_t read_bus_lane(const sim::Simulator& simulator, const Bus& bus,
                            unsigned lane);

}  // namespace sca::gadgets
