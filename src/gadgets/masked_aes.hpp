// Complete first-order masked AES-128 encryption core — the full-cipher
// context the CHES 2018 design (and the paper's evaluation subject) lives in.
//
// Architecture: round-based datapath with a 6-cycle round period, dictated by
// the 5-cycle masked-Sbox pipeline.
//
//   * 16 masked Sbox instances for SubBytes, 4 for the key schedule's
//     SubWord — each with its own independent randomness.
//   * ShiftRows is pure wiring per share; MixColumns and AddRoundKey are
//     per-share XOR networks (Boolean masking commutes with linear layers).
//   * A small gate-level controller (phase counter mod 6, round counter
//     0..11) sequences loading, the 10 rounds (round 10 skips MixColumns)
//     and the done flag. State and key registers are latched once per round
//     period. Everything is in the netlist — there is no behavioural magic —
//     so the whole cipher can be fed to the leakage evaluation engine.
//
// Latency: 61 clock cycles from reset to valid ciphertext shares.
#pragma once

#include <string>
#include <vector>

#include "src/gadgets/bus.hpp"
#include "src/gadgets/randomness_plan.hpp"
#include "src/netlist/ir.hpp"

namespace sca::gadgets {

struct MaskedAesOptions {
  /// Randomness plan for every Sbox's Kronecker delta. Defaults to the
  /// paper's transition-secure family (r1..r6 fresh, r7 = r1).
  RandomnessPlan kron_plan = RandomnessPlan::kron1_transition_secure(1);
};

/// Handles to a built masked AES core.
struct MaskedAes {
  /// Plaintext share inputs: pt[share][byte] is an 8-bit bus. Bytes are in
  /// FIPS-197 column-major state order. Secret groups 0..15.
  std::vector<std::vector<Bus>> pt;
  /// Key share inputs, secret groups 16..31.
  std::vector<std::vector<Bus>> key;
  /// Ciphertext share outputs (state registers): ct[share][byte].
  std::vector<std::vector<Bus>> ct;
  /// High once encryption is finished and ct holds the result.
  netlist::SignalId done = netlist::kNoSignal;
  /// Randomness buses that must be fed *non-zero* bytes every cycle (the
  /// B2M masks of all 20 Sbox instances). All other kRandom inputs take
  /// uniform bits.
  std::vector<Bus> nonzero_random_buses;
  /// Clock cycles after reset until `done` is high and ct is valid.
  std::size_t total_cycles = 61;
};

/// Builds the masked AES-128 core, creating all primary inputs and outputs.
MaskedAes build_masked_aes128(netlist::Netlist& nl, const MaskedAesOptions& opts,
                              const std::string& scope = "aes");

}  // namespace sca::gadgets
