// Combinational GF(2^8) circuits in the AES polynomial representation:
// schoolbook multiplier, tower-field inverter (Boyar-Peralta-style
// logic-minimized structure via GF(((2^2)^2)^2)), and the Sbox affine
// transformation.
//
// These are *unmasked* building blocks; the masked Sbox instantiates them on
// individual shares (the multiplicative-masking trick is exactly that the
// inversion may run "locally" on one multiplicative share).
#pragma once

#include "src/gadgets/bus.hpp"
#include "src/netlist/ir.hpp"

namespace sca::gadgets {

/// Schoolbook GF(2^8) multiplier: 64 AND gates + reduction XOR network.
/// Both operands are 8-bit buses in the AES representation.
Bus build_gf256_mul(netlist::Netlist& nl, const Bus& a, const Bus& b);

/// GF(2^8) inversion (0 maps to 0) through the tower field: basis change in,
/// tower inversion, basis change out. Fully combinational.
Bus build_gf256_inv(netlist::Netlist& nl, const Bus& a);

/// The AES Sbox affine transformation A(x) = M x + 0x63. When
/// `with_constant` is false only the linear part M x is built — that is what
/// all shares except share 0 get in a masked datapath.
Bus build_sbox_affine(netlist::Netlist& nl, const Bus& a, bool with_constant);

// --- tower-field sub-circuits (buses in the tower representation) -------------
// Exposed for the DOM (Boolean-masked) Sbox baseline and the second-order
// conversions, which decompose their nonlinear work into these fields.
// GF(2^2) elements are 2-bit buses, GF(2^4) elements 4-bit buses.

Bus build_gf4_mul(netlist::Netlist& nl, const Bus& a, const Bus& b);
Bus build_gf4_sq(netlist::Netlist& nl, const Bus& a);      // linear
Bus build_gf4_mul_w(netlist::Netlist& nl, const Bus& a);   // linear
Bus build_gf16_mul(netlist::Netlist& nl, const Bus& a, const Bus& b);
Bus build_gf16_sq(netlist::Netlist& nl, const Bus& a);     // linear
Bus build_gf16_mul_lambda(netlist::Netlist& nl, const Bus& a);  // linear

/// Basis change AES representation <-> tower representation (linear).
Bus build_aes_to_tower(netlist::Netlist& nl, const Bus& a);
Bus build_tower_to_aes(netlist::Netlist& nl, const Bus& a);

}  // namespace sca::gadgets
