// The complete first-order multiplicative-masked AES Sbox of De Meyer et al.
// (CHES 2018), as re-implemented and evaluated by the paper (Fig. 2):
//
//   cycle 1-3   Kronecker delta over the Boolean input shares (DOM tree),
//               input shares delayed in parallel
//               X' = X ^ delta(X)             (zero maps to one)
//   cycle 4     B2M conversion: P0 = [R], P1 = [X'0 R] ^ [X'1 R]
//               local GF(2^8) inversion of P1 (combinational tower inverter)
//   cycle 5     M2B conversion of (Q0, Q1) = (P0, inv(P1))
//               output fix-up  B' ^ delta(X)  (one maps back to zero)
//               affine transformation (combinational)
//
// Total latency 5 cycles, one input per cycle (fully pipelined), matching
// the paper's Section II-C description.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/gadgets/bus.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/gadgets/randomness_plan.hpp"
#include "src/netlist/ir.hpp"

namespace sca::gadgets {

struct MaskedSboxOptions {
  /// Include the Kronecker delta zero-mapper. Without it the Sbox is only
  /// correct (and only masked) for non-zero inputs — the configuration of
  /// the paper's first experiment.
  bool include_kronecker = true;

  /// Randomness plan for the Kronecker's 7 DOM gates.
  RandomnessPlan kron_plan = RandomnessPlan::kron1_full_fresh();

  /// Skip the final affine transformation (gives the masked GF inversion
  /// only). The paper's Sbox includes it; ablation benches use this.
  bool include_affine = true;
};

/// Handles to a built masked Sbox instance.
struct MaskedSbox {
  std::vector<Bus> in_shares;   ///< two 8-bit Boolean input share buses
  Bus rand_b2m;                 ///< 8-bit fresh mask R; MUST be fed non-zero
  Bus rand_m2b;                 ///< 8-bit fresh mask R' (full range)
  std::vector<netlist::SignalId> kron_fresh;  ///< Kronecker fresh mask bits
  std::optional<KroneckerDelta> kronecker;
  std::vector<Bus> out_shares;  ///< two 8-bit Boolean output share buses
  std::size_t latency = 5;      ///< clock cycles input -> output
};

/// Builds the masked Sbox datapath as a sub-circuit: all inputs (share buses
/// and randomness) are supplied by the caller. Used directly by the masked
/// AES core, which instantiates 20 of these.
MaskedSbox build_masked_sbox_core(netlist::Netlist& nl,
                                  const std::vector<Bus>& in_shares,
                                  const Bus& rand_b2m, const Bus& rand_m2b,
                                  const std::vector<netlist::SignalId>& kron_fresh,
                                  const MaskedSboxOptions& opts,
                                  const std::string& scope = "sbox");

/// Builds a standalone masked Sbox into `nl`, creating all its primary
/// inputs (share inputs under secret group `secret`, randomness inputs) and
/// registering the output shares as primary outputs "s0_0".."s1_7".
MaskedSbox build_masked_sbox(netlist::Netlist& nl, const MaskedSboxOptions& opts,
                             const std::string& scope = "sbox",
                             std::uint32_t secret = 0);

}  // namespace sca::gadgets
