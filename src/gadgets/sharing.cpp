#include "src/gadgets/sharing.hpp"

#include "src/common/check.hpp"
#include "src/gf/gf256.hpp"

namespace sca::gadgets {

std::vector<std::uint8_t> boolean_share(std::uint8_t x, std::size_t share_count,
                                        common::Xoshiro256& rng) {
  common::require(share_count >= 1, "boolean_share: need at least one share");
  std::vector<std::uint8_t> shares(share_count);
  std::uint8_t acc = x;
  for (std::size_t i = 0; i + 1 < share_count; ++i) {
    shares[i] = rng.byte();
    acc ^= shares[i];
  }
  shares[share_count - 1] = acc;
  return shares;
}

std::uint8_t boolean_unshare(std::span<const std::uint8_t> shares) {
  std::uint8_t x = 0;
  for (std::uint8_t s : shares) x ^= s;
  return x;
}

std::vector<std::uint8_t> multiplicative_share(std::uint8_t x,
                                               std::size_t share_count,
                                               common::Xoshiro256& rng) {
  common::require(share_count >= 1, "multiplicative_share: need >= 1 share");
  std::vector<std::uint8_t> shares(share_count);
  std::uint8_t product = x;
  for (std::size_t i = 0; i + 1 < share_count; ++i) {
    shares[i] = rng.nonzero_byte();
    product = gf::gf256_mul(product, shares[i]);
  }
  shares[share_count - 1] = product;
  return shares;
}

std::uint8_t multiplicative_unshare(std::span<const std::uint8_t> shares) {
  SCA_ASSERT(!shares.empty(), "multiplicative_unshare: empty shares");
  std::uint8_t x = shares[shares.size() - 1];
  for (std::size_t i = 0; i + 1 < shares.size(); ++i)
    x = gf::gf256_mul(x, gf::gf256_inv(shares[i]));
  return x;
}

}  // namespace sca::gadgets
