#include "src/gadgets/masked_aes.hpp"

#include "src/common/check.hpp"
#include "src/gadgets/masked_sbox.hpp"

namespace sca::gadgets {

using netlist::InputRole;
using netlist::Netlist;
using netlist::ShareLabel;
using netlist::SignalId;
using netlist::StateRole;

namespace {

// xtime (multiplication by 0x02 in GF(2^8)/0x11B) as wiring + 3 XORs.
Bus xtime_bus(Netlist& nl, const Bus& a) {
  Bus out(8);
  out[0] = a[7];
  out[1] = nl.xor_(a[0], a[7]);
  out[2] = a[1];
  out[3] = nl.xor_(a[2], a[7]);
  out[4] = nl.xor_(a[3], a[7]);
  out[5] = a[4];
  out[6] = a[5];
  out[7] = a[6];
  return out;
}

// One MixColumns column (4 bytes in, 4 bytes out) on one share.
std::vector<Bus> mix_column(Netlist& nl, const std::vector<Bus>& col) {
  SCA_ASSERT(col.size() == 4, "mix_column: need 4 bytes");
  std::vector<Bus> x2(4);
  for (std::size_t i = 0; i < 4; ++i) x2[i] = xtime_bus(nl, col[i]);
  auto mul3 = [&](std::size_t i) { return xor_bus(nl, x2[i], col[i]); };
  std::vector<Bus> out(4);
  out[0] = xor_bus(nl, xor_bus(nl, x2[0], mul3(1)), xor_bus(nl, col[2], col[3]));
  out[1] = xor_bus(nl, xor_bus(nl, col[0], x2[1]), xor_bus(nl, mul3(2), col[3]));
  out[2] = xor_bus(nl, xor_bus(nl, col[0], col[1]), xor_bus(nl, x2[2], mul3(3)));
  out[3] = xor_bus(nl, xor_bus(nl, mul3(0), col[1]), xor_bus(nl, col[2], x2[3]));
  return out;
}

// Round-constant decoder: rcon(round) for round in 1..10, as OR trees over
// round-equality signals. Output bits are 0 outside 1..10.
Bus rcon_decoder(Netlist& nl, const Bus& round) {
  static constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                             0x20, 0x40, 0x80, 0x1B, 0x36};
  std::vector<SignalId> eq(11);
  for (unsigned r = 1; r <= 10; ++r) eq[r] = eq_const(nl, round, r);
  Bus out(8);
  for (std::size_t bit = 0; bit < 8; ++bit) {
    std::vector<SignalId> terms;
    for (unsigned r = 1; r <= 10; ++r)
      if ((kRcon[r] >> bit) & 1u) terms.push_back(eq[r]);
    if (terms.empty()) {
      out[bit] = nl.constant(false);
      continue;
    }
    SignalId acc = terms[0];
    for (std::size_t i = 1; i < terms.size(); ++i) acc = nl.or_(acc, terms[i]);
    out[bit] = acc;
  }
  return out;
}

}  // namespace

MaskedAes build_masked_aes128(Netlist& nl, const MaskedAesOptions& opts,
                              const std::string& scope) {
  nl.push_scope(scope);
  MaskedAes aes;

  // --- primary inputs ---------------------------------------------------------
  aes.pt.resize(2);
  aes.key.resize(2);
  for (std::uint32_t share = 0; share < 2; ++share) {
    for (std::uint32_t byte = 0; byte < 16; ++byte) {
      aes.pt[share].push_back(make_input_bus(
          nl, 8, InputRole::kShare,
          "pt" + std::to_string(byte) + "_s" + std::to_string(share) + "_",
          /*secret=*/byte, share));
      aes.key[share].push_back(make_input_bus(
          nl, 8, InputRole::kShare,
          "key" + std::to_string(byte) + "_s" + std::to_string(share) + "_",
          /*secret=*/16 + byte, share));
    }
  }

  // --- state and key registers (with feedback, so placeholders first) ----------
  // Each register carries a state annotation so netlist::extract_slice can
  // cut the round feedback and keep the lint attribution: annotation group
  // `byte` for the state bank, 16 + `byte` for the key bank — mirroring the
  // secret groups of the primary inputs above. The controller registers stay
  // unannotated; they are untainted and slice extraction infers them public.
  auto make_reg_bank = [&](const std::string& base, std::uint32_t group_base) {
    std::vector<std::vector<Bus>> bank(2);
    for (std::uint32_t share = 0; share < 2; ++share)
      for (std::uint32_t byte = 0; byte < 16; ++byte) {
        const std::uint32_t group = group_base + byte;
        nl.set_state_group_name(
            group, nl.scope_prefix() + base + std::to_string(byte));
        Bus bus;
        for (std::uint32_t bit = 0; bit < 8; ++bit) {
          bus.push_back(nl.make_reg_placeholder());
          nl.annotate_register(bus.back(), StateRole::kShare,
                               ShareLabel{group, share, bit});
        }
        name_bus(nl, bus, base + std::to_string(byte) + "_s" +
                              std::to_string(share) + "_");
        bank[share].push_back(bus);
      }
    return bank;
  };
  std::vector<std::vector<Bus>> state = make_reg_bank("st", 0);
  std::vector<std::vector<Bus>> keyreg = make_reg_bank("k", 16);

  // --- controller ---------------------------------------------------------------
  nl.push_scope("ctrl");
  Bus phase;  // 3-bit counter, 0..5
  for (std::size_t i = 0; i < 3; ++i) phase.push_back(nl.make_reg_placeholder());
  name_bus(nl, phase, "phase");
  Bus round;  // 4-bit counter, 0..11
  for (std::size_t i = 0; i < 4; ++i) round.push_back(nl.make_reg_placeholder());
  name_bus(nl, round, "round");

  const SignalId phase_wrap = eq_const(nl, phase, 5);
  const Bus phase_next =
      mux_bus(nl, phase_wrap, increment_bus(nl, phase),
              {nl.constant(false), nl.constant(false), nl.constant(false)});
  for (std::size_t i = 0; i < 3; ++i) nl.connect_reg(phase[i], phase_next[i]);

  // The core free-runs: after the last round the counter wraps to 0 and the
  // next period reloads a fresh (re-shared) plaintext/key from the inputs.
  // A halted design would freeze its ciphertext sharing, which is both
  // unrealistic and poisonous for statistical evaluation (frozen shares make
  // consecutive samples perfectly correlated).
  const SignalId latch = eq_const(nl, phase, 0);
  nl.name_signal(latch, "latch");
  const SignalId is_init = eq_const(nl, round, 0);
  const SignalId is_last = eq_const(nl, round, 10);
  const Bus zero4 = {nl.constant(false), nl.constant(false), nl.constant(false),
                     nl.constant(false)};
  const Bus round_inc = mux_bus(nl, is_last, increment_bus(nl, round), zero4);
  const Bus round_next = mux_bus(nl, latch, round, round_inc);
  for (std::size_t i = 0; i < 4; ++i) nl.connect_reg(round[i], round_next[i]);

  // done: high while the state registers hold a finished ciphertext (round
  // wrapped back to 0 after at least one full encryption).
  const SignalId ran = nl.make_reg_placeholder();
  nl.name_signal(ran, "ran");
  nl.connect_reg(ran, nl.or_(ran, is_last));
  const SignalId is_done = nl.and_(is_init, ran);
  nl.name_signal(is_done, "done");
  const Bus rcon = rcon_decoder(nl, round);
  nl.pop_scope();

  // --- SubBytes: 16 Sbox instances, each with private randomness ---------------
  MaskedSboxOptions sbox_opts;
  sbox_opts.include_kronecker = true;
  sbox_opts.kron_plan = opts.kron_plan;
  sbox_opts.include_affine = true;

  auto make_sbox = [&](const std::string& name, const Bus& s0, const Bus& s1) {
    nl.push_scope(name);
    const Bus r = make_input_bus(nl, 8, InputRole::kRandom, "R");
    const Bus rp = make_input_bus(nl, 8, InputRole::kRandom, "Rp");
    std::vector<SignalId> fresh;
    for (std::size_t k = 0; k < opts.kron_plan.fresh_count(); ++k)
      fresh.push_back(nl.add_input(InputRole::kRandom, "f" + std::to_string(k)));
    nl.pop_scope();
    aes.nonzero_random_buses.push_back(r);
    return build_masked_sbox_core(nl, {s0, s1}, r, rp, fresh, sbox_opts, name);
  };

  std::vector<std::vector<Bus>> sb(2, std::vector<Bus>(16));
  for (std::uint32_t byte = 0; byte < 16; ++byte) {
    const MaskedSbox sbox = make_sbox("sb" + std::to_string(byte),
                                      state[0][byte], state[1][byte]);
    sb[0][byte] = sbox.out_shares[0];
    sb[1][byte] = sbox.out_shares[1];
  }

  // --- linear layers per share ---------------------------------------------------
  // ShiftRows: byte (r, c) at index c*4+r moves from ((c+r)%4)*4+r.
  std::vector<std::vector<Bus>> sr(2, std::vector<Bus>(16));
  for (std::uint32_t share = 0; share < 2; ++share)
    for (std::uint32_t r = 0; r < 4; ++r)
      for (std::uint32_t c = 0; c < 4; ++c)
        sr[share][c * 4 + r] = sb[share][((c + r) % 4) * 4 + r];

  std::vector<std::vector<Bus>> mc(2, std::vector<Bus>(16));
  for (std::uint32_t share = 0; share < 2; ++share)
    for (std::uint32_t c = 0; c < 4; ++c) {
      const std::vector<Bus> col = {sr[share][c * 4 + 0], sr[share][c * 4 + 1],
                                    sr[share][c * 4 + 2], sr[share][c * 4 + 3]};
      const std::vector<Bus> mixed = mix_column(nl, col);
      for (std::uint32_t r = 0; r < 4; ++r) mc[share][c * 4 + r] = mixed[r];
    }

  // --- key schedule ----------------------------------------------------------------
  // SubWord over RotWord(last word): bytes 13, 14, 15, 12 of the key bank.
  std::vector<std::vector<Bus>> subword(2, std::vector<Bus>(4));
  static constexpr std::uint32_t kRotWord[4] = {13, 14, 15, 12};
  for (std::uint32_t i = 0; i < 4; ++i) {
    const MaskedSbox sbox = make_sbox("ks" + std::to_string(i),
                                      keyreg[0][kRotWord[i]],
                                      keyreg[1][kRotWord[i]]);
    subword[0][i] = sbox.out_shares[0];
    subword[1][i] = sbox.out_shares[1];
  }

  std::vector<std::vector<Bus>> key_next(2, std::vector<Bus>(16));
  for (std::uint32_t share = 0; share < 2; ++share) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      Bus t = xor_bus(nl, keyreg[share][i], subword[share][i]);
      // Rcon is public, so it lands on byte 0 of share 0 only.
      if (share == 0 && i == 0) t = xor_bus(nl, t, rcon);
      key_next[share][i] = t;
    }
    for (std::uint32_t i = 4; i < 16; ++i)
      key_next[share][i] =
          xor_bus(nl, keyreg[share][i], key_next[share][i - 4]);
  }

  // --- round result and register updates ----------------------------------------
  for (std::uint32_t share = 0; share < 2; ++share) {
    for (std::uint32_t byte = 0; byte < 16; ++byte) {
      // Round r in 1..9: MC(SR(SB)) ^ rk_r; round 10: SR(SB) ^ rk_10.
      const Bus pre = mux_bus(nl, is_last, mc[share][byte], sr[share][byte]);
      const Bus round_result = xor_bus(nl, pre, key_next[share][byte]);
      const Bus initial =
          xor_bus(nl, aes.pt[share][byte], aes.key[share][byte]);
      const Bus loaded = mux_bus(nl, is_init, round_result, initial);
      const Bus state_d = mux_bus(nl, latch, state[share][byte], loaded);
      for (std::size_t bit = 0; bit < 8; ++bit)
        nl.connect_reg(state[share][byte][bit], state_d[bit]);

      const Bus key_loaded =
          mux_bus(nl, is_init, key_next[share][byte], aes.key[share][byte]);
      const Bus key_d = mux_bus(nl, latch, keyreg[share][byte], key_loaded);
      for (std::size_t bit = 0; bit < 8; ++bit)
        nl.connect_reg(keyreg[share][byte][bit], key_d[bit]);
    }
  }

  aes.ct = state;
  aes.done = is_done;
  nl.add_output("done", is_done);
  for (std::uint32_t share = 0; share < 2; ++share)
    for (std::uint32_t byte = 0; byte < 16; ++byte)
      for (std::size_t bit = 0; bit < 8; ++bit)
        nl.add_output("ct" + std::to_string(byte) + "_s" +
                          std::to_string(share) + "_" + std::to_string(bit),
                      state[share][byte][bit]);

  nl.pop_scope();
  return aes;
}

}  // namespace sca::gadgets
