#include "src/gadgets/conversions2.hpp"

#include "src/common/check.hpp"
#include "src/gadgets/gf_circuits.hpp"

namespace sca::gadgets {

using netlist::Netlist;

B2M2Result build_b2m2(Netlist& nl, const std::vector<Bus>& b_shares,
                      const Bus& r1, const Bus& r2, const std::string& scope) {
  common::require(b_shares.size() == 3, "build_b2m2: need 3 Boolean shares");
  nl.push_scope(scope);
  B2M2Result result;

  // Cycle 1: blind every share with R1 before anything is combined.
  std::vector<Bus> c(3);
  for (std::size_t i = 0; i < 3; ++i) {
    c[i] = reg_bus(nl, build_gf256_mul(nl, b_shares[i], r1));
    name_bus(nl, c[i], "c" + std::to_string(i) + "_");
  }

  // Cycle 2: compress 3 -> 2 (safe: C0 ^ C1 is blinded by R1 and still
  // masked by C2), then blind with R2.
  const Bus d0 = xor_bus(nl, c[0], c[1]);
  const Bus r2_d = reg_bus(nl, r2);
  name_bus(nl, r2_d, "r2d_");
  const Bus e0 = reg_bus(nl, build_gf256_mul(nl, d0, r2_d));
  name_bus(nl, e0, "e0_");
  const Bus e1 = reg_bus(nl, build_gf256_mul(nl, c[2], r2_d));
  name_bus(nl, e1, "e1_");

  // Final compression 2 -> 1: P = X * R1 * R2, uniform (non-zero) for any
  // non-zero X — this is why the Kronecker delta runs upstream.
  result.p = xor_bus(nl, e0, e1);
  name_bus(nl, result.p, "p_");
  result.r1 = delay_bus(nl, r1, 2);
  name_bus(nl, result.r1, "r1d_");
  result.r2 = reg_bus(nl, r2_d);
  name_bus(nl, result.r2, "r2dd_");

  nl.pop_scope();
  return result;
}

M2B2Result build_m2b2(Netlist& nl, const Bus& q0, const Bus& q1, const Bus& q2,
                      const Bus& s1, const Bus& s2, const std::string& scope) {
  nl.push_scope(scope);
  M2B2Result result;

  // Cycle 1: Boolean-mask the data-carrying share Q2.
  const Bus t0 = reg_bus(nl, s1);
  name_bus(nl, t0, "t0_");
  const Bus t1 = reg_bus(nl, xor_bus(nl, q2, s1));
  name_bus(nl, t1, "t1_");

  // Cycle 2: multiply both Boolean shares by Q1 (share-local).
  const Bus q1_d = reg_bus(nl, q1);
  const Bus u0 = reg_bus(nl, build_gf256_mul(nl, t0, q1_d));
  name_bus(nl, u0, "u0_");
  const Bus u1 = reg_bus(nl, build_gf256_mul(nl, t1, q1_d));
  name_bus(nl, u1, "u1_");

  // Cycle 3: reshare 2 -> 3 with the fresh mask S2.
  const Bus s2_d = delay_bus(nl, s2, 2);
  const Bus w0 = reg_bus(nl, xor_bus(nl, u0, s2_d));
  const Bus w1 = reg_bus(nl, s2_d);
  const Bus w2 = reg_bus(nl, u1);
  name_bus(nl, w0, "w0_");
  name_bus(nl, w1, "w1_");
  name_bus(nl, w2, "w2_");

  // Output: multiply every Boolean share by Q0 (combinational, like the
  // first-order M2B's output products).
  const Bus q0_d = delay_bus(nl, q0, 3);
  name_bus(nl, q0_d, "q0d_");
  result.b_shares = {build_gf256_mul(nl, w0, q0_d),
                     build_gf256_mul(nl, w1, q0_d),
                     build_gf256_mul(nl, w2, q0_d)};
  for (std::size_t i = 0; i < 3; ++i)
    name_bus(nl, result.b_shares[i], "b" + std::to_string(i) + "_");

  nl.pop_scope();
  return result;
}

}  // namespace sca::gadgets
