// Domain-Oriented Masking multipliers over small Galois fields.
//
// The bit-level DOM-AND of dom.hpp generalizes directly: for shares
// x^0..x^{s-1}, y^0..y^{s-1} of field elements,
//
//   z^i = [x^i * y^i]  XOR  over j != i of  [x^i * y^j ^ R_{ij}]
//
// with one fresh mask *element* (field-width bits) per unordered domain
// pair, and registers on every product term. This is the multiplier used by
// Boolean-masked AES Sboxes in the DOM tradition (Gross et al.) — the
// state-of-the-art the CHES 2018 multiplicative design competes against —
// and by our second-order masking conversions.
#pragma once

#include <string>
#include <vector>

#include "src/gadgets/bus.hpp"
#include "src/netlist/ir.hpp"

namespace sca::gadgets {

/// Which field the multiplier computes in (operand width follows).
enum class GfKind {
  kGf4Tower,    ///< GF(2^2) in the tower representation, 2-bit buses
  kGf16Tower,   ///< GF(2^4) in the tower representation, 4-bit buses
  kGf256Aes,    ///< GF(2^8) in the AES representation, 8-bit buses
};

/// Bus width of a field element.
constexpr std::size_t gf_width(GfKind kind) {
  switch (kind) {
    case GfKind::kGf4Tower: return 2;
    case GfKind::kGf16Tower: return 4;
    case GfKind::kGf256Aes: return 8;
  }
  return 0;
}

/// Handles to one DOM field multiplier.
struct DomGfMul {
  std::vector<Bus> out;  ///< s output share buses
};

/// Builds a DOM-indep field multiplier. `x` and `y` are share vectors of
/// element buses (equal count s >= 2, each bus gf_width(kind) bits wide).
/// `masks` holds dom_mask_count(s) fresh mask buses of the same width.
/// Inner-domain products are registered like the cross terms (pipelined,
/// matching the designs evaluated in the paper). Latency: 1 cycle.
DomGfMul build_dom_gf_mul(netlist::Netlist& nl, GfKind kind,
                          const std::vector<Bus>& x, const std::vector<Bus>& y,
                          const std::vector<Bus>& masks,
                          const std::string& name);

/// Number of fresh mask buses a ring refresh over s shares consumes (for
/// s = 2 the two ring masks coincide, so one suffices).
constexpr std::size_t refresh_mask_count(std::size_t share_count) {
  return share_count == 2 ? 1 : share_count;
}

/// Re-randomizes a sharing with a registered ring refresh:
///   out_i = [ in_i ^ m_i ^ m_{(i+1) mod s} ]      (s >= 3)
///   out_i = [ in_i ^ m_0 ]                        (s == 2)
/// The XOR of the outputs equals the XOR of the inputs, but the output
/// sharing is independent of the input sharing — required whenever a shared
/// value feeds two different DOM multipliers whose probe cones could
/// otherwise combine its shares. Latency: 1 cycle.
std::vector<Bus> build_ring_refresh(netlist::Netlist& nl,
                                    const std::vector<Bus>& shares,
                                    const std::vector<Bus>& masks,
                                    const std::string& name);

}  // namespace sca::gadgets
