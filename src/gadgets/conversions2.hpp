// Second-order (3-share) masking-scheme conversions, following the iterative
// multiply-and-compress idea of Genelle et al. / De Meyer et al.:
//
//   B2M (3 Boolean shares -> product-form multiplicative triple):
//     cycle 1:  C_i = [B_i x R1]                      (share-local multiplies)
//     cycle 2:  E_0 = [(C_0 ^ C_1) x R2],  E_1 = [C_2 x R2]
//     output:   P   = E_0 ^ E_1  ( = X * R1 * R2 ),  triple (R1, R2, P)
//   so X = inv(R1) * inv(R2) * P. Each compression step happens only after
//   the previous multiplicative blinding, so no partial XOR ever exposes X
//   below three probes. R1, R2 must be non-zero.
//
//   M2B (product triple Q0*Q1*Q2 -> 3 Boolean shares):
//     cycle 1:  T_0 = [S1],        T_1 = [Q2 ^ S1]
//     cycle 2:  U_i = [T_i x Q1]
//     cycle 3:  W_0 = [U_0 ^ S2],  W_1 = [S2],  W_2 = [U_1]
//     output:   B_i = W_i x Q0    (combinational)
//   so B_0 ^ B_1 ^ B_2 = Q0 * Q1 * Q2. S1, S2 are uniform mask bytes.
//
// These constructions are validated by the evaluation engine up to order 2
// (tests + bench_e9); their security is an empirical tool-checked property,
// in the spirit of the paper.
#pragma once

#include <string>
#include <vector>

#include "src/gadgets/bus.hpp"
#include "src/netlist/ir.hpp"

namespace sca::gadgets {

struct B2M2Result {
  Bus r1;  ///< first multiplicative share (delayed R1)
  Bus r2;  ///< second multiplicative share (delayed R2)
  Bus p;   ///< third share, X * R1 * R2
  std::size_t latency = 2;
};

/// Second-order Boolean -> multiplicative conversion. `r1`, `r2` must be fed
/// non-zero bytes.
B2M2Result build_b2m2(netlist::Netlist& nl, const std::vector<Bus>& b_shares,
                      const Bus& r1, const Bus& r2,
                      const std::string& scope = "b2m2");

struct M2B2Result {
  std::vector<Bus> b_shares;  ///< three 8-bit Boolean share buses
  std::size_t latency = 3;
};

/// Second-order multiplicative -> Boolean conversion of a product-form
/// triple (X = q0 * q1 * q2). `s1`, `s2` are uniform mask bytes; `q0` and
/// `q1` are registered internally to match the pipeline.
M2B2Result build_m2b2(netlist::Netlist& nl, const Bus& q0, const Bus& q1,
                      const Bus& q2, const Bus& s1, const Bus& s2,
                      const std::string& scope = "m2b2");

}  // namespace sca::gadgets
