#include "src/gadgets/dom_gf.hpp"

#include "src/common/check.hpp"
#include "src/gadgets/dom.hpp"
#include "src/gadgets/gf_circuits.hpp"

namespace sca::gadgets {

using netlist::Netlist;

namespace {

Bus field_mul(Netlist& nl, GfKind kind, const Bus& a, const Bus& b) {
  switch (kind) {
    case GfKind::kGf4Tower:
      return build_gf4_mul(nl, a, b);
    case GfKind::kGf16Tower:
      return build_gf16_mul(nl, a, b);
    case GfKind::kGf256Aes:
      return build_gf256_mul(nl, a, b);
  }
  throw common::Error("field_mul: unknown field kind");
}

}  // namespace

DomGfMul build_dom_gf_mul(Netlist& nl, GfKind kind, const std::vector<Bus>& x,
                          const std::vector<Bus>& y,
                          const std::vector<Bus>& masks,
                          const std::string& name) {
  const std::size_t s = x.size();
  const std::size_t width = gf_width(kind);
  common::require(s >= 2, "build_dom_gf_mul: need at least 2 shares");
  common::require(y.size() == s, "build_dom_gf_mul: share count mismatch");
  common::require(masks.size() == dom_mask_count(s),
                  "build_dom_gf_mul: wrong mask count");
  for (const Bus& bus : x)
    common::require(bus.size() == width, "build_dom_gf_mul: x width mismatch");
  for (const Bus& bus : y)
    common::require(bus.size() == width, "build_dom_gf_mul: y width mismatch");
  for (const Bus& bus : masks)
    common::require(bus.size() == width,
                    "build_dom_gf_mul: mask width mismatch");

  nl.push_scope(name);
  DomGfMul gadget;
  for (std::size_t i = 0; i < s; ++i) {
    // Inner-domain product, registered (pipelined like the paper's gadgets).
    Bus acc = reg_bus(nl, field_mul(nl, kind, x[i], y[i]));
    name_bus(nl, acc, "inner" + std::to_string(i) + "_reg");
    for (std::size_t j = 0; j < s; ++j) {
      if (j == i) continue;
      const std::size_t mi = dom_mask_index(std::min(i, j), std::max(i, j), s);
      Bus cross = field_mul(nl, kind, x[i], y[j]);
      name_bus(nl, cross, "crossprod" + std::to_string(i) + std::to_string(j));
      cross = reg_bus(nl, xor_bus(nl, cross, masks[mi]));
      name_bus(nl, cross,
               "cross" + std::to_string(i) + std::to_string(j) + "_reg");
      acc = xor_bus(nl, acc, cross);
    }
    name_bus(nl, acc, "out" + std::to_string(i));
    gadget.out.push_back(std::move(acc));
  }
  nl.pop_scope();
  return gadget;
}

std::vector<Bus> build_ring_refresh(Netlist& nl, const std::vector<Bus>& shares,
                                    const std::vector<Bus>& masks,
                                    const std::string& name) {
  const std::size_t s = shares.size();
  common::require(s >= 2, "build_ring_refresh: need at least 2 shares");
  common::require(masks.size() == refresh_mask_count(s),
                  "build_ring_refresh: wrong mask count");
  const std::size_t width = shares[0].size();
  for (const Bus& bus : shares)
    common::require(bus.size() == width, "build_ring_refresh: width mismatch");
  for (const Bus& bus : masks)
    common::require(bus.size() == width,
                    "build_ring_refresh: mask width mismatch");

  nl.push_scope(name);
  std::vector<Bus> out(s);
  for (std::size_t i = 0; i < s; ++i) {
    Bus masked = shares[i];
    if (s == 2) {
      masked = xor_bus(nl, masked, masks[0]);
    } else {
      masked = xor_bus(nl, masked, masks[i]);
      masked = xor_bus(nl, masked, masks[(i + 1) % s]);
    }
    out[i] = reg_bus(nl, masked);
    name_bus(nl, out[i], "fresh" + std::to_string(i) + "_");
  }
  nl.pop_scope();
  return out;
}

}  // namespace sca::gadgets
