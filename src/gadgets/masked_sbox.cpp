#include "src/gadgets/masked_sbox.hpp"

#include "src/common/check.hpp"
#include "src/gadgets/conversions.hpp"
#include "src/gadgets/gf_circuits.hpp"

namespace sca::gadgets {

using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

MaskedSbox build_masked_sbox_core(Netlist& nl, const std::vector<Bus>& in_shares,
                                  const Bus& rand_b2m, const Bus& rand_m2b,
                                  const std::vector<SignalId>& kron_fresh,
                                  const MaskedSboxOptions& opts,
                                  const std::string& scope) {
  common::require(in_shares.size() == 2,
                  "build_masked_sbox_core: first-order design needs 2 shares");
  common::require(rand_b2m.size() == 8 && rand_m2b.size() == 8,
                  "build_masked_sbox_core: randomness buses must be 8 bits");

  nl.push_scope(scope);
  MaskedSbox sbox;
  sbox.in_shares = in_shares;
  sbox.rand_b2m = rand_b2m;
  sbox.rand_m2b = rand_m2b;
  sbox.kron_fresh = kron_fresh;

  std::vector<Bus> x_prime(2);
  std::vector<SignalId> z_delayed;  // delta shares aligned with the M2B output

  if (opts.include_kronecker) {
    KroneckerDelta kron =
        build_kronecker(nl, sbox.in_shares, opts.kron_plan, "kron", kron_fresh);
    sbox.kron_fresh = kron.fresh;

    // Input shares wait for the delta in a 3-deep pipeline.
    const Bus d0 = delay_bus(nl, sbox.in_shares[0], kron.latency);
    const Bus d1 = delay_bus(nl, sbox.in_shares[1], kron.latency);
    name_bus(nl, d0, "d0_");
    name_bus(nl, d1, "d1_");

    // X' = X ^ delta(X): the delta bit lands on bit 0 of each share.
    x_prime[0] = d0;
    x_prime[0][0] = nl.xor_(d0[0], kron.z[0]);
    nl.name_signal(x_prime[0][0], "xp0_0");
    x_prime[1] = d1;
    x_prime[1][0] = nl.xor_(d1[0], kron.z[1]);
    nl.name_signal(x_prime[1][0], "xp1_0");

    // The delta must be re-applied after inversion: delay it past B2M (1)
    // and M2B (1).
    z_delayed = {nl.reg(nl.reg(kron.z[0])), nl.reg(nl.reg(kron.z[1]))};
    nl.name_signal(z_delayed[0], "zd0");
    nl.name_signal(z_delayed[1], "zd1");

    sbox.kronecker = std::move(kron);
    sbox.latency = 5;
  } else {
    x_prime[0] = sbox.in_shares[0];
    x_prime[1] = sbox.in_shares[1];
    sbox.latency = 2;
  }

  // Boolean -> multiplicative.
  const B2MResult b2m = build_b2m(nl, x_prime[0], x_prime[1], sbox.rand_b2m);

  // Local inversion of P1 (a single multiplicative share): X'^-1 = P0 x
  // inv(P1), so the product-form output shares are Q0 = P0, Q1 = inv(P1).
  nl.push_scope("inv");
  const Bus q1 = build_gf256_inv(nl, b2m.p1);
  name_bus(nl, q1, "q1_");
  nl.pop_scope();

  // Multiplicative -> Boolean.
  const M2BResult m2b = build_m2b(nl, b2m.p0, q1, sbox.rand_m2b);

  // Undo the zero-mapping, then the affine transformation. Only share 0
  // receives the affine constant.
  Bus y0 = m2b.b0;
  Bus y1 = m2b.b1;
  if (opts.include_kronecker) {
    y0[0] = nl.xor_(y0[0], z_delayed[0]);
    y1[0] = nl.xor_(y1[0], z_delayed[1]);
  }
  if (opts.include_affine) {
    nl.push_scope("affine");
    y0 = build_sbox_affine(nl, y0, /*with_constant=*/true);
    y1 = build_sbox_affine(nl, y1, /*with_constant=*/false);
    nl.pop_scope();
  }
  name_bus(nl, y0, "s0_");
  name_bus(nl, y1, "s1_");
  sbox.out_shares = {y0, y1};

  nl.pop_scope();
  return sbox;
}

MaskedSbox build_masked_sbox(Netlist& nl, const MaskedSboxOptions& opts,
                             const std::string& scope, std::uint32_t secret) {
  nl.push_scope(scope);
  std::vector<Bus> in_shares = {
      make_input_bus(nl, 8, InputRole::kShare, "b0_", secret, 0),
      make_input_bus(nl, 8, InputRole::kShare, "b1_", secret, 1)};
  const Bus r = make_input_bus(nl, 8, InputRole::kRandom, "R");
  const Bus rp = make_input_bus(nl, 8, InputRole::kRandom, "Rp");
  std::vector<SignalId> kron_fresh;
  if (opts.include_kronecker) {
    for (std::size_t k = 0; k < opts.kron_plan.fresh_count(); ++k)
      kron_fresh.push_back(
          nl.add_input(InputRole::kRandom, "f" + std::to_string(k)));
  }
  nl.pop_scope();

  MaskedSbox sbox =
      build_masked_sbox_core(nl, in_shares, r, rp, kron_fresh, opts, scope);
  for (std::size_t i = 0; i < 8; ++i) {
    nl.add_output("s0_" + std::to_string(i), sbox.out_shares[0][i]);
    nl.add_output("s1_" + std::to_string(i), sbox.out_shares[1][i]);
  }
  return sbox;
}

}  // namespace sca::gadgets
