#include "src/gadgets/masked_sbox2.hpp"

#include "src/common/check.hpp"
#include "src/gadgets/conversions2.hpp"
#include "src/gadgets/gf_circuits.hpp"

namespace sca::gadgets {

using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

MaskedSbox2 build_masked_sbox2(Netlist& nl, const MaskedSbox2Options& options,
                               const std::string& scope, std::uint32_t secret) {
  common::require(options.kron_plan.slot_count() == kronecker_slot_count(3),
                  "build_masked_sbox2: plan must have 21 slots (3 shares)");
  nl.push_scope(scope);
  MaskedSbox2 sbox;

  for (std::uint32_t i = 0; i < 3; ++i)
    sbox.in_shares.push_back(make_input_bus(
        nl, 8, InputRole::kShare, "b" + std::to_string(i) + "_", secret, i));
  sbox.rand_r1 = make_input_bus(nl, 8, InputRole::kRandom, "R1");
  sbox.rand_r2 = make_input_bus(nl, 8, InputRole::kRandom, "R2");
  sbox.rand_s1 = make_input_bus(nl, 8, InputRole::kRandom, "S1");
  sbox.rand_s2 = make_input_bus(nl, 8, InputRole::kRandom, "S2");

  // Kronecker delta over the three shares (3 cycles).
  KroneckerDelta kron =
      build_kronecker(nl, sbox.in_shares, options.kron_plan, "kron");
  sbox.kron_fresh = kron.fresh;

  // Delay the input and apply the zero-mapping on bit 0 of every share.
  std::vector<Bus> x_prime(3);
  for (std::size_t i = 0; i < 3; ++i) {
    const Bus d = delay_bus(nl, sbox.in_shares[i], kron.latency);
    x_prime[i] = d;
    x_prime[i][0] = nl.xor_(d[0], kron.z[i]);
    nl.name_signal(x_prime[i][0], "xp" + std::to_string(i) + "_0");
  }

  // B2M: two cycles; P = X' R1 R2 with X' != 0 guaranteed by the Kronecker.
  const B2M2Result b2m = build_b2m2(nl, x_prime, sbox.rand_r1, sbox.rand_r2);

  // Local inversion of the data-carrying share:
  // X'^-1 = R1 * R2 * inv(P)  (product form, shares (R1, R2, inv(P))).
  nl.push_scope("inv");
  const Bus q2 = build_gf256_inv(nl, b2m.p);
  name_bus(nl, q2, "q2_");
  nl.pop_scope();

  // M2B: three cycles back to Boolean sharing.
  const M2B2Result m2b =
      build_m2b2(nl, b2m.r1, b2m.r2, q2, sbox.rand_s1, sbox.rand_s2);

  // Undo the zero-mapping: the delta shares wait for B2M (2) + M2B (3).
  std::vector<SignalId> z_delayed(3);
  for (std::size_t i = 0; i < 3; ++i) {
    SignalId z = kron.z[i];
    for (int d = 0; d < 5; ++d) z = nl.reg(z);
    z_delayed[i] = z;
    nl.name_signal(z, "zd" + std::to_string(i));
  }

  for (std::size_t i = 0; i < 3; ++i) {
    Bus y = m2b.b_shares[i];
    y[0] = nl.xor_(y[0], z_delayed[i]);
    if (options.include_affine)
      y = build_sbox_affine(nl, y, /*with_constant=*/i == 0);
    name_bus(nl, y, "s" + std::to_string(i) + "_");
    sbox.out_shares.push_back(y);
    for (std::size_t b = 0; b < 8; ++b)
      nl.add_output("s" + std::to_string(i) + "_" + std::to_string(b), y[b]);
  }

  sbox.latency = kron.latency + 2 + 3;
  nl.pop_scope();
  return sbox;
}

}  // namespace sca::gadgets
