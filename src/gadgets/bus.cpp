#include "src/gadgets/bus.hpp"

#include "src/common/check.hpp"

namespace sca::gadgets {

using netlist::GateKind;
using netlist::InputRole;
using netlist::Netlist;
using netlist::ShareLabel;
using netlist::SignalId;

Bus make_input_bus(Netlist& nl, std::size_t width, InputRole role,
                   const std::string& name, std::uint32_t secret,
                   std::uint32_t share) {
  Bus bus;
  bus.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    ShareLabel label;
    label.secret = secret;
    label.share = share;
    label.bit = static_cast<std::uint32_t>(i);
    bus.push_back(nl.add_input(role, name + std::to_string(i), label));
  }
  return bus;
}

Bus reg_bus(Netlist& nl, const Bus& bus) {
  Bus out;
  out.reserve(bus.size());
  for (SignalId s : bus) out.push_back(nl.reg(s));
  return out;
}

Bus delay_bus(Netlist& nl, const Bus& bus, std::size_t stages) {
  Bus out = bus;
  for (std::size_t i = 0; i < stages; ++i) out = reg_bus(nl, out);
  return out;
}

Bus xor_bus(Netlist& nl, const Bus& a, const Bus& b) {
  common::require(a.size() == b.size(), "xor_bus: width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(nl.xor_(a[i], b[i]));
  return out;
}

Bus and_bus(Netlist& nl, const Bus& a, const Bus& b) {
  common::require(a.size() == b.size(), "and_bus: width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(nl.and_(a[i], b[i]));
  return out;
}

Bus not_bus(Netlist& nl, const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (SignalId s : a) out.push_back(nl.not_(s));
  return out;
}

Bus xor_const(Netlist& nl, const Bus& a, std::uint64_t constant) {
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(((constant >> i) & 1u) ? nl.not_(a[i]) : a[i]);
  return out;
}

Bus mux_bus(Netlist& nl, SignalId sel, const Bus& a0, const Bus& a1) {
  common::require(a0.size() == a1.size(), "mux_bus: width mismatch");
  Bus out;
  out.reserve(a0.size());
  for (std::size_t i = 0; i < a0.size(); ++i)
    out.push_back(nl.mux(sel, a0[i], a1[i]));
  return out;
}

SignalId eq_const(Netlist& nl, const Bus& a, std::uint64_t value) {
  std::vector<SignalId> matches;
  matches.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    matches.push_back(((value >> i) & 1u) ? a[i] : nl.not_(a[i]));
  // AND-tree reduction.
  while (matches.size() > 1) {
    std::vector<SignalId> next;
    for (std::size_t i = 0; i + 1 < matches.size(); i += 2)
      next.push_back(nl.and_(matches[i], matches[i + 1]));
    if (matches.size() % 2) next.push_back(matches.back());
    matches = std::move(next);
  }
  return matches.empty() ? nl.constant(true) : matches[0];
}

Bus increment_bus(Netlist& nl, const Bus& a) {
  Bus out;
  out.reserve(a.size());
  SignalId carry = netlist::kNoSignal;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i == 0) {
      out.push_back(nl.not_(a[0]));
      carry = a[0];
    } else {
      out.push_back(nl.xor_(a[i], carry));
      if (i + 1 < a.size()) carry = nl.and_(a[i], carry);
    }
  }
  return out;
}

SignalId xor_tree(Netlist& nl, std::vector<SignalId> signals) {
  if (signals.empty()) return nl.constant(false);
  // Reduce pairwise to keep depth logarithmic, as a synthesis tool would.
  while (signals.size() > 1) {
    std::vector<SignalId> next;
    next.reserve((signals.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < signals.size(); i += 2)
      next.push_back(nl.xor_(signals[i], signals[i + 1]));
    if (signals.size() % 2) next.push_back(signals.back());
    signals = std::move(next);
  }
  return signals[0];
}

Bus apply_matrix(Netlist& nl, const gf::BitMatrix& m, const Bus& in) {
  common::require(m.cols() == in.size(), "apply_matrix: width mismatch");
  Bus out;
  out.reserve(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    std::vector<SignalId> terms;
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (m.get(r, c)) terms.push_back(in[c]);
    out.push_back(xor_tree(nl, std::move(terms)));
  }
  return out;
}

void name_bus(Netlist& nl, const Bus& bus, const std::string& base) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    nl.name_signal(bus[i], base + std::to_string(i));
}

void set_bus_all_lanes(sim::Simulator& simulator, const Bus& bus,
                       std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    simulator.set_input(bus[i], ((value >> i) & 1u) ? ~std::uint64_t{0} : 0);
}

void set_bus_per_lane(sim::Simulator& simulator, const Bus& bus,
                      std::span<const std::uint8_t, 64> values) {
  common::require(bus.size() <= 8, "set_bus_per_lane: bus wider than a byte");
  for (std::size_t i = 0; i < bus.size(); ++i) {
    std::uint64_t word = 0;
    for (unsigned lane = 0; lane < 64; ++lane)
      word |= static_cast<std::uint64_t>((values[lane] >> i) & 1u) << lane;
    simulator.set_input(bus[i], word);
  }
}

std::uint64_t read_bus_lane(const sim::Simulator& simulator, const Bus& bus,
                            unsigned lane) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    v |= static_cast<std::uint64_t>(simulator.value_in_lane(bus[i], lane)) << i;
  return v;
}

}  // namespace sca::gadgets
