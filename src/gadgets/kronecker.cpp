#include "src/gadgets/kronecker.hpp"

#include "src/common/check.hpp"

namespace sca::gadgets {

using common::require;
using netlist::Netlist;
using netlist::SignalId;

KroneckerDelta build_kronecker(Netlist& nl, const std::vector<Bus>& x_shares,
                               const RandomnessPlan& plan,
                               const std::string& scope,
                               const std::vector<SignalId>& fresh_external) {
  const std::size_t s = x_shares.size();
  require(s >= 2, "build_kronecker: need at least 2 shares");
  for (const Bus& share : x_shares)
    require(share.size() == 8, "build_kronecker: shares must be 8 bits");
  const std::size_t per_gate = dom_mask_count(s);
  require(plan.slot_count() == 7 * per_gate,
          "build_kronecker: plan has wrong slot count for this share count");

  nl.push_scope(scope);

  // Fresh mask bits: externally supplied for sub-circuit use, or created as
  // primary inputs (redrawn every clock cycle by the stimulus generator).
  KroneckerDelta kron;
  if (fresh_external.empty()) {
    for (std::size_t k = 0; k < plan.fresh_count(); ++k)
      kron.fresh.push_back(
          nl.add_input(netlist::InputRole::kRandom, "f" + std::to_string(k)));
  } else {
    require(fresh_external.size() == plan.fresh_count(),
            "build_kronecker: external fresh bit count mismatch");
    kron.fresh = fresh_external;
  }
  const std::vector<SignalId> slots = plan.materialize(nl, kron.fresh);

  // Complement the input: on Boolean shares, inverting share 0 inverts the
  // secret while shares 1..s-1 pass through.
  // inverted[i][b] = bit b of share i of NOT(X).
  std::vector<std::vector<SignalId>> inverted(s);
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t b = 0; b < 8; ++b) {
      const SignalId bit =
          (i == 0) ? nl.not_(x_shares[i][b]) : x_shares[i][b];
      if (i == 0)
        nl.name_signal(bit, "xn" + std::to_string(b) + "_s0");
      inverted[i].push_back(bit);
    }
  }

  // Share vector of inverted bit b.
  auto bit_shares = [&](std::size_t b) {
    std::vector<SignalId> v(s);
    for (std::size_t i = 0; i < s; ++i) v[i] = inverted[i][b];
    return v;
  };
  auto gate_masks = [&](std::size_t gate_index_1based) {
    const std::size_t base = (gate_index_1based - 1) * per_gate;
    return std::vector<SignalId>(slots.begin() + static_cast<std::ptrdiff_t>(base),
                                 slots.begin() +
                                     static_cast<std::ptrdiff_t>(base + per_gate));
  };

  // Layer 1: G1..G4 pair up adjacent complemented bits.
  std::vector<DomAnd> layer1;
  for (std::size_t g = 0; g < 4; ++g)
    layer1.push_back(build_dom_and(nl, bit_shares(2 * g), bit_shares(2 * g + 1),
                                   gate_masks(g + 1),
                                   "G" + std::to_string(g + 1)));

  // Layer 2: G5 = G1 & G2, G6 = G3 & G4.
  DomAnd g5 = build_dom_and(nl, layer1[0].out, layer1[1].out, gate_masks(5), "G5");
  DomAnd g6 = build_dom_and(nl, layer1[2].out, layer1[3].out, gate_masks(6), "G6");

  // Layer 3: G7 = G5 & G6.
  DomAnd g7 = build_dom_and(nl, g5.out, g6.out, gate_masks(7), "G7");

  kron.z = g7.out;
  for (std::size_t i = 0; i < s; ++i)
    nl.name_signal(kron.z[i], "z" + std::to_string(i));
  kron.gates = std::move(layer1);
  kron.gates.push_back(std::move(g5));
  kron.gates.push_back(std::move(g6));
  kron.gates.push_back(std::move(g7));

  nl.pop_scope();
  return kron;
}

}  // namespace sca::gadgets
