// The masked Kronecker delta function of the CHES 2018 multiplicative-masked
// AES Sbox: delta(X) = 1 iff X == 0, computed on Boolean shares as a three-
// level tree of DOM-AND gates over the complemented input bits (Fig. 1b /
// Fig. 3 of the paper):
//
//   layer 1:  G1 = !x0 & !x1   G2 = !x2 & !x3   G3 = !x4 & !x5   G4 = !x6 & !x7
//   layer 2:  G5 = G1 & G2     G6 = G3 & G4
//   layer 3:  G7 = G5 & G6
//
// Each gate consumes dom_mask_count(s) mask slots; which fresh bits feed
// those slots is decided by a RandomnessPlan — the paper's entire analysis is
// about which plans are sound. Latency: 3 clock cycles (one register layer
// per DOM level).
#pragma once

#include <string>
#include <vector>

#include "src/gadgets/bus.hpp"
#include "src/gadgets/dom.hpp"
#include "src/gadgets/randomness_plan.hpp"
#include "src/netlist/ir.hpp"

namespace sca::gadgets {

/// Handles to a built Kronecker delta instance.
struct KroneckerDelta {
  std::vector<netlist::SignalId> z;      ///< s shares of the delta bit
  std::vector<netlist::SignalId> fresh;  ///< the fresh mask inputs created
  std::vector<DomAnd> gates;             ///< G1..G7 in order
  std::size_t latency = 3;
};

/// Number of mask slots a Kronecker delta with `share_count` shares needs.
constexpr std::size_t kronecker_slot_count(std::size_t share_count) {
  return 7 * dom_mask_count(share_count);
}

/// Builds the Kronecker delta over the given input shares (each an 8-bit
/// bus; share i of the secret). Fresh mask bits are taken from
/// `fresh_external` when non-empty (must match plan.fresh_count()); otherwise
/// fresh primary inputs are created. Gates are scoped G1..G7 under `scope`
/// so leakage reports read like the paper's Fig. 3.
KroneckerDelta build_kronecker(
    netlist::Netlist& nl, const std::vector<Bus>& x_shares,
    const RandomnessPlan& plan, const std::string& scope = "kron",
    const std::vector<netlist::SignalId>& fresh_external = {});

}  // namespace sca::gadgets
