#include "src/gadgets/gf_circuits.hpp"

#include <array>

#include "src/aes/sbox.hpp"
#include "src/common/check.hpp"
#include "src/gf/gf256.hpp"
#include "src/gf/tower.hpp"

namespace sca::gadgets {

using netlist::Netlist;
using netlist::SignalId;

Bus build_gf256_mul(Netlist& nl, const Bus& a, const Bus& b) {
  common::require(a.size() == 8 && b.size() == 8,
                  "build_gf256_mul: operands must be 8 bits");
  // Partial products p_k = XOR_{i+j=k} a_i b_j for k = 0..14.
  std::array<std::vector<SignalId>, 15> partial;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      partial[i + j].push_back(nl.and_(a[i], b[j]));

  // Reduction: x^k mod the AES polynomial, k = 8..14, gives the byte each
  // overflow term folds into.
  std::array<std::uint8_t, 15> reduction{};
  for (std::size_t k = 8; k < 15; ++k) {
    unsigned v = 1u << k;
    for (int bit = 14; bit >= 8; --bit)
      if (v & (1u << bit)) v ^= gf::kAesPoly << (bit - 8);
    reduction[k] = static_cast<std::uint8_t>(v);
  }

  Bus out;
  out.reserve(8);
  for (std::size_t bit = 0; bit < 8; ++bit) {
    std::vector<SignalId> terms = partial[bit];
    for (std::size_t k = 8; k < 15; ++k)
      if ((reduction[k] >> bit) & 1u)
        terms.insert(terms.end(), partial[k].begin(), partial[k].end());
    out.push_back(xor_tree(nl, std::move(terms)));
  }
  return out;
}

namespace {

// Two- and four-bit sub-buses used by the tower structure. All formulas
// mirror src/gf/tower.cpp gate for gate.
using Bus2 = std::array<SignalId, 2>;
using Bus4 = std::array<SignalId, 4>;

Bus2 gf4_mul_c(Netlist& nl, const Bus2& a, const Bus2& b) {
  const SignalId hi =
      nl.xor_(nl.xor_(nl.and_(a[1], b[0]), nl.and_(a[0], b[1])),
              nl.and_(a[1], b[1]));
  const SignalId lo = nl.xor_(nl.and_(a[0], b[0]), nl.and_(a[1], b[1]));
  return {lo, hi};
}

Bus2 gf4_sq_c(Netlist& nl, const Bus2& a) {
  return {nl.xor_(a[0], a[1]), a[1]};
}

Bus2 gf4_mul_w_c(Netlist& nl, const Bus2& a) {
  return {a[1], nl.xor_(a[0], a[1])};
}

Bus2 gf4_xor_c(Netlist& nl, const Bus2& a, const Bus2& b) {
  return {nl.xor_(a[0], b[0]), nl.xor_(a[1], b[1])};
}

Bus2 lo2(const Bus4& a) { return {a[0], a[1]}; }
Bus2 hi2(const Bus4& a) { return {a[2], a[3]}; }
Bus4 join4(const Bus2& lo, const Bus2& hi) { return {lo[0], lo[1], hi[0], hi[1]}; }

Bus4 gf16_mul_c(Netlist& nl, const Bus4& a, const Bus4& b) {
  const Bus2 hh = gf4_mul_c(nl, hi2(a), hi2(b));
  const Bus2 hi = gf4_xor_c(
      nl, gf4_xor_c(nl, gf4_mul_c(nl, hi2(a), lo2(b)), gf4_mul_c(nl, lo2(a), hi2(b))),
      hh);
  const Bus2 lo =
      gf4_xor_c(nl, gf4_mul_c(nl, lo2(a), lo2(b)), gf4_mul_w_c(nl, hh));
  return join4(lo, hi);
}

Bus4 gf16_sq_c(Netlist& nl, const Bus4& a) {
  const Bus2 h = gf4_sq_c(nl, hi2(a));
  const Bus2 lo = gf4_xor_c(nl, gf4_sq_c(nl, lo2(a)), gf4_mul_w_c(nl, h));
  return join4(lo, h);
}

// Multiplication by lambda = w * x: hi = w (a1 + a0), lo = w^2 a1.
Bus4 gf16_mul_lambda_c(Netlist& nl, const Bus4& a) {
  const Bus2 hi = gf4_mul_w_c(nl, gf4_xor_c(nl, hi2(a), lo2(a)));
  const Bus2 lo = gf4_mul_w_c(nl, gf4_mul_w_c(nl, hi2(a)));
  return join4(lo, hi);
}

Bus4 gf16_xor_c(Netlist& nl, const Bus4& a, const Bus4& b) {
  return join4(gf4_xor_c(nl, lo2(a), lo2(b)), gf4_xor_c(nl, hi2(a), hi2(b)));
}

Bus4 gf16_inv_c(Netlist& nl, const Bus4& a) {
  // norm = w * hi^2 + lo^2 + lo*hi over GF(2^2); inverse in GF(2^2) is
  // squaring.
  const Bus2 norm = gf4_xor_c(
      nl,
      gf4_xor_c(nl, gf4_mul_w_c(nl, gf4_sq_c(nl, hi2(a))), gf4_sq_c(nl, lo2(a))),
      gf4_mul_c(nl, lo2(a), hi2(a)));
  const Bus2 ninv = gf4_sq_c(nl, norm);
  const Bus2 hi = gf4_mul_c(nl, hi2(a), ninv);
  const Bus2 lo = gf4_mul_c(nl, gf4_xor_c(nl, lo2(a), hi2(a)), ninv);
  return join4(lo, hi);
}

}  // namespace

Bus build_gf256_inv(Netlist& nl, const Bus& a) {
  common::require(a.size() == 8, "build_gf256_inv: operand must be 8 bits");
  const gf::TowerContext& ctx = gf::TowerContext::instance();
  const Bus t = apply_matrix(nl, ctx.to_tower, a);

  const Bus4 lo = {t[0], t[1], t[2], t[3]};
  const Bus4 hi = {t[4], t[5], t[6], t[7]};
  // norm = lambda * hi^2 + lo^2 + lo * hi over GF(2^4).
  const Bus4 norm = gf16_xor_c(
      nl,
      gf16_xor_c(nl, gf16_mul_lambda_c(nl, gf16_sq_c(nl, hi)),
                 gf16_sq_c(nl, lo)),
      gf16_mul_c(nl, lo, hi));
  const Bus4 ninv = gf16_inv_c(nl, norm);
  const Bus4 out_hi = gf16_mul_c(nl, hi, ninv);
  const Bus4 out_lo = gf16_mul_c(nl, gf16_xor_c(nl, lo, hi), ninv);

  const Bus tower_out = {out_lo[0], out_lo[1], out_lo[2], out_lo[3],
                         out_hi[0], out_hi[1], out_hi[2], out_hi[3]};
  return apply_matrix(nl, ctx.from_tower, tower_out);
}

Bus build_sbox_affine(Netlist& nl, const Bus& a, bool with_constant) {
  common::require(a.size() == 8, "build_sbox_affine: operand must be 8 bits");
  Bus out = apply_matrix(nl, aes::sbox_affine_matrix(), a);
  if (with_constant) out = xor_const(nl, out, aes::kSboxAffineConstant);
  return out;
}

// --- public bus wrappers around the tower helpers ------------------------------

namespace {

Bus2 as_bus2(const Bus& a) {
  common::require(a.size() == 2, "tower circuit: operand must be 2 bits");
  return {a[0], a[1]};
}

Bus4 as_bus4(const Bus& a) {
  common::require(a.size() == 4, "tower circuit: operand must be 4 bits");
  return {a[0], a[1], a[2], a[3]};
}

Bus from_bus2(const Bus2& a) { return {a[0], a[1]}; }
Bus from_bus4(const Bus4& a) { return {a[0], a[1], a[2], a[3]}; }

}  // namespace

Bus build_gf4_mul(Netlist& nl, const Bus& a, const Bus& b) {
  return from_bus2(gf4_mul_c(nl, as_bus2(a), as_bus2(b)));
}

Bus build_gf4_sq(Netlist& nl, const Bus& a) {
  return from_bus2(gf4_sq_c(nl, as_bus2(a)));
}

Bus build_gf4_mul_w(Netlist& nl, const Bus& a) {
  return from_bus2(gf4_mul_w_c(nl, as_bus2(a)));
}

Bus build_gf16_mul(Netlist& nl, const Bus& a, const Bus& b) {
  return from_bus4(gf16_mul_c(nl, as_bus4(a), as_bus4(b)));
}

Bus build_gf16_sq(Netlist& nl, const Bus& a) {
  return from_bus4(gf16_sq_c(nl, as_bus4(a)));
}

Bus build_gf16_mul_lambda(Netlist& nl, const Bus& a) {
  return from_bus4(gf16_mul_lambda_c(nl, as_bus4(a)));
}

Bus build_aes_to_tower(Netlist& nl, const Bus& a) {
  return apply_matrix(nl, gf::TowerContext::instance().to_tower, a);
}

Bus build_tower_to_aes(Netlist& nl, const Bus& a) {
  return apply_matrix(nl, gf::TowerContext::instance().from_tower, a);
}

}  // namespace sca::gadgets
