// Second-order (3-share) multiplicative-masked AES Sbox — the design family
// of the paper's Section IV closing experiment (E9):
//
//   cycle 1-3  second-order Kronecker delta (21 mask slots, plan-driven)
//              input shares delayed in parallel; X' = X ^ delta(X)
//   cycle 4-5  second-order B2M (two multiplicative blindings R1, R2)
//              local GF(2^8) inversion of P = X' R1 R2 (combinational)
//   cycle 6-8  second-order M2B (Boolean masks S1, S2)
//              output fix-up  B ^ delta(X), affine transformation
//
// Latency: 8 cycles, fully pipelined. Randomness per cycle: the Kronecker
// plan's fresh bits + two non-zero bytes (R1, R2) + two uniform bytes
// (S1, S2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/gadgets/bus.hpp"
#include "src/gadgets/kronecker.hpp"
#include "src/gadgets/randomness_plan.hpp"
#include "src/netlist/ir.hpp"

namespace sca::gadgets {

struct MaskedSbox2Options {
  /// Randomness plan for the second-order Kronecker (21 slots).
  RandomnessPlan kron_plan = RandomnessPlan::kron2_full_fresh();
  bool include_affine = true;
};

struct MaskedSbox2 {
  std::vector<Bus> in_shares;   ///< three 8-bit Boolean input share buses
  Bus rand_r1;                  ///< non-zero multiplicative mask
  Bus rand_r2;                  ///< non-zero multiplicative mask
  Bus rand_s1;                  ///< uniform Boolean mask
  Bus rand_s2;                  ///< uniform Boolean mask
  std::vector<netlist::SignalId> kron_fresh;
  std::vector<Bus> out_shares;  ///< three 8-bit Boolean output share buses
  std::size_t latency = 8;
};

/// Builds the standalone second-order masked Sbox, creating all primary
/// inputs (shares under secret group `secret`) and outputs.
MaskedSbox2 build_masked_sbox2(netlist::Netlist& nl,
                               const MaskedSbox2Options& options,
                               const std::string& scope = "sbox2",
                               std::uint32_t secret = 0);

}  // namespace sca::gadgets
