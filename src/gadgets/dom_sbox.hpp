// Boolean-masked AES Sbox in the DOM tradition (Gross et al., TIS 2016) —
// the state-of-the-art baseline the CHES 2018 multiplicative design is
// compared against in the paper's introduction.
//
// Structure (Canright tower decomposition, one DOM multiplier per nonlinear
// step, squarings and scalings share-local because they are GF(2)-linear):
//
//   stage 0  basis change to GF(((2^2)^2)^2) + register, per share (1 cycle)
//   stage 1  nu    = lambda*hi^2 + lo^2 + DOM16(lo, hi)            (1 cycle)
//   stage 2  nu4   = w*n1^2 + n0^2 + DOM4(n0, n1)                  (1 cycle)
//            inv4  = nu4^2                                     (combinational)
//   stage 3  ninv  = ( DOM4(n1, inv4) : DOM4(n0 + n1, inv4) )      (1 cycle)
//   stage 4  out   = ( DOM16(hi, ninv) : DOM16(lo + hi, ninv) )    (1 cycle)
//            basis change back + affine, per share             (combinational)
//
// The stage-0 register is security-critical (see the comment in the
// builder). Cost at first order: 3 GF(2^4) + 3 GF(2^2) DOM multipliers =
// 18+4 fresh mask bits per cycle and 6 cycles of latency — against the
// multiplicative design's 7 (unoptimized Kronecker) + 16 (conversion masks
// R, R') bits and 5 cycles. bench_baseline_compare prints the comparison.
#pragma once

#include <string>
#include <vector>

#include "src/gadgets/bus.hpp"
#include "src/gadgets/dom.hpp"
#include "src/netlist/ir.hpp"

namespace sca::gadgets {

struct DomSboxOptions {
  std::size_t share_count = 2;
  bool include_affine = true;
};

/// Fresh mask bits one DOM Sbox consumes per cycle: 3 multipliers of 4 bits
/// + 3 of 2 bits, each needing C(s,2) mask elements, plus the stage-3 ring
/// refresh of the two 2-bit norm halves (see the builder for why that
/// refresh is security-critical).
constexpr std::size_t dom_sbox_mask_bits(std::size_t share_count) {
  return (3 * 4 + 3 * 2) * dom_mask_count(share_count) +
         2 * 2 * (share_count == 2 ? 1 : share_count);
}

struct DomSbox {
  std::vector<Bus> in_shares;   ///< 8-bit Boolean input share buses
  std::vector<netlist::SignalId> masks;  ///< fresh mask bits, in slot order
  std::vector<Bus> out_shares;  ///< 8-bit Boolean output share buses
  std::size_t latency = 6;
};

/// Builds the DOM Sbox as a sub-circuit over existing share buses and mask
/// bits (dom_sbox_mask_bits(s) of them).
DomSbox build_dom_sbox_core(netlist::Netlist& nl,
                            const std::vector<Bus>& in_shares,
                            const std::vector<netlist::SignalId>& masks,
                            const DomSboxOptions& options,
                            const std::string& scope = "domsbox");

/// Standalone variant creating primary inputs (shares under secret group
/// `secret`, kRandom mask bits) and outputs.
DomSbox build_dom_sbox(netlist::Netlist& nl, const DomSboxOptions& options,
                       const std::string& scope = "domsbox",
                       std::uint32_t secret = 0);

}  // namespace sca::gadgets
