// Domain-Oriented Masking (DOM-indep) AND gadget, for any number of shares.
//
// For s = d+1 shares, the gadget computes shares of z = x & y as
//
//   z^i = [x^i y^i]  XOR  over j != i of  [x^i y^j ^ r_{ij}]
//
// where [.] is a register and r_{ij} = r_{ji} is one fresh mask bit per
// unordered share-domain pair (Gross et al., TIS 2016). Following the design
// evaluated in the paper (Fig. 1c / Eq. (7)), the *inner-domain* product is
// registered as well — this pipelines the gadget and is exactly the register
// whose content a glitch-extended probe on the output XOR observes (the
// a1/a2/d1/d2 signals of Fig. 3).
#pragma once

#include <string>
#include <vector>

#include "src/netlist/ir.hpp"

namespace sca::gadgets {

/// Handles to the pieces of one DOM-AND instance, for wiring and reporting.
struct DomAnd {
  std::vector<netlist::SignalId> out;         ///< s output shares
  std::vector<netlist::SignalId> inner_regs;  ///< s registered inner products
  /// cross_regs[i] = registered terms [x^i y^j ^ r_ij] for j != i, ascending j.
  std::vector<std::vector<netlist::SignalId>> cross_regs;
};

/// Number of fresh-mask slots a DOM-AND with `share_count` shares consumes:
/// one per unordered domain pair.
constexpr std::size_t dom_mask_count(std::size_t share_count) {
  return share_count * (share_count - 1) / 2;
}

/// Index of mask r_{ij} (i < j) within the gadget's mask vector.
std::size_t dom_mask_index(std::size_t i, std::size_t j, std::size_t share_count);

/// Builds one DOM-AND. `x` and `y` are the share vectors (equal length s >= 2),
/// `masks` must contain dom_mask_count(s) signals. Signals inside the gadget
/// are named under the scope `name` ("inner0", "cross01", "out0", ...).
/// `register_inner` controls whether inner-domain products are registered
/// (the paper's design does; plain DOM does not).
DomAnd build_dom_and(netlist::Netlist& nl,
                     const std::vector<netlist::SignalId>& x,
                     const std::vector<netlist::SignalId>& y,
                     const std::vector<netlist::SignalId>& masks,
                     const std::string& name, bool register_inner = true);

}  // namespace sca::gadgets
