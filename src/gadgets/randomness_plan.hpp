// Randomness plans: how a gadget's fresh-mask *slots* are filled from actual
// fresh random bits.
//
// This is the object the whole paper is about. The first-order Kronecker
// delta has 7 mask slots (one per DOM-AND gate, named r1..r7 after Fig. 3);
// the second-order one has 21 (three per gate). A plan assigns each slot an
// XOR combination of fresh bits, optionally behind a register — e.g. the
// CHES 2018 optimization (Eq. (6)) is
//     r1 = r3 = f0,  r2 = r4 = f1,  r5 = f2,  r6 = [f2 ^ f1],  r7 = f0
// using only 3 fresh bits, and the paper's repaired plan (Eq. (9)) is
//     r1..r4 = f0..f3,  r5 = f3,  r6 = f1,  r7 = f2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/netlist/ir.hpp"

namespace sca::gadgets {

/// One mask slot: the XOR of the fresh bits selected by `fresh_mask`
/// (bit k set = fresh bit f_k participates), registered first if `registered`
/// (the paper's Eq. (6) registers its XOR-combined slot: r6 = [r5 ^ r2]).
struct MaskSlotExpr {
  std::uint64_t fresh_mask = 0;
  bool registered = false;

  bool operator==(const MaskSlotExpr&) const = default;
};

class RandomnessPlan {
 public:
  RandomnessPlan(std::string name, std::size_t fresh_count,
                 std::vector<MaskSlotExpr> slots);

  const std::string& name() const { return name_; }
  std::size_t fresh_count() const { return fresh_count_; }
  std::size_t slot_count() const { return slots_.size(); }
  const std::vector<MaskSlotExpr>& slots() const { return slots_; }

  /// Human-readable assignment, e.g. "r1=f0 r2=f1 r3=f0 ...".
  std::string describe() const;

  /// Parses the describe() syntax back into a plan: slots are listed in
  /// order as "rK=<expr>" where <expr> is "fN", "fN^fM^..." or a registered
  /// combination "[fN^fM]". The fresh count is the highest bit used + 1.
  /// Throws sca::common::Error on malformed input.
  static RandomnessPlan parse(const std::string& name,
                              const std::string& description);

  /// Materializes the slots as signals: single-bit unregistered slots pass
  /// the fresh signal through; combinations become XOR trees; registered
  /// slots get a register. `fresh` must contain fresh_count() signals.
  std::vector<netlist::SignalId> materialize(
      netlist::Netlist& nl, const std::vector<netlist::SignalId>& fresh) const;

  // --- first-order Kronecker plans (7 slots, r1..r7 = slots 0..6) -------------

  /// All 7 masks fresh and independent (no optimization).
  static RandomnessPlan kron1_full_fresh();

  /// The CHES 2018 optimization, Eq. (6): 3 fresh bits. The paper shows this
  /// leaks first-order under glitch-extended probing.
  static RandomnessPlan kron1_demeyer_eq6();

  /// Only the single reuse r1 = r3 (6 fresh bits) — the minimal leaking case
  /// analyzed around Eq. (8).
  static RandomnessPlan kron1_single_reuse_r1r3();

  /// First-layer pair reuse r1 = r3 and r2 = r4 (5 fresh bits), the
  /// "exacerbated" case of Section III.
  static RandomnessPlan kron1_pair_reuse();

  /// The paper's repaired optimization, Eq. (9): r1..r4 fresh, r5 = r4,
  /// r6 = r2, r7 = r3 (4 fresh bits). Secure under glitch-extended probing,
  /// insecure once transitions are considered.
  static RandomnessPlan kron1_proposed_eq9();

  /// The counterexample of Section IV: r5 = r6 (shared), everything else
  /// fresh — leaks even under the glitch-only model.
  static RandomnessPlan kron1_r5_equals_r6();

  /// The transition-secure family found by the paper's search: r1..r6 fresh,
  /// r7 = r_i for i in {1, 2, 3, 4} (6 fresh bits).
  static RandomnessPlan kron1_transition_secure(int reused_first_layer_index);

  // --- second-order Kronecker plans (21 slots, 3 per gate) ---------------------

  /// All 21 masks fresh.
  static RandomnessPlan kron2_full_fresh();

  /// A naive 21 -> 13 slot-sharing reconstruction of the CHES 2018
  /// second-order optimization (first layer fresh, upper gates recycle
  /// first-layer masks, one extra fresh bit). Our evaluation shows it is
  /// secure at first order under the glitch model but *leaks at second
  /// order* — kept as the cautionary negative control of bench_e9 (the
  /// paper's "use evaluation tools" message). The published wiring of [12]
  /// is not printed in the paper under reproduction; see EXPERIMENTS.md.
  static RandomnessPlan kron2_naive13();

  /// Our reduced-randomness second-order plan: first and second layers
  /// fresh (f0..f17); the top gate draws each slot from a *registered XOR*
  /// of two first-layer masks taken from different gates — the second-order
  /// generalization of Eq. (9)'s repair (combine-and-register instead of
  /// raw reuse). 21 -> 18 fresh bits. Proven second-order secure under
  /// glitch+transition probing by the order-2 lint (tests/lint2_test.cpp)
  /// and confirmed by the sampling campaign at 200k simulations.
  static RandomnessPlan kron2_reduced();

  /// The *plausible-looking but broken* 18-bit reduction this repo shipped
  /// first: top-gate slots reuse one raw first-layer mask each (G1, G2,
  /// G3), the direct second-order transcription of the paper's
  /// transition-secure family. A pair probe on a G5-layer wire and z0
  /// cancels the reused pad against the first-layer register that carries
  /// its sibling use, then conditions on the raw inner-domain products —
  /// the order-2 campaign confirms the leak (-log10 p > 60 at 200k
  /// simulations, six probe pairs) exactly where the order-2 lint flags
  /// it. Kept as the known-leaky calibration design of the order-2
  /// agreement suite and bench_e9's second cautionary tale.
  static RandomnessPlan kron2_reduced_leaky();

 private:
  std::string name_;
  std::size_t fresh_count_;
  std::vector<MaskSlotExpr> slots_;
};

}  // namespace sca::gadgets
