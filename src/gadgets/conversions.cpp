#include "src/gadgets/conversions.hpp"

#include "src/gadgets/gf_circuits.hpp"

namespace sca::gadgets {

using netlist::Netlist;

B2MResult build_b2m(Netlist& nl, const Bus& b0, const Bus& b1, const Bus& r,
                    const std::string& scope) {
  nl.push_scope(scope);
  B2MResult result;
  // Each share is multiplied by the mask *before* the register; the XOR of
  // the two registered products never exposes X unmasked because R blinds it
  // multiplicatively (for X != 0 — hence the Kronecker delta upstream).
  const Bus prod0 = reg_bus(nl, build_gf256_mul(nl, b0, r));
  name_bus(nl, prod0, "p1a");
  const Bus prod1 = reg_bus(nl, build_gf256_mul(nl, b1, r));
  name_bus(nl, prod1, "p1b");
  result.p1 = xor_bus(nl, prod0, prod1);
  name_bus(nl, result.p1, "p1");
  result.p0 = reg_bus(nl, r);
  name_bus(nl, result.p0, "p0");
  nl.pop_scope();
  return result;
}

M2BResult build_m2b(Netlist& nl, const Bus& q0, const Bus& q1, const Bus& rp,
                    const std::string& scope) {
  nl.push_scope(scope);
  M2BResult result;
  const Bus q0_reg = reg_bus(nl, q0);
  name_bus(nl, q0_reg, "q0_reg");
  const Bus rp_reg = reg_bus(nl, rp);
  name_bus(nl, rp_reg, "rp_reg");
  const Bus sum_reg = reg_bus(nl, xor_bus(nl, rp, q1));
  name_bus(nl, sum_reg, "rq1_reg");
  result.b0 = build_gf256_mul(nl, rp_reg, q0_reg);
  name_bus(nl, result.b0, "b0");
  result.b1 = build_gf256_mul(nl, sum_reg, q0_reg);
  name_bus(nl, result.b1, "b1");
  nl.pop_scope();
  return result;
}

}  // namespace sca::gadgets
