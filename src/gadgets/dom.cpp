#include "src/gadgets/dom.hpp"

#include "src/common/check.hpp"

namespace sca::gadgets {

using netlist::Netlist;
using netlist::SignalId;

std::size_t dom_mask_index(std::size_t i, std::size_t j, std::size_t share_count) {
  SCA_ASSERT(i < j && j < share_count, "dom_mask_index: need i < j < s");
  // Pairs ordered (0,1), (0,2), ..., (0,s-1), (1,2), ...
  return i * share_count - i * (i + 1) / 2 + (j - i - 1);
}

DomAnd build_dom_and(Netlist& nl, const std::vector<SignalId>& x,
                     const std::vector<SignalId>& y,
                     const std::vector<SignalId>& masks,
                     const std::string& name, bool register_inner) {
  const std::size_t s = x.size();
  common::require(s >= 2, "build_dom_and: need at least 2 shares");
  common::require(y.size() == s, "build_dom_and: share count mismatch");
  common::require(masks.size() == dom_mask_count(s),
                  "build_dom_and: wrong mask count");

  nl.push_scope(name);
  DomAnd gadget;
  gadget.inner_regs.resize(s);
  gadget.cross_regs.resize(s);

  for (std::size_t i = 0; i < s; ++i) {
    // Inner-domain term x^i y^i.
    SignalId inner = nl.and_(x[i], y[i]);
    nl.name_signal(inner, "inner" + std::to_string(i));
    if (register_inner) {
      inner = nl.reg(inner);
      nl.name_signal(inner, "inner" + std::to_string(i) + "_reg");
    }
    gadget.inner_regs[i] = inner;

    // Cross-domain terms [x^i y^j ^ r_ij], always registered (this register
    // is what makes DOM glitch-secure).
    SignalId acc = inner;
    for (std::size_t j = 0; j < s; ++j) {
      if (j == i) continue;
      const std::size_t mi = dom_mask_index(std::min(i, j), std::max(i, j), s);
      const SignalId cross_prod = nl.and_(x[i], y[j]);
      nl.name_signal(cross_prod,
                     "crossprod" + std::to_string(i) + std::to_string(j));
      const SignalId cross_raw = nl.xor_(cross_prod, masks[mi]);
      nl.name_signal(cross_raw, "cross" + std::to_string(i) + std::to_string(j));
      const SignalId cross = nl.reg(cross_raw);
      nl.name_signal(cross, "cross" + std::to_string(i) + std::to_string(j) +
                                "_reg");
      gadget.cross_regs[i].push_back(cross);
      acc = nl.xor_(acc, cross);
      nl.name_signal(acc, "sum" + std::to_string(i) + std::to_string(j));
    }
    gadget.out.push_back(acc);
    nl.name_signal(acc, "out" + std::to_string(i));
  }

  nl.pop_scope();
  return gadget;
}

}  // namespace sca::gadgets
