// Masking-scheme conversions of the multiplicative-masked Sbox (Fig. 2):
//
//   Boolean -> multiplicative (B2M), Section II-C of the paper:
//     P0 = [R],   P1 = [B0 x R] ^ [B1 x R]        (R random from GF(256)*)
//   so that X = B0 ^ B1 = inv(P0) x P1.
//
//   Multiplicative -> Boolean (M2B):
//     B'0 = [R'] x [Q0],   B'1 = [R' ^ Q1] x [Q0]  (R' random from GF(256))
//   so that B'0 ^ B'1 = Q0 x Q1.
//
// Registers ([.]) make each conversion one pipeline stage.
#pragma once

#include <string>

#include "src/gadgets/bus.hpp"
#include "src/netlist/ir.hpp"

namespace sca::gadgets {

struct B2MResult {
  Bus p0;  ///< first multiplicative share (the registered mask R)
  Bus p1;  ///< second multiplicative share (X * R)
  std::size_t latency = 1;
};

/// Builds the B2M conversion. `r` must be fed non-zero values (GF(256)*)
/// for functional correctness — the harness enforces this.
B2MResult build_b2m(netlist::Netlist& nl, const Bus& b0, const Bus& b1,
                    const Bus& r, const std::string& scope = "b2m");

struct M2BResult {
  Bus b0;  ///< first Boolean share
  Bus b1;  ///< second Boolean share
  std::size_t latency = 1;
};

/// Builds the M2B conversion of product-form multiplicative shares
/// (X = Q0 x Q1). `rp` is a full-range random byte.
M2BResult build_m2b(netlist::Netlist& nl, const Bus& q0, const Bus& q1,
                    const Bus& rp, const std::string& scope = "m2b");

}  // namespace sca::gadgets
