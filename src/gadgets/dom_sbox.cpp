#include "src/gadgets/dom_sbox.hpp"

#include "src/common/check.hpp"
#include "src/gadgets/dom_gf.hpp"
#include "src/gadgets/gf_circuits.hpp"

namespace sca::gadgets {

using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

namespace {

Bus slice(const Bus& bus, std::size_t begin, std::size_t count) {
  return Bus(bus.begin() + static_cast<std::ptrdiff_t>(begin),
             bus.begin() + static_cast<std::ptrdiff_t>(begin + count));
}

Bus concat(const Bus& lo, const Bus& hi) {
  Bus out = lo;
  out.insert(out.end(), hi.begin(), hi.end());
  return out;
}

// Groups a flat list of mask bits into per-pair buses of `width` bits for
// one DOM multiplier, consuming them from `cursor`.
std::vector<Bus> take_masks(const std::vector<SignalId>& masks,
                            std::size_t& cursor, std::size_t width,
                            std::size_t pair_count) {
  std::vector<Bus> out;
  for (std::size_t p = 0; p < pair_count; ++p) {
    Bus bus;
    for (std::size_t b = 0; b < width; ++b) bus.push_back(masks.at(cursor++));
    out.push_back(std::move(bus));
  }
  return out;
}

}  // namespace

DomSbox build_dom_sbox_core(Netlist& nl, const std::vector<Bus>& in_shares,
                            const std::vector<SignalId>& masks,
                            const DomSboxOptions& options,
                            const std::string& scope) {
  const std::size_t s = options.share_count;
  common::require(s >= 2, "build_dom_sbox_core: need at least 2 shares");
  common::require(in_shares.size() == s,
                  "build_dom_sbox_core: share count mismatch");
  common::require(masks.size() == dom_sbox_mask_bits(s),
                  "build_dom_sbox_core: wrong mask bit count");
  const std::size_t pairs = dom_mask_count(s);

  nl.push_scope(scope);
  DomSbox sbox;
  sbox.in_shares = in_shares;
  sbox.masks = masks;

  // Stage 0: basis change, split into tower halves, REGISTERED per share.
  // The register layer is load-bearing for security, not just timing: a
  // glitch-extended probe on a stage-1 multiplier gate reaches back to the
  // nearest stable signals, and without this layer that is the *entire*
  // 8-bit cone of both input shares (the basis change mixes all bits) — a
  // complete unmasked secret. With it, the probe sees one 4-bit half per
  // share domain, which is uniform. This is why DOM Sboxes register their
  // operands after the input linear map.
  std::vector<Bus> hi(s), lo(s);
  for (std::size_t i = 0; i < s; ++i) {
    const Bus tower = build_aes_to_tower(nl, in_shares[i]);
    lo[i] = reg_bus(nl, slice(tower, 0, 4));
    hi[i] = reg_bus(nl, slice(tower, 4, 4));
    name_bus(nl, lo[i], "lo" + std::to_string(i) + "_reg");
    name_bus(nl, hi[i], "hi" + std::to_string(i) + "_reg");
  }

  std::size_t cursor = 0;

  // Stage 1: nu = lambda*hi^2 + lo^2 + lo*hi.
  const DomGfMul mult_lo_hi = build_dom_gf_mul(
      nl, GfKind::kGf16Tower, lo, hi, take_masks(masks, cursor, 4, pairs),
      "mul_nu");
  // nu is re-registered as a collapsed share before feeding the next
  // multiplier: a GF(4) cross product n0^i & n1^j would otherwise extend
  // through the XOR trees into stage-1 registers of *both* domains, where
  // the two per-share linear terms XOR to the unmasked lambda*hi^2 + lo^2.
  // (Found by the exact verifier.)
  std::vector<Bus> nu(s);
  for (std::size_t i = 0; i < s; ++i) {
    const Bus lin = xor_bus(nl, build_gf16_mul_lambda(nl, build_gf16_sq(nl, hi[i])),
                            build_gf16_sq(nl, lo[i]));
    nu[i] = reg_bus(nl, xor_bus(nl, reg_bus(nl, lin), mult_lo_hi.out[i]));
    name_bus(nl, nu[i], "nu" + std::to_string(i) + "_reg");
  }

  // Stage 2: nu4 = w*n1^2 + n0^2 + n0*n1 over GF(2^2); inv4 = nu4^2.
  std::vector<Bus> n0(s), n1(s);
  for (std::size_t i = 0; i < s; ++i) {
    n0[i] = slice(nu[i], 0, 2);
    n1[i] = slice(nu[i], 2, 2);
  }
  const DomGfMul mult_n0_n1 = build_dom_gf_mul(
      nl, GfKind::kGf4Tower, n0, n1, take_masks(masks, cursor, 2, pairs),
      "mul_nu4");
  std::vector<Bus> inv4(s);
  for (std::size_t i = 0; i < s; ++i) {
    const Bus lin = xor_bus(nl, build_gf4_mul_w(nl, build_gf4_sq(nl, n1[i])),
                            build_gf4_sq(nl, n0[i]));
    const Bus nu4 = xor_bus(nl, reg_bus(nl, lin), mult_n0_n1.out[i]);
    inv4[i] = build_gf4_sq(nl, nu4);  // inversion in GF(4) is squaring
    name_bus(nl, inv4[i], "inv4_" + std::to_string(i) + "_");
  }

  // Stage 3: ninv halves. n0/n1 arrive from stage 2 (cycle 2) and must wait
  // one cycle for inv4 (cycle 3) — and they must be REFRESHED, not merely
  // delayed: the nu sharing already feeds the stage-2 multiplier, so a probe
  // on a stage-3 gate would otherwise combine share-0 information from
  // inv4's register cone with share-1 information from the delayed nu and
  // reconstruct linear functions of the unmasked norm. (Found by the exact
  // verifier — TV distance 1.0 without the refresh.)
  const std::size_t refreshes = refresh_mask_count(s);
  std::vector<Bus> n0_d, n1_d;
  {
    std::vector<Bus> m0 = take_masks(masks, cursor, 2, refreshes);
    std::vector<Bus> m1 = take_masks(masks, cursor, 2, refreshes);
    n0_d = build_ring_refresh(nl, n0, m0, "refresh_n0");
    n1_d = build_ring_refresh(nl, n1, m1, "refresh_n1");
  }
  std::vector<Bus> n01_d(s);
  for (std::size_t i = 0; i < s; ++i)
    n01_d[i] = xor_bus(nl, n0_d[i], n1_d[i]);
  const DomGfMul mult_ninv_hi = build_dom_gf_mul(
      nl, GfKind::kGf4Tower, n1_d, inv4, take_masks(masks, cursor, 2, pairs),
      "mul_ninv_hi");
  const DomGfMul mult_ninv_lo = build_dom_gf_mul(
      nl, GfKind::kGf4Tower, n01_d, inv4, take_masks(masks, cursor, 2, pairs),
      "mul_ninv_lo");
  std::vector<Bus> ninv(s);
  for (std::size_t i = 0; i < s; ++i) {
    ninv[i] = concat(mult_ninv_lo.out[i], mult_ninv_hi.out[i]);
    name_bus(nl, ninv[i], "ninv" + std::to_string(i) + "_");
  }

  // Stage 4: output halves. hi/lo (registered at cycle 1) wait four more
  // cycles for ninv (cycle 5).
  std::vector<Bus> hi_d(s), lohi_d(s);
  for (std::size_t i = 0; i < s; ++i) {
    hi_d[i] = delay_bus(nl, hi[i], 4);
    lohi_d[i] = delay_bus(nl, xor_bus(nl, lo[i], hi[i]), 4);
  }
  const DomGfMul mult_out_hi = build_dom_gf_mul(
      nl, GfKind::kGf16Tower, hi_d, ninv, take_masks(masks, cursor, 4, pairs),
      "mul_out_hi");
  const DomGfMul mult_out_lo = build_dom_gf_mul(
      nl, GfKind::kGf16Tower, lohi_d, ninv, take_masks(masks, cursor, 4, pairs),
      "mul_out_lo");
  SCA_ASSERT(cursor == masks.size(), "dom sbox: mask accounting mismatch");

  for (std::size_t i = 0; i < s; ++i) {
    Bus out = build_tower_to_aes(
        nl, concat(mult_out_lo.out[i], mult_out_hi.out[i]));
    if (options.include_affine)
      out = build_sbox_affine(nl, out, /*with_constant=*/i == 0);
    name_bus(nl, out, "s" + std::to_string(i) + "_");
    sbox.out_shares.push_back(std::move(out));
  }

  nl.pop_scope();
  return sbox;
}

DomSbox build_dom_sbox(Netlist& nl, const DomSboxOptions& options,
                       const std::string& scope, std::uint32_t secret) {
  nl.push_scope(scope);
  std::vector<Bus> in_shares;
  for (std::size_t i = 0; i < options.share_count; ++i)
    in_shares.push_back(make_input_bus(nl, 8, InputRole::kShare,
                                       "b" + std::to_string(i) + "_", secret,
                                       static_cast<std::uint32_t>(i)));
  std::vector<SignalId> masks;
  for (std::size_t k = 0; k < dom_sbox_mask_bits(options.share_count); ++k)
    masks.push_back(nl.add_input(InputRole::kRandom, "m" + std::to_string(k)));
  nl.pop_scope();

  DomSbox sbox = build_dom_sbox_core(nl, in_shares, masks, options, scope);
  for (std::size_t i = 0; i < sbox.out_shares.size(); ++i)
    for (std::size_t b = 0; b < 8; ++b)
      nl.add_output("s" + std::to_string(i) + "_" + std::to_string(b),
                    sbox.out_shares[i][b]);
  return sbox;
}

}  // namespace sca::gadgets
