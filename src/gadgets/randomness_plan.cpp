#include "src/gadgets/randomness_plan.hpp"

#include <cctype>
#include <sstream>

#include "src/common/bitops.hpp"
#include "src/common/check.hpp"
#include "src/gadgets/bus.hpp"

namespace sca::gadgets {

using common::require;
using netlist::Netlist;
using netlist::SignalId;

RandomnessPlan::RandomnessPlan(std::string name, std::size_t fresh_count,
                               std::vector<MaskSlotExpr> slots)
    : name_(std::move(name)), fresh_count_(fresh_count), slots_(std::move(slots)) {
  require(fresh_count_ <= 64, "RandomnessPlan: at most 64 fresh bits");
  const std::uint64_t valid =
      fresh_count_ == 64 ? ~std::uint64_t{0}
                         : ((std::uint64_t{1} << fresh_count_) - 1);
  for (const MaskSlotExpr& slot : slots_) {
    require(slot.fresh_mask != 0, "RandomnessPlan: slot uses no fresh bit");
    require((slot.fresh_mask & ~valid) == 0,
            "RandomnessPlan: slot references out-of-range fresh bit");
  }
}

std::string RandomnessPlan::describe() const {
  std::ostringstream os;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (s) os << ' ';
    os << 'r' << (s + 1) << '=';
    if (slots_[s].registered) os << '[';
    bool first = true;
    for (unsigned k = 0; k < 64; ++k) {
      if ((slots_[s].fresh_mask >> k) & 1u) {
        if (!first) os << '^';
        os << 'f' << k;
        first = false;
      }
    }
    if (slots_[s].registered) os << ']';
  }
  return os.str();
}

std::vector<SignalId> RandomnessPlan::materialize(
    Netlist& nl, const std::vector<SignalId>& fresh) const {
  require(fresh.size() == fresh_count_,
          "RandomnessPlan::materialize: fresh signal count mismatch");
  std::vector<SignalId> out;
  out.reserve(slots_.size());
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const MaskSlotExpr& slot = slots_[s];
    std::vector<SignalId> terms;
    for (unsigned k = 0; k < 64; ++k)
      if ((slot.fresh_mask >> k) & 1u) terms.push_back(fresh[k]);
    SignalId sig = terms.size() == 1 ? terms[0] : xor_tree(nl, std::move(terms));
    if (slot.registered) sig = nl.reg(sig);
    nl.name_signal(sig, "r" + std::to_string(s + 1));
    out.push_back(sig);
  }
  return out;
}

RandomnessPlan RandomnessPlan::parse(const std::string& name,
                                     const std::string& description) {
  std::istringstream is(description);
  std::vector<MaskSlotExpr> slots;
  std::string token;
  std::size_t expected_slot = 1;
  unsigned max_bit = 0;
  while (is >> token) {
    const auto eq = token.find('=');
    require(eq != std::string::npos && token.size() > eq + 1 && token[0] == 'r',
            "RandomnessPlan::parse: expected rK=<expr>, got '" + token + "'");
    std::size_t slot_number = 0;
    try {
      slot_number = std::stoul(token.substr(1, eq - 1));
    } catch (const std::exception&) {
      throw common::Error("RandomnessPlan::parse: bad slot index in '" + token +
                          "'");
    }
    require(slot_number >= expected_slot,
            "RandomnessPlan::parse: duplicate slot r" +
                std::to_string(slot_number));
    require(slot_number == expected_slot,
            "RandomnessPlan::parse: slots must be listed in order (r" +
                std::to_string(expected_slot) + " expected)");
    ++expected_slot;

    std::string expr = token.substr(eq + 1);
    MaskSlotExpr slot;
    if (!expr.empty() && expr.front() == '[') {
      require(expr.size() >= 2 && expr.back() == ']',
              "RandomnessPlan::parse: unterminated '[' in '" + token + "'");
      slot.registered = true;
      expr = expr.substr(1, expr.size() - 2);
    }
    std::size_t pos = 0;
    while (pos < expr.size()) {
      require(expr[pos] == 'f',
              "RandomnessPlan::parse: expected fN in '" + token + "'");
      std::size_t digits = 0;
      unsigned bit = 0;
      while (pos + 1 + digits < expr.size() &&
             std::isdigit(static_cast<unsigned char>(expr[pos + 1 + digits]))) {
        bit = bit * 10 + static_cast<unsigned>(expr[pos + 1 + digits] - '0');
        // Cap before the accumulator can wrap on absurd indices (f4294967296
        // must not alias f0).
        require(bit < 64,
                "RandomnessPlan::parse: fresh bit index out of range in '" +
                    token + "' (at most f63)");
        ++digits;
      }
      require(digits > 0, "RandomnessPlan::parse: missing bit index in '" +
                              token + "'");
      require(!((slot.fresh_mask >> bit) & 1u),
              "RandomnessPlan::parse: duplicate fresh bit f" +
                  std::to_string(bit) + " in '" + token +
                  "' (fN ^ fN is constant zero, not a mask)");
      slot.fresh_mask |= std::uint64_t{1} << bit;
      max_bit = std::max(max_bit, bit);
      pos += 1 + digits;
      if (pos < expr.size()) {
        require(expr[pos] == '^',
                "RandomnessPlan::parse: expected '^' in '" + token + "'");
        ++pos;
        require(pos < expr.size(),
                "RandomnessPlan::parse: dangling '^' in '" + token + "'");
      }
    }
    require(slot.fresh_mask != 0,
            "RandomnessPlan::parse: slot '" + token + "' uses no fresh bit");
    slots.push_back(slot);
  }
  require(!slots.empty(), "RandomnessPlan::parse: no slots given");
  return RandomnessPlan(name, max_bit + 1, std::move(slots));
}

namespace {

MaskSlotExpr f(unsigned k) { return MaskSlotExpr{std::uint64_t{1} << k, false}; }

MaskSlotExpr fxor_reg(unsigned a, unsigned b) {
  return MaskSlotExpr{(std::uint64_t{1} << a) | (std::uint64_t{1} << b), true};
}

}  // namespace

RandomnessPlan RandomnessPlan::kron1_full_fresh() {
  return RandomnessPlan("kron1/full-fresh-7", 7,
                        {f(0), f(1), f(2), f(3), f(4), f(5), f(6)});
}

RandomnessPlan RandomnessPlan::kron1_demeyer_eq6() {
  // r1 = r3 = f0, r2 = r4 = f1, r5 = f2, r6 = [r5 ^ r2] = [f2 ^ f1], r7 = r1.
  return RandomnessPlan("kron1/demeyer-eq6-3bits", 3,
                        {f(0), f(1), f(0), f(1), f(2), fxor_reg(2, 1), f(0)});
}

RandomnessPlan RandomnessPlan::kron1_single_reuse_r1r3() {
  return RandomnessPlan("kron1/single-reuse-r1r3", 6,
                        {f(0), f(1), f(0), f(2), f(3), f(4), f(5)});
}

RandomnessPlan RandomnessPlan::kron1_pair_reuse() {
  return RandomnessPlan("kron1/pair-reuse-r1r3-r2r4", 5,
                        {f(0), f(1), f(0), f(1), f(2), f(3), f(4)});
}

RandomnessPlan RandomnessPlan::kron1_proposed_eq9() {
  // r1..r4 fresh; r5 = r4, r6 = r2, r7 = r3 (Eq. (9)).
  return RandomnessPlan("kron1/proposed-eq9-4bits", 4,
                        {f(0), f(1), f(2), f(3), f(3), f(1), f(2)});
}

RandomnessPlan RandomnessPlan::kron1_r5_equals_r6() {
  return RandomnessPlan("kron1/r5-equals-r6", 6,
                        {f(0), f(1), f(2), f(3), f(4), f(4), f(5)});
}

RandomnessPlan RandomnessPlan::kron1_transition_secure(
    int reused_first_layer_index) {
  require(reused_first_layer_index >= 1 && reused_first_layer_index <= 4,
          "kron1_transition_secure: r7 must reuse r1..r4");
  return RandomnessPlan(
      "kron1/transition-secure-r7-is-r" +
          std::to_string(reused_first_layer_index),
      6,
      {f(0), f(1), f(2), f(3), f(4), f(5),
       f(static_cast<unsigned>(reused_first_layer_index - 1))});
}

RandomnessPlan RandomnessPlan::kron2_full_fresh() {
  std::vector<MaskSlotExpr> slots;
  for (unsigned k = 0; k < 21; ++k) slots.push_back(f(k));
  return RandomnessPlan("kron2/full-fresh-21", 21, std::move(slots));
}

RandomnessPlan RandomnessPlan::kron2_naive13() {
  // Gates G1..G4 (first layer): fresh f0..f11, three per gate.
  std::vector<MaskSlotExpr> slots;
  for (unsigned k = 0; k < 12; ++k) slots.push_back(f(k));
  // G5 (combines G1, G2 outputs): reuse G4's masks — the sibling subtree,
  // mirroring Eq. (9)'s r5 = r4.
  slots.push_back(f(9));
  slots.push_back(f(10));
  slots.push_back(f(11));
  // G6 (combines G3, G4 outputs): reuse G2's masks, mirroring r6 = r2.
  slots.push_back(f(3));
  slots.push_back(f(4));
  slots.push_back(f(5));
  // G7 (top): one genuinely fresh bit plus reuse of G3's masks.
  slots.push_back(f(12));
  slots.push_back(f(6));
  slots.push_back(f(7));
  return RandomnessPlan("kron2/naive-13", 13, std::move(slots));
}

RandomnessPlan RandomnessPlan::kron2_reduced() {
  // First and second layers fully fresh (f0..f17); each top-gate slot is a
  // *registered XOR* of two first-layer masks from different gates:
  //   m01 = [f0 ^ f9]   (G1.m01 ^ G4.m01)
  //   m02 = [f3 ^ f10]  (G2.m01 ^ G4.m02)
  //   m12 = [f6 ^ f1]   (G3.m01 ^ G1.m02)
  // The register breaks the glitch cone (the slot is a stable signal, not
  // a raw mask wire), and canceling the pad would take both source masks'
  // sibling uses — out of reach for two probes. This is the second-order
  // generalization of Eq. (9)'s combine-and-register repair; the raw-reuse
  // variant it replaces lives on as kron2_reduced_leaky(). 21 -> 18 bits.
  std::vector<MaskSlotExpr> slots;
  for (unsigned k = 0; k < 18; ++k) slots.push_back(f(k));
  slots.push_back(fxor_reg(0, 9));
  slots.push_back(fxor_reg(3, 10));
  slots.push_back(fxor_reg(6, 1));
  return RandomnessPlan("kron2/reduced-18", 18, std::move(slots));
}

RandomnessPlan RandomnessPlan::kron2_reduced_leaky() {
  // The broken 18-bit reduction: the top gate reuses one raw first-layer
  // mask per slot, one from each of G1, G2, G3 — the direct second-order
  // transcription of the paper's transition-secure family (r1..r6 fresh,
  // r7 reused from the first layer). Secure at order 1, but a probe pair
  // (G5-layer wire, z0) cancels the reused pad against the first-layer
  // register carrying its sibling use and then conditions on the raw
  // inner-domain products: the order-2 campaign measures -log10 p > 60 at
  // 200k simulations on six pairs, and the order-2 lint flags exactly
  // those pair sets. Kept as the agreement suite's known-leaky design.
  std::vector<MaskSlotExpr> slots;
  for (unsigned k = 0; k < 18; ++k) slots.push_back(f(k));
  slots.push_back(f(0));
  slots.push_back(f(3));
  slots.push_back(f(6));
  return RandomnessPlan("kron2/reduced-18-leaky", 18, std::move(slots));
}

}  // namespace sca::gadgets
