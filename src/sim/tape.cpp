#include "src/sim/tape.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/common/simd.hpp"

namespace sca::sim {

using netlist::GateKind;
using netlist::Netlist;
using netlist::SignalId;

namespace {

// Pre-allocation op form over an extended node id space: signal ids first,
// then the temporaries MUX lowering introduces.
struct ProtoOp {
  TapeOpcode op = TapeOpcode::kAnd;
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t level = 0;
};

TapeOpcode binary_opcode(GateKind kind) {
  switch (kind) {
    case GateKind::kAnd:
      return TapeOpcode::kAnd;
    case GateKind::kOr:
      return TapeOpcode::kOr;
    case GateKind::kXor:
      return TapeOpcode::kXor;
    case GateKind::kNand:
      return TapeOpcode::kNand;
    case GateKind::kNor:
      return TapeOpcode::kNor;
    case GateKind::kXnor:
      return TapeOpcode::kXnor;
    default:
      SCA_ASSERT(false, "compile_tape: unexpected binary gate kind");
      return TapeOpcode::kAnd;
  }
}

bool is_source(GateKind kind) {
  return kind == GateKind::kInput || kind == GateKind::kReg ||
         kind == GateKind::kConst0 || kind == GateKind::kConst1;
}

}  // namespace

Tape compile_tape(const Netlist& nl, const std::vector<SignalId>& observed) {
  const std::size_t n = nl.size();
  const bool observe_all = observed.empty();

  // Liveness: reverse closure from the observed signals plus every register
  // D input. Gates outside the closure can never influence an observable
  // value and are eliminated.
  std::vector<char> live(n, observe_all ? 1 : 0);
  std::vector<char> persistent(n, observe_all ? 1 : 0);
  if (!observe_all) {
    std::vector<SignalId> stack;
    auto mark = [&](SignalId id) {
      persistent[id] = 1;
      if (!live[id]) {
        live[id] = 1;
        stack.push_back(id);
      }
    };
    for (SignalId id : observed) {
      common::require(id < n, "compile_tape: observed signal out of range");
      mark(id);
    }
    for (SignalId id : nl.registers()) mark(nl.gate(id).fanin[0]);
    while (!stack.empty()) {
      const SignalId id = stack.back();
      stack.pop_back();
      const netlist::Gate& g = nl.gate(id);
      if (is_source(g.kind)) continue;
      for (std::size_t i = 0; i < netlist::gate_arity(g.kind); ++i) {
        const SignalId f = g.fanin[i];
        if (!live[f]) {
          live[f] = 1;
          stack.push_back(f);
        }
      }
    }
  } else {
    for (SignalId id : nl.registers()) persistent[nl.gate(id).fanin[0]] = 1;
  }
  // Sources always hold persistent slots: set_input must accept any input,
  // registers carry state, constants are filled at reset.
  for (SignalId id = 0; id < n; ++id)
    if (is_source(nl.kind(id))) {
      persistent[id] = 1;
      live[id] = 1;
    }

  // Expand live combinational gates into proto-ops with ASAP levels.
  // Node ids beyond the signal space are MUX-lowering temporaries.
  std::vector<std::uint32_t> level(n, 0);
  std::vector<ProtoOp> protos;
  protos.reserve(n);
  std::uint32_t next_node = static_cast<std::uint32_t>(n);
  std::vector<std::uint32_t> temp_levels;  // level of node n + i
  Tape tape;
  for (SignalId id : nl.topological_order()) {
    if (!live[id]) continue;
    const netlist::Gate& g = nl.gate(id);
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kReg:
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;  // level 0 sources
      case GateKind::kBuf:
        level[id] = level[g.fanin[0]] + 1;
        protos.push_back(
            {TapeOpcode::kCopy, id, g.fanin[0], g.fanin[0], level[id]});
        ++tape.live_gates;
        break;
      case GateKind::kNot:
        level[id] = level[g.fanin[0]] + 1;
        protos.push_back(
            {TapeOpcode::kNot, id, g.fanin[0], g.fanin[0], level[id]});
        ++tape.live_gates;
        break;
      case GateKind::kMux: {
        // out = a0 ^ (sel & (a0 ^ a1)): three uniform two-operand ops.
        const SignalId sel = g.fanin[0], a0 = g.fanin[1], a1 = g.fanin[2];
        const std::uint32_t t1 = next_node++;
        const std::uint32_t t2 = next_node++;
        const std::uint32_t l1 = std::max(level[a0], level[a1]) + 1;
        temp_levels.push_back(l1);
        protos.push_back({TapeOpcode::kXor, t1, a0, a1, l1});
        const std::uint32_t l2 = std::max(l1, level[sel]) + 1;
        temp_levels.push_back(l2);
        protos.push_back({TapeOpcode::kAnd, t2, sel, t1, l2});
        level[id] = std::max(l2, level[a0]) + 1;
        protos.push_back({TapeOpcode::kXor, id, a0, t2, level[id]});
        ++tape.live_gates;
        break;
      }
      default:
        level[id] = std::max(level[g.fanin[0]], level[g.fanin[1]]) + 1;
        protos.push_back({binary_opcode(g.kind), id, g.fanin[0], g.fanin[1],
                          level[id]});
        ++tape.live_gates;
        break;
    }
  }

  // Batch by level, then group by opcode inside each level — gates of one
  // level are independent, so this reorder is free, and it is what turns
  // the dispatch switch into one branch per homogeneous run. The stable
  // sort keeps emission order inside equal (level, opcode) keys, making the
  // tape a pure function of the netlist.
  std::stable_sort(protos.begin(), protos.end(),
                   [](const ProtoOp& x, const ProtoOp& y) {
                     if (x.level != y.level) return x.level < y.level;
                     return static_cast<std::uint32_t>(x.op) <
                            static_cast<std::uint32_t>(y.op);
                   });
  for (const ProtoOp& p : protos) tape.levels = std::max<std::size_t>(tape.levels, p.level);

  // Last reader of every non-persistent node, in final tape order.
  const std::uint32_t num_nodes = next_node;
  constexpr std::uint32_t kNever = 0xFFFFFFFFu;
  std::vector<std::uint32_t> last_use(num_nodes, kNever);
  for (std::uint32_t i = 0; i < protos.size(); ++i) {
    last_use[protos[i].a] = i;
    last_use[protos[i].b] = i;
  }

  // Slot assignment: persistent slots first (ascending signal id, so the
  // layout is deterministic), then a free-slot stack for the temporaries.
  std::vector<std::uint32_t> slot(num_nodes, Tape::kNoSlot);
  std::uint32_t next_slot = 0;
  for (SignalId id = 0; id < n; ++id)
    if (live[id] && persistent[id]) slot[id] = next_slot++;
  std::vector<std::uint32_t> free_slots;
  auto release = [&](std::uint32_t node, std::uint32_t pos) {
    const bool is_temp = node >= n || !persistent[node];
    if (is_temp && last_use[node] == pos) free_slots.push_back(slot[node]);
  };
  tape.ops.reserve(protos.size());
  for (std::uint32_t i = 0; i < protos.size(); ++i) {
    const ProtoOp& p = protos[i];
    const std::uint32_t a = slot[p.a];
    const std::uint32_t b = slot[p.b];
    SCA_ASSERT(a != Tape::kNoSlot && b != Tape::kNoSlot,
               "compile_tape: operand scheduled before its producer");
    release(p.a, i);
    if (p.b != p.a) release(p.b, i);
    std::uint32_t d = slot[p.dst];
    if (d == Tape::kNoSlot) {
      if (p.dst < n && persistent[p.dst]) {
        d = next_slot++;  // unreachable: persistent signals pre-assigned
      } else if (!free_slots.empty()) {
        d = free_slots.back();
        free_slots.pop_back();
      } else {
        d = next_slot++;
      }
      slot[p.dst] = d;
    }
    tape.ops.push_back({d, a, b});
    if (tape.runs.empty() || tape.runs.back().op != p.op)
      tape.runs.push_back({p.op, static_cast<std::uint32_t>(i + 1)});
    else
      tape.runs.back().end = static_cast<std::uint32_t>(i + 1);
  }
  tape.slot_count = next_slot;

  tape.slot_of.assign(n, Tape::kNoSlot);
  for (SignalId id = 0; id < n; ++id)
    if (live[id] && persistent[id]) tape.slot_of[id] = slot[id];

  for (SignalId r : nl.registers())
    tape.reg_latch.emplace_back(tape.slot_of[r],
                                tape.slot_of[nl.gate(r).fanin[0]]);
  for (SignalId id = 0; id < n; ++id)
    if (nl.kind(id) == GateKind::kConst1 && tape.slot_of[id] != Tape::kNoSlot)
      tape.const_one_slots.push_back(tape.slot_of[id]);
  return tape;
}

template <unsigned kLimbs>
void run_tape(const Tape& tape, std::uint64_t* slots) {
  using Word = common::SimdWord<kLimbs>;
  const TapeOp* const ops = tape.ops.data();
  auto ld = [slots](std::uint32_t s) { return Word::load(slots + s * kLimbs); };
  std::size_t i = 0;
  for (const TapeRun& run : tape.runs) {
    const std::size_t end = run.end;
    switch (run.op) {
      case TapeOpcode::kAnd:
        for (; i < end; ++i)
          (ld(ops[i].a) & ld(ops[i].b)).store(slots + ops[i].dst * kLimbs);
        break;
      case TapeOpcode::kOr:
        for (; i < end; ++i)
          (ld(ops[i].a) | ld(ops[i].b)).store(slots + ops[i].dst * kLimbs);
        break;
      case TapeOpcode::kXor:
        for (; i < end; ++i)
          (ld(ops[i].a) ^ ld(ops[i].b)).store(slots + ops[i].dst * kLimbs);
        break;
      case TapeOpcode::kNand:
        for (; i < end; ++i)
          (~(ld(ops[i].a) & ld(ops[i].b))).store(slots + ops[i].dst * kLimbs);
        break;
      case TapeOpcode::kNor:
        for (; i < end; ++i)
          (~(ld(ops[i].a) | ld(ops[i].b))).store(slots + ops[i].dst * kLimbs);
        break;
      case TapeOpcode::kXnor:
        for (; i < end; ++i)
          (~(ld(ops[i].a) ^ ld(ops[i].b))).store(slots + ops[i].dst * kLimbs);
        break;
      case TapeOpcode::kNot:
        for (; i < end; ++i)
          (~ld(ops[i].a)).store(slots + ops[i].dst * kLimbs);
        break;
      case TapeOpcode::kCopy:
        for (; i < end; ++i)
          ld(ops[i].a).store(slots + ops[i].dst * kLimbs);
        break;
    }
  }
}

template void run_tape<1>(const Tape&, std::uint64_t*);
template void run_tape<4>(const Tape&, std::uint64_t*);
template void run_tape<8>(const Tape&, std::uint64_t*);

}  // namespace sca::sim
