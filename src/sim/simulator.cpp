#include "src/sim/simulator.hpp"

#include <cstring>

#include "src/common/check.hpp"
#include "src/common/simd.hpp"

namespace sca::sim {

using netlist::GateKind;
using netlist::Netlist;
using netlist::SignalId;

Schedule::Schedule(const Netlist& nl, ScheduleOptions options)
    : nl_(&nl), lanes_(options.lanes), compiled_(options.compile) {
  nl.validate();
  common::require(common::valid_lane_width(lanes_),
                  "Schedule: lane width must be 64, 256, or 512");
  common::require(compiled_ || lanes_ == 64,
                  "Schedule: the interpreted oracle runs 64 lanes only");
  regs_ = nl.registers();
  for (SignalId id : nl.topological_order()) {
    switch (nl.kind(id)) {
      case GateKind::kInput:
      case GateKind::kReg:
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;  // sources; constants are fixed at reset
      default:
        comb_order_.push_back(id);
    }
  }
  if (compiled_) tape_ = compile_tape(nl, options.observed);
}

Simulator::Simulator(const Netlist& nl)
    : nl_(&nl),
      owned_schedule_(std::make_shared<const Schedule>(nl)),
      schedule_(owned_schedule_.get()) {
  slots_.assign(schedule_->slot_count() * limbs(), 0);
  reg_next_.assign(schedule_->registers().size() * limbs(), 0);
  reset();
}

Simulator::Simulator(const Schedule& schedule)
    : nl_(&schedule.netlist()), schedule_(&schedule) {
  slots_.assign(schedule_->slot_count() * limbs(), 0);
  reg_next_.assign(schedule_->registers().size() * limbs(), 0);
  reset();
}

void Simulator::reset() {
  const unsigned nlimbs = limbs();
  std::memset(slots_.data(), 0, slots_.size() * sizeof(std::uint64_t));
  std::memset(reg_next_.data(), 0, reg_next_.size() * sizeof(std::uint64_t));
  // Constants hold their value permanently.
  if (schedule_->compiled()) {
    for (std::uint32_t s : schedule_->tape().const_one_slots)
      for (unsigned b = 0; b < nlimbs; ++b)
        slots_[s * nlimbs + b] = ~std::uint64_t{0};
  } else {
    for (SignalId id = 0; id < nl_->size(); ++id)
      if (nl_->kind(id) == GateKind::kConst1) slots_[id] = ~std::uint64_t{0};
  }
}

std::uint64_t* Simulator::input_slot(SignalId input) {
  common::require(input < nl_->size() && nl_->kind(input) == GateKind::kInput,
                  "Simulator::set_input: signal is not a primary input");
  const std::uint32_t slot = schedule_->slot_of(input);
  SCA_ASSERT(slot != Tape::kNoSlot, "Simulator: input without a slot");
  return slots_.data() + static_cast<std::size_t>(slot) * limbs();
}

void Simulator::set_input(SignalId input, std::uint64_t lanes) {
  std::uint64_t* p = input_slot(input);
  p[0] = lanes;
  for (unsigned b = 1; b < limbs(); ++b) p[b] = 0;
}

void Simulator::set_input_all_lanes(SignalId input, bool v) {
  std::uint64_t* p = input_slot(input);
  const std::uint64_t w = v ? ~std::uint64_t{0} : 0;
  for (unsigned b = 0; b < limbs(); ++b) p[b] = w;
}

void Simulator::set_input_limbs(SignalId input,
                                const std::uint64_t* limb_words) {
  std::uint64_t* p = input_slot(input);
  std::memcpy(p, limb_words, limbs() * sizeof(std::uint64_t));
}

std::uint64_t* Simulator::input_limbs(SignalId input) {
  return input_slot(input);
}

void Simulator::settle_interpreted() {
  std::uint64_t* const values = slots_.data();
  for (SignalId id : schedule_->comb_order()) {
    const netlist::Gate& g = nl_->gate(id);
    const std::uint64_t a = values[g.fanin[0]];
    switch (g.kind) {
      case GateKind::kBuf:
        values[id] = a;
        break;
      case GateKind::kNot:
        values[id] = ~a;
        break;
      case GateKind::kAnd:
        values[id] = a & values[g.fanin[1]];
        break;
      case GateKind::kNand:
        values[id] = ~(a & values[g.fanin[1]]);
        break;
      case GateKind::kOr:
        values[id] = a | values[g.fanin[1]];
        break;
      case GateKind::kNor:
        values[id] = ~(a | values[g.fanin[1]]);
        break;
      case GateKind::kXor:
        values[id] = a ^ values[g.fanin[1]];
        break;
      case GateKind::kXnor:
        values[id] = ~(a ^ values[g.fanin[1]]);
        break;
      case GateKind::kMux: {
        const std::uint64_t sel = a;
        values[id] =
            (~sel & values[g.fanin[1]]) | (sel & values[g.fanin[2]]);
        break;
      }
      default:
        SCA_ASSERT(false, "settle: unexpected gate kind in comb order");
    }
  }
}

void Simulator::settle() {
  if (!schedule_->compiled()) {
    settle_interpreted();
    return;
  }
  switch (limbs()) {
    case 1:
      run_tape<1>(schedule_->tape(), slots_.data());
      break;
    case 4:
      run_tape<4>(schedule_->tape(), slots_.data());
      break;
    case 8:
      run_tape<8>(schedule_->tape(), slots_.data());
      break;
    default:
      SCA_ASSERT(false, "settle: unsupported limb count");
  }
}

void Simulator::clock() {
  const unsigned nlimbs = limbs();
  if (schedule_->compiled()) {
    const auto& latch = schedule_->tape().reg_latch;
    for (std::size_t i = 0; i < latch.size(); ++i)
      std::memcpy(reg_next_.data() + i * nlimbs,
                  slots_.data() + static_cast<std::size_t>(latch[i].second) * nlimbs,
                  nlimbs * sizeof(std::uint64_t));
    for (std::size_t i = 0; i < latch.size(); ++i)
      std::memcpy(slots_.data() + static_cast<std::size_t>(latch[i].first) * nlimbs,
                  reg_next_.data() + i * nlimbs, nlimbs * sizeof(std::uint64_t));
    return;
  }
  const auto& regs = schedule_->registers();
  for (std::size_t i = 0; i < regs.size(); ++i)
    reg_next_[i] = slots_[nl_->gate(regs[i]).fanin[0]];
  for (std::size_t i = 0; i < regs.size(); ++i) slots_[regs[i]] = reg_next_[i];
}

const std::uint64_t* Simulator::value_limbs(SignalId signal) const {
  SCA_ASSERT(signal < nl_->size(), "Simulator::value: signal out of range");
  const std::uint32_t slot = schedule_->slot_of(signal);
  common::require(slot != Tape::kNoSlot,
                  "Simulator::value: signal was eliminated as dead — list it "
                  "in ScheduleOptions::observed to keep it readable");
  return slots_.data() + static_cast<std::size_t>(slot) * limbs();
}

}  // namespace sca::sim
