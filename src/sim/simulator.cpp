#include "src/sim/simulator.hpp"

#include "src/common/check.hpp"

namespace sca::sim {

using netlist::GateKind;
using netlist::Netlist;
using netlist::SignalId;

Schedule::Schedule(const Netlist& nl) : nl_(&nl) {
  nl.validate();
  regs_ = nl.registers();
  for (SignalId id : nl.topological_order()) {
    switch (nl.kind(id)) {
      case GateKind::kInput:
      case GateKind::kReg:
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;  // sources; constants are fixed at reset
      default:
        comb_order_.push_back(id);
    }
  }
}

Simulator::Simulator(const Netlist& nl)
    : nl_(&nl),
      owned_schedule_(std::make_shared<const Schedule>(nl)),
      schedule_(owned_schedule_.get()) {
  values_.assign(nl.size(), 0);
  reg_next_.assign(schedule_->registers().size(), 0);
  reset();
}

Simulator::Simulator(const Schedule& schedule)
    : nl_(&schedule.netlist()), schedule_(&schedule) {
  values_.assign(nl_->size(), 0);
  reg_next_.assign(schedule_->registers().size(), 0);
  reset();
}

void Simulator::reset() {
  for (auto& v : values_) v = 0;
  for (auto& v : reg_next_) v = 0;
  // Constants hold their value permanently.
  for (SignalId id = 0; id < nl_->size(); ++id)
    if (nl_->kind(id) == GateKind::kConst1) values_[id] = ~std::uint64_t{0};
}

void Simulator::set_input(SignalId input, std::uint64_t lanes) {
  common::require(input < nl_->size() && nl_->kind(input) == GateKind::kInput,
                  "Simulator::set_input: signal is not a primary input");
  values_[input] = lanes;
}

void Simulator::settle() {
  for (SignalId id : schedule_->comb_order()) {
    const netlist::Gate& g = nl_->gate(id);
    const std::uint64_t a = values_[g.fanin[0]];
    switch (g.kind) {
      case GateKind::kBuf:
        values_[id] = a;
        break;
      case GateKind::kNot:
        values_[id] = ~a;
        break;
      case GateKind::kAnd:
        values_[id] = a & values_[g.fanin[1]];
        break;
      case GateKind::kNand:
        values_[id] = ~(a & values_[g.fanin[1]]);
        break;
      case GateKind::kOr:
        values_[id] = a | values_[g.fanin[1]];
        break;
      case GateKind::kNor:
        values_[id] = ~(a | values_[g.fanin[1]]);
        break;
      case GateKind::kXor:
        values_[id] = a ^ values_[g.fanin[1]];
        break;
      case GateKind::kXnor:
        values_[id] = ~(a ^ values_[g.fanin[1]]);
        break;
      case GateKind::kMux: {
        const std::uint64_t sel = a;
        values_[id] =
            (~sel & values_[g.fanin[1]]) | (sel & values_[g.fanin[2]]);
        break;
      }
      default:
        SCA_ASSERT(false, "settle: unexpected gate kind in comb order");
    }
  }
}

void Simulator::clock() {
  const auto& regs = schedule_->registers();
  for (std::size_t i = 0; i < regs.size(); ++i)
    reg_next_[i] = values_[nl_->gate(regs[i]).fanin[0]];
  for (std::size_t i = 0; i < regs.size(); ++i) values_[regs[i]] = reg_next_[i];
}

std::uint64_t Simulator::value(SignalId signal) const {
  SCA_ASSERT(signal < values_.size(), "Simulator::value: signal out of range");
  return values_[signal];
}

}  // namespace sca::sim
