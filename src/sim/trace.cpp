#include "src/sim/trace.hpp"

#include <sstream>

#include "src/common/check.hpp"

namespace sca::sim {

using netlist::SignalId;

VcdTrace::VcdTrace(const Simulator& simulator, std::vector<SignalId> signals,
                   unsigned lane)
    : simulator_(&simulator), signals_(std::move(signals)), lane_(lane) {
  common::require(lane < simulator.lanes(),
                  "VcdTrace: lane must be < the schedule's lane width");
  if (signals_.empty()) {
    const netlist::Netlist& nl = simulator.netlist();
    for (SignalId id = 0; id < nl.size(); ++id)
      if (nl.explicit_name(id)) signals_.push_back(id);
  }
  common::require(!signals_.empty(), "VcdTrace: nothing to trace");
}

void VcdTrace::sample(std::uint64_t time) {
  common::require(times_.empty() || time > times_.back(),
                  "VcdTrace::sample: time must increase");
  times_.push_back(time);
  std::vector<bool> row;
  row.reserve(signals_.size());
  for (SignalId id : signals_)
    row.push_back(simulator_->value_in_lane(id, lane_));
  values_.push_back(std::move(row));
}

namespace {

// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string vcd_code(std::size_t index) {
  std::string code;
  do {
    code += static_cast<char>(33 + index % 94);
    index /= 94;
  } while (index);
  return code;
}

}  // namespace

std::string VcdTrace::render(const std::string& top_module) const {
  const netlist::Netlist& nl = simulator_->netlist();
  std::ostringstream os;
  os << "$timescale 1ns $end\n";
  os << "$scope module " << top_module << " $end\n";
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    std::string name = nl.signal_name(signals_[i]);
    for (char& c : name)
      if (c == ' ') c = '_';
    os << "$var wire 1 " << vcd_code(i) << " " << name << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<int> last(signals_.size(), -1);
  for (std::size_t t = 0; t < times_.size(); ++t) {
    bool emitted_time = false;
    for (std::size_t i = 0; i < signals_.size(); ++i) {
      const int v = values_[t][i] ? 1 : 0;
      if (v == last[i]) continue;
      if (!emitted_time) {
        os << '#' << times_[t] << '\n';
        emitted_time = true;
      }
      os << v << vcd_code(i) << '\n';
      last[i] = v;
    }
  }
  return os.str();
}

}  // namespace sca::sim
