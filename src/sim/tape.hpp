// Straight-line compiled form of a netlist's combinational logic.
//
// Schedule construction can compile the gate array once into a flat op tape
// instead of interpreting it gate by gate:
//
//   * **Dead-gate elimination** against the observed signal cone: only gates
//     feeding an observed signal or a register D input survive. A leakage
//     campaign observes stable points (inputs and registers) only, so the
//     whole non-state-bearing slice of the cloud drops out of the hot loop.
//   * **Levelization**: surviving gates are batched by combinational depth
//     (sources at level 0, a gate one past its deepest fanin). Gates within
//     a level are independent, so they can be reordered freely — they are
//     sorted by opcode, turning the tape into long homogeneous runs.
//   * **Register-pressure-aware slot allocation**: persistent values
//     (sources, observed signals, register D inputs) get fixed slots; dead
//     intermediates recycle a small free-slot stack the moment their last
//     reader has executed, so the working set stays cache-resident instead
//     of spanning one word per signal.
//   * **Uniform two-operand ops**: MUX lowers to XOR/AND/XOR, BUF to COPY,
//     leaving eight opcodes. Execution dispatches once per *run* of equal
//     opcodes and then streams — no per-gate branching on GateKind for the
//     common AND/XOR/NOT cases (or any other).
//
// The tape is lane-width agnostic: run_tape<kLimbs> executes it over
// SimdWord<kLimbs> values, with slot i's limbs at slots[i * kLimbs]. The
// same tape run at any width computes bit-identical lane values, which is
// what lets the 64-lane interpreted simulator serve as the correctness
// oracle for the 256/512-lane kernel.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/netlist/ir.hpp"

namespace sca::sim {

enum class TapeOpcode : std::uint32_t {
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
  kXnor,
  kNot,
  kCopy,
};

/// One compiled op: slots[dst] = slots[a] OP slots[b] (unary ops read `a`
/// only; `b` is set equal to `a` so the operand is always loadable).
struct TapeOp {
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// A maximal run of consecutive ops sharing one opcode: ops [begin of the
/// previous run's end, end) all execute `op`.
struct TapeRun {
  TapeOpcode op = TapeOpcode::kAnd;
  std::uint32_t end = 0;
};

struct Tape {
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  std::vector<TapeOp> ops;
  std::vector<TapeRun> runs;
  /// Signal id -> value slot; kNoSlot for signals eliminated as dead.
  std::vector<std::uint32_t> slot_of;
  /// (register slot, D-input slot) per register, in netlist register order.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> reg_latch;
  /// Slots holding constant-1 signals; reset() fills them with all-ones.
  std::vector<std::uint32_t> const_one_slots;
  std::uint32_t slot_count = 0;

  // Compilation statistics (reported by Schedule).
  std::size_t live_gates = 0;  ///< comb gates surviving dead-gate elimination
  std::size_t levels = 0;      ///< combinational depth of the live cone
};

/// Compiles the combinational logic of `nl` into a tape. `observed` lists
/// the signals whose settled values must stay readable (empty = every
/// signal, i.e. no dead-gate elimination); register D cones are always kept
/// so state advances correctly.
Tape compile_tape(const netlist::Netlist& nl,
                  const std::vector<netlist::SignalId>& observed);

/// Executes one settle pass over the slot file (kLimbs 64-bit words per
/// slot, i.e. 64 * kLimbs lanes). Instantiated for kLimbs in {1, 4, 8}.
template <unsigned kLimbs>
void run_tape(const Tape& tape, std::uint64_t* slots);

extern template void run_tape<1>(const Tape&, std::uint64_t*);
extern template void run_tape<4>(const Tape&, std::uint64_t*);
extern template void run_tape<8>(const Tape&, std::uint64_t*);

}  // namespace sca::sim
