// Cycle-accurate, 64-lane bit-parallel netlist simulator.
//
// Each signal carries a 64-bit word: bit L is the signal's value in
// simulation lane L, so one pass over the gate array advances 64 independent
// simulations at once. This is the same trick PROLEAD uses to reach millions
// of simulations per campaign.
//
// Per-cycle protocol (matching the robust probing model's view of time):
//   1. set_input(...) for every primary input          (cycle t values)
//   2. settle()   — combinational evaluation            (glitches resolve)
//   3. value(s)   — read any signal: registers show their *current* state
//                   (latched at the end of cycle t-1), combinational signals
//                   show their settled cycle-t value
//   4. clock()    — registers latch their D inputs; state becomes cycle t+1
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/netlist/ir.hpp"

namespace sca::sim {

/// The netlist-derived evaluation plan (topological order of combinational
/// gates, register list). Immutable after construction, so one Schedule can
/// back any number of concurrently running Simulators — the parallel
/// campaign builds it once and hands a const reference to every worker.
class Schedule {
 public:
  /// The netlist must be validated and must outlive the schedule.
  explicit Schedule(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return *nl_; }
  const std::vector<netlist::SignalId>& comb_order() const {
    return comb_order_;
  }
  const std::vector<netlist::SignalId>& registers() const { return regs_; }

  /// Combinational gate count — the work of one settle() pass (x 64 lanes).
  std::size_t comb_gates() const { return comb_order_.size(); }

 private:
  const netlist::Netlist* nl_;
  std::vector<netlist::SignalId> comb_order_;
  std::vector<netlist::SignalId> regs_;
};

class Simulator {
 public:
  /// Prepares evaluation structures. The netlist must be validated and must
  /// outlive the simulator.
  explicit Simulator(const netlist::Netlist& nl);

  /// Shares a prepared schedule (and its netlist) instead of re-deriving
  /// it; the schedule must outlive the simulator. This is the cheap
  /// constructor the per-thread simulators of a parallel campaign use.
  explicit Simulator(const Schedule& schedule);

  /// Clears register state and input values (all lanes 0).
  void reset();

  /// Sets the 64-lane value word of a primary input.
  void set_input(netlist::SignalId input, std::uint64_t lanes);

  /// Sets one input in all lanes to the same bit.
  void set_input_all_lanes(netlist::SignalId input, bool v) {
    set_input(input, v ? ~std::uint64_t{0} : 0);
  }

  /// Evaluates all combinational gates in topological order.
  void settle();

  /// Latches every register's D input; call after settle().
  void clock();

  /// settle() + clock() in one call.
  void step() {
    settle();
    clock();
  }

  /// 64-lane value word of any signal (see protocol above for semantics).
  std::uint64_t value(netlist::SignalId signal) const;

  /// Value of a signal in one lane, as 0/1.
  bool value_in_lane(netlist::SignalId signal, unsigned lane) const {
    return (value(signal) >> lane) & 1u;
  }

  const netlist::Netlist& netlist() const { return *nl_; }

 private:
  const netlist::Netlist* nl_;
  std::shared_ptr<const Schedule> owned_schedule_;  // only for the nl ctor
  const Schedule* schedule_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> reg_next_;
};

}  // namespace sca::sim
