// Cycle-accurate, wide-lane bit-parallel netlist simulator.
//
// Each signal carries one word of W = 64, 256 or 512 simulation lanes (lane
// L = bit L % 64 of limb L / 64), so one pass over the logic advances W
// independent simulations at once — the PROLEAD trick, widened to SIMD
// words. Two execution engines share identical semantics:
//
//   * **compiled** (default): Schedule construction levelizes the gates,
//     eliminates dead logic outside the observed cone, and emits a flat op
//     tape over a compact reusable slot file (sim/tape.hpp); settle() is a
//     tight dispatch loop with no per-gate GateKind branching.
//   * **interpreted**: the classic one-gate-at-a-time switch loop over the
//     full signal array, 64 lanes only — kept as the bit-identical
//     correctness oracle the kernel tests compare against.
//
// Per-cycle protocol (matching the robust probing model's view of time):
//   1. set_input(...) for every primary input          (cycle t values)
//   2. settle()   — combinational evaluation            (glitches resolve)
//   3. value(s)   — read any signal: registers show their *current* state
//                   (latched at the end of cycle t-1), combinational signals
//                   show their settled cycle-t value
//   4. clock()    — registers latch their D inputs; state becomes cycle t+1
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/netlist/ir.hpp"
#include "src/sim/tape.hpp"

namespace sca::sim {

struct ScheduleOptions {
  /// Simulation lanes per signal: 64, 256, or 512 (limbs 1, 4, 8).
  unsigned lanes = 64;
  /// Compile to the straight-line tape (false = the interpreted 64-lane
  /// oracle; requires lanes == 64).
  bool compile = true;
  /// Signals whose settled values must stay readable through value() —
  /// everything outside their cone (and the register state cones) is
  /// eliminated from the compiled tape. Empty = every signal is observable
  /// (no dead-gate elimination), the right default for interactive use.
  std::vector<netlist::SignalId> observed;
};

/// The netlist-derived evaluation plan (compiled tape or interpreted
/// topological order, register list, lane width). Immutable after
/// construction, so one Schedule can back any number of concurrently
/// running Simulators — the parallel campaign builds it once and hands a
/// const reference to every worker.
class Schedule {
 public:
  /// Fully observable 64-lane compiled schedule — drop-in for the classic
  /// interpreted simulator. The netlist must be validated and outlive the
  /// schedule.
  explicit Schedule(const netlist::Netlist& nl) : Schedule(nl, {}) {}
  Schedule(const netlist::Netlist& nl, ScheduleOptions options);

  const netlist::Netlist& netlist() const { return *nl_; }
  const std::vector<netlist::SignalId>& comb_order() const {
    return comb_order_;
  }
  const std::vector<netlist::SignalId>& registers() const { return regs_; }

  /// Combinational gate count of the netlist — the interpreted work of one
  /// settle() pass (x lanes). The compiled tape may run fewer (live_gates).
  std::size_t comb_gates() const { return comb_order_.size(); }

  unsigned lanes() const { return lanes_; }
  unsigned limbs() const { return lanes_ / 64; }
  bool compiled() const { return compiled_; }
  const Tape& tape() const { return tape_; }

  /// Value slot of a signal, or Tape::kNoSlot if dead-gate elimination
  /// removed it (interpreted schedules map every signal).
  std::uint32_t slot_of(netlist::SignalId id) const {
    return compiled_ ? tape_.slot_of[id] : id;
  }
  std::size_t slot_count() const {
    return compiled_ ? tape_.slot_count : nl_->size();
  }

  // Kernel statistics (zero when interpreted).
  std::size_t live_gates() const { return compiled_ ? tape_.live_gates : 0; }
  std::size_t levels() const { return compiled_ ? tape_.levels : 0; }
  std::size_t tape_ops() const { return compiled_ ? tape_.ops.size() : 0; }

 private:
  const netlist::Netlist* nl_;
  unsigned lanes_ = 64;
  bool compiled_ = true;
  std::vector<netlist::SignalId> comb_order_;
  std::vector<netlist::SignalId> regs_;
  Tape tape_;
};

class Simulator {
 public:
  /// Prepares evaluation structures (compiled, 64 lanes, fully observable).
  /// The netlist must be validated and must outlive the simulator.
  explicit Simulator(const netlist::Netlist& nl);

  /// Shares a prepared schedule (and its netlist) instead of re-deriving
  /// it; the schedule must outlive the simulator. This is the cheap
  /// constructor the per-thread simulators of a parallel campaign use.
  explicit Simulator(const Schedule& schedule);

  unsigned lanes() const { return schedule_->lanes(); }
  unsigned limbs() const { return schedule_->limbs(); }

  /// Clears register state and input values (all lanes 0).
  void reset();

  /// Sets the first 64 lanes of a primary input; lanes >= 64 are cleared.
  void set_input(netlist::SignalId input, std::uint64_t lanes);

  /// Sets one input in all lanes (all limbs) to the same bit.
  void set_input_all_lanes(netlist::SignalId input, bool v);

  /// Sets every limb of a primary input (limbs() words at `limb_words`).
  void set_input_limbs(netlist::SignalId input, const std::uint64_t* limb_words);

  /// Mutable limb array of a primary input — the zero-copy feed path of the
  /// wide campaign loop. limbs() words.
  std::uint64_t* input_limbs(netlist::SignalId input);

  /// Evaluates all combinational gates (compiled tape or interpreted loop).
  void settle();

  /// Latches every register's D input; call after settle().
  void clock();

  /// settle() + clock() in one call.
  void step() {
    settle();
    clock();
  }

  /// First 64 lanes of any observable signal (see protocol above). Throws
  /// if dead-gate elimination removed the signal — add it to
  /// ScheduleOptions::observed to keep it readable.
  std::uint64_t value(netlist::SignalId signal) const {
    return value_limbs(signal)[0];
  }

  /// All limbs() lane words of an observable signal.
  const std::uint64_t* value_limbs(netlist::SignalId signal) const;

  /// Value of a signal in one lane (lane < lanes()), as 0/1.
  bool value_in_lane(netlist::SignalId signal, unsigned lane) const {
    return (value_limbs(signal)[lane / 64] >> (lane % 64)) & 1u;
  }

  const netlist::Netlist& netlist() const { return *nl_; }
  const Schedule& schedule() const { return *schedule_; }

 private:
  std::uint64_t* input_slot(netlist::SignalId input);
  void settle_interpreted();

  const netlist::Netlist* nl_;
  std::shared_ptr<const Schedule> owned_schedule_;  // only for the nl ctor
  const Schedule* schedule_;
  std::vector<std::uint64_t> slots_;     // slot i at [i * limbs, (i+1) * limbs)
  std::vector<std::uint64_t> reg_next_;  // clock() double buffer
};

}  // namespace sca::sim
