// Value Change Dump (VCD) tracing for the netlist simulator.
//
// Records selected signals (one simulation lane) cycle by cycle and renders
// an IEEE 1364 VCD file loadable by GTKWave & co. — the standard way to
// debug a pipeline stage that doesn't line up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/netlist/ir.hpp"
#include "src/sim/simulator.hpp"

namespace sca::sim {

class VcdTrace {
 public:
  /// Traces `signals` of the simulator's netlist, observing lane `lane`.
  /// Pass an empty vector to trace every named signal.
  VcdTrace(const Simulator& simulator, std::vector<netlist::SignalId> signals,
           unsigned lane = 0);

  /// Samples the current signal values as cycle `time` (call after settle()).
  void sample(std::uint64_t time);

  /// Renders the collected samples as VCD text.
  std::string render(const std::string& top_module = "sca") const;

  std::size_t sample_count() const { return times_.size(); }

 private:
  const Simulator* simulator_;
  std::vector<netlist::SignalId> signals_;
  unsigned lane_;
  std::vector<std::uint64_t> times_;
  std::vector<std::vector<bool>> values_;  // [sample][signal]
};

}  // namespace sca::sim
