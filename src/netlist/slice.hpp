// Combinational-slice extraction: cut a sequential netlist at its
// architectural state registers so the feedback-free remainder can be
// unrolled, linted and exactly verified.
//
// Register feedback (the AES state/key banks and the controller counters)
// makes verif::unroll impossible — every register would need its value
// expressed over an unbounded past. The observation that unlocks the whole
// design is that feedback only flows through *architectural* state: cut the
// netlist at those registers, treat each cut register's output as a fresh
// slice input, and the rest of the circuit (the Sbox pipelines, the linear
// layers, the round function) is a finite pipeline again — one slice that
// covers every round step, because the controller state that selects the
// step enters as a public input.
//
// Labels transfer across the cut so lint::TupleAnalyzer sharing instances
// stay attributed to the original secrets:
//   * registers annotated StateRole::kShare (ir.hpp) become share inputs of
//     a fresh secret group (`first_transfer_group` + annotation group), and
//     the annotation group's display name ("aes.st3") rides along;
//   * annotated-public and *inferred*-public registers (no secret and no
//     random taint reaches them through any register path — deterministic
//     control state like the AES phase/round counters) become control
//     inputs;
//   * registers on a feedback cycle that are neither annotated nor
//     provably public are an error — randomness-holding feedback state
//     cannot be soundly re-labeled as an independent input.
//
// Soundness scope: a cut share register is modeled as *held* — one input
// instance shared by all unroll cycles (verif::unroll held_inputs), because
// the physical register keeps one sharing of the value for the whole round
// period. Re-instancing per cycle would model a fresh re-sharing every
// cycle and silently miss share-completion across pipeline stages. The
// held model is exact for probes whose cone stays within one round period
// (every Sbox-internal probe: the 5-stage pipeline is shorter than the
// 6-cycle round) and conservative across a round-latch boundary (old and
// new state are identified, which can only add findings, never hide one).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/netlist/ir.hpp"

namespace sca::netlist {

struct SliceOptions {
  /// Pin selected cut registers to a constant instead of turning them into
  /// slice inputs — e.g. specialize the controller to one round step. Keys
  /// must end up in the cut set (it is an error to pin a register the
  /// extraction does not cut).
  std::unordered_map<SignalId, bool> pin;
};

/// One register cut: original register `reg` became slice input `input`
/// (kNoSignal when pinned), and `next` is the slice signal computing the
/// register's next value (the original D function).
struct SliceCut {
  SignalId reg = kNoSignal;
  SignalId input = kNoSignal;
  SignalId next = kNoSignal;
  bool pinned = false;
  InputRole role = InputRole::kControl;
  /// Valid iff role == kShare; `label.secret` is the *slice* secret group
  /// (first_transfer_group + annotation group).
  ShareLabel label;
};

struct Slice {
  /// The feedback-free slice netlist. Signal names, input roles and secret
  /// groups of the original are preserved; cut registers appear as inputs
  /// named after the register, and each cut register's D function is also
  /// exported as output "next.<register name>".
  Netlist nl;
  /// All cuts, ascending by original register id.
  std::vector<SliceCut> cuts;
  /// map[orig] = slice signal carrying the original signal's value within
  /// one cycle (cut registers map to their slice input / pinned constant).
  std::vector<SignalId> map;
  /// Slice inputs standing in for cut registers — pass as `held_inputs` to
  /// verif::unroll / the exact engine so one instance spans all cycles.
  std::vector<SignalId> held_inputs;
  /// First slice secret group used for transferred state labels; annotation
  /// group g of the original maps to secret group first_transfer_group + g.
  std::uint32_t first_transfer_group = 0;

  /// The slice signal computing cut register `reg`'s next value; kNoSignal
  /// when `reg` was not cut.
  SignalId next_of(SignalId reg) const;
};

/// Extracts the combinational slice of `nl`. Throws common::Error when
/// register feedback survives the cut — i.e. a cycle runs through a
/// register that is neither share/public-annotated nor inferred public;
/// the remaining cycle path and the offending register are spelled out in
/// the message.
Slice extract_slice(const Netlist& nl, const SliceOptions& options = {});

}  // namespace sca::netlist
