#include "src/netlist/textio.hpp"

#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/common/check.hpp"

namespace sca::netlist {

using common::require;

std::string write_snl(const Netlist& nl) {
  std::ostringstream os;
  os << "# SNL netlist, " << nl.size() << " signals\n";
  auto sid = [](SignalId id) { return "n" + std::to_string(id); };

  for (SignalId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    switch (g.kind) {
      case GateKind::kInput: {
        const InputInfo* info = nullptr;
        for (const auto& in : nl.inputs())
          if (in.signal == id) info = &in;
        SCA_ASSERT(info != nullptr, "write_snl: input without InputInfo");
        os << "input " << sid(id) << ' ';
        switch (info->role) {
          case InputRole::kControl: os << "control"; break;
          case InputRole::kRandom: os << "random"; break;
          case InputRole::kShare:
            os << "share " << info->share.secret << ' ' << info->share.share
               << ' ' << info->share.bit;
            break;
        }
        os << '\n';
        break;
      }
      case GateKind::kConst0:
        os << "const " << sid(id) << " 0\n";
        break;
      case GateKind::kConst1:
        os << "const " << sid(id) << " 1\n";
        break;
      case GateKind::kReg:
        os << "reg " << sid(id) << ' ' << sid(g.fanin[0]) << '\n';
        break;
      default: {
        os << "gate " << sid(id) << ' ' << gate_kind_name(g.kind);
        const std::size_t arity = gate_arity(g.kind);
        for (std::size_t i = 0; i < arity; ++i) os << ' ' << sid(g.fanin[i]);
        os << '\n';
      }
    }
    if (auto n = nl.explicit_name(id)) os << "name " << sid(id) << ' ' << *n << '\n';
    if (g.kind == GateKind::kReg) {
      if (const StateAnnotation* a = nl.register_annotation(id)) {
        os << "state " << sid(id) << ' ';
        if (a->role == StateRole::kShare)
          os << "share " << a->label.secret << ' ' << a->label.share << ' '
             << a->label.bit;
        else
          os << "public";
        os << '\n';
      }
    }
  }
  for (const auto& [group, name] : nl.named_state_groups())
    os << "stategroup " << group << ' ' << name << '\n';
  for (const auto& [group, name] : nl.named_secret_groups())
    os << "secretgroup " << group << ' ' << name << '\n';
  for (const auto& out : nl.outputs())
    os << "output " << out.name << ' ' << sid(out.signal) << '\n';
  return os.str();
}

namespace {

GateKind kind_from_name(const std::string& s, std::size_t line_no) {
  for (GateKind k :
       {GateKind::kBuf, GateKind::kNot, GateKind::kAnd, GateKind::kNand,
        GateKind::kOr, GateKind::kNor, GateKind::kXor, GateKind::kXnor,
        GateKind::kMux})
    if (s == gate_kind_name(k)) return k;
  throw common::Error("parse_snl line " + std::to_string(line_no) +
                      ": unknown gate kind '" + s + "'");
}

struct Statement {
  std::size_t line_no = 0;
  std::vector<std::string> tokens;
};

}  // namespace

Netlist parse_snl(const std::string& text) {
  // Pass 1: tokenize and assign signal ids in statement order.
  std::vector<Statement> statements;
  std::unordered_map<std::string, SignalId> ids;
  {
    std::istringstream is(text);
    std::string line;
    std::size_t line_no = 0;
    SignalId next_id = 0;
    while (std::getline(is, line)) {
      ++line_no;
      if (auto pos = line.find('#'); pos != std::string::npos) line.resize(pos);
      std::istringstream ls(line);
      Statement st;
      st.line_no = line_no;
      std::string tok;
      while (ls >> tok) st.tokens.push_back(tok);
      if (st.tokens.empty()) continue;
      const std::string& verb = st.tokens[0];
      if (verb == "input" || verb == "const" || verb == "gate" || verb == "reg") {
        require(st.tokens.size() >= 2, "parse_snl line " +
                                           std::to_string(line_no) +
                                           ": missing signal id");
        require(!ids.contains(st.tokens[1]),
                "parse_snl line " + std::to_string(line_no) + ": duplicate id '" +
                    st.tokens[1] + "'");
        ids[st.tokens[1]] = next_id++;
      }
      statements.push_back(std::move(st));
    }
  }

  auto resolve = [&ids](const std::string& name, std::size_t line_no) {
    auto it = ids.find(name);
    require(it != ids.end(), "parse_snl line " + std::to_string(line_no) +
                                 ": unknown signal '" + name + "'");
    return it->second;
  };
  auto to_u32 = [](const std::string& s, std::size_t line_no) {
    try {
      return static_cast<std::uint32_t>(std::stoul(s));
    } catch (const std::exception&) {
      throw common::Error("parse_snl line " + std::to_string(line_no) +
                          ": expected number, got '" + s + "'");
    }
  };

  // Pass 2: build. Registers get placeholders first so they may reference
  // later statements.
  Netlist nl;
  std::vector<std::pair<SignalId, Statement>> pending_regs;
  for (const Statement& st : statements) {
    const auto& t = st.tokens;
    const std::string& verb = t[0];
    if (verb == "input") {
      require(t.size() >= 3, "parse_snl line " + std::to_string(st.line_no) +
                                 ": input needs a role");
      if (t[2] == "control") {
        nl.add_input(InputRole::kControl, t[1]);
      } else if (t[2] == "random") {
        nl.add_input(InputRole::kRandom, t[1]);
      } else if (t[2] == "share") {
        require(t.size() == 6, "parse_snl line " + std::to_string(st.line_no) +
                                   ": share needs secret/share/bit");
        nl.add_input(InputRole::kShare, t[1],
                     ShareLabel{to_u32(t[3], st.line_no), to_u32(t[4], st.line_no),
                                to_u32(t[5], st.line_no)});
      } else {
        throw common::Error("parse_snl line " + std::to_string(st.line_no) +
                            ": unknown input role '" + t[2] + "'");
      }
    } else if (verb == "const") {
      require(t.size() == 3 && (t[2] == "0" || t[2] == "1"),
              "parse_snl line " + std::to_string(st.line_no) +
                  ": const needs 0 or 1");
      nl.constant(t[2] == "1");
    } else if (verb == "gate") {
      require(t.size() >= 3, "parse_snl line " + std::to_string(st.line_no) +
                                 ": gate needs a kind");
      const GateKind k = kind_from_name(t[2], st.line_no);
      const std::size_t arity = gate_arity(k);
      require(t.size() == 3 + arity, "parse_snl line " +
                                         std::to_string(st.line_no) +
                                         ": wrong operand count");
      SignalId a = resolve(t[3], st.line_no);
      SignalId b = arity >= 2 ? resolve(t[4], st.line_no) : kNoSignal;
      SignalId c = arity >= 3 ? resolve(t[5], st.line_no) : kNoSignal;
      nl.add_gate(k, a, b, c);
    } else if (verb == "reg") {
      require(t.size() == 3, "parse_snl line " + std::to_string(st.line_no) +
                                 ": reg needs one operand");
      const SignalId r = nl.make_reg_placeholder();
      pending_regs.emplace_back(r, st);
    } else if (verb == "output") {
      require(t.size() == 3, "parse_snl line " + std::to_string(st.line_no) +
                                 ": output needs name and signal");
      nl.add_output(t[1], resolve(t[2], st.line_no));
    } else if (verb == "state") {
      require(t.size() >= 3, "parse_snl line " + std::to_string(st.line_no) +
                                 ": state needs signal and role");
      const SignalId reg = resolve(t[1], st.line_no);
      if (t[2] == "public") {
        nl.annotate_register(reg, StateRole::kPublic);
      } else if (t[2] == "share") {
        require(t.size() == 6, "parse_snl line " + std::to_string(st.line_no) +
                                   ": state share needs group/share/bit");
        nl.annotate_register(
            reg, StateRole::kShare,
            ShareLabel{to_u32(t[3], st.line_no), to_u32(t[4], st.line_no),
                       to_u32(t[5], st.line_no)});
      } else {
        throw common::Error("parse_snl line " + std::to_string(st.line_no) +
                            ": unknown state role '" + t[2] + "'");
      }
    } else if (verb == "stategroup" || verb == "secretgroup") {
      require(t.size() >= 3, "parse_snl line " + std::to_string(st.line_no) +
                                 ": " + verb + " needs group and name");
      std::string full = t[2];
      for (std::size_t i = 3; i < t.size(); ++i) full += " " + t[i];
      if (verb == "stategroup")
        nl.set_state_group_name(to_u32(t[1], st.line_no), full);
      else
        nl.set_secret_group_name(to_u32(t[1], st.line_no), full);
    } else if (verb == "name") {
      require(t.size() >= 3, "parse_snl line " + std::to_string(st.line_no) +
                                 ": name needs signal and string");
      std::string full = t[2];
      for (std::size_t i = 3; i < t.size(); ++i) full += " " + t[i];
      nl.name_signal(resolve(t[1], st.line_no), full);
    } else {
      throw common::Error("parse_snl line " + std::to_string(st.line_no) +
                          ": unknown statement '" + verb + "'");
    }
  }
  for (const auto& [reg_id, st] : pending_regs)
    nl.connect_reg(reg_id, resolve(st.tokens[2], st.line_no));

  nl.validate();
  return nl;
}

}  // namespace sca::netlist
