// A small line-based text format ("SNL", simple netlist) for persisting and
// exchanging netlists, with a lossless writer/parser pair.
//
// Grammar (one statement per line, '#' starts a comment):
//   input   <id> control
//   input   <id> random
//   input   <id> share <secret> <share> <bit>
//   const   <id> 0|1
//   gate    <id> <KIND> <operand-id>...       KIND in {BUF,NOT,AND,NAND,OR,
//                                              NOR,XOR,XNOR,MUX}
//   reg     <id> <d-operand-id>               d may reference a later id
//   output  <name> <id>
//   name    <id> <string>                     optional debug name
//   state   <id> public                       state-register annotation
//   state   <id> share <group> <share> <bit>  (slice-extraction cut labels)
//   stategroup  <group> <name>                display name of a state group
//   secretgroup <group> <name>                display name of a secret group
// Ids are arbitrary identifiers; statement order defines signal order, and
// only registers may reference ids defined later (feedback).
#pragma once

#include <string>

#include "src/netlist/ir.hpp"

namespace sca::netlist {

/// Serializes `nl` to SNL text.
std::string write_snl(const Netlist& nl);

/// Parses SNL text into a netlist. Throws sca::common::Error with a line
/// number on malformed input.
Netlist parse_snl(const std::string& text);

}  // namespace sca::netlist
