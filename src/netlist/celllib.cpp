#include "src/netlist/celllib.hpp"

#include <sstream>

#include "src/common/check.hpp"

namespace sca::netlist {

using common::require;

const CellLibrary& CellLibrary::nangate45() {
  static const CellLibrary lib = [] {
    CellLibrary l;
    // Areas from the NanGate 45 nm Open Cell Library datasheet (X1 drive).
    // The GE unit below is NAND2_X1 = 0.798 um^2.
    auto add = [&l](const char* name, GateKind fn, double area) {
      l.cells_[name] = Cell{name, fn, area};
    };
    add("INV_X1", GateKind::kNot, 0.532);
    add("BUF_X1", GateKind::kBuf, 0.798);
    add("AND2_X1", GateKind::kAnd, 1.064);
    add("NAND2_X1", GateKind::kNand, 0.798);
    add("OR2_X1", GateKind::kOr, 1.064);
    add("NOR2_X1", GateKind::kNor, 0.798);
    add("XOR2_X1", GateKind::kXor, 1.596);
    add("XNOR2_X1", GateKind::kXnor, 1.596);
    add("MUX2_X1", GateKind::kMux, 1.862);
    add("DFF_X1", GateKind::kReg, 4.522);
    return l;
  }();
  return lib;
}

const Cell& CellLibrary::cell_for(GateKind kind) const {
  for (const auto& [name, cell] : cells_)
    if (cell.function == kind) return cell;
  require(false, std::string("CellLibrary: no cell implements ") +
                     std::string(gate_kind_name(kind)));
  throw common::Error("unreachable");
}

double CellLibrary::nand2_area() const {
  return cell_for(GateKind::kNand).area_um2;
}

AreaReport map_and_report(const Netlist& nl, const CellLibrary& lib) {
  AreaReport report;
  for (SignalId id = 0; id < nl.size(); ++id) {
    const GateKind k = nl.kind(id);
    switch (k) {
      case GateKind::kInput:
      case GateKind::kConst0:
      case GateKind::kConst1:
        continue;
      default:
        break;
    }
    const Cell& cell = lib.cell_for(k);
    report.cell_counts[cell.name] += 1;
    report.total_area_um2 += cell.area_um2;
    if (k == GateKind::kReg)
      report.sequential_cells += 1;
    else
      report.combinational_cells += 1;
  }
  report.gate_equivalents = report.total_area_um2 / lib.nand2_area();
  return report;
}

std::string to_string(const AreaReport& report) {
  std::ostringstream os;
  os << "cell        count\n";
  os << "----------  -----\n";
  for (const auto& [name, count] : report.cell_counts) {
    os << name;
    for (std::size_t i = name.size(); i < 12; ++i) os << ' ';
    os << count << "\n";
  }
  os << "combinational cells: " << report.combinational_cells << "\n";
  os << "sequential cells:    " << report.sequential_cells << "\n";
  os << "total area:          " << report.total_area_um2 << " um^2\n";
  os << "gate equivalents:    " << report.gate_equivalents << " GE\n";
  return os.str();
}

}  // namespace sca::netlist
