// Standard-cell library abstraction and area reporting.
//
// The paper synthesizes to the NanGate 45 nm open cell library. Our gadget
// builders already emit the hand-structured gates hierarchical synthesis
// preserves, so technology mapping is a 1:1 function-to-cell assignment; the
// value of this module is the cost reporting (gate-equivalents), matching how
// the original CHES 2018 paper reports implementation cost.
#pragma once

#include <map>
#include <string>

#include "src/netlist/ir.hpp"

namespace sca::netlist {

/// One library cell: a name, the gate function it implements, and its area.
struct Cell {
  std::string name;       ///< e.g. "NAND2_X1"
  GateKind function;      ///< gate kind it implements
  double area_um2 = 0.0;  ///< silicon area
};

class CellLibrary {
 public:
  /// A NanGate 45 nm-like library with one X1 cell per gate function.
  static const CellLibrary& nangate45();

  /// Cell implementing the given function; throws if the library lacks one.
  const Cell& cell_for(GateKind kind) const;

  /// Area of the 2-input NAND, the unit of the gate-equivalent (GE) metric.
  double nand2_area() const;

  const std::map<std::string, Cell>& cells() const { return cells_; }

 private:
  std::map<std::string, Cell> cells_;
};

/// Area summary of a mapped netlist.
struct AreaReport {
  std::map<std::string, std::size_t> cell_counts;  ///< instances per cell name
  double total_area_um2 = 0.0;
  double gate_equivalents = 0.0;
  std::size_t sequential_cells = 0;
  std::size_t combinational_cells = 0;
};

/// Maps every gate of `nl` onto `lib` 1:1 and accumulates cost. Inputs and
/// constants are free (they map to ports / tie cells outside our model).
AreaReport map_and_report(const Netlist& nl, const CellLibrary& lib);

/// Renders the report as an aligned text table.
std::string to_string(const AreaReport& report);

}  // namespace sca::netlist
