#include "src/netlist/cone.hpp"

#include <algorithm>
#include <limits>

#include "src/common/check.hpp"

namespace sca::netlist {

using common::DynamicBitset;

namespace {

bool is_stable_kind(GateKind k) {
  return k == GateKind::kInput || k == GateKind::kReg;
}

bool is_const_kind(GateKind k) {
  return k == GateKind::kConst0 || k == GateKind::kConst1;
}

}  // namespace

StableSupport::StableSupport(const Netlist& nl) : nl_(&nl) {
  const std::size_t n = nl.size();
  stable_index_.assign(n, std::numeric_limits<std::size_t>::max());
  for (SignalId id = 0; id < n; ++id) {
    if (is_stable_kind(nl.kind(id))) {
      stable_index_[id] = stable_points_.size();
      stable_points_.push_back(id);
    }
  }
  const std::size_t num_stable = stable_points_.size();
  support_.assign(n, DynamicBitset(num_stable));
  // Combinational gates only reference earlier ids (validated invariant), so
  // a single forward pass suffices.
  for (SignalId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    if (is_stable_kind(g.kind)) {
      support_[id].set(stable_index_[id]);
      continue;
    }
    if (is_const_kind(g.kind)) continue;
    const std::size_t arity = gate_arity(g.kind);
    for (std::size_t i = 0; i < arity; ++i) support_[id] |= support_[g.fanin[i]];
  }
}

std::size_t StableSupport::stable_index(SignalId signal) const {
  SCA_ASSERT(signal < stable_index_.size(), "stable_index: signal out of range");
  const std::size_t idx = stable_index_[signal];
  common::require(idx != std::numeric_limits<std::size_t>::max(),
                  "stable_index: signal is not a stable point");
  return idx;
}

bool StableSupport::is_stable(SignalId signal) const {
  SCA_ASSERT(signal < stable_index_.size(), "is_stable: signal out of range");
  return stable_index_[signal] != std::numeric_limits<std::size_t>::max();
}

const DynamicBitset& StableSupport::support(SignalId signal) const {
  SCA_ASSERT(signal < support_.size(), "support: signal out of range");
  return support_[signal];
}

std::vector<SignalId> combinational_cone(const Netlist& nl, SignalId signal) {
  std::vector<SignalId> cone;
  std::vector<SignalId> stack = {signal};
  std::vector<bool> seen(nl.size(), false);
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = true;
    cone.push_back(id);
    const Gate& g = nl.gate(id);
    // Do not cross stable boundaries except at the probed signal itself.
    if (id != signal && (is_stable_kind(g.kind) || is_const_kind(g.kind)))
      continue;
    if (is_const_kind(g.kind)) continue;
    if (g.kind == GateKind::kInput) continue;
    if (g.kind == GateKind::kReg && id == signal) continue;  // stop at D
    const std::size_t arity = gate_arity(g.kind);
    for (std::size_t i = 0; i < arity; ++i) stack.push_back(g.fanin[i]);
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

}  // namespace sca::netlist
