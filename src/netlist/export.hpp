// Netlist exporters: Graphviz DOT, structural Verilog, and JSON.
//
// DOT regenerates the paper's architecture figures (Fig. 1b/1c/3) from the
// actual built circuits; structural Verilog lets the designs be taken to a
// real HDL flow (e.g. to re-run the original PROLEAD on them); JSON feeds
// external tooling.
#pragma once

#include <string>

#include "src/netlist/ir.hpp"

namespace sca::netlist {

/// Graphviz DOT rendering. Inputs are sources on the left, registers are
/// boxes, outputs are sinks. `max_gates` guards against accidentally dumping
/// a full AES core (0 = no limit).
std::string to_dot(const Netlist& nl, const std::string& graph_name = "netlist",
                   std::size_t max_gates = 0);

/// Structural Verilog-2001 with one `assign`/instance per gate and a single
/// posedge-clocked always block for the registers.
std::string to_verilog(const Netlist& nl, const std::string& module_name);

/// JSON dump: gates, inputs with roles/labels, outputs, names.
std::string to_json(const Netlist& nl);

}  // namespace sca::netlist
