// Gate-level netlist intermediate representation.
//
// This is the circuit model the whole system revolves around. It matches the
// information content a probing evaluation tool (PROLEAD, SILVER, ...) reads
// from a synthesized Verilog netlist:
//   - combinational cells with Boolean functions,
//   - D flip-flops (one global implicit clock, synchronous, init 0),
//   - primary inputs labeled with their security role (share of a secret,
//     fresh randomness, public control),
//   - named primary outputs.
//
// Signals are identified by dense 32-bit ids; signal id == index of the gate
// driving it, so the netlist is an SSA-like gate array. Hierarchical names
// ("sbox.kron.G7.cross0") are attached for reporting; the evaluation engine
// uses them to localize leakage the way the paper points at gate G7.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sca::netlist {

using SignalId = std::uint32_t;
inline constexpr SignalId kNoSignal = 0xFFFFFFFFu;

/// Cell/function of a gate. kInput and kReg are the "stable" signal sources
/// of the robust probing model; everything else is combinational.
enum class GateKind : std::uint8_t {
  kConst0,
  kConst1,
  kInput,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux,  ///< fanin = {select, a(sel=0), b(sel=1)}
  kReg,  ///< D flip-flop; fanin[0] = D
};

/// Number of fanin operands a gate kind takes.
constexpr std::size_t gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0:
    case GateKind::kConst1:
    case GateKind::kInput:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kReg:
      return 1;
    case GateKind::kMux:
      return 3;
    default:
      return 2;
  }
}

/// Short mnemonic ("AND", "DFF", ...) for exports and reports.
std::string_view gate_kind_name(GateKind kind);

/// Security role of a primary input, as declared to the evaluation engine.
enum class InputRole : std::uint8_t {
  kShare,    ///< one bit of one Boolean share of a secret
  kRandom,   ///< fresh mask bit, redrawn uniformly every clock cycle
  kControl,  ///< public control/constant input
};

/// Labeling of a share input: bit `bit` of share `share` of secret group
/// `secret`. Secret groups number the independent secrets (e.g. the 8-bit
/// Sbox input is one group with bits 0..7 and shares 0..d).
struct ShareLabel {
  std::uint32_t secret = 0;
  std::uint32_t share = 0;
  std::uint32_t bit = 0;
};

struct Gate {
  GateKind kind = GateKind::kConst0;
  std::array<SignalId, 3> fanin = {kNoSignal, kNoSignal, kNoSignal};
};

/// Metadata describing one primary input.
struct InputInfo {
  SignalId signal = kNoSignal;
  InputRole role = InputRole::kControl;
  ShareLabel share;  ///< valid iff role == kShare
};

/// A named primary output.
struct OutputInfo {
  SignalId signal = kNoSignal;
  std::string name;
};

/// Security role of an *architectural state register*, declared by the
/// builder so slice extraction (netlist/slice.hpp) can cut feedback at the
/// register and re-introduce its output as a slice input with the right
/// lint label.
enum class StateRole : std::uint8_t {
  kShare,   ///< one bit of one Boolean share of an annotation group
  kPublic,  ///< public/deterministic control state (e.g. an FSM counter)
};

/// Annotation of one state register. For kShare, `label.secret` numbers the
/// *annotation group* (an architectural state word, e.g. AES state byte 3) —
/// a namespace separate from the input secret groups; slice extraction maps
/// annotation groups onto fresh secret groups after the input ones.
struct StateAnnotation {
  StateRole role = StateRole::kPublic;
  ShareLabel label;  ///< valid iff role == kShare
};

class Netlist {
 public:
  Netlist() = default;

  // --- construction ----------------------------------------------------------

  /// Adds a constant driver.
  SignalId constant(bool value);

  /// Adds a primary input with the given role; share inputs carry a label.
  SignalId add_input(InputRole role, std::string name,
                     ShareLabel label = ShareLabel{});

  /// Adds a combinational gate or register. Arity is checked against `kind`,
  /// and fanins must already exist (no forward references except via
  /// make_reg_placeholder / connect_reg below).
  SignalId add_gate(GateKind kind, SignalId a = kNoSignal,
                    SignalId b = kNoSignal, SignalId c = kNoSignal);

  // Convenience builders.
  SignalId buf(SignalId a) { return add_gate(GateKind::kBuf, a); }
  SignalId not_(SignalId a) { return add_gate(GateKind::kNot, a); }
  SignalId and_(SignalId a, SignalId b) { return add_gate(GateKind::kAnd, a, b); }
  SignalId nand_(SignalId a, SignalId b) { return add_gate(GateKind::kNand, a, b); }
  SignalId or_(SignalId a, SignalId b) { return add_gate(GateKind::kOr, a, b); }
  SignalId nor_(SignalId a, SignalId b) { return add_gate(GateKind::kNor, a, b); }
  SignalId xor_(SignalId a, SignalId b) { return add_gate(GateKind::kXor, a, b); }
  SignalId xnor_(SignalId a, SignalId b) { return add_gate(GateKind::kXnor, a, b); }
  SignalId mux(SignalId sel, SignalId a0, SignalId a1) {
    return add_gate(GateKind::kMux, sel, a0, a1);
  }
  SignalId reg(SignalId d) { return add_gate(GateKind::kReg, d); }

  /// Adds a register whose D input is connected later (for feedback loops,
  /// e.g. FSM state). Must be resolved with connect_reg before validate().
  SignalId make_reg_placeholder();
  void connect_reg(SignalId reg_signal, SignalId d);

  /// Declares a named primary output.
  void add_output(std::string name, SignalId signal);

  // --- state annotations ------------------------------------------------------

  /// Declares the security role of a state register (slice-extraction cut
  /// metadata). `label` is required for StateRole::kShare and ignored for
  /// kPublic; re-annotating a register overwrites the previous annotation.
  void annotate_register(SignalId reg, StateRole role,
                         ShareLabel label = ShareLabel{});

  /// The annotation of a register, or nullptr when none was declared.
  const StateAnnotation* register_annotation(SignalId reg) const;

  /// Registers with an annotation, ascending by signal id.
  std::vector<SignalId> annotated_registers() const;

  /// Number of annotation groups declared by share-state annotations (max
  /// group + 1), mirroring secret_group_count() for register state.
  std::uint32_t state_group_count() const;

  /// Attaches a display name to an annotation group ("aes.st3"); findings
  /// and reports use it instead of the bare group number.
  void set_state_group_name(std::uint32_t group, std::string name);
  /// The attached name, or "g<group>" when none was set.
  std::string state_group_name(std::uint32_t group) const;

  /// Attaches a display name to an input secret group. Slice extraction
  /// uses this to carry annotation-group names onto the fresh secret groups
  /// it creates for cut registers.
  void set_secret_group_name(std::uint32_t secret, std::string name);
  /// The attached name, or the conventional "s<secret>" when none was set.
  std::string secret_group_name(std::uint32_t secret) const;

  /// All explicitly named state/secret groups, ascending by group (for
  /// lossless serialization).
  std::vector<std::pair<std::uint32_t, std::string>> named_state_groups() const;
  std::vector<std::pair<std::uint32_t, std::string>> named_secret_groups() const;

  // --- naming / hierarchy -----------------------------------------------------

  /// Pushes/pops a hierarchical scope; names given to signals while a scope
  /// is active are prefixed with "scope1.scope2.".
  void push_scope(std::string_view scope);
  void pop_scope();

  /// Current scope prefix including trailing '.' (empty at top level).
  std::string scope_prefix() const;

  /// Attaches a debug name to a signal (prefixed with the current scope).
  void name_signal(SignalId signal, std::string_view name);

  /// Best-effort name: explicit name, or "<kind>#<id>".
  std::string signal_name(SignalId signal) const;

  /// The explicit name, if any was attached.
  std::optional<std::string> explicit_name(SignalId signal) const;

  // --- inspection ------------------------------------------------------------

  std::size_t size() const { return gates_.size(); }
  const Gate& gate(SignalId id) const;
  GateKind kind(SignalId id) const { return gate(id).kind; }

  const std::vector<InputInfo>& inputs() const { return inputs_; }
  const std::vector<OutputInfo>& outputs() const { return outputs_; }

  /// All register signals, ascending.
  std::vector<SignalId> registers() const;

  /// Count of gates of a given kind.
  std::size_t count(GateKind kind) const;

  /// Number of combinational cells (everything except inputs/consts/regs).
  std::size_t combinational_count() const;

  /// Number of distinct secret groups declared by share inputs (max+1).
  std::uint32_t secret_group_count() const;

  /// Number of shares declared for a secret group (max share index + 1).
  std::uint32_t share_count(std::uint32_t secret) const;

  /// Number of random inputs.
  std::size_t random_input_count() const;

  // --- structural checks / ordering -------------------------------------------

  /// Validates the netlist: all fanins resolved and in range, no placeholder
  /// registers left dangling, no combinational cycles. Throws on violation.
  void validate() const;

  /// Topological order of all signals where registers and inputs come before
  /// any combinational gate that reads them (registers read their D through
  /// the *previous* cycle, so they are sources in the combinational DAG).
  /// Throws if a combinational cycle exists.
  std::vector<SignalId> topological_order() const;

 private:
  std::vector<Gate> gates_;
  std::vector<InputInfo> inputs_;
  std::vector<OutputInfo> outputs_;
  std::vector<std::string> scopes_;
  std::unordered_map<SignalId, std::string> names_;
  std::vector<bool> reg_placeholder_;  // parallels gates_; true = unconnected
  std::unordered_map<SignalId, StateAnnotation> state_annotations_;
  std::unordered_map<std::uint32_t, std::string> state_group_names_;
  std::unordered_map<std::uint32_t, std::string> secret_group_names_;
};

}  // namespace sca::netlist
