// Combinational fan-in cone analysis over a netlist.
//
// The robust (glitch-extended) probing model says: a probe on a combinational
// signal observes, due to glitches, *all stable signals* feeding it through
// combinational logic — stable signals being register outputs and primary
// inputs. This module computes that support set for every signal once, as
// bitsets over a dense index of "stable points", which the evaluation engine
// and exact verifier then consume.
#pragma once

#include <vector>

#include "src/common/dynamic_bitset.hpp"
#include "src/netlist/ir.hpp"

namespace sca::netlist {

class StableSupport {
 public:
  /// Precomputes supports for every signal of `nl`. The netlist must outlive
  /// this object and must not change afterwards.
  explicit StableSupport(const Netlist& nl);

  /// The stable points (inputs and registers), ascending by signal id. Bit i
  /// of every support bitset refers to stable_points()[i].
  const std::vector<SignalId>& stable_points() const { return stable_points_; }

  /// Dense index of a stable point; throws if `signal` is not stable.
  std::size_t stable_index(SignalId signal) const;

  /// True if the signal is an input or register output.
  bool is_stable(SignalId signal) const;

  /// The set of stable points in the combinational fan-in cone of `signal`
  /// (for a stable signal: the singleton of itself; for constants: empty).
  const common::DynamicBitset& support(SignalId signal) const;

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::vector<SignalId> stable_points_;
  std::vector<std::size_t> stable_index_;  // per signal; SIZE_MAX if not stable
  std::vector<common::DynamicBitset> support_;
};

/// All signals in the transitive combinational fan-in of `signal`, including
/// itself, excluding anything behind a register boundary. Useful for
/// extracting the combinational cloud a probe "sees" when reporting leaks.
std::vector<SignalId> combinational_cone(const Netlist& nl, SignalId signal);

}  // namespace sca::netlist
