#include "src/netlist/slice.hpp"

#include <algorithm>
#include <string>

#include "src/common/check.hpp"
#include "src/netlist/cone.hpp"

namespace sca::netlist {

using common::require;

namespace {

// Per-signal taint fixpoint: does any share (secret) / any random input
// reach the signal through combinational logic *and registers*? Registers
// forward their D taint, so the computation iterates to a fixpoint (the
// union is monotone; feedback saturates in a few passes).
struct Taint {
  std::vector<bool> secret;
  std::vector<bool> random;
};

Taint compute_taint(const Netlist& nl) {
  Taint t;
  t.secret.assign(nl.size(), false);
  t.random.assign(nl.size(), false);
  for (const InputInfo& in : nl.inputs()) {
    if (in.role == InputRole::kShare) t.secret[in.signal] = true;
    if (in.role == InputRole::kRandom) t.random[in.signal] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (SignalId id = 0; id < nl.size(); ++id) {
      const Gate& g = nl.gate(id);
      if (g.kind == GateKind::kInput || g.kind == GateKind::kConst0 ||
          g.kind == GateKind::kConst1)
        continue;
      bool s = t.secret[id], r = t.random[id];
      for (std::size_t k = 0; k < gate_arity(g.kind); ++k) {
        s = s || t.secret[g.fanin[k]];
        r = r || t.random[g.fanin[k]];
      }
      if (s != t.secret[id] || r != t.random[id]) {
        t.secret[id] = s;
        t.random[id] = r;
        changed = true;
      }
    }
  }
  return t;
}

// Register dependency graph: adj[i] = dense indices of the registers in the
// combinational support of register regs[i]'s D input.
struct RegGraph {
  std::vector<SignalId> regs;
  std::vector<std::size_t> index_of;  // per signal id, SIZE_MAX = not a reg
  std::vector<std::vector<std::size_t>> adj;
};

RegGraph build_reg_graph(const Netlist& nl, const StableSupport& supports) {
  RegGraph g;
  g.regs = nl.registers();
  g.index_of.assign(nl.size(), SIZE_MAX);
  for (std::size_t i = 0; i < g.regs.size(); ++i) g.index_of[g.regs[i]] = i;
  g.adj.resize(g.regs.size());
  for (std::size_t i = 0; i < g.regs.size(); ++i) {
    const SignalId d = nl.gate(g.regs[i]).fanin[0];
    for (std::size_t idx : supports.support(d).set_bits()) {
      const SignalId src = supports.stable_points()[idx];
      if (nl.kind(src) == GateKind::kReg) g.adj[i].push_back(g.index_of[src]);
    }
  }
  return g;
}

// Iterative Tarjan SCC; on_cycle[i] = register i sits on a feedback cycle
// (non-trivial SCC, or a self-loop).
std::vector<bool> registers_on_cycles(const RegGraph& g) {
  const std::size_t n = g.regs.size();
  std::vector<std::size_t> index(n, SIZE_MAX), lowlink(n, 0), scc(n, SIZE_MAX);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> scc_size;
  std::vector<std::size_t> tarjan_stack;
  std::size_t counter = 0;

  struct Frame {
    std::size_t v;
    std::size_t child = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != SIZE_MAX) continue;
    std::vector<Frame> frames;
    frames.push_back({root});
    index[root] = lowlink[root] = counter++;
    tarjan_stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < g.adj[f.v].size()) {
        const std::size_t w = g.adj[f.v][f.child++];
        if (index[w] == SIZE_MAX) {
          index[w] = lowlink[w] = counter++;
          tarjan_stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          const std::size_t id = scc_size.size();
          std::size_t size = 0;
          std::size_t w;
          do {
            w = tarjan_stack.back();
            tarjan_stack.pop_back();
            on_stack[w] = false;
            scc[w] = id;
            ++size;
          } while (w != f.v);
          scc_size.push_back(size);
        }
        const std::size_t v = f.v;
        frames.pop_back();
        if (!frames.empty())
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }

  std::vector<bool> on_cycle(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (scc_size[scc[i]] > 1) on_cycle[i] = true;
    for (const std::size_t w : g.adj[i])
      if (w == i) on_cycle[i] = true;
  }
  return on_cycle;
}

// Verifies the register graph minus the cut nodes is acyclic; on failure
// reports the remaining cycle — it necessarily runs through tainted,
// unannotated registers (every candidate on a cycle was cut).
void require_residual_acyclic(const Netlist& nl, const RegGraph& g,
                              const Taint& taint,
                              const std::vector<bool>& cut) {
  const std::size_t n = g.regs.size();
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  struct Frame {
    std::size_t v;
    std::size_t child = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (cut[root] || color[root] != Color::kWhite) continue;
    std::vector<Frame> frames;
    frames.push_back({root});
    color[root] = Color::kGray;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < g.adj[f.v].size()) {
        const std::size_t w = g.adj[f.v][f.child++];
        if (cut[w]) continue;
        if (color[w] == Color::kGray) {
          std::string path;
          bool in_cycle = false;
          for (const Frame& fr : frames) {
            if (fr.v == w) in_cycle = true;
            if (in_cycle) path += nl.signal_name(g.regs[fr.v]) + " -> ";
          }
          path += nl.signal_name(g.regs[w]);
          const SignalId reg = g.regs[w];
          throw common::Error(
              "extract_slice: feedback remains after cutting all annotated/"
              "public state registers: " + path + " — register " +
              nl.signal_name(reg) + " carries " +
              (taint.secret[reg] ? "secret" : "random") +
              " taint; declare its role with annotate_register");
        }
        if (color[w] == Color::kWhite) {
          color[w] = Color::kGray;
          frames.push_back({w});
        }
      } else {
        color[f.v] = Color::kBlack;
        frames.pop_back();
      }
    }
  }
}

}  // namespace

SignalId Slice::next_of(SignalId reg) const {
  for (const SliceCut& c : cuts)
    if (c.reg == reg) return c.next;
  return kNoSignal;
}

Slice extract_slice(const Netlist& nl, const SliceOptions& options) {
  nl.validate();
  const StableSupport supports(nl);
  const RegGraph graph = build_reg_graph(nl, supports);
  const std::vector<bool> on_cycle = registers_on_cycles(graph);
  const Taint taint = compute_taint(nl);

  // --- cut selection ----------------------------------------------------------
  // Cut every register that sits on a feedback cycle and is a candidate:
  // annotated (share or public), or inferred public (neither secret nor
  // random taint reaches it — its content is a deterministic function of
  // public control, so a control input models it exactly). Non-candidate
  // registers may share an SCC with the state bank (the AES Sbox pipeline
  // stages do: state -> Sbox -> state); they stay registers, because
  // cutting the architectural state alone already breaks every cycle —
  // verified below. A cycle that survives runs through unannotated secret-
  // or random-holding feedback state, which cannot be soundly re-labeled
  // as an independent input, so it is reported as an error.
  std::vector<bool> cut(graph.regs.size(), false);
  for (std::size_t i = 0; i < graph.regs.size(); ++i) {
    if (!on_cycle[i]) continue;
    const SignalId reg = graph.regs[i];
    const bool inferred_public = !taint.secret[reg] && !taint.random[reg];
    cut[i] = nl.register_annotation(reg) != nullptr || inferred_public;
  }
  require_residual_acyclic(nl, graph, taint, cut);

  for (const auto& [reg, value] : options.pin) {
    require(reg < nl.size() && graph.index_of[reg] != SIZE_MAX &&
                cut[graph.index_of[reg]],
            "extract_slice: pinned register " +
                (reg < nl.size() ? nl.signal_name(reg) : std::to_string(reg)) +
                " is not in the cut set");
  }

  // --- rebuild ---------------------------------------------------------------
  Slice out;
  out.first_transfer_group = nl.secret_group_count();
  out.map.assign(nl.size(), kNoSignal);

  std::unordered_map<SignalId, const InputInfo*> input_info;
  for (const InputInfo& in : nl.inputs()) input_info[in.signal] = &in;

  // Pass 1 in id order: combinational fanins always precede their gate, so
  // everything except non-cut register D connections resolves immediately.
  std::vector<SignalId> deferred_regs;
  for (SignalId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    SignalId mapped = kNoSignal;
    switch (g.kind) {
      case GateKind::kInput: {
        const InputInfo* info = input_info.at(id);
        mapped = out.nl.add_input(info->role, nl.signal_name(id), info->share);
        break;
      }
      case GateKind::kConst0:
      case GateKind::kConst1:
        mapped = out.nl.constant(g.kind == GateKind::kConst1);
        break;
      case GateKind::kReg: {
        const std::size_t ri = graph.index_of[id];
        if (!cut[ri]) {
          mapped = out.nl.make_reg_placeholder();
          if (auto name = nl.explicit_name(id))
            out.nl.name_signal(mapped, *name);
          deferred_regs.push_back(id);
          break;
        }
        SliceCut c;
        c.reg = id;
        const StateAnnotation* annotation = nl.register_annotation(id);
        if (annotation != nullptr && annotation->role == StateRole::kShare) {
          c.role = InputRole::kShare;
          c.label = annotation->label;
          c.label.secret += out.first_transfer_group;
        }
        if (const auto it = options.pin.find(id); it != options.pin.end()) {
          c.pinned = true;
          mapped = out.nl.constant(it->second);
        } else {
          mapped = out.nl.add_input(c.role, nl.signal_name(id), c.label);
          c.input = mapped;
          out.held_inputs.push_back(mapped);
        }
        out.cuts.push_back(c);
        break;
      }
      default: {
        const std::size_t arity = gate_arity(g.kind);
        std::array<SignalId, 3> fan = {kNoSignal, kNoSignal, kNoSignal};
        for (std::size_t k = 0; k < arity; ++k) fan[k] = out.map[g.fanin[k]];
        mapped = out.nl.add_gate(g.kind, fan[0], fan[1], fan[2]);
        if (auto name = nl.explicit_name(id)) out.nl.name_signal(mapped, *name);
        break;
      }
    }
    out.map[id] = mapped;
  }
  // Pass 2: non-cut registers keep their (possibly forward) D connection.
  for (const SignalId id : deferred_regs)
    out.nl.connect_reg(out.map[id], out.map[nl.gate(id).fanin[0]]);
  // Cut registers export their D function as a "next.<name>" output, and
  // record it for stitched re-simulation.
  for (SliceCut& c : out.cuts) {
    c.next = out.map[nl.gate(c.reg).fanin[0]];
    out.nl.add_output("next." + nl.signal_name(c.reg), c.next);
  }
  for (const OutputInfo& o : nl.outputs())
    out.nl.add_output(o.name, out.map[o.signal]);

  // --- label-transfer bookkeeping --------------------------------------------
  for (std::uint32_t g = 0; g < nl.secret_group_count(); ++g)
    out.nl.set_secret_group_name(g, nl.secret_group_name(g));
  for (std::uint32_t g = 0; g < nl.state_group_count(); ++g)
    out.nl.set_secret_group_name(out.first_transfer_group + g,
                                 nl.state_group_name(g));

  out.nl.validate();
  return out;
}

}  // namespace sca::netlist
