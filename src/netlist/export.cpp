#include "src/netlist/export.hpp"

#include <cctype>
#include <sstream>

#include "src/common/check.hpp"

namespace sca::netlist {

namespace {

// Verilog/DOT-safe identifier for a signal.
std::string ident(const Netlist& nl, SignalId id) {
  std::string name;
  if (auto n = nl.explicit_name(id)) {
    name = *n;
    for (char& c : name)
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) c = '_';
    name += "_s" + std::to_string(id);
  } else {
    name = "n" + std::to_string(id);
  }
  return name;
}

}  // namespace

std::string to_dot(const Netlist& nl, const std::string& graph_name,
                   std::size_t max_gates) {
  common::require(max_gates == 0 || nl.size() <= max_gates,
                  "to_dot: netlist exceeds max_gates guard");
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
  for (SignalId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    std::string shape = "ellipse";
    std::string label = std::string(gate_kind_name(g.kind));
    switch (g.kind) {
      case GateKind::kInput:
        shape = "invhouse";
        label = nl.signal_name(id);
        break;
      case GateKind::kReg:
        shape = "box";
        break;
      case GateKind::kConst0:
      case GateKind::kConst1:
        shape = "plaintext";
        break;
      default:
        if (auto n = nl.explicit_name(id)) label += "\\n" + *n;
    }
    os << "  " << ident(nl, id) << " [shape=" << shape << ", label=\"" << label
       << "\"];\n";
    const std::size_t arity = gate_arity(g.kind);
    for (std::size_t i = 0; i < arity; ++i)
      os << "  " << ident(nl, g.fanin[i]) << " -> " << ident(nl, id) << ";\n";
  }
  for (const auto& out : nl.outputs()) {
    os << "  out_" << out.name << " [shape=house, label=\"" << out.name
       << "\"];\n";
    os << "  " << ident(nl, out.signal) << " -> out_" << out.name << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_verilog(const Netlist& nl, const std::string& module_name) {
  std::ostringstream os;
  os << "module " << module_name << " (\n  input wire clk";
  for (const auto& in : nl.inputs()) os << ",\n  input wire " << ident(nl, in.signal);
  for (const auto& out : nl.outputs()) os << ",\n  output wire " << out.name;
  os << "\n);\n\n";

  std::vector<SignalId> regs = nl.registers();
  for (SignalId id = 0; id < nl.size(); ++id) {
    const GateKind k = nl.kind(id);
    if (k == GateKind::kInput) continue;
    os << (k == GateKind::kReg ? "  reg  " : "  wire ") << ident(nl, id) << ";\n";
  }
  os << "\n";

  auto in0 = [&](SignalId id) { return ident(nl, nl.gate(id).fanin[0]); };
  auto in1 = [&](SignalId id) { return ident(nl, nl.gate(id).fanin[1]); };
  auto in2 = [&](SignalId id) { return ident(nl, nl.gate(id).fanin[2]); };

  for (SignalId id = 0; id < nl.size(); ++id) {
    const std::string lhs = ident(nl, id);
    switch (nl.kind(id)) {
      case GateKind::kInput:
      case GateKind::kReg:
        break;
      case GateKind::kConst0:
        os << "  assign " << lhs << " = 1'b0;\n";
        break;
      case GateKind::kConst1:
        os << "  assign " << lhs << " = 1'b1;\n";
        break;
      case GateKind::kBuf:
        os << "  assign " << lhs << " = " << in0(id) << ";\n";
        break;
      case GateKind::kNot:
        os << "  assign " << lhs << " = ~" << in0(id) << ";\n";
        break;
      case GateKind::kAnd:
        os << "  assign " << lhs << " = " << in0(id) << " & " << in1(id) << ";\n";
        break;
      case GateKind::kNand:
        os << "  assign " << lhs << " = ~(" << in0(id) << " & " << in1(id) << ");\n";
        break;
      case GateKind::kOr:
        os << "  assign " << lhs << " = " << in0(id) << " | " << in1(id) << ";\n";
        break;
      case GateKind::kNor:
        os << "  assign " << lhs << " = ~(" << in0(id) << " | " << in1(id) << ");\n";
        break;
      case GateKind::kXor:
        os << "  assign " << lhs << " = " << in0(id) << " ^ " << in1(id) << ";\n";
        break;
      case GateKind::kXnor:
        os << "  assign " << lhs << " = ~(" << in0(id) << " ^ " << in1(id) << ");\n";
        break;
      case GateKind::kMux:
        os << "  assign " << lhs << " = " << in0(id) << " ? " << in2(id) << " : "
           << in1(id) << ";\n";
        break;
    }
  }

  if (!regs.empty()) {
    os << "\n  always @(posedge clk) begin\n";
    for (SignalId r : regs)
      os << "    " << ident(nl, r) << " <= " << in0(r) << ";\n";
    os << "  end\n";
  }

  os << "\n";
  for (const auto& out : nl.outputs())
    os << "  assign " << out.name << " = " << ident(nl, out.signal) << ";\n";
  os << "\nendmodule\n";
  return os.str();
}

std::string to_json(const Netlist& nl) {
  std::ostringstream os;
  os << "{\n  \"gates\": [\n";
  for (SignalId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    os << "    {\"id\": " << id << ", \"kind\": \"" << gate_kind_name(g.kind)
       << "\", \"fanin\": [";
    const std::size_t arity = gate_arity(g.kind);
    for (std::size_t i = 0; i < arity; ++i) {
      if (i) os << ", ";
      os << g.fanin[i];
    }
    os << "]";
    if (auto n = nl.explicit_name(id)) os << ", \"name\": \"" << *n << "\"";
    os << "}" << (id + 1 < nl.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"inputs\": [\n";
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const auto& in = nl.inputs()[i];
    os << "    {\"signal\": " << in.signal << ", \"role\": \""
       << (in.role == InputRole::kShare
               ? "share"
               : in.role == InputRole::kRandom ? "random" : "control")
       << "\"";
    if (in.role == InputRole::kShare)
      os << ", \"secret\": " << in.share.secret << ", \"share\": "
         << in.share.share << ", \"bit\": " << in.share.bit;
    os << "}" << (i + 1 < nl.inputs().size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"outputs\": [\n";
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    const auto& out = nl.outputs()[i];
    os << "    {\"name\": \"" << out.name << "\", \"signal\": " << out.signal
       << "}" << (i + 1 < nl.outputs().size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace sca::netlist
