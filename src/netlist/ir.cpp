#include "src/netlist/ir.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace sca::netlist {

using common::require;

std::string_view gate_kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0: return "CONST0";
    case GateKind::kConst1: return "CONST1";
    case GateKind::kInput:  return "INPUT";
    case GateKind::kBuf:    return "BUF";
    case GateKind::kNot:    return "NOT";
    case GateKind::kAnd:    return "AND";
    case GateKind::kNand:   return "NAND";
    case GateKind::kOr:     return "OR";
    case GateKind::kNor:    return "NOR";
    case GateKind::kXor:    return "XOR";
    case GateKind::kXnor:   return "XNOR";
    case GateKind::kMux:    return "MUX";
    case GateKind::kReg:    return "DFF";
  }
  return "?";
}

SignalId Netlist::constant(bool value) {
  return add_gate(value ? GateKind::kConst1 : GateKind::kConst0);
}

SignalId Netlist::add_input(InputRole role, std::string name, ShareLabel label) {
  const SignalId id = add_gate(GateKind::kInput);
  InputInfo info;
  info.signal = id;
  info.role = role;
  info.share = label;
  inputs_.push_back(info);
  name_signal(id, name);
  return id;
}

SignalId Netlist::add_gate(GateKind kind, SignalId a, SignalId b, SignalId c) {
  const std::array<SignalId, 3> fanin = {a, b, c};
  const std::size_t arity = gate_arity(kind);
  for (std::size_t i = 0; i < 3; ++i) {
    if (i < arity) {
      require(fanin[i] != kNoSignal, "add_gate: missing fanin operand");
      require(fanin[i] < gates_.size(), "add_gate: fanin id out of range");
    } else {
      require(fanin[i] == kNoSignal, "add_gate: too many fanin operands");
    }
  }
  Gate g;
  g.kind = kind;
  g.fanin = fanin;
  gates_.push_back(g);
  reg_placeholder_.push_back(false);
  return static_cast<SignalId>(gates_.size() - 1);
}

SignalId Netlist::make_reg_placeholder() {
  Gate g;
  g.kind = GateKind::kReg;
  gates_.push_back(g);
  reg_placeholder_.push_back(true);
  return static_cast<SignalId>(gates_.size() - 1);
}

void Netlist::connect_reg(SignalId reg_signal, SignalId d) {
  require(reg_signal < gates_.size() && gates_[reg_signal].kind == GateKind::kReg,
          "connect_reg: target is not a register");
  require(reg_placeholder_[reg_signal], "connect_reg: register already connected");
  require(d < gates_.size(), "connect_reg: D fanin out of range");
  gates_[reg_signal].fanin[0] = d;
  reg_placeholder_[reg_signal] = false;
}

void Netlist::add_output(std::string name, SignalId signal) {
  require(signal < gates_.size(), "add_output: signal out of range");
  outputs_.push_back(OutputInfo{signal, std::move(name)});
}

void Netlist::annotate_register(SignalId reg, StateRole role,
                                ShareLabel label) {
  require(reg < gates_.size() && gates_[reg].kind == GateKind::kReg,
          "annotate_register: target is not a register");
  StateAnnotation a;
  a.role = role;
  a.label = role == StateRole::kShare ? label : ShareLabel{};
  state_annotations_[reg] = a;
}

const StateAnnotation* Netlist::register_annotation(SignalId reg) const {
  const auto it = state_annotations_.find(reg);
  return it == state_annotations_.end() ? nullptr : &it->second;
}

std::vector<SignalId> Netlist::annotated_registers() const {
  std::vector<SignalId> out;
  out.reserve(state_annotations_.size());
  for (const auto& [id, annotation] : state_annotations_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::uint32_t Netlist::state_group_count() const {
  std::uint32_t max_group = 0;
  bool any = false;
  for (const auto& [id, annotation] : state_annotations_) {
    if (annotation.role != StateRole::kShare) continue;
    any = true;
    max_group = std::max(max_group, annotation.label.secret);
  }
  return any ? max_group + 1 : 0;
}

void Netlist::set_state_group_name(std::uint32_t group, std::string name) {
  state_group_names_[group] = std::move(name);
}

std::string Netlist::state_group_name(std::uint32_t group) const {
  if (auto it = state_group_names_.find(group); it != state_group_names_.end())
    return it->second;
  return "g" + std::to_string(group);
}

void Netlist::set_secret_group_name(std::uint32_t secret, std::string name) {
  secret_group_names_[secret] = std::move(name);
}

std::string Netlist::secret_group_name(std::uint32_t secret) const {
  if (auto it = secret_group_names_.find(secret);
      it != secret_group_names_.end())
    return it->second;
  return "s" + std::to_string(secret);
}

namespace {
std::vector<std::pair<std::uint32_t, std::string>> sorted_entries(
    const std::unordered_map<std::uint32_t, std::string>& map) {
  std::vector<std::pair<std::uint32_t, std::string>> out(map.begin(), map.end());
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

std::vector<std::pair<std::uint32_t, std::string>> Netlist::named_state_groups()
    const {
  return sorted_entries(state_group_names_);
}

std::vector<std::pair<std::uint32_t, std::string>>
Netlist::named_secret_groups() const {
  return sorted_entries(secret_group_names_);
}

void Netlist::push_scope(std::string_view scope) {
  scopes_.emplace_back(scope);
}

void Netlist::pop_scope() {
  require(!scopes_.empty(), "pop_scope: no scope active");
  scopes_.pop_back();
}

std::string Netlist::scope_prefix() const {
  std::string prefix;
  for (const auto& s : scopes_) {
    prefix += s;
    prefix += '.';
  }
  return prefix;
}

void Netlist::name_signal(SignalId signal, std::string_view name) {
  require(signal < gates_.size(), "name_signal: signal out of range");
  names_[signal] = scope_prefix() + std::string(name);
}

std::string Netlist::signal_name(SignalId signal) const {
  if (auto it = names_.find(signal); it != names_.end()) return it->second;
  return std::string(gate_kind_name(kind(signal))) + "#" + std::to_string(signal);
}

std::optional<std::string> Netlist::explicit_name(SignalId signal) const {
  if (auto it = names_.find(signal); it != names_.end()) return it->second;
  return std::nullopt;
}

const Gate& Netlist::gate(SignalId id) const {
  SCA_ASSERT(id < gates_.size(), "gate id out of range");
  return gates_[id];
}

std::vector<SignalId> Netlist::registers() const {
  std::vector<SignalId> out;
  for (SignalId id = 0; id < gates_.size(); ++id)
    if (gates_[id].kind == GateKind::kReg) out.push_back(id);
  return out;
}

std::size_t Netlist::count(GateKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [kind](const Gate& g) { return g.kind == kind; }));
}

std::size_t Netlist::combinational_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kReg:
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;
      default:
        ++n;
    }
  }
  return n;
}

std::uint32_t Netlist::secret_group_count() const {
  std::uint32_t max_secret = 0;
  bool any = false;
  for (const auto& in : inputs_) {
    if (in.role == InputRole::kShare) {
      any = true;
      max_secret = std::max(max_secret, in.share.secret);
    }
  }
  return any ? max_secret + 1 : 0;
}

std::uint32_t Netlist::share_count(std::uint32_t secret) const {
  std::uint32_t max_share = 0;
  bool any = false;
  for (const auto& in : inputs_) {
    if (in.role == InputRole::kShare && in.share.secret == secret) {
      any = true;
      max_share = std::max(max_share, in.share.share);
    }
  }
  return any ? max_share + 1 : 0;
}

std::size_t Netlist::random_input_count() const {
  return static_cast<std::size_t>(
      std::count_if(inputs_.begin(), inputs_.end(), [](const InputInfo& in) {
        return in.role == InputRole::kRandom;
      }));
}

void Netlist::validate() const {
  for (SignalId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    require(!reg_placeholder_[id],
            "validate: register " + signal_name(id) + " has unconnected D");
    const std::size_t arity = gate_arity(g.kind);
    for (std::size_t i = 0; i < arity; ++i) {
      require(g.fanin[i] != kNoSignal,
              "validate: gate " + signal_name(id) + " missing fanin");
      require(g.fanin[i] < gates_.size(),
              "validate: gate " + signal_name(id) + " fanin out of range");
      // Registers may read forward (feedback); combinational gates were built
      // append-only, so their fanins always precede them. Re-check anyway to
      // catch memory corruption or future builder changes.
      if (g.kind != GateKind::kReg)
        require(g.fanin[i] < id, "validate: combinational forward reference at " +
                                     signal_name(id));
    }
  }
  // Detect combinational cycles (registers break cycles by construction of
  // the check above, but run the full topological sort to be certain).
  (void)topological_order();
}

std::vector<SignalId> Netlist::topological_order() const {
  // Combinational gates only read earlier ids (enforced in validate), so the
  // natural id order is already topological for the combinational DAG;
  // registers and inputs are sources regardless of position. Emit sources
  // first, then combinational gates in id order.
  std::vector<SignalId> order;
  order.reserve(gates_.size());
  for (SignalId id = 0; id < gates_.size(); ++id) {
    const GateKind k = gates_[id].kind;
    if (k == GateKind::kInput || k == GateKind::kReg || k == GateKind::kConst0 ||
        k == GateKind::kConst1)
      order.push_back(id);
  }
  for (SignalId id = 0; id < gates_.size(); ++id) {
    const GateKind k = gates_[id].kind;
    switch (k) {
      case GateKind::kInput:
      case GateKind::kReg:
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;
      default: {
        // Every combinational fanin must be an earlier id.
        const std::size_t arity = gate_arity(k);
        for (std::size_t i = 0; i < arity; ++i)
          require(gates_[id].fanin[i] < id,
                  "topological_order: combinational cycle or forward ref at " +
                      signal_name(id));
        order.push_back(id);
      }
    }
  }
  return order;
}

}  // namespace sca::netlist
