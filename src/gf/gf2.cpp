#include "src/gf/gf2.hpp"

#include "src/common/bitops.hpp"
#include "src/common/check.hpp"

namespace sca::gf {

using common::require;

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_bits_(rows, 0) {
  require(rows <= 64 && cols <= 64, "BitMatrix: dimensions must be <= 64");
}

BitMatrix BitMatrix::identity(std::size_t n) {
  BitMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

bool BitMatrix::get(std::size_t r, std::size_t c) const {
  SCA_ASSERT(r < rows_ && c < cols_, "BitMatrix::get out of range");
  return (row_bits_[r] >> c) & 1u;
}

void BitMatrix::set(std::size_t r, std::size_t c, bool v) {
  SCA_ASSERT(r < rows_ && c < cols_, "BitMatrix::set out of range");
  if (v)
    row_bits_[r] |= std::uint64_t{1} << c;
  else
    row_bits_[r] &= ~(std::uint64_t{1} << c);
}

std::uint64_t BitMatrix::row(std::size_t r) const {
  SCA_ASSERT(r < rows_, "BitMatrix::row out of range");
  return row_bits_[r];
}

void BitMatrix::set_row(std::size_t r, std::uint64_t bits) {
  SCA_ASSERT(r < rows_, "BitMatrix::set_row out of range");
  const std::uint64_t mask =
      cols_ == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << cols_) - 1);
  row_bits_[r] = bits & mask;
}

std::uint64_t BitMatrix::apply(std::uint64_t x) const {
  std::uint64_t y = 0;
  for (std::size_t r = 0; r < rows_; ++r)
    y |= common::parity64(row_bits_[r] & x) << r;
  return y;
}

BitMatrix BitMatrix::operator*(const BitMatrix& rhs) const {
  require(cols_ == rhs.rows_, "BitMatrix::operator*: shape mismatch");
  BitMatrix out(rows_, rhs.cols_);
  // out(r, c) = parity over k of this(r, k) & rhs(k, c).
  for (std::size_t r = 0; r < rows_; ++r) {
    std::uint64_t acc = 0;
    std::uint64_t row = row_bits_[r];
    while (row) {
      const unsigned k = common::ctz64(row);
      row &= row - 1;
      acc ^= rhs.row_bits_[k];
    }
    out.row_bits_[r] = acc;
  }
  return out;
}

std::size_t BitMatrix::rank() const {
  std::vector<std::uint64_t> rows = row_bits_;
  std::size_t rank = 0;
  for (std::size_t c = 0; c < cols_ && rank < rows.size(); ++c) {
    const std::uint64_t bit = std::uint64_t{1} << c;
    std::size_t pivot = rank;
    while (pivot < rows.size() && !(rows[pivot] & bit)) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[rank], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r)
      if (r != rank && (rows[r] & bit)) rows[r] ^= rows[rank];
    ++rank;
  }
  return rank;
}

BitMatrix BitMatrix::inverse() const {
  require(rows_ == cols_, "BitMatrix::inverse: matrix must be square");
  const std::size_t n = rows_;
  std::vector<std::uint64_t> a = row_bits_;
  std::vector<std::uint64_t> inv(n);
  for (std::size_t i = 0; i < n; ++i) inv[i] = std::uint64_t{1} << i;

  for (std::size_t c = 0; c < n; ++c) {
    const std::uint64_t bit = std::uint64_t{1} << c;
    std::size_t pivot = c;
    while (pivot < n && !(a[pivot] & bit)) ++pivot;
    require(pivot < n, "BitMatrix::inverse: matrix is singular");
    std::swap(a[c], a[pivot]);
    std::swap(inv[c], inv[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r != c && (a[r] & bit)) {
        a[r] ^= a[c];
        inv[r] ^= inv[c];
      }
    }
  }
  BitMatrix out(n, n);
  out.row_bits_ = inv;
  return out;
}

BitMatrix BitMatrix::transpose() const {
  BitMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (get(r, c)) out.set(c, r, true);
  return out;
}

std::string BitMatrix::to_string() const {
  std::string s;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) s += get(r, c) ? '1' : '0';
    s += '\n';
  }
  return s;
}

BitMatrix matrix_from_columns(std::size_t rows,
                              const std::vector<std::uint64_t>& columns) {
  BitMatrix m(rows, columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c)
    for (std::size_t r = 0; r < rows; ++r)
      if ((columns[c] >> r) & 1u) m.set(r, c, true);
  return m;
}

}  // namespace sca::gf
