#include "src/gf/gf256.hpp"

#include <initializer_list>

namespace sca::gf {

std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b) {
  unsigned product = 0;
  unsigned aa = a;
  unsigned bb = b;
  while (bb) {
    if (bb & 1u) product ^= aa;
    bb >>= 1;
    aa <<= 1;
    if (aa & 0x100u) aa ^= kAesPoly;
  }
  return static_cast<std::uint8_t>(product);
}

std::uint8_t gf256_pow(std::uint8_t a, unsigned n) {
  std::uint8_t result = 1;
  std::uint8_t base = a;
  while (n) {
    if (n & 1u) result = gf256_mul(result, base);
    base = gf256_mul(base, base);
    n >>= 1;
  }
  return result;
}

std::uint8_t gf256_inv(std::uint8_t a) {
  if (a == 0) return 0;
  // Fermat: a^(2^8 - 2) = a^254.
  return gf256_pow(a, 254);
}

bool gf256_is_generator(std::uint8_t g) {
  if (g == 0) return false;
  // Order of GF(256)* is 255 = 3 * 5 * 17; g generates iff g^(255/p) != 1
  // for each prime divisor p.
  for (unsigned d : {255u / 3u, 255u / 5u, 255u / 17u})
    if (gf256_pow(g, d) == 1) return false;
  return true;
}

}  // namespace sca::gf
