// Tower-field representation GF(((2^2)^2)^2) of GF(2^8), and the basis-change
// isomorphism to/from the AES polynomial representation.
//
// The masked Sbox performs its "local" GF(2^8) inversion with a combinational
// tower-field inverter in the style of Boyar-Peralta / Canright: map to the
// tower basis, invert there (where inversion decomposes into GF(2^4) and
// GF(2^2) operations), and map back. This module provides the *value-level*
// tower arithmetic and the change-of-basis matrices; the gate-level circuit
// generator in src/gadgets mirrors these formulas structurally.
//
// Tower construction:
//   GF(2^2)  = GF(2)[w]    / (w^2 + w + 1)
//   GF(2^4)  = GF(2^2)[x]  / (x^2 + x + phi),     phi chosen irreducible
//   GF(2^8)  = GF(2^4)[y]  / (y^2 + y + lambda),  lambda chosen irreducible
// Elements are packed little-endian: a GF(2^8) element is (a1 : a0) with
// a0 = low nibble (coefficient of 1) and a1 = high nibble (coefficient of y).
#pragma once

#include <cstdint>

#include "src/gf/gf2.hpp"

namespace sca::gf {

// --- GF(2^2), elements are 2-bit values b1*w + b0 ---------------------------
std::uint8_t gf4_mul(std::uint8_t a, std::uint8_t b);
std::uint8_t gf4_sq(std::uint8_t a);
std::uint8_t gf4_inv(std::uint8_t a);  // 0 maps to 0
/// Multiplication by the constant w (0b10), used as "scale by phi".
std::uint8_t gf4_mul_w(std::uint8_t a);

// --- GF(2^4) over GF(2^2), elements are 4-bit values (hi:lo) -----------------
/// The constant phi in x^2 + x + phi. Fixed to w (0b10), which is irreducible.
inline constexpr std::uint8_t kPhi = 0b10;

std::uint8_t gf16_mul(std::uint8_t a, std::uint8_t b);
std::uint8_t gf16_sq(std::uint8_t a);
std::uint8_t gf16_inv(std::uint8_t a);  // 0 maps to 0
/// Multiplication by the tower constant lambda, see kLambda.
std::uint8_t gf16_mul_lambda(std::uint8_t a);

// --- GF(2^8) over GF(2^4), elements are 8-bit values (hi nibble : lo) --------
/// The constant lambda in y^2 + y + lambda. Chosen at namespace scope as the
/// smallest value making the polynomial irreducible over GF(2^4) with phi=w;
/// validated by unit tests and by TowerContext construction.
inline constexpr std::uint8_t kLambda = 0b1000;  // x * 1 in GF(2^4) == w^... see tower.cpp

std::uint8_t tower_mul(std::uint8_t a, std::uint8_t b);
std::uint8_t tower_sq(std::uint8_t a);
std::uint8_t tower_inv(std::uint8_t a);  // 0 maps to 0

/// Change-of-basis matrices between the AES polynomial representation and the
/// tower representation, found by root-matching: the matrix A maps an AES-
/// representation byte (bit i = coefficient of X^i) to the tower
/// representation, and A_inv maps back. Both are GF(2)-linear bijections with
///   tower_mul(A(a), A(b)) == A(gf256_mul(a, b)).
struct TowerContext {
  BitMatrix to_tower;    // 8x8, AES rep -> tower rep
  BitMatrix from_tower;  // 8x8, tower rep -> AES rep

  /// Builds the context by searching for a root of the AES polynomial inside
  /// the tower field. Deterministic (smallest root is used).
  static const TowerContext& instance();

  std::uint8_t aes_to_tower(std::uint8_t a) const {
    return static_cast<std::uint8_t>(to_tower.apply(a));
  }
  std::uint8_t tower_to_aes(std::uint8_t t) const {
    return static_cast<std::uint8_t>(from_tower.apply(t));
  }
};

}  // namespace sca::gf
