// Arithmetic in GF(2^8) with the AES reduction polynomial
// x^8 + x^4 + x^3 + x + 1 (0x11B).
//
// This is the "golden" value-level arithmetic against which every generated
// multiplier/inverter circuit is cross-checked exhaustively.
#pragma once

#include <cstdint>

namespace sca::gf {

/// AES reduction polynomial, including the x^8 term.
inline constexpr unsigned kAesPoly = 0x11B;

/// Product in GF(2^8) / 0x11B (carry-less multiply + reduction).
std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b);

/// a^n in GF(2^8) by square-and-multiply (n interpreted mod 255 for a != 0).
std::uint8_t gf256_pow(std::uint8_t a, unsigned n);

/// Multiplicative inverse; by the AES convention gf256_inv(0) == 0
/// (0 is treated as its own "inverse", which the Sbox relies on).
std::uint8_t gf256_inv(std::uint8_t a);

/// True iff `g` generates the multiplicative group GF(2^8)*.
bool gf256_is_generator(std::uint8_t g);

}  // namespace sca::gf
