// Linear algebra over GF(2) on small dimensions (<= 64).
//
// Used for: the AES Sbox affine transformation, basis-change matrices between
// the AES polynomial representation of GF(2^8) and the tower-field
// representation, and synthesizing XOR networks from linear maps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sca::gf {

/// A rows x cols matrix over GF(2). Each row is stored as the low `cols`
/// bits of a uint64_t (bit j of row i = entry (i, j)).
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Zero matrix of the given shape. rows, cols must each be <= 64.
  BitMatrix(std::size_t rows, std::size_t cols);

  static BitMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool v);

  /// Raw row bits (low `cols` bits valid).
  std::uint64_t row(std::size_t r) const;
  void set_row(std::size_t r, std::uint64_t bits);

  /// Matrix-vector product: y = M * x, where x is a bit-vector packed in a
  /// uint64_t (bit j = component j). Result packed the same way.
  std::uint64_t apply(std::uint64_t x) const;

  /// Matrix product (this * rhs). Requires cols() == rhs.rows().
  BitMatrix operator*(const BitMatrix& rhs) const;

  bool operator==(const BitMatrix& rhs) const = default;

  /// Rank via Gaussian elimination.
  std::size_t rank() const;

  bool invertible() const { return rows_ == cols_ && rank() == rows_; }

  /// Inverse via Gauss-Jordan. Throws sca::common::Error if singular or
  /// non-square.
  BitMatrix inverse() const;

  BitMatrix transpose() const;

  /// Human-readable 0/1 grid, one row per line.
  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint64_t> row_bits_;
};

/// Builds the matrix whose i-th column is `columns[i]` (packed bit-vectors of
/// length `rows`).
BitMatrix matrix_from_columns(std::size_t rows,
                              const std::vector<std::uint64_t>& columns);

}  // namespace sca::gf
