#include "src/gf/tower.hpp"

#include <vector>

#include "src/common/check.hpp"
#include "src/gf/gf256.hpp"

namespace sca::gf {

using common::require;

// --- GF(2^2) -----------------------------------------------------------------

std::uint8_t gf4_mul(std::uint8_t a, std::uint8_t b) {
  const std::uint8_t a0 = a & 1, a1 = (a >> 1) & 1;
  const std::uint8_t b0 = b & 1, b1 = (b >> 1) & 1;
  // (a1 w + a0)(b1 w + b0) with w^2 = w + 1.
  const std::uint8_t hi = (a1 & b0) ^ (a0 & b1) ^ (a1 & b1);
  const std::uint8_t lo = (a0 & b0) ^ (a1 & b1);
  return static_cast<std::uint8_t>((hi << 1) | lo);
}

std::uint8_t gf4_sq(std::uint8_t a) {
  // Frobenius: fixes {0,1}, swaps w and w+1.
  const std::uint8_t a0 = a & 1, a1 = (a >> 1) & 1;
  return static_cast<std::uint8_t>((a1 << 1) | (a0 ^ a1));
}

std::uint8_t gf4_inv(std::uint8_t a) {
  // a^3 = 1 for a != 0, so a^-1 = a^2; squaring fixes 0.
  return gf4_sq(a);
}

std::uint8_t gf4_mul_w(std::uint8_t a) {
  const std::uint8_t a0 = a & 1, a1 = (a >> 1) & 1;
  // w * (a1 w + a0) = (a1 + a0) w + a1.
  return static_cast<std::uint8_t>(((a0 ^ a1) << 1) | a1);
}

// --- GF(2^4) = GF(2^2)[x] / (x^2 + x + w) -------------------------------------

std::uint8_t gf16_mul(std::uint8_t a, std::uint8_t b) {
  const std::uint8_t a0 = a & 0b11, a1 = (a >> 2) & 0b11;
  const std::uint8_t b0 = b & 0b11, b1 = (b >> 2) & 0b11;
  const std::uint8_t hh = gf4_mul(a1, b1);
  const std::uint8_t hi =
      static_cast<std::uint8_t>(gf4_mul(a1, b0) ^ gf4_mul(a0, b1) ^ hh);
  const std::uint8_t lo = static_cast<std::uint8_t>(gf4_mul(a0, b0) ^
                                                    gf4_mul_w(hh));
  return static_cast<std::uint8_t>((hi << 2) | lo);
}

std::uint8_t gf16_sq(std::uint8_t a) {
  const std::uint8_t a0 = a & 0b11, a1 = (a >> 2) & 0b11;
  const std::uint8_t h = gf4_sq(a1);
  const std::uint8_t hi = h;
  const std::uint8_t lo = static_cast<std::uint8_t>(gf4_sq(a0) ^ gf4_mul_w(h));
  return static_cast<std::uint8_t>((hi << 2) | lo);
}

std::uint8_t gf16_inv(std::uint8_t a) {
  const std::uint8_t a0 = a & 0b11, a1 = (a >> 2) & 0b11;
  // Norm of a1 x + a0 over GF(2^2): N = w a1^2 + a0^2 + a0 a1.
  const std::uint8_t norm = static_cast<std::uint8_t>(
      gf4_mul_w(gf4_sq(a1)) ^ gf4_sq(a0) ^ gf4_mul(a0, a1));
  const std::uint8_t ninv = gf4_inv(norm);
  const std::uint8_t hi = gf4_mul(a1, ninv);
  const std::uint8_t lo = gf4_mul(static_cast<std::uint8_t>(a0 ^ a1), ninv);
  return static_cast<std::uint8_t>((hi << 2) | lo);
}

std::uint8_t gf16_mul_lambda(std::uint8_t a) { return gf16_mul(a, kLambda); }

// --- GF(2^8) = GF(2^4)[y] / (y^2 + y + lambda) --------------------------------

std::uint8_t tower_mul(std::uint8_t a, std::uint8_t b) {
  const std::uint8_t a0 = a & 0x0F, a1 = (a >> 4) & 0x0F;
  const std::uint8_t b0 = b & 0x0F, b1 = (b >> 4) & 0x0F;
  const std::uint8_t hh = gf16_mul(a1, b1);
  const std::uint8_t hi =
      static_cast<std::uint8_t>(gf16_mul(a1, b0) ^ gf16_mul(a0, b1) ^ hh);
  const std::uint8_t lo =
      static_cast<std::uint8_t>(gf16_mul(a0, b0) ^ gf16_mul_lambda(hh));
  return static_cast<std::uint8_t>((hi << 4) | lo);
}

std::uint8_t tower_sq(std::uint8_t a) { return tower_mul(a, a); }

std::uint8_t tower_inv(std::uint8_t a) {
  const std::uint8_t a0 = a & 0x0F, a1 = (a >> 4) & 0x0F;
  // Norm over GF(2^4): N = lambda a1^2 + a0^2 + a0 a1; then
  // (a1 y + a0)^-1 = (a1 N^-1) y + (a0 + a1) N^-1. Zero maps to zero since
  // every sub-operation fixes zero.
  const std::uint8_t norm = static_cast<std::uint8_t>(
      gf16_mul_lambda(gf16_sq(a1)) ^ gf16_sq(a0) ^ gf16_mul(a0, a1));
  const std::uint8_t ninv = gf16_inv(norm);
  const std::uint8_t hi = gf16_mul(a1, ninv);
  const std::uint8_t lo = gf16_mul(static_cast<std::uint8_t>(a0 ^ a1), ninv);
  return static_cast<std::uint8_t>((hi << 4) | lo);
}

// --- Basis change -------------------------------------------------------------

namespace {

TowerContext build_tower_context() {
  // The polynomial y^2 + y + lambda must be irreducible over GF(2^4), i.e.
  // have no root; otherwise the "tower" is not a field and everything below
  // would silently produce garbage.
  for (unsigned a = 0; a < 16; ++a) {
    const std::uint8_t v = static_cast<std::uint8_t>(
        gf16_sq(static_cast<std::uint8_t>(a)) ^ a ^ kLambda);
    require(v != 0, "tower: y^2 + y + lambda is reducible over GF(2^4)");
  }

  // Find the smallest element t of the tower field that is a root of the AES
  // polynomial X^8 + X^4 + X^3 + X + 1. Mapping the AES class of X to t
  // extends linearly to a field isomorphism.
  int root = -1;
  for (unsigned t = 2; t < 256; ++t) {
    const std::uint8_t tb = static_cast<std::uint8_t>(t);
    std::uint8_t p = 1;  // X^0 term
    std::uint8_t power = tb;
    // Accumulate terms of X^8 + X^4 + X^3 + X + 1 at X = t.
    for (unsigned deg = 1; deg <= 8; ++deg) {
      if (deg == 1 || deg == 3 || deg == 4 || deg == 8) p ^= power;
      power = tower_mul(power, tb);
    }
    if (p == 0) {
      root = static_cast<int>(t);
      break;
    }
  }
  require(root >= 0, "tower: AES polynomial has no root in the tower field");

  std::vector<std::uint64_t> columns(8);
  std::uint8_t power = 1;
  for (std::size_t i = 0; i < 8; ++i) {
    columns[i] = power;
    power = tower_mul(power, static_cast<std::uint8_t>(root));
  }
  TowerContext ctx{matrix_from_columns(8, columns), BitMatrix{}};
  require(ctx.to_tower.invertible(), "tower: basis-change matrix singular");
  ctx.from_tower = ctx.to_tower.inverse();

  // Sanity: the map must be multiplicative (spot-checked here, exhaustively
  // checked in unit tests).
  for (unsigned a : {0x02u, 0x53u, 0xCAu, 0xFFu})
    for (unsigned b : {0x01u, 0x10u, 0x8Du, 0xF3u}) {
      const std::uint8_t lhs = ctx.aes_to_tower(
          gf256_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)));
      const std::uint8_t rhs = tower_mul(ctx.aes_to_tower(a & 0xFF),
                                         ctx.aes_to_tower(b & 0xFF));
      require(lhs == rhs, "tower: basis change is not multiplicative");
    }
  return ctx;
}

}  // namespace

const TowerContext& TowerContext::instance() {
  static const TowerContext ctx = build_tower_context();
  return ctx;
}

}  // namespace sca::gf
