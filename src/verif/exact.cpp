#include "src/verif/exact.hpp"

#include <optional>
#include <tuple>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include <bit>

#include "src/common/check.hpp"
#include "src/common/simd.hpp"
#include "src/common/thread_pool.hpp"
#include "src/netlist/cone.hpp"
#include "src/verif/unroll.hpp"

namespace sca::verif {

using common::require;
using netlist::GateKind;
using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

// Named (not anonymous) so ProbeDistributionEngine::Impl can hold the
// engine without giving a class with external linkage an internal-linkage
// subobject; only this translation unit uses it.
namespace exact_detail {

// Lane patterns for the first six enumeration variables: variable j toggles
// with period 2^(j+1) across the 64 lanes of one block. In a wide SIMD
// block the next log2(limbs) variables stripe across limbs (limb i of
// variable 6+k is all-ones iff bit k of i is set), so lane L of a W-lane
// block still enumerates assignment L — the 64-lane layout, just wider.
constexpr std::uint64_t kLanePattern[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

// Enumeration word of variable `j` in wide block `block`: bit L of the word
// (lane numbering: bit L%64 of limb L/64) is bit j of the assignment index
// block * kLanes + L.
template <unsigned kLimbs>
common::SimdWord<kLimbs> enumeration_word(std::size_t j, std::size_t block) {
  using Word = common::SimdWord<kLimbs>;
  constexpr unsigned kLimbBits = std::countr_zero(kLimbs);
  if (j < 6) return Word::broadcast(kLanePattern[j]);
  if (j < 6 + kLimbBits) {
    Word w = Word::zero();
    for (unsigned i = 0; i < kLimbs; ++i)
      if ((i >> (j - 6)) & 1u) w.set_limb(i, ~std::uint64_t{0});
    return w;
  }
  return ((block >> (j - 6 - kLimbBits)) & 1u) ? Word::ones() : Word::zero();
}

// One enumeration variable of the exact analysis.
struct Var {
  enum class Kind { kSecretBit, kFree } kind = Kind::kFree;
  // For kSecretBit: which (secret group, bit); inputs depending on it are
  // wired through share reconstruction below.
  std::uint32_t secret = 0;
  std::uint32_t bit = 0;
};

// How one unrolled input gets its value during enumeration: XOR of a set of
// variables (e.g. the last share of a fully-observed sharing is
// secret-bit ^ all other shares).
struct InputExpr {
  SignalId input = netlist::kNoSignal;
  std::vector<std::size_t> var_indices;
};

struct Analysis {
  std::vector<Var> vars;
  std::vector<InputExpr> input_exprs;
  std::vector<std::size_t> secret_var_indices;  // subset of vars
  std::vector<SignalId> observation;            // unrolled signals, ordered
  bool feasible = true;
};

// The engine holds everything derived from the netlist once, shared by all
// probe analyses.
class ExactEngine {
 public:
  ExactEngine(const Netlist& nl, const ExactOptions& options)
      : nl_(nl), options_(options), supports_(nl) {
    const std::size_t depth = sequential_depth(nl);
    const std::size_t extra = options.transitions ? 1 : 0;
    const std::size_t cycles =
        options.cycles ? options.cycles : depth + 1 + extra;
    require(cycles > depth + extra,
            "exact verifier: unroll depth must exceed sequential depth");
    unrolled_ = unroll(nl, cycles, options.held_inputs);
    unrolled_supports_.emplace(unrolled_.nl);
    // Index unrolled inputs by signal for classification.
    for (std::size_t i = 0; i < unrolled_.nl.inputs().size(); ++i)
      input_index_[unrolled_.nl.inputs()[i].signal] = i;
  }

  const Netlist& netlist() const { return nl_; }
  const Netlist& unrolled_netlist() const { return unrolled_.nl; }
  const ExactOptions& options() const { return options_; }

  /// Observation set (unrolled, last cycle — and with transitions, the
  /// previous cycle too) of a glitch-extended probe on original signal
  /// `probe`. Sorted ascending.
  std::vector<SignalId> observation_of(SignalId probe) const {
    const std::size_t last = unrolled_.cycles - 1;
    std::vector<SignalId> obs;
    for (std::size_t idx : supports_.support(probe).set_bits()) {
      const SignalId stable = supports_.stable_points()[idx];
      for (std::size_t back = 0; back <= (options_.transitions ? 1u : 0u);
           ++back) {
        const SignalId mapped = unrolled_.map[last - back][stable];
        SCA_ASSERT(mapped != netlist::kNoSignal,
                   "exact verifier: observation reaches the cold start");
        obs.push_back(mapped);
      }
    }
    std::sort(obs.begin(), obs.end());
    obs.erase(std::unique(obs.begin(), obs.end()), obs.end());
    return obs;
  }

  /// Variable structure for an observation set.
  Analysis analyze(const std::vector<SignalId>& observation) const {
    Analysis a;
    a.observation = observation;

    // Union of unrolled-input supports.
    common::DynamicBitset support(unrolled_supports_->stable_points().size());
    for (SignalId sig : observation) support |= unrolled_supports_->support(sig);

    // Bucket share inputs by (secret, bit, cycle); randoms become free vars.
    struct Bucket {
      std::vector<std::pair<std::uint32_t, SignalId>> shares;  // (share, sig)
    };
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::size_t>, Bucket>
        buckets;
    std::vector<SignalId> free_inputs;
    for (std::size_t idx : support.set_bits()) {
      const SignalId sig = unrolled_supports_->stable_points()[idx];
      const auto it = input_index_.find(sig);
      SCA_ASSERT(it != input_index_.end(),
                 "exact verifier: unrolled stable point is not an input");
      const netlist::InputInfo& info = unrolled_.nl.inputs()[it->second];
      switch (info.role) {
        case InputRole::kRandom:
          free_inputs.push_back(sig);
          break;
        case InputRole::kControl:
          // Public control inputs are fixed to 0 in this analysis.
          break;
        case InputRole::kShare:
          buckets[{info.share.secret, info.share.bit,
                   unrolled_.input_cycle[it->second]}]
              .shares.emplace_back(info.share.share, sig);
          break;
      }
    }

    std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> secret_vars;
    for (auto& [key, bucket] : buckets) {
      const auto [secret, bit, cycle] = key;
      const std::uint32_t total_shares = nl_.share_count(secret);
      std::sort(bucket.shares.begin(), bucket.shares.end());
      if (bucket.shares.size() < total_shares) {
        // A proper subset of the shares is jointly uniform and independent
        // of the secret: all free.
        for (const auto& [share, sig] : bucket.shares) free_inputs.push_back(sig);
        continue;
      }
      // All shares observed: shares 0..S-2 free, last = secret ^ rest.
      const auto secret_key = std::make_pair(secret, bit);
      if (!secret_vars.contains(secret_key)) {
        secret_vars[secret_key] = a.vars.size();
        a.secret_var_indices.push_back(a.vars.size());
        a.vars.push_back(Var{Var::Kind::kSecretBit, secret, bit});
      }
      const std::size_t secret_var = secret_vars[secret_key];
      std::vector<std::size_t> share_vars;
      for (std::size_t i = 0; i + 1 < bucket.shares.size(); ++i) {
        const std::size_t v = a.vars.size();
        a.vars.push_back(Var{Var::Kind::kFree, 0, 0});
        share_vars.push_back(v);
        a.input_exprs.push_back(InputExpr{bucket.shares[i].second, {v}});
      }
      std::vector<std::size_t> last_expr = share_vars;
      last_expr.push_back(secret_var);
      a.input_exprs.push_back(
          InputExpr{bucket.shares.back().second, std::move(last_expr)});
    }
    for (SignalId sig : free_inputs) {
      const std::size_t v = a.vars.size();
      a.vars.push_back(Var{Var::Kind::kFree, 0, 0});
      a.input_exprs.push_back(InputExpr{sig, {v}});
    }

    a.feasible = a.vars.size() <= options_.max_vars &&
                 observation.size() <= options_.max_observation_bits &&
                 a.secret_var_indices.size() + observation.size() <= 30;
    return a;
  }

  /// Evaluation cone of an analysis over the unrolled netlist, ascending
  /// (SSA ids: ascending = topological).
  std::vector<SignalId> build_cone(const Analysis& a) const {
    std::vector<SignalId> cone;
    std::vector<bool> seen(unrolled_.nl.size(), false);
    std::vector<SignalId> stack(a.observation.begin(), a.observation.end());
    while (!stack.empty()) {
      const SignalId id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = true;
      cone.push_back(id);
      const netlist::Gate& g = unrolled_.nl.gate(id);
      const std::size_t arity = netlist::gate_arity(g.kind);
      for (std::size_t i = 0; i < arity; ++i) stack.push_back(g.fanin[i]);
    }
    std::sort(cone.begin(), cone.end());
    return cone;
  }

  /// Evaluates the cone W-lane bit-parallel (W = 64 * kLimbs); inputs must
  /// be driven in `values` beforehand.
  template <unsigned kLimbs>
  void eval_cone(const std::vector<SignalId>& cone,
                 std::vector<common::SimdWord<kLimbs>>& values) const {
    using Word = common::SimdWord<kLimbs>;
    for (SignalId id : cone) {
      const netlist::Gate& g = unrolled_.nl.gate(id);
      switch (g.kind) {
        case GateKind::kInput:
          break;
        case GateKind::kConst0:
          values[id] = Word::zero();
          break;
        case GateKind::kConst1:
          values[id] = Word::ones();
          break;
        case GateKind::kBuf:
          values[id] = values[g.fanin[0]];
          break;
        case GateKind::kNot:
          values[id] = ~values[g.fanin[0]];
          break;
        case GateKind::kAnd:
          values[id] = values[g.fanin[0]] & values[g.fanin[1]];
          break;
        case GateKind::kNand:
          values[id] = ~(values[g.fanin[0]] & values[g.fanin[1]]);
          break;
        case GateKind::kOr:
          values[id] = values[g.fanin[0]] | values[g.fanin[1]];
          break;
        case GateKind::kNor:
          values[id] = ~(values[g.fanin[0]] | values[g.fanin[1]]);
          break;
        case GateKind::kXor:
          values[id] = values[g.fanin[0]] ^ values[g.fanin[1]];
          break;
        case GateKind::kXnor:
          values[id] = ~(values[g.fanin[0]] ^ values[g.fanin[1]]);
          break;
        case GateKind::kMux:
          values[id] = (~values[g.fanin[0]] & values[g.fanin[1]]) |
                       (values[g.fanin[0]] & values[g.fanin[2]]);
          break;
        case GateKind::kReg:
          SCA_ASSERT(false, "exact verifier: register in unrolled netlist");
      }
    }
  }

  /// Exact joint histogram counts[secret_value][observation_value] for an
  /// analysis at one batch width. The counts are integers accumulated once
  /// per enumerated assignment, so every width produces the identical
  /// histogram; wider words just evaluate the cone fewer times.
  template <unsigned kLimbs>
  std::vector<std::vector<std::uint32_t>> enumerate_impl(
      const Analysis& a) const {
    using Word = common::SimdWord<kLimbs>;
    constexpr std::size_t kLaneBits = 6 + std::countr_zero(kLimbs);
    const std::size_t nv = a.vars.size();
    const std::size_t n_secret = a.secret_var_indices.size();
    const std::size_t n_obs = a.observation.size();
    std::vector<std::vector<std::uint32_t>> counts(
        std::size_t{1} << n_secret,
        std::vector<std::uint32_t>(std::size_t{1} << n_obs, 0));

    const std::vector<SignalId> cone = build_cone(a);

    std::vector<Word> values(unrolled_.nl.size(), Word::zero());
    const std::size_t blocks =
        nv > kLaneBits ? (std::size_t{1} << (nv - kLaneBits)) : 1;
    const std::size_t lanes_used =
        nv >= kLaneBits ? Word::kLanes : (std::size_t{1} << nv);

    std::vector<Word> var_words(nv, Word::zero());
    for (std::size_t block = 0; block < blocks; ++block) {
      for (std::size_t j = 0; j < nv; ++j)
        var_words[j] = enumeration_word<kLimbs>(j, block);
      // Drive inputs and evaluate the cone.
      for (const InputExpr& expr : a.input_exprs) {
        Word w = Word::zero();
        for (std::size_t v : expr.var_indices) w ^= var_words[v];
        values[expr.input] = w;
      }
      eval_cone<kLimbs>(cone, values);
      // Accumulate.
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        const unsigned limb = static_cast<unsigned>(lane / 64);
        const unsigned bit = static_cast<unsigned>(lane % 64);
        std::uint64_t secret_value = 0;
        for (std::size_t k = 0; k < n_secret; ++k)
          secret_value |=
              ((var_words[a.secret_var_indices[k]].limb(limb) >> bit) & 1u)
              << k;
        std::uint64_t obs_value = 0;
        for (std::size_t k = 0; k < n_obs; ++k)
          obs_value |= ((values[a.observation[k]].limb(limb) >> bit) & 1u)
                       << k;
        counts[secret_value][obs_value] += 1;
      }
    }
    return counts;
  }

  /// Exact joint histogram counts[secret_value][observation_value] for an
  /// analysis. secret_value packs the secret-bit variables in
  /// secret_var_indices order. Batch width per ExactOptions::lanes.
  std::vector<std::vector<std::uint32_t>> enumerate(const Analysis& a) const {
    switch (common::resolve_lanes(options_.lanes) / 64) {
      case 4:
        return enumerate_impl<4>(a);
      case 8:
        return enumerate_impl<8>(a);
      default:
        return enumerate_impl<1>(a);
    }
  }

  /// First enumeration assignment hitting (secret_value, obs_value); every
  /// input of the analysis gets its concrete value, by unrolled input name.
  /// Empty when the joint count is zero.
  std::vector<std::pair<std::string, bool>> preimage(
      const Analysis& a, std::uint64_t want_secret,
      std::uint64_t want_obs) const {
    const std::size_t nv = a.vars.size();
    const std::size_t n_secret = a.secret_var_indices.size();
    const std::size_t n_obs = a.observation.size();
    const std::vector<SignalId> cone = build_cone(a);

    // 64-lane blocks are plenty here: preimage extraction stops at the
    // first hit and only ever runs on one (secret, obs) certificate.
    using Word = common::SimdWord<1>;
    std::vector<Word> values(unrolled_.nl.size(), Word::zero());
    const std::size_t blocks = nv > 6 ? (std::size_t{1} << (nv - 6)) : 1;
    const std::size_t lanes_used = nv >= 6 ? 64 : (std::size_t{1} << nv);
    std::vector<Word> var_words(nv, Word::zero());
    for (std::size_t block = 0; block < blocks; ++block) {
      for (std::size_t j = 0; j < nv; ++j)
        var_words[j] = enumeration_word<1>(j, block);
      for (const InputExpr& expr : a.input_exprs) {
        Word w = Word::zero();
        for (std::size_t v : expr.var_indices) w ^= var_words[v];
        values[expr.input] = w;
      }
      eval_cone<1>(cone, values);
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        std::uint64_t secret_value = 0;
        for (std::size_t k = 0; k < n_secret; ++k)
          secret_value |=
              ((var_words[a.secret_var_indices[k]].limb(0) >> lane) & 1u) << k;
        if (secret_value != want_secret) continue;
        std::uint64_t obs_value = 0;
        for (std::size_t k = 0; k < n_obs; ++k)
          obs_value |= ((values[a.observation[k]].limb(0) >> lane) & 1u) << k;
        if (obs_value != want_obs) continue;
        std::vector<std::pair<std::string, bool>> out;
        out.reserve(a.input_exprs.size());
        for (const InputExpr& expr : a.input_exprs)
          out.emplace_back(unrolled_.nl.signal_name(expr.input),
                           ((values[expr.input].limb(0) >> lane) & 1u) != 0);
        return out;
      }
    }
    return {};
  }

 private:
  const Netlist& nl_;
  ExactOptions options_;
  netlist::StableSupport supports_;
  Unrolled unrolled_;
  std::optional<netlist::StableSupport> unrolled_supports_;
  std::unordered_map<SignalId, std::size_t> input_index_;
};

// Total-variation distance between two equal-total histograms.
double tv_distance(const std::vector<std::uint32_t>& p,
                   const std::vector<std::uint32_t>& q) {
  std::uint64_t total_p = 0, total_q = 0, abs_diff_doubled = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    total_p += p[i];
    total_q += q[i];
    abs_diff_doubled +=
        p[i] > q[i] ? (p[i] - q[i]) : (q[i] - p[i]);
  }
  SCA_ASSERT(total_p == total_q, "tv_distance: histogram totals differ");
  if (total_p == 0) return 0.0;
  return 0.5 * static_cast<double>(abs_diff_doubled) /
         static_cast<double>(total_p);
}

}  // namespace exact_detail

using exact_detail::Analysis;
using exact_detail::ExactEngine;
using exact_detail::tv_distance;

std::vector<const ExactProbeResult*> ExactReport::leaking() const {
  std::vector<const ExactProbeResult*> out;
  for (const auto& p : probes)
    if (p.leaks) out.push_back(&p);
  std::sort(out.begin(), out.end(),
            [](const ExactProbeResult* a, const ExactProbeResult* b) {
              return a->max_tv_distance > b->max_tv_distance;
            });
  return out;
}

ExactReport verify_first_order_glitch(const Netlist& nl,
                                      const ExactOptions& options) {
  nl.validate();
  ExactEngine engine(nl, options);

  // Dedupe probes by observation set; remember the best display name.
  std::map<std::vector<SignalId>, SignalId> unique_observations;
  for (SignalId probe = 0; probe < nl.size(); ++probe) {
    const GateKind k = nl.kind(probe);
    if (k == GateKind::kConst0 || k == GateKind::kConst1) continue;
    auto obs = engine.observation_of(probe);
    if (obs.empty()) continue;
    auto [it, inserted] = unique_observations.try_emplace(std::move(obs), probe);
    // Prefer an explicitly named representative for readable reports.
    if (!inserted && !nl.explicit_name(it->second) && nl.explicit_name(probe))
      it->second = probe;
  }

  // The std::map fixes a deterministic probe order (sorted by observation);
  // the heavy per-probe analyses then run in parallel into order-indexed
  // slots, so the report is identical for any thread count.
  std::vector<const std::pair<const std::vector<SignalId>, SignalId>*> work;
  work.reserve(unique_observations.size());
  for (const auto& entry : unique_observations) work.push_back(&entry);

  ExactReport report;
  report.probes_total = unique_observations.size();
  report.probes.resize(work.size());
  common::parallel_for(
      work.size(), options.threads, [&](std::size_t i) {
        const std::vector<SignalId>& observation = work[i]->first;
        const SignalId representative = work[i]->second;
        ExactProbeResult result;
        result.probe = representative;
        result.name = nl.signal_name(representative);
        result.observation_bits = observation.size();

        const Analysis analysis = engine.analyze(observation);
        result.secret_bits = analysis.secret_var_indices.size();
        result.free_bits = analysis.vars.size() - result.secret_bits;
        if (!analysis.feasible) {
          result.skipped = true;
        } else if (!analysis.secret_var_indices.empty()) {
          // (An observation that cannot reach any complete sharing is
          // trivially secure and needs no enumeration.)
          const auto counts = engine.enumerate(analysis);
          for (std::size_t v = 1; v < counts.size(); ++v) {
            const double tv = tv_distance(counts[0], counts[v]);
            if (tv > result.max_tv_distance) {
              result.max_tv_distance = tv;
              result.witness_a = 0;
              result.witness_b = v;
            }
          }
          result.leaks = result.max_tv_distance > 0.0;
        }
        report.probes[i] = std::move(result);
      });

  for (const ExactProbeResult& p : report.probes) {
    if (p.skipped) report.any_skipped = true;
    if (p.leaks) {
      report.any_leak = true;
      ++report.probes_leaking;
    }
  }
  return report;
}

std::map<std::uint64_t, std::map<std::uint64_t, std::uint64_t>>
exact_probe_distribution(const Netlist& nl, SignalId probe,
                         const ExactOptions& options) {
  const ProbeDistributionEngine engine(nl, options);
  const ProbeDistribution dist = engine.distribution(probe);
  require(dist.feasible,
          "exact_probe_distribution: probe exceeds enumeration limits");
  std::map<std::uint64_t, std::map<std::uint64_t, std::uint64_t>> out;
  for (std::size_t v = 0; v < dist.counts.size(); ++v)
    for (std::size_t o = 0; o < dist.counts[v].size(); ++o)
      if (dist.counts[v][o]) out[v][o] = dist.counts[v][o];
  return out;
}

struct ProbeDistributionEngine::Impl {
  ExactEngine engine;
  Impl(const Netlist& nl, const ExactOptions& options) : engine(nl, options) {}
};

ProbeDistributionEngine::ProbeDistributionEngine(const Netlist& nl,
                                                 const ExactOptions& options) {
  nl.validate();
  impl_ = std::make_unique<Impl>(nl, options);
}

ProbeDistributionEngine::~ProbeDistributionEngine() = default;

ProbeDistribution ProbeDistributionEngine::distribution(SignalId probe) const {
  const ExactEngine& engine = impl_->engine;
  ProbeDistribution out;
  const auto observation = engine.observation_of(probe);
  const Analysis analysis = engine.analyze(observation);
  for (const std::size_t v : analysis.secret_var_indices) {
    const auto& var = analysis.vars[v];
    out.secret_bits.push_back(engine.netlist().secret_group_name(var.secret) +
                              ".b" + std::to_string(var.bit));
  }
  for (const SignalId sig : analysis.observation)
    out.observation.push_back(engine.unrolled_netlist().signal_name(sig));
  out.free_bits = analysis.vars.size() - analysis.secret_var_indices.size();
  if (!analysis.feasible) {
    out.feasible = false;
    out.infeasible_reason =
        "enumeration over " + std::to_string(analysis.vars.size()) +
        " variables / " + std::to_string(observation.size()) +
        " observation bits exceeds the configured limits";
    return out;
  }
  if (!analysis.secret_var_indices.empty())
    out.counts = engine.enumerate(analysis);
  return out;
}

std::vector<std::pair<std::string, bool>> ProbeDistributionEngine::preimage(
    SignalId probe, std::uint64_t secret, std::uint64_t obs) const {
  const ExactEngine& engine = impl_->engine;
  const auto observation = engine.observation_of(probe);
  const Analysis analysis = engine.analyze(observation);
  if (!analysis.feasible) return {};
  return engine.preimage(analysis, secret, obs);
}

std::string to_string(const ExactReport& report) {
  std::ostringstream os;
  os << "exact first-order glitch-extended verification: "
     << (report.any_leak ? "LEAKS" : "secure") << "\n";
  os << "unique probes: " << report.probes_total
     << ", leaking: " << report.probes_leaking
     << (report.any_skipped ? " (some probes skipped!)" : "") << "\n";
  for (const ExactProbeResult* p : report.leaking()) {
    os << "  LEAK at " << p->name << "  obs_bits=" << p->observation_bits
       << " tv=" << p->max_tv_distance << " witness secrets "
       << p->witness_a << " vs " << p->witness_b << "\n";
  }
  return os.str();
}

}  // namespace sca::verif
