// Exact (enumerative) first-order verification under the glitch-extended
// probing model — the SILVER-style ground truth next to the PROLEAD-style
// sampling engine.
//
// For every glitch-extended probe the verifier computes the *exact* joint
// distribution of the probe's observation (the stable signals in its
// combinational fan-in), conditioned on each value of the secret, by
// enumerating all share and fresh-mask assignments over an unrolled copy of
// the pipeline. A probe leaks iff the conditional distributions differ — an
// information-theoretic statement with integer-count certainty, no sampling,
// no thresholds.
//
// Feasibility is bounded by the number of free bits a probe sees; probes
// whose enumeration would be too large are reported as skipped (the sampling
// engine covers them). For the paper's Kronecker delta every probe fits
// comfortably.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/netlist/ir.hpp"

namespace sca::verif {

struct ExactOptions {
  /// Maximum enumeration size: secret bits + free bits per probe.
  std::size_t max_vars = 26;
  /// Maximum observation width (distribution alphabet = 2^bits).
  std::size_t max_observation_bits = 16;
  /// Unroll depth; 0 = sequential_depth(nl) + 1 (+1 with transitions), the
  /// minimum sound value.
  std::size_t cycles = 0;
  /// Worker threads for the per-probe enumerations (0 = SCA_THREADS env,
  /// else hardware concurrency). The verdict is exact either way; results
  /// are reported in the same deterministic order for any thread count.
  unsigned threads = 0;
  /// Transition-extended probes: the observation additionally includes the
  /// previous cycle's values of every observed stable signal (the model of
  /// lint::LintModel::kGlitchTransition), so R4 findings can be certified.
  bool transitions = false;
  /// Enumeration batch width in bit-parallel lanes (64, 256, or 512); 0
  /// resolves like the campaign engine (SCA_LANES env, else the native
  /// SIMD width). The joint counts are exact integers, so every width
  /// yields the identical report — wider just enumerates more assignments
  /// per cone evaluation.
  unsigned lanes = 0;
  /// Inputs instantiated once and shared by all unroll cycles — the slice
  /// inputs standing in for cut state registers (netlist/slice.hpp).
  std::vector<netlist::SignalId> held_inputs;
};

struct ExactProbeResult {
  netlist::SignalId probe = netlist::kNoSignal;
  std::string name;              ///< representative signal name
  std::size_t observation_bits = 0;
  std::size_t secret_bits = 0;   ///< secret bits the observation can reach
  std::size_t free_bits = 0;     ///< enumerated share/mask bits
  bool skipped = false;          ///< enumeration exceeded the limits
  bool leaks = false;
  /// Largest total-variation distance between two secret-conditioned
  /// observation distributions (0 exactly when secure).
  double max_tv_distance = 0.0;
  /// A pair of full secret values whose distributions differ (valid if
  /// leaks). Secret bits outside the probe's reach are zero.
  std::uint64_t witness_a = 0;
  std::uint64_t witness_b = 0;
};

struct ExactReport {
  std::vector<ExactProbeResult> probes;  ///< one per unique observation set
  bool any_leak = false;
  bool any_skipped = false;
  std::size_t probes_total = 0;
  std::size_t probes_leaking = 0;

  /// Leaking probes, most severe first.
  std::vector<const ExactProbeResult*> leaking() const;
};

/// Runs the exact first-order glitch-extended verification over all probe
/// positions (every signal; probes with identical observation sets are
/// deduplicated). The netlist must be a pipeline (no register feedback) and
/// all its secrets are evaluated jointly.
ExactReport verify_first_order_glitch(const netlist::Netlist& nl,
                                      const ExactOptions& options = {});

/// Exact conditional distribution of one probe's observation: result[v] is
/// the histogram (observation value -> count) given the reachable secret
/// bits take value v. Use for root-cause analysis (e.g. the paper's
/// x1 = x5 = 0 argument). Throws if the probe exceeds the limits.
std::map<std::uint64_t, std::map<std::uint64_t, std::uint64_t>>
exact_probe_distribution(const netlist::Netlist& nl, netlist::SignalId probe,
                         const ExactOptions& options = {});

/// The exact conditional distribution of one probe, with the metadata a
/// counterexample certificate needs.
struct ProbeDistribution {
  bool feasible = true;
  std::string infeasible_reason;
  /// Names of the secret bits the observation reaches ("s0.b3", or the
  /// netlist's secret_group_name); bit k of a secret value below is
  /// secret_bits[k].
  std::vector<std::string> secret_bits;
  /// Names of the observed (unrolled) stable signals; bit k of an
  /// observation value is observation[k].
  std::vector<std::string> observation;
  std::size_t free_bits = 0;
  /// counts[v][o] = exact count of observation o given secret value v;
  /// empty when infeasible or no secret is reachable.
  std::vector<std::vector<std::uint32_t>> counts;
};

/// Amortizes the unrolling and support analysis over many probe queries on
/// one netlist — the certificate generator behind lint findings. All
/// methods are const and thread-safe.
class ProbeDistributionEngine {
 public:
  ProbeDistributionEngine(const netlist::Netlist& nl,
                          const ExactOptions& options = {});
  ~ProbeDistributionEngine();

  ProbeDistribution distribution(netlist::SignalId probe) const;

  /// A full input assignment (unrolled input name -> value) reproducing
  /// observation value `obs` under secret value `secret` — the mask
  /// assignment half of a counterexample certificate. Empty when no
  /// assignment exists (count zero) or the probe is infeasible.
  std::vector<std::pair<std::string, bool>> preimage(netlist::SignalId probe,
                                                     std::uint64_t secret,
                                                     std::uint64_t obs) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Renders the report as an aligned text table.
std::string to_string(const ExactReport& report);

}  // namespace sca::verif
