// Exact (enumerative) first-order verification under the glitch-extended
// probing model — the SILVER-style ground truth next to the PROLEAD-style
// sampling engine.
//
// For every glitch-extended probe the verifier computes the *exact* joint
// distribution of the probe's observation (the stable signals in its
// combinational fan-in), conditioned on each value of the secret, by
// enumerating all share and fresh-mask assignments over an unrolled copy of
// the pipeline. A probe leaks iff the conditional distributions differ — an
// information-theoretic statement with integer-count certainty, no sampling,
// no thresholds.
//
// Feasibility is bounded by the number of free bits a probe sees; probes
// whose enumeration would be too large are reported as skipped (the sampling
// engine covers them). For the paper's Kronecker delta every probe fits
// comfortably.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/netlist/ir.hpp"

namespace sca::verif {

struct ExactOptions {
  /// Maximum enumeration size: secret bits + free bits per probe.
  std::size_t max_vars = 26;
  /// Maximum observation width (distribution alphabet = 2^bits).
  std::size_t max_observation_bits = 16;
  /// Unroll depth; 0 = sequential_depth(nl) + 1 (the minimum sound value).
  std::size_t cycles = 0;
  /// Worker threads for the per-probe enumerations (0 = SCA_THREADS env,
  /// else hardware concurrency). The verdict is exact either way; results
  /// are reported in the same deterministic order for any thread count.
  unsigned threads = 0;
};

struct ExactProbeResult {
  netlist::SignalId probe = netlist::kNoSignal;
  std::string name;              ///< representative signal name
  std::size_t observation_bits = 0;
  std::size_t secret_bits = 0;   ///< secret bits the observation can reach
  std::size_t free_bits = 0;     ///< enumerated share/mask bits
  bool skipped = false;          ///< enumeration exceeded the limits
  bool leaks = false;
  /// Largest total-variation distance between two secret-conditioned
  /// observation distributions (0 exactly when secure).
  double max_tv_distance = 0.0;
  /// A pair of full secret values whose distributions differ (valid if
  /// leaks). Secret bits outside the probe's reach are zero.
  std::uint64_t witness_a = 0;
  std::uint64_t witness_b = 0;
};

struct ExactReport {
  std::vector<ExactProbeResult> probes;  ///< one per unique observation set
  bool any_leak = false;
  bool any_skipped = false;
  std::size_t probes_total = 0;
  std::size_t probes_leaking = 0;

  /// Leaking probes, most severe first.
  std::vector<const ExactProbeResult*> leaking() const;
};

/// Runs the exact first-order glitch-extended verification over all probe
/// positions (every signal; probes with identical observation sets are
/// deduplicated). The netlist must be a pipeline (no register feedback) and
/// all its secrets are evaluated jointly.
ExactReport verify_first_order_glitch(const netlist::Netlist& nl,
                                      const ExactOptions& options = {});

/// Exact conditional distribution of one probe's observation: result[v] is
/// the histogram (observation value -> count) given the reachable secret
/// bits take value v. Use for root-cause analysis (e.g. the paper's
/// x1 = x5 = 0 argument). Throws if the probe exceeds the limits.
std::map<std::uint64_t, std::map<std::uint64_t, std::uint64_t>>
exact_probe_distribution(const netlist::Netlist& nl, netlist::SignalId probe,
                         const ExactOptions& options = {});

/// Renders the report as an aligned text table.
std::string to_string(const ExactReport& report);

}  // namespace sca::verif
