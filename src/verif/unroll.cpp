#include "src/verif/unroll.hpp"

#include <limits>

#include "src/common/check.hpp"
#include "src/netlist/cone.hpp"

namespace sca::verif {

using common::require;
using netlist::GateKind;
using netlist::Netlist;
using netlist::SignalId;

std::size_t sequential_depth(const Netlist& nl) {
  // depth(reg) = 1 + max depth over registers in the combinational support
  // of its D input; inputs have depth 0. Computed by DFS with cycle check.
  const std::vector<SignalId> regs = nl.registers();
  if (regs.empty()) return 0;
  const netlist::StableSupport supports(nl);

  enum class State : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<State> state(nl.size(), State::kWhite);
  std::vector<std::size_t> depth(nl.size(), 0);

  // Iterative DFS over the register dependency graph.
  struct Frame {
    SignalId reg;
    std::vector<SignalId> deps;
    std::size_t next = 0;
  };
  auto reg_deps = [&](SignalId reg) {
    std::vector<SignalId> deps;
    const SignalId d = nl.gate(reg).fanin[0];
    for (std::size_t idx : supports.support(d).set_bits()) {
      const SignalId src = supports.stable_points()[idx];
      if (nl.kind(src) == GateKind::kReg) deps.push_back(src);
    }
    return deps;
  };

  for (SignalId root : regs) {
    if (state[root] != State::kWhite) continue;
    std::vector<Frame> stack;
    stack.push_back({root, reg_deps(root)});
    state[root] = State::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next < frame.deps.size()) {
        const SignalId dep = frame.deps[frame.next++];
        if (state[dep] == State::kGray) {
          // The gray frames from `dep` up to the top of the stack are the
          // cycle; report the whole path, not just the re-encountered node.
          std::string path;
          bool in_cycle = false;
          for (const Frame& f : stack) {
            if (f.reg == dep) in_cycle = true;
            if (in_cycle) path += nl.signal_name(f.reg) + " -> ";
          }
          path += nl.signal_name(dep);
          throw common::Error(
              "sequential_depth: register feedback cycle " + path +
              " — circuit is not a pipeline (cut it with "
              "netlist::extract_slice, or annotate the loop registers)");
        }
        if (state[dep] == State::kWhite) {
          state[dep] = State::kGray;
          stack.push_back({dep, reg_deps(dep)});
        }
      } else {
        std::size_t d = 1;
        for (SignalId dep : frame.deps) d = std::max(d, depth[dep] + 1);
        depth[frame.reg] = d;
        state[frame.reg] = State::kBlack;
        stack.pop_back();
      }
    }
  }

  std::size_t max_depth = 0;
  for (SignalId r : regs) max_depth = std::max(max_depth, depth[r]);
  return max_depth;
}

Unrolled unroll(const Netlist& nl, std::size_t cycles,
                const std::vector<SignalId>& held_inputs) {
  require(cycles >= 1, "unroll: need at least one cycle");
  nl.validate();
  std::vector<bool> held(nl.size(), false);
  for (SignalId id : held_inputs) {
    require(id < nl.size() && nl.kind(id) == GateKind::kInput,
            "unroll: held signal is not a primary input");
    held[id] = true;
  }

  Unrolled out;
  out.cycles = cycles;
  out.map.assign(cycles, std::vector<SignalId>(nl.size(), netlist::kNoSignal));

  const std::vector<SignalId> order = nl.topological_order();
  for (std::size_t c = 0; c < cycles; ++c) {
    for (SignalId id : order) {
      const netlist::Gate& g = nl.gate(id);
      SignalId mapped = netlist::kNoSignal;
      switch (g.kind) {
        case GateKind::kInput: {
          if (held[id] && c > 0) {
            // Held input: every cycle observes the single cycle-0 instance.
            mapped = out.map[0][id];
            break;
          }
          // Fresh input instance per cycle.
          const netlist::InputInfo* info = nullptr;
          for (const auto& in : nl.inputs())
            if (in.signal == id) info = &in;
          SCA_ASSERT(info != nullptr, "unroll: input without info");
          mapped = out.nl.add_input(
              info->role,
              held[id] ? nl.signal_name(id)
                       : nl.signal_name(id) + "@c" + std::to_string(c),
              info->share);
          out.input_cycle.push_back(c);
          out.input_original.push_back(id);
          break;
        }
        case GateKind::kReg:
          // Value during cycle c = D function during cycle c-1; undefined at
          // cycle 0 (cold start).
          mapped = (c == 0) ? netlist::kNoSignal : out.map[c - 1][g.fanin[0]];
          break;
        case GateKind::kConst0:
        case GateKind::kConst1:
          mapped = out.nl.constant(g.kind == GateKind::kConst1);
          break;
        default: {
          const std::size_t arity = netlist::gate_arity(g.kind);
          std::array<SignalId, 3> fan = {netlist::kNoSignal, netlist::kNoSignal,
                                         netlist::kNoSignal};
          bool defined = true;
          for (std::size_t i = 0; i < arity; ++i) {
            fan[i] = out.map[c][g.fanin[i]];
            if (fan[i] == netlist::kNoSignal) defined = false;
          }
          if (defined) mapped = out.nl.add_gate(g.kind, fan[0], fan[1], fan[2]);
          break;
        }
      }
      out.map[c][id] = mapped;
    }
  }
  return out;
}

}  // namespace sca::verif
