// Sequential-to-combinational unrolling.
//
// The exact probing verifier needs every register's content expressed as a
// Boolean function of primary inputs. Unrolling W cycles creates W copies of
// each primary input (cycle 0 = oldest); a register instance at cycle c
// aliases its D function at cycle c-1. If W exceeds the circuit's sequential
// depth, every signal at the last cycle is a function of real inputs only
// (no cold-start register zeros reach it).
//
// Only pipelines (acyclic register dependency graphs) can be unrolled this
// way; circuits with register feedback (e.g. the AES controller) are
// rejected — they are evaluated with the sampling engine instead.
#pragma once

#include <cstdint>
#include <vector>

#include "src/netlist/ir.hpp"

namespace sca::verif {

struct Unrolled {
  /// Purely combinational netlist (inputs and gates, no registers).
  netlist::Netlist nl;
  /// map[c][orig] = unrolled signal holding original signal `orig`'s value
  /// during cycle c (kNoSignal where the value would depend on the cold
  /// start, i.e. for early cycles of deep registers).
  std::vector<std::vector<netlist::SignalId>> map;
  /// For each unrolled primary input: which cycle's copy it is and which
  /// original input it instantiates.
  std::vector<std::size_t> input_cycle;
  std::vector<netlist::SignalId> input_original;
  std::size_t cycles = 0;
};

/// Longest register-to-register chain + 1; 0 for purely combinational
/// circuits. Throws sca::common::Error if the register graph has a cycle.
std::size_t sequential_depth(const netlist::Netlist& nl);

/// Unrolls `nl` over `cycles` cycles. Signals whose value at a given cycle
/// would still depend on the cold start are mapped to kNoSignal; at the last
/// cycle, all signals are fully defined iff cycles > sequential_depth(nl).
Unrolled unroll(const netlist::Netlist& nl, std::size_t cycles);

}  // namespace sca::verif
