// Sequential-to-combinational unrolling.
//
// The exact probing verifier needs every register's content expressed as a
// Boolean function of primary inputs. Unrolling W cycles creates W copies of
// each primary input (cycle 0 = oldest); a register instance at cycle c
// aliases its D function at cycle c-1. If W exceeds the circuit's sequential
// depth, every signal at the last cycle is a function of real inputs only
// (no cold-start register zeros reach it).
//
// Only pipelines (acyclic register dependency graphs) can be unrolled this
// way; circuits with register feedback (e.g. the AES controller) are
// rejected — they are either evaluated with the sampling engine or first
// cut into a feedback-free slice (netlist/slice.hpp), whose cut-register
// inputs are then unrolled as *held* inputs (one instance shared by every
// cycle, matching a register that keeps its value over the whole window).
#pragma once

#include <cstdint>
#include <vector>

#include "src/netlist/ir.hpp"

namespace sca::verif {

struct Unrolled {
  /// Purely combinational netlist (inputs and gates, no registers).
  netlist::Netlist nl;
  /// map[c][orig] = unrolled signal holding original signal `orig`'s value
  /// during cycle c (kNoSignal where the value would depend on the cold
  /// start, i.e. for early cycles of deep registers).
  std::vector<std::vector<netlist::SignalId>> map;
  /// For each unrolled primary input: which cycle's copy it is and which
  /// original input it instantiates.
  std::vector<std::size_t> input_cycle;
  std::vector<netlist::SignalId> input_original;
  std::size_t cycles = 0;
};

/// Longest register-to-register chain + 1; 0 for purely combinational
/// circuits. Throws sca::common::Error if the register graph has a cycle;
/// the message spells out the full cycle path ("a -> b -> ... -> a") so the
/// offending feedback registers can be annotated and cut.
std::size_t sequential_depth(const netlist::Netlist& nl);

/// Unrolls `nl` over `cycles` cycles. Signals whose value at a given cycle
/// would still depend on the cold start are mapped to kNoSignal; at the last
/// cycle, all signals are fully defined iff cycles > sequential_depth(nl).
///
/// Inputs listed in `held_inputs` are instantiated once (at cycle 0) and
/// every later cycle aliases that single instance — the model of a slice
/// input standing in for a cut register that holds its value across the
/// whole unroll window. All other inputs get a fresh instance per cycle.
Unrolled unroll(const netlist::Netlist& nl, std::size_t cycles,
                const std::vector<netlist::SignalId>& held_inputs = {});

}  // namespace sca::verif
