#include "src/aes/sbox.hpp"

#include "src/common/bitops.hpp"
#include "src/gf/gf256.hpp"

namespace sca::aes {

namespace {

gf::BitMatrix build_affine_matrix() {
  // Row i of the AES affine matrix: bit j set iff j is in
  // {i, i+4, i+5, i+6, i+7} mod 8 (FIPS-197 5.1.1).
  gf::BitMatrix m(8, 8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t off : {0u, 4u, 5u, 6u, 7u}) m.set(i, (i + off) % 8, true);
  return m;
}

std::array<std::uint8_t, 256> build_sbox_table() {
  std::array<std::uint8_t, 256> t{};
  for (unsigned x = 0; x < 256; ++x)
    t[x] = sbox_affine(gf::gf256_inv(static_cast<std::uint8_t>(x)));
  return t;
}

std::array<std::uint8_t, 256> build_inv_sbox_table() {
  std::array<std::uint8_t, 256> t{};
  const auto& fwd = sbox_table();
  for (unsigned x = 0; x < 256; ++x) t[fwd[x]] = static_cast<std::uint8_t>(x);
  return t;
}

}  // namespace

const gf::BitMatrix& sbox_affine_matrix() {
  static const gf::BitMatrix m = build_affine_matrix();
  return m;
}

std::uint8_t sbox_affine(std::uint8_t x) {
  return static_cast<std::uint8_t>(sbox_affine_matrix().apply(x) ^
                                   kSboxAffineConstant);
}

const std::array<std::uint8_t, 256>& sbox_table() {
  static const std::array<std::uint8_t, 256> t = build_sbox_table();
  return t;
}

std::uint8_t sbox(std::uint8_t x) { return sbox_table()[x]; }

std::uint8_t inv_sbox(std::uint8_t x) {
  static const std::array<std::uint8_t, 256> t = build_inv_sbox_table();
  return t[x];
}

}  // namespace sca::aes
