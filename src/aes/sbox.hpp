// The AES Sbox and its algebraic decomposition.
//
// S(x) = A(x^-1) where x^-1 is inversion in GF(2^8)/0x11B (with 0^-1 := 0)
// and A is the affine transformation over GF(2)^8 with constant 0x63.
// The decomposed pieces are exposed because the masked hardware Sbox
// implements exactly this decomposition, and tests validate each stage.
#pragma once

#include <array>
#include <cstdint>

#include "src/gf/gf2.hpp"

namespace sca::aes {

/// Forward Sbox lookup (table generated from the algebraic definition).
std::uint8_t sbox(std::uint8_t x);

/// Inverse Sbox lookup.
std::uint8_t inv_sbox(std::uint8_t x);

/// The affine transformation A(x) = M * x + 0x63 applied after inversion.
std::uint8_t sbox_affine(std::uint8_t x);

/// The 8x8 GF(2) matrix of the affine transformation.
const gf::BitMatrix& sbox_affine_matrix();

/// The affine constant 0x63.
inline constexpr std::uint8_t kSboxAffineConstant = 0x63;

/// Full 256-entry forward table (e.g. for bulk software encryption).
const std::array<std::uint8_t, 256>& sbox_table();

}  // namespace sca::aes
