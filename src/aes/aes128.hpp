// Reference (unmasked, software) AES-128 per FIPS-197.
//
// This is the functional golden model: the masked gate-level AES core must
// produce, after recombining shares, exactly these ciphertexts.
#pragma once

#include <array>
#include <cstdint>

namespace sca::aes {

using Block = std::array<std::uint8_t, 16>;
using Key128 = std::array<std::uint8_t, 16>;

/// Expanded AES-128 key schedule: 11 round keys of 16 bytes.
using KeySchedule = std::array<Block, 11>;

/// Expands a 128-bit cipher key into the 11 round keys.
KeySchedule expand_key(const Key128& key);

/// Encrypts one block with AES-128.
Block encrypt(const Block& plaintext, const Key128& key);

/// Decrypts one block with AES-128.
Block decrypt(const Block& ciphertext, const Key128& key);

/// Individual round transformations, exposed for cross-checking the masked
/// datapath stage by stage. State is column-major as in FIPS-197: byte i
/// sits at row (i % 4), column (i / 4).
Block sub_bytes(const Block& s);
Block shift_rows(const Block& s);
Block mix_columns(const Block& s);
Block add_round_key(const Block& s, const Block& rk);
Block inv_shift_rows(const Block& s);
Block inv_mix_columns(const Block& s);

}  // namespace sca::aes
