#include "src/aes/aes128.hpp"

#include "src/aes/sbox.hpp"
#include "src/gf/gf256.hpp"

namespace sca::aes {

namespace {

std::uint8_t xtime(std::uint8_t x) { return gf::gf256_mul(x, 0x02); }

}  // namespace

KeySchedule expand_key(const Key128& key) {
  KeySchedule ks{};
  ks[0] = key;
  std::uint8_t rcon = 0x01;
  for (std::size_t round = 1; round <= 10; ++round) {
    const Block& prev = ks[round - 1];
    Block& out = ks[round];
    // First word: RotWord + SubWord + Rcon applied to the previous last word.
    std::array<std::uint8_t, 4> temp = {prev[13], prev[14], prev[15], prev[12]};
    for (auto& b : temp) b = sbox(b);
    temp[0] ^= rcon;
    rcon = xtime(rcon);
    for (std::size_t i = 0; i < 4; ++i) out[i] = prev[i] ^ temp[i];
    for (std::size_t i = 4; i < 16; ++i) out[i] = prev[i] ^ out[i - 4];
  }
  return ks;
}

Block sub_bytes(const Block& s) {
  Block out;
  for (std::size_t i = 0; i < 16; ++i) out[i] = sbox(s[i]);
  return out;
}

Block shift_rows(const Block& s) {
  Block out;
  // Row r rotates left by r; byte (r, c) lives at index c*4 + r.
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) out[c * 4 + r] = s[((c + r) % 4) * 4 + r];
  return out;
}

Block inv_shift_rows(const Block& s) {
  Block out;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) out[((c + r) % 4) * 4 + r] = s[c * 4 + r];
  return out;
}

Block mix_columns(const Block& s) {
  Block out;
  for (std::size_t c = 0; c < 4; ++c) {
    const std::uint8_t a0 = s[c * 4 + 0], a1 = s[c * 4 + 1];
    const std::uint8_t a2 = s[c * 4 + 2], a3 = s[c * 4 + 3];
    out[c * 4 + 0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3);
    out[c * 4 + 1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3);
    out[c * 4 + 2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3);
    out[c * 4 + 3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3));
  }
  return out;
}

Block inv_mix_columns(const Block& s) {
  Block out;
  for (std::size_t c = 0; c < 4; ++c) {
    const std::uint8_t a0 = s[c * 4 + 0], a1 = s[c * 4 + 1];
    const std::uint8_t a2 = s[c * 4 + 2], a3 = s[c * 4 + 3];
    auto m = [](std::uint8_t coeff, std::uint8_t v) {
      return gf::gf256_mul(coeff, v);
    };
    out[c * 4 + 0] = static_cast<std::uint8_t>(m(0x0E, a0) ^ m(0x0B, a1) ^
                                               m(0x0D, a2) ^ m(0x09, a3));
    out[c * 4 + 1] = static_cast<std::uint8_t>(m(0x09, a0) ^ m(0x0E, a1) ^
                                               m(0x0B, a2) ^ m(0x0D, a3));
    out[c * 4 + 2] = static_cast<std::uint8_t>(m(0x0D, a0) ^ m(0x09, a1) ^
                                               m(0x0E, a2) ^ m(0x0B, a3));
    out[c * 4 + 3] = static_cast<std::uint8_t>(m(0x0B, a0) ^ m(0x0D, a1) ^
                                               m(0x09, a2) ^ m(0x0E, a3));
  }
  return out;
}

Block add_round_key(const Block& s, const Block& rk) {
  Block out;
  for (std::size_t i = 0; i < 16; ++i) out[i] = s[i] ^ rk[i];
  return out;
}

Block encrypt(const Block& plaintext, const Key128& key) {
  const KeySchedule ks = expand_key(key);
  Block state = add_round_key(plaintext, ks[0]);
  for (std::size_t round = 1; round <= 9; ++round) {
    state = sub_bytes(state);
    state = shift_rows(state);
    state = mix_columns(state);
    state = add_round_key(state, ks[round]);
  }
  state = sub_bytes(state);
  state = shift_rows(state);
  state = add_round_key(state, ks[10]);
  return state;
}

Block decrypt(const Block& ciphertext, const Key128& key) {
  const KeySchedule ks = expand_key(key);
  Block state = add_round_key(ciphertext, ks[10]);
  state = inv_shift_rows(state);
  for (std::size_t i = 0; i < 16; ++i) state[i] = inv_sbox(state[i]);
  for (std::size_t round = 9; round >= 1; --round) {
    state = add_round_key(state, ks[round]);
    state = inv_mix_columns(state);
    state = inv_shift_rows(state);
    for (std::size_t i = 0; i < 16; ++i) state[i] = inv_sbox(state[i]);
  }
  return add_round_key(state, ks[0]);
}

}  // namespace sca::aes
