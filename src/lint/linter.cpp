#include "src/lint/linter.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/common/check.hpp"
#include "src/netlist/cone.hpp"
#include "src/verif/unroll.hpp"

namespace sca::lint {

using netlist::GateKind;
using netlist::Netlist;
using netlist::SignalId;

std::string to_string(LintModel model) {
  switch (model) {
    case LintModel::kGlitch:
      return "glitch";
    case LintModel::kGlitchTransition:
      return "glitch+transition";
  }
  return "?";
}

std::string_view lint_rule_name(LintRule rule) {
  switch (rule) {
    case LintRule::kR1FreshReuse:
      return "R1-fresh-reuse";
    case LintRule::kR2DomainCrossing:
      return "R2-domain-crossing";
    case LintRule::kR3MissingRegister:
      return "R3-missing-register";
    case LintRule::kR4TransitionHazard:
      return "R4-transition-hazard";
  }
  return "?";
}

namespace {

/// "@t", "@t-1", ... suffix for a value `cycles_back` before the probe.
std::string cycle_suffix(std::size_t cycles_back) {
  if (cycles_back == 0) return "@t";
  return "@t-" + std::to_string(cycles_back);
}

/// Classifies a flagged glitch-only verdict. Completed sharings drawn at
/// the probe cycle mean share inputs reach the probe combinationally (R3);
/// otherwise randomness shared between several residual signals is the
/// Eq. (6) pattern (R1); a hazard confined to the signals themselves —
/// typically a single node mixing sibling shares — is a domain crossing
/// (R2).
LintRule classify(const TupleVerdict& verdict) {
  if (verdict.raw_share_path) return LintRule::kR3MissingRegister;
  if (!verdict.shared_fresh.empty() && verdict.residual_elements.size() >= 2)
    return LintRule::kR1FreshReuse;
  return LintRule::kR2DomainCrossing;
}

}  // namespace

LintReport run_lint(const Netlist& nl, const LintOptions& options) {
  const bool transition = options.model == LintModel::kGlitchTransition;
  // +1 cycle so the probe cycle is past the pipeline's cold start, +1 more
  // so the transition-extended previous cycle is too. sequential_depth
  // rejects register feedback (same circuits verif::exact rejects).
  const std::size_t cycles =
      verif::sequential_depth(nl) + 1 + (transition ? 1 : 0);
  const verif::Unrolled unrolled = verif::unroll(nl, cycles);
  const netlist::StableSupport supports(nl);
  const TupleAnalyzer analyzer(nl, unrolled);

  // Deduplicated probe universe, same semantics as eval's
  // build_probe_universe (not reused to keep lint independent of core):
  // probes observing identical stable sets collapse, named representatives
  // preferred.
  std::map<std::vector<SignalId>, SignalId> unique;
  for (SignalId id = 0; id < nl.size(); ++id) {
    const GateKind k = nl.kind(id);
    if (k == GateKind::kConst0 || k == GateKind::kConst1) continue;
    if (!options.scope_filter.empty()) {
      const auto name = nl.explicit_name(id);
      if (!name || name->rfind(options.scope_filter, 0) != 0) continue;
    }
    std::vector<SignalId> observed;
    for (std::size_t idx : supports.support(id).set_bits())
      observed.push_back(supports.stable_points()[idx]);
    if (observed.empty()) continue;
    auto [it, inserted] = unique.try_emplace(std::move(observed), id);
    if (!inserted && !nl.explicit_name(it->second) && nl.explicit_name(id))
      it->second = id;
  }

  LintReport report;
  report.model = options.model;
  const std::size_t probe_cycle = analyzer.probe_cycle();

  for (const auto& [observed, representative] : unique) {
    ++report.probes_checked;

    std::vector<TupleElement> tuple;
    tuple.reserve(observed.size() * (transition ? 2 : 1));
    for (const SignalId s : observed) tuple.push_back({s, 0});
    if (transition)
      for (const SignalId s : observed) tuple.push_back({s, 1});

    const TupleVerdict verdict = analyzer.analyze(tuple);
    report.cuts_applied += verdict.cuts_applied;
    if (verdict.secure) continue;
    ++report.probes_flagged;

    // A transition-extended flag can be inherited from the glitch model
    // (then the glitch verdict carries the sharper witness) or genuinely
    // need the previous cycle — only the latter is an R4.
    LintRule rule;
    const TupleVerdict* witness = &verdict;
    TupleVerdict glitch_verdict;
    if (transition) {
      glitch_verdict = analyzer.analyze(std::vector<TupleElement>(
          tuple.begin(), tuple.begin() + static_cast<std::ptrdiff_t>(observed.size())));
      if (glitch_verdict.secure) {
        rule = LintRule::kR4TransitionHazard;
      } else {
        rule = classify(glitch_verdict);
        witness = &glitch_verdict;
      }
    } else {
      rule = classify(verdict);
    }

    LintFinding finding;
    finding.rule = rule;
    finding.probe = representative;
    finding.probe_name = nl.signal_name(representative);
    for (const std::size_t e : witness->residual_elements) {
      const std::size_t back = e / observed.size();  // 0 = probe cycle
      finding.offending.push_back(nl.signal_name(observed[e % observed.size()]) +
                                  cycle_suffix(back));
    }
    for (const SharedFresh& sf : witness->shared_fresh)
      finding.shared_fresh.push_back(nl.signal_name(sf.input) +
                                     cycle_suffix(probe_cycle - sf.cycle));
    for (const CompletedSharing& c : witness->completed)
      finding.completed.push_back("s" + std::to_string(c.secret) + ".b" +
                                  std::to_string(c.bit) +
                                  cycle_suffix(probe_cycle - c.cycle));

    std::ostringstream msg;
    msg << lint_rule_name(rule) << ": probe " << finding.probe_name
        << " completes ";
    for (std::size_t i = 0; i < finding.completed.size(); ++i)
      msg << (i ? ", " : "") << finding.completed[i];
    if (!finding.offending.empty()) {
      msg << " via ";
      for (std::size_t i = 0; i < finding.offending.size(); ++i)
        msg << (i ? ", " : "") << finding.offending[i];
    }
    if (!finding.shared_fresh.empty()) {
      msg << " (shared fresh ";
      for (std::size_t i = 0; i < finding.shared_fresh.size(); ++i)
        msg << (i ? ", " : "") << finding.shared_fresh[i];
      msg << ")";
    }
    finding.message = msg.str();
    report.findings.push_back(std::move(finding));
  }
  return report;
}

std::string to_string(const LintReport& report) {
  std::ostringstream out;
  out << "lint[" << to_string(report.model) << "]: " << report.probes_checked
      << " probes, " << report.probes_flagged << " flagged, "
      << report.cuts_applied << " OTP cuts — "
      << (report.clean() ? "CLEAN" : "FLAGGED") << "\n";
  for (const LintFinding& f : report.findings)
    out << "  " << f.message << "\n";
  return out.str();
}

}  // namespace sca::lint
