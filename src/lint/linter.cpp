#include "src/lint/linter.hpp"

#include <algorithm>
#include <iterator>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "src/common/check.hpp"
#include "src/common/thread_pool.hpp"
#include "src/netlist/cone.hpp"
#include "src/netlist/slice.hpp"
#include "src/verif/unroll.hpp"

namespace sca::lint {

using netlist::GateKind;
using netlist::Netlist;
using netlist::SignalId;

std::string to_string(LintModel model) {
  switch (model) {
    case LintModel::kGlitch:
      return "glitch";
    case LintModel::kGlitchTransition:
      return "glitch+transition";
  }
  return "?";
}

std::string_view lint_rule_name(LintRule rule) {
  switch (rule) {
    case LintRule::kR1FreshReuse:
      return "R1-fresh-reuse";
    case LintRule::kR2DomainCrossing:
      return "R2-domain-crossing";
    case LintRule::kR3MissingRegister:
      return "R3-missing-register";
    case LintRule::kR4TransitionHazard:
      return "R4-transition-hazard";
  }
  return "?";
}

namespace {

/// "@t", "@t-1", ... suffix for a value `cycles_back` before the probe.
std::string cycle_suffix(std::size_t cycles_back) {
  if (cycles_back == 0) return "@t";
  return "@t-" + std::to_string(cycles_back);
}

/// Classifies a flagged glitch-only verdict. Completed sharings drawn at
/// the probe cycle mean share inputs reach the probe combinationally (R3);
/// otherwise randomness shared between several residual signals is the
/// Eq. (6) pattern (R1); a hazard confined to the signals themselves —
/// typically a single node mixing sibling shares — is a domain crossing
/// (R2).
LintRule classify(const TupleVerdict& verdict) {
  if (verdict.raw_share_path) return LintRule::kR3MissingRegister;
  if (!verdict.shared_fresh.empty() && verdict.residual_elements.size() >= 2)
    return LintRule::kR1FreshReuse;
  return LintRule::kR2DomainCrossing;
}

/// Total-variation distance between two equal-total count histograms.
double histogram_tv(const std::vector<std::uint32_t>& p,
                    const std::vector<std::uint32_t>& q) {
  std::uint64_t total = 0, abs_diff_doubled = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    total += p[i];
    abs_diff_doubled += p[i] > q[i] ? (p[i] - q[i]) : (q[i] - p[i]);
  }
  if (total == 0) return 0.0;
  return 0.5 * static_cast<double>(abs_diff_doubled) /
         static_cast<double>(total);
}

/// Builds the counterexample certificate for one flagged probe by replaying
/// it through the exact engine.
LintCertificate make_certificate(const verif::ProbeDistributionEngine& engine,
                                 netlist::SignalId probe) {
  LintCertificate cert;
  const verif::ProbeDistribution dist = engine.distribution(probe);
  cert.secret_bits = dist.secret_bits;
  if (!dist.feasible) {
    cert.unavailable_reason = dist.infeasible_reason;
    return cert;
  }
  if (dist.counts.empty()) {
    cert.unavailable_reason =
        "the probe's observation reaches no complete sharing";
    return cert;
  }
  // Most-distinguishing secret pair.
  std::size_t best_a = 0, best_b = 0;
  double best_tv = 0.0;
  for (std::size_t a = 0; a < dist.counts.size(); ++a)
    for (std::size_t b = a + 1; b < dist.counts.size(); ++b) {
      const double tv = histogram_tv(dist.counts[a], dist.counts[b]);
      if (tv > best_tv) {
        best_tv = tv;
        best_a = a;
        best_b = b;
      }
    }
  if (best_tv == 0.0) {
    cert.unavailable_reason =
        "exact distributions are identical for every secret value — the "
        "finding is a lattice over-approximation";
    return cert;
  }
  // Observation value where secret_a's count exceeds secret_b's (one always
  // exists when the distance is positive, since totals are equal).
  std::size_t best_obs = 0;
  std::int64_t best_diff = 0;
  for (std::size_t o = 0; o < dist.counts[best_a].size(); ++o) {
    const std::int64_t diff =
        static_cast<std::int64_t>(dist.counts[best_a][o]) -
        static_cast<std::int64_t>(dist.counts[best_b][o]);
    if (diff > best_diff) {
      best_diff = diff;
      best_obs = o;
    }
  }
  cert.secret_a = best_a;
  cert.secret_b = best_b;
  cert.tv_distance = best_tv;
  cert.observation = best_obs;
  cert.count_a = dist.counts[best_a][best_obs];
  cert.count_b = dist.counts[best_b][best_obs];
  cert.assignment = engine.preimage(probe, best_a, best_obs);
  cert.available = true;
  return cert;
}

}  // namespace

std::pair<Netlist, SignalId> pair_probe_netlist(const Netlist& nl, SignalId a,
                                                SignalId b) {
  Netlist out = nl;
  const SignalId combiner = out.and_(a, b);
  out.name_signal(combiner, "lint2.pair(" + nl.signal_name(a) + "&" +
                                nl.signal_name(b) + ")");
  return {std::move(out), combiner};
}

LintReport run_lint(const Netlist& nl, const LintOptions& options) {
  common::require(options.order >= 1 && options.order <= 2,
                  "lint: supported orders are 1 and 2");
  const bool transition = options.model == LintModel::kGlitchTransition;

  // Feedback handling. kReject keeps the pipeline-only contract (the
  // sequential_depth error propagates, same as verif::exact); kSlice cuts a
  // feedback design at its state registers and lints the slice, with the
  // cut inputs *held* across the unroll window like the registers they
  // replace.
  std::optional<netlist::Slice> slice;
  const Netlist* work = &nl;
  std::vector<SignalId> held;
  std::size_t depth = 0;
  if (options.feedback == FeedbackMode::kSlice) {
    bool feedback = false;
    try {
      depth = verif::sequential_depth(nl);
    } catch (const common::Error&) {
      feedback = true;
    }
    if (feedback) {
      slice.emplace(netlist::extract_slice(nl));
      work = &slice->nl;
      held = slice->held_inputs;
      depth = verif::sequential_depth(*work);
    }
  } else {
    depth = verif::sequential_depth(nl);
  }

  // +1 cycle so the probe cycle is past the pipeline's cold start, +1 more
  // so the transition-extended previous cycle is too.
  const std::size_t cycles = depth + 1 + (transition ? 1 : 0);
  const verif::Unrolled unrolled = verif::unroll(*work, cycles, held);
  const netlist::StableSupport supports(*work);
  const TupleAnalyzer analyzer(*work, unrolled);

  // Deduplicated probe universe, same semantics as eval's
  // build_probe_universe (not reused to keep lint independent of core):
  // probes observing identical stable sets collapse, named representatives
  // preferred.
  std::map<std::vector<SignalId>, SignalId> unique;
  for (SignalId id = 0; id < work->size(); ++id) {
    const GateKind k = work->kind(id);
    if (k == GateKind::kConst0 || k == GateKind::kConst1) continue;
    if (!options.scope_filter.empty() || !options.scope_contains.empty()) {
      const auto name = work->explicit_name(id);
      if (!name) continue;
      if (!options.scope_filter.empty() &&
          name->rfind(options.scope_filter, 0) != 0)
        continue;
      if (!options.scope_contains.empty() &&
          name->find(options.scope_contains) == std::string::npos)
        continue;
    }
    std::vector<SignalId> observed;
    for (std::size_t idx : supports.support(id).set_bits())
      observed.push_back(supports.stable_points()[idx]);
    if (observed.empty()) continue;
    auto [it, inserted] = unique.try_emplace(std::move(observed), id);
    if (!inserted && !work->explicit_name(it->second) &&
        work->explicit_name(id))
      it->second = id;
  }

  LintReport report;
  report.model = options.model;
  report.order = options.order;
  report.sliced = slice.has_value();
  report.cut_registers = slice ? slice->cuts.size() : 0;
  const std::size_t probe_cycle = analyzer.probe_cycle();

  std::vector<std::vector<SignalId>> probe_obs;
  std::vector<SignalId> probe_rep;
  probe_obs.reserve(unique.size());
  probe_rep.reserve(unique.size());
  for (const auto& [observed, representative] : unique) {
    probe_obs.push_back(observed);
    probe_rep.push_back(representative);
  }
  report.probes_checked = probe_obs.size();

  // The unit of analysis: one probe (order 1, or the one-probe-universe
  // fallback at order 2) or the sorted union of a pair's observation sets.
  constexpr std::size_t kNoProbe = std::numeric_limits<std::size_t>::max();
  struct WorkItem {
    std::vector<SignalId> observed;  // sorted union the tuple is built from
    std::size_t a = 0;               // first probe index into probe_rep
    std::size_t b = kNoProbe;        // second probe index (order-2 pairs)
  };
  std::vector<WorkItem> items;
  if (options.order == 1 || probe_obs.size() == 1) {
    items.reserve(probe_obs.size());
    for (std::size_t i = 0; i < probe_obs.size(); ++i)
      items.push_back({probe_obs[i], i, kNoProbe});
  } else {
    // Pairs in lexicographic (i, j) order, deduplicated by union observation
    // set: coinciding unions are statistically identical, so the first pair
    // is the canonical representative and later hits only bump the counter.
    // With pair_cache off every pair is analyzed (the findings are still
    // canonicalized at assembly below, so the report is identical).
    report.pairs_enumerated = probe_obs.size() * (probe_obs.size() - 1) / 2;
    std::map<std::vector<SignalId>, std::size_t> canon;
    for (std::size_t i = 0; i < probe_obs.size(); ++i)
      for (std::size_t j = i + 1; j < probe_obs.size(); ++j) {
        std::vector<SignalId> united;
        united.reserve(probe_obs[i].size() + probe_obs[j].size());
        std::set_union(probe_obs[i].begin(), probe_obs[i].end(),
                       probe_obs[j].begin(), probe_obs[j].end(),
                       std::back_inserter(united));
        if (options.pair_cache) {
          if (canon.find(united) != canon.end()) {
            ++report.pairs_deduped;
            continue;
          }
          canon.emplace(united, items.size());
        }
        items.push_back({std::move(united), i, j});
      }
  }

  auto analyze_item = [&](const WorkItem& item) {
    std::vector<TupleElement> tuple;
    tuple.reserve(item.observed.size() * (transition ? 2 : 1));
    for (const SignalId s : item.observed) tuple.push_back({s, 0});
    if (transition)
      for (const SignalId s : item.observed) tuple.push_back({s, 1});
    return analyzer.analyze(tuple);
  };

  std::vector<TupleVerdict> verdicts(items.size());
  std::size_t analyzed = items.size();
  if (options.max_findings) {
    // Deterministic serial sweep with early exit: the prefilter only asks
    // "is there any finding?", so the first flagged set ends the scan.
    std::size_t flagged = 0;
    for (std::size_t k = 0; k < items.size(); ++k) {
      verdicts[k] = analyze_item(items[k]);
      if (!verdicts[k].secure && ++flagged >= options.max_findings) {
        analyzed = k + 1;
        report.truncated = analyzed < items.size();
        break;
      }
    }
  } else {
    common::parallel_for(items.size(), options.threads, [&](std::size_t k) {
      verdicts[k] = analyze_item(items[k]);
    });
  }

  // Canonicalization map for the pair_cache-off path: only the first pair
  // with a given union contributes (findings *and* counters), so the report
  // is bit-identical to the cached one.
  std::map<std::vector<SignalId>, std::size_t> emitted;
  for (std::size_t item_index = 0; item_index < analyzed; ++item_index) {
    const WorkItem& item = items[item_index];
    const std::vector<SignalId>& observed = item.observed;
    const SignalId representative = probe_rep[item.a];
    const TupleVerdict& verdict = verdicts[item_index];
    if (!options.pair_cache && item.b != kNoProbe) {
      if (emitted.find(observed) != emitted.end()) {
        ++report.pairs_deduped;
        continue;
      }
      emitted.emplace(observed, item_index);
    }
    report.cuts_applied += verdict.cuts_applied;
    if (verdict.secure) continue;
    ++report.probes_flagged;

    // A transition-extended flag can be inherited from the glitch model
    // (then the glitch verdict carries the sharper witness) or genuinely
    // need the previous cycle — only the latter is an R4.
    LintRule rule;
    const TupleVerdict* witness = &verdict;
    TupleVerdict glitch_verdict;
    if (transition) {
      std::vector<TupleElement> glitch_tuple;
      glitch_tuple.reserve(observed.size());
      for (const SignalId s : observed) glitch_tuple.push_back({s, 0});
      glitch_verdict = analyzer.analyze(glitch_tuple);
      if (glitch_verdict.secure) {
        rule = LintRule::kR4TransitionHazard;
      } else {
        rule = classify(glitch_verdict);
        witness = &glitch_verdict;
      }
    } else {
      rule = classify(verdict);
    }

    LintFinding finding;
    finding.rule = rule;
    finding.probe = representative;
    finding.probe_name = work->signal_name(representative);
    if (item.b != kNoProbe) {
      finding.probe2 = probe_rep[item.b];
      finding.probe2_name = work->signal_name(finding.probe2);
    }
    for (const std::size_t e : witness->residual_elements) {
      const std::size_t back = e / observed.size();  // 0 = probe cycle
      finding.offending.push_back(
          work->signal_name(observed[e % observed.size()]) +
          cycle_suffix(back));
    }
    for (const SharedFresh& sf : witness->shared_fresh)
      finding.shared_fresh.push_back(work->signal_name(sf.input) +
                                     cycle_suffix(probe_cycle - sf.cycle));
    for (const CompletedSharing& c : witness->completed)
      finding.completed.push_back(work->secret_group_name(c.secret) + ".b" +
                                  std::to_string(c.bit) +
                                  cycle_suffix(probe_cycle - c.cycle));

    std::ostringstream msg;
    msg << lint_rule_name(rule) << ": probe " << finding.probe_name;
    if (!finding.probe2_name.empty()) msg << " & " << finding.probe2_name;
    msg << " completes ";
    for (std::size_t i = 0; i < finding.completed.size(); ++i)
      msg << (i ? ", " : "") << finding.completed[i];
    if (!finding.offending.empty()) {
      msg << " via ";
      for (std::size_t i = 0; i < finding.offending.size(); ++i)
        msg << (i ? ", " : "") << finding.offending[i];
    }
    if (!finding.shared_fresh.empty()) {
      msg << " (shared fresh ";
      for (std::size_t i = 0; i < finding.shared_fresh.size(); ++i)
        msg << (i ? ", " : "") << finding.shared_fresh[i];
      msg << ")";
    }
    finding.message = msg.str();
    report.findings.push_back(std::move(finding));
  }

  // --- certification -------------------------------------------------------
  // Replay every finding through the exact engine built over the same
  // (possibly sliced) netlist. One engine per probing model amortizes the
  // unrolling; the per-finding enumerations run in parallel.
  if (options.certify && !report.findings.empty()) {
    // Order-2 findings replay through a copy of the (possibly sliced)
    // netlist where every flagged pair gets an AND combiner: the combiner's
    // glitch-extended cone is exactly the pair's union observation, so the
    // unchanged single-probe exact engine certifies the joint distribution.
    // Signal ids are preserved by the copy, so order-1 findings keep their
    // probe id on the same netlist and one engine per model serves both.
    Netlist pair_nl;
    const Netlist* cert_nl = work;
    std::vector<SignalId> cert_probe(report.findings.size());
    bool any_pair = false;
    for (const LintFinding& f : report.findings)
      any_pair = any_pair || f.probe2 != netlist::kNoSignal;
    if (any_pair) {
      pair_nl = *work;
      cert_nl = &pair_nl;
    }
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
      const LintFinding& f = report.findings[i];
      cert_probe[i] = f.probe2 == netlist::kNoSignal
                          ? f.probe
                          : pair_nl.and_(f.probe, f.probe2);
    }
    verif::ExactOptions base = options.certify_options;
    base.held_inputs = held;
    base.cycles = 0;  // managed here: minimum sound depth per model
    bool need_glitch = false, need_transition = false;
    for (const LintFinding& f : report.findings)
      (f.rule == LintRule::kR4TransitionHazard ? need_transition : need_glitch) =
          true;
    std::optional<verif::ProbeDistributionEngine> glitch_engine;
    std::optional<verif::ProbeDistributionEngine> transition_engine;
    if (need_glitch) {
      verif::ExactOptions o = base;
      o.transitions = false;
      glitch_engine.emplace(*cert_nl, o);
    }
    if (need_transition) {
      verif::ExactOptions o = base;
      o.transitions = true;
      transition_engine.emplace(*cert_nl, o);
    }
    common::parallel_for(
        report.findings.size(), options.threads, [&](std::size_t i) {
          LintFinding& f = report.findings[i];
          const verif::ProbeDistributionEngine& engine =
              f.rule == LintRule::kR4TransitionHazard ? *transition_engine
                                                      : *glitch_engine;
          f.certificate = make_certificate(engine, cert_probe[i]);
        });
  }
  return report;
}

std::string to_string(const LintReport& report) {
  std::ostringstream out;
  out << "lint[" << to_string(report.model) << ", order " << report.order
      << "]: " << report.probes_checked << " probes, ";
  if (report.order >= 2)
    out << report.pairs_enumerated << " pairs (" << report.pairs_deduped
        << " union-deduped), ";
  out << report.probes_flagged << " flagged, " << report.cuts_applied
      << " OTP cuts";
  if (report.truncated) out << " (truncated)";
  if (report.sliced)
    out << " (feedback sliced at " << report.cut_registers
        << " state registers)";
  out << " — " << (report.clean() ? "CLEAN" : "FLAGGED") << "\n";
  for (const LintFinding& f : report.findings) {
    out << "  " << f.message;
    if (f.certificate) {
      if (f.certificate->available)
        out << " [certified: secrets " << f.certificate->secret_a << " vs "
            << f.certificate->secret_b << ", tv=" << f.certificate->tv_distance
            << "]";
      else
        out << " [no certificate: " << f.certificate->unavailable_reason << "]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace sca::lint
