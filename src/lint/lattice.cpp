#include "src/lint/lattice.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "src/common/check.hpp"
#include "src/common/dynamic_bitset.hpp"

namespace sca::lint {

using common::DynamicBitset;
using common::require;
using netlist::GateKind;
using netlist::InputRole;
using netlist::Netlist;
using netlist::SignalId;

namespace {

/// The (L, N) abstraction of one cone node over the tuple-local variables.
struct Abs {
  DynamicBitset lin;
  DynamicBitset nonlin;
};

}  // namespace

TupleAnalyzer::TupleAnalyzer(const Netlist& original,
                             const verif::Unrolled& unrolled)
    : original_(&original), unrolled_(&unrolled) {
  require(unrolled.cycles > 0, "TupleAnalyzer: empty unrolling");
  last_cycle_ = unrolled.cycles - 1;
  input_index_.assign(unrolled.nl.size(), SIZE_MAX);
  const auto& inputs = unrolled.nl.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    input_index_[inputs[i].signal] = i;
}

TupleVerdict TupleAnalyzer::analyze(
    const std::vector<TupleElement>& elements) const {
  const Netlist& unl = unrolled_->nl;

  // --- resolve elements to unrolled signals -------------------------------
  std::vector<SignalId> element_ids;
  element_ids.reserve(elements.size());
  for (const TupleElement& e : elements) {
    require(e.cycle_back <= last_cycle_,
            "TupleAnalyzer: cycle_back outside the unroll window");
    const SignalId id = unrolled_->map[last_cycle_ - e.cycle_back][e.stable];
    require(id != netlist::kNoSignal,
            "TupleAnalyzer: element depends on the cold start (unroll "
            "deeper)");
    element_ids.push_back(id);
  }

  // --- collect the union combinational cone -------------------------------
  // Unrolled signal ids ascend topologically (fanins always precede their
  // gate), so a sorted id list is a topological order.
  std::vector<SignalId> cone;
  {
    std::vector<bool> seen(unl.size(), false);
    std::vector<SignalId> stack(element_ids.begin(), element_ids.end());
    while (!stack.empty()) {
      const SignalId id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = true;
      cone.push_back(id);
      const netlist::Gate& g = unl.gate(id);
      for (std::size_t k = 0; k < netlist::gate_arity(g.kind); ++k)
        stack.push_back(g.fanin[k]);
    }
    std::sort(cone.begin(), cone.end());
  }
  std::unordered_map<SignalId, std::size_t> cone_pos;
  cone_pos.reserve(cone.size());
  for (std::size_t i = 0; i < cone.size(); ++i) cone_pos[cone[i]] = i;

  // --- tuple-local variables ---------------------------------------------
  // Leaf variables are the share/fresh inputs present in the cone (control
  // inputs are public and treated as constants); virtual variables created
  // by cuts get the slots after them. A node can be cut at most once, so
  // |cone| extra slots always suffice.
  struct Var {
    bool fresh = false;               // fresh input or virtual
    SignalId input = netlist::kNoSignal;  // unrolled input (leaves only)
  };
  std::vector<Var> vars;
  std::vector<std::size_t> var_of_input(unl.inputs().size(), SIZE_MAX);
  for (const SignalId id : cone) {
    if (unl.kind(id) != GateKind::kInput) continue;
    const std::size_t ii = input_index_[id];
    const netlist::InputInfo& info = unl.inputs()[ii];
    if (info.role == InputRole::kControl) continue;
    var_of_input[ii] = vars.size();
    vars.push_back(Var{info.role == InputRole::kRandom, id});
  }
  const std::size_t leaf_vars = vars.size();
  const std::size_t var_capacity = leaf_vars + cone.size();

  // --- abstraction computation -------------------------------------------
  // resolved[pos] = var id of the virtual variable a cut assigned to the
  // node, SIZE_MAX when unresolved.
  std::vector<std::size_t> resolved(cone.size(), SIZE_MAX);
  std::vector<Abs> abs(cone.size());

  const auto recompute = [&]() {
    for (std::size_t i = 0; i < cone.size(); ++i) {
      Abs& a = abs[i];
      a.lin = DynamicBitset(var_capacity);
      a.nonlin = DynamicBitset(var_capacity);
      if (resolved[i] != SIZE_MAX) {
        a.lin.set(resolved[i]);
        continue;
      }
      const SignalId id = cone[i];
      const netlist::Gate& g = unl.gate(id);
      const auto fan = [&](std::size_t k) -> const Abs& {
        return abs[cone_pos.at(g.fanin[k])];
      };
      switch (g.kind) {
        case GateKind::kConst0:
        case GateKind::kConst1:
          break;
        case GateKind::kInput: {
          const std::size_t v = var_of_input[input_index_[id]];
          if (v != SIZE_MAX) a.lin.set(v);
          break;
        }
        case GateKind::kBuf:
        case GateKind::kNot:
          a = fan(0);
          break;
        case GateKind::kXor:
        case GateKind::kXnor:
          a.lin = fan(0).lin;
          a.lin ^= fan(1).lin;
          a.nonlin = fan(0).nonlin;
          a.nonlin |= fan(1).nonlin;
          break;
        case GateKind::kAnd:
        case GateKind::kNand:
        case GateKind::kOr:
        case GateKind::kNor:
          a.nonlin = fan(0).lin;
          a.nonlin |= fan(0).nonlin;
          a.nonlin |= fan(1).lin;
          a.nonlin |= fan(1).nonlin;
          break;
        case GateKind::kMux:
          for (std::size_t k = 0; k < 3; ++k) {
            a.nonlin |= fan(k).lin;
            a.nonlin |= fan(k).nonlin;
          }
          break;
        case GateKind::kReg:
          SCA_ASSERT(false, "TupleAnalyzer: register in unrolled netlist");
      }
    }
  };
  recompute();

  // Does any element depend on variable `v` when node `opaque` (SIZE_MAX =
  // none) is treated as a leaf? A cheap monotone reachability pass.
  std::vector<bool> dep(cone.size());
  const auto any_element_depends = [&](std::size_t v, std::size_t opaque) {
    for (std::size_t i = 0; i < cone.size(); ++i) {
      dep[i] = false;
      if (i == opaque) continue;
      if (resolved[i] != SIZE_MAX) {
        dep[i] = (resolved[i] == v);  // a cut node is a source of its virtual
        continue;
      }
      const SignalId id = cone[i];
      const netlist::Gate& g = unl.gate(id);
      if (g.kind == GateKind::kInput) {
        const std::size_t vi = var_of_input[input_index_[id]];
        dep[i] = (vi == v);
        continue;
      }
      for (std::size_t k = 0; k < netlist::gate_arity(g.kind); ++k)
        if (dep[cone_pos.at(g.fanin[k])]) {
          dep[i] = true;
          break;
        }
    }
    for (const SignalId e : element_ids)
      if (dep[cone_pos.at(e)]) return true;
    return false;
  };

  // --- OTP elimination to fixpoint ---------------------------------------
  TupleVerdict verdict;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t f = 0; f < vars.size(); ++f) {
      if (!vars[f].fresh) continue;
      // Skip variables that no element observes at all.
      bool observed = false;
      for (const SignalId e : element_ids) {
        const Abs& a = abs[cone_pos.at(e)];
        if (a.lin.test(f) || a.nonlin.test(f)) {
          observed = true;
          break;
        }
      }
      if (!observed) continue;
      // Latest-first: cutting the most downstream valid node absorbs the
      // largest subexpression.
      for (std::size_t i = cone.size(); i-- > 0;) {
        if (resolved[i] != SIZE_MAX) continue;
        // Cutting an input node at itself would be a semantic no-op that
        // only obscures which physical fresh bit the residual observes.
        if (unl.kind(cone[i]) == GateKind::kInput) continue;
        if (!abs[i].lin.test(f) || abs[i].nonlin.test(f)) continue;
        if (any_element_depends(f, i)) continue;
        // Valid cut: node i = f XOR (rest without f), and f reaches the
        // tuple only through node i. Replace it by a virtual fresh var.
        if (std::getenv("SCA_LINT_DEBUG"))
          std::fprintf(stderr, "cut: var %zu (%s) at node %s\n", f,
                       vars[f].input == netlist::kNoSignal
                           ? "virtual"
                           : unl.signal_name(vars[f].input).c_str(),
                       unl.signal_name(cone[i]).c_str());
        resolved[i] = vars.size();
        vars.push_back(Var{true, netlist::kNoSignal});
        require(vars.size() <= var_capacity,
                "TupleAnalyzer: virtual variable overflow");
        recompute();
        ++verdict.cuts_applied;
        changed = true;
        break;
      }
    }
  }

  // --- element-level Gaussian elimination ---------------------------------
  // The adversary's view is the *tuple* of element values, and any
  // invertible XOR transform across elements is a bijection of that view —
  // security is exactly preserved in both directions. So a fresh variable
  // that appears only linearly across the whole tuple can be concentrated
  // into one element by Gaussian elimination and acts as a one-time pad
  // there: after eliminating f from every other row, the pivot row is
  // f XOR (rest), with f independent of everything else the tuple sees, so
  // its value is exactly distributed as f alone. This is the cut the node
  // fixpoint above cannot make when f reaches the tuple through *several*
  // stable signals — e.g. a registered first-layer cross term and an upper
  // gate recycling its mask, the pattern that dominates order-2 pair
  // tuples. A genuine leak can never be eliminated this way (bijections
  // preserve the joint distribution), so soundness is unaffected.
  std::vector<Abs> rows;
  rows.reserve(element_ids.size());
  for (const SignalId e : element_ids) rows.push_back(abs[cone_pos.at(e)]);
  {
    std::vector<bool> row_done(rows.size(), false);
    bool row_changed = true;
    while (row_changed) {
      row_changed = false;
      for (std::size_t f = 0; f < vars.size(); ++f) {
        if (!vars[f].fresh) continue;
        bool blocked = false;
        std::vector<std::size_t> lin_rows;
        for (std::size_t r = 0; r < rows.size(); ++r) {
          if (rows[r].nonlin.test(f)) {
            blocked = true;
            break;
          }
          if (rows[r].lin.test(f)) lin_rows.push_back(r);
        }
        if (blocked || lin_rows.empty()) continue;
        const std::size_t pivot = lin_rows.front();
        // A done pivot is already the bare pad {f}; with no other row to
        // clean up there is nothing left to do for this variable.
        if (lin_rows.size() == 1 && row_done[pivot]) continue;
        for (std::size_t k = 1; k < lin_rows.size(); ++k) {
          rows[lin_rows[k]].lin ^= rows[pivot].lin;
          rows[lin_rows[k]].nonlin |= rows[pivot].nonlin;
        }
        if (!row_done[pivot]) {
          if (std::getenv("SCA_LINT_DEBUG"))
            std::fprintf(stderr, "row-cut: var %zu (%s) at row %zu\n", f,
                         vars[f].input == netlist::kNoSignal
                             ? "virtual"
                             : unl.signal_name(vars[f].input).c_str(),
                         pivot);
          rows[pivot].lin = DynamicBitset(var_capacity);
          rows[pivot].lin.set(f);
          rows[pivot].nonlin = DynamicBitset(var_capacity);
          row_done[pivot] = true;
          ++verdict.cuts_applied;
        }
        row_changed = true;
      }
    }
  }

  // --- non-completeness check on the residual ----------------------------
  // Union of per-row dependencies, and per-row dependency sets for witness
  // attribution (rows are the Gaussian-transformed elements).
  std::vector<DynamicBitset> elem_deps;
  elem_deps.reserve(elements.size());
  DynamicBitset all_deps(var_capacity);
  for (const Abs& a : rows) {
    DynamicBitset d = a.lin;
    d |= a.nonlin;
    all_deps |= d;
    elem_deps.push_back(std::move(d));
  }

  // Group observed share variables by sharing instance (secret, bit, cycle).
  struct Bucket {
    std::vector<std::uint32_t> shares;
    std::vector<std::size_t> vars;
  };
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::size_t>, Bucket>
      buckets;
  for (std::size_t v = 0; v < leaf_vars; ++v) {
    if (vars[v].fresh || !all_deps.test(v)) continue;
    const std::size_t ii = input_index_[vars[v].input];
    const netlist::ShareLabel& label =
        unl.inputs()[ii].share;  // unroll preserves the original label
    const std::size_t cycle = unrolled_->input_cycle[ii];
    Bucket& b = buckets[{label.secret, label.bit, cycle}];
    if (std::find(b.shares.begin(), b.shares.end(), label.share) ==
        b.shares.end())
      b.shares.push_back(label.share);
    b.vars.push_back(v);
  }

  for (const auto& [key, bucket] : buckets) {
    const auto [secret, bit, cycle] = key;
    if (bucket.shares.size() < original_->share_count(secret)) continue;
    CompletedSharing c;
    c.secret = secret;
    c.bit = bit;
    c.cycle = cycle;
    for (std::size_t e = 0; e < elements.size(); ++e)
      for (const std::size_t v : bucket.vars)
        if (elem_deps[e].test(v)) {
          c.elements.push_back(e);
          break;
        }
    if (cycle == last_cycle_) verdict.raw_share_path = true;
    verdict.completed.push_back(std::move(c));
  }
  verdict.secure = verdict.completed.empty();
  if (verdict.secure) return verdict;

  // Residual contributing elements, and the fresh bits they share — the
  // randomness-reuse witnesses the findings report.
  DynamicBitset contributing(elements.size());
  for (const CompletedSharing& c : verdict.completed)
    for (const std::size_t e : c.elements) contributing.set(e);
  verdict.residual_elements = contributing.set_bits();

  for (std::size_t f = 0; f < leaf_vars; ++f) {
    if (!vars[f].fresh) continue;
    SharedFresh sf;
    for (const std::size_t e : verdict.residual_elements)
      if (elem_deps[e].test(f)) sf.elements.push_back(e);
    if (sf.elements.size() < 2) continue;
    const std::size_t ii = input_index_[vars[f].input];
    sf.input = unrolled_->input_original[ii];
    sf.cycle = unrolled_->input_cycle[ii];
    verdict.shared_fresh.push_back(std::move(sf));
  }
  return verdict;
}

}  // namespace sca::lint
