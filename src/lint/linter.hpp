// Static leakage linter: rule-based netlist analysis that flags
// randomness-reuse and glitch/transition hazards without simulation.
//
// The linter is the third evaluation backend next to the sampling campaign
// (core/campaign) and the exact enumerative verifier (verif/exact): it
// derives verdicts from the circuit graph alone, in the spirit of
// aLEAKator and the masked-arithmetic verification line, so it is *instant*
// — no simulations, no per-probe enumeration — and usable as a pre-filter
// in front of both expensive engines (eval::SearchOptions::lint_prefilter).
//
// Every deduplicated glitch-extended probe (optionally transition-extended)
// is checked with the distribution-type lattice of lint/lattice.hpp; a
// probe the analysis cannot prove independent of the secrets becomes one
// finding, classified by the concrete hazard rules of the paper's analysis:
//
//   R1 fresh-mask reuse     two mask slots share a fresh bit and their
//                           glitch-extended cones meet at a combinational
//                           node — Eq. (6)'s r1 = r3 observed at v1..v4
//                           inside G7.
//   R2 domain crossing      a single observed signal mixes every share of
//                           a secret bit before its register stage (e.g.
//                           an inner-domain DOM product fed with sibling
//                           masks).
//   R3 missing register     share inputs reach the probe through purely
//                           combinational paths — nonlinear logic consumed
//                           by the next layer without a register boundary.
//   R4 transition hazard    the probe is clean under the glitch rules but
//                           flagged once the previous cycle's values are
//                           observed too (Eq. (9)'s r5 = r4 reuse, the
//                           paper's Section IV).
//
// Soundness scope: a clean lint verdict is a *proof* of probing security at
// the requested order under the analysis' model (uniform independent fresh
// inputs, fresh re-sharing per cycle). A finding is a potential hazard, not
// a counterexample — precision is validated against verif::exact over the
// paper's plan spaces in tests/lint_test.cpp; see DESIGN.md for what the
// linter can and cannot conclude vs PROLEAD.
//
// Order 2 (LintOptions::order = 2) analyzes probe *pairs*: the adversary's
// joint observation is the union of the two probes' extended cones, so the
// same (L,N) lattice + OTP elimination runs on the union tuple. Pairs whose
// unions coincide are statistically identical and collapse onto one
// canonical finding (union-observation dedup); a clean order-2 report
// proves every pair's joint distribution independent of the secrets, which
// subsumes order 1 by subset monotonicity.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/lint/lattice.hpp"
#include "src/netlist/ir.hpp"
#include "src/verif/exact.hpp"

namespace sca::lint {

enum class LintModel {
  kGlitch,            ///< glitch-extended probes (one cycle)
  kGlitchTransition,  ///< glitch- and transition-extended (two cycles)
};

std::string to_string(LintModel model);

enum class LintRule {
  kR1FreshReuse,
  kR2DomainCrossing,
  kR3MissingRegister,
  kR4TransitionHazard,
};

/// Short stable identifier: "R1-fresh-reuse", "R2-domain-crossing", ...
std::string_view lint_rule_name(LintRule rule);

/// What to do with a netlist whose registers loop (the AES state/key banks
/// and controller): reject like the exact verifier, or cut the feedback at
/// annotated/inferred state registers (netlist::extract_slice) and lint the
/// feedback-free slice with held cut inputs.
enum class FeedbackMode {
  kReject,
  kSlice,
};

struct LintOptions {
  LintModel model = LintModel::kGlitch;
  /// Probing order: 1 checks every deduplicated probe alone, 2 checks every
  /// probe *pair* on the union of the two observation cones (which subsumes
  /// order 1 whenever the universe has at least two probes; a one-probe
  /// universe falls back to the single probe).
  unsigned order = 1;
  /// Order 2 only: reuse the verdict of a previously-analyzed pair whose
  /// union observation set coincides (canonical cache). Findings are
  /// canonicalized per union either way — the toggle only controls whether
  /// duplicate unions are re-analyzed, and exists so tests can assert the
  /// dedup changes nothing.
  bool pair_cache = true;
  /// Stop after this many findings (0 = report all). The scan degrades to a
  /// deterministic serial sweep in probe/pair order, so the prefilter use
  /// (max_findings = 1: "is there any finding?") exits on the first hazard
  /// without paying for the full universe. LintReport::truncated records
  /// that the sweep stopped early.
  std::size_t max_findings = 0;
  /// Only probe signals whose hierarchical name starts with this prefix
  /// (same semantics as the campaign's probe_scope_filter).
  std::string scope_filter;
  /// Only probe signals whose hierarchical name *contains* this substring
  /// (ANDed with scope_filter) — e.g. ".kron." selects the uniform-fresh
  /// Kronecker subtrees of all 20 Sbox instances inside the masked AES.
  std::string scope_contains;
  /// Register-feedback handling; kReject preserves the pipeline-only
  /// behaviour (and its common::Error).
  FeedbackMode feedback = FeedbackMode::kReject;
  /// Attach a counterexample certificate to every finding by replaying the
  /// flagged probe through verif::exact — two secret values with provably
  /// different observation distributions plus a concrete mask assignment.
  bool certify = false;
  /// Enumeration limits for certification (cycles/transitions/held_inputs
  /// are managed by the linter).
  verif::ExactOptions certify_options;
  /// Worker threads for certification (0 = SCA_THREADS env, else hardware
  /// concurrency).
  unsigned threads = 0;
};

/// Machine-checkable counterexample attached to a finding: secret values
/// `secret_a` / `secret_b` (over `secret_bits`) whose exact observation
/// distributions differ, an observation value where the counts differ, and
/// a full input assignment reproducing that observation under `secret_a`.
struct LintCertificate {
  bool available = false;
  /// Why no certificate exists ("" when available): enumeration limits, or
  /// identical exact distributions (the lint finding over-approximates).
  std::string unavailable_reason;
  std::vector<std::string> secret_bits;
  std::uint64_t secret_a = 0;
  std::uint64_t secret_b = 0;
  /// Largest total-variation distance between two secret-conditioned
  /// distributions (> 0 exactly when the probe really leaks).
  double tv_distance = 0.0;
  /// Observation value with count_a > count_b under secret_a vs secret_b.
  std::uint64_t observation = 0;
  std::uint64_t count_a = 0;
  std::uint64_t count_b = 0;
  /// Unrolled input name -> value reproducing `observation` under secret_a.
  std::vector<std::pair<std::string, bool>> assignment;
};

struct LintFinding {
  LintRule rule = LintRule::kR1FreshReuse;
  /// Probe signal id — in the linted netlist, i.e. the *slice* netlist when
  /// the report says sliced (names are preserved across the cut, so
  /// probe_name always matches the original design's hierarchy).
  netlist::SignalId probe = netlist::kNoSignal;
  std::string probe_name;  ///< representative signal, e.g. "kron.G7.inner0"
  /// Second probe of an order-2 finding (kNoSignal for order-1 findings and
  /// the one-probe-universe fallback). The pair is the lexicographically
  /// first one whose union observation set exhibits the hazard; later pairs
  /// with the same union are folded into this finding.
  netlist::SignalId probe2 = netlist::kNoSignal;
  std::string probe2_name;
  /// Residual observed signals the hazard lives in, "name@t[-k]" form.
  std::vector<std::string> offending;
  /// Fresh bits shared between offending signals ("f0@t-2"), R1/R4.
  std::vector<std::string> shared_fresh;
  /// Completed sharing instances, "secret0.bit1@t-2" form; cut-register
  /// sharings use the transferred state-group name ("aes.st3.b1@t-5").
  std::vector<std::string> completed;
  std::string message;  ///< one-line human-readable summary
  /// Present when LintOptions::certify was set.
  std::optional<LintCertificate> certificate;
};

struct LintReport {
  std::vector<LintFinding> findings;
  LintModel model = LintModel::kGlitch;
  unsigned order = 1;
  std::size_t probes_checked = 0;  ///< deduplicated probe positions
  /// Flagged probe sets (order 1: probes; order 2: canonical pair unions).
  std::size_t probes_flagged = 0;
  std::size_t cuts_applied = 0;  ///< total OTP eliminations across probes
  /// Order 2 only: probe pairs enumerated, and how many of them collapsed
  /// onto an earlier pair's union observation set.
  std::size_t pairs_enumerated = 0;
  std::size_t pairs_deduped = 0;
  /// True when max_findings stopped the sweep before the whole universe was
  /// analyzed — the report is then a valid "not clean" witness but not an
  /// exhaustive finding list.
  bool truncated = false;
  /// True when register feedback was cut into a combinational slice.
  bool sliced = false;
  /// Number of registers the slice extraction cut (0 when not sliced).
  std::size_t cut_registers = 0;
  bool clean() const { return findings.empty(); }
};

/// Runs the linter over every deduplicated probe position of `nl`. With
/// FeedbackMode::kReject the netlist must be a pipeline (no register
/// feedback) — circuits the exact verifier rejects are rejected here too,
/// with the same common::Error. With kSlice, feedback designs are first cut
/// at their state registers (netlist/slice.hpp) and the slice is linted.
LintReport run_lint(const netlist::Netlist& nl, const LintOptions& options = {});

/// Renders the report as an aligned text table (one line per finding).
std::string to_string(const LintReport& report);

/// Returns a copy of `nl` with one extra AND gate whose fanins are the two
/// probe signals. The AND's glitch-extended observation cone is exactly the
/// union of the two probes' cones, so a *single* probe on the combiner in
/// the copy sees what the pair sees in the original — the replay vehicle
/// that lets order-2 findings be certified (and tests replay-validated)
/// through the unchanged single-probe verif::exact engine. Signal ids of
/// `nl` are preserved; the returned id is the combiner.
std::pair<netlist::Netlist, netlist::SignalId> pair_probe_netlist(
    const netlist::Netlist& nl, netlist::SignalId a, netlist::SignalId b);

}  // namespace sca::lint
