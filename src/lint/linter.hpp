// Static leakage linter: rule-based netlist analysis that flags
// randomness-reuse and glitch/transition hazards without simulation.
//
// The linter is the third evaluation backend next to the sampling campaign
// (core/campaign) and the exact enumerative verifier (verif/exact): it
// derives verdicts from the circuit graph alone, in the spirit of
// aLEAKator and the masked-arithmetic verification line, so it is *instant*
// — no simulations, no per-probe enumeration — and usable as a pre-filter
// in front of both expensive engines (eval::SearchOptions::lint_prefilter).
//
// Every deduplicated glitch-extended probe (optionally transition-extended)
// is checked with the distribution-type lattice of lint/lattice.hpp; a
// probe the analysis cannot prove independent of the secrets becomes one
// finding, classified by the concrete hazard rules of the paper's analysis:
//
//   R1 fresh-mask reuse     two mask slots share a fresh bit and their
//                           glitch-extended cones meet at a combinational
//                           node — Eq. (6)'s r1 = r3 observed at v1..v4
//                           inside G7.
//   R2 domain crossing      a single observed signal mixes every share of
//                           a secret bit before its register stage (e.g.
//                           an inner-domain DOM product fed with sibling
//                           masks).
//   R3 missing register     share inputs reach the probe through purely
//                           combinational paths — nonlinear logic consumed
//                           by the next layer without a register boundary.
//   R4 transition hazard    the probe is clean under the glitch rules but
//                           flagged once the previous cycle's values are
//                           observed too (Eq. (9)'s r5 = r4 reuse, the
//                           paper's Section IV).
//
// Soundness scope: a clean lint verdict is a *proof* of first-order
// probing security under the analysis' model (uniform independent fresh
// inputs, fresh re-sharing per cycle, single probe). A finding is a
// potential hazard, not a counterexample — precision is validated against
// verif::exact over the paper's plan spaces in tests/lint_test.cpp; see
// DESIGN.md for what the linter can and cannot conclude vs PROLEAD.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/lint/lattice.hpp"
#include "src/netlist/ir.hpp"

namespace sca::lint {

enum class LintModel {
  kGlitch,            ///< glitch-extended probes (one cycle)
  kGlitchTransition,  ///< glitch- and transition-extended (two cycles)
};

std::string to_string(LintModel model);

enum class LintRule {
  kR1FreshReuse,
  kR2DomainCrossing,
  kR3MissingRegister,
  kR4TransitionHazard,
};

/// Short stable identifier: "R1-fresh-reuse", "R2-domain-crossing", ...
std::string_view lint_rule_name(LintRule rule);

struct LintOptions {
  LintModel model = LintModel::kGlitch;
  /// Only probe signals whose hierarchical name starts with this prefix
  /// (same semantics as the campaign's probe_scope_filter).
  std::string scope_filter;
};

struct LintFinding {
  LintRule rule = LintRule::kR1FreshReuse;
  netlist::SignalId probe = netlist::kNoSignal;
  std::string probe_name;  ///< representative signal, e.g. "kron.G7.inner0"
  /// Residual observed signals the hazard lives in, "name@t[-k]" form.
  std::vector<std::string> offending;
  /// Fresh bits shared between offending signals ("f0@t-2"), R1/R4.
  std::vector<std::string> shared_fresh;
  /// Completed sharing instances, "secret0.bit1@t-2" form.
  std::vector<std::string> completed;
  std::string message;  ///< one-line human-readable summary
};

struct LintReport {
  std::vector<LintFinding> findings;
  LintModel model = LintModel::kGlitch;
  std::size_t probes_checked = 0;
  std::size_t probes_flagged = 0;
  std::size_t cuts_applied = 0;  ///< total OTP eliminations across probes
  bool clean() const { return findings.empty(); }
};

/// Runs the linter over every deduplicated probe position of `nl`. The
/// netlist must be a pipeline (no register feedback) — circuits the exact
/// verifier rejects are rejected here too, with the same common::Error.
LintReport run_lint(const netlist::Netlist& nl, const LintOptions& options = {});

/// Renders the report as an aligned text table (one line per finding).
std::string to_string(const LintReport& report);

}  // namespace sca::lint
