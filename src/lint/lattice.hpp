// Distribution-type lattice analysis — the engine of the static leakage
// linter.
//
// The analysis works on the *unrolled* (purely combinational) netlist
// produced by verif::unroll, where every observed signal is a Boolean
// expression over per-cycle instances of the primary inputs. Each node is
// abstracted by a pair of variable sets (L, N) meaning
//
//     value(node) = <L, vars> XOR g(vars restricted to N)
//
// L is the *exact* GF(2)-linear part (parity is tracked, so f ^ f cancels)
// and N over-approximates the support of the nonlinear remainder g. The
// lattice labels of the issue map onto this abstraction: constant =
// (empty, empty); fresh-random = ({f}, empty); share-of-secret = ({s},
// empty); combined = anything with |L| + |N| > 1. A fresh variable f with
// f in L(v) \ N(v) acts as a one-time pad (OTP) for node v.
//
// On top of the abstraction the analyzer applies the two rules of
// maskVerif-style probing verification to an observation tuple (the
// glitch/transition-extended contents of one probe):
//
//   * OTP elimination ("cut"): if every influence of a fresh variable f on
//     the tuple flows through a single node v with f in L(v) \ N(v), then
//     v is uniformly distributed and independent of the remaining tuple;
//     v is replaced by a *virtual* fresh variable and the analysis
//     iterates. Virtual variables can seed further cuts.
//   * Non-completeness: at the fixpoint, the tuple is independent of every
//     secret if for each sharing instance (secret, bit, cycle) at least
//     one share is absent from the residual dependency union — fresh
//     re-sharing each cycle makes incomplete share sets jointly uniform.
//
// A tuple that still reaches every share of some sharing instance is
// *flagged*: the linter cannot prove it secure. Flagging is sound for
// security proofs (a clean verdict is a proof under the model); precision
// (no false alarms) is validated against the exact enumerative verifier
// over restricted plan spaces in tests/lint_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/netlist/ir.hpp"
#include "src/verif/unroll.hpp"

namespace sca::lint {

/// One observed element of a probe tuple: a stable signal of the original
/// netlist, `cycle_back` cycles before the probe cycle (0 = the probe
/// cycle itself, 1 = the transition-extended previous cycle).
struct TupleElement {
  netlist::SignalId stable = netlist::kNoSignal;
  std::size_t cycle_back = 0;
};

/// A completed sharing instance: the residual tuple reaches every share of
/// bit `bit` of secret group `secret` as shared at unrolled cycle `cycle`.
struct CompletedSharing {
  std::uint32_t secret = 0;
  std::uint32_t bit = 0;
  std::size_t cycle = 0;
  std::vector<std::size_t> elements;  ///< contributing tuple element indices
};

/// A fresh input reached by two or more of the residual elements that
/// contribute to a completed sharing — the randomness-reuse witness.
struct SharedFresh {
  netlist::SignalId input = netlist::kNoSignal;  ///< original input signal
  std::size_t cycle = 0;                         ///< unrolled draw cycle
  std::vector<std::size_t> elements;             ///< tuple element indices
};

struct TupleVerdict {
  bool secure = true;
  /// Sharing instances the residual tuple completes (empty when secure).
  std::vector<CompletedSharing> completed;
  /// Elements that survived OTP elimination and contribute shares to some
  /// completed sharing, ascending.
  std::vector<std::size_t> residual_elements;
  /// Fresh bits shared between residual contributing elements.
  std::vector<SharedFresh> shared_fresh;
  /// True when some completed sharing is drawn at the probe cycle itself,
  /// i.e. share inputs meet the probe through purely combinational paths.
  bool raw_share_path = false;
  std::size_t cuts_applied = 0;  ///< OTP eliminations performed
};

/// Per-tuple lattice analyzer. Construct once per netlist (the unrolling
/// and supports are reused across all tuples), then call analyze() per
/// observation tuple.
class TupleAnalyzer {
 public:
  /// `unrolled` must come from verif::unroll(original, cycles) with
  /// cycles > sequential_depth(original) + the largest cycle_back used.
  TupleAnalyzer(const netlist::Netlist& original,
                const verif::Unrolled& unrolled);

  TupleVerdict analyze(const std::vector<TupleElement>& elements) const;

  /// The unrolled cycle observed by cycle_back = 0 elements.
  std::size_t probe_cycle() const { return last_cycle_; }

 private:
  const netlist::Netlist* original_;
  const verif::Unrolled* unrolled_;
  std::size_t last_cycle_ = 0;
  /// Unrolled input signal id -> index into unrolled_->nl.inputs().
  std::vector<std::size_t> input_index_;  // SIZE_MAX where not an input
};

}  // namespace sca::lint
