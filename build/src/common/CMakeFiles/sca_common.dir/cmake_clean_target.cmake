file(REMOVE_RECURSE
  "libsca_common.a"
)
