# Empty compiler generated dependencies file for sca_common.
# This may be replaced when dependencies are built.
