file(REMOVE_RECURSE
  "CMakeFiles/sca_common.dir/rng.cpp.o"
  "CMakeFiles/sca_common.dir/rng.cpp.o.d"
  "libsca_common.a"
  "libsca_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
