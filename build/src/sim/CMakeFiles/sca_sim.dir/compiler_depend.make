# Empty compiler generated dependencies file for sca_sim.
# This may be replaced when dependencies are built.
