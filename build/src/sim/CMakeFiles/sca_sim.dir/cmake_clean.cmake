file(REMOVE_RECURSE
  "CMakeFiles/sca_sim.dir/simulator.cpp.o"
  "CMakeFiles/sca_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sca_sim.dir/trace.cpp.o"
  "CMakeFiles/sca_sim.dir/trace.cpp.o.d"
  "libsca_sim.a"
  "libsca_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
