file(REMOVE_RECURSE
  "libsca_sim.a"
)
