file(REMOVE_RECURSE
  "libsca_stats.a"
)
