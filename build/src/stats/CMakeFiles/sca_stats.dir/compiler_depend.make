# Empty compiler generated dependencies file for sca_stats.
# This may be replaced when dependencies are built.
