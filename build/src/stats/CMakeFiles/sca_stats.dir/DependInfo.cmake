
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/gtest_stat.cpp" "src/stats/CMakeFiles/sca_stats.dir/gtest_stat.cpp.o" "gcc" "src/stats/CMakeFiles/sca_stats.dir/gtest_stat.cpp.o.d"
  "/root/repo/src/stats/pvalue.cpp" "src/stats/CMakeFiles/sca_stats.dir/pvalue.cpp.o" "gcc" "src/stats/CMakeFiles/sca_stats.dir/pvalue.cpp.o.d"
  "/root/repo/src/stats/ttest.cpp" "src/stats/CMakeFiles/sca_stats.dir/ttest.cpp.o" "gcc" "src/stats/CMakeFiles/sca_stats.dir/ttest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
