file(REMOVE_RECURSE
  "CMakeFiles/sca_stats.dir/gtest_stat.cpp.o"
  "CMakeFiles/sca_stats.dir/gtest_stat.cpp.o.d"
  "CMakeFiles/sca_stats.dir/pvalue.cpp.o"
  "CMakeFiles/sca_stats.dir/pvalue.cpp.o.d"
  "CMakeFiles/sca_stats.dir/ttest.cpp.o"
  "CMakeFiles/sca_stats.dir/ttest.cpp.o.d"
  "libsca_stats.a"
  "libsca_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
