file(REMOVE_RECURSE
  "libsca_gadgets.a"
)
