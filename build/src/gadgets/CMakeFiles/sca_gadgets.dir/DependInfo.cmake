
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gadgets/bus.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/bus.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/bus.cpp.o.d"
  "/root/repo/src/gadgets/conversions.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/conversions.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/conversions.cpp.o.d"
  "/root/repo/src/gadgets/conversions2.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/conversions2.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/conversions2.cpp.o.d"
  "/root/repo/src/gadgets/dom.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/dom.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/dom.cpp.o.d"
  "/root/repo/src/gadgets/dom_gf.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/dom_gf.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/dom_gf.cpp.o.d"
  "/root/repo/src/gadgets/dom_sbox.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/dom_sbox.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/dom_sbox.cpp.o.d"
  "/root/repo/src/gadgets/gf_circuits.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/gf_circuits.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/gf_circuits.cpp.o.d"
  "/root/repo/src/gadgets/kronecker.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/kronecker.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/kronecker.cpp.o.d"
  "/root/repo/src/gadgets/masked_aes.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/masked_aes.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/masked_aes.cpp.o.d"
  "/root/repo/src/gadgets/masked_sbox.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/masked_sbox.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/masked_sbox.cpp.o.d"
  "/root/repo/src/gadgets/masked_sbox2.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/masked_sbox2.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/masked_sbox2.cpp.o.d"
  "/root/repo/src/gadgets/randomness_plan.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/randomness_plan.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/randomness_plan.cpp.o.d"
  "/root/repo/src/gadgets/sharing.cpp" "src/gadgets/CMakeFiles/sca_gadgets.dir/sharing.cpp.o" "gcc" "src/gadgets/CMakeFiles/sca_gadgets.dir/sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/sca_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/sca_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sca_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sca_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
