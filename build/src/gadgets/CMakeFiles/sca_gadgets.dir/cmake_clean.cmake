file(REMOVE_RECURSE
  "CMakeFiles/sca_gadgets.dir/bus.cpp.o"
  "CMakeFiles/sca_gadgets.dir/bus.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/conversions.cpp.o"
  "CMakeFiles/sca_gadgets.dir/conversions.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/conversions2.cpp.o"
  "CMakeFiles/sca_gadgets.dir/conversions2.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/dom.cpp.o"
  "CMakeFiles/sca_gadgets.dir/dom.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/dom_gf.cpp.o"
  "CMakeFiles/sca_gadgets.dir/dom_gf.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/dom_sbox.cpp.o"
  "CMakeFiles/sca_gadgets.dir/dom_sbox.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/gf_circuits.cpp.o"
  "CMakeFiles/sca_gadgets.dir/gf_circuits.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/kronecker.cpp.o"
  "CMakeFiles/sca_gadgets.dir/kronecker.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/masked_aes.cpp.o"
  "CMakeFiles/sca_gadgets.dir/masked_aes.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/masked_sbox.cpp.o"
  "CMakeFiles/sca_gadgets.dir/masked_sbox.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/masked_sbox2.cpp.o"
  "CMakeFiles/sca_gadgets.dir/masked_sbox2.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/randomness_plan.cpp.o"
  "CMakeFiles/sca_gadgets.dir/randomness_plan.cpp.o.d"
  "CMakeFiles/sca_gadgets.dir/sharing.cpp.o"
  "CMakeFiles/sca_gadgets.dir/sharing.cpp.o.d"
  "libsca_gadgets.a"
  "libsca_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
