# Empty dependencies file for sca_gadgets.
# This may be replaced when dependencies are built.
