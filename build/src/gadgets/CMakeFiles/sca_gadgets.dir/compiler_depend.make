# Empty compiler generated dependencies file for sca_gadgets.
# This may be replaced when dependencies are built.
