file(REMOVE_RECURSE
  "CMakeFiles/sca_aes.dir/aes128.cpp.o"
  "CMakeFiles/sca_aes.dir/aes128.cpp.o.d"
  "CMakeFiles/sca_aes.dir/sbox.cpp.o"
  "CMakeFiles/sca_aes.dir/sbox.cpp.o.d"
  "libsca_aes.a"
  "libsca_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
