file(REMOVE_RECURSE
  "libsca_aes.a"
)
