# Empty dependencies file for sca_aes.
# This may be replaced when dependencies are built.
