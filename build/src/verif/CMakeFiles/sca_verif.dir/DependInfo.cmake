
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verif/exact.cpp" "src/verif/CMakeFiles/sca_verif.dir/exact.cpp.o" "gcc" "src/verif/CMakeFiles/sca_verif.dir/exact.cpp.o.d"
  "/root/repo/src/verif/unroll.cpp" "src/verif/CMakeFiles/sca_verif.dir/unroll.cpp.o" "gcc" "src/verif/CMakeFiles/sca_verif.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sca_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sca_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
