file(REMOVE_RECURSE
  "CMakeFiles/sca_verif.dir/exact.cpp.o"
  "CMakeFiles/sca_verif.dir/exact.cpp.o.d"
  "CMakeFiles/sca_verif.dir/unroll.cpp.o"
  "CMakeFiles/sca_verif.dir/unroll.cpp.o.d"
  "libsca_verif.a"
  "libsca_verif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_verif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
