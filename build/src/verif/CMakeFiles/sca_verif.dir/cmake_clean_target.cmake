file(REMOVE_RECURSE
  "libsca_verif.a"
)
