# Empty dependencies file for sca_verif.
# This may be replaced when dependencies are built.
