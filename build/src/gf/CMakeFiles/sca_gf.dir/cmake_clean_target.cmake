file(REMOVE_RECURSE
  "libsca_gf.a"
)
