# Empty dependencies file for sca_gf.
# This may be replaced when dependencies are built.
