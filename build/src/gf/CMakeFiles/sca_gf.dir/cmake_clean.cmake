file(REMOVE_RECURSE
  "CMakeFiles/sca_gf.dir/gf2.cpp.o"
  "CMakeFiles/sca_gf.dir/gf2.cpp.o.d"
  "CMakeFiles/sca_gf.dir/gf256.cpp.o"
  "CMakeFiles/sca_gf.dir/gf256.cpp.o.d"
  "CMakeFiles/sca_gf.dir/tower.cpp.o"
  "CMakeFiles/sca_gf.dir/tower.cpp.o.d"
  "libsca_gf.a"
  "libsca_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
