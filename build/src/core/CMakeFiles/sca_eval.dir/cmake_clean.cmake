file(REMOVE_RECURSE
  "CMakeFiles/sca_eval.dir/campaign.cpp.o"
  "CMakeFiles/sca_eval.dir/campaign.cpp.o.d"
  "CMakeFiles/sca_eval.dir/probes.cpp.o"
  "CMakeFiles/sca_eval.dir/probes.cpp.o.d"
  "CMakeFiles/sca_eval.dir/report.cpp.o"
  "CMakeFiles/sca_eval.dir/report.cpp.o.d"
  "CMakeFiles/sca_eval.dir/search.cpp.o"
  "CMakeFiles/sca_eval.dir/search.cpp.o.d"
  "libsca_eval.a"
  "libsca_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
