file(REMOVE_RECURSE
  "libsca_eval.a"
)
