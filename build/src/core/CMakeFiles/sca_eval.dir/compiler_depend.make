# Empty compiler generated dependencies file for sca_eval.
# This may be replaced when dependencies are built.
