file(REMOVE_RECURSE
  "libsca_netlist.a"
)
