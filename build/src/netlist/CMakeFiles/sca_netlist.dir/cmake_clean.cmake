file(REMOVE_RECURSE
  "CMakeFiles/sca_netlist.dir/celllib.cpp.o"
  "CMakeFiles/sca_netlist.dir/celllib.cpp.o.d"
  "CMakeFiles/sca_netlist.dir/cone.cpp.o"
  "CMakeFiles/sca_netlist.dir/cone.cpp.o.d"
  "CMakeFiles/sca_netlist.dir/export.cpp.o"
  "CMakeFiles/sca_netlist.dir/export.cpp.o.d"
  "CMakeFiles/sca_netlist.dir/ir.cpp.o"
  "CMakeFiles/sca_netlist.dir/ir.cpp.o.d"
  "CMakeFiles/sca_netlist.dir/textio.cpp.o"
  "CMakeFiles/sca_netlist.dir/textio.cpp.o.d"
  "libsca_netlist.a"
  "libsca_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
