# Empty dependencies file for sca_netlist.
# This may be replaced when dependencies are built.
