
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/celllib.cpp" "src/netlist/CMakeFiles/sca_netlist.dir/celllib.cpp.o" "gcc" "src/netlist/CMakeFiles/sca_netlist.dir/celllib.cpp.o.d"
  "/root/repo/src/netlist/cone.cpp" "src/netlist/CMakeFiles/sca_netlist.dir/cone.cpp.o" "gcc" "src/netlist/CMakeFiles/sca_netlist.dir/cone.cpp.o.d"
  "/root/repo/src/netlist/export.cpp" "src/netlist/CMakeFiles/sca_netlist.dir/export.cpp.o" "gcc" "src/netlist/CMakeFiles/sca_netlist.dir/export.cpp.o.d"
  "/root/repo/src/netlist/ir.cpp" "src/netlist/CMakeFiles/sca_netlist.dir/ir.cpp.o" "gcc" "src/netlist/CMakeFiles/sca_netlist.dir/ir.cpp.o.d"
  "/root/repo/src/netlist/textio.cpp" "src/netlist/CMakeFiles/sca_netlist.dir/textio.cpp.o" "gcc" "src/netlist/CMakeFiles/sca_netlist.dir/textio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
