# Empty dependencies file for verif_test.
# This may be replaced when dependencies are built.
