# Empty compiler generated dependencies file for masked_aes_test.
# This may be replaced when dependencies are built.
