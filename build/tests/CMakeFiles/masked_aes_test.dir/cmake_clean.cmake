file(REMOVE_RECURSE
  "CMakeFiles/masked_aes_test.dir/masked_aes_test.cpp.o"
  "CMakeFiles/masked_aes_test.dir/masked_aes_test.cpp.o.d"
  "masked_aes_test"
  "masked_aes_test.pdb"
  "masked_aes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masked_aes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
