# Empty dependencies file for gadgets2_test.
# This may be replaced when dependencies are built.
