file(REMOVE_RECURSE
  "CMakeFiles/gadgets2_test.dir/gadgets2_test.cpp.o"
  "CMakeFiles/gadgets2_test.dir/gadgets2_test.cpp.o.d"
  "gadgets2_test"
  "gadgets2_test.pdb"
  "gadgets2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadgets2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
