# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/gf_test[1]_include.cmake")
include("/root/repo/build/tests/aes_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/gadgets_test[1]_include.cmake")
include("/root/repo/build/tests/masked_aes_test[1]_include.cmake")
include("/root/repo/build/tests/verif_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/gadgets2_test[1]_include.cmake")
