# Empty dependencies file for evaltool.
# This may be replaced when dependencies are built.
