file(REMOVE_RECURSE
  "CMakeFiles/evaltool.dir/evaltool.cpp.o"
  "CMakeFiles/evaltool.dir/evaltool.cpp.o.d"
  "evaltool"
  "evaltool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaltool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
