# Empty compiler generated dependencies file for sbox_flaw_demo.
# This may be replaced when dependencies are built.
