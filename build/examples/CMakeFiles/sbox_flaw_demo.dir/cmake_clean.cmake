file(REMOVE_RECURSE
  "CMakeFiles/sbox_flaw_demo.dir/sbox_flaw_demo.cpp.o"
  "CMakeFiles/sbox_flaw_demo.dir/sbox_flaw_demo.cpp.o.d"
  "sbox_flaw_demo"
  "sbox_flaw_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbox_flaw_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
