# Empty dependencies file for masked_aes_demo.
# This may be replaced when dependencies are built.
