file(REMOVE_RECURSE
  "CMakeFiles/masked_aes_demo.dir/masked_aes_demo.cpp.o"
  "CMakeFiles/masked_aes_demo.dir/masked_aes_demo.cpp.o.d"
  "masked_aes_demo"
  "masked_aes_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masked_aes_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
