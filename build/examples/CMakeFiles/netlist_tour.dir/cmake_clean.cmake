file(REMOVE_RECURSE
  "CMakeFiles/netlist_tour.dir/netlist_tour.cpp.o"
  "CMakeFiles/netlist_tour.dir/netlist_tour.cpp.o.d"
  "netlist_tour"
  "netlist_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
