# Empty dependencies file for netlist_tour.
# This may be replaced when dependencies are built.
