# Empty dependencies file for bench_e3_fresh_masks.
# This may be replaced when dependencies are built.
