file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_fresh_masks.dir/bench_e3_fresh_masks.cpp.o"
  "CMakeFiles/bench_e3_fresh_masks.dir/bench_e3_fresh_masks.cpp.o.d"
  "bench_e3_fresh_masks"
  "bench_e3_fresh_masks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_fresh_masks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
