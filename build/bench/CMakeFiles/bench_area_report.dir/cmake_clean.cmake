file(REMOVE_RECURSE
  "CMakeFiles/bench_area_report.dir/bench_area_report.cpp.o"
  "CMakeFiles/bench_area_report.dir/bench_area_report.cpp.o.d"
  "bench_area_report"
  "bench_area_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
