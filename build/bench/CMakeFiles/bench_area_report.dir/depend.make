# Empty dependencies file for bench_area_report.
# This may be replaced when dependencies are built.
