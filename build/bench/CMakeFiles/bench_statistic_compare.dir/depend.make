# Empty dependencies file for bench_statistic_compare.
# This may be replaced when dependencies are built.
