file(REMOVE_RECURSE
  "CMakeFiles/bench_statistic_compare.dir/bench_statistic_compare.cpp.o"
  "CMakeFiles/bench_statistic_compare.dir/bench_statistic_compare.cpp.o.d"
  "bench_statistic_compare"
  "bench_statistic_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statistic_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
