file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_proposed_opt.dir/bench_e6_proposed_opt.cpp.o"
  "CMakeFiles/bench_e6_proposed_opt.dir/bench_e6_proposed_opt.cpp.o.d"
  "bench_e6_proposed_opt"
  "bench_e6_proposed_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_proposed_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
