# Empty compiler generated dependencies file for bench_e6_proposed_opt.
# This may be replaced when dependencies are built.
