# Empty compiler generated dependencies file for bench_partition_search.
# This may be replaced when dependencies are built.
