file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_search.dir/bench_partition_search.cpp.o"
  "CMakeFiles/bench_partition_search.dir/bench_partition_search.cpp.o.d"
  "bench_partition_search"
  "bench_partition_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
