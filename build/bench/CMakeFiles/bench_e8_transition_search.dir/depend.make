# Empty dependencies file for bench_e8_transition_search.
# This may be replaced when dependencies are built.
