# Empty compiler generated dependencies file for bench_e4_single_reuse.
# This may be replaced when dependencies are built.
