# Empty dependencies file for bench_e2_kronecker_flaw.
# This may be replaced when dependencies are built.
