file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_kronecker_flaw.dir/bench_e2_kronecker_flaw.cpp.o"
  "CMakeFiles/bench_e2_kronecker_flaw.dir/bench_e2_kronecker_flaw.cpp.o.d"
  "bench_e2_kronecker_flaw"
  "bench_e2_kronecker_flaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_kronecker_flaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
