
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e2_kronecker_flaw.cpp" "bench/CMakeFiles/bench_e2_kronecker_flaw.dir/bench_e2_kronecker_flaw.cpp.o" "gcc" "bench/CMakeFiles/bench_e2_kronecker_flaw.dir/bench_e2_kronecker_flaw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/sca_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/sca_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sca_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sca_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gadgets/CMakeFiles/sca_gadgets.dir/DependInfo.cmake"
  "/root/repo/build/src/verif/CMakeFiles/sca_verif.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sca_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
