file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_second_order.dir/bench_e9_second_order.cpp.o"
  "CMakeFiles/bench_e9_second_order.dir/bench_e9_second_order.cpp.o.d"
  "bench_e9_second_order"
  "bench_e9_second_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_second_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
