# Empty dependencies file for bench_e9_second_order.
# This may be replaced when dependencies are built.
