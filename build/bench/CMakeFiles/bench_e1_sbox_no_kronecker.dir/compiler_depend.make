# Empty compiler generated dependencies file for bench_e1_sbox_no_kronecker.
# This may be replaced when dependencies are built.
