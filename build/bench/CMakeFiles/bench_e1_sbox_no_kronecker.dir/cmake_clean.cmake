file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_sbox_no_kronecker.dir/bench_e1_sbox_no_kronecker.cpp.o"
  "CMakeFiles/bench_e1_sbox_no_kronecker.dir/bench_e1_sbox_no_kronecker.cpp.o.d"
  "bench_e1_sbox_no_kronecker"
  "bench_e1_sbox_no_kronecker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_sbox_no_kronecker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
