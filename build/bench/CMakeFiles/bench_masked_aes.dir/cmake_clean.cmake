file(REMOVE_RECURSE
  "CMakeFiles/bench_masked_aes.dir/bench_masked_aes.cpp.o"
  "CMakeFiles/bench_masked_aes.dir/bench_masked_aes.cpp.o.d"
  "bench_masked_aes"
  "bench_masked_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_masked_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
