file(REMOVE_RECURSE
  "CMakeFiles/bench_second_order_sbox.dir/bench_second_order_sbox.cpp.o"
  "CMakeFiles/bench_second_order_sbox.dir/bench_second_order_sbox.cpp.o.d"
  "bench_second_order_sbox"
  "bench_second_order_sbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_second_order_sbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
