# Empty compiler generated dependencies file for bench_second_order_sbox.
# This may be replaced when dependencies are built.
