// Experiment E9 (Section IV): the second-order masked Sbox of [12] "with an
// optimization technique to reduce the number of fresh masks from 21 to 13
// bits. [...] None of our analyses by PROLEAD (considering both glitches and
// transitions) up to second order and using at least 100 million simulations
// revealed any vulnerability."
//
// The exact 13-slot wiring of [12] is not printed in the paper under
// reproduction, so this bench reproduces the evaluation *protocol* and the
// qualitative shape (see EXPERIMENTS.md):
//   (a) the unoptimized second-order Kronecker (21 fresh bits) passes at
//       orders 1 and 2 under glitch+transition probing;
//   (b) our reduced-randomness reconstruction passes the same evaluation;
//   (c) a naive 21 -> 13 slot-sharing plan — secure-looking at first order
//       under the glitch model — is *caught* by the order-2 evaluation,
//       which is precisely the paper's "use evaluation tools" message.
//
// Order-2 campaigns enumerate ~30k probe pairs; the default budget is
// laptop-scale (paper: 100M simulations — set SCA_SIMS to approach it).

#include "bench/bench_util.hpp"
#include "src/core/search.hpp"

using namespace sca;

int main(int argc, char** argv) {
  // --family13-only: skip the [a]-[d] campaigns and run just the family
  // sweep window of [e] (implies --lint-order2) — the CI forced-resume job
  // interrupts and resumes the sweep without paying for the campaigns.
  bool family13_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--family13-only")
      family13_only = true;
    else
      args.push_back(argv[i]);
  }
  benchutil::Staging staging =
      benchutil::parse_staging(static_cast<int>(args.size()), args.data());
  if (family13_only) staging.lint = staging.lint_order2 = true;
  const std::size_t sims1 = benchutil::simulations(80000);
  const std::size_t sims2 = std::max<std::size_t>(benchutil::simulations(30000) / 2, 20000);
  benchutil::Scorecard score("e9_second_order");
  score.note("sims_order1", sims1);
  score.note("sims_order2", sims2);

  std::printf("E9: second-order Kronecker delta (3 shares), glitch+transition\n");
  std::printf("    order-1 budget %zu, order-2 budget %zu (SCA_SIMS scales)\n\n",
              sims1, sims2);

  if (!family13_only) {
  const auto full = gadgets::RandomnessPlan::kron2_full_fresh();
  // Single-probe lint vouches for the order-1 claims; with --lint-order2 the
  // pair-probe lint additionally proves/refutes the order-2 claims the
  // sampling below can only estimate.
  benchutil::lint_check(score, staging,
                        benchutil::kronecker_netlist(full, 3),
                        eval::ProbeModel::kGlitchTransition, "",
                        "linter clears the 3-share Kronecker at order 1",
                        /*expect_flagged=*/false);
  benchutil::lint_check(score, staging,
                        benchutil::kronecker_netlist(full, 3),
                        eval::ProbeModel::kGlitchTransition, "",
                        "pair-probe linter clears the unoptimized plan",
                        /*expect_flagged=*/false, "lint2_full", /*order=*/2);

  std::printf("[a] unoptimized, %zu fresh bits\n", full.fresh_count());
  score.expect("order 1", true,
               benchutil::run_kronecker(full, eval::ProbeModel::kGlitchTransition,
                                        sims1, 1, 3,
                                        staging.with_suffix("full_o1")));
  score.expect("order 2", true,
               benchutil::run_kronecker(full, eval::ProbeModel::kGlitchTransition,
                                        sims2, 2, 3,
                                        staging.with_suffix("full_o2")));

  const auto reduced = gadgets::RandomnessPlan::kron2_reduced();
  std::printf("\n[b] reduced reconstruction, %zu fresh bits (%s)\n",
              reduced.fresh_count(), reduced.name().c_str());
  benchutil::lint_check(score, staging,
                        benchutil::kronecker_netlist(reduced, 3),
                        eval::ProbeModel::kGlitchTransition, "",
                        "pair-probe linter clears the reduced plan",
                        /*expect_flagged=*/false, "lint2_reduced",
                        /*order=*/2);
  score.expect("order 1", true,
               benchutil::run_kronecker(reduced,
                                        eval::ProbeModel::kGlitchTransition,
                                        sims1, 1, 3,
                                        staging.with_suffix("reduced_o1")));
  score.expect("order 2", true,
               benchutil::run_kronecker(reduced,
                                        eval::ProbeModel::kGlitchTransition,
                                        sims2, 2, 3,
                                        staging.with_suffix("reduced_o2")));

  const auto naive = gadgets::RandomnessPlan::kron2_naive13();
  std::printf("\n[c] naive 13-bit slot sharing — the cautionary tale\n");
  benchutil::lint_check(score, staging,
                        benchutil::kronecker_netlist(naive, 3),
                        eval::ProbeModel::kGlitch, "",
                        "pair-probe linter catches the naive 13-bit plan",
                        /*expect_flagged=*/true, "lint2_naive", /*order=*/2);
  const auto naive_o1 = benchutil::run_kronecker(
      naive, eval::ProbeModel::kGlitch, sims1, 1, 3,
      staging.with_suffix("naive_o1"));
  score.expect("passes order 1 under the glitch-only model", true, naive_o1);
  const auto naive_o2 = benchutil::run_kronecker(
      naive, eval::ProbeModel::kGlitch, sims2, 2, 3,
      staging.with_suffix("naive_o2"));
  score.expect("caught at order 2", false, naive_o2);
  if (!naive_o2.pass)
    std::printf("  order-2 leak at: %s (-log10 p = %.1f)\n",
                naive_o2.results.front().name.c_str(),
                naive_o2.results.front().minus_log10_p);

  // [d] The broken 18-bit reduction this repo shipped before the pair-probe
  // lint existed: sampling at the default budget is a FALSE NEGATIVE (the
  // bias is ~0.2%, visible only from ~200k simulations — see
  // EXPERIMENTS.md), while the linter flags the exact leaking pair sets
  // statically. The expectation is on the lint verdict; the campaign runs
  // for the record and is only *expected* to catch the leak once the
  // budget reaches paper scale.
  const auto leaky = gadgets::RandomnessPlan::kron2_reduced_leaky();
  std::printf("\n[d] broken 18-bit reduction (%s) — why lint earns its keep\n",
              leaky.name().c_str());
  benchutil::lint_check(score, staging,
                        benchutil::kronecker_netlist(leaky, 3),
                        eval::ProbeModel::kGlitchTransition, "",
                        "pair-probe linter catches the broken 18-bit plan",
                        /*expect_flagged=*/true, "lint2_leaky", /*order=*/2);
  const auto leaky_o2 = benchutil::run_kronecker(
      leaky, eval::ProbeModel::kGlitchTransition, sims2, 2, 3,
      staging.with_suffix("leaky_o2"));
  score.note("leaky_o2_max_minus_log10_p",
             static_cast<std::size_t>(leaky_o2.max_minus_log10_p * 100));
  if (sims2 >= 200000)
    score.expect("broken reduction caught at order 2 (paper-scale budget)",
                 false, leaky_o2);
  else
    std::printf("  order-2 campaign at %zu sims: max -log10 p = %.2f "
                "(needs ~200k to cross the threshold)\n",
                sims2, leaky_o2.max_minus_log10_p);
  }

  // [e] Lint as a search pre-filter: a window of the 13-bit family around
  // the naive plan, statically triaged before any sampling. With
  // --lint-order2 this demonstrates the sharded sweep entry point that
  // tests/checkpoint_test.cpp exercises with forced resume.
  if (staging.lint_order2) {
    const std::uint64_t anchor = eval::kron2_family13_naive_index();
    eval::SecondOrderSearchOptions so;
    so.begin = anchor;
    so.end = anchor + 8;
    so.chunk = 4;
    so.simulations = std::max<std::size_t>(sims2 / 8, 2000);
    // The staging flags drive the sweep's shard grid the way they drive
    // staged campaigns: --checkpoint/--stop-after-stage/--resume interrupt
    // and resume at chunk boundaries (the CI forced-resume job diffs the
    // family13 digest line of a resumed run against an uninterrupted one).
    if (!staging.checkpoint.empty())
      so.checkpoint_path = staging.checkpoint + ".family13";
    so.resume = staging.resume;
    so.stop_after_chunks = staging.stop_after_stage;
    std::printf("\n[e] family sweep window [%llu, %llu) of %llu candidates\n",
                static_cast<unsigned long long>(so.begin),
                static_cast<unsigned long long>(so.end),
                static_cast<unsigned long long>(eval::kron2_family13_size()));
    const auto sweep = eval::search_kron2_family13(so);
    std::printf("  lint rejected %zu/%zu statically; %zu sampled; "
                "chunks %zu/%zu\n",
                sweep.lint_rejected, sweep.evaluations.size(),
                sweep.expensive_evaluations, sweep.chunks_done,
                sweep.chunks_total);
    if (sweep.complete) {
      std::string secure;
      for (const std::uint64_t idx : sweep.secure_indices())
        secure += " " + std::to_string(idx);
      std::printf("family13: rejected=%zu sampled=%zu secure=[%s ]\n",
                  sweep.lint_rejected, sweep.expensive_evaluations,
                  secure.c_str());
      score.expect_flag("naive plan statically rejected in the family sweep",
                        true, sweep.evaluations.front().lint_rejected);
    }
    score.note("family_window_lint_rejected", sweep.lint_rejected);
    score.note("family_window_sampled", sweep.expensive_evaluations);
  }
  return score.exit_code();
}
