// Experiment E9 (Section IV): the second-order masked Sbox of [12] "with an
// optimization technique to reduce the number of fresh masks from 21 to 13
// bits. [...] None of our analyses by PROLEAD (considering both glitches and
// transitions) up to second order and using at least 100 million simulations
// revealed any vulnerability."
//
// The exact 13-slot wiring of [12] is not printed in the paper under
// reproduction, so this bench reproduces the evaluation *protocol* and the
// qualitative shape (see EXPERIMENTS.md):
//   (a) the unoptimized second-order Kronecker (21 fresh bits) passes at
//       orders 1 and 2 under glitch+transition probing;
//   (b) our reduced-randomness reconstruction passes the same evaluation;
//   (c) a naive 21 -> 13 slot-sharing plan — secure-looking at first order
//       under the glitch model — is *caught* by the order-2 evaluation,
//       which is precisely the paper's "use evaluation tools" message.
//
// Order-2 campaigns enumerate ~30k probe pairs; the default budget is
// laptop-scale (paper: 100M simulations — set SCA_SIMS to approach it).

#include "bench/bench_util.hpp"

using namespace sca;

int main(int argc, char** argv) {
  const benchutil::Staging staging = benchutil::parse_staging(argc, argv);
  const std::size_t sims1 = benchutil::simulations(80000);
  const std::size_t sims2 = std::max<std::size_t>(benchutil::simulations(30000) / 2, 20000);
  benchutil::Scorecard score("e9_second_order");
  score.note("sims_order1", sims1);
  score.note("sims_order2", sims2);

  std::printf("E9: second-order Kronecker delta (3 shares), glitch+transition\n");
  std::printf("    order-1 budget %zu, order-2 budget %zu (SCA_SIMS scales)\n\n",
              sims1, sims2);

  const auto full = gadgets::RandomnessPlan::kron2_full_fresh();
  // The linter's rules are first-order (single probes); it still vouches for
  // the order-1 claims here. Order-2 lint rules are a ROADMAP item.
  benchutil::lint_check(score, staging,
                        benchutil::kronecker_netlist(full, 3),
                        eval::ProbeModel::kGlitchTransition, "",
                        "linter clears the 3-share Kronecker at order 1",
                        /*expect_flagged=*/false);

  std::printf("[a] unoptimized, %zu fresh bits\n", full.fresh_count());
  score.expect("order 1", true,
               benchutil::run_kronecker(full, eval::ProbeModel::kGlitchTransition,
                                        sims1, 1, 3,
                                        staging.with_suffix("full_o1")));
  score.expect("order 2", true,
               benchutil::run_kronecker(full, eval::ProbeModel::kGlitchTransition,
                                        sims2, 2, 3,
                                        staging.with_suffix("full_o2")));

  const auto reduced = gadgets::RandomnessPlan::kron2_reduced();
  std::printf("\n[b] reduced reconstruction, %zu fresh bits (%s)\n",
              reduced.fresh_count(), reduced.name().c_str());
  score.expect("order 1", true,
               benchutil::run_kronecker(reduced,
                                        eval::ProbeModel::kGlitchTransition,
                                        sims1, 1, 3,
                                        staging.with_suffix("reduced_o1")));
  score.expect("order 2", true,
               benchutil::run_kronecker(reduced,
                                        eval::ProbeModel::kGlitchTransition,
                                        sims2, 2, 3,
                                        staging.with_suffix("reduced_o2")));

  const auto naive = gadgets::RandomnessPlan::kron2_naive13();
  std::printf("\n[c] naive 13-bit slot sharing — the cautionary tale\n");
  const auto naive_o1 = benchutil::run_kronecker(
      naive, eval::ProbeModel::kGlitch, sims1, 1, 3,
      staging.with_suffix("naive_o1"));
  score.expect("passes order 1 under the glitch-only model", true, naive_o1);
  const auto naive_o2 = benchutil::run_kronecker(
      naive, eval::ProbeModel::kGlitch, sims2, 2, 3,
      staging.with_suffix("naive_o2"));
  score.expect("caught at order 2", false, naive_o2);
  if (!naive_o2.pass)
    std::printf("  order-2 leak at: %s (-log10 p = %.1f)\n",
                naive_o2.results.front().name.c_str(),
                naive_o2.results.front().minus_log10_p);
  return score.exit_code();
}
