// Experiment E8 (Section IV): "when we expand the evaluation to consider
// transitions [...] none of the optimizations discussed above can maintain
// security [...] By means of trial and error, we found four solutions [...]
// r1..r6 fresh, r7 = r_i for all i in {1, 2, 3, 4}".
//
// Reproduce mechanically: run the paper's search space (r7 reusing each of
// r1..r6, plus the fully fresh baseline) through the glitch+transition
// campaign, and confirm Eq. (9) itself fails under this model.

#include "bench/bench_util.hpp"
#include "src/core/search.hpp"

using namespace sca;

int main(int argc, char** argv) {
  const benchutil::Staging staging = benchutil::parse_staging(argc, argv);
  const std::size_t sims = benchutil::simulations(150000);
  benchutil::Scorecard score("e8_transition_search");

  std::printf("E8: transition-extended probing — Eq.(9) breaks, search for "
              "surviving reuse\n\n");

  const eval::CampaignResult eq9 = benchutil::run_kronecker(
      gadgets::RandomnessPlan::kron1_proposed_eq9(),
      eval::ProbeModel::kGlitchTransition, sims, 1, 2, staging);
  score.expect("Eq.(9) under glitch+transition model", false, eq9);

  eval::SearchOptions options;
  options.model = eval::ProbeModel::kGlitchTransition;
  options.simulations = sims;
  const eval::SearchResult search = eval::search_r7_reuse(options);

  std::printf("\nsearch over r7 reuse (r1..r6 fresh):\n");
  std::printf("  plan                                  fresh  verdict  severity\n");
  for (const auto& e : search.evaluations)
    std::printf("  %-36s  %zu      %-7s  %.1f\n", e.plan.name().c_str(),
                e.plan.fresh_count(), e.secure ? "SECURE" : "LEAKS",
                e.severity);

  // The paper's four solutions: r7 = r1..r4 pass; r7 = r5, r6 fail.
  score.expect_flag("baseline (7 fresh) secure", true,
                    search.evaluations[0].secure);
  for (int i = 1; i <= 4; ++i)
    score.expect_flag("r7 = r" + std::to_string(i) + " secure (solution " +
                          std::to_string(i) + "/4)",
                      true, search.evaluations[i].secure);
  score.expect_flag("r7 = r5 leaks", true, !search.evaluations[5].secure);
  score.expect_flag("r7 = r6 leaks", true, !search.evaluations[6].secure);
  score.expect_flag("minimum fresh bits under transitions = 6", true,
                    search.min_secure_fresh() == 6);
  return score.exit_code();
}
