// Experiment E8 (Section IV): "when we expand the evaluation to consider
// transitions [...] none of the optimizations discussed above can maintain
// security [...] By means of trial and error, we found four solutions [...]
// r1..r6 fresh, r7 = r_i for all i in {1, 2, 3, 4}".
//
// Reproduce mechanically: run the paper's search space (r7 reusing each of
// r1..r6, plus the fully fresh baseline) through the glitch+transition
// campaign, and confirm Eq. (9) itself fails under this model.

#include <set>
#include <string>

#include "bench/bench_util.hpp"
#include "src/core/search.hpp"

using namespace sca;

int main(int argc, char** argv) {
  const benchutil::Staging staging = benchutil::parse_staging(argc, argv);
  const std::size_t sims = benchutil::simulations(150000);
  benchutil::Scorecard score("e8_transition_search");

  std::printf("E8: transition-extended probing — Eq.(9) breaks, search for "
              "surviving reuse\n\n");

  const eval::CampaignResult eq9 = benchutil::run_kronecker(
      gadgets::RandomnessPlan::kron1_proposed_eq9(),
      eval::ProbeModel::kGlitchTransition, sims, 1, 2, staging);
  score.expect("Eq.(9) under glitch+transition model", false, eq9);
  benchutil::lint_check(
      score, staging,
      benchutil::kronecker_netlist(gadgets::RandomnessPlan::kron1_proposed_eq9()),
      eval::ProbeModel::kGlitchTransition, "",
      "linter flags Eq.(9) under the transition rules (R4)",
      /*expect_flagged=*/true);

  eval::SearchOptions options;
  options.model = eval::ProbeModel::kGlitchTransition;
  options.simulations = sims;
  const eval::SearchResult search = eval::search_r7_reuse(options);

  std::printf("\nsearch over r7 reuse (r1..r6 fresh):\n");
  std::printf("  plan                                  fresh  verdict  severity\n");
  for (const auto& e : search.evaluations)
    std::printf("  %-36s  %zu      %-7s  %.1f\n", e.plan.name().c_str(),
                e.plan.fresh_count(), e.secure ? "SECURE" : "LEAKS",
                e.severity);

  // The paper's four solutions: r7 = r1..r4 pass; r7 = r5, r6 fail.
  score.expect_flag("baseline (7 fresh) secure", true,
                    search.evaluations[0].secure);
  for (int i = 1; i <= 4; ++i)
    score.expect_flag("r7 = r" + std::to_string(i) + " secure (solution " +
                          std::to_string(i) + "/4)",
                      true, search.evaluations[i].secure);
  score.expect_flag("r7 = r5 leaks", true, !search.evaluations[5].secure);
  score.expect_flag("r7 = r6 leaks", true, !search.evaluations[6].secure);
  score.expect_flag("minimum fresh bits under transitions = 6", true,
                    search.min_secure_fresh() == 6);

  // Same search with the static linter as a pre-filter: flagged candidates
  // never reach the sampler, and the secure-plan set must be unchanged.
  eval::SearchOptions filtered_options = options;
  filtered_options.lint_prefilter = true;
  const eval::SearchResult filtered = eval::search_r7_reuse(filtered_options);
  std::printf("\nlint pre-filter: %zu of %zu candidates rejected statically, "
              "%zu sampled\n",
              filtered.lint_rejected, filtered.evaluations.size(),
              filtered.expensive_evaluations);
  const auto secure_names = [](const eval::SearchResult& r) {
    std::set<std::string> names;
    for (const eval::PlanEvaluation* e : r.secure_plans())
      names.insert(e->plan.name());
    return names;
  };
  score.expect_flag("pre-filtered search keeps the identical secure set",
                    true, secure_names(filtered) == secure_names(search));
  score.expect_flag("pre-filter removes candidates before sampling", true,
                    filtered.expensive_evaluations <
                        filtered.evaluations.size());
  score.note("lint_rejected", filtered.lint_rejected);
  score.note("expensive_evaluations", filtered.expensive_evaluations);
  return score.exit_code();
}
