// Experiments E4 + E5 (Section III, Eq. (8)): the root-cause analysis.
//
//   E4: a *single* randomness reuse, r1 = r3, already breaks first-order
//       security: the probe observation at v1 (G7's inner-domain cone) is
//       not simulatable without the unmasked bits — its distribution differs
//       when x1 = x5 = 0.
//   E5: adding r2 = r4 "could further exacerbate the vulnerabilities".
//
// Reproduce with the exact verifier: deterministic verdicts, conditional
// distributions, and severity (total-variation) comparison — then cross-check
// both with the sampled campaign.

#include "bench/bench_util.hpp"
#include "src/verif/exact.hpp"

using namespace sca;

namespace {

double exact_severity(const gadgets::RandomnessPlan& plan, bool* leaks,
                      std::string* where) {
  const netlist::Netlist nl = benchutil::kronecker_netlist(plan);
  const verif::ExactReport report = verif::verify_first_order_glitch(nl);
  *leaks = report.any_leak;
  double worst = 0.0;
  for (const auto* leak : report.leaking()) {
    if (leak->max_tv_distance > worst) {
      worst = leak->max_tv_distance;
      *where = leak->name;
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Staging staging = benchutil::parse_staging(argc, argv);
  const std::size_t sims = benchutil::simulations(150000);
  benchutil::Scorecard score("e4_single_reuse");

  std::printf("E4: single reuse r1 = r3 (plan: %s)\n",
              gadgets::RandomnessPlan::kron1_single_reuse_r1r3().describe().c_str());
  bool single_leaks = false;
  std::string single_where;
  const double single_tv = exact_severity(
      gadgets::RandomnessPlan::kron1_single_reuse_r1r3(), &single_leaks,
      &single_where);
  std::printf("  exact verdict: %s, worst probe %s, TV distance %.4f\n",
              single_leaks ? "LEAKS" : "secure", single_where.c_str(), single_tv);
  score.expect_flag("r1 = r3 alone leaks (exact)", true, single_leaks);
  benchutil::lint_check(
      score, staging,
      benchutil::kronecker_netlist(
          gadgets::RandomnessPlan::kron1_single_reuse_r1r3()),
      eval::ProbeModel::kGlitch, "", "linter flags r1 = r3 (R1 fresh reuse)",
      /*expect_flagged=*/true, "lint_single");

  // Eq. (8)'s structure: the distribution is constant over secrets with
  // x1 = x5 = 0 but differs once x1 = 1.
  {
    const netlist::Netlist nl = benchutil::kronecker_netlist(
        gadgets::RandomnessPlan::kron1_single_reuse_r1r3());
    const verif::ExactReport report = verif::verify_first_order_glitch(nl);
    const auto* leak = report.leaking().front();
    const auto dist = verif::exact_probe_distribution(nl, leak->probe);
    const auto& base = dist.at(0x00);
    const bool same_within = dist.at(0x01) == base && dist.at(0x04) == base;
    bool differs_outside = false;
    for (const auto& [secret, hist] : dist)
      if ((secret & 0b00100010) && hist != base) differs_outside = true;
    score.expect_flag("distribution constant while x1 = x5 = 0 (Eq. (8))",
                      true, same_within);
    score.expect_flag("distribution changes once x1 or x5 is set", true,
                      differs_outside);
  }

  std::printf("\nE5: pair reuse r1 = r3, r2 = r4 exacerbates\n");
  bool pair_leaks = false;
  std::string pair_where;
  const double pair_tv = exact_severity(
      gadgets::RandomnessPlan::kron1_pair_reuse(), &pair_leaks, &pair_where);
  std::printf("  exact verdict: %s, worst probe %s, TV distance %.4f\n",
              pair_leaks ? "LEAKS" : "secure", pair_where.c_str(), pair_tv);
  score.expect_flag("r1=r3 + r2=r4 leaks (exact)", true, pair_leaks);
  benchutil::lint_check(
      score, staging,
      benchutil::kronecker_netlist(gadgets::RandomnessPlan::kron1_pair_reuse()),
      eval::ProbeModel::kGlitch, "", "linter flags the pair reuse",
      /*expect_flagged=*/true, "lint_pair");
  score.expect_flag("pair reuse is strictly more severe (TV distance)", true,
                    pair_tv > single_tv);

  std::printf("\ncross-check with the sampled campaign (%zu sims):\n", sims);
  score.expect("single reuse, sampled, glitch model", false,
               benchutil::run_kronecker(
                   gadgets::RandomnessPlan::kron1_single_reuse_r1r3(),
                   eval::ProbeModel::kGlitch, sims, 1, 2,
                   staging.with_suffix("single")));
  score.expect("pair reuse, sampled, glitch model", false,
               benchutil::run_kronecker(gadgets::RandomnessPlan::kron1_pair_reuse(),
                                        eval::ProbeModel::kGlitch, sims, 1, 2,
                                        staging.with_suffix("pair")));
  return score.exit_code();
}
