// Extension X6: the complete second-order multiplicative-masked Sbox —
// the subject of the paper's E9 beyond its Kronecker core. Our 3-share
// pipeline (second-order Kronecker + iterative B2M/M2B conversions) is
// functionally exhaustive-checked in the test suite; this bench runs the
// leakage evaluation:
//   - exact first-order verification under the glitch model (ground truth),
//   - first-order sampled campaign under glitch+transition,
//   - second-order sampled campaign under glitch+transition (budgeted).

#include "bench/bench_util.hpp"
#include "src/gadgets/masked_sbox2.hpp"
#include "src/verif/exact.hpp"

using namespace sca;

int main(int argc, char** argv) {
  const benchutil::Staging staging = benchutil::parse_staging(argc, argv);
  const std::size_t sims1 = benchutil::simulations(100000);
  const std::size_t sims2 = std::max<std::size_t>(sims1 / 5, 20000);
  benchutil::Scorecard score("second_order_sbox");

  netlist::Netlist nl;
  gadgets::MaskedSbox2Options options;
  options.kron_plan = gadgets::RandomnessPlan::kron2_reduced();
  const gadgets::MaskedSbox2 sbox = gadgets::build_masked_sbox2(nl, options);
  std::printf("X6: second-order multiplicative Sbox: %zu gates, %zu regs, "
              "latency %zu, Kronecker plan %s\n\n",
              nl.size(), nl.registers().size(), sbox.latency,
              options.kron_plan.name().c_str());

  // With --lint-order2, statically prove the Kronecker core second-order
  // secure before spending any sampling budget on it (the pair campaign
  // below estimates what this proves).
  benchutil::lint_check(score, staging, nl,
                        eval::ProbeModel::kGlitchTransition, "sbox2.kron.",
                        "pair-probe linter clears the Sbox Kronecker core",
                        /*expect_flagged=*/false, "lint2_kron", /*order=*/2);

  verif::ExactOptions exact_options;
  exact_options.max_vars = 24;
  const verif::ExactReport exact = verif::verify_first_order_glitch(nl, exact_options);
  std::printf("exact glitch verification: %s (%zu probes, %zu skipped)\n",
              exact.any_leak ? "LEAKS" : "secure", exact.probes_total,
              static_cast<std::size_t>(exact.any_skipped));
  score.expect_flag("no first-order glitch leak (exact)", true, !exact.any_leak);

  eval::CampaignOptions campaign;
  campaign.model = eval::ProbeModel::kGlitchTransition;
  campaign.simulations = sims1;
  campaign.fixed_values[0] = 0x00;
  campaign.nonzero_random_buses = {sbox.rand_r1, sbox.rand_r2};
  campaign.warmup_cycles = 12;
  campaign.sample_interval = 12;
  score.expect("order 1, glitch+transition", true,
               eval::run_fixed_vs_random(nl, campaign));

  // Order 2 over the full design would enumerate ~2.3 M probe pairs; the
  // bench focuses the pair campaign on the Kronecker (where the paper's
  // randomness optimization lives; bench_e9 covers it standalone too) and
  // on the conversions, each a tractable universe.
  campaign.order = 2;
  campaign.simulations = sims2;
  for (const char* scope : {"sbox2.kron.", "sbox2.b2m2.", "sbox2.m2b2."}) {
    campaign.probe_scope_filter = scope;
    const eval::CampaignResult second = eval::run_fixed_vs_random(nl, campaign);
    std::printf("order-2 %-14s %zu probe sets, %zu sims\n", scope,
                second.total_sets, second.simulations_per_group);
    score.expect(std::string("order 2, glitch+transition, ") + scope, true,
                 second);
  }
  return score.exit_code();
}
