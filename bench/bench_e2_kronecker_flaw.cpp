// Experiment E2 + Figure 3 (Section III): "by including the Kronecker delta
// function and selecting zero as the fixed input, the design failed to pass
// the PROLEAD's security evaluation. [...] The report specifically
// identified certain intermediate values within the design as leakage
// points, visually marked with red stars in the gate G7."
//
// Reproduce: full masked Sbox with the CHES 2018 randomness optimization
// (Eq. (6)), fixed input 0x00, first order, glitch-extended model. Expected:
// FAIL, with every leaking probe set localized inside kron.G7 — the
// engine's report regenerates Fig. 3's annotation from the actual netlist.

#include <string>

#include "bench/bench_util.hpp"

using namespace sca;

int main(int argc, char** argv) {
  const benchutil::Staging staging = benchutil::parse_staging(argc, argv);
  benchutil::Scorecard score("e2_kronecker_flaw");
  const std::size_t sims = benchutil::simulations(200000);
  std::printf("E2/F3: masked Sbox with Kronecker + Eq.(6) optimization, "
              "fixed input 0x00\n");
  std::printf("    (paper: 4M simulations; this run: %zu — set SCA_SIMS)\n\n",
              sims);

  gadgets::MaskedSboxOptions options;
  options.kron_plan = gadgets::RandomnessPlan::kron1_demeyer_eq6();

  {
    // Static pre-check: the linter localizes the Eq. (6) reuse in the
    // Kronecker subtree before a single simulation runs. Scoped to
    // "sbox.kron." — the rest of the Sbox uses nonzero-constrained
    // randomness outside the linter's uniform-mask model (see DESIGN.md).
    netlist::Netlist lint_nl;
    gadgets::build_masked_sbox(lint_nl, options);
    benchutil::lint_check(score, staging, lint_nl, eval::ProbeModel::kGlitch,
                          "sbox.kron.",
                          "linter flags Eq.(6) reuse inside the Kronecker",
                          /*expect_flagged=*/true);
  }

  const eval::CampaignResult result = benchutil::run_sbox(
      options, /*fixed_value=*/0x00, eval::ProbeModel::kGlitch, sims, staging);
  if (result.interrupted) {
    std::printf("interrupted after stage %zu/%zu — resume with --resume "
                "--checkpoint=%s\n",
                result.stages_completed, result.stages_total,
                staging.checkpoint.c_str());
    return 0;
  }
  std::printf("%s\n", to_string(result, 8).c_str());

  score.note("sims", sims);
  if (result.resumed) score.note("resumed", true);
  if (result.early_stopped) score.note("early_stopped", true);
  score.note("threads", result.threads_used);
  score.note("aliased_probe_sets", result.aliased_probe_sets);
  score.note("hosted_sets", result.hosted_sets);
  score.expect("Sbox w/ Kronecker + Eq.(6), fixed 0x00, glitch model",
               /*expected_pass=*/false, result);

  // Fig. 3's localization: every leaking probe sits in gate G7.
  bool all_in_g7 = !result.results.empty() && !result.pass;
  std::size_t leaks = 0;
  for (const auto& r : result.results) {
    if (!r.leaking) continue;
    ++leaks;
    if (r.name.find("G7") == std::string::npos) all_in_g7 = false;
  }
  std::printf("\nleaking probe sets: %zu\n", leaks);
  score.expect_flag("all leaking probes inside Kronecker gate G7 (Fig. 3)",
                    true, all_in_g7);
  return score.exit_code();
}
